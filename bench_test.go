// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index), plus
// ablations of the design choices DESIGN.md calls out. Each benchmark
// performs the real measurement per iteration — protocol traffic over
// the in-process fabric and loopback DNS — at a reduced population
// scale, and reports the paper-relevant statistic as a custom metric
// so the shape can be compared against the published numbers.
package sendervalid

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/bulkspf"
	"sendervalid/internal/campaign"
	"sendervalid/internal/dataset"
	"sendervalid/internal/dkim"
	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/experiment"
	"sendervalid/internal/mtasim"
	"sendervalid/internal/netsim"
	"sendervalid/internal/policy"
	"sendervalid/internal/probe"
	"sendervalid/internal/resolver"
	"sendervalid/internal/spf"
)

// benchScale is the per-population domain count for world-building
// benchmarks. The paper ran at 26,695/22,548; the statistic shapes are
// stable well below that.
const benchScale = 150

func notifySpec(seed int64) dataset.Spec {
	spec := dataset.NotifyEmailSpec(seed)
	spec.NumDomains = benchScale
	spec.AlexaTop1M = benchScale / 9
	spec.AlexaTop1K = benchScale / 30
	return spec
}

func twoWeekSpec(seed int64) dataset.Spec {
	spec := dataset.TwoWeekMXSpec(seed)
	spec.NumDomains = benchScale
	spec.LocalDomains = 2
	return spec
}

func buildBenchWorld(b *testing.B, spec dataset.Spec, rates mtasim.Rates) *experiment.World {
	b.Helper()
	pop := dataset.Generate(spec)
	w, err := experiment.BuildWorld(pop, experiment.WorldConfig{
		Seed: spec.Seed, Rates: rates, TimeScale: 0.0002,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	return w
}

// --- Table 1: TLD distribution ---

func BenchmarkTable1TLDDistribution(b *testing.B) {
	var comShare float64
	for i := 0; i < b.N; i++ {
		pop := dataset.Generate(notifySpec(int64(i)))
		shares := pop.TLDShares()
		comShare = shares[0].Weight
	}
	b.ReportMetric(100*comShare, "%com-share")
}

// --- Table 2: dataset sizes ---

func BenchmarkTable2Datasets(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pop := dataset.Generate(twoWeekSpec(int64(i)))
		v4, _ := pop.CountV4V6()
		ratio = float64(v4) / float64(len(pop.Domains))
	}
	b.ReportMetric(ratio, "MTAs-per-domain")
}

// --- Table 3: AS distribution ---

func BenchmarkTable3ASDistribution(b *testing.B) {
	var topShare float64
	for i := 0; i < b.N; i++ {
		pop := dataset.Generate(twoWeekSpec(int64(i)))
		topShare = pop.ASShares()[0].DomainShare
	}
	b.ReportMetric(100*topShare, "%top-AS-share")
}

// --- Table 4 + Tables 6/7 + Figure 2: the NotifyEmail experiment ---

func BenchmarkTable4ValidationBreakdown(b *testing.B) {
	w := buildBenchWorld(b, notifySpec(1), experiment.NotifyRates())
	ctx := context.Background()
	b.ResetTimer()
	var allThree float64
	for i := 0; i < b.N; i++ {
		run := experiment.RunNotifyEmail(ctx, w, 32)
		a := experiment.AnalyzeNotifyEmail(w, run)
		allThree = 100 * float64(a.Combos["YYY"]) / float64(a.Domains)
	}
	b.ReportMetric(allThree, "%all-three") // paper: 53%
}

func BenchmarkTable6Providers(b *testing.B) {
	w := buildBenchWorld(b, notifySpec(2), experiment.NotifyRates())
	ctx := context.Background()
	b.ResetTimer()
	var matched float64
	for i := 0; i < b.N; i++ {
		run := experiment.RunNotifyEmail(ctx, w, 32)
		a := experiment.AnalyzeNotifyEmail(w, run)
		ok := 0
		for _, row := range a.Providers {
			if row.SPF == row.Expected.SPF && row.DKIM == row.Expected.DKIM {
				ok++
			}
		}
		matched = 100 * float64(ok) / float64(len(a.Providers))
	}
	b.ReportMetric(matched, "%provider-match") // expected: 100
}

func BenchmarkTable7Alexa(b *testing.B) {
	w := buildBenchWorld(b, notifySpec(3), experiment.NotifyRates())
	ctx := context.Background()
	b.ResetTimer()
	var top1M float64
	for i := 0; i < b.N; i++ {
		run := experiment.RunNotifyEmail(ctx, w, 32)
		a := experiment.AnalyzeNotifyEmail(w, run)
		if a.Alexa.Top1M > 0 {
			top1M = 100 * float64(a.Alexa.SPFTop1M) / float64(a.Alexa.Top1M)
		}
	}
	b.ReportMetric(top1M, "%SPF-top1M") // paper: 88%
}

func BenchmarkFigure2TimingHistogram(b *testing.B) {
	w := buildBenchWorld(b, notifySpec(4), experiment.NotifyRates())
	ctx := context.Background()
	b.ResetTimer()
	var negative float64
	for i := 0; i < b.N; i++ {
		run := experiment.RunNotifyEmail(ctx, w, 32)
		a := experiment.AnalyzeNotifyEmail(w, run)
		negative = 100 * experiment.Bucketize(a.TimingSamples).NegativeFraction()
	}
	b.ReportMetric(negative, "%validated-before-delivery") // paper: 83%
}

// --- Table 5: the probe experiments ---

func BenchmarkTable5SPFValidating(b *testing.B) {
	w := buildBenchWorld(b, notifySpec(5), experiment.NotifyRates())
	ctx := context.Background()
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		run := experiment.RunProbes(ctx, w, []string{"t12"}, 32)
		a := experiment.AnalyzeProbes(w, run, false)
		rate = 100 * float64(a.SPFDomains) / float64(a.Domains)
	}
	b.ReportMetric(rate, "%NotifyMX-validating") // paper: 51%
}

func BenchmarkTable5TwoWeekDeciles(b *testing.B) {
	w := buildBenchWorld(b, twoWeekSpec(6), experiment.TwoWeekRates())
	ctx := context.Background()
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		run := experiment.RunProbes(ctx, w, []string{"t12"}, 32)
		a := experiment.AnalyzeProbes(w, run, true)
		rate = 100 * float64(a.SPFDomains) / float64(a.Domains)
	}
	b.ReportMetric(rate, "%TwoWeekMX-validating") // paper: 13%
}

// --- Figure 5 and §7 behaviours: the behaviour probes ---

func BenchmarkFigure5LookupLimitCDF(b *testing.B) {
	w := buildBenchWorld(b, notifySpec(7), experiment.NotifyRates())
	ctx := context.Background()
	b.ResetTimer()
	var ranAll float64
	for i := 0; i < b.N; i++ {
		experiment.RunProbes(ctx, w, []string{"t02"}, 32)
		ll := experiment.AnalyzeLookupLimits(w)
		if ll.Tested > 0 {
			ranAll = 100 * float64(ll.RanAll) / float64(ll.Tested)
		}
	}
	b.ReportMetric(ranAll, "%ran-all-46") // paper: 28%
}

func BenchmarkSection71SerialParallel(b *testing.B) {
	w := buildBenchWorld(b, notifySpec(8), experiment.NotifyRates())
	ctx := context.Background()
	b.ResetTimer()
	var serial float64
	for i := 0; i < b.N; i++ {
		experiment.RunProbes(ctx, w, []string{"t01"}, 32)
		sp := experiment.AnalyzeSerialParallel(w)
		if sp.Tested > 0 {
			serial = 100 * float64(sp.Serial) / float64(sp.Tested)
		}
	}
	b.ReportMetric(serial, "%serial") // paper: 97%
}

// benchBehavior runs one behaviour test policy and reports a fraction.
func benchBehavior(b *testing.B, seed int64, tests []string, metric string,
	stat func(*experiment.BehaviorResults) experiment.SimpleShare) {
	b.Helper()
	w := buildBenchWorld(b, notifySpec(seed), experiment.NotifyRates())
	ctx := context.Background()
	b.ResetTimer()
	var value float64
	for i := 0; i < b.N; i++ {
		experiment.RunProbes(ctx, w, tests, 32)
		res := stat(experiment.AnalyzeBehaviors(w))
		value = 100 * res.Fraction()
	}
	b.ReportMetric(value, metric)
}

func BenchmarkSection73HELOCheck(b *testing.B) {
	benchBehavior(b, 9, []string{"t03"}, "%helo-checked",
		func(r *experiment.BehaviorResults) experiment.SimpleShare { return r.HELOChecked }) // paper: 5%
}

func BenchmarkSection73SyntaxErrors(b *testing.B) {
	benchBehavior(b, 10, []string{"t04", "t05"}, "%main-tolerant",
		func(r *experiment.BehaviorResults) experiment.SimpleShare { return r.SyntaxMainTolerant }) // paper: 5.5%
}

func BenchmarkSection73VoidLookups(b *testing.B) {
	benchBehavior(b, 11, []string{"t06"}, "%void-exceeded",
		func(r *experiment.BehaviorResults) experiment.SimpleShare { return r.VoidExceeded }) // paper: 97%
}

func BenchmarkSection73MXFallback(b *testing.B) {
	benchBehavior(b, 12, []string{"t07"}, "%mx-fallback",
		func(r *experiment.BehaviorResults) experiment.SimpleShare { return r.MXFallback }) // paper: 14%
}

func BenchmarkSection73MultipleRecords(b *testing.B) {
	benchBehavior(b, 13, []string{"t08"}, "%followed-none",
		func(r *experiment.BehaviorResults) experiment.SimpleShare { return r.MultipleNone }) // paper: 77%
}

func BenchmarkSection73TCPFallback(b *testing.B) {
	benchBehavior(b, 14, []string{"t09"}, "%tcp-retried",
		func(r *experiment.BehaviorResults) experiment.SimpleShare { return r.TCPRetried }) // paper: 99.9%
}

func BenchmarkSection73IPv6(b *testing.B) {
	pop := dataset.Generate(notifySpec(15))
	w, err := experiment.BuildWorld(pop, experiment.WorldConfig{
		Seed: 15, Rates: experiment.NotifyRates(), TimeScale: 0.0002,
		EnableIPv6DNS: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	ctx := context.Background()
	b.ResetTimer()
	var retrieved float64
	for i := 0; i < b.N; i++ {
		experiment.RunProbes(ctx, w, []string{"t10"}, 32)
		res := experiment.AnalyzeBehaviors(w)
		retrieved = 100 * res.IPv6Retrieved.Fraction()
	}
	b.ReportMetric(retrieved, "%ipv6-retrieved") // paper: 49%
}

func BenchmarkSection73MXLimit(b *testing.B) {
	benchBehavior(b, 16, []string{"t11"}, "%all-20-mx",
		func(r *experiment.BehaviorResults) experiment.SimpleShare { return r.MXAllTwenty }) // paper: 64%
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationSynthesisVsStatic quantifies what the paper's
// on-the-fly synthesis avoids: materializing the 704 records per MTA
// (27.8M total at paper scale) as static zone data.
func BenchmarkAblationSynthesisVsStatic(b *testing.B) {
	env := &policy.Env{Suffix: experiment.DefaultTestSuffix, TimeScale: 0}
	responders := policy.Responders(env)

	b.Run("synthesized", func(b *testing.B) {
		b.ReportAllocs()
		q := &dnsserver.Query{
			Name: "t01.m000001." + experiment.DefaultTestSuffix,
			Type: dns.TypeTXT, TestID: "t01", MTAID: "m000001",
		}
		for i := 0; i < b.N; i++ {
			// One synthesized response per query; no per-MTA state.
			_ = responders["t01"].Respond(q)
		}
	})
	b.Run("static", func(b *testing.B) {
		b.ReportAllocs()
		// Materialize the per-MTA record set the way a static zone
		// would, for as many MTAs as the benchmark iterates.
		records := make(map[string]string)
		for i := 0; i < b.N; i++ {
			mta := fmt.Sprintf("m%06d", i)
			for _, t := range policy.Catalog() {
				base := t.ID + "." + mta + "." + experiment.DefaultTestSuffix
				q := &dnsserver.Query{Name: base, Type: dns.TypeTXT, TestID: t.ID, MTAID: mta}
				resp := responders[t.ID].Respond(q)
				for _, rr := range resp.Records {
					records[rr.Name] = rr.Data.String()
				}
			}
		}
		b.ReportMetric(float64(len(records))/float64(b.N), "records/MTA")
	})
}

// BenchmarkAblationResolverScheduling contrasts serial and parallel
// (prefetching) lookup strategies on the shaped t01 policy — the §7.1
// question of which strategy wins on deep policies.
func BenchmarkAblationResolverScheduling(b *testing.B) {
	env := &policy.Env{Suffix: experiment.DefaultTestSuffix, TimeScale: 0.02} // 100ms -> 2ms
	srv := &dnsserver.Server{Zones: []*dnsserver.Zone{{
		Suffix: experiment.DefaultTestSuffix, Responders: policy.Responders(env),
	}}}
	addr, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	client := netip.MustParseAddr("198.18.0.1")
	run := func(b *testing.B, prefetch bool) {
		for i := 0; i < b.N; i++ {
			res := resolver.New(resolver.Config{Server: addr.String()})
			checker := &spf.Checker{Resolver: res, Options: spf.Options{
				Prefetch: prefetch, Timeout: 20 * time.Second,
			}}
			domain := fmt.Sprintf("t01.s%d%v.%s", i, prefetch,
				strings.TrimSuffix(experiment.DefaultTestSuffix, "."))
			out := checker.CheckHost(context.Background(), client, domain,
				"spf-test@"+domain, "bench.example")
			if out.Result != spf.Fail {
				b.Fatalf("unexpected result %s (%v)", out.Result, out.Err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, false) })
	b.Run("parallel", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationLookupLimit quantifies the DNS load difference
// between a compliant validator and a limit-ignoring one on the
// Figure 4 limits policy.
func BenchmarkAblationLookupLimit(b *testing.B) {
	// TimeScale 1e-9 disables the 800 ms shaping (0 means unscaled).
	env := &policy.Env{Suffix: experiment.DefaultTestSuffix, TimeScale: 1e-9}
	log := &dnsserver.QueryLog{}
	srv := &dnsserver.Server{
		Zones: []*dnsserver.Zone{{
			Suffix: experiment.DefaultTestSuffix, Responders: policy.Responders(env),
		}},
		Log: log,
	}
	addr, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	client := netip.MustParseAddr("198.18.0.1")
	run := func(b *testing.B, limit int) {
		log.Reset()
		for i := 0; i < b.N; i++ {
			res := resolver.New(resolver.Config{Server: addr.String(), DisableCache: true})
			checker := &spf.Checker{Resolver: res, Options: spf.Options{
				LookupLimit: limit, VoidLookupLimit: -1, Timeout: 20 * time.Second,
			}}
			domain := fmt.Sprintf("t02.b%d.%s", i,
				strings.TrimSuffix(experiment.DefaultTestSuffix, "."))
			checker.CheckHost(context.Background(), client, domain,
				"spf-test@"+domain, "bench.example")
		}
		b.ReportMetric(float64(log.Len())/float64(b.N), "dns-queries/eval")
	}
	b.Run("compliant", func(b *testing.B) { run(b, 0) })
	b.Run("unlimited", func(b *testing.B) { run(b, -1) })
}

// BenchmarkAblationResolverCache measures repeated policy retrieval
// with and without the stub resolver's cache.
func BenchmarkAblationResolverCache(b *testing.B) {
	env := &policy.Env{Suffix: experiment.DefaultTestSuffix, TimeScale: 1e-9}
	srv := &dnsserver.Server{Zones: []*dnsserver.Zone{{
		Suffix: experiment.DefaultTestSuffix, Responders: policy.Responders(env),
	}}}
	addr, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	name := "t12.cache." + experiment.DefaultTestSuffix
	run := func(b *testing.B, disable bool) {
		res := resolver.New(resolver.Config{Server: addr.String(), DisableCache: disable})
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := res.LookupTXT(ctx, name); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, false) })
	b.Run("uncached", func(b *testing.B) { run(b, true) })
}

// BenchmarkBulkSPF measures the concurrent bulk validation pipeline
// end to end: JSONL tuples through the worker pool, every mechanism
// lookup against a live in-process authoritative server through one
// shared resolver. Domains repeat across tuples the way real mail
// streams repeat senders, so the sharded cache and singleflight dedup
// carry most of the load after the first pass.
func BenchmarkBulkSPF(b *testing.B) {
	env := &policy.Env{Suffix: experiment.DefaultTestSuffix, TimeScale: 1e-9}
	srv := &dnsserver.Server{Zones: []*dnsserver.Zone{{
		Suffix: experiment.DefaultTestSuffix, Responders: policy.Responders(env),
	}}}
	addr, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	const domains = 64
	const tuples = 256
	var in bytes.Buffer
	for i := 0; i < tuples; i++ {
		fmt.Fprintf(&in, `{"ip":"198.18.0.1","mail_from":"spf-test@t01.b%02d.%s"}`+"\n",
			i%domains, strings.TrimSuffix(experiment.DefaultTestSuffix, "."))
	}
	data := in.Bytes()
	res := resolver.New(resolver.Config{Server: addr.String()})
	eval := bulkspf.New(bulkspf.Config{Resolver: res, Workers: 8})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := eval.Run(ctx, bytes.NewReader(data), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Evaluated != tuples || stats.Results[spf.Fail] != tuples {
			b.Fatalf("unexpected stats: %+v", stats)
		}
	}
	b.ReportMetric(tuples, "tuples/op")
}

// --- Protocol micro-benchmarks ---

func BenchmarkDNSMessagePackUnpack(b *testing.B) {
	msg := new(dns.Message).SetQuestion("t01.m000001."+experiment.DefaultTestSuffix, dns.TypeTXT)
	msg.ID = 42
	packed, err := msg.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var m dns.Message
		if err := m.Unpack(packed); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPFParse(b *testing.B) {
	const record = "v=spf1 ip4:192.0.2.0/24 a:mail.example.com mx include:_spf.example.net exists:%{ir}.x.example.org -all"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spf.Parse(record); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMTPProbeSession(b *testing.B) {
	fabric := netsim.NewFabric()
	mta := mtasim.New(mtasim.Config{
		ID: "bench", Hostname: "bench.mx.example",
		Addr4:   netip.MustParseAddr("203.0.113.99"),
		Profile: mtasim.Profile{AcceptAnyUser: true},
		Fabric:  fabric,
	})
	if err := mta.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(mta.Close)
	client := &probe.Client{
		Dialer: fabric, Suffix: "spf-test.dns-lab.example",
		HeloDomain: "probe.example", RecipientDomain: "target.example",
		Timeout: 5 * time.Second,
	}
	addr := netip.MustParseAddr("203.0.113.99")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := client.Probe(ctx, addr, "bench", "t12")
		if res.Stage != probe.StageDone {
			b.Fatalf("probe: %+v", res)
		}
	}
}

// --- Campaign orchestration ---

// BenchmarkCampaignThroughput measures the campaign scheduler driving
// real SMTP probe sessions over the fabric with a fifth of the fleet
// initially dark (netsim-injected connection refusals), so the
// transient-retry path — classification, backoff, re-dispatch — is on
// the measured path. Each outage heals at first contact; every task
// must finish within the attempt budget.
func BenchmarkCampaignThroughput(b *testing.B) {
	const fleet = 20
	fabric := netsim.NewFabric()
	tests := []string{"t01", "t02", "t03", "t12"}
	addrs := make(map[string]netip.Addr, fleet)
	ids := make([]string, fleet)
	for i := 0; i < fleet; i++ {
		id := fmt.Sprintf("bench%02d", i)
		addr := netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", 10+i))
		mta := mtasim.New(mtasim.Config{
			ID: id, Hostname: id + ".mx.example", Addr4: addr,
			Profile: mtasim.Profile{AcceptAnyUser: true},
			Fabric:  fabric,
		})
		if err := mta.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(mta.Close)
		addrs[id], ids[i] = addr, id
	}
	client := &probe.Client{
		Dialer: fabric, Suffix: "spf-test.dns-lab.example",
		HeloDomain: "probe.example", RecipientDomain: "target.example",
		Timeout: 5 * time.Second,
	}
	ctx := context.Background()
	b.ResetTimer()
	var retried, attempts float64
	for i := 0; i < b.N; i++ {
		for j := 0; j < fleet; j += 5 {
			fabric.SetUnreachable(addrs[ids[j]], true)
		}
		c := campaign.New(campaign.Config{
			Workers: 16, MaxAttempts: 4, Seed: int64(i),
			BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
		}, func(ctx context.Context, t campaign.Task) error {
			res := client.Probe(ctx, addrs[t.MTA], t.MTA, t.Test)
			if errors.Is(res.Err, netsim.ErrConnRefused) {
				fabric.SetUnreachable(addrs[t.MTA], false)
			}
			return res.Err
		})
		for _, id := range ids {
			for _, testID := range tests {
				c.Add(campaign.Task{MTA: id, Test: testID})
			}
		}
		if err := c.Run(ctx); err != nil {
			b.Fatal(err)
		}
		snap := c.Snapshot()
		if snap.Failed > 0 || snap.Done != fleet*len(tests) {
			b.Fatalf("campaign: %s", snap)
		}
		retried, attempts = float64(snap.Retried), float64(snap.Attempts)
	}
	b.ReportMetric(float64(fleet*len(tests)), "probes/op")
	b.ReportMetric(retried, "retries/op")
	b.ReportMetric(attempts, "attempts/op")
}

// --- Extension benchmarks ---

// BenchmarkFingerprintExtraction measures distilling behaviour vectors
// and clustering from a realistic query log.
func BenchmarkFingerprintExtraction(b *testing.B) {
	w := buildBenchWorld(b, notifySpec(17), experiment.NotifyRates())
	experiment.RunProbes(context.Background(), w,
		[]string{"t01", "t02", "t06", "t07", "t08", "t11"}, 32)
	entries := w.Log.Entries()
	b.ResetTimer()
	var families int
	for i := 0; i < b.N; i++ {
		clusters, _ := experiment.AnalyzeFingerprintEntries(entries)
		families = len(clusters)
	}
	b.ReportMetric(float64(families), "families")
}

// BenchmarkDKIMSignVerify measures a full sign + verify round trip
// (Ed25519, relaxed/relaxed) including the key lookup.
func BenchmarkDKIMSignVerify(b *testing.B) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	keyTXT, err := dkim.FormatKeyRecord(pub)
	if err != nil {
		b.Fatal(err)
	}
	res := staticTXT{name: "s._domainkey.bench.example", txt: keyTXT}
	msg := []byte("From: a@bench.example\r\nTo: b@x.example\r\nSubject: bench\r\n\r\nbody\r\n")
	signer := &dkim.Signer{Domain: "bench.example", Selector: "s", Key: priv}
	verifier := &dkim.Verifier{Resolver: res}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		signed, err := signer.Sign(msg)
		if err != nil {
			b.Fatal(err)
		}
		if out := verifier.Verify(ctx, signed); out.Result != dkim.ResultPass {
			b.Fatalf("verify: %s (%v)", out.Result, out.Err)
		}
	}
}

type staticTXT struct{ name, txt string }

func (s staticTXT) LookupTXT(ctx context.Context, name string) ([]string, error) {
	if strings.TrimSuffix(name, ".") == s.name {
		return []string{s.txt}, nil
	}
	return nil, nil
}

// BenchmarkQueryLogJSONRoundTrip measures log persistence, the
// collect-then-analyze workflow's I/O cost.
func BenchmarkQueryLogJSONRoundTrip(b *testing.B) {
	w := buildBenchWorld(b, notifySpec(18), experiment.NotifyRates())
	experiment.RunProbes(context.Background(), w, []string{"t01", "t12"}, 32)
	b.ReportAllocs()
	b.ResetTimer()
	var entries int
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := w.Log.WriteJSON(&buf); err != nil {
			b.Fatal(err)
		}
		parsed, err := dnsserver.ReadLogJSON(&buf)
		if err != nil {
			b.Fatal(err)
		}
		entries = len(parsed)
	}
	b.ReportMetric(float64(entries), "entries")
}
