// Command spflint statically analyzes SPF deployments the way the
// sender-side surveys cited by the paper (§3) did: syntax errors,
// lookup-limit violations the policy forces on validators, deprecated
// mechanisms, unsafe qualifiers, and dangling or looping includes.
//
// Usage:
//
//	spflint -record "v=spf1 a mx -all"                 # lint one record
//	spflint -domain example.com -server 127.0.0.1:53   # lint a deployment
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"sendervalid/internal/resolver"
	"sendervalid/internal/spf"
)

func main() {
	var (
		record = flag.String("record", "", "SPF record text to lint in isolation")
		domain = flag.String("domain", "", "domain whose published deployment to lint")
		server = flag.String("server", "", "DNS server ip:port (required with -domain)")
	)
	flag.Parse()

	var report *spf.LintReport
	switch {
	case *record != "":
		l := &spf.Linter{}
		report = l.LintRecord(*domain, *record)
	case *domain != "" && *server != "":
		res := resolver.New(resolver.Config{Server: *server, Timeout: 10 * time.Second})
		l := &spf.Linter{Resolver: res}
		var err error
		report, err = l.Lint(context.Background(), *domain)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spflint: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if report.Record != "" {
		fmt.Printf("record:  %s\n", report.Record)
	}
	fmt.Printf("lookups: %d (limit %d)\n", report.Lookups, spf.DefaultLookupLimit)
	if len(report.Findings) == 0 {
		fmt.Println("clean: no findings")
		return
	}
	for _, f := range report.Findings {
		fmt.Println(" ", f)
	}
	if report.MaxSeverity() >= spf.Error {
		os.Exit(1)
	}
}
