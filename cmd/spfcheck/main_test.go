package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// zoneHandler serves a fixed TXT record per canonical name; unknown
// names get NXDOMAIN, and names in refuse get REFUSED (the quickest
// way to force temperror without waiting out timeouts).
type zoneHandler struct {
	txt    map[string]string
	refuse map[string]bool
}

func (h *zoneHandler) ServeDNS(w dns.ResponseWriter, r *dns.Request) {
	q := r.Msg.Question()
	name := dns.CanonicalName(q.Name)
	resp := new(dns.Message).SetReply(r.Msg)
	resp.Authoritative = true
	switch {
	case h.refuse[name]:
		resp.RCode = dns.RCodeRefused
	case h.txt[name] != "" && q.Type == dns.TypeTXT:
		resp.Answers = []dns.RR{{
			Name: name, Type: dns.TypeTXT, Class: dns.ClassINET, TTL: 300,
			Data: &dns.TXT{Strings: []string{h.txt[name]}},
		}}
	case h.txt[name] == "":
		resp.RCode = dns.RCodeNameError
	}
	_ = w.WriteMsg(resp)
}

func testDNS(t *testing.T) string {
	t.Helper()
	h := &zoneHandler{
		txt: map[string]string{
			"pass.example.": "v=spf1 ip4:203.0.113.0/24 -all",
			"fail.example.": "v=spf1 -all",
			"bad.example.":  "v=spf1 ip4:not-a-network -all",
		},
		refuse: map[string]bool{"flaky.example.": true},
	}
	srv := &dns.Server{Addr: "127.0.0.1:0", Handler: h}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return addr.String()
}

func runCmd(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(stdin), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSingleTupleExitCodes(t *testing.T) {
	server := testDNS(t)
	cases := []struct {
		name, ip, from string
		code           int
		result         string
	}{
		{"pass", "203.0.113.9", "a@pass.example", exitOK, "pass"},
		{"fail", "198.51.100.9", "a@pass.example", exitOK, "fail"},
		{"permerror", "203.0.113.9", "a@bad.example", exitPermError, "permerror"},
		{"temperror", "203.0.113.9", "a@flaky.example", exitTempError, "temperror"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, _ := runCmd(t,
				[]string{"-server", server, "-ip", tc.ip, "-from", tc.from}, "")
			if code != tc.code {
				t.Errorf("exit code %d, want %d", code, tc.code)
			}
			if !strings.Contains(out, "result:       "+tc.result) {
				t.Errorf("stdout %q missing result %q", out, tc.result)
			}
		})
	}
}

func TestUsageErrors(t *testing.T) {
	server := testDNS(t)
	cases := [][]string{
		{},                  // no server
		{"-server", server}, // neither tuple nor input
		{"-server", server, "-input", "-", "-ip", "203.0.113.9"}, // mode mix
		{"-server", server, "-input", "/does/not/exist.jsonl"},   // unreadable input
		{"-bogus-flag"}, // unknown flag
	}
	for _, args := range cases {
		if code, _, _ := runCmd(t, args, ""); code != exitUsage {
			t.Errorf("run(%q) = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestBulkMode(t *testing.T) {
	server := testDNS(t)
	input := strings.Join([]string{
		`{"ip":"203.0.113.9","mail_from":"a@pass.example"}`,
		`{"ip":"198.51.100.9","mail_from":"b@pass.example"}`,
		`{"ip":"203.0.113.9","mail_from":"c@fail.example"}`,
	}, "\n")
	code, out, stderr := runCmd(t,
		[]string{"-server", server, "-input", "-", "-workers", "3"}, input)
	if code != exitOK {
		t.Fatalf("exit code %d, want %d (stderr: %s)", code, exitOK, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d output lines, want 3:\n%s", len(lines), out)
	}
	for want, frag := range map[int]string{0: `"result":"pass"`, 1: `"result":"fail"`, 2: `"result":"fail"`} {
		if !strings.Contains(lines[want], frag) {
			t.Errorf("line %d = %s, want %s", want, lines[want], frag)
		}
	}
	if !strings.Contains(stderr, "3 tuples") {
		t.Errorf("stderr %q missing throughput summary", stderr)
	}
}

func TestBulkExitCodePriority(t *testing.T) {
	server := testDNS(t)
	// temperror outranks permerror: transient failures mean the run
	// should be retried before trusting any permanent verdicts.
	code, _, _ := runCmd(t, []string{"-server", server, "-input", "-"},
		`{"ip":"203.0.113.9","mail_from":"a@flaky.example"}`+"\n"+
			`{"ip":"203.0.113.9","mail_from":"b@bad.example"}`)
	if code != exitTempError {
		t.Errorf("temperror+permerror run exited %d, want %d", code, exitTempError)
	}
	code, _, _ = runCmd(t, []string{"-server", server, "-input", "-"},
		`not json at all`)
	if code != exitPermError {
		t.Errorf("bad-input run exited %d, want %d", code, exitPermError)
	}
}
