// Command spfcheck evaluates SPF (RFC 7208) for a connection tuple
// against a DNS server, printing the check_host() result and the
// lookup counters.
//
// Usage:
//
//	spfcheck -ip 192.0.2.1 -from user@example.com [-helo mail.example.com]
//	         [-server 127.0.0.1:53] [-limit 10] [-void 2] [-prefetch]
//	         [-tolerate-syntax] [-follow-multiple]
//
// Without -server, the system resolver cannot be used (this module is
// self-contained), so a server address is required.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"sendervalid/internal/resolver"
	"sendervalid/internal/smtp"
	"sendervalid/internal/spf"
)

func main() {
	var (
		ipFlag     = flag.String("ip", "", "connecting client IP (required)")
		fromFlag   = flag.String("from", "", "MAIL FROM address (required)")
		heloFlag   = flag.String("helo", "", "HELO/EHLO domain (default: From domain)")
		serverFlag = flag.String("server", "", "DNS server address ip:port (required)")
		limitFlag  = flag.Int("limit", 0, "DNS lookup limit (0 = RFC default 10, -1 = unlimited)")
		voidFlag   = flag.Int("void", 0, "void lookup limit (0 = RFC default 2, -1 = unlimited)")
		prefetch   = flag.Bool("prefetch", false, "resolve mechanisms in parallel (the 3% behaviour)")
		tolerate   = flag.Bool("tolerate-syntax", false, "continue past syntax errors (a violation)")
		followMany = flag.Bool("follow-multiple", false, "follow the first of multiple SPF records (a violation)")
		timeoutS   = flag.Duration("timeout", 20*time.Second, "overall evaluation timeout")
	)
	flag.Parse()

	if *ipFlag == "" || *fromFlag == "" || *serverFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	ip, err := netip.ParseAddr(*ipFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spfcheck: bad -ip: %v\n", err)
		os.Exit(2)
	}
	domain := smtp.DomainOf(*fromFlag)
	if domain == "" {
		domain = *fromFlag
	}
	helo := *heloFlag
	if helo == "" {
		helo = domain
	}

	res := resolver.New(resolver.Config{Server: *serverFlag})
	checker := &spf.Checker{
		Resolver: res,
		Options: spf.Options{
			LookupLimit:           *limitFlag,
			VoidLookupLimit:       *voidFlag,
			Prefetch:              *prefetch,
			IgnoreSyntaxErrors:    *tolerate,
			FollowMultipleRecords: *followMany,
			Timeout:               *timeoutS,
		},
	}
	out := checker.CheckHost(context.Background(), ip, domain, *fromFlag, helo)
	fmt.Printf("result:       %s\n", out.Result)
	fmt.Printf("dns lookups:  %d\n", out.Lookups)
	fmt.Printf("void lookups: %d\n", out.VoidLookups)
	if out.Explanation != "" {
		fmt.Printf("explanation:  %s\n", out.Explanation)
	}
	if out.Err != nil {
		fmt.Printf("detail:       %v\n", out.Err)
	}
	if out.Result == spf.TempError {
		os.Exit(1)
	}
}
