// Command spfcheck evaluates SPF (RFC 7208) against a DNS server, in
// one of two modes:
//
// Single tuple: evaluate one connection and print the check_host()
// result and lookup counters.
//
//	spfcheck -ip 192.0.2.1 -from user@example.com [-helo mail.example.com]
//	         [-server 127.0.0.1:53] [-limit 10] [-void 2] [-prefetch]
//	         [-tolerate-syntax] [-follow-multiple]
//	         [-trace-file spans.wal] [-trace-sample 1] [-trace-slow 50ms]
//
// Bulk: stream JSONL tuples ({"ip":..., "mail_from":..., "helo":...,
// "domain":...}) from -input (a path, or "-" for stdin) through a
// concurrent worker pool sharing one resolver, writing one JSONL
// result per line to stdout in input order (-unordered to emit on
// completion) and a throughput summary to stderr.
//
//	spfcheck -server 127.0.0.1:53 -input tuples.jsonl [-workers N] [-unordered]
//
// With -trace-file, every evaluation (and, in bulk mode, every tuple)
// roots a trace whose resolver spans join against the authoritative
// server's query log via `analyze -trace`.
//
// Without -server, the system resolver cannot be used (this module is
// self-contained), so a server address is required.
//
// Exit codes:
//
//	0  every evaluation was definitive (pass, fail, softfail, neutral,
//	   none, or permerror-free input)
//	1  at least one temperror: a transient DNS failure — retry later
//	2  usage error: bad flags or unreadable input
//	3  at least one permerror or unparseable input line (and no
//	   temperror): the policy or the input is broken — retrying will
//	   not help
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"sendervalid/internal/bulkspf"
	"sendervalid/internal/resolver"
	"sendervalid/internal/smtp"
	"sendervalid/internal/spf"
	"sendervalid/internal/trace"
	"sendervalid/internal/traceflag"
)

// Exit codes; see the command comment.
const (
	exitOK        = 0
	exitTempError = 1
	exitUsage     = 2
	exitPermError = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spfcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ipFlag     = fs.String("ip", "", "connecting client IP (single-tuple mode)")
		fromFlag   = fs.String("from", "", "MAIL FROM address (single-tuple mode)")
		heloFlag   = fs.String("helo", "", "HELO/EHLO domain (default: From domain)")
		serverFlag = fs.String("server", "", "DNS server address ip:port (required)")
		inputFlag  = fs.String("input", "", "bulk mode: JSONL tuple file, or - for stdin")
		workers    = fs.Int("workers", 0, "bulk mode: concurrent evaluations (0 = GOMAXPROCS)")
		unordered  = fs.Bool("unordered", false, "bulk mode: emit results on completion instead of input order")
		limitFlag  = fs.Int("limit", 0, "DNS lookup limit (0 = RFC default 10, -1 = unlimited)")
		voidFlag   = fs.Int("void", 0, "void lookup limit (0 = RFC default 2, -1 = unlimited)")
		prefetch   = fs.Bool("prefetch", false, "resolve mechanisms in parallel (the 3% behaviour)")
		tolerate   = fs.Bool("tolerate-syntax", false, "continue past syntax errors (a violation)")
		followMany = fs.Bool("follow-multiple", false, "follow the first of multiple SPF records (a violation)")
		timeoutS   = fs.Duration("timeout", 20*time.Second, "per-evaluation timeout")
	)
	traceFlags := traceflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *serverFlag == "" {
		fmt.Fprintln(stderr, "spfcheck: -server is required")
		fs.Usage()
		return exitUsage
	}
	tracing, err := traceFlags.Open(func(format string, args ...any) {
		fmt.Fprintf(stderr, "spfcheck: "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintf(stderr, "spfcheck: %v\n", err)
		return exitUsage
	}
	defer func() {
		if err := tracing.Close(); err != nil {
			fmt.Fprintf(stderr, "spfcheck: closing trace file: %v\n", err)
		}
	}()
	opts := spf.Options{
		LookupLimit:           *limitFlag,
		VoidLookupLimit:       *voidFlag,
		Prefetch:              *prefetch,
		IgnoreSyntaxErrors:    *tolerate,
		FollowMultipleRecords: *followMany,
		Timeout:               *timeoutS,
	}
	res := resolver.New(resolver.Config{Server: *serverFlag})

	if *inputFlag != "" {
		if *ipFlag != "" || *fromFlag != "" {
			fmt.Fprintln(stderr, "spfcheck: -input (bulk mode) excludes -ip/-from")
			return exitUsage
		}
		return runBulk(res, opts, tracing.Tracer, *inputFlag, *workers, *unordered, stdin, stdout, stderr)
	}

	if *ipFlag == "" || *fromFlag == "" {
		fmt.Fprintln(stderr, "spfcheck: need -ip and -from (or -input for bulk mode)")
		fs.Usage()
		return exitUsage
	}
	ip, err := netip.ParseAddr(*ipFlag)
	if err != nil {
		fmt.Fprintf(stderr, "spfcheck: bad -ip: %v\n", err)
		return exitUsage
	}
	domain := smtp.DomainOf(*fromFlag)
	if domain == "" {
		domain = *fromFlag
	}
	helo := *heloFlag
	if helo == "" {
		helo = domain
	}
	checker := &spf.Checker{Resolver: res, Options: opts}
	// Single-tuple mode roots the trace here so the SPF checker's and
	// resolver's spans all share one trace ID.
	ctx, sp := tracing.Tracer.Start(context.Background(), "spfcheck")
	if sp != nil {
		sp.SetAttr("ip", ip.String())
		sp.SetAttr("domain", domain)
	}
	out := checker.CheckHost(ctx, ip, domain, *fromFlag, helo)
	if sp != nil {
		sp.SetAttr("result", string(out.Result))
		sp.SetError(out.Err)
		sp.End()
	}
	fmt.Fprintf(stdout, "result:       %s\n", out.Result)
	fmt.Fprintf(stdout, "dns lookups:  %d\n", out.Lookups)
	fmt.Fprintf(stdout, "void lookups: %d\n", out.VoidLookups)
	if out.Explanation != "" {
		fmt.Fprintf(stdout, "explanation:  %s\n", out.Explanation)
	}
	if out.Err != nil {
		fmt.Fprintf(stdout, "detail:       %v\n", out.Err)
	}
	switch out.Result {
	case spf.TempError:
		return exitTempError
	case spf.PermError:
		return exitPermError
	}
	return exitOK
}

// runBulk streams tuples through the bulkspf pipeline and maps the
// aggregate outcome onto the exit codes.
func runBulk(res *resolver.Resolver, opts spf.Options, tracer *trace.Tracer, input string, workers int, unordered bool, stdin io.Reader, stdout, stderr io.Writer) int {
	in := stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			fmt.Fprintf(stderr, "spfcheck: %v\n", err)
			return exitUsage
		}
		defer f.Close()
		in = f
	}
	eval := bulkspf.New(bulkspf.Config{
		Resolver:  res,
		SPF:       opts,
		Workers:   workers,
		Unordered: unordered,
		Tracer:    tracer,
	})
	stats, err := eval.Run(context.Background(), in, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "spfcheck: %v\n", err)
		return exitUsage
	}
	total := stats.Evaluated + stats.Errored
	secs := stats.Elapsed.Seconds()
	rate := 0.0
	if secs > 0 {
		rate = float64(total) / secs
	}
	fmt.Fprintf(stderr, "spfcheck: %d tuples in %v (%.0f/s), %d input errors, results: %v\n",
		total, stats.Elapsed.Round(time.Millisecond), rate, stats.Errored, formatResults(stats))
	switch {
	case stats.Results[spf.TempError] > 0:
		return exitTempError
	case stats.Results[spf.PermError] > 0:
		return exitPermError
	}
	return exitOK
}

// formatResults renders the result histogram in a stable order.
func formatResults(stats bulkspf.Stats) string {
	out := ""
	for _, r := range []spf.Result{spf.Pass, spf.Fail, spf.SoftFail, spf.Neutral, spf.None, spf.TempError, spf.PermError} {
		if n := stats.Results[r]; n > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", r, n)
		}
	}
	if out == "" {
		out = "(none)"
	}
	return out
}
