// Command benchjson converts `go test -bench` text output on stdin to
// a JSON document on stdout, so benchmark runs can be archived and
// diffed (BENCH_4.json in the perf-regression workflow). The raw
// benchmark lines are preserved verbatim alongside the parsed fields,
// so benchstat can still consume an archived run.
//
// Usage:
//
//	go test -run NONE -bench . -benchmem ./... | benchjson > BENCH.json
//
// With -diff it becomes the perf-regression gate: the current run is
// read from stdin as usual, compared against an archived baseline,
// and the exit status is 1 if any benchmark present in both regressed
// by more than -tolerance in ns/op:
//
//	go test -run NONE -bench "$(HOT_BENCHES)" -benchmem ./... | benchjson -diff BENCH_6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds less common value/unit pairs (MB/s, custom metrics).
	Extra map[string]float64 `json:"extra,omitempty"`
}

type document struct {
	// Context captures the goos/goarch/pkg/cpu header lines.
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
	// Raw preserves the benchmark and header lines exactly as emitted,
	// for benchstat and eyeballing.
	Raw []string `json:"raw"`
}

func main() {
	var (
		diffPath = flag.String("diff", "",
			"baseline BENCH_*.json to compare against instead of emitting JSON")
		tolerance = flag.Float64("tolerance", 0.20,
			"allowed fractional ns/op regression in -diff mode")
	)
	flag.Parse()

	doc := document{Context: map[string]string{}, Benchmarks: []result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			doc.Context[key] = strings.TrimSpace(val)
			doc.Raw = append(doc.Raw, line)
		case strings.HasPrefix(line, "pkg:"):
			_, val, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(val)
			doc.Raw = append(doc.Raw, line)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
				doc.Raw = append(doc.Raw, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if *diffPath != "" {
		os.Exit(diff(doc, *diffPath, *tolerance))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// diff compares the current run against the archived baseline and
// returns the process exit code: 0 when every benchmark present in
// both is within tolerance, 1 when any ns/op regressed past it.
// Benchmarks only one side knows (renamed, newly added, machine with
// a different GOMAXPROCS suffix) are reported but never fatal.
func diff(cur document, baselinePath string, tolerance float64) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
		return 1
	}
	var base document
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing baseline %s: %v\n", baselinePath, err)
		return 1
	}
	baseline := map[string]result{}
	for _, r := range base.Benchmarks {
		baseline[trimProcSuffix(r.Name)] = r
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks on stdin")
		return 1
	}
	regressions := 0
	compared := 0
	for _, r := range cur.Benchmarks {
		name := trimProcSuffix(r.Name)
		b, ok := baseline[name]
		if !ok {
			fmt.Printf("  new  %-60s %12.0f ns/op (not in baseline)\n", name, r.NsPerOp)
			continue
		}
		if b.NsPerOp == 0 || r.NsPerOp == 0 {
			continue
		}
		compared++
		delta := r.NsPerOp/b.NsPerOp - 1
		status := "  ok "
		if delta > tolerance {
			status = " FAIL"
			regressions++
		}
		fmt.Printf("%s %-60s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			status, name, b.NsPerOp, r.NsPerOp, 100*delta)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks in common with %s\n", baselinePath)
		return 1
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d benchmarks regressed more than %.0f%% vs %s\n",
			regressions, compared, 100*tolerance, baselinePath)
		return 1
	}
	fmt.Printf("benchjson: %d benchmarks within %.0f%% of %s\n", compared, 100*tolerance, baselinePath)
	return 0
}

// trimProcSuffix drops the -GOMAXPROCS suffix go test appends to
// benchmark names, so runs from machines with different core counts
// still line up.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// parseBench decodes one "BenchmarkName-8  N  v unit  v unit ..." line.
func parseBench(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Package: pkg, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = val
		}
	}
	return r, true
}
