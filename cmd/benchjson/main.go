// Command benchjson converts `go test -bench` text output on stdin to
// a JSON document on stdout, so benchmark runs can be archived and
// diffed (BENCH_4.json in the perf-regression workflow). The raw
// benchmark lines are preserved verbatim alongside the parsed fields,
// so benchstat can still consume an archived run.
//
// Usage:
//
//	go test -run NONE -bench . -benchmem ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds less common value/unit pairs (MB/s, custom metrics).
	Extra map[string]float64 `json:"extra,omitempty"`
}

type document struct {
	// Context captures the goos/goarch/pkg/cpu header lines.
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
	// Raw preserves the benchmark and header lines exactly as emitted,
	// for benchstat and eyeballing.
	Raw []string `json:"raw"`
}

func main() {
	doc := document{Context: map[string]string{}, Benchmarks: []result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			doc.Context[key] = strings.TrimSpace(val)
			doc.Raw = append(doc.Raw, line)
		case strings.HasPrefix(line, "pkg:"):
			_, val, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(val)
			doc.Raw = append(doc.Raw, line)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
				doc.Raw = append(doc.Raw, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench decodes one "BenchmarkName-8  N  v unit  v unit ..." line.
func parseBench(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Package: pkg, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = val
		}
	}
	return r, true
}
