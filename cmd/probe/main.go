// Command probe runs the study's 39-policy probe sequence against one
// MTA over real TCP (not the simulation fabric), printing each probe's
// outcome. Point it at an MTA you operate, with the From-domain suffix
// served by a cooperating authdns instance, to reproduce the paper's
// measurement of a single server.
//
// Usage:
//
//	probe -target 192.0.2.25:25 -mta-id m0001 [-suffix spf-test.dns-lab.example]
//	      [-recipient-domain target.example] [-tests t01,t02] [-sleep 15s]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"strings"
	"time"

	"sendervalid/internal/experiment"
	"sendervalid/internal/policy"
	"sendervalid/internal/probe"
)

// tcpDialer adapts net.Dialer to the probe client's interface.
type tcpDialer struct{ d net.Dialer }

func (t *tcpDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return t.d.DialContext(ctx, network, address)
}

func main() {
	var (
		list      = flag.Bool("list", false, "print the 39-policy catalog and exit")
		target    = flag.String("target", "", "MTA address ip:port (required)")
		mtaID     = flag.String("mta-id", "m0001", "MTA identifier for From addresses")
		suffix    = flag.String("suffix", "spf-test.dns-lab.example", "From-domain zone suffix")
		rcptDom   = flag.String("recipient-domain", "", "recipient domain (default: target host)")
		testsFlag = flag.String("tests", "", "comma-separated test ids (default: all 39)")
		sleep     = flag.Duration("sleep", 0, "inter-command sleep (the paper used 15s)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-exchange timeout")
		helo      = flag.String("helo", "probe.dns-lab.example", "HELO domain")
	)
	flag.Parse()
	if *list {
		for _, test := range policy.Catalog() {
			section := test.Section
			if section == "" {
				section = "-"
			}
			fmt.Printf("%-5s %-20s %-6s %s\n", test.ID, test.Name, section, test.Description)
		}
		return
	}
	if *target == "" {
		flag.Usage()
		os.Exit(2)
	}
	ap, err := netip.ParseAddrPort(*target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "probe: bad -target: %v\n", err)
		os.Exit(2)
	}
	recipientDomain := *rcptDom
	if recipientDomain == "" {
		recipientDomain = ap.Addr().String()
	}
	tests := experiment.AllTests()
	if *testsFlag != "" {
		tests = strings.Split(*testsFlag, ",")
	}

	client := &probe.Client{
		Dialer:          &tcpDialer{},
		Suffix:          *suffix,
		HeloDomain:      *helo,
		RecipientDomain: recipientDomain,
		HeloTestID:      "t03",
		Sleep:           *sleep,
		Timeout:         *timeout,
	}
	ctx := context.Background()
	completed := 0
	for _, testID := range tests {
		res := probeAt(ctx, client, ap, *mtaID, testID)
		status := string(res.Stage)
		if res.Stage == probe.StageDone {
			completed++
			status = fmt.Sprintf("done (DATA %d)", res.ReplyCode)
		} else if res.Err != nil {
			status = fmt.Sprintf("%s: %v", res.Stage, res.Err)
		}
		fmt.Printf("%-4s from=%s rcpt=%-30s %s\n",
			testID, client.FromAddress(testID, *mtaID), res.Recipient, status)
	}
	fmt.Printf("%d of %d probes reached DATA\n", completed, len(tests))
}

func probeAt(ctx context.Context, c *probe.Client, ap netip.AddrPort, mtaID, testID string) *probe.Result {
	// The probe client targets port 25 by convention; honour an
	// explicit non-25 port by dialing through a rewriting dialer.
	if ap.Port() == 25 {
		return c.Probe(ctx, ap.Addr(), mtaID, testID)
	}
	inner := c.Dialer
	c2 := *c
	c2.Dialer = dialerFunc(func(ctx context.Context, network, address string) (net.Conn, error) {
		return inner.DialContext(ctx, network, ap.String())
	})
	return c2.Probe(ctx, ap.Addr(), mtaID, testID)
}

type dialerFunc func(ctx context.Context, network, address string) (net.Conn, error)

func (f dialerFunc) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return f(ctx, network, address)
}
