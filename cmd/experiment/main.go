// Command experiment runs the full study end to end in one process —
// synthesizing authoritative DNS, a simulated MTA fleet calibrated to
// the paper's behaviour rates, and all three experiments — and prints
// every table and figure of the paper's evaluation.
//
// Usage:
//
//	experiment [-domains 2000] [-seed 1] [-workers 64] [-timescale 0.001]
//	           [-all-tests] [-paper-scale] [-journal PREFIX] [-resume]
//
// -paper-scale uses the full dataset sizes (26,695 / 22,548 domains);
// expect a long run and tens of thousands of goroutines.
//
// -journal PREFIX journals the two probe experiments to
// PREFIX.notifymx.jsonl and PREFIX.twoweekmx.jsonl; with -resume an
// interrupted run (same -domains/-seed) skips every (MTA, test) pair a
// journal already records as finished. Populations and MTA behaviour
// are rebuilt deterministically from the seed, so the journal keys
// stay valid across processes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sendervalid/internal/campaign"
	"sendervalid/internal/dataset"
	"sendervalid/internal/experiment"
	"sendervalid/internal/mtasim"
	"sendervalid/internal/policy"
	"sendervalid/internal/telemetry"
	"sendervalid/internal/trace"
	"sendervalid/internal/traceflag"
	"sendervalid/internal/wal"
)

func main() {
	var (
		domains     = flag.Int("domains", 2000, "domains per population (ignored with -paper-scale)")
		seed        = flag.Int64("seed", 1, "generation seed")
		workers     = flag.Int("workers", 2*runtime.NumCPU(), "probe/delivery concurrency")
		timeScale   = flag.Float64("timescale", 0.001, "protocol delay multiplier (1.0 = paper timing)")
		allTests    = flag.Bool("all-tests", false, "probe all 39 policies instead of the reported core set")
		paperScale  = flag.Bool("paper-scale", false, "use the paper's full dataset sizes")
		logOut      = flag.String("log-out", "", "write the TwoWeekMX query log (JSON lines) for offline analysis with cmd/analyze")
		journal     = flag.String("journal", "", "journal path prefix for the probe experiments (PREFIX.notifymx.jsonl, PREFIX.twoweekmx.jsonl)")
		journalSync = flag.String("journal-sync", "none", `journal fsync policy: "none", "interval", or "always"`)
		resume      = flag.Bool("resume", false, "skip (MTA, test) pairs the journals already record as finished (requires -journal)")
		metricsAddr = flag.String("metrics-addr", "", "admin HTTP listen address for /metrics, /healthz, /statusz, /debug/pprof; empty disables")
	)
	traceFlags := traceflag.Register(flag.CommandLine)
	flag.Parse()
	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "experiment: -resume requires -journal")
		os.Exit(2)
	}
	syncPolicy, err := wal.ParseSyncPolicy(*journalSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
		os.Exit(2)
	}
	tracing, err := traceFlags.Open(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "experiment: "+format+"\n", args...)
	})
	exitOn(err)
	defer func() {
		if err := tracing.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment: closing trace file: %v\n", err)
		}
	}()

	neSpec := dataset.NotifyEmailSpec(*seed)
	twSpec := dataset.TwoWeekMXSpec(*seed + 1)
	if !*paperScale {
		neSpec.NumDomains = *domains
		neSpec.AlexaTop1M = *domains / 9
		neSpec.AlexaTop1K = *domains / 300
		twSpec.NumDomains = *domains
		twSpec.LocalDomains = max(2, *domains/800)
	}

	tests := experiment.CoreTests
	if *allTests {
		tests = experiment.AllTests()
	}

	start := time.Now()
	ctx := context.Background()

	// The admin plane spans all three phases: each world registers its
	// serving-side families under a distinct experiment= label, so one
	// scrape shows which phase is active and what it has served.
	var reg *telemetry.Registry
	phaseMetrics := func(w *experiment.World, phase string) {
		if reg != nil {
			w.RegisterMetrics(reg, telemetry.L("experiment", phase))
		}
	}
	fleetMetrics := func() *mtasim.Metrics {
		if reg == nil {
			return nil
		}
		return &mtasim.Metrics{}
	}
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		tracing.Tracer.RegisterMetrics(reg)
		admin := &telemetry.AdminServer{Addr: *metricsAddr, Registry: reg, Health: telemetry.NewHealth()}
		if tracing.Tracer != nil {
			admin.Handle("/debug/traces", tracing.Tracer.DebugHandler(reg))
		}
		adminAddr, err := admin.Start()
		exitOn(err)
		fmt.Printf("experiment: admin plane on http://%s/metrics\n", adminAddr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = admin.Shutdown(sctx)
		}()
	}

	fmt.Printf("== generating populations (seed %d) ==\n", *seed)
	nePop := dataset.Generate(neSpec)
	twPop := dataset.Generate(twSpec)
	fmt.Print(experiment.RenderTable1(nePop, twPop))
	fmt.Print(experiment.RenderTable2([]experiment.Table2Row{
		experiment.Table2RowFor(nePop), experiment.Table2RowFor(twPop),
	}))
	fmt.Print(experiment.RenderTable3(nePop, twPop))

	fmt.Printf("\n== NotifyEmail experiment: %d domains, %d MTAs ==\n",
		len(nePop.Domains), len(nePop.MTAs))
	neWorld, err := experiment.BuildWorld(nePop, experiment.WorldConfig{
		Seed: *seed, Rates: experiment.NotifyRates(), TimeScale: *timeScale,
		EnableIPv6DNS: true, FleetMetrics: fleetMetrics(), Tracer: tracing.Tracer,
	})
	exitOn(err)
	phaseMetrics(neWorld, "notifyemail")
	neRun := experiment.RunNotifyEmail(ctx, neWorld, *workers)
	neAnalysis := experiment.AnalyzeNotifyEmail(neWorld, neRun)
	fmt.Print(experiment.RenderTable4(neAnalysis))
	fmt.Print(experiment.RenderTable6(neAnalysis))
	fmt.Print(experiment.RenderTable7(neAnalysis))
	fmt.Print(experiment.RenderFigure2(neAnalysis))
	fmt.Printf("partial validators (§6.1): %d of %d SPF-validating domains\n",
		neAnalysis.PartialDomains, neAnalysis.SPFDomains)
	neWorld.Close()

	fmt.Printf("\n== NotifyMX experiment: probing %d MTAs with %d tests ==\n",
		len(nePop.MTAs), len(tests))
	nmxWorld, err := experiment.BuildWorld(nePop, experiment.WorldConfig{
		Seed: *seed + 7, Rates: experiment.NotifyRates(), TimeScale: *timeScale,
		EnableIPv6DNS: true, ProfileDrift: 0.05, FleetMetrics: fleetMetrics(),
		Tracer: tracing.Tracer,
	})
	exitOn(err)
	phaseMetrics(nmxWorld, "notifymx")
	nmxRun := runProbes(ctx, nmxWorld, tests, *workers, *journal, "notifymx", *resume, syncPolicy, tracing.Tracer)
	nmxAnalysis := experiment.AnalyzeProbes(nmxWorld, nmxRun, false)
	nmxAnalysis.Name = "NotifyMX"
	fmt.Printf("spam-rejecting MTAs: %d; blacklist-rejecting: %d\n",
		nmxAnalysis.SpamRejected, nmxAnalysis.BlacklistRejected)
	fmt.Print(experiment.RenderConsistency(experiment.Compare(nmxWorld, neAnalysis, nmxAnalysis)))
	nmxWorld.Close()

	fmt.Printf("\n== TwoWeekMX experiment: probing %d MTAs ==\n", len(twPop.MTAs))
	twWorld, err := experiment.BuildWorld(twPop, experiment.WorldConfig{
		Seed: *seed + 13, Rates: experiment.TwoWeekRates(), TimeScale: *timeScale,
		EnableIPv6DNS: true, FleetMetrics: fleetMetrics(), Tracer: tracing.Tracer,
	})
	exitOn(err)
	phaseMetrics(twWorld, "twoweekmx")
	twRun := runProbes(ctx, twWorld, tests, *workers, *journal, "twoweekmx", *resume, syncPolicy, tracing.Tracer)
	twAnalysis := experiment.AnalyzeProbes(twWorld, twRun, true)

	fmt.Print(experiment.RenderTable5(
		[]*experiment.ProbeAnalysis{nmxAnalysis, twAnalysis}, neAnalysis))

	fmt.Println()
	sp := experiment.AnalyzeSerialParallel(twWorld)
	ll := experiment.AnalyzeLookupLimits(twWorld)
	b := experiment.AnalyzeBehaviors(twWorld)
	fmt.Print(experiment.RenderFigure5(ll, policy.LimitsDelay.Seconds()))
	fmt.Print(experiment.RenderBehaviors(sp, b))
	clusters, vectors := experiment.AnalyzeFingerprints(twWorld)
	fmt.Print(experiment.RenderFingerprints(clusters, vectors, 8))
	if *logOut != "" {
		f, err := os.Create(*logOut)
		exitOn(err)
		exitOn(twWorld.Log.WriteJSON(f))
		exitOn(f.Close())
		fmt.Printf("query log written to %s (%d entries)\n", *logOut, twWorld.Log.Len())
	}
	twWorld.Close()

	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

// runProbes executes one probe experiment, journaled when -journal is
// set. With -resume, pairs the journal records as finished are skipped
// (the replayed count is reported); without it, a non-empty journal is
// an error so two fresh runs never interleave in one record. New
// journals are checksummed WALs under the -journal-sync policy; legacy
// plain-JSONL journals are detected and continued in kind.
func runProbes(ctx context.Context, w *experiment.World, tests []string, workers int, prefix, name string, resume bool, sync wal.SyncPolicy, tracer *trace.Tracer) *experiment.ProbeRun {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "experiment: "+format+"\n", args...)
	}
	if prefix == "" {
		if tracer == nil {
			return experiment.RunProbes(ctx, w, tests, workers)
		}
		// Unjournaled but traced: run through the campaign machinery so
		// every probe attempt still gets its root span.
		pc := experiment.NewProbeCampaign(w, tests,
			experiment.ProbeCampaignOpts{Workers: workers, Logf: logf, Tracer: tracer})
		run, err := pc.Run(ctx)
		exitOn(err)
		return run
	}
	path := prefix + "." + name + ".jsonl"
	replay, jnl, err := campaign.OpenJournal(path, campaign.JournalOptions{Sync: sync, Logf: logf})
	exitOn(err)
	if replay.TornTail {
		fmt.Fprintf(os.Stderr, "experiment: journal %s had a torn tail; valid prefix salvaged (%d bytes dropped)\n",
			path, replay.DroppedBytes)
	}
	opts := experiment.ProbeCampaignOpts{Workers: workers, Journal: jnl, Logf: logf, Tracer: tracer}
	if resume {
		opts.Replay = replay
		if n := len(replay.Final); n > 0 {
			fmt.Printf("resuming %s: %d pairs already finished in %s\n", name, n, path)
		}
	} else if replay.Events > 0 {
		fmt.Fprintf(os.Stderr, "experiment: journal %s already has %d events; pass -resume to continue it\n", path, replay.Events)
		os.Exit(2)
	}
	pc := experiment.NewProbeCampaign(w, tests, opts)
	run, err := pc.Run(ctx)
	exitOn(err)
	if jerr := pc.JournalError(); jerr != nil {
		fmt.Fprintf(os.Stderr, "experiment: journal %s failed mid-run: %v — the durable record is incomplete\n", path, jerr)
	}
	exitOn(jnl.Close())
	return run
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
		os.Exit(1)
	}
}
