package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/trace"
)

// maxSpanLine bounds one span record line when scanning a trace file.
const maxSpanLine = 1 << 20

// loadSpans reads a span stream written with -trace-file (WAL-framed
// JSONL, possibly rotated) and returns the decoded records. Undecodable
// lines are counted, not fatal: a trace file that lost its tail at a
// crash still yields every intact span.
func loadSpans(path string) (recs []trace.Record, bad int, err error) {
	f, err := dnsserver.OpenLogStream(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), maxSpanLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := trace.ParseRecord(line)
		if err != nil {
			bad++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, bad, sc.Err()
}

// spanNode is one span in a reassembled trace tree.
type spanNode struct {
	rec  trace.Record
	kids []*spanNode
	// joined are the query-log entries attributed to this span (only
	// resolver wire spans ever match).
	joined []dnsserver.LogEntry
}

// buildForest reassembles span records into per-trace trees. Orphans
// (children whose parent never made it into the file — e.g. an
// unsampled parent of a slow-promoted child) become roots of their
// own. Roots are returned in start-time order.
func buildForest(recs []trace.Record) []*spanNode {
	nodes := make(map[string]*spanNode, len(recs))
	for i := range recs {
		nodes[recs[i].Trace+"/"+recs[i].Span] = &spanNode{rec: recs[i]}
	}
	var roots []*spanNode
	for _, n := range nodes {
		if n.rec.Parent != "" {
			if p, ok := nodes[n.rec.Trace+"/"+n.rec.Parent]; ok {
				p.kids = append(p.kids, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.kids)
	}
	return roots
}

func sortNodes(ns []*spanNode) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].rec.Start.Before(ns[j].rec.Start) })
}

// joinQueries attributes query-log entries to the wire spans that
// elicited them: an entry joins a "resolver.wire" or "resolver.exchange"
// span when the names and types match and the entry's arrival falls
// inside the span's lifetime (with slack for clock granularity). Each
// entry joins at most one span. It returns how many entries joined.
func joinQueries(roots []*spanNode, entries []dnsserver.LogEntry) int {
	const slack = 25 * time.Millisecond
	type key struct {
		name string
		typ  string
	}
	byKey := make(map[key][]int)
	for i, e := range entries {
		k := key{dns.CanonicalName(e.Name), e.Type.String()}
		byKey[k] = append(byKey[k], i)
	}
	taken := make([]bool, len(entries))
	joined := 0
	var walk func(*spanNode)
	walk = func(n *spanNode) {
		if fam := n.rec.Family(); fam == "resolver" {
			name := n.rec.Attr("dns.name")
			typ := n.rec.Attr("dns.type")
			if name != "" && typ != "" {
				start := n.rec.Start.Add(-slack)
				end := n.rec.Start.Add(time.Duration(n.rec.DurUS) * time.Microsecond).Add(slack)
				for _, i := range byKey[key{dns.CanonicalName(name), typ}] {
					if taken[i] {
						continue
					}
					if t := entries[i].Time; !t.Before(start) && !t.After(end) {
						taken[i] = true
						joined++
						n.joined = append(n.joined, entries[i])
					}
				}
			}
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return joined
}

// lookupKey identifies one (MTA, test) pair in the aggregate view.
type lookupKey struct {
	MTA  string
	Test string
}

// aggregateLookups tallies joined wire lookups per (MTA, test) pair.
func aggregateLookups(roots []*spanNode) map[lookupKey]int {
	agg := make(map[lookupKey]int)
	var walk func(*spanNode)
	walk = func(n *spanNode) {
		for _, e := range n.joined {
			agg[lookupKey{MTA: e.MTAID, Test: e.TestID}]++
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return agg
}

// renderTraceTrees writes the reassembled trace trees (capped at max
// roots) followed by the per-(MTA, test) lookup totals. entries may be
// the full attributed query log; only time-and-name matches join.
func renderTraceTrees(w io.Writer, recs []trace.Record, entries []dnsserver.LogEntry, max int) {
	roots := buildForest(recs)
	joined := joinQueries(roots, entries)
	fmt.Fprintf(w, "traces: %d spans in %d trees, %d of %d log entries joined to wire spans\n",
		len(recs), len(roots), joined, len(entries))
	shown := roots
	if max > 0 && len(shown) > max {
		shown = shown[:max]
		fmt.Fprintf(w, "(showing first %d trees)\n", max)
	}
	for _, r := range shown {
		writeNode(w, r, 0)
	}
	agg := aggregateLookups(roots)
	if len(agg) == 0 {
		return
	}
	keys := make([]lookupKey, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].MTA != keys[j].MTA {
			return keys[i].MTA < keys[j].MTA
		}
		return keys[i].Test < keys[j].Test
	})
	fmt.Fprintf(w, "lookups per (MTA, test):\n")
	for _, k := range keys {
		fmt.Fprintf(w, "  mta=%-10s test=%-6s lookups=%d\n", k.MTA, k.Test, agg[k])
	}
}

func writeNode(w io.Writer, n *spanNode, depth int) {
	indent := strings.Repeat("  ", depth)
	ms := float64(n.rec.DurUS) / 1e3
	fmt.Fprintf(w, "%s%-24s %9.3fms", indent, n.rec.Name, ms)
	if depth == 0 {
		fmt.Fprintf(w, " trace=%s", n.rec.Trace)
	}
	for _, a := range n.rec.Attrs {
		fmt.Fprintf(w, " %s=%s", a.K, a.V)
	}
	if n.rec.Err != "" {
		fmt.Fprintf(w, " err=%q", n.rec.Err)
	}
	fmt.Fprintln(w)
	for _, e := range n.joined {
		fmt.Fprintf(w, "%s  -> served %s mta=%s test=%s over %s at %s\n",
			indent, e.Type, e.MTAID, e.TestID, e.Transport, e.Time.Format("15:04:05.000"))
	}
	for _, k := range n.kids {
		writeNode(w, k, depth+1)
	}
}
