// Command analyze runs the study's offline analyses over a saved
// query log (JSON lines, as written by `experiment -log-out` or
// QueryLog.WriteJSON). This mirrors the real study's workflow: the
// authoritative server records raw queries during collection, and the
// behaviour analyses — serial/parallel classification, lookup-limit
// CDF, the §7.3 catalog, and validator fingerprinting — run afterwards
// over the file, repeatably.
//
// With -trace, a span stream recorded by any command's -trace-file
// flag is reassembled into per-trace trees and joined against the
// query log: wire spans carrying dns.name/dns.type attributes claim
// the logged queries they elicited, yielding per-(MTA, test) lookup
// counts.
//
// Usage:
//
//	analyze -log queries.jsonl [-fingerprints 10] [-workers N]
//	        [-trace spans.wal] [-trace-trees 10]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"sendervalid/internal/dnsserver"
	"sendervalid/internal/experiment"
	"sendervalid/internal/policy"
	"sendervalid/internal/telemetry"
)

// meteredReader counts the bytes flowing out of the log file and sizes
// each read into a histogram, so ingest throughput can be reported
// from the same instruments the serving layers use.
type meteredReader struct {
	r     io.Reader
	bytes telemetry.Counter
	reads *telemetry.Histogram
}

func (m *meteredReader) Read(p []byte) (int, error) {
	n, err := m.r.Read(p)
	if n > 0 {
		m.bytes.Add(uint64(n))
		m.reads.Observe(float64(n))
	}
	return n, err
}

func main() {
	var (
		logPath = flag.String("log", "", "query log file (JSON lines; required)")
		topFP   = flag.Int("fingerprints", 10, "behaviour families to show")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0),
			"parallel log-decode workers (1 = serial)")
		tracePath = flag.String("trace", "",
			"span stream (as written by -trace-file) to reassemble and join against the query log")
		traceMax = flag.Int("trace-trees", 10, "trace trees to print with -trace (0 = all)")
	)
	flag.Parse()
	if *logPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	// OpenLogStream handles every on-disk shape the collectors produce:
	// plain JSONL, WAL-framed records, rotated segments, or a mix —
	// sniffed per segment, presented as one JSONL stream.
	f, err := dnsserver.OpenLogStream(*logPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if n := f.Segments(); n > 1 {
		fmt.Fprintf(os.Stderr, "analyze: reading %d log segments\n", n)
	}

	// Stream the log rather than slurping it: every analysis below
	// ignores queries it cannot attribute to an MTA, so only the
	// attributed subset is retained in memory. Decoding fans out over
	// -workers goroutines; the ordered merge delivers entries in file
	// order, so the output is identical to a serial scan at any worker
	// count.
	var entries []dnsserver.LogEntry
	var ingested telemetry.Counter
	total := 0
	mtas := map[string]bool{}
	tests := map[string]bool{}
	mr := &meteredReader{r: f, reads: telemetry.NewHistogram(telemetry.SizeBuckets)}
	ingestStart := time.Now()
	err = dnsserver.ParForEachLogJSONOrdered(mr, *workers, func(e dnsserver.LogEntry) error {
		total++
		ingested.Inc()
		if e.TestID != "" {
			tests[e.TestID] = true
		}
		if e.MTAID != "" {
			mtas[e.MTAID] = true
			entries = append(entries, e)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(ingestStart)
	if st := f.Stats(); st.Truncated {
		fmt.Fprintf(os.Stderr,
			"analyze: WARNING: %d bytes of torn/corrupt WAL tail skipped (%d framed records salvaged) — the log lost entries at a crash\n",
			st.DroppedBytes, st.Records)
	}
	reads := mr.reads.Snapshot()
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Fprintf(os.Stderr,
		"analyze: ingested %d entries (%.1f MB) in %v — %.0f entries/s, %.1f MB/s, mean read %.0f B across %d reads\n",
		ingested.Value(), float64(mr.bytes.Value())/1e6, elapsed.Round(time.Millisecond),
		float64(ingested.Value())/secs, float64(mr.bytes.Value())/1e6/secs,
		reads.Mean(), reads.Count)
	fmt.Printf("log: %d queries (%d attributed) from %d MTAs across %d test policies\n\n",
		total, len(entries), len(mtas), len(tests))

	sp := experiment.AnalyzeSerialParallelEntries(entries)
	ll := experiment.AnalyzeLookupLimitsEntries(entries)
	b := experiment.AnalyzeBehaviorsEntries(entries)
	if ll.Tested > 0 {
		fmt.Print(experiment.RenderFigure5(ll, policy.LimitsDelay.Seconds()))
	}
	fmt.Print(experiment.RenderBehaviors(sp, b))

	clusters, vectors := experiment.AnalyzeFingerprintEntries(entries)
	fmt.Print(experiment.RenderFingerprints(clusters, vectors, *topFP))

	if *tracePath != "" {
		recs, bad, err := loadSpans(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: reading trace file: %v\n", err)
			os.Exit(1)
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "analyze: %d undecodable span lines skipped\n", bad)
		}
		fmt.Println()
		renderTraceTrees(os.Stdout, recs, entries, *traceMax)
	}
}
