package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/trace"
	"sendervalid/internal/wal"
)

// writeSpanWAL writes records through the same WAL framing the
// -trace-file flag uses, one framed record per span.
func writeSpanWAL(t *testing.T, path string, recs []trace.Record) {
	t.Helper()
	w, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 1024)
	for _, r := range recs {
		buf = trace.AppendRecordJSON(buf[:0], r)
		if _, err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func spanRec(traceID, spanID, parent, name string, start time.Time, dur time.Duration) trace.Record {
	return trace.Record{
		Trace: traceID, Span: spanID, Parent: parent, Name: name,
		Start: start, DurUS: dur.Microseconds(),
	}
}

// TestLoadSpansTornTail pins crash recovery for the span stream: a
// trace file that lost bytes mid-record at a crash still yields every
// intact span, with no undecodable lines surfacing (the WAL framing
// absorbs the torn tail before the JSONL layer sees it).
func TestLoadSpansTornTail(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, spanRec(
			strings.Repeat("a", 31)+string(rune('0'+i)),
			strings.Repeat("b", 15)+string(rune('0'+i)),
			"", "spf.check_host", base.Add(time.Duration(i)*time.Second), time.Millisecond))
	}
	path := filepath.Join(t.TempDir(), "spans.wal")
	writeSpanWAL(t, path, recs)

	// Sanity: the intact file round-trips completely.
	got, bad, err := loadSpans(path)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 || len(got) != len(recs) {
		t.Fatalf("intact file: %d records, %d bad; want %d, 0", len(got), bad, len(recs))
	}

	// Tear the tail mid-record, as a crash between write and flush
	// would: the last record loses half its bytes.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-40); err != nil {
		t.Fatal(err)
	}

	got, bad, err = loadSpans(path)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("torn tail leaked %d undecodable lines through the WAL framing", bad)
	}
	if len(got) != len(recs)-1 {
		t.Fatalf("torn file salvaged %d records, want %d", len(got), len(recs)-1)
	}
	for i, r := range got {
		if r.Trace != recs[i].Trace || r.Span != recs[i].Span {
			t.Errorf("salvaged record %d is %s/%s, want %s/%s",
				i, r.Trace, r.Span, recs[i].Trace, recs[i].Span)
		}
	}
}

// TestRenderTraceTrees drives the forest assembly and query-log join
// over synthetic data: nesting, orphan adoption, time-window and
// name/type matching, the one-entry-one-span rule, and the
// per-(MTA, test) aggregate.
func TestRenderTraceTrees(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	traceA := strings.Repeat("a", 32)
	traceB := strings.Repeat("b", 32)

	root := spanRec(traceA, "a000000000000001", "", "spfcheck", base, 100*time.Millisecond)
	child := spanRec(traceA, "a000000000000002", "a000000000000001", "spf.check_host", base.Add(time.Millisecond), 80*time.Millisecond)
	wire := spanRec(traceA, "a000000000000003", "a000000000000002", "resolver.wire", base.Add(2*time.Millisecond), 40*time.Millisecond)
	wire.Attrs = []trace.Attr{{K: "dns.name", V: "x.t01.m07.spf.example.test."}, {K: "dns.type", V: "TXT"}}
	// An orphan: its parent span was never exported (unsampled parent of
	// a promoted child). It must become its own root, joinable.
	orphan := spanRec(traceB, "b000000000000001", "b0000000000000ff", "resolver.wire", base.Add(time.Second), 30*time.Millisecond)
	orphan.Attrs = []trace.Attr{{K: "dns.name", V: "y.t02.m07.spf.example.test."}, {K: "dns.type", V: "A"}}

	entries := []dnsserver.LogEntry{
		// Joins the traceA wire span: name, type, and time all match.
		{Time: base.Add(10 * time.Millisecond), Name: "x.t01.m07.spf.example.test.",
			Type: dns.TypeTXT, TestID: "t01", MTAID: "m07", Transport: "udp"},
		// Same name/type but far outside the span window: stays unjoined.
		{Time: base.Add(time.Hour), Name: "x.t01.m07.spf.example.test.",
			Type: dns.TypeTXT, TestID: "t01", MTAID: "m07", Transport: "udp"},
		// Type mismatch: stays unjoined.
		{Time: base.Add(10 * time.Millisecond), Name: "x.t01.m07.spf.example.test.",
			Type: dns.TypeA, TestID: "t01", MTAID: "m07", Transport: "udp"},
		// Joins the orphan root.
		{Time: base.Add(time.Second + 5*time.Millisecond), Name: "y.t02.m07.spf.example.test.",
			Type: dns.TypeA, TestID: "t02", MTAID: "m07", Transport: "tcp"},
	}

	var b strings.Builder
	renderTraceTrees(&b, []trace.Record{root, child, wire, orphan}, entries, 0)
	out := b.String()

	if !strings.Contains(out, "traces: 4 spans in 2 trees, 2 of 4 log entries joined to wire spans") {
		t.Errorf("header wrong:\n%s", out)
	}
	// Nesting: the wire span sits two levels under the root.
	if !strings.Contains(out, "\n    resolver.wire") {
		t.Errorf("wire span not nested at depth 2:\n%s", out)
	}
	if !strings.Contains(out, "-> served TXT mta=m07 test=t01 over udp") {
		t.Errorf("joined TXT entry not rendered under its span:\n%s", out)
	}
	if !strings.Contains(out, "-> served A mta=m07 test=t02 over tcp") {
		t.Errorf("orphan root's joined entry missing:\n%s", out)
	}
	if !strings.Contains(out, "mta=m07        test=t01    lookups=1") ||
		!strings.Contains(out, "mta=m07        test=t02    lookups=1") {
		t.Errorf("per-(MTA, test) aggregate wrong:\n%s", out)
	}
	// Roots are start-ordered: traceA (noon) before traceB (+1s).
	if ai, bi := strings.Index(out, "trace="+traceA), strings.Index(out, "trace="+traceB); ai < 0 || bi < 0 || ai > bi {
		t.Errorf("roots not in start order (a@%d, b@%d):\n%s", ai, bi, out)
	}
}

// TestRenderTraceTreesCap pins the -trace-trees cap.
func TestRenderTraceTreesCap(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var recs []trace.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, spanRec(
			strings.Repeat("c", 31)+string(rune('0'+i)),
			strings.Repeat("d", 15)+string(rune('0'+i)),
			"", "probe.smtp", base.Add(time.Duration(i)*time.Second), time.Millisecond))
	}
	var b strings.Builder
	renderTraceTrees(&b, recs, nil, 2)
	out := b.String()
	if !strings.Contains(out, "(showing first 2 trees)") {
		t.Errorf("cap notice missing:\n%s", out)
	}
	if got := strings.Count(out, "probe.smtp"); got != 2 {
		t.Errorf("rendered %d trees, want 2:\n%s", got, out)
	}
}
