// Command campaign runs a durable, rate-limited probe campaign against
// the simulated world. It is the operational face of the
// internal/campaign subsystem: the same sweep cmd/experiment performs
// one-shot, but paced per MTA, retrying transient failures, journaling
// every task transition, and resumable after a crash or Ctrl-C.
//
// Usage:
//
//	campaign [-domains 2000] [-seed 1] [-tests core|all|t01,t02,...]
//	         [-workers 64] [-rate 2] [-burst 1] [-attempts 4]
//	         [-journal camp.wal] [-journal-sync none|interval|always]
//	         [-journal-rotate BYTES] [-resume] [-interval 2s]
//	         [-population notify|twoweek] [-timescale 0.001]
//	         [-chaos-seed N] [-chaos-dial-failure 0.25]
//
// The world is a deterministic function of -domains/-seed/-population,
// so a resumed invocation with the same parameters probes the same
// fleet; the journal's (MTA, test) keys line up, and only unfinished
// pairs are re-run. Interrupting with Ctrl-C cancels the campaign
// cleanly (in-flight probes stop within one SMTP step) and leaves the
// journal ready for -resume.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"sendervalid/internal/campaign"
	"sendervalid/internal/dataset"
	"sendervalid/internal/experiment"
	"sendervalid/internal/netsim"
	"sendervalid/internal/telemetry"
	"sendervalid/internal/traceflag"
	"sendervalid/internal/wal"
)

func main() {
	var (
		domains     = flag.Int("domains", 2000, "domains in the population")
		seed        = flag.Int64("seed", 1, "generation seed (must match across resume)")
		testsFlag   = flag.String("tests", "core", `test policies: "core", "all", or a comma-separated ID list`)
		workers     = flag.Int("workers", 2*runtime.NumCPU(), "global concurrency cap")
		rate        = flag.Float64("rate", 2, "probes/second budget per MTA (0 = unlimited)")
		burst       = flag.Int("burst", 1, "per-MTA token bucket depth")
		attempts    = flag.Int("attempts", 4, "attempt budget per (MTA, test) pair")
		journal      = flag.String("journal", "", "append-only journal of task transitions (checksummed WAL; legacy JSONL journals are detected and continued)")
		journalSync  = flag.String("journal-sync", "none", `journal fsync policy: "none" (kernel-buffered), "interval" (group commit), "always" (fsync per event)`)
		journalRotat = flag.Int64("journal-rotate", 0, "rotate the journal when the live segment exceeds this many bytes (0 = never)")
		resume       = flag.Bool("resume", false, "replay the journal and re-run only unfinished pairs")
		chaosSeed    = flag.Int64("chaos-seed", 0, "inject seeded network chaos into the simulated fabric (0 disables)")
		chaosDial    = flag.Float64("chaos-dial-failure", 0.25, "dial-failure probability under -chaos-seed")
		interval    = flag.Duration("interval", 2*time.Second, "progress snapshot period (0 disables)")
		population  = flag.String("population", "notify", `population flavour: "notify" or "twoweek"`)
		timeScale   = flag.Float64("timescale", 0.001, "protocol delay multiplier (1.0 = paper timing)")
		metricsAddr = flag.String("metrics-addr", "", "admin HTTP listen address for /metrics, /healthz, /statusz, /debug/pprof; empty disables")
	)
	traceFlags := traceflag.Register(flag.CommandLine)
	flag.Parse()

	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "campaign: -resume requires -journal")
		os.Exit(2)
	}

	var tests []string
	switch *testsFlag {
	case "core":
		tests = experiment.CoreTests
	case "all":
		tests = experiment.AllTests()
	default:
		tests = strings.Split(*testsFlag, ",")
	}

	var spec dataset.Spec
	var rates = experiment.NotifyRates()
	switch *population {
	case "notify":
		spec = dataset.NotifyEmailSpec(*seed)
		spec.NumDomains = *domains
		spec.AlexaTop1M = *domains / 9
		spec.AlexaTop1K = *domains / 300
	case "twoweek":
		spec = dataset.TwoWeekMXSpec(*seed)
		spec.NumDomains = *domains
		spec.LocalDomains = max(2, *domains/800)
		rates = experiment.TwoWeekRates()
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown population %q\n", *population)
		os.Exit(2)
	}

	syncPolicy, err := wal.ParseSyncPolicy(*journalSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("== building world: %d domains, seed %d, %q rates ==\n", *domains, *seed, *population)
	pop := dataset.Generate(spec)
	world, err := experiment.BuildWorld(pop, experiment.WorldConfig{
		Seed: *seed, Rates: rates, TimeScale: *timeScale, EnableIPv6DNS: true,
	})
	exitOn(err)
	defer world.Close()

	if *chaosSeed != 0 {
		world.Fabric.SetChaosSeed(*chaosSeed)
		world.Fabric.SetDefaultFaults(&netsim.FaultProfile{
			DialFailure: *chaosDial,
			MaxChunk:    512,
		})
		fmt.Printf("campaign: chaos enabled (seed %d, dial failure %.2f)\n", *chaosSeed, *chaosDial)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
	}
	tracing, err := traceFlags.Open(logf)
	exitOn(err)
	defer func() {
		if err := tracing.Close(); err != nil {
			logf("closing trace file: %v", err)
		}
	}()
	opts := experiment.ProbeCampaignOpts{
		Workers:     *workers,
		MTARate:     *rate,
		MTABurst:    *burst,
		MaxAttempts: *attempts,
		Logf:        logf,
		Tracer:      tracing.Tracer,
	}
	var jnl campaign.Journal
	if *journal != "" {
		var replay *campaign.Replay
		replay, jnl, err = campaign.OpenJournal(*journal, campaign.JournalOptions{
			Sync:        syncPolicy,
			RotateBytes: *journalRotat,
			Logf:        logf,
		})
		exitOn(err)
		defer jnl.Close()
		opts.Journal = jnl
		if replay.TornTail {
			fmt.Fprintf(os.Stderr,
				"campaign: journal %s had a torn tail (%d bytes dropped, %d malformed lines); valid prefix salvaged\n",
				*journal, replay.DroppedBytes, replay.Malformed)
		}
		if *resume {
			opts.Replay = replay
			fmt.Printf("journal %s: %d events, %d done, %d failed — resuming unfinished work\n",
				*journal, replay.Events, replay.Done(), replay.Failed())
		} else if replay.Events > 0 {
			fmt.Fprintf(os.Stderr,
				"campaign: journal %s already has %d events; pass -resume to continue it\n",
				*journal, replay.Events)
			os.Exit(2)
		}
	}

	pc := experiment.NewProbeCampaign(world, tests, opts)

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		pc.RegisterMetrics(reg)
		telemetry.RegisterRuntimeMetrics(reg)
		tracing.Tracer.RegisterMetrics(reg)
		health := telemetry.NewHealth()
		health.Register("campaign", func() error { return nil })
		if jnl != nil {
			jnl.RegisterMetrics(reg, telemetry.L("name", "journal"))
			health.Register("journal", jnl.Check)
		}
		admin := &telemetry.AdminServer{Addr: *metricsAddr, Registry: reg, Health: health}
		if tracing.Tracer != nil {
			admin.Handle("/debug/traces", tracing.Tracer.DebugHandler(reg))
		}
		adminAddr, err := admin.Start()
		exitOn(err)
		fmt.Printf("campaign: admin plane on http://%s/metrics\n", adminAddr)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = admin.Shutdown(ctx)
		}()
	}

	total := pc.Snapshot().Total
	fmt.Printf("campaign: %d (MTA, test) pairs across %d MTAs, %d tests; rate %.3g/s/MTA, %d workers\n",
		total, len(pop.MTAs), len(tests), *rate, *workers)
	if total == 0 {
		fmt.Println("nothing to do: journal records every pair as finished")
		return
	}

	// Ctrl-C cancels cleanly: in-flight probes abandon their SMTP walk
	// within one step and the journal stays resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProgress := make(chan struct{})
	var progress sync.WaitGroup
	if *interval > 0 {
		progress.Add(1)
		go func() {
			defer progress.Done()
			ticker := time.NewTicker(*interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					fmt.Println(pc.Snapshot())
				case <-stopProgress:
					return
				}
			}
		}()
	}

	run, runErr := pc.Run(ctx)
	close(stopProgress)
	progress.Wait()

	s := pc.Snapshot()
	fmt.Println(s)
	if jerr := pc.JournalError(); jerr != nil {
		fmt.Fprintf(os.Stderr,
			"campaign: journal failed mid-run (%d events dropped): %v — the durable record is incomplete\n",
			s.JournalDropped, jerr)
	}
	if runErr != nil {
		if jnl != nil {
			_ = jnl.Sync()
		}
		fmt.Printf("campaign interrupted (%v): %d of %d pairs finished", runErr, s.Completed(), total)
		if *journal != "" {
			fmt.Printf("; rerun with -resume to continue")
		}
		fmt.Println()
		// os.Exit skips deferred closes: drain the span stream first so
		// an interrupted run still keeps its sampled spans.
		_ = tracing.Close()
		os.Exit(130)
	}

	a := experiment.AnalyzeProbes(world, run, false)
	fmt.Printf("\ncampaign complete: %d done, %d failed, %d retries across %d attempts\n",
		s.Done, s.Failed, s.Retried, s.Attempts)
	fmt.Printf("SPF-validating: %d of %d MTAs, %d of %d domains\n",
		a.SPFMTAs, a.MTAs, a.SPFDomains, a.Domains)
	fmt.Printf("probes completed %d of %d; spam-rejecting MTAs %d, blacklist-rejecting %d\n",
		a.ProbesCompleted, a.ProbesTotal, a.SpamRejected, a.BlacklistRejected)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
}
