package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	mrand "math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"sendervalid/internal/campaign"
	"sendervalid/internal/wal"
)

// The process-level half of the crash harness re-executes this test
// binary as the campaign command itself (the helper-process pattern),
// so a real process is SIGKILLed mid-run — torn journal tails, lost
// in-flight probes, dead flusher goroutines and all — without needing
// a separate `go build` step.
func TestMain(m *testing.M) {
	if os.Getenv("CAMPAIGN_CRASH_CHILD") == "1" {
		// Everything after "--" is the campaign's own command line.
		for i, a := range os.Args {
			if a == "--" {
				os.Args = append([]string{"campaign"}, os.Args[i+1:]...)
				break
			}
		}
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// chaosSeed returns the seed for the kill schedule and injected
// faults, overridable via CHAOS_SEED (the same knob as `make chaos`),
// and always logs it so a failure is reproducible.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(42)
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("CHAOS_SEED=%d (override with the env var to reproduce)", seed)
	return seed
}

// child starts this binary as a campaign process with the given args.
func child(t *testing.T, args []string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"--"}, args...)...)
	cmd.Env = append(os.Environ(), "CAMPAIGN_CRASH_CHILD=1")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	return cmd, &out
}

// runToCompletion runs a child and fails the test if it exits nonzero.
func runToCompletion(t *testing.T, args []string) string {
	t.Helper()
	cmd, out := child(t, args)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("child failed: %v\n%s", err, out.String())
	}
	return out.String()
}

// fileSize returns the journal's current size (0 if absent).
func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

// killWhenGrown SIGKILLs the child once the journal has grown past
// target bytes. It returns true if the kill landed, false if the child
// completed first.
func killWhenGrown(t *testing.T, cmd *exec.Cmd, out *bytes.Buffer, path string, target int64) bool {
	t.Helper()
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	deadline := time.After(60 * time.Second)
	tick := time.NewTicker(3 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-exited:
			if err != nil {
				t.Fatalf("child exited with error before kill: %v\n%s", err, out.String())
			}
			return false
		case <-deadline:
			_ = cmd.Process.Kill()
			<-exited
			t.Fatalf("child made no progress (journal at %d bytes, wanted %d)\n%s",
				fileSize(path), target, out.String())
		case <-tick.C:
			if fileSize(path) >= target {
				if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no final sync
					t.Fatalf("kill: %v", err)
				}
				<-exited
				return true
			}
		}
	}
}

// journalEvent mirrors the journal's line schema for raw event-level
// accounting (the campaign package's replayer deduplicates per key,
// which would hide a double completion).
type journalEvent struct {
	Ev  string       `json:"ev"`
	Key campaign.Key `json:"k"`
}

// readJournalRaw streams every segment of the WAL journal and returns
// the replay plus a per-key count of final (done/failed) events.
func readJournalRaw(t *testing.T, path string) (*campaign.Replay, map[campaign.Key]int) {
	t.Helper()
	segs, err := wal.Segments(path)
	if err != nil {
		t.Fatal(err)
	}
	var all bytes.Buffer
	for _, seg := range segs {
		f, err := os.Open(seg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(&all, wal.NewReader(f)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	finals := make(map[campaign.Key]int)
	for _, line := range bytes.Split(all.Bytes(), []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var e journalEvent
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("unparseable journal line %q: %v", line, err)
		}
		if e.Ev == "done" || e.Ev == "failed" {
			finals[e.Key]++
		}
	}
	replay, err := campaign.ReadJournal(bytes.NewReader(all.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return replay, finals
}

// TestKillResumeConvergence is the acceptance proof for the WAL
// journal: SIGKILL a real campaign process mid-run — repeatedly, under
// seeded network chaos — then resume, and the final durable state must
// match an uninterrupted run's: every (MTA, test) pair reaches exactly
// one final state, none lost, none run twice to completion.
func TestKillResumeConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level crash harness; skipped in -short")
	}
	seed := chaosSeed(t)
	dir := t.TempDir()
	common := []string{
		"-domains", "30", "-tests", "t01,t03",
		"-rate", "0", "-interval", "0",
		// Attempt budget deep enough that a 0.25 dial-failure rate
		// cannot realistically exhaust it: every pair ends done, which
		// makes the reference and killed runs' snapshots comparable.
		"-attempts", "12",
		"-chaos-seed", strconv.FormatInt(seed, 10),
		"-chaos-dial-failure", "0.25",
	}

	// Uninterrupted reference run.
	ref := filepath.Join(dir, "ref.wal")
	runToCompletion(t, append(append([]string{}, common...), "-journal", ref))
	refReplay, refFinals := readJournalRaw(t, ref)
	total := len(refReplay.Final)
	if total == 0 {
		t.Fatal("reference run recorded no finished pairs")
	}
	if refReplay.Failed() != 0 {
		t.Fatalf("reference run had %d failed pairs; the convergence comparison needs a fully-succeeding schedule", refReplay.Failed())
	}
	for k, n := range refFinals {
		if n != 1 {
			t.Fatalf("reference run finished %v %d times", k, n)
		}
	}

	// Kill/resume rounds against one journal. The seeded RNG picks how
	// far past the previous round's high-water mark each kill lands, so
	// the schedule covers both the enqueue burst and the probing phase.
	rng := mrand.New(mrand.NewSource(seed))
	jp := filepath.Join(dir, "kill.wal")
	kills := 0
	for round := 0; round < 5; round++ {
		args := append(append([]string{}, common...), "-journal", jp)
		if round > 0 {
			args = append(args, "-resume")
		}
		target := fileSize(jp) + 1000 + rng.Int63n(12000)
		cmd, out := child(t, args)
		if !killWhenGrown(t, cmd, out, jp, target) {
			break // completed before the kill could land
		}
		kills++
	}
	if kills == 0 {
		t.Fatal("no kill ever landed; the harness is not exercising crashes")
	}
	t.Logf("killed the campaign %d times", kills)

	// Final resume must drive the journal to convergence.
	out := runToCompletion(t, append(append([]string{}, common...), "-journal", jp, "-resume"))
	t.Logf("final resume output:\n%s", out)

	replay, finals := readJournalRaw(t, jp)
	if got := len(replay.Final); got != total {
		t.Fatalf("converged journal records %d finished pairs, reference %d", got, total)
	}
	for k := range refReplay.Final {
		n, ok := finals[k]
		if !ok {
			t.Errorf("pair %v lost: finished in reference, never in killed run", k)
			continue
		}
		if n != 1 {
			t.Errorf("pair %v completed %d times (duplicated completion)", k, n)
		}
	}
	if replay.Done() != refReplay.Done() || replay.Failed() != refReplay.Failed() {
		t.Fatalf("final snapshot diverges: done %d failed %d, reference done %d failed %d",
			replay.Done(), replay.Failed(), refReplay.Done(), refReplay.Failed())
	}
	// The resumed processes must have recovered, not resynced: a WAL
	// journal never contains a malformed payload line.
	if replay.Malformed != 0 {
		t.Fatalf("converged journal contains %d malformed lines", replay.Malformed)
	}
}

// TestChildUsageError keeps the helper-process plumbing honest: a bad
// flag must surface as a nonzero exit, proving the child really runs
// the campaign main and its exit codes propagate.
func TestChildUsageError(t *testing.T) {
	cmd, out := child(t, []string{"-definitely-not-a-flag"})
	err := cmd.Wait()
	if err == nil {
		t.Fatalf("child accepted a bogus flag\n%s", out.String())
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() == 0 {
		t.Fatalf("unexpected child failure mode: %v", err)
	}
}
