// Command selftest serves the sender-validation self-assessment web
// tool the paper proposes in §8. It runs the instrumented DNS zone,
// the test-message sender, and an HTTP front end; entering a mailbox
// triggers one legitimate DKIM-signed delivery and a report on which
// of SPF/DKIM/DMARC the receiving infrastructure validated.
//
// In -demo mode (the default) the tool also runs a small simulated MTA
// fleet with assorted validation behaviours so the flow can be tried
// immediately: assess operator@full.example, operator@spfonly.example,
// operator@partial.example, operator@postdata.example, or
// operator@none.example.
//
// Usage:
//
//	selftest [-listen 127.0.0.1:8080] [-zone selftest.dns-lab.example]
package main

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"flag"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"time"

	"sendervalid/internal/dkim"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/mtasim"
	"sendervalid/internal/netsim"
	"sendervalid/internal/policy"
	"sendervalid/internal/probe"
	"sendervalid/internal/selftest"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		zone   = flag.String("zone", "selftest.dns-lab.example", "instrumented From-domain zone")
	)
	flag.Parse()

	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	exitOn(err)
	keyTXT, err := dkim.FormatKeyRecord(pub)
	exitOn(err)

	senderAddr := netip.MustParseAddr("203.0.113.40")
	cfg := &policy.NotifyEmailConfig{
		Suffix:        *zone + ".",
		SenderV4:      senderAddr,
		DKIMSelector:  "st",
		DKIMKeyRecord: keyTXT,
		Contact:       "selftest@" + *zone,
		TimeScale:     0.01,
	}
	log := &dnsserver.QueryLog{}
	srv := &dnsserver.Server{
		Zones: []*dnsserver.Zone{{Suffix: *zone + ".", LabelDepth: 1, Default: cfg.Responder()}},
		Log:   log,
	}
	dnsAddr, err := srv.Start()
	exitOn(err)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// The demo fleet: one MTA per behaviour archetype.
	fabric := netsim.NewFabric()
	demo := map[string]mtasim.Profile{
		"full.example": {ValidatesSPF: true, ValidatesDKIM: true, ValidatesDMARC: true,
			Phase: mtasim.AtData, AcceptAnyUser: true},
		"spfonly.example":  {ValidatesSPF: true, Phase: mtasim.AtMail, AcceptAnyUser: true},
		"partial.example":  {ValidatesSPF: true, PartialSPF: true, Phase: mtasim.AtMail, AcceptAnyUser: true},
		"postdata.example": {ValidatesSPF: true, Phase: mtasim.PostData, AcceptAnyUser: true},
		"none.example":     {AcceptAnyUser: true},
	}
	targets := make(map[string]netip.Addr)
	host := 50
	for domain, profile := range demo {
		addr := netip.AddrFrom4([4]byte{198, 51, 100, byte(host)})
		host++
		mta := mtasim.New(mtasim.Config{
			ID: domain, Hostname: "mx." + domain, Addr4: addr,
			Profile: profile, Fabric: fabric, DNSAddr: dnsAddr.String(),
			SPFTimeout: 10 * time.Second,
		})
		exitOn(mta.Start())
		defer mta.Close()
		targets[domain] = addr
	}

	service := &selftest.Service{
		Sender: &probe.Sender{
			Dialer:     fabric.BoundDialer(senderAddr, netip.Addr{}),
			Suffix:     *zone,
			HeloDomain: *zone,
			Signer:     &dkim.Signer{Selector: "st", Key: priv},
			ReplyTo:    "selftest@" + *zone,
			Timeout:    10 * time.Second,
		},
		Log: log,
		Targets: func(ctx context.Context, domain string) ([]probe.Target, error) {
			addr, ok := targets[domain]
			if !ok {
				return nil, fmt.Errorf("domain %s is not part of the demo fleet", domain)
			}
			return []probe.Target{{Addr4: addr}}, nil
		},
		Settle: 500 * time.Millisecond,
	}

	fmt.Printf("selftest: serving on http://%s (DNS zone %s on %s)\n", *listen, *zone, dnsAddr)
	fmt.Println("demo mailboxes: operator@full.example operator@spfonly.example " +
		"operator@partial.example operator@postdata.example operator@none.example")
	exitOn(http.ListenAndServe(*listen, &selftest.Handler{Service: service}))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "selftest: %v\n", err)
		os.Exit(1)
	}
}
