package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/resolver"
)

// syncBuffer makes the output buffers safe to read while run is still
// writing — the whole point of the test is racing shutdown against
// serving under -race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunServeShutdown drives the full authdns lifecycle in-process:
// start, serve real queries, scrape the admin plane, then deliver a
// simulated SIGTERM while traffic may still be in flight. Run with
// -race this doubles as the shutdown-counter race regression test —
// the old main closed the query log while timed-out handlers could
// still append, and read counters without synchronization.
func TestRunServeShutdown(t *testing.T) {
	var stdout, stderr syncBuffer
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{
			"-addr", "127.0.0.1:0",
			"-quiet",
			"-timescale", "0",
			"-metrics-addr", "127.0.0.1:0",
		}, &stdout, &stderr, stop, ready)
	}()

	var adminAddr string
	select {
	case adminAddr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("run did not start; stderr: %s", stderr.String())
	}
	if adminAddr == "" {
		t.Fatal("no admin address despite -metrics-addr")
	}

	m := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`).FindStringSubmatch(stdout.String())
	if m == nil {
		t.Fatalf("no DNS bound address in output: %q", stdout.String())
	}
	dnsAddr := m[1]

	// Send real queries so the serving-path counters move.
	res := resolver.New(resolver.Config{Server: dnsAddr, DisableCache: true})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, name := range []string{
		"t01.mta00001.spf-test.dns-lab.example",
		"t02.mta00002.spf-test.dns-lab.example",
	} {
		if _, err := res.LookupTXT(ctx, name); err != nil {
			t.Fatalf("query %s: %v", name, err)
		}
	}

	body := httpGet(t, "http://"+adminAddr+"/metrics")
	for _, family := range []string{
		"dns_queries_total",
		"dns_serve_duration_seconds_bucket",
		"dnsserver_queries_total",
		"dnsserver_log_appended_total",
		"go_goroutines",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(body, `dnsserver_queries_total{policy="t01"} 1`) {
		t.Errorf("per-policy counter missing or wrong:\n%s", body)
	}

	resp, err := http.Get("http://" + adminAddr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}

	// Keep traffic flowing while the signal lands, to exercise the
	// shutdown/append race.
	raceCtx, raceCancel := context.WithCancel(context.Background())
	defer raceCancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for raceCtx.Err() == nil {
			qctx, qcancel := context.WithTimeout(raceCtx, 200*time.Millisecond)
			_, _ = res.LookupTXT(qctx, "t03.mta00003.spf-test.dns-lab.example")
			qcancel()
		}
	}()

	stop <- os.Interrupt
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("run exited %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after signal")
	}
	raceCancel()
	wg.Wait()

	out := stdout.String()
	if !strings.Contains(out, "final counters:") {
		t.Errorf("no shutdown summary in output: %q", out)
	}
	if !strings.Contains(out, "dns_queries_total") {
		t.Errorf("shutdown summary lacks query counters: %q", out)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
