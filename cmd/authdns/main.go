// Command authdns runs the study's synthesizing authoritative DNS
// server standalone: the full 39-policy catalog under the test zone
// and the NotifyEmail zone, with per-policy response shaping. Every
// query is logged to stdout with its (testid, mtaid) attribution.
//
// Usage:
//
//	authdns [-addr 127.0.0.1:5300] [-addr6 "[::1]:5300"]
//	        [-suffix spf-test.dns-lab.example] [-notify dsav-mail.dns-lab.example]
//	        [-contact research@dns-lab.example] [-timescale 1.0]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"sendervalid/internal/dnsserver"
	"sendervalid/internal/policy"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:5300", "IPv4 listen address")
		addr6     = flag.String("addr6", "", "IPv6 listen address (e.g. \"[::1]:5300\"); empty disables")
		suffix    = flag.String("suffix", "spf-test.dns-lab.example", "test-policy zone suffix")
		notify    = flag.String("notify", "dsav-mail.dns-lab.example", "NotifyEmail zone suffix")
		contact   = flag.String("contact", "research-contact@dns-lab.example", "attribution contact mailbox")
		timeScale = flag.Float64("timescale", 1.0, "multiplier for the paper's 100ms/800ms response shaping")
		sender4   = flag.String("sender4", "203.0.113.10", "sending MTA IPv4 (authorized by NotifyEmail SPF)")
		sender6   = flag.String("sender6", "2001:db8:1::10", "sending MTA IPv6")
		quiet     = flag.Bool("quiet", false, "suppress per-query log lines")
	)
	flag.Parse()

	env := &policy.Env{Suffix: *suffix + ".", TimeScale: *timeScale}
	notifyCfg := &policy.NotifyEmailConfig{
		Suffix:    *notify + ".",
		SenderV4:  netip.MustParseAddr(*sender4),
		SenderV6:  netip.MustParseAddr(*sender6),
		Contact:   *contact,
		TimeScale: *timeScale,
	}
	log := &dnsserver.QueryLog{}
	srv := &dnsserver.Server{
		Addr4: *addr,
		Addr6: *addr6,
		Zones: []*dnsserver.Zone{
			{
				Suffix:     *suffix + ".",
				Contact:    dnsserver.FormatContact(*contact),
				Responders: policy.RespondersWithDMARC(env, *contact),
			},
			{
				Suffix:     *notify + ".",
				Contact:    dnsserver.FormatContact(*contact),
				LabelDepth: 1,
				Default:    notifyCfg.Responder(),
			},
		},
		Log: log,
	}
	bound, err := srv.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "authdns: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("authdns: serving %s and %s on %s", *suffix, *notify, bound)
	if a6 := srv.Addr6Bound(); a6 != nil {
		fmt.Printf(" and %s", a6)
	}
	fmt.Printf(" (%d test policies, timescale %.3f)\n", len(policy.Catalog()), *timeScale)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	printed := 0
	for {
		select {
		case <-ticker.C:
			if *quiet {
				continue
			}
			entries := log.Entries()
			for _, e := range entries[printed:] {
				fmt.Printf("%s %-4s %-5s test=%-4s mta=%-8s %s\n",
					e.Time.Format("15:04:05.000"), e.Transport, e.Type, e.TestID, e.MTAID, e.Name)
			}
			printed = len(entries)
		case <-stop:
			fmt.Printf("authdns: %d queries served, shutting down\n", log.Len())
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			return
		}
	}
}
