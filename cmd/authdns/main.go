// Command authdns runs the study's synthesizing authoritative DNS
// server standalone: the full 39-policy catalog under the test zone
// and the NotifyEmail zone, with per-policy response shaping. Every
// query is logged to stdout with its (testid, mtaid) attribution, and
// -metrics-addr exposes the admin plane (/metrics, /healthz, /statusz,
// /debug/pprof) on its own listener.
//
// Usage:
//
//	authdns [-addr 127.0.0.1:5300] [-addr6 "[::1]:5300"]
//	        [-suffix spf-test.dns-lab.example] [-notify dsav-mail.dns-lab.example]
//	        [-contact research@dns-lab.example] [-timescale 1.0]
//	        [-log-file queries.wal] [-log-sync none|interval|always]
//	        [-log-rotate BYTES] [-metrics-addr 127.0.0.1:9153]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/policy"
	"sendervalid/internal/telemetry"
	"sendervalid/internal/traceflag"
	"sendervalid/internal/wal"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop, nil))
}

// run is main minus the process plumbing, so a test can drive a full
// serve-and-shutdown cycle in-process under -race: it injects a
// simulated signal through stop and learns the admin plane's bound
// address through ready.
func run(args []string, stdout, stderr io.Writer, stop <-chan os.Signal, ready chan<- string) int {
	fs := flag.NewFlagSet("authdns", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:5300", "IPv4 listen address")
		addr6       = fs.String("addr6", "", "IPv6 listen address (e.g. \"[::1]:5300\"); empty disables")
		suffix      = fs.String("suffix", "spf-test.dns-lab.example", "test-policy zone suffix")
		notify      = fs.String("notify", "dsav-mail.dns-lab.example", "NotifyEmail zone suffix")
		contact     = fs.String("contact", "research-contact@dns-lab.example", "attribution contact mailbox")
		timeScale   = fs.Float64("timescale", 1.0, "multiplier for the paper's 100ms/800ms response shaping")
		sender4     = fs.String("sender4", "203.0.113.10", "sending MTA IPv4 (authorized by NotifyEmail SPF)")
		sender6     = fs.String("sender6", "2001:db8:1::10", "sending MTA IPv6")
		quiet       = fs.Bool("quiet", false, "suppress per-query log lines")
		maxQPS      = fs.Float64("max-qps", 0, "per-source query rate limit (REFUSED above it); 0 disables")
		burst       = fs.Int("burst", 0, "per-source rate-limit burst (0 = default 8)")
		logBuffer   = fs.Int("log-buffer", 4096, "query-log buffer depth; full buffers drop (and count) entries instead of blocking the serving path")
		logFile     = fs.String("log-file", "", "durable query log: append every entry as a checksummed WAL record to this file (JSONL payload, readable by cmd/analyze)")
		logSync     = fs.String("log-sync", "interval", `-log-file fsync policy: "none", "interval" (group commit), or "always"`)
		logRotate   = fs.Int64("log-rotate", 256<<20, "-log-file rotation threshold in bytes (0 = never rotate)")
		metricsAddr = fs.String("metrics-addr", "", "admin HTTP listen address for /metrics, /healthz, /statusz, /debug/pprof; empty disables")
	)
	traceFlags := traceflag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	syncPolicy, err := wal.ParseSyncPolicy(*logSync)
	if err != nil {
		fmt.Fprintf(stderr, "authdns: %v\n", err)
		return 2
	}
	tracing, err := traceFlags.Open(func(format string, args ...any) {
		fmt.Fprintf(stderr, "authdns: "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintf(stderr, "authdns: %v\n", err)
		return 2
	}

	env := &policy.Env{Suffix: *suffix + ".", TimeScale: *timeScale}
	notifyCfg := &policy.NotifyEmailConfig{
		Suffix:    *notify + ".",
		SenderV4:  netip.MustParseAddr(*sender4),
		SenderV6:  netip.MustParseAddr(*sender6),
		Contact:   *contact,
		TimeScale: *timeScale,
	}
	log := &dnsserver.QueryLog{}
	// The serving path appends to the in-memory log (status printer,
	// end-of-run analyses) and, with -log-file, to a checksummed WAL on
	// disk — both behind the async buffer so neither blocks serving.
	var sink dnsserver.Sink = log
	var walSink *dnsserver.WALSink
	if *logFile != "" {
		walSink, err = dnsserver.NewWALSink(*logFile, wal.Options{
			Sync:        syncPolicy,
			RotateBytes: *logRotate,
		})
		if err != nil {
			fmt.Fprintf(stderr, "authdns: %v\n", err)
			return 1
		}
		if rec := walSink.Recovered(); rec.Truncated {
			fmt.Fprintf(stderr,
				"authdns: query log %s had a torn tail; %d records salvaged, %d bytes truncated\n",
				*logFile, rec.Records, rec.DroppedBytes)
		}
		sink = dnsserver.MultiSink{log, walSink}
	}
	asyncLog := dnsserver.NewAsyncLog(sink, *logBuffer)
	srv := &dnsserver.Server{
		Addr4:           *addr,
		Addr6:           *addr6,
		MaxQPSPerSource: *maxQPS,
		BurstPerSource:  *burst,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "authdns: "+format+"\n", args...)
		},
		Zones: []*dnsserver.Zone{
			{
				Suffix:     *suffix + ".",
				Contact:    dnsserver.FormatContact(*contact),
				Responders: policy.RespondersWithDMARC(env, *contact),
			},
			{
				Suffix:     *notify + ".",
				Contact:    dnsserver.FormatContact(*contact),
				LabelDepth: 1,
				Default:    notifyCfg.Responder(),
			},
		},
		Log:    asyncLog,
		Tracer: tracing.Tracer,
	}
	bound, err := srv.Start()
	if err != nil {
		fmt.Fprintf(stderr, "authdns: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "authdns: serving %s and %s on %s", *suffix, *notify, bound)
	if a6 := srv.Addr6Bound(); a6 != nil {
		fmt.Fprintf(stdout, " and %s", a6)
	}
	fmt.Fprintf(stdout, " (%d test policies, timescale %.3f)\n", len(policy.Catalog()), *timeScale)

	// The registry always exists — it is also the shutdown report —
	// and the admin HTTP plane is the opt-in part.
	reg := telemetry.NewRegistry()
	srv.RegisterMetrics(reg)
	asyncLog.RegisterMetrics(reg)
	dns.RegisterPoolMetrics(reg)
	telemetry.RegisterRuntimeMetrics(reg)
	tracing.Tracer.RegisterMetrics(reg)

	health := telemetry.NewHealth()
	health.Register("querylog", func() error {
		if d := asyncLog.Dropped(); d > 0 {
			return fmt.Errorf("%d query-log entries dropped", d)
		}
		return nil
	})
	if walSink != nil {
		walSink.RegisterMetrics(reg, telemetry.L("name", "querylog"))
		// A wedged on-disk log flips /healthz: the collection is no
		// longer durable even though serving continues.
		health.Register("querylog-wal", walSink.Check)
	}

	var admin *telemetry.AdminServer
	if *metricsAddr != "" {
		admin = &telemetry.AdminServer{Addr: *metricsAddr, Registry: reg, Health: health}
		if tracing.Tracer != nil {
			admin.Handle("/debug/traces", tracing.Tracer.DebugHandler(reg))
		}
		adminAddr, err := admin.Start()
		if err != nil {
			fmt.Fprintf(stderr, "authdns: %v\n", err)
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
			asyncLog.Close()
			if walSink != nil {
				_ = walSink.Close()
			}
			_ = tracing.Close()
			return 1
		}
		fmt.Fprintf(stdout, "authdns: admin plane on http://%s/metrics\n", adminAddr)
		if ready != nil {
			ready <- adminAddr.String()
		}
	} else if ready != nil {
		ready <- ""
	}

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	printed := 0
	for {
		select {
		case <-ticker.C:
			if *quiet {
				continue
			}
			// Since copies only the unseen tail, not the whole log
			// every tick.
			tail := log.Since(printed)
			for _, e := range tail {
				fmt.Fprintf(stdout, "%s %-4s %-5s test=%-4s mta=%-8s %s\n",
					e.Time.Format("15:04:05.000"), e.Transport, e.Type, e.TestID, e.MTAID, e.Name)
			}
			printed += len(tail)
		case <-stop:
			// Order matters: stop accepting queries first, then close
			// the log. The old ordering closed the log while a timed-out
			// Shutdown could still have in-flight handlers appending.
			// AsyncLog now tolerates that race (late appends are dropped
			// and counted), but draining the server first keeps the log
			// complete on a clean shutdown.
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := srv.Shutdown(shutdownCtx); err != nil {
				fmt.Fprintf(stderr, "authdns: shutdown: %v\n", err)
			}
			asyncLog.Close()
			if walSink != nil {
				if err := walSink.Close(); err != nil {
					fmt.Fprintf(stderr, "authdns: closing query log: %v\n", err)
				}
			}
			if err := tracing.Close(); err != nil {
				fmt.Fprintf(stderr, "authdns: closing trace file: %v\n", err)
			}
			if admin != nil {
				_ = admin.Shutdown(shutdownCtx)
			}
			fmt.Fprintf(stdout, "authdns: shutting down; final counters:\n")
			_ = reg.WriteSummary(stdout)
			return 0
		}
	}
}
