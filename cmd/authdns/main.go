// Command authdns runs the study's synthesizing authoritative DNS
// server standalone: the full 39-policy catalog under the test zone
// and the NotifyEmail zone, with per-policy response shaping. Every
// query is logged to stdout with its (testid, mtaid) attribution.
//
// Usage:
//
//	authdns [-addr 127.0.0.1:5300] [-addr6 "[::1]:5300"]
//	        [-suffix spf-test.dns-lab.example] [-notify dsav-mail.dns-lab.example]
//	        [-contact research@dns-lab.example] [-timescale 1.0]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"sendervalid/internal/dnsserver"
	"sendervalid/internal/policy"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:5300", "IPv4 listen address")
		addr6     = flag.String("addr6", "", "IPv6 listen address (e.g. \"[::1]:5300\"); empty disables")
		suffix    = flag.String("suffix", "spf-test.dns-lab.example", "test-policy zone suffix")
		notify    = flag.String("notify", "dsav-mail.dns-lab.example", "NotifyEmail zone suffix")
		contact   = flag.String("contact", "research-contact@dns-lab.example", "attribution contact mailbox")
		timeScale = flag.Float64("timescale", 1.0, "multiplier for the paper's 100ms/800ms response shaping")
		sender4   = flag.String("sender4", "203.0.113.10", "sending MTA IPv4 (authorized by NotifyEmail SPF)")
		sender6   = flag.String("sender6", "2001:db8:1::10", "sending MTA IPv6")
		quiet     = flag.Bool("quiet", false, "suppress per-query log lines")
		maxQPS    = flag.Float64("max-qps", 0, "per-source query rate limit (REFUSED above it); 0 disables")
		burst     = flag.Int("burst", 0, "per-source rate-limit burst (0 = default 8)")
		logBuffer = flag.Int("log-buffer", 4096, "query-log buffer depth; full buffers drop (and count) entries instead of blocking the serving path")
	)
	flag.Parse()

	env := &policy.Env{Suffix: *suffix + ".", TimeScale: *timeScale}
	notifyCfg := &policy.NotifyEmailConfig{
		Suffix:    *notify + ".",
		SenderV4:  netip.MustParseAddr(*sender4),
		SenderV6:  netip.MustParseAddr(*sender6),
		Contact:   *contact,
		TimeScale: *timeScale,
	}
	log := &dnsserver.QueryLog{}
	asyncLog := dnsserver.NewAsyncLog(log, *logBuffer)
	srv := &dnsserver.Server{
		Addr4:           *addr,
		Addr6:           *addr6,
		MaxQPSPerSource: *maxQPS,
		BurstPerSource:  *burst,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "authdns: "+format+"\n", args...)
		},
		Zones: []*dnsserver.Zone{
			{
				Suffix:     *suffix + ".",
				Contact:    dnsserver.FormatContact(*contact),
				Responders: policy.RespondersWithDMARC(env, *contact),
			},
			{
				Suffix:     *notify + ".",
				Contact:    dnsserver.FormatContact(*contact),
				LabelDepth: 1,
				Default:    notifyCfg.Responder(),
			},
		},
		Log: asyncLog,
	}
	bound, err := srv.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "authdns: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("authdns: serving %s and %s on %s", *suffix, *notify, bound)
	if a6 := srv.Addr6Bound(); a6 != nil {
		fmt.Printf(" and %s", a6)
	}
	fmt.Printf(" (%d test policies, timescale %.3f)\n", len(policy.Catalog()), *timeScale)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	printed := 0
	for {
		select {
		case <-ticker.C:
			if *quiet {
				continue
			}
			// Since copies only the unseen tail, not the whole log
			// every tick.
			tail := log.Since(printed)
			for _, e := range tail {
				fmt.Printf("%s %-4s %-5s test=%-4s mta=%-8s %s\n",
					e.Time.Format("15:04:05.000"), e.Transport, e.Type, e.TestID, e.MTAID, e.Name)
			}
			printed += len(tail)
		case <-stop:
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			asyncLog.Close()
			fmt.Printf("authdns: %d queries logged (%d dropped from log buffer), %d refused by rate limit, %d responder panics recovered; shutting down\n",
				log.Len(), asyncLog.Dropped(), srv.Refused(), srv.Panics())
			return
		}
	}
}
