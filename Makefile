# Development entry points. `make check` is the gate: vet, build, the
# full test suite under the race detector, a replay of the fuzz seed
# corpora, and a one-iteration smoke pass over every benchmark. `make
# chaos` runs the seeded chaos suite on its own; `make bench` records
# the hot-path benchmarks to $(BENCH_OUT) for before/after comparison.

GO ?= go

# Seed for the chaos suite. Every chaos test logs the seed it ran
# with; reproduce a failure with `make chaos CHAOS_SEED=<seed>`.
CHAOS_SEED ?= 42

# Where `make bench` archives its parsed results.
BENCH_OUT ?= BENCH_10.json

# The baseline `make bench-diff` gates against.
BENCH_BASELINE ?= BENCH_9.json

# The benchmarks that guard the serving hot path's allocation budget,
# the log codec / analysis ingest throughput, the WAL append path
# under each sync policy, and the resolver/bulk-SPF concurrency path.
HOT_BENCHES = BenchmarkServeHotPath|BenchmarkDNSMessagePackUnpack|BenchmarkSPFParse|BenchmarkQueryLogJSONRoundTrip|BenchmarkLogCodec|BenchmarkParForEachLogJSON|BenchmarkWALAppend|BenchmarkWALRecover|BenchmarkResolverParallel|BenchmarkSingleflightDedup|BenchmarkBulkSPF

.PHONY: check vet build test fuzz-seeds chaos crash bench bench-smoke bench-diff telemetry-alloc bulk-race trace-race

check: vet build test fuzz-seeds telemetry-alloc crash bulk-race trace-race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Replay the checked-in fuzz seed corpora (no exploration; that's
# `go test -fuzz=<target>` run by hand).
fuzz-seeds:
	$(GO) test -run '^Fuzz' ./...

# The chaos suite: seeded fault injection through netsim plus the
# serving-path robustness tests, all under the race detector.
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 \
		-run 'TestChaos|TestPipeConn' -v ./internal/netsim/
	$(GO) test -race -count=1 \
		-run 'Panic|RateLimit|TCPServer|Retry|AsyncLog|Evict|Shed|LineTooLong|PolicyRejections' \
		./internal/dns/ ./internal/dnsserver/ ./internal/smtp/ ./internal/resolver/

# The crash-recovery suite: the byte-level kill/recover sweeps over
# internal/wal (every byte offset of a recorded schedule, bit flips,
# randomized kill cycles) and the process-level proof that SIGKILLing
# a real `campaign` run under chaos converges through -resume. Seeded
# like `make chaos`; reproduce with `make crash CHAOS_SEED=<seed>`.
crash:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 \
		-run 'TestCrash|TestRandomizedKillAndReopen|FuzzWALRecover' ./internal/wal/
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -count=1 -timeout 300s \
		-run 'TestKillResumeConvergence' ./cmd/campaign/

# The instrument allocation pins: metric increments are on the DNS
# serving hot path, so Counter.Inc / Histogram.Observe / vec lookups
# must stay at zero allocations (alongside the codec pins and the
# resolver cache-hit pin that share the naming convention).
telemetry-alloc:
	$(GO) test -run 'Alloc' -count=1 \
		./internal/telemetry/ ./internal/dns/ ./internal/dnsserver/ ./internal/resolver/ \
		./internal/trace/

# The bulk-SPF pipeline under seeded netsim faults and the race
# detector: every input line must come back out exactly once while the
# resolver retries through packet loss and refused dials. Reproduce a
# failure with `make bulk-race CHAOS_SEED=<seed>`.
bulk-race:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 \
		-run 'TestBulkPipelineChaos' ./internal/bulkspf/

# The tracing subsystem under the race detector: the full span
# lifecycle (pooling, exporter handoff, Close drain), the wire/wait
# attribution split, and a seeded-chaos bulk run at sample=1.0 with a
# leak-checked exporter. Reproduce with `make trace-race CHAOS_SEED=<seed>`.
trace-race:
	$(GO) test -race -count=1 ./internal/trace/
	$(GO) test -race -count=1 -run 'TestWireWait|TestWireAttribution' ./internal/resolver/
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 \
		-run 'TestBulkPipelineChaosTraced' ./internal/bulkspf/

# One iteration of every benchmark: catches bit-rot in benchmark code
# without the cost of a measurement run.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Measure the hot-path benchmarks and archive the parsed numbers (plus
# the raw lines, for benchstat) to $(BENCH_OUT).
bench:
	$(GO) test -run NONE -bench '$(HOT_BENCHES)' -benchmem -count 1 \
		. ./internal/dnsserver/ ./internal/wal/ ./internal/resolver/ | $(GO) run ./cmd/benchjson > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# Re-measure the pinned benchmarks and fail if any ns/op number
# regressed more than 20% against the committed baseline. Not part of
# `make check`: a measurement run wants a quiet machine, so run it by
# hand (or in a dedicated CI lane) before and after perf-sensitive
# changes.
bench-diff:
	$(GO) test -run NONE -bench '$(HOT_BENCHES)' -benchmem -count 1 \
		. ./internal/dnsserver/ ./internal/wal/ ./internal/resolver/ | $(GO) run ./cmd/benchjson -diff $(BENCH_BASELINE)
