# Development entry points. `make check` is the gate: vet, build, and
# the full test suite under the race detector.

GO ?= go

.PHONY: check vet build test bench

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x .
