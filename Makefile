# Development entry points. `make check` is the gate: vet, build, the
# full test suite under the race detector, and a replay of the fuzz
# seed corpora. `make chaos` runs the seeded chaos suite on its own.

GO ?= go

# Seed for the chaos suite. Every chaos test logs the seed it ran
# with; reproduce a failure with `make chaos CHAOS_SEED=<seed>`.
CHAOS_SEED ?= 42

.PHONY: check vet build test fuzz-seeds chaos bench

check: vet build test fuzz-seeds

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Replay the checked-in fuzz seed corpora (no exploration; that's
# `go test -fuzz=<target>` run by hand).
fuzz-seeds:
	$(GO) test -run '^Fuzz' ./...

# The chaos suite: seeded fault injection through netsim plus the
# serving-path robustness tests, all under the race detector.
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 \
		-run 'TestChaos|TestPipeConn' -v ./internal/netsim/
	$(GO) test -race -count=1 \
		-run 'Panic|RateLimit|TCPServer|Retry|AsyncLog|Evict|Shed|LineTooLong|PolicyRejections' \
		./internal/dns/ ./internal/dnsserver/ ./internal/smtp/ ./internal/resolver/

bench:
	$(GO) test -run NONE -bench . -benchtime 1x .
