// Package sendervalid is a from-scratch, stdlib-only reproduction of
// the measurement apparatus of "Measuring Email Sender Validation in
// the Wild" (Deccio et al., CoNEXT 2021): SPF (RFC 7208), DKIM
// (RFC 6376), and DMARC (RFC 7489) implementations; a DNS wire-format
// stack with UDP/TCP clients and servers; the study's synthesizing
// authoritative DNS server with its 39-policy catalog and response
// shaping; an SMTP server/client pair including the pre-DATA-abort
// probing client; a simulated receiving-MTA fleet with behaviour
// profiles calibrated to the paper's observations; and experiment
// drivers plus analyses regenerating every table and figure of the
// paper's evaluation.
//
// The implementation lives under internal/; see the README for the
// package map, DESIGN.md for the system inventory, and EXPERIMENTS.md
// for paper-vs-measured results. The benchmarks in bench_test.go
// regenerate each table and figure (go test -bench=.).
package sendervalid
