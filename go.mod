module sendervalid

go 1.24
