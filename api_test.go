package sendervalid_test

// The facade test exercises the re-exported public API exactly as an
// external module would: build a static zone, serve it, and run
// SPF + DKIM + DMARC through the exported types only.

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"net/netip"
	"testing"
	"time"

	sendervalid "sendervalid"
)

func TestPublicFacadeEndToEnd(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	keyTXT, err := sendervalid.FormatDKIMKey(pub)
	if err != nil {
		t.Fatal(err)
	}

	zone := sendervalid.NewStaticZone().
		SPF("corp.example", "v=spf1 ip4:203.0.113.0/24 -all").
		DKIMKey("k1", "corp.example", keyTXT).
		DMARC("corp.example", "v=DMARC1; p=reject")
	srv := &sendervalid.AuthServer{
		Zones: []*sendervalid.AuthZone{{Suffix: "corp.example.", LabelDepth: 1, Default: zone}},
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	res := sendervalid.NewResolver(sendervalid.ResolverConfig{
		Server: addr.String(), Timeout: 3 * time.Second,
	})
	ctx := context.Background()

	// SPF through the facade.
	checker := &sendervalid.SPFChecker{
		Resolver: res,
		Options:  sendervalid.SPFOptions{Timeout: 10 * time.Second},
	}
	out := checker.CheckHost(ctx, netip.MustParseAddr("203.0.113.7"),
		"corp.example", "ceo@corp.example", "mail.corp.example")
	if out.Result != sendervalid.SPFPass {
		t.Errorf("SPF: %s (%v)", out.Result, out.Err)
	}
	out = checker.CheckHost(ctx, netip.MustParseAddr("192.0.2.1"),
		"corp.example", "ceo@corp.example", "x")
	if out.Result != sendervalid.SPFFail {
		t.Errorf("SPF spoof: %s", out.Result)
	}

	// DKIM through the facade.
	signer := &sendervalid.DKIMSigner{Domain: "corp.example", Selector: "k1", Key: priv}
	msg := []byte("From: ceo@corp.example\r\nSubject: hi\r\n\r\nbody\r\n")
	signed, err := signer.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	verifier := &sendervalid.DKIMVerifier{Resolver: res}
	if v := verifier.Verify(ctx, signed); v.Result != "pass" {
		t.Errorf("DKIM: %s (%v)", v.Result, v.Err)
	}

	// DMARC through the facade.
	evaluator := &sendervalid.DMARCEvaluator{Resolver: res}
	eval := evaluator.Evaluate(ctx, sendervalid.DMARCInputs{
		FromDomain: "corp.example",
		SPFResult:  sendervalid.SPFPass, SPFDomain: "corp.example",
	})
	if eval.Result != "pass" {
		t.Errorf("DMARC: %+v", eval)
	}

	// Record parsing helpers.
	rec, err := sendervalid.ParseSPF("v=spf1 a mx -all")
	if err != nil || len(rec.Mechanisms) != 3 {
		t.Errorf("ParseSPF: %+v, %v", rec, err)
	}
	drec, err := sendervalid.ParseDMARC("v=DMARC1; p=quarantine")
	if err != nil || drec.Policy != "quarantine" {
		t.Errorf("ParseDMARC: %+v, %v", drec, err)
	}
	if od := sendervalid.OrganizationalDomain("mail.corp.example.co.uk"); od != "example.co.uk" {
		t.Errorf("OrganizationalDomain: %q", od)
	}

	// SPF linter through the facade.
	linter := &sendervalid.SPFLinter{}
	report := linter.LintRecord("corp.example", "v=spf1 +all")
	if len(report.Findings) == 0 {
		t.Error("linter found nothing wrong with +all")
	}
}
