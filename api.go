package sendervalid

// This file is the library's public facade. The implementation lives
// under internal/ (see README for the package map); the aliases below
// re-export the stable core so external modules can depend on
// `sendervalid` directly:
//
//	checker := &sendervalid.SPFChecker{Resolver: sendervalid.NewResolver(cfg)}
//	out := checker.CheckHost(ctx, ip, domain, sender, helo)
//
// Measurement-apparatus packages (policy catalog, probing client,
// dataset generator, experiment drivers) are deliberately not
// re-exported: they evolve with the reproduction, and in-module
// consumers (cmd/, examples/) import them directly.

import (
	"sendervalid/internal/authres"
	"sendervalid/internal/dkim"
	"sendervalid/internal/dmarc"
	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/resolver"
	"sendervalid/internal/smtp"
	"sendervalid/internal/spf"
)

// --- SPF (RFC 7208) ---

// SPFChecker evaluates the Sender Policy Framework check_host()
// function, with compliance knobs for emulating non-conformant
// validators. See internal/spf.
type SPFChecker = spf.Checker

// SPFOptions tunes an SPFChecker.
type SPFOptions = spf.Options

// SPFResult is one of the seven RFC 7208 results.
type SPFResult = spf.Result

// SPFOutcome carries the result plus lookup diagnostics.
type SPFOutcome = spf.Outcome

// SPFRecord is a parsed SPF policy.
type SPFRecord = spf.Record

// SPFLinter statically analyzes SPF deployments.
type SPFLinter = spf.Linter

// The seven SPF results.
const (
	SPFNone      = spf.None
	SPFNeutral   = spf.Neutral
	SPFPass      = spf.Pass
	SPFFail      = spf.Fail
	SPFSoftFail  = spf.SoftFail
	SPFTempError = spf.TempError
	SPFPermError = spf.PermError
)

// ParseSPF parses an SPF record's text.
func ParseSPF(txt string) (*SPFRecord, error) { return spf.Parse(txt) }

// --- DKIM (RFC 6376) ---

// DKIMSigner signs outgoing messages.
type DKIMSigner = dkim.Signer

// DKIMVerifier verifies DKIM signatures via the DNS.
type DKIMVerifier = dkim.Verifier

// DKIMVerification is one signature's verification outcome.
type DKIMVerification = dkim.Verification

// DKIMResult is a verification result (pass/fail/none/…).
type DKIMResult = dkim.Result

// FormatDKIMKey renders the _domainkey TXT payload for a public key.
func FormatDKIMKey(pub any) (string, error) { return dkim.FormatKeyRecord(pub) }

// --- DMARC (RFC 7489) ---

// DMARCEvaluator discovers policies and applies the DMARC pass rule.
type DMARCEvaluator = dmarc.Evaluator

// DMARCRecord is a parsed DMARC policy record.
type DMARCRecord = dmarc.Record

// DMARCEvaluation is the outcome of applying DMARC to a message.
type DMARCEvaluation = dmarc.Evaluation

// DMARCInputs carries the authentication results DMARC consumes.
type DMARCInputs = dmarc.Inputs

// ParseDMARC parses a DMARC record's text.
func ParseDMARC(txt string) (*DMARCRecord, error) { return dmarc.Parse(txt) }

// OrganizationalDomain returns the RFC 7489 organizational domain.
func OrganizationalDomain(name string) string { return dmarc.OrganizationalDomain(name) }

// --- DNS ---

// DNSMessage is a wire-format DNS message.
type DNSMessage = dns.Message

// DNSClient performs UDP/TCP DNS exchanges.
type DNSClient = dns.Client

// DNSServer serves DNS over UDP and TCP.
type DNSServer = dns.Server

// Resolver is the caching stub resolver (implements the lookup
// interfaces consumed by SPFChecker, DKIMVerifier, DMARCEvaluator).
type Resolver = resolver.Resolver

// ResolverConfig configures a Resolver.
type ResolverConfig = resolver.Config

// NewResolver creates a stub resolver bound to one upstream server.
func NewResolver(cfg ResolverConfig) *Resolver { return resolver.New(cfg) }

// AuthServer is the synthesizing authoritative server with its
// attributed query log.
type AuthServer = dnsserver.Server

// AuthZone is one authoritative suffix.
type AuthZone = dnsserver.Zone

// StaticZone is a conventional record-set responder for small zones.
type StaticZone = dnsserver.Static

// NewStaticZone creates an empty static record set.
func NewStaticZone() *StaticZone { return dnsserver.NewStatic() }

// QueryLog is the timestamped, attributed query record.
type QueryLog = dnsserver.QueryLog

// --- SMTP (RFC 5321) ---

// SMTPServer is the receiving-MTA server framework with per-command
// policy hooks.
type SMTPServer = smtp.Server

// SMTPHandler supplies the per-command hooks.
type SMTPHandler = smtp.Handler

// SMTPSession is one connection's state, passed to hooks.
type SMTPSession = smtp.Session

// SMTPReply is a server reply.
type SMTPReply = smtp.Reply

// SMTPClient is the sending-side client.
type SMTPClient = smtp.Client

// --- Authentication-Results (RFC 8601) ---

// AuthResults is a parsed Authentication-Results header.
type AuthResults = authres.Header

// AuthResult is one mechanism's entry within an AuthResults header.
type AuthResult = authres.Result

// FormatAuthResults renders an Authentication-Results header value.
func FormatAuthResults(h *AuthResults) string { return authres.Format(h) }

// ParseAuthResults parses an Authentication-Results header value.
func ParseAuthResults(value string) (*AuthResults, error) { return authres.Parse(value) }
