// fleetstudy: a complete miniature of the paper's measurement study.
//
// It generates a paper-calibrated synthetic population (TLD and AS
// distributions, provider MTA sharing, Alexa ranks), builds a world of
// simulated MTAs whose behaviour profiles follow the paper's observed
// rates, runs all three experiments — NotifyEmail deliveries, NotifyMX
// probes, TwoWeekMX probes — and prints the Table 5 summary plus the
// §7.1 serial/parallel breakdown.
//
// Run with: go run ./examples/fleetstudy
package main

import (
	"context"
	"fmt"
	"log"

	"sendervalid/internal/dataset"
	"sendervalid/internal/experiment"
)

func main() {
	const scale = 600 // domains per population; raise toward 26,695 for fidelity
	ctx := context.Background()

	neSpec := dataset.NotifyEmailSpec(42)
	neSpec.NumDomains = scale
	neSpec.AlexaTop1M = scale / 9
	neSpec.AlexaTop1K = scale / 60
	nePop := dataset.Generate(neSpec)

	twSpec := dataset.TwoWeekMXSpec(43)
	twSpec.NumDomains = scale
	twSpec.LocalDomains = 3
	twPop := dataset.Generate(twSpec)

	fmt.Printf("populations: %s (%d domains, %d MTAs), %s (%d domains, %d MTAs)\n\n",
		nePop.Name, len(nePop.Domains), len(nePop.MTAs),
		twPop.Name, len(twPop.Domains), len(twPop.MTAs))

	// NotifyEmail: legitimate DKIM-signed notifications.
	neWorld, err := experiment.BuildWorld(nePop, experiment.WorldConfig{
		Seed: 42, Rates: experiment.NotifyRates(), TimeScale: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	neRun := experiment.RunNotifyEmail(ctx, neWorld, 32)
	neAnalysis := experiment.AnalyzeNotifyEmail(neWorld, neRun)
	neWorld.Close()
	fmt.Printf("NotifyEmail: %d/%d delivered; SPF %d (%d%%), DKIM %d, DMARC %d\n",
		neAnalysis.Delivered, neAnalysis.Domains,
		neAnalysis.SPFDomains, 100*neAnalysis.SPFDomains/neAnalysis.Domains,
		neAnalysis.DKIMDomains, neAnalysis.DMARCDomains)

	// NotifyMX: probe the same population nine (simulated) months later.
	nmxWorld, err := experiment.BuildWorld(nePop, experiment.WorldConfig{
		Seed: 49, Rates: experiment.NotifyRates(), TimeScale: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	nmxRun := experiment.RunProbes(ctx, nmxWorld, []string{"t01", "t12"}, 32)
	nmxAnalysis := experiment.AnalyzeProbes(nmxWorld, nmxRun, false)
	nmxAnalysis.Name = "NotifyMX"
	sp := experiment.AnalyzeSerialParallel(nmxWorld)
	nmxWorld.Close()

	// TwoWeekMX: the high-demand population.
	twWorld, err := experiment.BuildWorld(twPop, experiment.WorldConfig{
		Seed: 55, Rates: experiment.TwoWeekRates(), TimeScale: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	twRun := experiment.RunProbes(ctx, twWorld, []string{"t12"}, 32)
	twAnalysis := experiment.AnalyzeProbes(twWorld, twRun, true)
	twWorld.Close()

	fmt.Println()
	fmt.Print(experiment.RenderTable5(
		[]*experiment.ProbeAnalysis{nmxAnalysis, twAnalysis}, neAnalysis))
	fmt.Printf("\n§7.1: %d of %d classifiable MTAs performed DNS lookups serially (%.0f%%)\n",
		sp.Serial, sp.Tested, 100*float64(sp.Serial)/float64(max(1, sp.Tested)))
}
