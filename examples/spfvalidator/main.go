// spfvalidator: build a production-style validating mail receiver out
// of the library's public pieces — the scenario the paper's
// introduction motivates: a mail server that checks SPF at MAIL time,
// verifies DKIM signatures on delivery, and enforces the sender
// domain's DMARC policy.
//
// The example publishes policies for a legitimate sender domain in a
// local authoritative server, then plays two deliveries against the
// receiver: one from the authorized address with a valid DKIM
// signature (accepted) and one spoofed (rejected by DMARC p=reject).
//
// Run with: go run ./examples/spfvalidator
package main

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"log"
	"net/netip"
	"time"

	"sendervalid/internal/dkim"
	"sendervalid/internal/dmarc"
	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/netsim"
	"sendervalid/internal/resolver"
	"sendervalid/internal/smtp"
	"sendervalid/internal/spf"
)

const senderDomain = "legit-sender.example."

var authorizedIP = netip.MustParseAddr("198.51.100.10")

func main() {
	// --- The sender domain's DNS: SPF, DKIM key, DMARC reject. ---
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	keyRecord, err := dkim.FormatKeyRecord(pub)
	if err != nil {
		log.Fatal(err)
	}
	authdns := &dnsserver.Server{
		Zones: []*dnsserver.Zone{{
			Suffix:     senderDomain,
			LabelDepth: 1,
			Default: dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
				if q.Type != dns.TypeTXT {
					return dnsserver.Response{}
				}
				switch q.Name {
				case senderDomain:
					return dnsserver.Response{Records: []dns.RR{dnsserver.TXTRecord(
						q.Name, fmt.Sprintf("v=spf1 ip4:%s -all", authorizedIP), 300)}}
				case "mail._domainkey." + senderDomain:
					return dnsserver.Response{Records: []dns.RR{dnsserver.TXTRecord(
						q.Name, keyRecord, 300)}}
				case "_dmarc." + senderDomain:
					return dnsserver.Response{Records: []dns.RR{dnsserver.TXTRecord(
						q.Name, "v=DMARC1; p=reject", 300)}}
				}
				return dnsserver.Response{}
			}),
		}},
	}
	dnsAddr, err := authdns.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = authdns.Shutdown(ctx)
	}()

	// --- The validating receiver. ---
	res := resolver.New(resolver.Config{Server: dnsAddr.String()})
	checker := &spf.Checker{Resolver: res, Options: spf.Options{Timeout: 10 * time.Second}}
	verifier := &dkim.Verifier{Resolver: res}
	evaluator := &dmarc.Evaluator{Resolver: res}

	receiver := &smtp.Server{
		Hostname: "mx.receiver.example",
		Handler: smtp.Handler{
			OnMail: func(s *smtp.Session, from string) *smtp.Reply {
				out := checker.CheckHost(context.Background(), s.ClientIP,
					smtp.DomainOf(from), from, s.Helo)
				s.Meta["spf"] = out.Result
				fmt.Printf("  [receiver] SPF for %s from %s: %s\n", from, s.ClientIP, out.Result)
				return nil // defer enforcement to DMARC
			},
			OnMessage: func(s *smtp.Session, msg []byte) *smtp.Reply {
				dk := verifier.Verify(context.Background(), msg)
				fmt.Printf("  [receiver] DKIM: %s (d=%s)\n", dk.Result, dk.Domain)
				parsed, err := dkim.ParseMessage(msg)
				fromDomain := smtp.DomainOf(s.MailFrom)
				if err == nil {
					if d := dkim.AddressDomain(parsed.Get("From")); d != "" {
						fromDomain = d
					}
				}
				spfResult, _ := s.Meta["spf"].(spf.Result)
				dm := evaluator.Evaluate(context.Background(), dmarc.Inputs{
					FromDomain: fromDomain,
					SPFResult:  spfResult, SPFDomain: smtp.DomainOf(s.MailFrom),
					DKIMResult: dk.Result, DKIMDomain: dk.Domain,
				})
				fmt.Printf("  [receiver] DMARC: %s (disposition %s)\n", dm.Result, dm.Disposition)
				if dm.Result == dmarc.ResultFail && dm.Disposition == dmarc.Reject {
					return &smtp.Reply{Code: 550, Text: "5.7.1 rejected by DMARC policy"}
				}
				return nil
			},
		},
	}
	fabric := netsim.NewFabric()
	mxAddr := netip.MustParseAddrPort("203.0.113.25:25")
	ln, err := fabric.Listen(mxAddr)
	if err != nil {
		log.Fatal(err)
	}
	go receiver.Serve(ln)
	defer receiver.Close()

	// --- A legitimate, signed delivery from the authorized address. ---
	message := "From: Alice <alice@legit-sender.example>\r\n" +
		"To: bob@receiver.example\r\n" +
		"Subject: quarterly report\r\n" +
		"Date: Mon, 06 Jul 2026 09:00:00 +0000\r\n" +
		"Message-ID: <q3@legit-sender.example>\r\n" +
		"\r\nNumbers attached.\r\n"
	signer := &dkim.Signer{Domain: "legit-sender.example", Selector: "mail", Key: priv}
	signed, err := signer.Sign([]byte(message))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== legitimate delivery (authorized IP, valid signature) ===")
	deliver(fabric, authorizedIP, mxAddr, "alice@legit-sender.example", signed)

	fmt.Println("\n=== spoofed delivery (attacker IP, no signature) ===")
	spoofed := "From: Alice <alice@legit-sender.example>\r\n" +
		"To: bob@receiver.example\r\n" +
		"Subject: urgent wire transfer\r\n" +
		"\r\nPlease send funds immediately.\r\n"
	deliver(fabric, netip.MustParseAddr("192.0.2.99"), mxAddr, "alice@legit-sender.example", []byte(spoofed))
}

func deliver(fabric *netsim.Fabric, sourceIP netip.Addr, mx netip.AddrPort, from string, msg []byte) {
	dialer := fabric.BoundDialer(sourceIP, netip.Addr{})
	c, err := smtp.Dial(context.Background(), dialer, mx.String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Abort()
	steps := []func() error{
		func() error { return c.Hello("client.example") },
		func() error { return c.Mail(from) },
		func() error { return c.Rcpt("bob@receiver.example") },
		func() error { return c.Data(msg) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			fmt.Printf("  [sender] delivery refused: %v\n", err)
			return
		}
	}
	fmt.Println("  [sender] message accepted")
	_ = c.Quit()
}
