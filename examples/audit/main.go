// audit: assess one organization's mail deployment from both sides —
// the workflow a postmaster would run with this library.
//
// Sender side: lint the organization's published SPF deployment the
// way the surveys cited in the paper's §3 did — syntax errors, forced
// limit violations, unsafe qualifiers, dangling includes.
//
// Receiver side: probe the organization's MTA with the study's test
// policies, extract its behaviour fingerprint (§8 future work), and
// classify it against reference validator profiles.
//
// The example wires up a deliberately flawed organization in
// simulation: an SPF record with a lookup-heavy include chain and a
// +all escape hatch, and an MTA whose validator ignores the void- and
// MX-lookup limits.
//
// Run with: go run ./examples/audit
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"sendervalid/internal/dnsserver"
	"sendervalid/internal/experiment"
	"sendervalid/internal/fingerprint"
	"sendervalid/internal/mtasim"
	"sendervalid/internal/netsim"
	"sendervalid/internal/policy"
	"sendervalid/internal/probe"
	"sendervalid/internal/resolver"
	"sendervalid/internal/spf"
)

func main() {
	const testSuffix = "spf-test.dns-lab.example."

	// The organization's (flawed) sender-side DNS.
	org := dnsserver.NewStatic().
		SPF("flawed-corp.example",
			"v=spf1 include:l1.flawed-corp.example ptr a mx exists:e1.flawed-corp.example "+
				"exists:e2.flawed-corp.example exists:e3.flawed-corp.example +all").
		SPF("l1.flawed-corp.example",
			"v=spf1 include:l2.flawed-corp.example include:l3.flawed-corp.example "+
				"include:l4.flawed-corp.example include:l5.flawed-corp.example ?all").
		SPF("l2.flawed-corp.example", "v=spf1 a mx ?all").
		SPF("l3.flawed-corp.example", "v=spf1 a mx ?all").
		SPF("l4.flawed-corp.example", "v=spf1 a mx ?all").
		SPF("l5.flawed-corp.example", "v=spf1 include:missing.flawed-corp.example ?all")

	env := &policy.Env{Suffix: testSuffix, TimeScale: 0.01}
	log2 := &dnsserver.QueryLog{}
	srv := &dnsserver.Server{
		Zones: []*dnsserver.Zone{
			{Suffix: testSuffix, Responders: policy.Responders(env)},
			{Suffix: "flawed-corp.example.", LabelDepth: 1, Default: org, NoLog: true},
		},
		Log: log2,
	}
	dnsAddr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// --- Sender-side audit: lint the published deployment. ---
	fmt.Println("== sender-side audit: SPF deployment of flawed-corp.example ==")
	res := resolver.New(resolver.Config{Server: dnsAddr.String(), Timeout: 3 * time.Second})
	linter := &spf.Linter{Resolver: res}
	report, err := linter.Lint(context.Background(), "flawed-corp.example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record:  %s\n", report.Record)
	fmt.Printf("lookups: %d (limit %d)\n", report.Lookups, spf.DefaultLookupLimit)
	for _, f := range report.Findings {
		fmt.Println(" ", f)
	}

	// --- Receiver-side audit: probe and fingerprint the MTA. ---
	fmt.Println("\n== receiver-side audit: the organization's MTA ==")
	fabric := netsim.NewFabric()
	mta := mtasim.New(mtasim.Config{
		ID: "corpmx", Hostname: "mx.flawed-corp.example",
		Addr4: netip.MustParseAddr("203.0.113.80"),
		Profile: mtasim.Profile{
			ValidatesSPF: true, Phase: mtasim.AtMail, AcceptAnyUser: true,
			SPFOptions: spf.Options{VoidLookupLimit: -1, MXAddressLimit: -1},
		},
		Fabric: fabric, DNSAddr: dnsAddr.String(),
		SPFTimeout: 10 * time.Second,
	})
	if err := mta.Start(); err != nil {
		log.Fatal(err)
	}
	defer mta.Close()

	client := &probe.Client{
		Dialer: fabric, Suffix: testSuffix,
		HeloDomain: "audit.dns-lab.example", RecipientDomain: "flawed-corp.example",
		HeloTestID: "t03", Timeout: 5 * time.Second,
	}
	for _, testID := range experiment.CoreTests {
		client.Probe(context.Background(), netip.MustParseAddr("203.0.113.80"), "corpmx", testID)
	}

	vectors := fingerprint.Extract(log2.Entries())
	v := vectors["corpmx"]
	if v == nil {
		log.Fatal("no fingerprint extracted")
	}
	fmt.Println(fingerprint.Describe(v))
	fmt.Println("classification against reference validator profiles:")
	for _, m := range fingerprint.Classify(v, fingerprint.References()) {
		fmt.Printf("  %-22s %3.0f%% agreement (%d/%d traits)\n",
			m.Name, 100*m.Score(), m.Comparable-m.Disagreements, m.Comparable)
	}
}
