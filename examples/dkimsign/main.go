// dkimsign: sign a message with DKIM and verify it end to end through
// the DNS, the way the NotifyEmail experiment signed every outgoing
// notification (paper §4.3.1).
//
// The example generates an RSA key, publishes it as a _domainkey TXT
// record in a local authoritative server, signs a message with
// relaxed/relaxed canonicalization, verifies it through a real stub
// resolver, and then shows verification failing after in-transit
// tampering.
//
// Run with: go run ./examples/dkimsign
package main

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"log"
	"strings"
	"time"

	"sendervalid/internal/dkim"
	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/resolver"
)

func main() {
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		log.Fatal(err)
	}
	keyRecord, err := dkim.FormatKeyRecord(&key.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published key record (%d octets):\n  %s...\n\n",
		len(keyRecord), keyRecord[:70])

	// Publish the key at s2026._domainkey.sender.example.
	authdns := &dnsserver.Server{
		Zones: []*dnsserver.Zone{{
			Suffix:     "sender.example.",
			LabelDepth: 1,
			Default: dnsserver.ResponderFunc(func(q *dnsserver.Query) dnsserver.Response {
				if q.Type == dns.TypeTXT && q.Name == "s2026._domainkey.sender.example." {
					return dnsserver.Response{Records: []dns.RR{
						dnsserver.TXTRecord(q.Name, keyRecord, 300)}}
				}
				return dnsserver.Response{}
			}),
		}},
	}
	dnsAddr, err := authdns.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = authdns.Shutdown(ctx)
	}()

	message := "From: Research Team <notify@sender.example>\r\n" +
		"To: operator@recipient.example\r\n" +
		"Subject: vulnerability notification\r\n" +
		"Date: Mon, 06 Jul 2026 09:00:00 +0000\r\n" +
		"Message-ID: <n-001@sender.example>\r\n" +
		"\r\n" +
		"Dear operator,\r\n" +
		"\r\n" +
		"we detected an issue in your network. Details follow.\r\n"

	signer := &dkim.Signer{
		Domain:   "sender.example",
		Selector: "s2026",
		Key:      key,
	}
	signed, err := signer.Sign([]byte(message))
	if err != nil {
		log.Fatal(err)
	}
	sigLine, _, _ := strings.Cut(string(signed), "\r\n")
	fmt.Printf("signature header:\n  %.100s...\n\n", sigLine)

	res := resolver.New(resolver.Config{Server: dnsAddr.String()})
	verifier := &dkim.Verifier{Resolver: res}

	out := verifier.Verify(context.Background(), signed)
	fmt.Printf("verification of the signed message: %s (d=%s)\n", out.Result, out.Domain)

	tampered := []byte(strings.Replace(string(signed),
		"we detected an issue", "send us money", 1))
	out = verifier.Verify(context.Background(), tampered)
	fmt.Printf("verification after tampering:       %s (%v)\n", out.Result, out.Err)

	// Whitespace refolding survives relaxed canonicalization.
	refolded := []byte(strings.Replace(string(signed),
		"Subject: vulnerability notification",
		"Subject:   vulnerability    notification", 1))
	out = verifier.Verify(context.Background(), refolded)
	fmt.Printf("verification after WSP refolding:   %s\n", out.Result)
}
