// Quickstart: the smallest end-to-end use of the library.
//
// It stands up the three pieces of the measurement apparatus —
// the synthesizing authoritative DNS server, one simulated receiving
// MTA that validates SPF, and the probing SMTP client — runs a single
// probe, and reads the validation activity off the DNS query log,
// exactly the way the study infers "this server validates SPF".
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"sendervalid/internal/dnsserver"
	"sendervalid/internal/mtasim"
	"sendervalid/internal/netsim"
	"sendervalid/internal/policy"
	"sendervalid/internal/probe"
)

func main() {
	const suffix = "spf-test.dns-lab.example."

	// 1. The synthesizing authoritative DNS server: all 39 test
	// policies, answers built on the fly from the query name, every
	// query logged with (testid, mtaid) attribution.
	env := &policy.Env{Suffix: suffix, TimeScale: 0.01} // 100ms shaping -> 1ms
	queryLog := &dnsserver.QueryLog{}
	authdns := &dnsserver.Server{
		Zones: []*dnsserver.Zone{{
			Suffix:     suffix,
			Responders: policy.RespondersWithDMARC(env, "contact@dns-lab.example"),
		}},
		Log: queryLog,
	}
	dnsAddr, err := authdns.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = authdns.Shutdown(ctx)
	}()
	fmt.Printf("authoritative DNS on %s serving %d test policies\n",
		dnsAddr, len(policy.Catalog()))

	// 2. One simulated receiving MTA on an in-process network fabric:
	// a real SMTP server wired to a real stub resolver and a fully
	// compliant SPF validator.
	fabric := netsim.NewFabric()
	mta := mtasim.New(mtasim.Config{
		ID:       "m0001",
		Hostname: "mx1.recipient.example",
		Addr4:    netip.MustParseAddr("203.0.113.25"),
		Profile: mtasim.Profile{
			ValidatesSPF:  true,
			Phase:         mtasim.AtMail,
			AcceptAnyUser: true,
		},
		Fabric:  fabric,
		DNSAddr: dnsAddr.String(),
	})
	if err := mta.Start(); err != nil {
		log.Fatal(err)
	}
	defer mta.Close()
	fmt.Println("simulated MTA listening at 203.0.113.25:25 (fabric)")

	// 3. Probe it with the serial-vs-parallel test policy (t01): EHLO,
	// MAIL with an instrumented From domain, RCPT, DATA — then
	// disconnect before any content, so nothing can be delivered.
	client := &probe.Client{
		Dialer:          fabric,
		Suffix:          suffix,
		HeloDomain:      "probe.dns-lab.example",
		RecipientDomain: "recipient.example",
		Timeout:         5 * time.Second,
	}
	res := client.Probe(context.Background(), netip.MustParseAddr("203.0.113.25"), "m0001", "t01")
	fmt.Printf("probe: stage=%s recipient=%s reply=%d\n", res.Stage, res.Recipient, res.ReplyCode)

	// 4. Read the measurement off the DNS query log.
	fmt.Println("\nqueries observed at the authoritative server:")
	for _, e := range queryLog.Entries() {
		fmt.Printf("  %-5s %-55s test=%s mta=%s\n", e.Type, e.Name, e.TestID, e.MTAID)
	}
	if queryLog.Len() > 0 {
		fmt.Println("\n=> the MTA is SPF-validating (it fetched and evaluated the policy)")
	} else {
		fmt.Println("\n=> no validation observed")
	}
}
