package campaign

import (
	"fmt"
	"time"
)

// Snapshot is a consistent point-in-time view of a campaign's
// progress, cheap enough to poll for periodic reporting.
type Snapshot struct {
	// Total is every task ever added.
	Total int
	// Queued tasks are waiting for dispatch (including retries whose
	// backoff window is still open, counted again in WaitingRetry).
	Queued int
	// Inflight attempts are executing right now.
	Inflight int
	// WaitingRetry tasks are queued but inside a backoff window.
	WaitingRetry int
	// Done and Failed are final states.
	Done   int
	Failed int
	// Attempts counts every attempt started; Retried counts attempts
	// that ended in a transient failure and were rescheduled.
	Attempts int
	Retried  int
	// Elapsed is the time since Run started (zero before Run).
	Elapsed time.Duration
	// Rate is completed tasks (done + failed) per second of Elapsed.
	Rate float64
	// JournalErr is the first journal write failure ("" while the
	// durable record is healthy) and JournalDropped counts the events
	// lost after it — the campaign keeps running, but a resume from
	// this journal would re-run everything after the failure point.
	JournalErr     string
	JournalDropped int
}

// Completed counts tasks in a final state.
func (s Snapshot) Completed() int { return s.Done + s.Failed }

// String renders a one-line progress report. A failed journal is
// appended so the operator watching the progress ticker cannot miss
// that durability stopped.
func (s Snapshot) String() string {
	line := fmt.Sprintf(
		"[%7.1fs] queued %d (retry-wait %d) inflight %d done %d failed %d retried %d attempts %d rate %.1f/s",
		s.Elapsed.Seconds(), s.Queued, s.WaitingRetry, s.Inflight,
		s.Done, s.Failed, s.Retried, s.Attempts, s.Rate)
	if s.JournalErr != "" {
		line += fmt.Sprintf(" JOURNAL-FAILED (%d events dropped: %s)", s.JournalDropped, s.JournalErr)
	}
	return line
}

// Snapshot captures the campaign's live counters. Safe to call from
// any goroutine, including while Run executes.
func (c *Campaign) Snapshot() Snapshot {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Total:    c.total,
		Inflight: c.inflight,
		Done:     c.done,
		Failed:   c.failed,
		Attempts: c.attempts,
		Retried:  c.retried,
	}
	s.Queued = c.total - c.done - c.failed - c.inflight
	for _, sh := range c.shards {
		s.WaitingRetry += sh.waitingRetry(now)
	}
	if jerr, drops := c.journal.status(); jerr != nil {
		s.JournalErr = jerr.Error()
		s.JournalDropped = drops
	}
	if !c.started.IsZero() {
		s.Elapsed = now.Sub(c.started)
		if secs := s.Elapsed.Seconds(); secs > 0 {
			s.Rate = float64(s.Completed()) / secs
		}
	}
	return s
}
