// Package campaign turns one-shot probe runs into durable measurement
// campaigns. The study's NotifyMX/TwoWeekMX sweeps probed tens of
// thousands of MTAs over weeks, pacing traffic per target so the
// measurement stayed polite and unblocked; this package provides the
// orchestration that makes such sweeps survivable at scale:
//
//   - a sharded work queue keyed by target (the MTA today, an AS
//     tomorrow) so no single destination is ever probed concurrently;
//   - per-shard token-bucket rate limiting under a global concurrency
//     cap, so aggregate throughput scales with the number of targets
//     while each target sees at most its own budget;
//   - retry of transient failures (connection refused, timeouts, 4xx
//     SMTP replies) with exponential backoff and jitter, bounded by an
//     attempt budget, while terminal outcomes are never retried;
//   - a crash-safe append-only JSONL journal of task state transitions
//     (pending → attempt(n) → done/failed) that Resume replays so a
//     restarted campaign re-runs only unfinished (MTA, test) pairs;
//   - a live Snapshot of counters for progress reporting.
package campaign

import (
	"context"
	"errors"
	"io"
	mrand "math/rand"
	"sync"
	"time"

	"sendervalid/internal/trace"
)

// Key identifies one unit of campaign work: an (MTA, test) pair.
type Key struct {
	MTA  string `json:"mta"`
	Test string `json:"test"`
}

// Task is one schedulable unit of work.
type Task struct {
	// MTA and Test identify the work; together they are the task's
	// durable identity in the journal.
	MTA  string
	Test string
	// Shard is the politeness domain: tasks sharing a shard never run
	// concurrently and draw from one rate budget. Empty defaults to
	// MTA, the per-destination discipline the study used; campaigns
	// grouping MTAs by AS set it explicitly.
	Shard string
}

// Key returns the task's durable identity.
func (t Task) Key() Key { return Key{MTA: t.MTA, Test: t.Test} }

func (t Task) shardName() string {
	if t.Shard != "" {
		return t.Shard
	}
	return t.MTA
}

// TaskFunc executes one attempt of a task. A nil return marks the
// task done; non-nil returns are classified (see Class) into transient
// failures that are retried, terminal failures that are not, and
// aborts (context cancellation) that leave the task unfinished for a
// later resume.
type TaskFunc func(ctx context.Context, t Task) error

// Config parameterizes a campaign.
type Config struct {
	// Workers caps concurrent attempts across all shards. Default 32.
	Workers int
	// ShardRate is the sustained attempt budget per shard in
	// attempts/second. Zero means unlimited.
	ShardRate float64
	// ShardBurst is the token-bucket depth per shard. Default 1: a
	// fresh shard may be probed immediately, then paces at ShardRate.
	ShardBurst int
	// MaxAttempts bounds attempts per task, first try included.
	// Default 4.
	MaxAttempts int
	// BackoffBase is the delay before the first retry; each further
	// retry doubles it. Default 100ms.
	BackoffBase time.Duration
	// BackoffMax caps the backoff growth. Default 10s.
	BackoffMax time.Duration
	// Seed drives retry jitter (full jitter in [delay/2, delay]).
	Seed int64
	// Classify overrides DefaultClassify.
	Classify func(error) Class
	// Journal, when set, receives the append-only JSONL record of
	// task state transitions. Each event is written as one line as it
	// happens, so a crash loses at most the event in flight. Use the
	// Journal returned by OpenJournal for a checksummed, crash-
	// recoverable record.
	Journal io.Writer
	// Logf, when set, receives the campaign's rare operational
	// warnings (currently: the one-time journal-failure notice).
	Logf func(format string, args ...any)
	// Tracer, when non-nil, opens one root span per attempt
	// ("campaign.task") carrying the (MTA, test, attempt) attribution;
	// the TaskFunc's probes hang their spans off it via the context.
	Tracer *trace.Tracer
}

func (cfg *Config) fillDefaults() {
	if cfg.Workers <= 0 {
		cfg.Workers = 32
	}
	if cfg.ShardBurst <= 0 {
		cfg.ShardBurst = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 10 * time.Second
	}
	if cfg.Classify == nil {
		cfg.Classify = DefaultClassify
	}
}

// taskState tracks one task through the campaign.
type taskState struct {
	task     Task
	attempts int
	state    State
}

// State is a task's position in the lifecycle.
type State string

// Task states, as they appear in journal events.
const (
	StatePending State = "pending"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Campaign is a durable, rate-limited run over a set of tasks.
type Campaign struct {
	cfg Config
	run TaskFunc

	mu      sync.Mutex
	shards  map[string]*shard
	order   []string // shard round-robin order (insertion order)
	rrNext  int
	tasks   map[Key]*taskState
	journal *journalWriter
	rng     *mrand.Rand

	// counters (guarded by mu)
	total    int
	done     int
	failed   int
	inflight int
	retried  int
	attempts int
	started  time.Time

	wake chan struct{}
}

// New builds an empty campaign; Add queues work and Run executes it.
func New(cfg Config, run TaskFunc) *Campaign {
	cfg.fillDefaults()
	return &Campaign{
		cfg:     cfg,
		run:     run,
		shards:  make(map[string]*shard),
		tasks:   make(map[Key]*taskState),
		journal: newJournalWriter(cfg.Journal, cfg.Logf),
		rng:     mrand.New(mrand.NewSource(cfg.Seed ^ 0x636d70)),
		wake:    make(chan struct{}, 1),
	}
}

// Add enqueues tasks. Tasks whose Key is already known are ignored, so
// re-adding the full task set after a Resume is harmless. Add may not
// be called concurrently with Run.
func (c *Campaign) Add(tasks ...Task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range tasks {
		k := t.Key()
		if _, dup := c.tasks[k]; dup {
			continue
		}
		c.tasks[k] = &taskState{task: t, state: StatePending}
		c.total++
		s := c.shardFor(t.shardName())
		s.push(t, time.Time{})
		c.journal.event(event{Ev: evEnqueue, Key: k})
	}
}

// shardFor returns (creating on first use) the named shard.
// Caller holds mu.
func (c *Campaign) shardFor(name string) *shard {
	s, ok := c.shards[name]
	if !ok {
		s = newShard(name, c.cfg.ShardRate, c.cfg.ShardBurst)
		c.shards[name] = s
		c.order = append(c.order, name)
	}
	return s
}

// Pending reports how many queued tasks have not yet reached a final
// state (done or failed).
func (c *Campaign) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total - c.done - c.failed
}

// Run executes the campaign until every task reaches a final state or
// ctx is cancelled. On cancellation, in-flight attempts are given the
// cancelled context (a context-aware TaskFunc returns within one
// protocol step), their outcomes are journaled if they completed, and
// Run returns ctx.Err(); everything unfinished stays pending in the
// journal for a later Resume.
func (c *Campaign) Run(ctx context.Context) error {
	if c.run == nil {
		return errors.New("campaign: no TaskFunc configured")
	}
	c.mu.Lock()
	if c.started.IsZero() {
		c.started = time.Now()
	}
	c.mu.Unlock()

	sem := make(chan struct{}, c.cfg.Workers)
	var wg sync.WaitGroup
	cancelled := false

	for !cancelled {
		c.mu.Lock()
		remaining := c.total - c.done - c.failed
		c.mu.Unlock()
		if remaining == 0 {
			break
		}

		// Take a worker slot before popping work, so Inflight never
		// overshoots the cap while a dispatched task waits to start.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			cancelled = true
			continue
		}
		c.mu.Lock()
		task, ready, wait := c.nextLocked(time.Now())
		c.mu.Unlock()

		if ready {
			wg.Add(1)
			go func(t Task) {
				defer wg.Done()
				c.attempt(ctx, t)
				<-sem
				c.wakeup()
			}(task)
			continue
		}
		<-sem

		// Nothing dispatchable: wait for an attempt to finish, a rate
		// or retry window to open, or cancellation.
		var timerC <-chan time.Time
		var timer *time.Timer
		if wait > 0 {
			timer = time.NewTimer(wait)
			timerC = timer.C
		}
		select {
		case <-c.wake:
		case <-timerC:
		case <-ctx.Done():
			cancelled = true
		}
		if timer != nil {
			timer.Stop()
		}
	}

	wg.Wait()
	if cancelled || ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// nextLocked scans shards round-robin for a dispatchable task: the
// shard has queued eligible work, no attempt in flight, and a rate
// token available. When nothing is dispatchable it returns the
// shortest wait until a rate or retry window opens (0 = no timed
// window; wait on the wake channel alone). Caller holds mu.
func (c *Campaign) nextLocked(now time.Time) (Task, bool, time.Duration) {
	minWait := time.Duration(0)
	consider := func(d time.Duration) {
		if d <= 0 {
			return
		}
		if minWait == 0 || d < minWait {
			minWait = d
		}
	}
	n := len(c.order)
	for i := 0; i < n; i++ {
		s := c.shards[c.order[(c.rrNext+i)%n]]
		if s.inflight || len(s.queue) == 0 {
			continue
		}
		idx, notBefore := s.eligible(now)
		if idx < 0 {
			consider(notBefore.Sub(now))
			continue
		}
		if !s.bucket.take(now) {
			consider(s.bucket.wait(now))
			continue
		}
		task := s.pop(idx)
		s.inflight = true
		c.inflight++
		c.rrNext = (c.rrNext + i + 1) % n
		return task, true, 0
	}
	return Task{}, false, minWait
}

// attempt runs one attempt and applies the outcome.
func (c *Campaign) attempt(ctx context.Context, t Task) {
	k := t.Key()
	c.mu.Lock()
	st := c.tasks[k]
	st.state = StateRunning
	st.attempts++
	c.attempts++
	n := st.attempts
	c.journal.event(event{Ev: evAttempt, Key: k, N: n})
	c.mu.Unlock()

	tctx, sp := c.cfg.Tracer.Start(ctx, "campaign.task")
	if sp != nil {
		sp.SetAttr("mta", t.MTA)
		sp.SetAttr("test", t.Test)
		sp.SetInt("attempt", int64(n))
	}
	err := c.run(tctx, t)
	class := c.cfg.Classify(err)
	if sp != nil {
		sp.SetAttr("class", class.String())
		sp.SetError(err)
		sp.End()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.shards[t.shardName()]
	s.inflight = false
	c.inflight--

	switch class {
	case Done:
		st.state = StateDone
		c.done++
		c.journal.event(event{Ev: evDone, Key: k, N: n})
	case Terminal:
		st.state = StateFailed
		c.failed++
		c.journal.event(event{Ev: evFailed, Key: k, N: n, Err: errString(err)})
	case Transient:
		if n >= c.cfg.MaxAttempts {
			st.state = StateFailed
			c.failed++
			c.journal.event(event{Ev: evFailed, Key: k, N: n, Err: errString(err)})
			break
		}
		delay := c.backoff(n)
		st.state = StatePending
		c.retried++
		c.journal.event(event{Ev: evRetry, Key: k, N: n, Err: errString(err), DelayMS: delay.Milliseconds()})
		s.push(t, time.Now().Add(delay))
	case Aborted:
		// Cancellation voided the attempt: it neither consumed budget
		// nor produced an outcome. The task stays pending (and
		// unfinished in the journal) for a resumed run.
		st.attempts--
		c.attempts--
		st.state = StatePending
		s.pushFront(t, time.Time{})
	}
}

// backoff computes the delay before retry n+1: exponential growth from
// BackoffBase capped at BackoffMax, with jitter in [delay/2, delay] so
// synchronized failures (one dead destination, many queued tests)
// don't retry in lockstep. Caller holds mu (rng is not goroutine-safe).
func (c *Campaign) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// JournalError returns the first journal write failure, nil while the
// durable record is healthy. Once non-nil, the campaign has kept
// running but its journal stopped growing at that point — a resume
// from it would re-run everything recorded only after the failure.
func (c *Campaign) JournalError() error {
	err, _ := c.journal.status()
	return err
}

// wakeup nudges the dispatcher after an attempt completes.
func (c *Campaign) wakeup() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
