package campaign

import (
	"context"
	"errors"
	"io"
	"net"

	"sendervalid/internal/netsim"
	"sendervalid/internal/smtp"
)

// Class is the scheduling meaning of a TaskFunc outcome.
type Class int

// Outcome classes.
const (
	// Done is a completed task: the attempt produced a recordable
	// outcome (including measurement outcomes like SMTP rejections —
	// a 554 from a blacklisting MTA is data, not a failure).
	Done Class = iota
	// Transient is a failure worth retrying: the destination may well
	// answer later (connection refused, timeout, 4xx SMTP reply,
	// dropped connection).
	Transient
	// Terminal is a failure retrying cannot fix (5xx SMTP replies,
	// malformed addresses); the task fails without consuming the
	// remaining attempt budget.
	Terminal
	// Aborted is a voided attempt: the campaign's context was
	// cancelled mid-attempt. The task stays pending — and unfinished
	// in the journal — so a resumed campaign re-runs it.
	Aborted
)

// String renders the class for logs and tests.
func (c Class) String() string {
	switch c {
	case Done:
		return "done"
	case Transient:
		return "transient"
	case Terminal:
		return "terminal"
	case Aborted:
		return "aborted"
	}
	return "unknown"
}

// DefaultClassify maps the errors the measurement stack produces onto
// scheduling classes:
//
//   - nil → Done
//   - context cancellation/deadline → Aborted
//   - 4xx SMTP replies → Transient (the destination asked us to come
//     back later: greylisting, temporary local errors)
//   - 5xx SMTP replies → Terminal
//   - connection refused, I/O deadlines, network timeouts, dropped
//     connections → Transient
//   - anything else → Terminal
func DefaultClassify(err error) Class {
	if err == nil {
		return Done
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Aborted
	}
	var smtpErr *smtp.Error
	if errors.As(err, &smtpErr) {
		if smtpErr.Temporary() {
			return Transient
		}
		return Terminal
	}
	if errors.Is(err, netsim.ErrConnRefused) || errors.Is(err, netsim.ErrDeadlineExceeded) {
		return Transient
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return Transient
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
		return Transient
	}
	return Terminal
}
