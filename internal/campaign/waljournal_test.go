package campaign

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sendervalid/internal/wal"
)

// runJournaled runs a small campaign against the given journal sink
// and returns the final snapshot.
func runJournaled(t *testing.T, j Journal, mtas, tests int) Snapshot {
	t.Helper()
	c := New(Config{Workers: 4, Journal: j}, func(ctx context.Context, task Task) error {
		return nil
	})
	c.Add(tasksFor(mtas, tests)...)
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c.Snapshot()
}

func TestOpenJournalFreshIsWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.wal")
	replay, j, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Events != 0 || len(replay.Final) != 0 {
		t.Fatalf("fresh journal replay not empty: %+v", replay)
	}
	runJournaled(t, j, 3, 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The file must be framed, not plain JSONL.
	head := make([]byte, 1)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !wal.IsFramed(head) {
		t.Fatalf("fresh journal first byte %#x, want WAL marker", head[0])
	}

	// Reopening replays every event and reports a healthy tail.
	replay2, j2, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if replay2.Done() != 6 {
		t.Fatalf("replay done = %d, want 6", replay2.Done())
	}
	if replay2.TornTail || replay2.DroppedBytes != 0 || replay2.Malformed != 0 {
		t.Fatalf("clean journal reported damage: %+v", replay2)
	}
	if len(replay2.Unfinished(tasksFor(3, 2))) != 0 {
		t.Fatal("clean replay left unfinished tasks")
	}
}

func TestOpenJournalWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.wal")
	_, j, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runJournaled(t, j, 4, 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last frame: drop the final 3 bytes, mid-payload.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, img[:len(img)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	replay, j2, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !replay.TornTail {
		t.Fatal("torn WAL tail not reported")
	}
	if replay.DroppedBytes == 0 {
		t.Fatal("torn WAL tail reported zero dropped bytes")
	}
	// The torn record was exactly one event; everything before it
	// replays. 4 MTAs x 2 tests = 8 done events plus enqueue/attempt
	// lines; losing the last means at most one task loses its final
	// state.
	if got := replay.Done(); got < 7 || got > 8 {
		t.Fatalf("salvaged %d done tasks, want 7 or 8", got)
	}
	if replay.Malformed != 0 {
		t.Fatalf("WAL replay saw %d malformed lines, want 0 (tears are truncated, not parsed)", replay.Malformed)
	}
	// Recovery left the file append-ready: the journal keeps working.
	if _, err := j2.Write([]byte(`{"t":"2026-01-01T00:00:00Z","ev":"enqueue","k":{"mta":"x","test":"y"}}` + "\n")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenJournalLegacySniff(t *testing.T) {
	// A pre-WAL journal: plain JSONL written by Resume-era code.
	path := filepath.Join(t.TempDir(), "camp.jsonl")
	var buf bytes.Buffer
	jw := newJournalWriter(&buf, nil)
	jw.event(event{Ev: evEnqueue, Key: Key{"m0", "t1"}})
	jw.event(event{Ev: evAttempt, Key: Key{"m0", "t1"}, N: 1})
	jw.event(event{Ev: evDone, Key: Key{"m0", "t1"}, N: 1})
	jw.event(event{Ev: evEnqueue, Key: Key{"m1", "t1"}})
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	replay, j, err := OpenJournal(path, JournalOptions{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Done() != 1 || !replay.Seen[Key{"m1", "t1"}] {
		t.Fatalf("legacy replay wrong: %+v", replay)
	}
	// Appending must stay plain JSONL — never mix formats mid-file.
	jw2 := newJournalWriter(j, nil)
	jw2.event(event{Ev: evDone, Key: Key{"m1", "t1"}, N: 1})
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if wal.IsFramed(img) || bytes.IndexByte(img, wal.Marker) >= 0 {
		t.Fatal("legacy journal grew WAL frames")
	}
	replay2, j3, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if replay2.Done() != 2 {
		t.Fatalf("after legacy append, done = %d, want 2", replay2.Done())
	}
}

// TestReplaySalvagesTruncatedFinalLine is the satellite regression for
// the classic crash artifact: a journal whose final line is a torn JSON
// fragment. The valid prefix must be salvaged and the damage reported.
func TestReplaySalvagesTruncatedFinalLine(t *testing.T) {
	var buf bytes.Buffer
	jw := newJournalWriter(&buf, nil)
	jw.event(event{Ev: evEnqueue, Key: Key{"m0", "t1"}})
	jw.event(event{Ev: evAttempt, Key: Key{"m0", "t1"}, N: 1})
	jw.event(event{Ev: evDone, Key: Key{"m0", "t1"}, N: 1})
	jw.event(event{Ev: evEnqueue, Key: Key{"m1", "t1"}})
	full := buf.Bytes()
	// Cut mid-way through the last line, no trailing newline.
	cut := bytes.LastIndexByte(full[:len(full)-1], '\n') + 1 + 7
	torn := full[:cut]

	path := filepath.Join(t.TempDir(), "camp.jsonl")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	replay, jf, err := Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if replay.Done() != 1 {
		t.Fatalf("salvaged done = %d, want 1", replay.Done())
	}
	if replay.Malformed != 1 {
		t.Fatalf("malformed = %d, want 1 (the torn fragment)", replay.Malformed)
	}
	if !replay.TornTail {
		t.Fatal("torn tail not reported")
	}
	// The m1 enqueue was the torn line: it must not be in Seen.
	if replay.Seen[Key{"m1", "t1"}] {
		t.Fatal("torn fragment leaked into replay")
	}
	// Resume terminated the fragment; a second open sees a repaired
	// file — the fragment stays one Malformed line, no longer a torn
	// tail.
	replay2, j2, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if replay2.TornTail || replay2.Done() != 1 || replay2.Malformed != 1 {
		t.Fatalf("OpenJournal disagrees with Resume: %+v", replay2)
	}
}

// TestOpenJournalOversizedGarbageLine: one huge unterminated garbage
// line (larger than any sane buffer) must count as Malformed, not fail
// the resume.
func TestOpenJournalOversizedGarbageLine(t *testing.T) {
	var buf bytes.Buffer
	jw := newJournalWriter(&buf, nil)
	jw.event(event{Ev: evEnqueue, Key: Key{"m0", "t1"}})
	jw.event(event{Ev: evDone, Key: Key{"m0", "t1"}, N: 1})
	buf.WriteString(strings.Repeat("x", 256*1024))

	replay, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Done() != 1 || replay.Malformed != 1 {
		t.Fatalf("done=%d malformed=%d, want 1/1", replay.Done(), replay.Malformed)
	}
}

// errAfterWriter fails every write after the first n.
type errAfterWriter struct {
	mu sync.Mutex
	n  int
}

func (w *errAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n <= 0 {
		return 0, errors.New("disk gone")
	}
	w.n--
	return len(p), nil
}

// TestJournalFailureSurfaces is the satellite-1 regression: a journal
// write failure must not silently disable durability — it shows up in
// the snapshot (and its String), in JournalError, and the drop count
// grows per suppressed event. Exactly one warning is logged.
func TestJournalFailureSurfaces(t *testing.T) {
	var logMu sync.Mutex
	var logged []string
	c := New(Config{
		Workers: 2,
		Journal: &errAfterWriter{n: 3},
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logged = append(logged, format)
			logMu.Unlock()
		},
	}, func(ctx context.Context, task Task) error { return nil })
	c.Add(tasksFor(3, 2)...)
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if err := c.JournalError(); err == nil {
		t.Fatal("JournalError() = nil after write failures")
	}
	s := c.Snapshot()
	if s.JournalErr == "" {
		t.Fatal("snapshot missing journal error")
	}
	// 6 tasks emit 3 events each (enqueue/attempt/done) = 18; 3
	// succeeded, the 4th hit the error (counted as dropped) and the
	// remaining 14 were suppressed.
	if s.JournalDropped != 15 {
		t.Fatalf("JournalDropped = %d, want 15", s.JournalDropped)
	}
	if !strings.Contains(s.String(), "JOURNAL-FAILED") {
		t.Fatalf("snapshot string hides the failure: %q", s.String())
	}
	logMu.Lock()
	defer logMu.Unlock()
	if len(logged) != 1 {
		t.Fatalf("logged %d warnings, want exactly 1: %v", len(logged), logged)
	}
}

// TestOpenJournalRotation: a WAL journal rotated across several
// segments replays as one continuous record.
func TestOpenJournalRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.wal")
	_, j, err := OpenJournal(path, JournalOptions{RotateBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	runJournaled(t, j, 8, 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.Segments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}
	replay, j2, err := OpenJournal(path, JournalOptions{RotateBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if replay.Done() != 24 {
		t.Fatalf("rotated replay done = %d, want 24", replay.Done())
	}
	if len(replay.Unfinished(tasksFor(8, 3))) != 0 {
		t.Fatal("rotated replay left unfinished tasks")
	}
}
