package campaign

import (
	"sendervalid/internal/telemetry"
)

// RegisterMetrics publishes the campaign's progress counters and the
// journal write-latency histogram under the campaign_ namespace. The
// progress counters live under the campaign mutex (they are part of
// the scheduler's state, not hot-path instruments), so they are
// exported as funcs that take the lock per scrape — a scrape every few
// seconds against a lock held for microseconds.
func (c *Campaign) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.MustGaugeFunc("campaign_tasks",
		"Tasks enqueued in the campaign (lifetime, including finished).",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.total) }, labels...)
	reg.MustCounterFunc("campaign_tasks_done_total",
		"Tasks that completed successfully.",
		func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return uint64(c.done) }, labels...)
	reg.MustCounterFunc("campaign_tasks_failed_total",
		"Tasks that exhausted their attempt budget.",
		func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return uint64(c.failed) }, labels...)
	reg.MustCounterFunc("campaign_retries_total",
		"Attempts that failed and were rescheduled with backoff.",
		func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return uint64(c.retried) }, labels...)
	reg.MustCounterFunc("campaign_attempts_total",
		"Task attempts started (first tries plus retries).",
		func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return uint64(c.attempts) }, labels...)
	reg.MustGaugeFunc("campaign_probes_in_flight",
		"Task attempts currently executing.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.inflight) }, labels...)
	if h := c.journal.writeSeconds; h != nil {
		reg.MustHistogram("campaign_journal_write_seconds",
			"Latency of appending one event line to the journal sink (fsync included when the sink syncs per write).",
			h, labels...)
	}
	reg.MustCounterFunc("campaign_journal_dropped_total",
		"Journal events dropped after the first write failure (nonzero means the durable record is incomplete).",
		func() uint64 { _, drops := c.journal.status(); return uint64(drops) }, labels...)
}
