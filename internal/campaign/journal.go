package campaign

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"sendervalid/internal/telemetry"
)

// The journal is the campaign's durability mechanism: an append-only
// JSON-lines file of task state transitions, one event per line,
// written as each transition happens. A crash loses at most the line
// in flight; replaying the surviving prefix reconstructs exactly which
// (MTA, test) pairs reached a final state, so a resumed campaign
// re-enqueues only unfinished work.

// Journal event kinds.
const (
	evEnqueue = "enqueue"
	evAttempt = "attempt"
	evRetry   = "retry"
	evDone    = "done"
	evFailed  = "failed"
)

// event is one JSONL journal line.
type event struct {
	Time time.Time `json:"t"`
	Ev   string    `json:"ev"`
	Key  Key       `json:"k"`
	// N is the attempt number for attempt/retry/done/failed events.
	N int `json:"n,omitempty"`
	// Err carries the failure text on retry/failed events.
	Err string `json:"err,omitempty"`
	// DelayMS is the backoff chosen for a retry.
	DelayMS int64 `json:"delay_ms,omitempty"`
}

// journalWriter serializes events to the configured sink. A nil sink
// makes every method a no-op, so journaling is strictly opt-in.
type journalWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte

	// err is the first write failure; once set, writing stops (a dead
	// disk should not be hammered per event) and every further event
	// is counted in drops. The failure is surfaced — via Snapshot,
	// JournalError, and the campaign metrics — instead of silently
	// disabling durability.
	err   error
	drops int
	logf  func(format string, args ...any)

	// writeSeconds times each sink Write — the durability tax per
	// event, fsync included when the sink syncs per write.
	writeSeconds *telemetry.Histogram
}

func newJournalWriter(w io.Writer, logf func(string, ...any)) *journalWriter {
	return &journalWriter{w: w, logf: logf, writeSeconds: telemetry.NewHistogram(telemetry.LatencyBuckets)}
}

// event appends one line through the reflection-free encoder, reusing
// one buffer across events. A write failure must not take the campaign
// down with it — the measurement continues — but it is never silent:
// the first error sticks, is logged once, and subsequent events are
// counted as dropped.
func (j *journalWriter) event(e event) {
	if j == nil || j.w == nil {
		return
	}
	e.Time = time.Now()
	j.mu.Lock()
	if j.err != nil {
		j.drops++
		j.mu.Unlock()
		return
	}
	j.buf = appendEventJSON(j.buf[:0], &e)
	start := time.Now()
	_, err := j.w.Write(j.buf)
	j.writeSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		j.err = err
		j.drops++
		if j.logf != nil {
			j.logf("campaign: journal write failed, further events will be dropped: %v", err)
		}
	}
	j.mu.Unlock()
}

// status reports the sticky failure and how many events it has cost.
func (j *journalWriter) status() (error, int) {
	if j == nil {
		return nil, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err, j.drops
}

// Replay is the durable state recovered from a journal.
type Replay struct {
	// Final maps every task that reached a final state to it
	// (StateDone or StateFailed).
	Final map[Key]State
	// Seen holds every task the journal mentions at all, finished or
	// not — the campaign's known universe at crash time.
	Seen map[Key]bool
	// Attempts is the attempt count per task at crash time.
	Attempts map[Key]int
	// Events counts journal lines replayed.
	Events int
	// Malformed counts unparseable lines skipped during replay — torn
	// writes from crashes (one can remain mid-file after each
	// crash-and-resume cycle).
	Malformed int
	// TornTail reports that the journal ended in a truncated fragment
	// (a crash artifact); the valid prefix above was salvaged and the
	// fragment was repaired (newline-terminated for a legacy JSONL
	// journal, truncated away for a WAL journal).
	TornTail bool
	// DroppedBytes is the size of the torn/corrupt tail a WAL-format
	// journal truncated during recovery (zero for legacy journals).
	DroppedBytes int64
}

// Done and Failed count tasks per final state.
func (r *Replay) Done() int   { return r.count(StateDone) }
func (r *Replay) Failed() int { return r.count(StateFailed) }

func (r *Replay) count(s State) int {
	n := 0
	for _, st := range r.Final {
		if st == s {
			n++
		}
	}
	return n
}

// Unfinished filters tasks down to those the journal does not record
// as finished — the work a resumed campaign must still run.
func (r *Replay) Unfinished(tasks []Task) []Task {
	out := make([]Task, 0, len(tasks))
	for _, t := range tasks {
		if _, finished := r.Final[t.Key()]; !finished {
			out = append(out, t)
		}
	}
	return out
}

// ReadJournal replays a JSONL journal stream. Unparseable lines are
// torn crash-time writes: the classic artifact is a truncated final
// line, but after a crash-and-resume cycle one terminated fragment can
// also sit mid-file. Both are skipped (and counted in Malformed); a
// stream with data but no valid events at all is rejected as not a
// journal.
func ReadJournal(r io.Reader) (*Replay, error) {
	rp := &Replay{
		Final:    make(map[Key]State),
		Seen:     make(map[Key]bool),
		Attempts: make(map[Key]int),
	}
	var p eventParser
	// ReadSlice with a spill buffer instead of bufio.Scanner: a
	// Scanner's token limit turns one oversized garbage line (a torn
	// write landing mid-buffer, a corrupted length run) into a failed
	// resume, where it should just be one more Malformed line.
	br := bufio.NewReaderSize(r, 64*1024)
	var spill []byte
	for {
		line, rerr := br.ReadSlice('\n')
		if rerr == bufio.ErrBufferFull {
			spill = append(spill[:0], line...)
			for rerr == bufio.ErrBufferFull {
				line, rerr = br.ReadSlice('\n')
				spill = append(spill, line...)
			}
			line = spill
		}
		if rerr != nil && rerr != io.EOF {
			return nil, fmt.Errorf("campaign: reading journal: %w", rerr)
		}
		// Trim the delimiter (and a CR, for tooling that rewrote the
		// file); the final line may legitimately lack the newline.
		for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
			line = line[:len(line)-1]
		}
		if len(line) > 0 {
			e, err := p.parse(line)
			if err != nil {
				rp.Malformed++
			} else {
				rp.Events++
				rp.Seen[e.Key] = true
				switch e.Ev {
				case evAttempt:
					rp.Attempts[e.Key] = e.N
				case evDone:
					rp.Final[e.Key] = StateDone
				case evFailed:
					rp.Final[e.Key] = StateFailed
				}
			}
		}
		if rerr == io.EOF {
			break
		}
	}
	if rp.Events == 0 && rp.Malformed > 0 {
		return nil, fmt.Errorf("campaign: no valid events in %d lines: not a journal", rp.Malformed)
	}
	return rp, nil
}

// Resume replays the journal at path and reopens it for appending, so
// a restarted campaign continues the same durable record:
//
//	replay, jf, err := campaign.Resume(path)
//	...
//	c := campaign.New(campaign.Config{Journal: jf, ...}, run)
//	c.Add(replay.Unfinished(allTasks)...)
//
// A missing file is not an error: the replay is empty and the journal
// is created, so first runs and resumed runs share one code path.
//
// Resume always speaks the legacy plain-JSONL journal format. New code
// should prefer OpenJournal, which recovers checksummed WAL journals
// (and still reads legacy ones).
func Resume(path string) (*Replay, *os.File, error) {
	var replay *Replay
	tornTail := false
	f, err := os.Open(path)
	switch {
	case err == nil:
		replay, err = ReadJournal(f)
		if err == nil {
			// A crash can leave the file without a final newline. New
			// events must start on their own line, or they merge with
			// the torn fragment and corrupt the record for the next
			// replay.
			var last [1]byte
			if _, serr := f.Seek(-1, io.SeekEnd); serr == nil {
				if _, rerr := f.Read(last[:]); rerr == nil && last[0] != '\n' {
					tornTail = true
				}
			}
		}
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	case os.IsNotExist(err):
		replay = &Replay{
			Final:    make(map[Key]State),
			Seen:     make(map[Key]bool),
			Attempts: make(map[Key]int),
		}
	default:
		return nil, nil, fmt.Errorf("campaign: opening journal: %w", err)
	}
	jf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: appending journal: %w", err)
	}
	if tornTail {
		replay.TornTail = true
		if _, err := jf.Write([]byte{'\n'}); err != nil {
			jf.Close()
			return nil, nil, fmt.Errorf("campaign: terminating torn journal line: %w", err)
		}
	}
	return replay, jf, nil
}
