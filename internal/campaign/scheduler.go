package campaign

import "time"

// shard is one politeness domain: a FIFO of pending work, an in-flight
// flag enforcing "never two concurrent attempts to one destination",
// and a token bucket pacing its attempts.
type shard struct {
	name     string
	queue    []pendingTask
	inflight bool
	bucket   tokenBucket
}

// pendingTask is one queued attempt; notBefore is zero for fresh work
// and a future instant for backoff-delayed retries.
type pendingTask struct {
	task      Task
	notBefore time.Time
}

func newShard(name string, rate float64, burst int) *shard {
	return &shard{name: name, bucket: newTokenBucket(rate, burst)}
}

func (s *shard) push(t Task, notBefore time.Time) {
	s.queue = append(s.queue, pendingTask{task: t, notBefore: notBefore})
}

func (s *shard) pushFront(t Task, notBefore time.Time) {
	s.queue = append([]pendingTask{{task: t, notBefore: notBefore}}, s.queue...)
}

// eligible returns the index of the first queue entry whose notBefore
// has passed, or (-1, earliest notBefore) when every entry is still
// backing off.
func (s *shard) eligible(now time.Time) (int, time.Time) {
	var earliest time.Time
	for i, p := range s.queue {
		if !p.notBefore.After(now) {
			return i, time.Time{}
		}
		if earliest.IsZero() || p.notBefore.Before(earliest) {
			earliest = p.notBefore
		}
	}
	return -1, earliest
}

// pop removes and returns the queue entry at idx.
func (s *shard) pop(idx int) Task {
	t := s.queue[idx].task
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	return t
}

// waitingRetry counts queue entries still inside a backoff window.
func (s *shard) waitingRetry(now time.Time) int {
	n := 0
	for _, p := range s.queue {
		if p.notBefore.After(now) {
			n++
		}
	}
	return n
}

// tokenBucket is a standard leaky/token bucket: tokens accrue at rate
// per second up to burst; each attempt consumes one. rate <= 0
// disables limiting.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) tokenBucket {
	return tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// refill accrues tokens for the time elapsed since the last call.
func (b *tokenBucket) refill(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed <= 0 {
		return
	}
	b.tokens += elapsed * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// take consumes one token if available.
func (b *tokenBucket) take(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// wait reports how long until the next token accrues.
func (b *tokenBucket) wait(now time.Time) time.Duration {
	if b.rate <= 0 {
		return 0
	}
	b.refill(now)
	if b.tokens >= 1 {
		return 0
	}
	missing := 1 - b.tokens
	return time.Duration(missing / b.rate * float64(time.Second))
}
