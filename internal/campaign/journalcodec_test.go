package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// FuzzJournalCodecEquivalence pins the journal's hand-rolled codec to
// the encoding/json reference the wire format is defined by: decoders
// must agree on success/failure and produce identical events, and
// re-encoding a decoded event must reproduce json.Marshal's bytes.
func FuzzJournalCodecEquivalence(f *testing.F) {
	f.Add([]byte(`{"t":"2026-08-08T12:00:00.123456789Z","ev":"retry","k":{"mta":"example.com","test":"t07"},"n":2,"err":"dial tcp: timeout","delay_ms":30000}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","ev":"enqueue","k":{"mta":"a","test":"b"}}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","ev":"done","k":{"test":"swap","mta":"péll\u00f6.example"},"n":1}`))
	f.Add([]byte(`{"t":null,"ev":null,"k":null,"n":null}`))
	f.Add([]byte(`{"EV":"attempt","K":{"MTA":"fold"},"N":3,"DELAY_MS":7}`))
	f.Add([]byte(`{"ev":"custom-kind","k":{"mta":"x","extra":[1,2,{"y":null}]}}`))
	f.Add([]byte(`{"n":9223372036854775807,"delay_ms":-9223372036854775808}`))
	f.Add([]byte(`{"n":1.5}`))
	f.Add([]byte(`{"n":1e3}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"t":"2026-08-08T12:0`)) // torn crash-time write
	f.Add([]byte(`{"ev":"done","k":{"mta":"a"},"k":{"test":"b"}}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		if bytes.IndexByte(line, '\n') >= 0 {
			t.Skip() // the scanner hands the codec single lines
		}
		var p eventParser
		got, gotErr := p.parse(line)
		var want event
		wantErr := json.Unmarshal(line, &want)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("decode disagreement on %q:\n codec: %+v, %v\n   ref: %+v, %v",
				line, got, gotErr, want, wantErr)
		}
		if gotErr != nil {
			return
		}
		if !got.Time.Equal(want.Time) {
			t.Errorf("Time: got %v, want %v", got.Time, want.Time)
		}
		gName, gOff := got.Time.Zone()
		wName, wOff := want.Time.Zone()
		if gName != wName || gOff != wOff {
			t.Errorf("Time zone: got %q/%d, want %q/%d", gName, gOff, wName, wOff)
		}
		got.Time, want.Time = time.Time{}, time.Time{}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event mismatch on %q:\n got %+v\nwant %+v", line, got, want)
		}

		refBytes, err := json.Marshal(&got)
		if err != nil {
			t.Fatalf("reference re-encode failed: %v", err)
		}
		refBytes = append(refBytes, '\n')
		if gotBytes := appendEventJSON(nil, &got); !bytes.Equal(gotBytes, refBytes) {
			t.Errorf("encode mismatch:\n codec %q\n   ref %q", gotBytes, refBytes)
		}
	})
}

// TestEventParseAllocBudget pins replay's per-line cost: a known
// event kind is interned and both key strings share one backing
// allocation.
func TestEventParseAllocBudget(t *testing.T) {
	e := event{
		Time:    time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Ev:      evRetry,
		Key:     Key{MTA: "example.com", Test: "t07"},
		N:       2,
		Err:     "dial tcp: timeout",
		DelayMS: 30000,
	}
	line := appendEventJSON(nil, &e)
	var p eventParser
	if _, err := p.parse(line); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.parse(line); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("parse with reused parser: %v allocs/op, want <= 1 (backing string)", allocs)
	}
}

func TestAppendEventJSONZeroAlloc(t *testing.T) {
	e := event{
		Time: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Ev:   evDone,
		Key:  Key{MTA: "example.com", Test: "t07"},
		N:    1,
	}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendEventJSON(buf[:0], &e)
	})
	if allocs != 0 {
		t.Errorf("appendEventJSON into reused buffer: %v allocs/op, want 0", allocs)
	}
}
