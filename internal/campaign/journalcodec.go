package campaign

import (
	"bytes"
	"strconv"

	"sendervalid/internal/jsonwire"
)

// The journal's JSONL wire format, identical to what encoding/json
// produced for the event struct (the fuzz test pins the equivalence):
//
//	{"t":<RFC3339Nano>,"ev":<string>,"k":{"mta":<string>,"test":<string>},
//	 "n":<int,omitempty>,"err":<string,omitempty>,"delay_ms":<int,omitempty>}
//
// one event per line. Like the query-log codec in internal/dnsserver,
// encode and decode are hand-rolled append/scan paths: the journal
// write sits on the campaign's task-transition path (every attempt,
// retry, and completion), and replay on resume walks the whole file,
// so neither should pay reflection per record.

// appendEventJSON encodes e as one journal line, including the
// trailing newline, byte-identical to json.Marshal of the event
// struct.
func appendEventJSON(dst []byte, e *event) []byte {
	dst = append(dst, `{"t":`...)
	dst = jsonwire.AppendTime(dst, e.Time)
	dst = append(dst, `,"ev":`...)
	dst = jsonwire.AppendString(dst, e.Ev)
	dst = append(dst, `,"k":{"mta":`...)
	dst = jsonwire.AppendString(dst, e.Key.MTA)
	dst = append(dst, `,"test":`...)
	dst = jsonwire.AppendString(dst, e.Key.Test)
	dst = append(dst, '}')
	if e.N != 0 {
		dst = append(dst, `,"n":`...)
		dst = strconv.AppendInt(dst, int64(e.N), 10)
	}
	if e.Err != "" {
		dst = append(dst, `,"err":`...)
		dst = jsonwire.AppendString(dst, e.Err)
	}
	if e.DelayMS != 0 {
		dst = append(dst, `,"delay_ms":`...)
		dst = strconv.AppendInt(dst, e.DelayMS, 10)
	}
	return append(dst, '}', '\n')
}

// internEv returns the canonical constant for a decoded event kind so
// replaying a journal does not allocate one string per line; "" means
// the kind is not one of the five known constants.
func internEv(b []byte) string {
	switch string(b) { // compiled to a jump table; no allocation
	case evEnqueue:
		return evEnqueue
	case evAttempt:
		return evAttempt
	case evRetry:
		return evRetry
	case evDone:
		return evDone
	case evFailed:
		return evFailed
	}
	return ""
}

// eventSpan locates one decoded string inside the parser's scratch
// buffer.
type eventSpan struct{ off, end int }

// eventParser decodes one journal line without encoding/json,
// reusable across lines like dnsserver's logLineParser.
type eventParser struct {
	doc     jsonwire.Doc
	scratch []byte
	keyBuf  []byte
}

var eventFieldNames = [][]byte{
	[]byte("t"), []byte("ev"), []byte("k"),
	[]byte("n"), []byte("err"), []byte("delay_ms"),
}

var keyFieldNames = [][]byte{[]byte("mta"), []byte("test")}

// matchKey resolves a decoded object key against names: exact match
// first, then bytes.EqualFold for encoding/json's case-insensitive
// fallback.
func matchKey(key []byte, names [][]byte) int {
	for i, name := range names {
		if bytes.Equal(key, name) {
			return i
		}
	}
	for i, name := range names {
		if bytes.EqualFold(key, name) {
			return i
		}
	}
	return -1
}

func (p *eventParser) stringSpan(s *eventSpan, set *bool) error {
	d := &p.doc
	d.WS()
	if isNull, err := d.TryNull(); isNull || err != nil {
		return err
	}
	start := len(p.scratch)
	var err error
	p.scratch, err = d.ReadString(p.scratch)
	if err != nil {
		return err
	}
	*s = eventSpan{off: start, end: len(p.scratch)}
	if set != nil {
		*set = true
	}
	return nil
}

// objectKey reads the next key of the current object, unescaping into
// keyBuf when needed.
func (p *eventParser) objectKey(first bool) (key []byte, more bool, err error) {
	raw, more, err := p.doc.NextKey(first)
	if err != nil || !more {
		return nil, more, err
	}
	if bytes.IndexByte(raw, '\\') >= 0 {
		p.keyBuf = jsonwire.Unescape(p.keyBuf[:0], raw)
		return p.keyBuf, true, nil
	}
	return raw, true, nil
}

// intField parses an int-typed field (or null, a no-op) into *v.
func (p *eventParser) intField(v *int64) error {
	d := &p.doc
	d.WS()
	if isNull, err := d.TryNull(); isNull || err != nil {
		return err
	}
	n, err := d.Int()
	if err != nil {
		return err
	}
	*v = n
	return nil
}

// parse decodes one journal line. Known event kinds are interned; the
// two key strings share one backing allocation.
func (p *eventParser) parse(line []byte) (event, error) {
	p.scratch = p.scratch[:0]

	var (
		e         event
		ev, errs  eventSpan
		mta, test eventSpan
		evSet     bool
		n, delay  int64
	)

	d := &p.doc
	d.Init(line)
	d.WS()
	if isNull, err := d.TryNull(); err != nil {
		return event{}, err
	} else if isNull {
		// json.Unmarshal accepts a null document as a zero event.
		if err := d.End(); err != nil {
			return event{}, err
		}
		return event{}, nil
	}
	if err := d.ObjectStart(); err != nil {
		return event{}, err
	}
	for first := true; ; first = false {
		key, more, err := p.objectKey(first)
		if err != nil {
			return event{}, err
		}
		if !more {
			break
		}
		switch matchKey(key, eventFieldNames) {
		case 0: // t
			d.WS()
			if isNull, err := d.TryNull(); err != nil {
				return event{}, err
			} else if !isNull {
				raw, err := d.RawString()
				if err != nil {
					return event{}, err
				}
				e.Time, err = jsonwire.ParseTime(raw)
				if err != nil {
					return event{}, err
				}
			}
		case 1: // ev
			if err := p.stringSpan(&ev, &evSet); err != nil {
				return event{}, err
			}
		case 2: // k
			d.WS()
			if isNull, err := d.TryNull(); err != nil {
				return event{}, err
			} else if isNull {
				break
			}
			if err := d.ObjectStart(); err != nil {
				return event{}, err
			}
			for kfirst := true; ; kfirst = false {
				kkey, more, err := p.objectKey(kfirst)
				if err != nil {
					return event{}, err
				}
				if !more {
					break
				}
				switch matchKey(kkey, keyFieldNames) {
				case 0:
					if err := p.stringSpan(&mta, nil); err != nil {
						return event{}, err
					}
				case 1:
					if err := p.stringSpan(&test, nil); err != nil {
						return event{}, err
					}
				default:
					if err := d.SkipValue(); err != nil {
						return event{}, err
					}
				}
			}
		case 3: // n
			if err := p.intField(&n); err != nil {
				return event{}, err
			}
			// json.Unmarshal range-checks against the field's width.
			if int64(int(n)) != n {
				return event{}, strconv.ErrRange
			}
		case 4: // err
			if err := p.stringSpan(&errs, nil); err != nil {
				return event{}, err
			}
		case 5: // delay_ms
			if err := p.intField(&delay); err != nil {
				return event{}, err
			}
		default:
			if err := d.SkipValue(); err != nil {
				return event{}, err
			}
		}
	}
	if err := d.End(); err != nil {
		return event{}, err
	}

	// One backing string for every decoded string field; the event
	// kind is interned so the common case stays at one allocation.
	backing := ""
	get := func(s eventSpan) string {
		if s.off == s.end {
			return ""
		}
		if backing == "" {
			backing = string(p.scratch)
		}
		return backing[s.off:s.end]
	}
	if evSet {
		if s := internEv(p.scratch[ev.off:ev.end]); s != "" {
			e.Ev = s
		} else {
			e.Ev = get(ev)
		}
	}
	e.Key.MTA = get(mta)
	e.Key.Test = get(test)
	e.Err = get(errs)
	e.N = int(n)
	e.DelayMS = delay
	return e, nil
}
