package campaign

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"sendervalid/internal/telemetry"
	"sendervalid/internal/wal"
)

// This file puts the campaign journal on the write-ahead log. The
// journal's payload stays the same JSONL event lines (journalcodec.go),
// but each line is framed as one checksummed WAL record, so a crash
// mid-write is detected and truncated at recovery instead of leaving a
// torn fragment for the replay parser to stumble over, and an fsync
// policy chooses how much a machine crash may cost. Legacy plain-JSONL
// journals remain readable and resumable: OpenJournal sniffs the
// format from the first byte and keeps appending in kind, because a
// journal must never mix formats mid-file.

// JournalOptions configures OpenJournal.
type JournalOptions struct {
	// Sync is the fsync policy for the journal's WAL (and, for legacy
	// journals, a best-effort emulation: SyncAlways syncs per event,
	// SyncInterval time-checks in Write). Default SyncNone.
	Sync wal.SyncPolicy
	// SyncInterval is the group-commit period for wal.SyncInterval.
	SyncInterval time.Duration
	// RotateBytes rotates a WAL journal at this live-segment size;
	// zero (the default) keeps one segment — campaign journals are
	// small next to query logs. Legacy journals never rotate.
	RotateBytes int64
	// Logf, when set, receives the one-line warning if journal
	// writing later fails (see journalWriter).
	Logf func(format string, args ...any)
}

// Journal is the append side of a durable campaign record, as handed
// to Config.Journal: one event line per Write. Err surfaces the sink's
// sticky failure and Check adapts it to a telemetry health check so a
// wedged journal flips /healthz.
type Journal interface {
	io.Writer
	io.Closer
	// Sync forces buffered events to stable storage.
	Sync() error
	// Err returns the sink's sticky write failure, nil while healthy.
	Err() error
	// Check is Err in telemetry.Health check form.
	Check() error
	// RegisterMetrics publishes the sink's durability instruments.
	RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label)
}

// OpenJournal replays the journal at path and reopens it for
// appending, like Resume, but speaks both journal formats:
//
//   - A new (or empty, or already-WAL) journal uses the checksummed
//     write-ahead log: recovery truncates a torn or corrupt tail,
//     reporting what it salvaged and dropped through the Replay, and
//     appends are framed records under the configured fsync policy.
//   - An existing plain-JSONL journal (first byte is printable JSON,
//     not the frame marker) is replayed and appended in the legacy
//     format, so pre-WAL journals keep resuming.
//
// The returned Journal is the value for Config.Journal.
func OpenJournal(path string, o JournalOptions) (*Replay, Journal, error) {
	legacy, err := isLegacyJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if legacy {
		replay, f, err := Resume(path)
		if err != nil {
			return nil, nil, err
		}
		return replay, &legacyJournal{f: f, opts: o}, nil
	}

	w, err := wal.Open(path, wal.Options{
		Sync:        o.Sync,
		Interval:    o.SyncInterval,
		RotateBytes: o.RotateBytes,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: opening WAL journal: %w", err)
	}
	replay, err := replayWALJournal(path)
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	rec := w.Recovered()
	replay.TornTail = rec.Truncated
	replay.DroppedBytes = rec.DroppedBytes
	return replay, &walJournal{w: w}, nil
}

// isLegacyJournal sniffs the file's first byte: plain JSONL if it is
// anything but the WAL frame marker. Missing and empty files are not
// legacy — they start fresh as WALs.
func isLegacyJournal(path string) (bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("campaign: opening journal: %w", err)
	}
	defer f.Close()
	var first [1]byte
	n, rerr := f.Read(first[:])
	if rerr != nil && rerr != io.EOF {
		return false, fmt.Errorf("campaign: reading journal: %w", rerr)
	}
	return n == 1 && !wal.IsFramed(first[:]), nil
}

// replayWALJournal replays every segment of the WAL journal at path in
// append order through tolerant readers. It runs after wal.Open has
// already truncated the live segment's torn tail, but stays tolerant
// anyway: a rotated segment finalized by a crashing process deserves
// the same salvage-the-prefix treatment.
func replayWALJournal(path string) (*Replay, error) {
	segs, err := wal.Segments(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: listing journal segments: %w", err)
	}
	readers := make([]io.Reader, 0, len(segs))
	files := make([]*os.File, 0, len(segs))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, seg := range segs {
		f, err := os.Open(seg)
		if err != nil {
			return nil, fmt.Errorf("campaign: opening journal segment: %w", err)
		}
		files = append(files, f)
		readers = append(readers, wal.NewReader(f))
	}
	replay, err := ReadJournal(io.MultiReader(readers...))
	if err != nil {
		return nil, err
	}
	return replay, nil
}

// walJournal adapts *wal.WAL to the Journal interface.
type walJournal struct{ w *wal.WAL }

func (j *walJournal) Write(p []byte) (int, error) { return j.w.Write(p) }
func (j *walJournal) Sync() error                 { return j.w.Sync() }
func (j *walJournal) Close() error                { return j.w.Close() }
func (j *walJournal) Err() error                  { return j.w.Err() }
func (j *walJournal) Check() error                { return j.w.Check() }
func (j *walJournal) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	j.w.RegisterMetrics(reg, labels...)
}

// legacyJournal appends plain JSONL, emulating the sync policy as far
// as an unframed file allows: SyncAlways fsyncs per event; SyncInterval
// fsyncs inline when the period has elapsed (no background flusher —
// the next event carries the sync, which for a steadily-writing
// campaign is the same guarantee).
type legacyJournal struct {
	mu       sync.Mutex
	f        *os.File
	opts     JournalOptions
	err      error
	lastSync time.Time

	appends  telemetry.Counter
	syncs    telemetry.Counter
	failures telemetry.Counter
}

func (j *legacyJournal) Write(p []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		j.failures.Inc()
		return 0, j.err
	}
	n, err := j.f.Write(p)
	if err != nil {
		j.err = err
		j.failures.Inc()
		return n, err
	}
	j.appends.Inc()
	switch j.opts.Sync {
	case wal.SyncAlways:
		if err := j.f.Sync(); err != nil {
			j.err = err
			j.failures.Inc()
			return n, err
		}
		j.syncs.Inc()
	case wal.SyncInterval:
		interval := j.opts.SyncInterval
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		if now := time.Now(); now.Sub(j.lastSync) >= interval {
			if err := j.f.Sync(); err != nil {
				j.err = err
				j.failures.Inc()
				return n, err
			}
			j.syncs.Inc()
			j.lastSync = now
		}
	}
	return n, nil
}

func (j *legacyJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		j.failures.Inc()
		return err
	}
	j.syncs.Inc()
	return nil
}

func (j *legacyJournal) Close() error { return j.f.Close() }

func (j *legacyJournal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *legacyJournal) Check() error {
	if err := j.Err(); err != nil {
		return fmt.Errorf("journal wedged: %v", err)
	}
	return nil
}

func (j *legacyJournal) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.MustCounter("wal_records_appended_total",
		"Journal events appended (legacy plain-JSONL journal).",
		&j.appends, labels...)
	reg.MustCounter("wal_syncs_total",
		"fsync calls issued by the legacy journal.",
		&j.syncs, labels...)
	reg.MustCounter("wal_failures_total",
		"Journal writes or syncs that failed.",
		&j.failures, labels...)
}
