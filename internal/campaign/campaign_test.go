package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/netsim"
	"sendervalid/internal/smtp"
)

func errConnRefusedForTest() error { return netsim.ErrConnRefused }

// tasksFor builds the full (MTA, test) cross product.
func tasksFor(mtas, tests int) []Task {
	out := make([]Task, 0, mtas*tests)
	for m := 0; m < mtas; m++ {
		for t := 0; t < tests; t++ {
			out = append(out, Task{MTA: fmt.Sprintf("m%03d", m), Test: fmt.Sprintf("t%02d", t)})
		}
	}
	return out
}

func TestCampaignRunsEveryTaskOnce(t *testing.T) {
	var mu sync.Mutex
	ran := make(map[Key]int)
	c := New(Config{Workers: 8}, func(ctx context.Context, task Task) error {
		mu.Lock()
		ran[task.Key()]++
		mu.Unlock()
		return nil
	})
	tasks := tasksFor(10, 4)
	c.Add(tasks...)
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(ran) != len(tasks) {
		t.Fatalf("ran %d distinct tasks, want %d", len(ran), len(tasks))
	}
	for k, n := range ran {
		if n != 1 {
			t.Errorf("task %v ran %d times", k, n)
		}
	}
	s := c.Snapshot()
	if s.Done != len(tasks) || s.Failed != 0 || s.Queued != 0 || s.Inflight != 0 {
		t.Errorf("snapshot after run: %+v", s)
	}
}

func TestShardNeverProbedConcurrently(t *testing.T) {
	var mu sync.Mutex
	active := make(map[string]int)
	maxActive := make(map[string]int)
	c := New(Config{Workers: 16}, func(ctx context.Context, task Task) error {
		mu.Lock()
		active[task.MTA]++
		if active[task.MTA] > maxActive[task.MTA] {
			maxActive[task.MTA] = active[task.MTA]
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		active[task.MTA]--
		mu.Unlock()
		return nil
	})
	c.Add(tasksFor(4, 12)...)
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for mta, n := range maxActive {
		if n > 1 {
			t.Errorf("shard %s saw %d concurrent attempts", mta, n)
		}
	}
}

func TestTransientRetryWithBudget(t *testing.T) {
	transient := &smtp.Error{Code: 421, Message: "greylisted, try again"}
	var mu sync.Mutex
	attempts := make(map[Key]int)
	c := New(Config{
		Workers:     4,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}, func(ctx context.Context, task Task) error {
		mu.Lock()
		attempts[task.Key()]++
		n := attempts[task.Key()]
		mu.Unlock()
		switch task.MTA {
		case "m000": // succeeds on the 2nd attempt
			if n < 2 {
				return transient
			}
			return nil
		case "m001": // transient forever: must exhaust the budget
			return transient
		case "m002": // terminal: must not be retried
			return &smtp.Error{Code: 554, Message: "no"}
		}
		return nil
	})
	c.Add(Task{MTA: "m000", Test: "t01"}, Task{MTA: "m001", Test: "t01"},
		Task{MTA: "m002", Test: "t01"}, Task{MTA: "m003", Test: "t01"})
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := attempts[Key{"m000", "t01"}]; got != 2 {
		t.Errorf("recovering task: %d attempts, want 2", got)
	}
	if got := attempts[Key{"m001", "t01"}]; got != 3 {
		t.Errorf("always-transient task: %d attempts, want budget of 3", got)
	}
	if got := attempts[Key{"m002", "t01"}]; got != 1 {
		t.Errorf("terminal task retried: %d attempts, want 1", got)
	}
	s := c.Snapshot()
	if s.Done != 2 || s.Failed != 2 {
		t.Errorf("done %d failed %d, want 2/2", s.Done, s.Failed)
	}
	if s.Retried != 3 { // m000 once + m001 twice
		t.Errorf("retried %d, want 3", s.Retried)
	}
}

// TestResumeAfterCancel is the crash/resume acceptance criterion: a
// campaign cancelled mid-run and restarted from its journal finishes
// every (MTA, test) pair exactly once, with replay re-enqueueing only
// unfinished work.
func TestResumeAfterCancel(t *testing.T) {
	tasks := tasksFor(12, 4)
	var journal bytes.Buffer

	// Phase 1: cancel deterministically once exactly half the tasks
	// succeed. The half-th success triggers cancel from inside runFn;
	// any task reaching the gate afterwards blocks until the context
	// dies and returns its error, which DefaultClassify maps to
	// Aborted — a voided attempt that stays pending for the resumed
	// run.
	ctx, cancel := context.WithCancel(context.Background())
	half := len(tasks) / 2

	var mu sync.Mutex
	gated := true
	completions := make(map[Key]int) // successful-outcome count per task

	runFn := func(ctx context.Context, task Task) error {
		mu.Lock()
		if gated && len(completions) >= half {
			mu.Unlock()
			<-ctx.Done()
			return ctx.Err()
		}
		completions[task.Key()]++
		if len(completions) == half {
			cancel()
		}
		mu.Unlock()
		return nil
	}

	c1 := New(Config{Workers: 3, Journal: &journal}, runFn)
	c1.Add(tasks...)
	if err := c1.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	firstDone := c1.Snapshot().Done
	if firstDone == 0 || firstDone == len(tasks) {
		t.Fatalf("cancellation did not land mid-run: %d of %d done", firstDone, len(tasks))
	}

	// Phase 2: replay the journal, re-enqueue only unfinished pairs.
	replay, err := ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if replay.Done() != firstDone {
		t.Errorf("replay sees %d done, first run reported %d", replay.Done(), firstDone)
	}
	remaining := replay.Unfinished(tasks)
	if len(remaining) != len(tasks)-firstDone {
		t.Errorf("replay re-enqueues %d tasks, want %d", len(remaining), len(tasks)-firstDone)
	}
	for _, task := range remaining {
		if n := completions[task.Key()]; n != 0 {
			t.Errorf("task %v completed %d times yet re-enqueued", task.Key(), n)
		}
	}

	mu.Lock()
	gated = false // phase 2 runs the leftover tasks to completion
	mu.Unlock()
	c2 := New(Config{Workers: 3, Journal: &journal}, runFn)
	c2.Add(remaining...)
	if err := c2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Every pair completed exactly once across both runs.
	if len(completions) != len(tasks) {
		t.Fatalf("completed %d distinct tasks, want %d", len(completions), len(tasks))
	}
	for k, n := range completions {
		if n != 1 {
			t.Errorf("task %v completed %d times", k, n)
		}
	}

	// The concatenated journal agrees: one final state per pair.
	full, err := ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Final) != len(tasks) {
		t.Errorf("journal records %d finished tasks, want %d", len(full.Final), len(tasks))
	}
}

// TestPerShardRateLimit is the rate-limiting acceptance criterion: no
// shard exceeds its token budget in any window while aggregate
// throughput across shards exceeds any single shard's rate.
func TestPerShardRateLimit(t *testing.T) {
	const (
		shards        = 4
		tasksPerShard = 8
		rate          = 40.0 // attempts/sec/shard
	)
	var mu sync.Mutex
	grants := make(map[string][]time.Time)
	c := New(Config{
		Workers:    16,
		ShardRate:  rate,
		ShardBurst: 1,
	}, func(ctx context.Context, task Task) error {
		mu.Lock()
		grants[task.MTA] = append(grants[task.MTA], time.Now())
		mu.Unlock()
		return nil
	})
	c.Add(tasksFor(shards, tasksPerShard)...)
	start := time.Now()
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// Per shard: with burst 1, consecutive grants may never be closer
	// than the refill interval (20% slack for timestamping skew).
	minGap := time.Duration(0.8 / rate * float64(time.Second))
	for shard, times := range grants {
		if len(times) != tasksPerShard {
			t.Fatalf("shard %s got %d attempts, want %d", shard, len(times), tasksPerShard)
		}
		for i := 1; i < len(times); i++ {
			if gap := times[i].Sub(times[i-1]); gap < minGap {
				t.Errorf("shard %s: grants %d and %d only %v apart (budget %v)",
					shard, i-1, i, gap, minGap)
			}
		}
	}

	// Aggregate: all shards pace concurrently, so total throughput
	// must exceed what a single shard's budget allows.
	total := shards * tasksPerShard
	aggregate := float64(total) / elapsed.Seconds()
	if aggregate <= rate {
		t.Errorf("aggregate throughput %.1f/s does not exceed single-shard rate %.1f/s", aggregate, rate)
	}
	// And each shard alone must have respected its budget overall.
	perShard := float64(tasksPerShard-1) / elapsed.Seconds()
	if perShard > rate*1.2 {
		t.Errorf("per-shard throughput %.1f/s exceeds rate %.1f/s", perShard, rate)
	}
}

func TestTokenBucketDeterministic(t *testing.T) {
	b := newTokenBucket(2, 1) // 2 tokens/sec, burst 1
	t0 := time.Unix(1000, 0)
	if !b.take(t0) {
		t.Fatal("fresh bucket must grant its burst")
	}
	if b.take(t0) {
		t.Fatal("burst-1 bucket granted twice at the same instant")
	}
	if w := b.wait(t0); w != 500*time.Millisecond {
		t.Fatalf("wait = %v, want 500ms", w)
	}
	if b.take(t0.Add(200 * time.Millisecond)) {
		t.Fatal("granted before refill")
	}
	if !b.take(t0.Add(700 * time.Millisecond)) {
		t.Fatal("refused after a full refill interval")
	}
	// Burst never exceeds the cap, however long the idle period.
	b2 := newTokenBucket(2, 3)
	t1 := t0.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !b2.take(t1) {
			t.Fatalf("burst grant %d refused", i)
		}
	}
	if b2.take(t1) {
		t.Fatal("granted beyond burst after idle")
	}
	// Unlimited bucket always grants.
	b3 := newTokenBucket(0, 1)
	for i := 0; i < 100; i++ {
		if !b3.take(t0) {
			t.Fatal("unlimited bucket refused")
		}
	}
}

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, Done},
		{context.Canceled, Aborted},
		{context.DeadlineExceeded, Aborted},
		{&smtp.Error{Code: 421, Message: "try later"}, Transient},
		{&smtp.Error{Code: 450, Message: "greylisted"}, Transient},
		{&smtp.Error{Code: 550, Message: "no such user"}, Terminal},
		{&smtp.Error{Code: 554, Message: "blacklisted"}, Terminal},
		{fmt.Errorf("dial: %w", errConnRefusedForTest()), Transient},
		{errors.New("malformed address"), Terminal},
	}
	for _, tc := range cases {
		if got := DefaultClassify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestAddIsIdempotentPerKey(t *testing.T) {
	c := New(Config{Workers: 2}, func(ctx context.Context, task Task) error { return nil })
	task := Task{MTA: "m0", Test: "t1"}
	c.Add(task, task)
	c.Add(task)
	if got := c.Snapshot().Total; got != 1 {
		t.Fatalf("duplicate Add produced %d tasks, want 1", got)
	}
}

func TestJournalTornTailLine(t *testing.T) {
	var buf bytes.Buffer
	j := newJournalWriter(&buf, nil)
	j.event(event{Ev: evEnqueue, Key: Key{"m0", "t1"}})
	j.event(event{Ev: evAttempt, Key: Key{"m0", "t1"}, N: 1})
	j.event(event{Ev: evDone, Key: Key{"m0", "t1"}, N: 1})
	j.event(event{Ev: evEnqueue, Key: Key{"m1", "t1"}})
	// Simulate a crash mid-write: truncate the final line.
	torn := buf.Bytes()[:buf.Len()-9]
	rp, err := ReadJournal(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must replay cleanly: %v", err)
	}
	if rp.Final[Key{"m0", "t1"}] != StateDone {
		t.Errorf("finished task lost in torn replay: %+v", rp.Final)
	}
	if _, finished := rp.Final[Key{"m1", "t1"}]; finished {
		t.Error("torn task counted as finished")
	}
	if rp.Malformed != 1 {
		t.Errorf("Malformed = %d, want 1", rp.Malformed)
	}

	// A file with data but no valid events is not a journal.
	if _, err := ReadJournal(strings.NewReader("not a journal\nat all\n")); err == nil {
		t.Error("non-journal input accepted")
	}
}

func TestResumeTerminatesTornTail(t *testing.T) {
	// Crash → resume → crash again: the first resume must terminate the
	// torn fragment so its own events don't merge with it, or the
	// second resume cannot replay the journal.
	path := filepath.Join(t.TempDir(), "camp.jsonl")
	var buf bytes.Buffer
	j := newJournalWriter(&buf, nil)
	j.event(event{Ev: evEnqueue, Key: Key{"m0", "t1"}})
	j.event(event{Ev: evAttempt, Key: Key{"m0", "t1"}, N: 1})
	j.event(event{Ev: evDone, Key: Key{"m0", "t1"}, N: 1})
	j.event(event{Ev: evEnqueue, Key: Key{"m1", "t1"}})
	torn := buf.Bytes()[:buf.Len()-9] // no trailing newline
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	rp, jf, err := Resume(path)
	if err != nil {
		t.Fatalf("first resume: %v", err)
	}
	if rp.Final[Key{"m0", "t1"}] != StateDone {
		t.Fatalf("finished task lost: %+v", rp.Final)
	}
	j2 := newJournalWriter(jf, nil)
	j2.event(event{Ev: evAttempt, Key: Key{"m1", "t1"}, N: 1})
	// Second crash: close without finishing m1/t1.
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}

	rp2, jf2, err := Resume(path)
	if err != nil {
		t.Fatalf("second resume after terminated torn line: %v", err)
	}
	defer jf2.Close()
	if rp2.Malformed != 1 {
		t.Errorf("Malformed = %d, want 1 (the terminated fragment)", rp2.Malformed)
	}
	if rp2.Final[Key{"m0", "t1"}] != StateDone {
		t.Errorf("finished task lost on second replay: %+v", rp2.Final)
	}
	if rp2.Attempts[Key{"m1", "t1"}] != 1 {
		t.Errorf("post-resume attempt lost: %+v", rp2.Attempts)
	}
	if _, finished := rp2.Final[Key{"m1", "t1"}]; finished {
		t.Error("unfinished task counted as finished")
	}
}
