package spf

import (
	"context"
	"strings"
	"testing"
)

func findCode(r *LintReport, code string) *Finding {
	for i := range r.Findings {
		if r.Findings[i].Code == code {
			return &r.Findings[i]
		}
	}
	return nil
}

func TestLintRecordClean(t *testing.T) {
	l := &Linter{}
	r := l.LintRecord("example.com", "v=spf1 ip4:192.0.2.0/24 a mx -all")
	for _, f := range r.Findings {
		if f.Severity >= Warning {
			t.Errorf("clean record flagged: %s", f)
		}
	}
	if r.Lookups != 2 {
		t.Errorf("lookups %d, want 2 (a + mx)", r.Lookups)
	}
	if r.MaxSeverity() >= Warning {
		t.Errorf("max severity %s", r.MaxSeverity())
	}
}

func TestLintRecordSyntaxError(t *testing.T) {
	l := &Linter{}
	r := l.LintRecord("example.com", "v=spf1 ipv4:192.0.2.1 -all")
	f := findCode(r, "syntax")
	if f == nil || f.Severity != Error {
		t.Fatalf("syntax finding missing: %v", r.Findings)
	}
	if !strings.Contains(f.Term, "ipv4") {
		t.Errorf("term %q", f.Term)
	}
}

func TestLintRecordPassAll(t *testing.T) {
	l := &Linter{}
	r := l.LintRecord("example.com", "v=spf1 +all")
	if f := findCode(r, "pass-all"); f == nil || f.Severity != Error {
		t.Errorf("+all not flagged: %v", r.Findings)
	}
}

func TestLintRecordUnreachableAndDeadRedirect(t *testing.T) {
	l := &Linter{}
	r := l.LintRecord("example.com", "v=spf1 -all ip4:192.0.2.1 redirect=other.example")
	if findCode(r, "unreachable") == nil {
		t.Errorf("unreachable mechanism not flagged: %v", r.Findings)
	}
	if findCode(r, "dead-redirect") == nil {
		t.Errorf("dead redirect not flagged: %v", r.Findings)
	}
}

func TestLintRecordNoAll(t *testing.T) {
	l := &Linter{}
	r := l.LintRecord("example.com", "v=spf1 ip4:192.0.2.1")
	if findCode(r, "no-all") == nil {
		t.Errorf("missing all not flagged: %v", r.Findings)
	}
	// With a redirect, no-all is fine.
	r = l.LintRecord("example.com", "v=spf1 redirect=_spf.example.com")
	if findCode(r, "no-all") != nil {
		t.Errorf("redirect-terminated record flagged: %v", r.Findings)
	}
}

func TestLintRecordPTRDeprecated(t *testing.T) {
	l := &Linter{}
	r := l.LintRecord("example.com", "v=spf1 ptr -all")
	if f := findCode(r, "ptr"); f == nil || f.Severity != Warning {
		t.Errorf("ptr not flagged: %v", r.Findings)
	}
}

func TestLintRecordLocalLookupLimit(t *testing.T) {
	l := &Linter{}
	terms := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		terms = append(terms, "exists:x"+string(rune('a'+i))+".example.com")
	}
	r := l.LintRecord("example.com", "v=spf1 "+strings.Join(terms, " ")+" -all")
	if f := findCode(r, "lookup-limit"); f == nil || f.Severity != Error {
		t.Errorf("local lookup limit not flagged (%d lookups): %v", r.Lookups, r.Findings)
	}
}

func TestLintTraversal(t *testing.T) {
	res := newMockResolver()
	res.txt["example.com"] = []string{"v=spf1 include:a.example.net include:b.example.net -all"}
	res.txt["a.example.net"] = []string{"v=spf1 a mx exists:x.example.org ?all"}
	res.txt["b.example.net"] = []string{"v=spf1 include:c.example.net ?all"}
	res.txt["c.example.net"] = []string{"v=spf1 ip4:192.0.2.0/24 ?all"}

	l := &Linter{Resolver: res}
	r, err := l.Lint(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	// 2 top includes + (a, mx, exists) + 1 nested include = 6 lookups.
	if r.Lookups != 6 {
		t.Errorf("lookups %d, want 6", r.Lookups)
	}
	if f := findCode(r, "lookup-limit"); f != nil {
		t.Errorf("under-limit policy flagged: %s", f)
	}
}

func TestLintTraversalOverLimit(t *testing.T) {
	res := newMockResolver()
	// A chain of 12 includes.
	for i := 0; i < 12; i++ {
		name := "l" + string(rune('a'+i)) + ".example.com"
		next := "l" + string(rune('a'+i+1)) + ".example.com"
		res.txt[name] = []string{"v=spf1 include:" + next + " ?all"}
	}
	res.txt["l"+string(rune('a'+12))+".example.com"] = []string{"v=spf1 ?all"}
	l := &Linter{Resolver: res, MaxDepth: 20}
	r, err := l.Lint(context.Background(), "la.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if r.Lookups != 12 {
		t.Errorf("lookups %d, want 12", r.Lookups)
	}
	if findCode(r, "lookup-limit") == nil {
		t.Errorf("over-limit chain not flagged: %v", r.Findings)
	}
}

func TestLintIncludeLoop(t *testing.T) {
	res := newMockResolver()
	res.txt["x.example.com"] = []string{"v=spf1 include:y.example.com ?all"}
	res.txt["y.example.com"] = []string{"v=spf1 include:x.example.com ?all"}
	l := &Linter{Resolver: res}
	r, err := l.Lint(context.Background(), "x.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if findCode(r, "include-loop") == nil {
		t.Errorf("loop not flagged: %v", r.Findings)
	}
}

func TestLintIncludeWithoutRecord(t *testing.T) {
	res := newMockResolver()
	res.txt["x.example.com"] = []string{"v=spf1 include:missing.example.com -all"}
	l := &Linter{Resolver: res}
	r, err := l.Lint(context.Background(), "x.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if f := findCode(r, "include-none"); f == nil || f.Severity != Error {
		t.Errorf("dangling include not flagged: %v", r.Findings)
	}
}

func TestLintMultipleRecords(t *testing.T) {
	res := newMockResolver()
	res.txt["x.example.com"] = []string{"v=spf1 -all", "v=spf1 ~all"}
	l := &Linter{Resolver: res}
	r, err := l.Lint(context.Background(), "x.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if f := findCode(r, "multiple-records"); f == nil || f.Severity != Error {
		t.Errorf("multiple records not flagged: %v", r.Findings)
	}
}

func TestLintNoRecord(t *testing.T) {
	res := newMockResolver()
	l := &Linter{Resolver: res}
	r, err := l.Lint(context.Background(), "nothing.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if f := findCode(r, "no-record"); f == nil || f.Severity != Info {
		t.Errorf("missing record: %v", r.Findings)
	}
}

func TestLintRedirectTraversal(t *testing.T) {
	res := newMockResolver()
	res.txt["x.example.com"] = []string{"v=spf1 redirect=_spf.x.example.com"}
	res.txt["_spf.x.example.com"] = []string{"v=spf1 a mx -all"}
	l := &Linter{Resolver: res}
	r, err := l.Lint(context.Background(), "x.example.com")
	if err != nil {
		t.Fatal(err)
	}
	// redirect (1) + a + mx = 3.
	if r.Lookups != 3 {
		t.Errorf("lookups %d, want 3", r.Lookups)
	}
}

func TestLintMacroInclude(t *testing.T) {
	res := newMockResolver()
	res.txt["x.example.com"] = []string{"v=spf1 include:%{d2}.trusted.example ?all"}
	l := &Linter{Resolver: res}
	r, err := l.Lint(context.Background(), "x.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if findCode(r, "macro-include") == nil {
		t.Errorf("macro include not noted: %v", r.Findings)
	}
}

func TestLintRequiresResolver(t *testing.T) {
	l := &Linter{}
	if _, err := l.Lint(context.Background(), "x.example.com"); err == nil {
		t.Error("Lint without resolver succeeded")
	}
}

func TestLintTransientError(t *testing.T) {
	res := newMockResolver()
	res.failing["broken.example.com"] = errTransient
	l := &Linter{Resolver: res}
	if _, err := l.Lint(context.Background(), "broken.example.com"); err == nil {
		t.Error("transient failure not surfaced")
	}
}

var errTransient = &transientErr{}

type transientErr struct{}

func (*transientErr) Error() string { return "SERVFAIL" }

func TestFindingAndSeverityStrings(t *testing.T) {
	f := Finding{Severity: Warning, Code: "ptr", Term: "ptr", Message: "deprecated"}
	if !strings.Contains(f.String(), "warning[ptr]") {
		t.Errorf("finding string %q", f.String())
	}
	f.Term = ""
	if !strings.Contains(f.String(), "warning[ptr] deprecated") {
		t.Errorf("finding string %q", f.String())
	}
	if Info.String() != "info" || Error.String() != "error" || Severity(9).String() == "" {
		t.Error("severity strings")
	}
	empty := &LintReport{}
	if empty.MaxSeverity() != Severity(-1) {
		t.Error("empty report severity")
	}
}
