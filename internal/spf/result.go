// Package spf implements the Sender Policy Framework (RFC 7208):
// policy parsing, macro expansion, and the check_host() evaluation
// function, including the DNS-lookup, void-lookup, and MX-address
// limits the specification imposes.
//
// Beyond strict compliance, the evaluator exposes knobs that reproduce
// the non-compliant validator behaviours observed in the CoNEXT 2021
// measurement study "Measuring Email Sender Validation in the Wild":
// ignoring syntax errors, exceeding lookup limits, falling back to
// A lookups after failed MX lookups, following one of multiple SPF
// records, and prefetching DNS lookups in parallel. These knobs let a
// simulated MTA population express the full behavioural spectrum the
// study measured.
package spf

// Result is an SPF evaluation result (RFC 7208 §2.6).
type Result string

// The seven SPF results.
const (
	// None means no SPF record was found or no checkable domain was
	// supplied.
	None Result = "none"
	// Neutral means the domain owner asserts nothing about the sender.
	Neutral Result = "neutral"
	// Pass means the client is authorized to send for the domain.
	Pass Result = "pass"
	// Fail means the client is explicitly not authorized.
	Fail Result = "fail"
	// SoftFail means the client is probably not authorized.
	SoftFail Result = "softfail"
	// TempError means a transient error (typically DNS) occurred.
	TempError Result = "temperror"
	// PermError means the published policy could not be correctly
	// interpreted.
	PermError Result = "permerror"
)

// Definitive reports whether the result is one a receiver can act on
// without retrying (everything but temperror).
func (r Result) Definitive() bool { return r != TempError }

// Qualifier is a mechanism qualifier (RFC 7208 §4.6.2).
type Qualifier byte

// The four qualifiers.
const (
	QPass     Qualifier = '+'
	QFail     Qualifier = '-'
	QSoftFail Qualifier = '~'
	QNeutral  Qualifier = '?'
)

// Result maps the qualifier to the result returned when its mechanism
// matches.
func (q Qualifier) Result() Result {
	switch q {
	case QFail:
		return Fail
	case QSoftFail:
		return SoftFail
	case QNeutral:
		return Neutral
	default:
		return Pass
	}
}

// String returns the qualifier character.
func (q Qualifier) String() string { return string(q) }
