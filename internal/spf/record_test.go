package spf

import (
	"strings"
	"testing"
)

func TestIsSPF(t *testing.T) {
	cases := []struct {
		txt  string
		want bool
	}{
		{"v=spf1 -all", true},
		{"v=spf1", true},
		{"v=spf10 -all", false},
		{"v=spf1x", false},
		{"V=SPF1 -all", false}, // version tag is case-sensitive in practice
		{"spf1 -all", false},
		{"", false},
	}
	for _, c := range cases {
		if got := IsSPF(c.txt); got != c.want {
			t.Errorf("IsSPF(%q) = %v, want %v", c.txt, got, c.want)
		}
	}
}

func TestParseBasic(t *testing.T) {
	rec, err := Parse("v=spf1 ip4:192.0.2.1 a:bar.foo.com include:foo.net -all")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(rec.Mechanisms) != 4 {
		t.Fatalf("got %d mechanisms", len(rec.Mechanisms))
	}
	checks := []struct {
		kind      MechanismKind
		qualifier Qualifier
		domain    string
		ip        string
	}{
		{MechIP4, QPass, "", "192.0.2.1"},
		{MechA, QPass, "bar.foo.com", ""},
		{MechInclude, QPass, "foo.net", ""},
		{MechAll, QFail, "", ""},
	}
	for i, want := range checks {
		m := rec.Mechanisms[i]
		if m.Kind != want.kind || m.Qualifier != want.qualifier ||
			m.Domain != want.domain || m.IP != want.ip {
			t.Errorf("mechanism %d = %+v, want %+v", i, m, want)
		}
	}
}

func TestParseQualifiers(t *testing.T) {
	rec, err := Parse("v=spf1 +a ?mx ~exists:x.example.com -all")
	if err != nil {
		t.Fatal(err)
	}
	want := []Qualifier{QPass, QNeutral, QSoftFail, QFail}
	for i, q := range want {
		if rec.Mechanisms[i].Qualifier != q {
			t.Errorf("mechanism %d qualifier %c, want %c", i, rec.Mechanisms[i].Qualifier, q)
		}
	}
	for _, q := range want {
		if q.Result() == "" {
			t.Errorf("qualifier %c has no result", q)
		}
	}
	if QFail.Result() != Fail || QPass.Result() != Pass ||
		QSoftFail.Result() != SoftFail || QNeutral.Result() != Neutral {
		t.Error("qualifier result mapping broken")
	}
}

func TestParseCIDR(t *testing.T) {
	cases := []struct {
		txt            string
		wantP4, wantP6 int
	}{
		{"v=spf1 a/24 -all", 24, -1},
		{"v=spf1 a//64 -all", -1, 64},
		{"v=spf1 a/24//64 -all", 24, 64},
		{"v=spf1 mx:mail.example.com/28 -all", 28, -1},
		{"v=spf1 a:host.example.com/24//96 -all", 24, 96},
		{"v=spf1 a -all", -1, -1},
	}
	for _, c := range cases {
		rec, err := Parse(c.txt)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.txt, err)
			continue
		}
		m := rec.Mechanisms[0]
		if m.Prefix4 != c.wantP4 || m.Prefix6 != c.wantP6 {
			t.Errorf("Parse(%q): prefixes (%d, %d), want (%d, %d)",
				c.txt, m.Prefix4, m.Prefix6, c.wantP4, c.wantP6)
		}
	}
}

func TestParseIPLiterals(t *testing.T) {
	rec, err := Parse("v=spf1 ip4:192.0.2.0/24 ip6:2001:db8::/32 ip6:2001:db8::1 -all")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Mechanisms[0].IP != "192.0.2.0/24" {
		t.Errorf("ip4 literal %q", rec.Mechanisms[0].IP)
	}
	if rec.Mechanisms[1].IP != "2001:db8::/32" {
		t.Errorf("ip6 cidr literal %q", rec.Mechanisms[1].IP)
	}
	if rec.Mechanisms[2].IP != "2001:db8::1" {
		t.Errorf("ip6 literal %q", rec.Mechanisms[2].IP)
	}
}

func TestParseModifiers(t *testing.T) {
	rec, err := Parse("v=spf1 mx redirect=_spf.example.com exp=explain.example.com unknown=keepme")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Redirect != "_spf.example.com" {
		t.Errorf("redirect %q", rec.Redirect)
	}
	if rec.Exp != "explain.example.com" {
		t.Errorf("exp %q", rec.Exp)
	}
	if len(rec.UnknownModifiers) != 1 || rec.UnknownModifiers[0] != "unknown=keepme" {
		t.Errorf("unknown modifiers %v", rec.UnknownModifiers)
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	cases := []string{
		"v=spf1 ipv4:192.0.2.1 -all", // the paper's deliberate typo test (§7.3)
		"v=spf1 bogus -all",
		"v=spf1 ip4: -all",
		"v=spf1 include: -all",
		"v=spf1 exists -all",
		"v=spf1 all:arg",
		"v=spf1 a/99 -all",
		"v=spf1 a//300 -all",
		"v=spf1 redirect= -all",
		"v=spf1 exp= -all",
		"not-spf-at-all",
	}
	for _, txt := range cases {
		if _, err := Parse(txt); err == nil {
			t.Errorf("Parse(%q) accepted a malformed record", txt)
		}
	}
}

func TestParsePartialRecordOnError(t *testing.T) {
	// A record with a syntax error mid-way still exposes the terms
	// around it, so non-compliant evaluation modes can keep going —
	// the behaviour the paper's syntax-error test policy elicits.
	rec, err := Parse("v=spf1 ip4:192.0.2.1 ipv4:198.51.100.1 a:after.example.com -all")
	if err == nil {
		t.Fatal("typo accepted")
	}
	var serr *SyntaxError
	if !asSyntaxError(err, &serr) {
		t.Fatalf("error type %T", err)
	}
	if len(rec.Mechanisms) != 3 {
		t.Errorf("partial record has %d mechanisms, want 3 (error term skipped)", len(rec.Mechanisms))
	}
	if rec.Mechanisms[1].Kind != MechA || rec.Mechanisms[1].Domain != "after.example.com" {
		t.Errorf("term after error: %+v", rec.Mechanisms[1])
	}
}

func asSyntaxError(err error, target **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*target = se
	}
	return ok
}

func TestRecordStringRoundTrip(t *testing.T) {
	for _, txt := range []string{
		"v=spf1 ip4:192.0.2.1 a:bar.foo.com include:foo.net -all",
		"v=spf1 mx ~all",
		"v=spf1 a/24 exists:%{i}.spf.example.com ?all",
		"v=spf1 redirect=_spf.example.com",
	} {
		rec, err := Parse(txt)
		if err != nil {
			t.Fatalf("Parse(%q): %v", txt, err)
		}
		rec2, err := Parse(rec.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", rec.String(), txt, err)
		}
		if rec.String() != rec2.String() {
			t.Errorf("unstable rendering: %q vs %q", rec.String(), rec2.String())
		}
	}
}

func TestMechanismKindRequiresLookup(t *testing.T) {
	lookups := map[MechanismKind]bool{
		MechAll: false, MechIP4: false, MechIP6: false,
		MechInclude: true, MechA: true, MechMX: true, MechPTR: true, MechExists: true,
	}
	for kind, want := range lookups {
		if got := kind.RequiresLookup(); got != want {
			t.Errorf("%s.RequiresLookup() = %v, want %v", kind, got, want)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	err := &SyntaxError{Term: "ipv4:1.2.3.4", Reason: "unknown mechanism"}
	if !strings.Contains(err.Error(), "ipv4:1.2.3.4") {
		t.Errorf("error message %q lacks term", err.Error())
	}
}
