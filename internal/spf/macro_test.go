package spf

import (
	"net/netip"
	"strings"
	"testing"
)

// rfcEnv is the example environment from RFC 7208 §7.4.
func rfcEnv() *MacroEnv {
	return &MacroEnv{
		Sender: "strong-bad@email.example.com",
		Domain: "email.example.com",
		IP:     netip.MustParseAddr("192.0.2.3"),
		Helo:   "mta.example.com",
	}
}

func TestMacroRFCExamples(t *testing.T) {
	cases := []struct{ in, want string }{
		{"%{s}", "strong-bad@email.example.com"},
		{"%{o}", "email.example.com"},
		{"%{d}", "email.example.com"},
		{"%{d4}", "email.example.com"},
		{"%{d3}", "email.example.com"},
		{"%{d2}", "example.com"},
		{"%{d1}", "com"},
		{"%{dr}", "com.example.email"},
		{"%{d2r}", "example.email"},
		{"%{l}", "strong-bad"},
		{"%{l-}", "strong.bad"},
		{"%{lr}", "strong-bad"},
		{"%{lr-}", "bad.strong"},
		{"%{l1r-}", "strong"},
		{"%{ir}.%{v}._spf.%{d2}", "3.2.0.192.in-addr._spf.example.com"},
		{"%{lr-}.lp._spf.%{d2}", "bad.strong.lp._spf.example.com"},
		{"%{lr-}.lp.%{ir}.%{v}._spf.%{d2}", "bad.strong.lp.3.2.0.192.in-addr._spf.example.com"},
		{"%{ir}.%{v}.%{l1r-}.lp._spf.%{d2}", "3.2.0.192.in-addr.strong.lp._spf.example.com"},
		{"%{d2}.trusted-domains.example.net", "example.com.trusted-domains.example.net"},
	}
	env := rfcEnv()
	for _, c := range cases {
		got, err := ExpandMacros(c.in, env, false)
		if err != nil {
			t.Errorf("ExpandMacros(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ExpandMacros(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMacroIPv6(t *testing.T) {
	env := rfcEnv()
	env.IP = netip.MustParseAddr("2001:db8::cb01")
	got, err := ExpandMacros("%{ir}.%{v}._spf.%{d2}", env, false)
	if err != nil {
		t.Fatal(err)
	}
	want := "1.0.b.c.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2.ip6._spf.example.com"
	if got != want {
		t.Errorf("IPv6 %%{ir}: got\n%s\nwant\n%s", got, want)
	}
}

func TestMacroLiterals(t *testing.T) {
	env := rfcEnv()
	cases := []struct{ in, want string }{
		{"%%", "%"},
		{"%_", " "},
		{"%-", "%20"},
		{"no-macros.example.com", "no-macros.example.com"},
		{"a%%b%_c", "a%b c"},
	}
	for _, c := range cases {
		got, err := ExpandMacros(c.in, env, false)
		if err != nil {
			t.Errorf("ExpandMacros(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ExpandMacros(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMacroErrors(t *testing.T) {
	env := rfcEnv()
	for _, in := range []string{
		"%",      // trailing percent
		"%x",     // invalid escape
		"%{d",    // unterminated
		"%{}",    // empty
		"%{q}",   // unknown letter
		"%{d2x}", // invalid delimiter
		"%{c}",   // exp-only macro outside exp
		"%{r}",   // exp-only macro outside exp
		"%{t}",   // exp-only macro outside exp
	} {
		if _, err := ExpandMacros(in, env, false); err == nil {
			t.Errorf("ExpandMacros(%q) accepted invalid input", in)
		}
	}
}

func TestMacroExpMode(t *testing.T) {
	env := rfcEnv()
	env.Receiver = "mx.receiver.example"
	got, err := ExpandMacros("seen by %{r} from %{c}", env, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != "seen by mx.receiver.example from 192.0.2.3" {
		t.Errorf("exp expansion: %q", got)
	}
	// %{t} must expand deterministically.
	if ts, err := ExpandMacros("%{t}", env, true); err != nil || ts != "0" {
		t.Errorf("%%{t} = %q, %v", ts, err)
	}
}

func TestMacroValidatedDefault(t *testing.T) {
	env := rfcEnv()
	got, err := ExpandMacros("%{p}", env, false)
	if err != nil || got != "unknown" {
		t.Errorf("%%{p} without validation = %q, %v", got, err)
	}
	env.Validated = "mail.example.com"
	got, _ = ExpandMacros("%{p}", env, false)
	if got != "mail.example.com" {
		t.Errorf("%%{p} = %q", got)
	}
}

func TestMacroURLEscape(t *testing.T) {
	env := rfcEnv()
	env.Sender = "a b/c@email.example.com"
	got, err := ExpandMacros("%{L}", env, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != "a%20b%2Fc" {
		t.Errorf("uppercase macro escape: %q", got)
	}
}

func TestMacroSenderDefaults(t *testing.T) {
	env := &MacroEnv{Sender: "email.example.com", Domain: "email.example.com",
		IP: netip.MustParseAddr("192.0.2.3")}
	// A sender without a local part defaults to postmaster.
	got, err := ExpandMacros("%{l}", env, false)
	if err != nil || got != "postmaster" {
		t.Errorf("%%{l} default = %q, %v", got, err)
	}
	if got, _ := ExpandMacros("%{o}", env, false); got != "email.example.com" {
		t.Errorf("%%{o} = %q", got)
	}
}

func TestExpandDomain(t *testing.T) {
	env := rfcEnv()
	got, err := ExpandDomain("", env)
	if err != nil || got != "email.example.com" {
		t.Errorf("empty spec = %q, %v", got, err)
	}
	got, err = ExpandDomain("%{d1}.suffix.example", env)
	if err != nil || got != "com.suffix.example" {
		t.Errorf("expanded spec = %q, %v", got, err)
	}
	// Trailing dots are trimmed.
	got, _ = ExpandDomain("literal.example.com.", env)
	if got != "literal.example.com" {
		t.Errorf("dot trim = %q", got)
	}
}

func TestExpandDomainTruncation(t *testing.T) {
	env := rfcEnv()
	long := strings.Repeat("aaaaaaaaa.", 40) + "example.com" // > 253 octets
	got, err := ExpandDomain(long, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 253 {
		t.Errorf("expanded domain is %d octets", len(got))
	}
	if !strings.HasSuffix(got, "example.com") {
		t.Errorf("truncation dropped the wrong side: %q", got)
	}
}

func TestMacroV4InV6(t *testing.T) {
	env := rfcEnv()
	env.IP = netip.MustParseAddr("::ffff:192.0.2.3")
	if got, _ := ExpandMacros("%{v}", env, false); got != "in-addr" {
		t.Errorf("%%{v} for v4-mapped = %q", got)
	}
	if got, _ := ExpandMacros("%{i}", env, false); got != "192.0.2.3" {
		t.Errorf("%%{i} for v4-mapped = %q", got)
	}
}
