package spf

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// MacroEnv carries the evaluation context consumed by SPF macro
// expansion (RFC 7208 §7.2).
type MacroEnv struct {
	// Sender is the full sender address ("user@domain"), from MAIL
	// FROM or synthesized as postmaster@helo.
	Sender string
	// Domain is the domain currently being evaluated.
	Domain string
	// IP is the connecting client address.
	IP netip.Addr
	// Helo is the HELO/EHLO domain.
	Helo string
	// Receiver is the validating host's name, for %{r}. Optional.
	Receiver string
	// Validated is the PTR-validated client name for %{p}. Optional;
	// "unknown" is substituted when empty, as the RFC recommends.
	Validated string
}

// senderLocal returns the local part of the sender, defaulting to
// "postmaster" per RFC 7208 §4.3.
func (e *MacroEnv) senderLocal() string {
	if i := strings.LastIndexByte(e.Sender, '@'); i > 0 {
		return e.Sender[:i]
	}
	return "postmaster"
}

// senderDomain returns the domain part of the sender.
func (e *MacroEnv) senderDomain() string {
	if i := strings.LastIndexByte(e.Sender, '@'); i >= 0 {
		return e.Sender[i+1:]
	}
	return e.Sender
}

// ExpandMacros expands the macro-string s in the given environment.
// exp selects explanation-string mode, which additionally permits the
// c, r, and t macros and the %{...} URL-escaping variants are applied.
func ExpandMacros(s string, env *MacroEnv, exp bool) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		if i+1 >= len(s) {
			return "", &SyntaxError{Term: s, Reason: "trailing %"}
		}
		i++
		switch s[i] {
		case '%':
			sb.WriteByte('%')
		case '_':
			sb.WriteByte(' ')
		case '-':
			sb.WriteString("%20")
		case '{':
			end := strings.IndexByte(s[i:], '}')
			if end < 0 {
				return "", &SyntaxError{Term: s, Reason: "unterminated macro"}
			}
			expanded, err := expandOne(s[i+1:i+end], env, exp)
			if err != nil {
				return "", err
			}
			sb.WriteString(expanded)
			i += end
		default:
			return "", &SyntaxError{Term: s, Reason: "invalid macro escape %" + string(s[i])}
		}
	}
	return sb.String(), nil
}

// expandOne expands the body of one %{...} macro.
func expandOne(body string, env *MacroEnv, exp bool) (string, error) {
	if body == "" {
		return "", &SyntaxError{Term: body, Reason: "empty macro"}
	}
	letter := body[0]
	rest := body[1:]

	urlEscape := letter >= 'A' && letter <= 'Z'
	if urlEscape {
		letter += 'a' - 'A'
	}

	var value string
	switch letter {
	case 's':
		value = env.Sender
	case 'l':
		value = env.senderLocal()
	case 'o':
		value = env.senderDomain()
	case 'd':
		value = env.Domain
	case 'i':
		value = macroAddr(env.IP)
	case 'p':
		if env.Validated != "" {
			value = env.Validated
		} else {
			value = "unknown"
		}
	case 'v':
		if env.IP.Is4() || env.IP.Is4In6() {
			value = "in-addr"
		} else {
			value = "ip6"
		}
	case 'h':
		value = env.Helo
	case 'c':
		if !exp {
			return "", &SyntaxError{Term: body, Reason: "c macro only valid in exp"}
		}
		value = env.IP.String()
	case 'r':
		if !exp {
			return "", &SyntaxError{Term: body, Reason: "r macro only valid in exp"}
		}
		value = env.Receiver
		if value == "" {
			value = "unknown"
		}
	case 't':
		if !exp {
			return "", &SyntaxError{Term: body, Reason: "t macro only valid in exp"}
		}
		value = "0" // deterministic: timestamps are injected by callers
	default:
		return "", &SyntaxError{Term: body, Reason: "unknown macro letter " + string(letter)}
	}

	// Parse transformers: optional digit count, optional 'r', optional
	// delimiter set.
	digits := 0
	for len(rest) > 0 && rest[0] >= '0' && rest[0] <= '9' {
		digits = digits*10 + int(rest[0]-'0')
		rest = rest[1:]
	}
	reverse := false
	if len(rest) > 0 && (rest[0] == 'r' || rest[0] == 'R') {
		reverse = true
		rest = rest[1:]
	}
	delims := rest
	if delims == "" {
		delims = "."
	}
	for _, d := range delims {
		if !strings.ContainsRune(".-+,/_=", d) {
			return "", &SyntaxError{Term: body, Reason: "invalid delimiter " + string(d)}
		}
	}

	parts := strings.FieldsFunc(value, func(r rune) bool {
		return strings.ContainsRune(delims, r)
	})
	if len(parts) == 0 {
		parts = []string{""}
	}
	if reverse {
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
	}
	if digits > 0 && digits < len(parts) {
		parts = parts[len(parts)-digits:]
	}
	out := strings.Join(parts, ".")
	if urlEscape {
		out = urlEscapeUnreserved(out)
	}
	return out, nil
}

// macroAddr renders an address for the %{i} macro: dotted quad for
// IPv4, dot-separated lowercase nibbles for IPv6 (RFC 7208 §7.3).
func macroAddr(ip netip.Addr) string {
	if ip.Is4() || ip.Is4In6() {
		return ip.Unmap().String()
	}
	raw := ip.As16()
	nibbles := make([]string, 0, 32)
	for _, b := range raw {
		nibbles = append(nibbles, strconv.FormatUint(uint64(b>>4), 16),
			strconv.FormatUint(uint64(b&0xF), 16))
	}
	return strings.Join(nibbles, ".")
}

// urlEscapeUnreserved percent-encodes everything outside the RFC 3986
// unreserved set.
func urlEscapeUnreserved(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~':
			sb.WriteByte(c)
		default:
			fmt.Fprintf(&sb, "%%%02X", c)
		}
	}
	return sb.String()
}

// ExpandDomain expands a domain-spec for mechanism evaluation,
// defaulting to the current domain when spec is empty, and truncating
// an over-long result to fewer than 253 octets by dropping leading
// labels, as RFC 7208 §7.3 requires.
func ExpandDomain(spec string, env *MacroEnv) (string, error) {
	if spec == "" {
		return env.Domain, nil
	}
	expanded, err := ExpandMacros(spec, env, false)
	if err != nil {
		return "", err
	}
	expanded = strings.TrimSuffix(expanded, ".")
	for len(expanded) > 253 {
		i := strings.IndexByte(expanded, '.')
		if i < 0 {
			break
		}
		expanded = expanded[i+1:]
	}
	return expanded, nil
}
