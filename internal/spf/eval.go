package spf

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"sendervalid/internal/trace"
)

// MXRecord is a mail exchanger returned by a Resolver.
type MXRecord struct {
	Preference uint16
	Host       string
}

// Resolver is the DNS interface SPF evaluation consumes.
//
// Contract: a lookup that completes but yields no records (NXDOMAIN or
// an empty answer) returns (nil, nil) — SPF counts it as a "void
// lookup". A non-nil error means a transient failure (SERVFAIL,
// timeout, unreachable server) and yields temperror.
type Resolver interface {
	// LookupTXT returns one string per TXT record, with each record's
	// character-strings concatenated.
	LookupTXT(ctx context.Context, name string) ([]string, error)
	// LookupA returns IPv4 addresses for name.
	LookupA(ctx context.Context, name string) ([]netip.Addr, error)
	// LookupAAAA returns IPv6 addresses for name.
	LookupAAAA(ctx context.Context, name string) ([]netip.Addr, error)
	// LookupMX returns the MX record set for name.
	LookupMX(ctx context.Context, name string) ([]MXRecord, error)
	// LookupPTR returns the names the address reverse-resolves to.
	LookupPTR(ctx context.Context, ip netip.Addr) ([]string, error)
}

// Default specification limits (RFC 7208 §4.6.4).
const (
	DefaultLookupLimit     = 10
	DefaultVoidLookupLimit = 2
	DefaultMXAddressLimit  = 10
	DefaultPTRLimit        = 10
)

// Options tunes evaluation. The zero value is a fully RFC 7208
// compliant validator. The violation knobs reproduce the
// non-compliant behaviours observed in the wild by the measurement
// study (paper §7); each is off by default.
type Options struct {
	// LookupLimit caps DNS-querying terms. 0 means the specified
	// default of 10; negative means unlimited (a violation).
	LookupLimit int
	// VoidLookupLimit caps lookups yielding no records. 0 means the
	// recommended default of 2; negative means unlimited (a violation).
	VoidLookupLimit int
	// MXAddressLimit caps address lookups per "mx" mechanism. 0 means
	// the specified default of 10; negative means unlimited (a
	// violation).
	MXAddressLimit int
	// Timeout bounds the whole evaluation. 0 means 20 seconds, the
	// specification's recommended minimum.
	Timeout time.Duration
	// IgnoreSyntaxErrors continues evaluation past malformed terms
	// instead of returning permerror (a violation).
	IgnoreSyntaxErrors bool
	// FollowMultipleRecords evaluates the first record when a domain
	// publishes several SPF records, instead of permerror (a
	// violation).
	FollowMultipleRecords bool
	// MXFallbackA issues an A/AAAA lookup for the mx target domain
	// when the MX lookup yields nothing, mirroring SMTP's implicit-MX
	// rule. RFC 7208 explicitly disallows this (a violation).
	MXFallbackA bool
	// Prefetch launches the DNS lookups implied by every mechanism of
	// a record concurrently as soon as the record is parsed, instead
	// of querying on demand. This is the "parallel" strategy §7.1 of
	// the paper distinguishes from the dominant serial strategy.
	Prefetch bool
	// Receiver is the validating host's name, used by the %{r} macro.
	Receiver string
}

func (o *Options) lookupLimit() int    { return defaulted(o.LookupLimit, DefaultLookupLimit) }
func (o *Options) voidLimit() int      { return defaulted(o.VoidLookupLimit, DefaultVoidLookupLimit) }
func (o *Options) mxAddressLimit() int { return defaulted(o.MXAddressLimit, DefaultMXAddressLimit) }
func (o *Options) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 20 * time.Second
}

func defaulted(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return int(^uint(0) >> 1) // effectively unlimited
	default:
		return v
	}
}

// Checker evaluates SPF for incoming connections.
type Checker struct {
	Resolver Resolver
	Options  Options
}

// Outcome is the result of one check_host() evaluation plus
// diagnostics useful for measurement.
type Outcome struct {
	Result Result
	// Explanation is the expanded exp= string, set only on Fail when
	// the policy supplies one.
	Explanation string
	// Lookups counts DNS-querying terms consumed.
	Lookups int
	// VoidLookups counts lookups that yielded no records.
	VoidLookups int
	// Err carries detail for temperror/permerror results.
	Err error
}

// state threads evaluation counters through recursion.
type state struct {
	lookups     int
	voidLookups int
	depth       int
	prefetchWG  sync.WaitGroup
}

// Hard safety ceilings that apply even to deliberately violating
// configurations (LookupLimit < 0 and friends): a real validator that
// ignores the RFC limits still exhausts some resource rather than
// recursing forever, and the self-including test policies (t18/t19)
// would otherwise be unbounded.
const (
	hardRecursionLimit = 48
	hardLookupLimit    = 2000
)

// limitError marks permerror results caused by exceeded limits.
type limitError struct{ what string }

func (e *limitError) Error() string { return "spf: " + e.what + " limit exceeded" }

// CheckHost evaluates the SPF policy of domain for a connection from
// ip with the given MAIL FROM sender ("user@domain"; pass
// "postmaster@"+helo to check the HELO identity) and HELO domain.
func (c *Checker) CheckHost(ctx context.Context, ip netip.Addr, domain, sender, helo string) *Outcome {
	ctx, cancel := context.WithTimeout(ctx, c.Options.timeout())
	defer cancel()
	ctx, sp := trace.Start(ctx, "spf.check")
	if sp != nil {
		sp.SetAttr("domain", domain)
	}

	st := &state{}
	out := &Outcome{}
	env := &MacroEnv{
		Sender:   sender,
		Domain:   domain,
		IP:       ip,
		Helo:     helo,
		Receiver: c.Options.Receiver,
	}
	result, rec, err := c.checkHost(ctx, st, env, domain)
	// Prefetch goroutines hold ctx (and through it the span); they
	// must be fully joined before the span can end and recycle.
	st.prefetchWG.Wait()
	out.Result = result
	out.Err = err
	out.Lookups = st.lookups
	out.VoidLookups = st.voidLookups
	if result == Fail && rec != nil && rec.Exp != "" {
		out.Explanation = c.explanation(ctx, st, env, rec.Exp)
	}
	if sp != nil {
		sp.SetAttr("result", string(result))
		sp.SetInt("lookups", int64(st.lookups))
		sp.SetInt("void_lookups", int64(st.voidLookups))
		sp.SetError(err)
	}
	sp.End()
	return out
}

// mechSpanName maps a lookup-consuming mechanism kind to its span
// name — constants, so starting the span never builds a string.
func mechSpanName(k MechanismKind) string {
	switch k {
	case MechInclude:
		return "spf.mech.include"
	case MechA:
		return "spf.mech.a"
	case MechMX:
		return "spf.mech.mx"
	case MechPTR:
		return "spf.mech.ptr"
	case MechExists:
		return "spf.mech.exists"
	}
	return "spf.mech"
}

// checkHost is the recursive core. It returns the record evaluated at
// this level so the top level can process its exp= modifier.
func (c *Checker) checkHost(ctx context.Context, st *state, env *MacroEnv, domain string) (Result, *Record, error) {
	if err := ctx.Err(); err != nil {
		return TempError, nil, err
	}
	st.depth++
	defer func() { st.depth-- }()
	if st.depth > hardRecursionLimit || st.lookups > hardLookupLimit {
		return PermError, nil, &limitError{what: "hard evaluation"}
	}
	if domain == "" || strings.Count(strings.Trim(domain, "."), ".") < 1 {
		return None, nil, fmt.Errorf("spf: domain %q is not a multi-label FQDN", domain)
	}

	txts, err := c.Resolver.LookupTXT(ctx, domain)
	if err != nil {
		return TempError, nil, fmt.Errorf("spf: retrieving policy for %s: %w", domain, err)
	}
	var policies []string
	for _, txt := range txts {
		if IsSPF(txt) {
			policies = append(policies, txt)
		}
	}
	switch {
	case len(policies) == 0:
		return None, nil, nil
	case len(policies) > 1 && !c.Options.FollowMultipleRecords:
		return PermError, nil, fmt.Errorf("spf: %d SPF records published for %s", len(policies), domain)
	}

	rec, parseErr := Parse(policies[0])
	if parseErr != nil && !c.Options.IgnoreSyntaxErrors {
		return PermError, rec, parseErr
	}

	if c.Options.Prefetch {
		c.prefetch(ctx, st, env, rec, domain)
	}

	prevDomain := env.Domain
	env.Domain = domain
	defer func() { env.Domain = prevDomain }()

	for _, m := range rec.Mechanisms {
		needsLookup := m.Kind.RequiresLookup()
		if needsLookup {
			st.lookups++
			if st.lookups > c.Options.lookupLimit() {
				return PermError, rec, &limitError{what: "DNS lookup"}
			}
		}
		mctx, msp := ctx, (*trace.Span)(nil)
		var before int
		if needsLookup {
			before = st.lookups
			mctx, msp = trace.Start(ctx, mechSpanName(m.Kind))
		}
		match, result, err := c.evalMechanism(mctx, st, env, m, domain)
		if msp != nil {
			// The mechanism's own counted lookup plus whatever its
			// recursion consumed.
			msp.SetInt("lookups", int64(st.lookups-before+1))
			msp.SetError(err)
			msp.End()
		}
		if err != nil || result != "" {
			return result, rec, err
		}
		if match {
			return m.Qualifier.Result(), rec, nil
		}
	}

	if rec.Redirect != "" {
		st.lookups++
		if st.lookups > c.Options.lookupLimit() {
			return PermError, rec, &limitError{what: "DNS lookup"}
		}
		target, err := ExpandDomain(rec.Redirect, env)
		if err != nil {
			return PermError, rec, err
		}
		rctx, rsp := trace.Start(ctx, "spf.redirect")
		before := st.lookups
		if rsp != nil {
			rsp.SetAttr("target", target)
		}
		result, sub, err := c.checkHost(rctx, st, env, target)
		if rsp != nil {
			rsp.SetInt("lookups", int64(st.lookups-before+1))
			rsp.SetError(err)
			rsp.End()
		}
		if result == None {
			return PermError, rec, fmt.Errorf("spf: redirect target %s has no SPF record", target)
		}
		// The redirect target's exp= applies (RFC 7208 §6.1).
		return result, sub, err
	}
	return Neutral, rec, nil
}

// evalMechanism evaluates one mechanism. It returns match=true when
// the mechanism matches, or a non-empty result to short-circuit the
// whole evaluation (include recursion errors, limit violations).
func (c *Checker) evalMechanism(ctx context.Context, st *state, env *MacroEnv, m Mechanism, domain string) (bool, Result, error) {
	switch m.Kind {
	case MechAll:
		return true, "", nil

	case MechIP4, MechIP6:
		return matchIPLiteral(m, env.IP)

	case MechInclude:
		target, err := ExpandDomain(m.Domain, env)
		if err != nil {
			return false, PermError, err
		}
		result, _, err := c.checkHost(ctx, st, env, target)
		switch result {
		case Pass:
			return true, "", nil
		case Fail, SoftFail, Neutral:
			return false, "", nil
		case TempError:
			return false, TempError, err
		case None:
			return false, PermError, fmt.Errorf("spf: include target %s has no SPF record", target)
		default:
			return false, PermError, err
		}

	case MechA:
		target, err := ExpandDomain(m.Domain, env)
		if err != nil {
			return false, PermError, err
		}
		addrs, err := c.lookupAddrs(ctx, st, target, env.IP)
		if err != nil {
			return false, TempError, err
		}
		if verr := c.checkVoid(st, len(addrs)); verr != nil {
			return false, PermError, verr
		}
		return matchAddrs(addrs, env.IP, m), "", nil

	case MechMX:
		target, err := ExpandDomain(m.Domain, env)
		if err != nil {
			return false, PermError, err
		}
		return c.evalMX(ctx, st, env, m, target)

	case MechPTR:
		target, err := ExpandDomain(m.Domain, env)
		if err != nil {
			return false, PermError, err
		}
		return c.evalPTR(ctx, st, env, target)

	case MechExists:
		target, err := ExpandDomain(m.Domain, env)
		if err != nil {
			return false, PermError, err
		}
		// exists always queries A, regardless of connection family.
		addrs, err := c.Resolver.LookupA(ctx, target)
		if err != nil {
			return false, TempError, err
		}
		if verr := c.checkVoid(st, len(addrs)); verr != nil {
			return false, PermError, verr
		}
		return len(addrs) > 0, "", nil
	}
	return false, PermError, &SyntaxError{Term: string(m.Kind), Reason: "unknown mechanism"}
}

func (c *Checker) evalMX(ctx context.Context, st *state, env *MacroEnv, m Mechanism, target string) (bool, Result, error) {
	mxs, err := c.Resolver.LookupMX(ctx, target)
	if err != nil {
		return false, TempError, err
	}
	if verr := c.checkVoid(st, len(mxs)); verr != nil {
		return false, PermError, verr
	}
	if len(mxs) == 0 {
		if c.Options.MXFallbackA {
			// Violation: RFC 7208 §5.4 forbids the implicit-MX A
			// fallback during SPF evaluation. The lookup is issued
			// (observable at the authoritative server) but cannot
			// authorize the client.
			_, _ = c.lookupAddrs(ctx, st, target, env.IP)
		}
		return false, "", nil
	}
	limit := c.Options.mxAddressLimit()
	for i, mx := range mxs {
		if i >= limit {
			return false, PermError, &limitError{what: "MX address lookup"}
		}
		addrs, err := c.lookupAddrs(ctx, st, mx.Host, env.IP)
		if err != nil {
			return false, TempError, err
		}
		if verr := c.checkVoid(st, len(addrs)); verr != nil {
			return false, PermError, verr
		}
		if matchAddrs(addrs, env.IP, m) {
			return true, "", nil
		}
	}
	return false, "", nil
}

func (c *Checker) evalPTR(ctx context.Context, st *state, env *MacroEnv, target string) (bool, Result, error) {
	names, err := c.Resolver.LookupPTR(ctx, env.IP)
	if err != nil {
		// RFC 7208 §5.5: on PTR lookup error the mechanism simply does
		// not match.
		return false, "", nil
	}
	if verr := c.checkVoid(st, len(names)); verr != nil {
		return false, PermError, verr
	}
	if len(names) > DefaultPTRLimit {
		names = names[:DefaultPTRLimit]
	}
	validated := ""
	for _, name := range names {
		addrs, err := c.lookupAddrs(ctx, st, name, env.IP)
		if err != nil {
			continue
		}
		for _, a := range addrs {
			if a == env.IP {
				validated = name
				if isSubdomainFold(name, target) {
					env.Validated = name
					return true, "", nil
				}
			}
		}
	}
	if validated != "" {
		env.Validated = validated
	}
	return false, "", nil
}

// lookupAddrs resolves name in the address family of the connecting
// client: A for IPv4, AAAA for IPv6.
func (c *Checker) lookupAddrs(ctx context.Context, st *state, name string, ip netip.Addr) ([]netip.Addr, error) {
	if ip.Is4() || ip.Is4In6() {
		return c.Resolver.LookupA(ctx, name)
	}
	return c.Resolver.LookupAAAA(ctx, name)
}

// checkVoid counts a void lookup when n records were returned and
// enforces the void-lookup limit.
func (c *Checker) checkVoid(st *state, n int) error {
	if n > 0 {
		return nil
	}
	st.voidLookups++
	if st.voidLookups > c.Options.voidLimit() {
		return &limitError{what: "void lookup"}
	}
	return nil
}

// matchIPLiteral matches the client address against an ip4/ip6
// literal, including CIDR prefixes.
func matchIPLiteral(m Mechanism, ip netip.Addr) (bool, Result, error) {
	client := ip.Unmap()
	arg := m.IP
	if !strings.ContainsRune(arg, '/') {
		addr, err := netip.ParseAddr(arg)
		if err != nil {
			return false, PermError, &SyntaxError{Term: m.String(), Reason: "invalid address literal"}
		}
		if m.Kind == MechIP4 && !addr.Is4() || m.Kind == MechIP6 && !addr.Is6() {
			return false, PermError, &SyntaxError{Term: m.String(), Reason: "address family mismatch"}
		}
		return client == addr.Unmap(), "", nil
	}
	prefix, err := netip.ParsePrefix(arg)
	if err != nil {
		return false, PermError, &SyntaxError{Term: m.String(), Reason: "invalid CIDR literal"}
	}
	if m.Kind == MechIP4 && !prefix.Addr().Is4() || m.Kind == MechIP6 && !prefix.Addr().Is6() {
		return false, PermError, &SyntaxError{Term: m.String(), Reason: "address family mismatch"}
	}
	return prefix.Contains(client), "", nil
}

// matchAddrs matches the client address against a resolved set, with
// the mechanism's dual-CIDR prefixes applied.
func matchAddrs(addrs []netip.Addr, ip netip.Addr, m Mechanism) bool {
	client := ip.Unmap()
	for _, a := range addrs {
		a = a.Unmap()
		if client.Is4() != a.Is4() {
			continue
		}
		bits := -1
		if client.Is4() && m.Prefix4 >= 0 {
			bits = m.Prefix4
		} else if !client.Is4() && m.Prefix6 >= 0 {
			bits = m.Prefix6
		}
		if bits < 0 {
			if a == client {
				return true
			}
			continue
		}
		prefix, err := a.Prefix(bits)
		if err != nil {
			continue
		}
		if prefix.Contains(client) {
			return true
		}
	}
	return false
}

// isSubdomainFold reports whether child equals or is a subdomain of
// parent, case-insensitively.
func isSubdomainFold(child, parent string) bool {
	child = strings.ToLower(strings.TrimSuffix(child, "."))
	parent = strings.ToLower(strings.TrimSuffix(parent, "."))
	return child == parent || strings.HasSuffix(child, "."+parent)
}

// explanation retrieves and expands the exp= explanation string.
func (c *Checker) explanation(ctx context.Context, st *state, env *MacroEnv, spec string) string {
	target, err := ExpandDomain(spec, env)
	if err != nil {
		return ""
	}
	txts, err := c.Resolver.LookupTXT(ctx, target)
	if err != nil || len(txts) != 1 {
		return ""
	}
	expanded, err := ExpandMacros(txts[0], env, true)
	if err != nil {
		return ""
	}
	return expanded
}

// prefetch concurrently issues the DNS lookups implied by every
// mechanism of rec, emulating a parallel-lookup validator. Results are
// discarded; a caching resolver will serve the subsequent serial
// evaluation from cache, and the authoritative server observes the
// parallel query pattern.
func (c *Checker) prefetch(ctx context.Context, st *state, env *MacroEnv, rec *Record, domain string) {
	prefetchEnv := *env
	prefetchEnv.Domain = domain
	for _, m := range rec.Mechanisms {
		m := m
		var run func()
		switch m.Kind {
		case MechInclude:
			run = func() {
				if target, err := ExpandDomain(m.Domain, &prefetchEnv); err == nil {
					_, _ = c.Resolver.LookupTXT(ctx, target)
				}
			}
		case MechA:
			run = func() {
				if target, err := ExpandDomain(m.Domain, &prefetchEnv); err == nil {
					_, _ = c.lookupAddrs(ctx, st, target, prefetchEnv.IP)
				}
			}
		case MechMX:
			run = func() {
				if target, err := ExpandDomain(m.Domain, &prefetchEnv); err == nil {
					_, _ = c.Resolver.LookupMX(ctx, target)
				}
			}
		case MechExists:
			run = func() {
				if target, err := ExpandDomain(m.Domain, &prefetchEnv); err == nil {
					_, _ = c.Resolver.LookupA(ctx, target)
				}
			}
		default:
			continue
		}
		st.prefetchWG.Add(1)
		go func() {
			defer st.prefetchWG.Done()
			run()
		}()
	}
}
