package spf

import (
	"fmt"
	"strconv"
	"strings"
)

// MechanismKind identifies an SPF mechanism (RFC 7208 §5).
type MechanismKind string

// The eight mechanisms.
const (
	MechAll     MechanismKind = "all"
	MechInclude MechanismKind = "include"
	MechA       MechanismKind = "a"
	MechMX      MechanismKind = "mx"
	MechPTR     MechanismKind = "ptr"
	MechIP4     MechanismKind = "ip4"
	MechIP6     MechanismKind = "ip6"
	MechExists  MechanismKind = "exists"
)

// RequiresLookup reports whether evaluating the mechanism consumes one
// of the 10 permitted DNS-querying terms (RFC 7208 §4.6.4).
func (k MechanismKind) RequiresLookup() bool {
	switch k {
	case MechInclude, MechA, MechMX, MechPTR, MechExists:
		return true
	}
	return false
}

// Mechanism is one directive of an SPF record.
type Mechanism struct {
	Qualifier Qualifier
	Kind      MechanismKind
	// Domain is the domain-spec argument, possibly containing macros.
	// Empty means the current domain (for a, mx, ptr).
	Domain string
	// IP is the literal address argument of ip4/ip6, in string form to
	// defer parsing until evaluation.
	IP string
	// Prefix4 and Prefix6 are CIDR prefix lengths; -1 means absent.
	Prefix4 int
	Prefix6 int
}

// String renders the mechanism in record syntax.
func (m Mechanism) String() string {
	var sb strings.Builder
	if m.Qualifier != QPass {
		sb.WriteByte(byte(m.Qualifier))
	}
	sb.WriteString(string(m.Kind))
	switch m.Kind {
	case MechIP4, MechIP6:
		sb.WriteByte(':')
		sb.WriteString(m.IP)
	case MechInclude, MechExists:
		sb.WriteByte(':')
		sb.WriteString(m.Domain)
	case MechA, MechMX, MechPTR:
		if m.Domain != "" {
			sb.WriteByte(':')
			sb.WriteString(m.Domain)
		}
	}
	if m.Prefix4 >= 0 && m.Kind != MechIP4 && m.Kind != MechIP6 {
		fmt.Fprintf(&sb, "/%d", m.Prefix4)
	}
	if m.Prefix6 >= 0 && m.Kind != MechIP4 && m.Kind != MechIP6 {
		fmt.Fprintf(&sb, "//%d", m.Prefix6)
	}
	return sb.String()
}

// Record is a parsed SPF record.
type Record struct {
	Mechanisms []Mechanism
	// Redirect is the redirect= modifier target, or empty.
	Redirect string
	// Exp is the exp= modifier target, or empty.
	Exp string
	// UnknownModifiers preserves modifiers this package does not
	// interpret, which RFC 7208 requires to be ignored.
	UnknownModifiers []string
}

// SyntaxError describes a malformed term in an SPF record. Per
// RFC 7208 §4.6, any syntax error anywhere in the record must yield
// permerror — though the measurement study found validators that do
// not comply (§7.3 of the paper).
type SyntaxError struct {
	Term   string
	Reason string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("spf: syntax error in term %q: %s", e.Term, e.Reason)
}

// Version is the version tag that introduces every SPF record.
const Version = "v=spf1"

// IsSPF reports whether a TXT payload is an SPF record (RFC 7208
// §4.5): the version tag followed by a space or end of string.
func IsSPF(txt string) bool {
	if !strings.HasPrefix(txt, Version) {
		return false
	}
	return len(txt) == len(Version) || txt[len(Version)] == ' '
}

// Parse parses an SPF record. The returned record may be partially
// populated when err is non-nil, which allows non-compliant evaluation
// modes to keep going past syntax errors; err is a *SyntaxError (the
// first one encountered) in that case.
func Parse(txt string) (*Record, error) {
	if !IsSPF(txt) {
		return nil, &SyntaxError{Term: txt, Reason: "missing v=spf1 version tag"}
	}
	rec := &Record{}
	var firstErr error
	for _, term := range strings.Fields(txt[len(Version):]) {
		if err := rec.parseTerm(term); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return rec, firstErr
}

func (rec *Record) parseTerm(term string) error {
	if name, value, ok := splitModifier(term); ok {
		switch strings.ToLower(name) {
		case "redirect":
			if value == "" {
				return &SyntaxError{Term: term, Reason: "redirect with empty target"}
			}
			rec.Redirect = value
		case "exp":
			if value == "" {
				return &SyntaxError{Term: term, Reason: "exp with empty target"}
			}
			rec.Exp = value
		default:
			rec.UnknownModifiers = append(rec.UnknownModifiers, term)
		}
		return nil
	}

	m := Mechanism{Qualifier: QPass, Prefix4: -1, Prefix6: -1}
	rest := term
	if len(rest) > 0 {
		switch Qualifier(rest[0]) {
		case QPass, QFail, QSoftFail, QNeutral:
			m.Qualifier = Qualifier(rest[0])
			rest = rest[1:]
		}
	}

	name, arg, hasArg := strings.Cut(rest, ":")
	// Dual-CIDR notation can appear without a colon argument, e.g.
	// "a/24" or "mx/24//64".
	if !hasArg {
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[:i]
		}
	}
	kind := MechanismKind(strings.ToLower(name))
	m.Kind = kind

	switch kind {
	case MechIP4, MechIP6:
		// The whole argument, slash included, is an address literal.
		if !hasArg || arg == "" {
			return &SyntaxError{Term: term, Reason: string(kind) + " requires an address"}
		}
		m.IP = arg
		rec.Mechanisms = append(rec.Mechanisms, m)
		return nil
	}

	// For the remaining mechanisms a trailing /n[//m] is dual-CIDR.
	if !hasArg {
		if cidr := rest[len(name):]; cidr != "" {
			if err := m.parseCIDR(cidr, term); err != nil {
				return err
			}
		}
	} else if i := strings.IndexByte(arg, '/'); i >= 0 {
		cidr := arg[i:]
		arg = arg[:i]
		if err := m.parseCIDR(cidr, term); err != nil {
			return err
		}
	}

	switch kind {
	case MechAll:
		if hasArg {
			return &SyntaxError{Term: term, Reason: "all takes no argument"}
		}
	case MechInclude, MechExists:
		if !hasArg || arg == "" {
			return &SyntaxError{Term: term, Reason: string(kind) + " requires a domain"}
		}
		m.Domain = arg
	case MechA, MechMX, MechPTR:
		m.Domain = arg
	default:
		return &SyntaxError{Term: term, Reason: "unknown mechanism"}
	}
	rec.Mechanisms = append(rec.Mechanisms, m)
	return nil
}

// parseCIDR parses the dual-CIDR suffix "/n", "//n", or "/n//m".
func (m *Mechanism) parseCIDR(s, term string) error {
	if rest, ok := strings.CutPrefix(s, "//"); ok {
		return m.parsePrefix6(rest, term)
	}
	s = strings.TrimPrefix(s, "/")
	v4, v6, dual := strings.Cut(s, "//")
	n, err := strconv.Atoi(v4)
	if err != nil || n < 0 || n > 32 {
		return &SyntaxError{Term: term, Reason: "invalid IPv4 prefix length"}
	}
	m.Prefix4 = n
	if dual {
		return m.parsePrefix6(v6, term)
	}
	return nil
}

func (m *Mechanism) parsePrefix6(s, term string) error {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 128 {
		return &SyntaxError{Term: term, Reason: "invalid IPv6 prefix length"}
	}
	m.Prefix6 = n
	return nil
}

// splitModifier reports whether term is a modifier (name=value with a
// legal modifier name) and returns its parts.
func splitModifier(term string) (name, value string, ok bool) {
	i := strings.IndexByte(term, '=')
	if i <= 0 {
		return "", "", false
	}
	name = term[:i]
	for _, c := range name {
		isAlnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if !isAlnum && c != '-' && c != '_' && c != '.' {
			return "", "", false
		}
	}
	return name, term[i+1:], true
}

// String renders the record in canonical syntax.
func (rec *Record) String() string {
	parts := []string{Version}
	for _, m := range rec.Mechanisms {
		parts = append(parts, m.String())
	}
	if rec.Redirect != "" {
		parts = append(parts, "redirect="+rec.Redirect)
	}
	if rec.Exp != "" {
		parts = append(parts, "exp="+rec.Exp)
	}
	parts = append(parts, rec.UnknownModifiers...)
	return strings.Join(parts, " ")
}
