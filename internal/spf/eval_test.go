package spf

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// mockResolver is an in-memory Resolver with a query log.
type mockResolver struct {
	mu      sync.Mutex
	txt     map[string][]string
	a       map[string][]netip.Addr
	aaaa    map[string][]netip.Addr
	mx      map[string][]MXRecord
	ptr     map[string][]string
	failing map[string]error
	queries []string
}

func newMockResolver() *mockResolver {
	return &mockResolver{
		txt:     make(map[string][]string),
		a:       make(map[string][]netip.Addr),
		aaaa:    make(map[string][]netip.Addr),
		mx:      make(map[string][]MXRecord),
		ptr:     make(map[string][]string),
		failing: make(map[string]error),
	}
}

func (r *mockResolver) log(kind, name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries = append(r.queries, kind+" "+strings.ToLower(strings.TrimSuffix(name, ".")))
	return r.failing[strings.ToLower(strings.TrimSuffix(name, "."))]
}

func (r *mockResolver) key(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

func (r *mockResolver) LookupTXT(ctx context.Context, name string) ([]string, error) {
	if err := r.log("TXT", name); err != nil {
		return nil, err
	}
	return r.txt[r.key(name)], nil
}

func (r *mockResolver) LookupA(ctx context.Context, name string) ([]netip.Addr, error) {
	if err := r.log("A", name); err != nil {
		return nil, err
	}
	return r.a[r.key(name)], nil
}

func (r *mockResolver) LookupAAAA(ctx context.Context, name string) ([]netip.Addr, error) {
	if err := r.log("AAAA", name); err != nil {
		return nil, err
	}
	return r.aaaa[r.key(name)], nil
}

func (r *mockResolver) LookupMX(ctx context.Context, name string) ([]MXRecord, error) {
	if err := r.log("MX", name); err != nil {
		return nil, err
	}
	return r.mx[r.key(name)], nil
}

func (r *mockResolver) LookupPTR(ctx context.Context, ip netip.Addr) ([]string, error) {
	if err := r.log("PTR", ip.String()); err != nil {
		return nil, err
	}
	return r.ptr[ip.String()], nil
}

func (r *mockResolver) queryLog() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.queries...)
}

func (r *mockResolver) countQueries(prefix string) int {
	n := 0
	for _, q := range r.queryLog() {
		if strings.HasPrefix(q, prefix) {
			n++
		}
	}
	return n
}

var (
	ip4Client = netip.MustParseAddr("192.0.2.1")
	ip6Client = netip.MustParseAddr("2001:db8::1")
)

func check(t *testing.T, r Resolver, opts Options, ip netip.Addr, domain string) *Outcome {
	t.Helper()
	c := &Checker{Resolver: r, Options: opts}
	return c.CheckHost(context.Background(), ip, domain,
		"sender@"+domain, "helo.example.net")
}

func TestCheckHostBasicResults(t *testing.T) {
	r := newMockResolver()
	r.txt["pass.example.com"] = []string{"v=spf1 ip4:192.0.2.1 -all"}
	r.txt["fail.example.com"] = []string{"v=spf1 ip4:198.51.100.1 -all"}
	r.txt["softfail.example.com"] = []string{"v=spf1 ~all"}
	r.txt["neutral.example.com"] = []string{"v=spf1 ?all"}
	r.txt["empty.example.com"] = []string{"unrelated txt record"}
	r.txt["defaultneutral.example.com"] = []string{"v=spf1 ip4:198.51.100.1"}

	cases := []struct {
		domain string
		want   Result
	}{
		{"pass.example.com", Pass},
		{"fail.example.com", Fail},
		{"softfail.example.com", SoftFail},
		{"neutral.example.com", Neutral},
		{"empty.example.com", None},
		{"nonexistent.example.com", None},
		{"defaultneutral.example.com", Neutral}, // no match, no redirect
	}
	for _, c := range cases {
		out := check(t, r, Options{}, ip4Client, c.domain)
		if out.Result != c.want {
			t.Errorf("CheckHost(%s) = %s (err=%v), want %s", c.domain, out.Result, out.Err, c.want)
		}
	}
}

func TestCheckHostNonFQDN(t *testing.T) {
	r := newMockResolver()
	out := check(t, r, Options{}, ip4Client, "localhost")
	if out.Result != None {
		t.Errorf("single-label domain: %s", out.Result)
	}
	if len(r.queryLog()) != 0 {
		t.Error("single-label domain still triggered DNS")
	}
}

func TestCheckHostAMechanism(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 a:mail.example.com -all"}
	r.a["mail.example.com"] = []netip.Addr{netip.MustParseAddr("192.0.2.1")}
	r.aaaa["mail.example.com"] = []netip.Addr{ip6Client}

	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("IPv4 a match: %s (%v)", out.Result, out.Err)
	}
	if out := check(t, r, Options{}, ip6Client, "example.com"); out.Result != Pass {
		t.Errorf("IPv6 a match: %s (%v)", out.Result, out.Err)
	}
	if out := check(t, r, Options{}, netip.MustParseAddr("203.0.113.9"), "example.com"); out.Result != Fail {
		t.Errorf("a non-match: %s", out.Result)
	}
}

func TestCheckHostSelfReferentialA(t *testing.T) {
	// "a" with no argument refers to the current domain.
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 a -all"}
	r.a["example.com"] = []netip.Addr{ip4Client}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("bare a: %s (%v)", out.Result, out.Err)
	}
}

func TestCheckHostACIDR(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 a:net.example.com/24 -all"}
	r.a["net.example.com"] = []netip.Addr{netip.MustParseAddr("192.0.2.200")}
	// 192.0.2.1 is inside 192.0.2.200/24.
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("a/24 match: %s (%v)", out.Result, out.Err)
	}
	if out := check(t, r, Options{}, netip.MustParseAddr("192.0.3.1"), "example.com"); out.Result != Fail {
		t.Errorf("a/24 non-match: %s", out.Result)
	}
}

func TestCheckHostMX(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 mx -all"}
	r.mx["example.com"] = []MXRecord{{Preference: 10, Host: "mx1.example.com"},
		{Preference: 20, Host: "mx2.example.com"}}
	r.a["mx1.example.com"] = []netip.Addr{netip.MustParseAddr("203.0.113.1")}
	r.a["mx2.example.com"] = []netip.Addr{ip4Client}

	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("mx match: %s (%v)", out.Result, out.Err)
	}
}

func TestCheckHostInclude(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 include:other.example.net -all"}
	r.txt["other.example.net"] = []string{"v=spf1 ip4:192.0.2.1 -all"}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("include pass: %s (%v)", out.Result, out.Err)
	}
	// Fail inside an include means "no match", not fail.
	if out := check(t, r, Options{}, netip.MustParseAddr("203.0.113.9"), "example.com"); out.Result != Fail {
		t.Errorf("include fail bubbles as overall -all fail: %s", out.Result)
	}
	// Include of a domain with no SPF record is permerror.
	r.txt["example.com"] = []string{"v=spf1 include:nospf.example.net -all"}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != PermError {
		t.Errorf("include none: %s", out.Result)
	}
}

func TestCheckHostRedirect(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 redirect=_spf.example.com"}
	r.txt["_spf.example.com"] = []string{"v=spf1 ip4:192.0.2.1 -all"}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("redirect pass: %s (%v)", out.Result, out.Err)
	}
	if out := check(t, r, Options{}, netip.MustParseAddr("203.0.113.9"), "example.com"); out.Result != Fail {
		t.Errorf("redirect fail: %s", out.Result)
	}
	// Redirect to a domain without SPF is permerror.
	r.txt["example.com"] = []string{"v=spf1 redirect=nospf.example.com"}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != PermError {
		t.Errorf("redirect none: %s", out.Result)
	}
	// Redirect is ignored when a mechanism matched.
	r.txt["example.com"] = []string{"v=spf1 ip4:192.0.2.1 redirect=nospf.example.com"}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("matched mechanism with redirect: %s", out.Result)
	}
}

func TestCheckHostExists(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 exists:%{ir}.sender.example.net -all"}
	r.a["1.2.0.192.sender.example.net"] = []netip.Addr{netip.MustParseAddr("127.0.0.2")}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("exists with macro: %s (%v)", out.Result, out.Err)
	}
	// exists always queries A, even for an IPv6 client.
	r2 := newMockResolver()
	r2.txt["example.com"] = []string{"v=spf1 exists:static.example.net ?all"}
	out := check(t, r2, Options{}, ip6Client, "example.com")
	if out.Result != Neutral {
		t.Errorf("exists void: %s", out.Result)
	}
	if r2.countQueries("A static.example.net") != 1 || r2.countQueries("AAAA") != 0 {
		t.Errorf("exists issued wrong queries: %v", r2.queryLog())
	}
}

func TestCheckHostPTR(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 ptr -all"}
	r.ptr[ip4Client.String()] = []string{"mail.example.com"}
	r.a["mail.example.com"] = []netip.Addr{ip4Client}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("ptr match: %s (%v)", out.Result, out.Err)
	}
	// PTR name outside the target domain must not match.
	r.ptr[ip4Client.String()] = []string{"mail.elsewhere.net"}
	r.a["mail.elsewhere.net"] = []netip.Addr{ip4Client}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Fail {
		t.Errorf("ptr non-match: %s", out.Result)
	}
}

func TestCheckHostIPLiterals(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 ip4:192.0.2.0/24 ip6:2001:db8::/32 -all"}
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Errorf("ip4 cidr: %s", out.Result)
	}
	if out := check(t, r, Options{}, ip6Client, "example.com"); out.Result != Pass {
		t.Errorf("ip6 cidr: %s", out.Result)
	}
	if out := check(t, r, Options{}, netip.MustParseAddr("198.51.100.1"), "example.com"); out.Result != Fail {
		t.Errorf("outside cidr: %s", out.Result)
	}
}

func TestCheckHostTempError(t *testing.T) {
	r := newMockResolver()
	r.failing["broken.example.com"] = errors.New("SERVFAIL")
	out := check(t, r, Options{}, ip4Client, "broken.example.com")
	if out.Result != TempError {
		t.Errorf("temp failure: %s", out.Result)
	}
	if out.Err == nil {
		t.Error("temperror without detail")
	}
}

func TestCheckHostMultipleRecords(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{
		"v=spf1 a:one.example.com ?all",
		"v=spf1 a:two.example.com ?all",
	}
	// Compliant: permerror, no further lookups (paper §7.3: 77% of MTAs).
	out := check(t, r, Options{}, ip4Client, "example.com")
	if out.Result != PermError {
		t.Errorf("multiple records: %s", out.Result)
	}
	if r.countQueries("A ") != 0 {
		t.Errorf("compliant validator still resolved mechanisms: %v", r.queryLog())
	}
	// Violating: follow the first record (paper §7.3: 23% of MTAs).
	r2 := newMockResolver()
	r2.txt["example.com"] = r.txt["example.com"]
	r2.a["one.example.com"] = []netip.Addr{ip4Client}
	out = check(t, r2, Options{FollowMultipleRecords: true}, ip4Client, "example.com")
	if out.Result != Pass {
		t.Errorf("follow-first mode: %s (%v)", out.Result, out.Err)
	}
	if r2.countQueries("A two.example.com") != 0 {
		t.Error("follow-first mode evaluated both records")
	}
}

func TestCheckHostSyntaxErrorModes(t *testing.T) {
	// The paper's §7.3 syntax test: "ipv4" instead of "ip4".
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 ipv4:198.51.100.1 a:right.example.com -all"}
	out := check(t, r, Options{}, ip4Client, "example.com")
	if out.Result != PermError {
		t.Errorf("compliant on syntax error: %s", out.Result)
	}
	if r.countQueries("A right.example.com") != 0 {
		t.Error("compliant validator looked past the syntax error")
	}

	r2 := newMockResolver()
	r2.txt["example.com"] = r.txt["example.com"]
	r2.a["right.example.com"] = []netip.Addr{ip4Client}
	out = check(t, r2, Options{IgnoreSyntaxErrors: true}, ip4Client, "example.com")
	if out.Result != Pass {
		t.Errorf("tolerant on syntax error: %s (%v)", out.Result, out.Err)
	}
	if r2.countQueries("A right.example.com") != 1 {
		t.Error("tolerant validator did not continue past the error")
	}
}

// deepIncludePolicy installs a chain of n include levels under base
// and returns the top-level domain.
func deepIncludePolicy(r *mockResolver, base string, n int) string {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("l%d.%s", i, base)
		next := fmt.Sprintf("l%d.%s", i+1, base)
		r.txt[name] = []string{"v=spf1 include:" + next + " ?all"}
	}
	r.txt[fmt.Sprintf("l%d.%s", n, base)] = []string{"v=spf1 ?all"}
	return "l0." + base
}

func TestCheckHostLookupLimit(t *testing.T) {
	r := newMockResolver()
	top := deepIncludePolicy(r, "example.com", 15)
	out := check(t, r, Options{}, ip4Client, top)
	if out.Result != PermError {
		t.Errorf("15-deep include chain: %s", out.Result)
	}
	if out.Lookups != DefaultLookupLimit+1 {
		t.Errorf("lookups consumed: %d, want %d", out.Lookups, DefaultLookupLimit+1)
	}
	// TXT queries: top + 10 includes before the limit trips.
	if got := r.countQueries("TXT "); got != 11 {
		t.Errorf("TXT queries: %d, want 11", got)
	}

	// A violating validator walks the whole chain.
	r2 := newMockResolver()
	top = deepIncludePolicy(r2, "example.com", 15)
	out = check(t, r2, Options{LookupLimit: -1}, ip4Client, top)
	if out.Result != Neutral {
		t.Errorf("unlimited validator: %s (%v)", out.Result, out.Err)
	}
	if got := r2.countQueries("TXT "); got != 16 {
		t.Errorf("unlimited TXT queries: %d, want 16", got)
	}
}

func TestCheckHostVoidLookupLimit(t *testing.T) {
	// The paper's void test policy: five "a" mechanisms, none resolving.
	policy := "v=spf1 a:v1.example.com a:v2.example.com a:v3.example.com a:v4.example.com a:v5.example.com ?all"
	r := newMockResolver()
	r.txt["example.com"] = []string{policy}
	out := check(t, r, Options{}, ip4Client, "example.com")
	if out.Result != PermError {
		t.Errorf("compliant void handling: %s", out.Result)
	}
	if got := r.countQueries("A "); got != 3 {
		t.Errorf("compliant validator issued %d A queries, want 3 (limit 2 + the violating one)", got)
	}

	// 64% of observed MTAs looked up all five names.
	r2 := newMockResolver()
	r2.txt["example.com"] = []string{policy}
	out = check(t, r2, Options{VoidLookupLimit: -1}, ip4Client, "example.com")
	if out.Result != Neutral {
		t.Errorf("unlimited void handling: %s (%v)", out.Result, out.Err)
	}
	if got := r2.countQueries("A "); got != 5 {
		t.Errorf("void-violating validator issued %d A queries, want 5", got)
	}
}

func TestCheckHostMXAddressLimit(t *testing.T) {
	// The paper's MX-limit policy: one mx mechanism with 20 MX records.
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 mx:mxfarm.example.com ?all"}
	var mxs []MXRecord
	for i := 0; i < 20; i++ {
		host := fmt.Sprintf("mx%02d.example.com", i)
		mxs = append(mxs, MXRecord{Preference: uint16(i), Host: host})
		r.a[host] = []netip.Addr{netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", i+1))}
	}
	r.mx["mxfarm.example.com"] = mxs

	out := check(t, r, Options{}, ip4Client, "example.com")
	if out.Result != PermError {
		t.Errorf("compliant MX limit: %s", out.Result)
	}
	if got := r.countQueries("A mx"); got != DefaultMXAddressLimit {
		t.Errorf("compliant validator issued %d MX-host A queries, want %d", got, DefaultMXAddressLimit)
	}

	// 64% of observed MTAs queried all 20 MX hosts.
	r2 := newMockResolver()
	r2.txt["example.com"] = r.txt["example.com"]
	r2.mx["mxfarm.example.com"] = mxs
	for name, addrs := range r.a {
		r2.a[name] = addrs
	}
	out = check(t, r2, Options{MXAddressLimit: -1}, ip4Client, "example.com")
	if out.Result != Neutral {
		t.Errorf("unlimited MX: %s (%v)", out.Result, out.Err)
	}
	if got := r2.countQueries("A mx"); got != 20 {
		t.Errorf("violating validator issued %d MX-host A queries, want 20", got)
	}
}

func TestCheckHostMXFallbackA(t *testing.T) {
	// RFC 7208 forbids the implicit-MX A fallback; 14% of observed
	// MTAs do it anyway.
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 mx:nomx.example.com ?all"}
	out := check(t, r, Options{}, ip4Client, "example.com")
	if out.Result != Neutral {
		t.Errorf("compliant empty mx: %s (%v)", out.Result, out.Err)
	}
	if r.countQueries("A nomx.example.com") != 0 {
		t.Error("compliant validator issued the forbidden A fallback")
	}

	r2 := newMockResolver()
	r2.txt["example.com"] = r.txt["example.com"]
	r2.a["nomx.example.com"] = []netip.Addr{ip4Client}
	out = check(t, r2, Options{MXFallbackA: true, VoidLookupLimit: -1}, ip4Client, "example.com")
	if out.Result != Neutral {
		t.Errorf("fallback must not authorize: %s", out.Result)
	}
	if r2.countQueries("A nomx.example.com") != 1 {
		t.Error("fallback mode did not issue the A query")
	}
}

func TestCheckHostSerialVsParallel(t *testing.T) {
	// The §7.1 test policy shape: include chain before an "a"
	// mechanism. Serial validators resolve the chain before the A
	// lookup; prefetching validators issue the A lookup immediately.
	setup := func() *mockResolver {
		r := newMockResolver()
		r.txt["example.com"] = []string{"v=spf1 include:l1.example.com a:foo.example.com -all"}
		r.txt["l1.example.com"] = []string{"v=spf1 include:l2.example.com ?all"}
		r.txt["l2.example.com"] = []string{"v=spf1 include:l3.example.com ?all"}
		r.txt["l3.example.com"] = []string{"v=spf1 ?all"}
		r.a["foo.example.com"] = []netip.Addr{ip4Client}
		return r
	}
	indexOf := func(log []string, q string) int {
		for i, entry := range log {
			if entry == q {
				return i
			}
		}
		return -1
	}

	r := setup()
	if out := check(t, r, Options{}, ip4Client, "example.com"); out.Result != Pass {
		t.Fatalf("serial eval: %s (%v)", out.Result, out.Err)
	}
	log := r.queryLog()
	aIdx, l3Idx := indexOf(log, "A foo.example.com"), indexOf(log, "TXT l3.example.com")
	if aIdx < 0 || l3Idx < 0 || aIdx < l3Idx {
		t.Errorf("serial order violated: %v", log)
	}

	r = setup()
	if out := check(t, r, Options{Prefetch: true}, ip4Client, "example.com"); out.Result != Pass {
		t.Fatalf("parallel eval: %s (%v)", out.Result, out.Err)
	}
	if indexOf(r.queryLog(), "A foo.example.com") < 0 {
		t.Errorf("prefetch issued no A lookup: %v", r.queryLog())
	}
}

func TestCheckHostExplanation(t *testing.T) {
	r := newMockResolver()
	r.txt["example.com"] = []string{"v=spf1 -all exp=explain.example.com"}
	r.txt["explain.example.com"] = []string{"%{i} is not allowed to send for %{d}"}
	out := check(t, r, Options{}, ip4Client, "example.com")
	if out.Result != Fail {
		t.Fatalf("result %s", out.Result)
	}
	want := "192.0.2.1 is not allowed to send for example.com"
	if out.Explanation != want {
		t.Errorf("explanation %q, want %q", out.Explanation, want)
	}
}

func TestCheckHostHeloIdentity(t *testing.T) {
	// Checking the HELO identity uses postmaster@helo as sender.
	r := newMockResolver()
	r.txt["helo.example.net"] = []string{"v=spf1 exists:%{l}.%{d} -all"}
	r.a["postmaster.helo.example.net"] = []netip.Addr{netip.MustParseAddr("127.0.0.2")}
	c := &Checker{Resolver: r}
	out := c.CheckHost(context.Background(), ip4Client, "helo.example.net",
		"postmaster@helo.example.net", "helo.example.net")
	if out.Result != Pass {
		t.Errorf("HELO check: %s (%v)", out.Result, out.Err)
	}
}

func TestMatchAddrsProperty(t *testing.T) {
	// Property: an address always matches itself without a prefix, and
	// never matches an address of the other family.
	f := func(a, b [4]byte) bool {
		x := netip.AddrFrom4(a)
		m := Mechanism{Kind: MechA, Prefix4: -1, Prefix6: -1}
		if !matchAddrs([]netip.Addr{x}, x, m) {
			return false
		}
		var six [16]byte
		copy(six[:], a[:])
		y := netip.AddrFrom16(six)
		return !matchAddrs([]netip.Addr{y}, x, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchPrefixProperty(t *testing.T) {
	// Property: /0 matches everything in-family; /32 matches only the
	// exact address.
	f := func(a, b [4]byte) bool {
		x, y := netip.AddrFrom4(a), netip.AddrFrom4(b)
		all := Mechanism{Kind: MechA, Prefix4: 0, Prefix6: -1}
		exact := Mechanism{Kind: MechA, Prefix4: 32, Prefix6: -1}
		if !matchAddrs([]netip.Addr{y}, x, all) {
			return false
		}
		return matchAddrs([]netip.Addr{y}, x, exact) == (x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOutcomeDefinitive(t *testing.T) {
	for _, r := range []Result{None, Neutral, Pass, Fail, SoftFail, PermError} {
		if !r.Definitive() {
			t.Errorf("%s should be definitive", r)
		}
	}
	if TempError.Definitive() {
		t.Error("temperror should not be definitive")
	}
}
