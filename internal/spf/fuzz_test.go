package spf

import (
	"context"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// fuzzResolver serves arbitrary (possibly adversarial) TXT payloads
// for every name and cyclic data for other types.
type fuzzResolver struct {
	txt []string
}

func (r *fuzzResolver) LookupTXT(ctx context.Context, name string) ([]string, error) {
	return r.txt, nil
}
func (r *fuzzResolver) LookupA(ctx context.Context, name string) ([]netip.Addr, error) {
	return []netip.Addr{netip.MustParseAddr("192.0.2.1")}, nil
}
func (r *fuzzResolver) LookupAAAA(ctx context.Context, name string) ([]netip.Addr, error) {
	return []netip.Addr{netip.MustParseAddr("2001:db8::1")}, nil
}
func (r *fuzzResolver) LookupMX(ctx context.Context, name string) ([]MXRecord, error) {
	return []MXRecord{{Preference: 10, Host: name}}, nil
}
func (r *fuzzResolver) LookupPTR(ctx context.Context, ip netip.Addr) ([]string, error) {
	return []string{"host.example.com"}, nil
}

// TestParseNeverPanics feeds Parse random byte soup.
func TestParseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Parse("v=spf1 " + string(raw))
		_, _ = Parse(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestCheckHostNeverPanicsOnRandomPolicies evaluates randomly
// assembled policies end to end. Every evaluation must terminate
// quickly (the limits guarantee this) and produce a legal result.
func TestCheckHostNeverPanicsOnRandomPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	terms := []string{
		"all", "-all", "~all", "?all", "+all",
		"a", "mx", "ptr", "a:%s", "mx:%s", "include:%s", "exists:%s",
		"ip4:192.0.2.0/24", "ip6:2001:db8::/32", "ip4:999.1.1.1",
		"redirect=%s", "exp=%s", "a/24", "a//64", "a/24//64",
		"exists:%{ir}.%s", "include:%{d2}.%s", "a:%{l}.%s",
		"ipv4:1.2.3.4", "bogus", "a:", "include:", "/24", "%%%",
		"a:very..broken..name", "mx:-", "exists:%{z}.x",
	}
	legal := map[Result]bool{
		None: true, Neutral: true, Pass: true, Fail: true,
		SoftFail: true, TempError: true, PermError: true,
	}
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(8)
		parts := make([]string, 0, n+1)
		parts = append(parts, "v=spf1")
		for j := 0; j < n; j++ {
			term := terms[rng.Intn(len(terms))]
			if strings.Contains(term, "%s") {
				term = strings.ReplaceAll(term, "%s", "x.example.com")
			}
			parts = append(parts, term)
		}
		policy := strings.Join(parts, " ")
		res := &fuzzResolver{txt: []string{policy}}
		c := &Checker{Resolver: res, Options: Options{Timeout: 2 * time.Second}}
		out := c.CheckHost(context.Background(), netip.MustParseAddr("192.0.2.1"),
			"rand.example.com", "u@rand.example.com", "helo.example.com")
		if !legal[out.Result] {
			t.Fatalf("policy %q produced illegal result %q", policy, out.Result)
		}
	}
}

// TestCheckHostTerminatesOnSelfReference verifies the lookup limit
// bounds pathological self-referential policies in both compliant and
// prefetching modes.
func TestCheckHostTerminatesOnSelfReference(t *testing.T) {
	res := &fuzzResolver{txt: []string{"v=spf1 include:rand.example.com a:rand.example.com ?all"}}
	for _, opts := range []Options{
		{Timeout: 3 * time.Second},
		{Timeout: 3 * time.Second, Prefetch: true},
	} {
		c := &Checker{Resolver: res, Options: opts}
		start := time.Now()
		out := c.CheckHost(context.Background(), netip.MustParseAddr("203.0.113.9"),
			"rand.example.com", "u@rand.example.com", "h.example.com")
		if out.Result != PermError {
			t.Errorf("self-referential policy: %s (prefetch=%v)", out.Result, opts.Prefetch)
		}
		if time.Since(start) > 2*time.Second {
			t.Errorf("evaluation took %v (prefetch=%v)", time.Since(start), opts.Prefetch)
		}
	}
}

// TestMacroExpansionNeverPanics feeds ExpandMacros random input.
func TestMacroExpansionNeverPanics(t *testing.T) {
	env := &MacroEnv{
		Sender: "u@example.com", Domain: "example.com",
		IP: netip.MustParseAddr("192.0.2.3"), Helo: "h.example.com",
	}
	f := func(raw []byte) bool {
		_, _ = ExpandMacros(string(raw), env, false)
		_, _ = ExpandMacros(string(raw), env, true)
		_, _ = ExpandDomain(string(raw), env)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestRecordStringStability: for every record that parses, rendering
// and reparsing is a fixed point.
func TestRecordStringStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mechs := []string{
		"all", "a", "mx", "ptr", "ip4:192.0.2.1", "ip4:10.0.0.0/8",
		"ip6:2001:db8::1", "a:h.example.com", "mx:m.example.com/28",
		"include:i.example.com", "exists:%{ir}.e.example.com", "a/16//48",
	}
	quals := []string{"", "+", "-", "~", "?"}
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(6)
		parts := []string{"v=spf1"}
		for j := 0; j < n; j++ {
			parts = append(parts, quals[rng.Intn(len(quals))]+mechs[rng.Intn(len(mechs))])
		}
		if rng.Intn(3) == 0 {
			parts = append(parts, "redirect=r.example.com")
		}
		txt := strings.Join(parts, " ")
		rec, err := Parse(txt)
		if err != nil {
			t.Fatalf("generated record rejected: %q: %v", txt, err)
		}
		rendered := rec.String()
		rec2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of %q unparsable: %q: %v", txt, rendered, err)
		}
		if rec2.String() != rendered {
			t.Fatalf("unstable rendering: %q -> %q -> %q", txt, rendered, rec2.String())
		}
	}
}

// TestLintNeverPanics feeds the record linter random soup.
func TestLintNeverPanics(t *testing.T) {
	l := &Linter{}
	f := func(raw []byte) bool {
		_ = l.LintRecord("x.example.com", "v=spf1 "+string(raw))
		_ = l.LintRecord("x.example.com", string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestUnlimitedValidatorStillBounded: even a validator configured to
// ignore every RFC limit must terminate on a self-including policy
// (the t18 shape) via the hard safety ceilings.
func TestUnlimitedValidatorStillBounded(t *testing.T) {
	res := &fuzzResolver{txt: []string{"v=spf1 include:loop.example.com ?all"}}
	c := &Checker{Resolver: res, Options: Options{
		LookupLimit: -1, VoidLookupLimit: -1, MXAddressLimit: -1,
		Timeout: 5 * time.Second,
	}}
	start := time.Now()
	out := c.CheckHost(context.Background(), netip.MustParseAddr("192.0.2.1"),
		"loop.example.com", "u@loop.example.com", "h.example.com")
	if out.Result != PermError {
		t.Errorf("unbounded loop: %s (%v)", out.Result, out.Err)
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("took %v", time.Since(start))
	}
	// Same with prefetch enabled.
	c.Options.Prefetch = true
	out = c.CheckHost(context.Background(), netip.MustParseAddr("192.0.2.1"),
		"loop.example.com", "u@loop.example.com", "h.example.com")
	if out.Result != PermError {
		t.Errorf("prefetch loop: %s (%v)", out.Result, out.Err)
	}
}
