package spf

import (
	"context"
	"fmt"
	"strings"
)

// Severity grades a lint finding.
type Severity int

// Severities.
const (
	// Info findings are observations, not problems.
	Info Severity = iota
	// Warning findings degrade interoperability or safety.
	Warning
	// Error findings make the policy unusable (permerror for
	// compliant validators).
	Error
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Finding is one lint diagnostic.
type Finding struct {
	Severity Severity
	// Code is a stable identifier, e.g. "syntax", "lookup-limit".
	Code string
	// Term is the offending term, when applicable.
	Term string
	// Message explains the finding.
	Message string
}

func (f Finding) String() string {
	if f.Term != "" {
		return fmt.Sprintf("%s[%s] %s: %s", f.Severity, f.Code, f.Term, f.Message)
	}
	return fmt.Sprintf("%s[%s] %s", f.Severity, f.Code, f.Message)
}

// LintReport is the outcome of analyzing one domain's SPF deployment.
type LintReport struct {
	Domain   string
	Record   string
	Findings []Finding
	// Lookups is the worst-case count of DNS-querying terms reachable
	// from the policy (includes followed recursively).
	Lookups int
	// VoidRisk counts mechanisms that could contribute void lookups.
	VoidRisk int
}

// MaxSeverity returns the highest severity present, or -1 when clean.
func (r *LintReport) MaxSeverity() Severity {
	max := Severity(-1)
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// add appends a finding.
func (r *LintReport) add(sev Severity, code, term, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Severity: sev, Code: code, Term: term,
		Message: fmt.Sprintf(format, args...),
	})
}

// Linter statically analyzes SPF deployments the way the sender-side
// surveys the paper cites (§3: Mori et al., Gojmerac et al.) did:
// syntax errors, limit violations a policy forces on validators,
// deprecated mechanisms, and unsafe qualifiers. With a Resolver it
// follows include/redirect chains and counts worst-case lookups; with
// a nil Resolver it analyzes a single record in isolation.
type Linter struct {
	// Resolver retrieves published records; nil restricts analysis to
	// the record text.
	Resolver Resolver
	// MaxDepth bounds include/redirect recursion. Zero means 10.
	MaxDepth int
}

func (l *Linter) maxDepth() int {
	if l.MaxDepth > 0 {
		return l.MaxDepth
	}
	return 10
}

// LintRecord analyzes a single record without DNS traversal.
func (l *Linter) LintRecord(domain, txt string) *LintReport {
	r := &LintReport{Domain: domain, Record: txt}
	rec, err := Parse(txt)
	if err != nil {
		var serr *SyntaxError
		if ok := asSyntax(err, &serr); ok {
			r.add(Error, "syntax", serr.Term, "%s", serr.Reason)
		} else {
			r.add(Error, "syntax", "", "%v", err)
		}
	}
	if rec == nil {
		return r
	}
	l.lintTerms(r, rec)
	r.Lookups = localLookupCount(rec)
	if r.Lookups > DefaultLookupLimit {
		r.add(Error, "lookup-limit", "",
			"policy itself requires %d DNS-querying terms; the RFC 7208 limit is %d",
			r.Lookups, DefaultLookupLimit)
	}
	return r
}

// Lint analyzes the domain's published SPF deployment, following
// include and redirect targets.
func (l *Linter) Lint(ctx context.Context, domain string) (*LintReport, error) {
	if l.Resolver == nil {
		return nil, fmt.Errorf("spf: linter has no resolver")
	}
	r := &LintReport{Domain: domain}
	seen := map[string]bool{}
	lookups, err := l.traverse(ctx, r, domain, seen, 0, true)
	if err != nil {
		return nil, err
	}
	r.Lookups = lookups
	if lookups > DefaultLookupLimit {
		r.add(Error, "lookup-limit", "",
			"evaluating this policy requires up to %d DNS-querying terms; the limit is %d",
			lookups, DefaultLookupLimit)
	}
	if r.VoidRisk > DefaultVoidLookupLimit {
		r.add(Warning, "void-risk", "",
			"%d mechanisms may produce void lookups; validators permit %d",
			r.VoidRisk, DefaultVoidLookupLimit)
	}
	return r, nil
}

// traverse walks the include/redirect graph accumulating worst-case
// lookup counts and findings. top marks the root record (where some
// findings only apply).
func (l *Linter) traverse(ctx context.Context, r *LintReport, domain string, seen map[string]bool, depth int, top bool) (int, error) {
	key := strings.ToLower(strings.TrimSuffix(domain, "."))
	if seen[key] {
		r.add(Error, "include-loop", domain, "include/redirect cycle detected")
		return 0, nil
	}
	seen[key] = true
	if depth > l.maxDepth() {
		r.add(Warning, "depth", domain, "include/redirect nesting exceeds %d", l.maxDepth())
		return 0, nil
	}

	txts, err := l.Resolver.LookupTXT(ctx, domain)
	if err != nil {
		return 0, fmt.Errorf("spf: lint %s: %w", domain, err)
	}
	var policies []string
	for _, txt := range txts {
		if IsSPF(txt) {
			policies = append(policies, txt)
		}
	}
	switch {
	case len(policies) == 0:
		if top {
			r.add(Info, "no-record", domain, "domain publishes no SPF record")
		} else {
			r.add(Error, "include-none", domain, "include/redirect target has no SPF record (permerror)")
		}
		return 0, nil
	case len(policies) > 1:
		r.add(Error, "multiple-records", domain,
			"%d SPF records published; validators must permerror", len(policies))
		return 0, nil
	}
	if top {
		r.Record = policies[0]
	}

	rec, perr := Parse(policies[0])
	if perr != nil {
		var serr *SyntaxError
		if asSyntax(perr, &serr) {
			r.add(Error, "syntax", serr.Term, "%s (at %s)", serr.Reason, domain)
		}
	}
	if rec == nil {
		return 0, nil
	}
	if top {
		l.lintTerms(r, rec)
	}

	total := 0
	for _, m := range rec.Mechanisms {
		if m.Kind.RequiresLookup() {
			total++
		}
		switch m.Kind {
		case MechA, MechExists:
			r.VoidRisk++
		case MechInclude:
			if strings.ContainsRune(m.Domain, '%') {
				r.add(Info, "macro-include", m.String(),
					"include target uses macros; lookup count depends on the sender")
				continue
			}
			sub, err := l.traverse(ctx, r, m.Domain, seen, depth+1, false)
			if err != nil {
				return 0, err
			}
			total += sub
		case MechMX:
			// Each MX can trigger up to 10 address lookups; count the
			// mechanism itself here and flag the amplification.
			r.VoidRisk++
		}
	}
	if rec.Redirect != "" && !strings.ContainsRune(rec.Redirect, '%') {
		total++ // the redirect consumes a lookup
		sub, err := l.traverse(ctx, r, rec.Redirect, seen, depth+1, false)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}

// lintTerms flags term-level issues on the root record.
func (l *Linter) lintTerms(r *LintReport, rec *Record) {
	sawAll := false
	for i, m := range rec.Mechanisms {
		if sawAll {
			r.add(Warning, "unreachable", m.String(),
				"mechanism after \"all\" can never be evaluated")
			continue
		}
		switch m.Kind {
		case MechAll:
			sawAll = true
			if m.Qualifier == QPass {
				r.add(Error, "pass-all", m.String(),
					"+all authorizes the whole Internet to send for this domain")
			}
			if m.Qualifier == QNeutral && i == len(rec.Mechanisms)-1 && rec.Redirect == "" {
				r.add(Info, "neutral-all", m.String(),
					"?all asserts nothing; consider ~all or -all")
			}
		case MechPTR:
			r.add(Warning, "ptr", m.String(),
				"ptr is slow, unreliable, and deprecated by RFC 7208 §5.5")
		}
	}
	if !sawAll && rec.Redirect == "" {
		r.add(Warning, "no-all", "",
			"record ends without an \"all\" mechanism or redirect; default result is neutral")
	}
	if sawAll && rec.Redirect != "" {
		r.add(Warning, "dead-redirect", "redirect="+rec.Redirect,
			"redirect is ignored because \"all\" always matches first")
	}
}

// localLookupCount counts DNS-querying terms in one record.
func localLookupCount(rec *Record) int {
	n := 0
	for _, m := range rec.Mechanisms {
		if m.Kind.RequiresLookup() {
			n++
		}
	}
	if rec.Redirect != "" {
		n++
	}
	return n
}

func asSyntax(err error, target **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*target = se
	}
	return ok
}
