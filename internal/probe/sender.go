package probe

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"sendervalid/internal/dkim"
	"sendervalid/internal/smtp"
)

// Target is a recipient MTA candidate in MX preference order.
type Target struct {
	Addr4 netip.Addr
	Addr6 netip.Addr
}

// Sender is the NotifyEmail sending MTA: it delivers a complete,
// DKIM-signed notification to the first responsive MX of a domain,
// exactly once per recipient (paper §4.6: "Once an email is delivered
// for a given domain, using a given MTA, no further MTAs are probed").
type Sender struct {
	// Dialer carries the connections (typically a netsim.BoundDialer
	// pinning the sending MTA's published address, so SPF passes).
	Dialer smtp.Dialer
	// Suffix is the From-domain zone, e.g. "dsav-mail.dns-lab.example".
	Suffix string
	// HeloDomain announces the sending MTA.
	HeloDomain string
	// Signer signs outgoing messages; its Domain field is set per
	// delivery. nil disables DKIM signing.
	Signer *dkim.Signer
	// ReplyTo is included in the message so recipients can respond
	// despite the unique From domain (paper §5.3).
	ReplyTo string
	// Timeout bounds each SMTP exchange.
	Timeout time.Duration
	// Retries is how many additional delivery rounds to attempt after
	// transient (4xx or connection) failures, mirroring a queueing
	// MTA's behaviour. Zero disables retries.
	Retries int
	// RetryDelay separates rounds. Zero means 1 s.
	RetryDelay time.Duration
}

// Delivery records one NotifyEmail delivery attempt.
type Delivery struct {
	DomainID  string
	Recipient string
	// Delivered reports a 250 acceptance of the full message.
	Delivered bool
	// MTAAddr is the address that accepted (or last refused).
	MTAAddr netip.Addr
	// AcceptedAt is the timestamp of the 250 reply to the message —
	// the tEmail of Figure 2.
	AcceptedAt time.Time
	// Attempts counts delivery rounds (1 = first try succeeded or no
	// retries configured). The paper filtered a handful of Figure 2
	// samples caused by an earlier attempt triggering validation and a
	// later one delivering (§6.2).
	Attempts int
	// Err describes the failure when not delivered.
	Err error
}

// FromDomain builds the unique per-domain envelope sender domain
// (§4.4: spf-test@<domainid>.<suffix>).
func (s *Sender) FromDomain(domainID string) string {
	return domainID + "." + strings.TrimSuffix(s.Suffix, ".")
}

// Send delivers the notification body to recipient via the first
// responsive target.
func (s *Sender) Send(ctx context.Context, domainID, recipient string, targets []Target, subject, body string) *Delivery {
	d := &Delivery{DomainID: domainID, Recipient: recipient}
	fromDomain := s.FromDomain(domainID)
	from := "spf-test@" + fromDomain

	msg := s.compose(from, recipient, subject, body)
	if s.Signer != nil {
		signer := *s.Signer
		signer.Domain = fromDomain
		signed, err := signer.Sign(msg)
		if err != nil {
			d.Err = fmt.Errorf("probe: signing: %w", err)
			return d
		}
		msg = signed
	}

	var lastErr error
	for round := 0; round <= s.Retries; round++ {
		if round > 0 {
			delay := s.RetryDelay
			if delay <= 0 {
				delay = time.Second
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				d.Err = ctx.Err()
				return d
			}
		}
		d.Attempts = round + 1
		permanent := false
		for _, target := range targets {
			for _, addr := range []netip.Addr{target.Addr4, target.Addr6} {
				if !addr.IsValid() {
					continue
				}
				delivered, err := s.deliverTo(ctx, addr, from, recipient, msg)
				if delivered {
					d.Delivered = true
					d.MTAAddr = addr
					d.AcceptedAt = time.Now()
					return d
				}
				lastErr = err
				d.MTAAddr = addr
				var smtpErr *smtp.Error
				if errors.As(err, &smtpErr) && smtpErr.Permanent() {
					permanent = true
				}
			}
		}
		if permanent {
			break // a 5xx is final; queueing MTAs bounce, not retry
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("probe: no reachable MTA for %s", recipient)
	}
	d.Err = lastErr
	return d
}

func (s *Sender) deliverTo(ctx context.Context, addr netip.Addr, from, to string, msg []byte) (bool, error) {
	cl, err := smtp.Dial(ctx, s.Dialer, netip.AddrPortFrom(addr, 25).String())
	if err != nil {
		return false, err
	}
	defer cl.Abort()
	if s.Timeout > 0 {
		cl.Timeout = s.Timeout
	}
	if err := cl.Hello(s.HeloDomain); err != nil {
		return false, err
	}
	if err := cl.Mail(from); err != nil {
		return false, err
	}
	if err := cl.Rcpt(to); err != nil {
		return false, err
	}
	if err := cl.Data(msg); err != nil {
		return false, err
	}
	_ = cl.Quit()
	return true, nil
}

// compose builds the notification message. The From header matches
// the envelope From so DMARC identifier alignment holds (§5.3).
func (s *Sender) compose(from, to, subject, body string) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "From: Network Measurement Study <%s>\r\n", from)
	fmt.Fprintf(&sb, "To: <%s>\r\n", to)
	fmt.Fprintf(&sb, "Subject: %s\r\n", subject)
	fmt.Fprintf(&sb, "Date: Mon, 05 Oct 2020 10:00:00 +0000\r\n")
	fmt.Fprintf(&sb, "Message-ID: <%s.%s>\r\n", sanitizeID(to), smtp.DomainOf(from))
	if s.ReplyTo != "" {
		fmt.Fprintf(&sb, "Reply-To: <%s>\r\n", s.ReplyTo)
	}
	sb.WriteString("\r\n")
	sb.WriteString(strings.ReplaceAll(body, "\n", "\r\n"))
	if !strings.HasSuffix(body, "\n") {
		sb.WriteString("\r\n")
	}
	return []byte(sb.String())
}

func sanitizeID(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, s)
}
