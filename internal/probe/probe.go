// Package probe implements the study's two sending-side tools: the
// custom SMTP probing client used against NotifyMX and TwoWeekMX
// targets (paper §4.6) — EHLO, MAIL, RCPT, DATA with configurable
// inter-command sleeps, a unique From address per (MTA, test policy),
// a recipient-guessing ladder, and a disconnect before any message
// content — and the NotifyEmail sending MTA, which delivers a real,
// DKIM-signed message to the first responsive MX of each recipient
// domain (the study used Exim4 for this role).
package probe

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"sendervalid/internal/smtp"
	"sendervalid/internal/trace"
)

// DefaultRecipients is the paper's username ladder (§4.4): common
// names first, postmaster as the fallback expected to exist anywhere.
var DefaultRecipients = []string{"michael", "john.smith", "support", "postmaster"}

// Client runs test-policy probes.
type Client struct {
	// Dialer carries the SMTP connections (a *netsim.Fabric or a
	// netsim.BoundDialer pinning the client's source address).
	Dialer smtp.Dialer
	// Suffix is the From-domain zone, e.g. "spf-test.dns-lab.example".
	Suffix string
	// HeloDomain is sent in EHLO/HELO. For the HELO test policy the
	// client substitutes helo.<testid>.<mtaid>.<suffix>.
	HeloDomain string
	// RecipientDomain is the domain part of guessed To addresses.
	RecipientDomain string
	// Recipients overrides the username ladder.
	Recipients []string
	// Sleep is inserted before MAIL, RCPT, and DATA (the paper used
	// 15 s; simulations use 0).
	Sleep time.Duration
	// Timeout bounds each SMTP exchange.
	Timeout time.Duration
	// HeloTestID is the test whose probe uses an instrumented HELO
	// name ("t03" in the catalog). Empty disables the substitution.
	HeloTestID string
}

// Stage identifies where in the SMTP dialogue a probe ended.
type Stage string

// Probe stages.
const (
	StageConnect Stage = "connect"
	StageHelo    Stage = "helo"
	StageMail    Stage = "mail"
	StageRcpt    Stage = "rcpt"
	StageData    Stage = "data"
	StageDone    Stage = "done"
)

// Result records one probe.
type Result struct {
	MTAID  string
	TestID string
	// Stage is how far the dialogue got (StageDone = DATA reply
	// received and connection dropped).
	Stage Stage
	// Recipient is the accepted To address, if any.
	Recipient string
	// ReplyCode and ReplyText describe the terminal reply (the DATA
	// reply on success, the rejection otherwise).
	ReplyCode int
	ReplyText string
	// Err is the transport or SMTP error that ended the probe early.
	Err error
}

// Rejected reports whether the probe was refused before DATA.
func (r *Result) Rejected() bool { return r.Stage != StageDone }

// MentionsSpam reports whether the rejection text cites spam.
func (r *Result) MentionsSpam() bool {
	return strings.Contains(strings.ToLower(r.ReplyText), "spam")
}

// MentionsBlacklist reports whether the rejection text cites a
// blacklist.
func (r *Result) MentionsBlacklist() bool {
	return strings.Contains(strings.ToLower(r.ReplyText), "blacklist")
}

// FromAddress builds the per-(test, MTA) envelope sender (§4.4).
func (c *Client) FromAddress(testID, mtaID string) string {
	return fmt.Sprintf("spf-test@%s.%s.%s", testID, mtaID, strings.TrimSuffix(c.Suffix, "."))
}

// recipients returns the username ladder.
func (c *Client) recipients() []string {
	if len(c.Recipients) > 0 {
		return c.Recipients
	}
	return DefaultRecipients
}

// sleep pauses before the next command, aborting promptly when the
// context is cancelled — a cancelled campaign must stop within one
// step, not finish the full EHLO→DATA walk.
func (c *Client) sleep(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.Sleep <= 0 {
		return nil
	}
	select {
	case <-time.After(c.Sleep):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Probe runs one test policy against the MTA at addr. When ctx
// carries a trace span the SMTP dialogue is recorded as one
// "probe.smtp" span with a child per phase (connect, helo, mail,
// rcpt, data).
func (c *Client) Probe(ctx context.Context, addr netip.Addr, mtaID, testID string) *Result {
	res := &Result{MTAID: mtaID, TestID: testID, Stage: StageConnect}
	ctx, sp := trace.Start(ctx, "probe.smtp")
	if sp != nil {
		sp.SetAttr("mta", mtaID)
		sp.SetAttr("test", testID)
	}
	defer func() {
		if sp != nil {
			sp.SetAttr("stage", string(res.Stage))
			sp.SetError(res.Err)
			sp.End()
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	target := netip.AddrPortFrom(addr, 25).String()

	_, psp := trace.Start(ctx, "probe.connect")
	cl, err := smtp.Dial(ctx, c.Dialer, target)
	psp.SetError(err)
	psp.End()
	if err != nil {
		res.Err = err
		var smtpErr *smtp.Error
		if errors.As(err, &smtpErr) {
			res.ReplyCode, res.ReplyText = smtpErr.Code, smtpErr.Message
		}
		return res
	}
	defer cl.Abort()
	if c.Timeout > 0 {
		cl.Timeout = c.Timeout
	}

	helo := c.HeloDomain
	if c.HeloTestID != "" && testID == c.HeloTestID {
		helo = fmt.Sprintf("helo.%s.%s.%s", testID, mtaID, strings.TrimSuffix(c.Suffix, "."))
	}
	res.Stage = StageHelo
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	_, psp = trace.Start(ctx, "probe.helo")
	err = cl.Hello(helo)
	psp.SetError(err)
	psp.End()
	if err != nil {
		res.Err = err
		fillReply(res, err)
		return res
	}

	if err := c.sleep(ctx); err != nil {
		res.Err = err
		return res
	}
	res.Stage = StageMail
	_, psp = trace.Start(ctx, "probe.mail")
	err = cl.Mail(c.FromAddress(testID, mtaID))
	psp.SetError(err)
	psp.End()
	if err != nil {
		res.Err = err
		fillReply(res, err)
		return res
	}

	if err := c.sleep(ctx); err != nil {
		res.Err = err
		return res
	}
	res.Stage = StageRcpt
	_, psp = trace.Start(ctx, "probe.rcpt")
	var rcptErr error
	for _, user := range c.recipients() {
		if err := ctx.Err(); err != nil {
			psp.SetError(err)
			psp.End()
			res.Err = err
			return res
		}
		to := user + "@" + c.RecipientDomain
		if rcptErr = cl.Rcpt(to); rcptErr == nil {
			res.Recipient = to
			break
		}
	}
	if psp != nil {
		psp.SetAttr("recipient", res.Recipient)
		psp.SetError(rcptErr)
		psp.End()
	}
	if rcptErr != nil {
		res.Err = rcptErr
		fillReply(res, rcptErr)
		return res
	}

	if err := c.sleep(ctx); err != nil {
		res.Err = err
		return res
	}
	res.Stage = StageData
	_, psp = trace.Start(ctx, "probe.data")
	code, text, err := cl.DataCommand()
	psp.SetError(err)
	psp.End()
	if err != nil {
		res.Err = err
		fillReply(res, err)
		return res
	}
	res.Stage = StageDone
	res.ReplyCode, res.ReplyText = code, text
	// Disconnect without sending any content (§4.6): nothing can be
	// delivered.
	return res
}

// ProbeAll runs every test in order against one MTA (the study ran
// all 39 per MTA, shuffling MTA order across the fleet, §5.2).
func (c *Client) ProbeAll(ctx context.Context, addr netip.Addr, mtaID string, testIDs []string) []*Result {
	out := make([]*Result, 0, len(testIDs))
	for _, testID := range testIDs {
		if ctx.Err() != nil {
			break
		}
		out = append(out, c.Probe(ctx, addr, mtaID, testID))
	}
	return out
}

func fillReply(res *Result, err error) {
	var smtpErr *smtp.Error
	if errors.As(err, &smtpErr) {
		res.ReplyCode, res.ReplyText = smtpErr.Code, smtpErr.Message
	}
}
