package probe

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/dkim"
	"sendervalid/internal/netsim"
	"sendervalid/internal/smtp"
)

var (
	keyOnce sync.Once
	rsaKey  *rsa.PrivateKey
)

func testKey(t *testing.T) *rsa.PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		rsaKey, err = rsa.GenerateKey(rand.Reader, 2048)
		if err != nil {
			t.Fatal(err)
		}
	})
	return rsaKey
}

// scriptedMTA runs an smtp.Server with the given handler on the
// fabric at addr and records activity.
func scriptedMTA(t *testing.T, fabric *netsim.Fabric, addr string, h smtp.Handler) *smtp.Server {
	t.Helper()
	srv := &smtp.Server{Hostname: "scripted.example", Handler: h}
	ln, err := fabric.Listen(netip.AddrPortFrom(netip.MustParseAddr(addr), 25))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv
}

func TestProbeHappyPath(t *testing.T) {
	fabric := netsim.NewFabric()
	var mu sync.Mutex
	var mailFrom, helo string
	var sawMessage bool
	scriptedMTA(t, fabric, "10.1.0.1", smtp.Handler{
		OnMail: func(s *smtp.Session, from string) *smtp.Reply {
			mu.Lock()
			mailFrom, helo = from, s.Helo
			mu.Unlock()
			return nil
		},
		OnMessage: func(s *smtp.Session, msg []byte) *smtp.Reply {
			mu.Lock()
			sawMessage = true
			mu.Unlock()
			return nil
		},
	})
	c := &Client{
		Dialer: fabric, Suffix: "spf-test.dns-lab.example",
		HeloDomain: "probe.dns-lab.example", RecipientDomain: "target.example",
		Timeout: 3 * time.Second,
	}
	res := c.Probe(context.Background(), netip.MustParseAddr("10.1.0.1"), "m0001", "t12")
	if res.Stage != StageDone || res.Err != nil {
		t.Fatalf("probe: %+v", res)
	}
	if res.ReplyCode != 354 {
		t.Errorf("DATA reply %d", res.ReplyCode)
	}
	if res.Recipient != "michael@target.example" {
		t.Errorf("recipient %q (accept-all server takes the first guess)", res.Recipient)
	}
	mu.Lock()
	defer mu.Unlock()
	if mailFrom != "spf-test@t12.m0001.spf-test.dns-lab.example" {
		t.Errorf("MAIL from %q", mailFrom)
	}
	if helo != "probe.dns-lab.example" {
		t.Errorf("helo %q", helo)
	}
	if sawMessage {
		t.Error("probe delivered a message")
	}
}

func TestProbeRecipientLadder(t *testing.T) {
	fabric := netsim.NewFabric()
	var attempts []string
	var mu sync.Mutex
	scriptedMTA(t, fabric, "10.1.0.2", smtp.Handler{
		OnRcpt: func(s *smtp.Session, to string) *smtp.Reply {
			mu.Lock()
			attempts = append(attempts, smtp.LocalOf(to))
			mu.Unlock()
			if smtp.LocalOf(to) != "postmaster" {
				return smtp.ReplyNoSuchUser
			}
			return nil
		},
	})
	c := &Client{
		Dialer: fabric, Suffix: "spf-test.dns-lab.example",
		HeloDomain: "probe.dns-lab.example", RecipientDomain: "target.example",
		Timeout: 3 * time.Second,
	}
	res := c.Probe(context.Background(), netip.MustParseAddr("10.1.0.2"), "m0002", "t12")
	if res.Stage != StageDone {
		t.Fatalf("probe: %+v", res)
	}
	if res.Recipient != "postmaster@target.example" {
		t.Errorf("recipient %q", res.Recipient)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"michael", "john.smith", "support", "postmaster"}
	if len(attempts) != len(want) {
		t.Fatalf("attempts %v", attempts)
	}
	for i := range want {
		if attempts[i] != want[i] {
			t.Errorf("ladder order %v", attempts)
		}
	}
}

func TestProbeConnectRejection(t *testing.T) {
	fabric := netsim.NewFabric()
	scriptedMTA(t, fabric, "10.1.0.3", smtp.Handler{
		OnConnect: func(s *smtp.Session) *smtp.Reply {
			return &smtp.Reply{Code: 554, Text: "rejected: spam source"}
		},
	})
	c := &Client{Dialer: fabric, Suffix: "x.example", HeloDomain: "p.example",
		RecipientDomain: "t.example", Timeout: 3 * time.Second}
	res := c.Probe(context.Background(), netip.MustParseAddr("10.1.0.3"), "m0003", "t12")
	if res.Stage != StageConnect || !res.Rejected() {
		t.Fatalf("probe: %+v", res)
	}
	if !res.MentionsSpam() || res.MentionsBlacklist() {
		t.Errorf("classification: %+v", res)
	}
	if res.ReplyCode != 554 {
		t.Errorf("code %d", res.ReplyCode)
	}
}

func TestProbeUnreachable(t *testing.T) {
	fabric := netsim.NewFabric()
	c := &Client{Dialer: fabric, Suffix: "x.example", HeloDomain: "p.example",
		RecipientDomain: "t.example", Timeout: time.Second}
	res := c.Probe(context.Background(), netip.MustParseAddr("10.1.0.99"), "m0004", "t12")
	if res.Stage != StageConnect || res.Err == nil {
		t.Fatalf("probe: %+v", res)
	}
}

func TestProbeHeloSubstitution(t *testing.T) {
	fabric := netsim.NewFabric()
	var mu sync.Mutex
	helos := map[string]string{}
	scriptedMTA(t, fabric, "10.1.0.4", smtp.Handler{
		OnMail: func(s *smtp.Session, from string) *smtp.Reply {
			mu.Lock()
			// Key by test id from the From address.
			parts := strings.SplitN(smtp.DomainOf(from), ".", 2)
			helos[parts[0]] = s.Helo
			mu.Unlock()
			return nil
		},
	})
	c := &Client{
		Dialer: fabric, Suffix: "spf-test.dns-lab.example",
		HeloDomain: "probe.dns-lab.example", RecipientDomain: "t.example",
		HeloTestID: "t03", Timeout: 3 * time.Second,
	}
	addr := netip.MustParseAddr("10.1.0.4")
	c.Probe(context.Background(), addr, "m0005", "t12")
	c.Probe(context.Background(), addr, "m0005", "t03")
	mu.Lock()
	defer mu.Unlock()
	if helos["t12"] != "probe.dns-lab.example" {
		t.Errorf("t12 helo %q", helos["t12"])
	}
	if helos["t03"] != "helo.t03.m0005.spf-test.dns-lab.example" {
		t.Errorf("t03 helo %q", helos["t03"])
	}
}

func TestProbeAll(t *testing.T) {
	fabric := netsim.NewFabric()
	scriptedMTA(t, fabric, "10.1.0.5", smtp.Handler{})
	c := &Client{Dialer: fabric, Suffix: "x.example", HeloDomain: "p.example",
		RecipientDomain: "t.example", Timeout: 3 * time.Second}
	results := c.ProbeAll(context.Background(), netip.MustParseAddr("10.1.0.5"),
		"m0006", []string{"t01", "t02", "t03"})
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if r.Stage != StageDone {
			t.Errorf("%s: %+v", r.TestID, r)
		}
	}
	// Cancellation stops the loop.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := c.ProbeAll(ctx, netip.MustParseAddr("10.1.0.5"), "m0006", []string{"t01"}); len(got) != 0 {
		t.Errorf("cancelled ProbeAll returned %d results", len(got))
	}
}

func TestProbeSleepPacing(t *testing.T) {
	fabric := netsim.NewFabric()
	scriptedMTA(t, fabric, "10.1.0.6", smtp.Handler{})
	c := &Client{Dialer: fabric, Suffix: "x.example", HeloDomain: "p.example",
		RecipientDomain: "t.example", Sleep: 30 * time.Millisecond, Timeout: 3 * time.Second}
	start := time.Now()
	res := c.Probe(context.Background(), netip.MustParseAddr("10.1.0.6"), "m0007", "t12")
	if res.Stage != StageDone {
		t.Fatalf("probe: %+v", res)
	}
	// Three sleeps: before MAIL, RCPT, DATA.
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("probe finished in %v; sleeps not applied", elapsed)
	}
}

func TestSenderDelivery(t *testing.T) {
	fabric := netsim.NewFabric()
	var mu sync.Mutex
	var gotMsg []byte
	var gotFrom string
	scriptedMTA(t, fabric, "10.1.0.7", smtp.Handler{
		OnMessage: func(s *smtp.Session, msg []byte) *smtp.Reply {
			mu.Lock()
			gotMsg = append([]byte(nil), msg...)
			gotFrom = s.MailFrom
			mu.Unlock()
			return nil
		},
	})
	s := &Sender{
		Dialer: fabric, Suffix: "dsav-mail.dns-lab.example",
		HeloDomain: "mta.dns-lab.example",
		Signer:     &dkim.Signer{Selector: "exp", Key: testKey(t)},
		ReplyTo:    "research@dns-lab.example",
		Timeout:    3 * time.Second,
	}
	d := s.Send(context.Background(), "d0042", "operator@recipient.example",
		[]Target{{Addr4: netip.MustParseAddr("10.1.0.7")}},
		"vulnerability notice", "Dear operator,\nplease see details.\n")
	if !d.Delivered || d.Err != nil {
		t.Fatalf("delivery: %+v", d)
	}
	if d.AcceptedAt.IsZero() {
		t.Error("missing acceptance timestamp")
	}
	mu.Lock()
	defer mu.Unlock()
	if gotFrom != "spf-test@d0042.dsav-mail.dns-lab.example" {
		t.Errorf("envelope from %q", gotFrom)
	}
	text := string(gotMsg)
	if !strings.Contains(text, "DKIM-Signature:") {
		t.Error("message unsigned")
	}
	if !strings.Contains(text, "d=d0042.dsav-mail.dns-lab.example;") {
		t.Error("DKIM d= not the per-domain From domain")
	}
	if !strings.Contains(text, "Reply-To: <research@dns-lab.example>") {
		t.Error("Reply-To missing")
	}
	if !strings.Contains(text, "From: Network Measurement Study <spf-test@d0042.dsav-mail.dns-lab.example>") {
		t.Error("From header misaligned with envelope")
	}
}

func TestSenderFirstResponsiveMTA(t *testing.T) {
	fabric := netsim.NewFabric()
	// First target does not exist; second accepts.
	scriptedMTA(t, fabric, "10.1.0.9", smtp.Handler{})
	s := &Sender{Dialer: fabric, Suffix: "dsav-mail.dns-lab.example",
		HeloDomain: "mta.dns-lab.example", Timeout: time.Second}
	d := s.Send(context.Background(), "d0043", "x@y.example",
		[]Target{
			{Addr4: netip.MustParseAddr("10.1.0.8")},
			{Addr4: netip.MustParseAddr("10.1.0.9")},
		}, "s", "b")
	if !d.Delivered {
		t.Fatalf("delivery: %+v", d)
	}
	if d.MTAAddr.String() != "10.1.0.9" {
		t.Errorf("delivered to %s", d.MTAAddr)
	}
}

func TestSenderAllUnreachable(t *testing.T) {
	fabric := netsim.NewFabric()
	s := &Sender{Dialer: fabric, Suffix: "x.example", HeloDomain: "h.example",
		Timeout: time.Second}
	d := s.Send(context.Background(), "d0044", "x@y.example",
		[]Target{{Addr4: netip.MustParseAddr("10.1.0.10")}}, "s", "b")
	if d.Delivered || d.Err == nil {
		t.Fatalf("delivery: %+v", d)
	}
}

func TestSenderRejectedDelivery(t *testing.T) {
	fabric := netsim.NewFabric()
	scriptedMTA(t, fabric, "10.1.0.11", smtp.Handler{
		OnMail: func(s *smtp.Session, from string) *smtp.Reply {
			return &smtp.Reply{Code: 550, Text: "no"}
		},
	})
	s := &Sender{Dialer: fabric, Suffix: "x.example", HeloDomain: "h.example",
		Timeout: time.Second}
	d := s.Send(context.Background(), "d0045", "x@y.example",
		[]Target{{Addr4: netip.MustParseAddr("10.1.0.11")}}, "s", "b")
	if d.Delivered {
		t.Fatal("rejected delivery marked delivered")
	}
}

func TestFromAddress(t *testing.T) {
	c := &Client{Suffix: "spf-test.dns-lab.example."}
	if got := c.FromAddress("t05", "m0099"); got != "spf-test@t05.m0099.spf-test.dns-lab.example" {
		t.Errorf("FromAddress = %q", got)
	}
}

func TestSenderRetriesTransientFailures(t *testing.T) {
	fabric := netsim.NewFabric()
	var attempts int
	var mu sync.Mutex
	scriptedMTA(t, fabric, "10.1.0.12", smtp.Handler{
		OnMail: func(s *smtp.Session, from string) *smtp.Reply {
			mu.Lock()
			attempts++
			n := attempts
			mu.Unlock()
			if n < 3 {
				return &smtp.Reply{Code: 451, Text: "4.7.1 greylisted, try later"}
			}
			return nil
		},
	})
	s := &Sender{Dialer: fabric, Suffix: "x.example", HeloDomain: "h.example",
		Timeout: time.Second, Retries: 3, RetryDelay: 10 * time.Millisecond}
	d := s.Send(context.Background(), "d0046", "x@y.example",
		[]Target{{Addr4: netip.MustParseAddr("10.1.0.12")}}, "s", "b")
	if !d.Delivered {
		t.Fatalf("greylisted delivery never succeeded: %+v", d)
	}
	if d.Attempts != 3 {
		t.Errorf("attempts %d, want 3", d.Attempts)
	}
}

func TestSenderNoRetryOnPermanentFailure(t *testing.T) {
	fabric := netsim.NewFabric()
	var attempts int
	var mu sync.Mutex
	scriptedMTA(t, fabric, "10.1.0.13", smtp.Handler{
		OnMail: func(s *smtp.Session, from string) *smtp.Reply {
			mu.Lock()
			attempts++
			mu.Unlock()
			return &smtp.Reply{Code: 550, Text: "5.1.1 user unknown"}
		},
	})
	s := &Sender{Dialer: fabric, Suffix: "x.example", HeloDomain: "h.example",
		Timeout: time.Second, Retries: 5, RetryDelay: time.Millisecond}
	d := s.Send(context.Background(), "d0047", "x@y.example",
		[]Target{{Addr4: netip.MustParseAddr("10.1.0.13")}}, "s", "b")
	if d.Delivered {
		t.Fatal("permanent failure delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Errorf("5xx retried: %d attempts", attempts)
	}
}

func TestProbeStopsWithinOneStepOnCancel(t *testing.T) {
	fabric := netsim.NewFabric()
	var mu sync.Mutex
	var sawMail bool
	scriptedMTA(t, fabric, "10.1.0.14", smtp.Handler{
		OnMail: func(s *smtp.Session, from string) *smtp.Reply {
			mu.Lock()
			sawMail = true
			mu.Unlock()
			return nil
		},
	})
	c := &Client{
		Dialer: fabric, Suffix: "x.example", HeloDomain: "h.example",
		RecipientDomain: "y.example",
		Sleep:           2 * time.Second, // paper pacing: 15 s between commands
		Timeout:         5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	start := time.Now()
	res := c.Probe(ctx, netip.MustParseAddr("10.1.0.14"), "m1", "t01")
	elapsed := time.Since(start)

	if res.Err == nil || !strings.Contains(res.Err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancelled probe returned %+v", res)
	}
	// The cancel lands in the pre-MAIL sleep: the probe must abandon
	// the walk there instead of finishing EHLO→DATA (which would take
	// three full sleeps).
	if elapsed > time.Second {
		t.Errorf("cancelled probe took %v, want well under one sleep interval", elapsed)
	}
	if res.Stage != StageHelo {
		t.Errorf("probe reached stage %s, want abandonment after %s", res.Stage, StageHelo)
	}
	mu.Lock()
	defer mu.Unlock()
	if sawMail {
		t.Error("MTA saw MAIL FROM after cancellation")
	}
}

func TestProbeCancelledBeforeDial(t *testing.T) {
	fabric := netsim.NewFabric()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{Dialer: fabric, Suffix: "x.example", HeloDomain: "h.example"}
	res := c.Probe(ctx, netip.MustParseAddr("10.1.0.15"), "m1", "t01")
	if res.Stage != StageConnect || res.Err == nil {
		t.Fatalf("pre-cancelled probe: %+v", res)
	}
}
