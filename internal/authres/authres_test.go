package authres

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatAndParseRoundTrip(t *testing.T) {
	h := &Header{
		AuthServID: "mx.receiver.example",
		Results: []Result{
			SPF("pass", "user@sender.example"),
			DKIM("pass", "sender.example"),
			DMARC("pass", "sender.example"),
		},
	}
	value := Format(h)
	want := "mx.receiver.example; spf=pass smtp.mailfrom=user@sender.example; " +
		"dkim=pass header.d=sender.example; dmarc=pass header.from=sender.example"
	if value != want {
		t.Errorf("Format:\n got %q\nwant %q", value, want)
	}
	parsed, err := Parse(value)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.AuthServID != h.AuthServID || len(parsed.Results) != 3 {
		t.Fatalf("parsed: %+v", parsed)
	}
	spf := parsed.Lookup("spf")
	if spf == nil || spf.Value != "pass" || spf.Properties["smtp.mailfrom"] != "user@sender.example" {
		t.Errorf("spf: %+v", spf)
	}
	if parsed.Lookup("dmarc") == nil || parsed.Lookup("arc") != nil {
		t.Error("Lookup")
	}
}

func TestFormatNone(t *testing.T) {
	h := &Header{AuthServID: "mx.example"}
	if got := Format(h); got != "mx.example; none" {
		t.Errorf("Format none: %q", got)
	}
	parsed, err := Parse("mx.example; none")
	if err != nil || len(parsed.Results) != 0 {
		t.Errorf("parse none: %+v, %v", parsed, err)
	}
}

func TestReasonQuoting(t *testing.T) {
	h := &Header{
		AuthServID: "mx.example",
		Results: []Result{{
			Method: "dmarc", Value: "fail",
			Reason: "policy; reject requested",
		}},
	}
	value := Format(h)
	parsed, err := Parse(value)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Results[0].Reason != "policy; reject requested" {
		t.Errorf("reason: %q", parsed.Results[0].Reason)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"   ",
		"mx.example; =pass",
		"mx.example; spf",
		"mx.example; spf=pass orphantoken",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestCaseInsensitiveLookup(t *testing.T) {
	h, err := Parse("mx.example; SPF=pass")
	if err != nil {
		t.Fatal(err)
	}
	if h.Lookup("spf") == nil {
		t.Error("case-insensitive method lookup failed")
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Parse(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMultiplePropertiesSorted(t *testing.T) {
	h := &Header{AuthServID: "mx", Results: []Result{{
		Method: "dkim", Value: "pass",
		Properties: map[string]string{
			"header.d": "d.example", "header.b": "abc", "header.a": "rsa-sha256",
		},
	}}}
	value := Format(h)
	// Deterministic property ordering.
	if !strings.Contains(value, "header.a=rsa-sha256 header.b=abc header.d=d.example") {
		t.Errorf("property order: %q", value)
	}
}
