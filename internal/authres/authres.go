// Package authres implements the Authentication-Results header field
// (RFC 8601), the standard channel through which a receiving MTA
// records its SPF, DKIM, and DMARC outcomes for downstream consumers
// (mail user agents, filters, and the forwarded-mail chains whose
// weaknesses the paper's related work studies).
package authres

import (
	"fmt"
	"strings"
)

// Result is one mechanism's outcome within the header.
type Result struct {
	// Method is "spf", "dkim", "dmarc", etc.
	Method string
	// Value is the outcome: pass, fail, none, neutral, softfail,
	// temperror, permerror.
	Value string
	// Reason optionally explains the outcome.
	Reason string
	// Properties are ptype.pname=value annotations, e.g.
	// "smtp.mailfrom" -> "user@example.com".
	Properties map[string]string
}

// Header is a parsed Authentication-Results field.
type Header struct {
	// AuthServID identifies the evaluating server.
	AuthServID string
	// Results lists each mechanism's outcome; empty means "none"
	// (no authentication was attempted).
	Results []Result
}

// Format renders the header value (without the "Authentication-Results:"
// field name).
func Format(h *Header) string {
	var sb strings.Builder
	sb.WriteString(h.AuthServID)
	if len(h.Results) == 0 {
		sb.WriteString("; none")
		return sb.String()
	}
	for _, r := range h.Results {
		fmt.Fprintf(&sb, "; %s=%s", r.Method, r.Value)
		if r.Reason != "" {
			fmt.Fprintf(&sb, " reason=%q", r.Reason)
		}
		for _, key := range sortedKeys(r.Properties) {
			fmt.Fprintf(&sb, " %s=%s", key, r.Properties[key])
		}
	}
	return sb.String()
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Parse parses a header value produced by Format (or a compatible
// implementation). Comments in parentheses are not supported; the
// measurement tooling never emits them.
func Parse(value string) (*Header, error) {
	parts := splitStatements(value)
	if len(parts) == 0 {
		return nil, fmt.Errorf("authres: empty header")
	}
	h := &Header{AuthServID: strings.TrimSpace(parts[0])}
	if h.AuthServID == "" {
		return nil, fmt.Errorf("authres: missing authserv-id")
	}
	for _, stmt := range parts[1:] {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || stmt == "none" {
			continue
		}
		res, err := parseResult(stmt)
		if err != nil {
			return nil, err
		}
		h.Results = append(h.Results, res)
	}
	return h, nil
}

// splitStatements splits on ';' while respecting quoted strings.
func splitStatements(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ';' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	out = append(out, cur.String())
	return out
}

func parseResult(stmt string) (Result, error) {
	res := Result{Properties: make(map[string]string)}
	tokens := tokenize(stmt)
	if len(tokens) == 0 {
		return res, fmt.Errorf("authres: empty result statement")
	}
	method, value, ok := strings.Cut(tokens[0], "=")
	if !ok || method == "" || value == "" {
		return res, fmt.Errorf("authres: malformed method %q", tokens[0])
	}
	res.Method, res.Value = method, value
	for _, tok := range tokens[1:] {
		name, val, ok := strings.Cut(tok, "=")
		if !ok {
			return res, fmt.Errorf("authres: malformed property %q", tok)
		}
		val = strings.Trim(val, `"`)
		if name == "reason" {
			res.Reason = val
			continue
		}
		res.Properties[name] = val
	}
	if len(res.Properties) == 0 {
		res.Properties = nil
	}
	return res, nil
}

// tokenize splits on spaces outside quotes.
func tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// Lookup returns the first result for the given method, or nil.
func (h *Header) Lookup(method string) *Result {
	for i := range h.Results {
		if strings.EqualFold(h.Results[i].Method, method) {
			return &h.Results[i]
		}
	}
	return nil
}

// SPF builds the conventional SPF result entry.
func SPF(result, mailFrom string) Result {
	return Result{
		Method: "spf", Value: result,
		Properties: map[string]string{"smtp.mailfrom": mailFrom},
	}
}

// DKIM builds the conventional DKIM result entry.
func DKIM(result, domain string) Result {
	r := Result{Method: "dkim", Value: result}
	if domain != "" {
		r.Properties = map[string]string{"header.d": domain}
	}
	return r
}

// DMARC builds the conventional DMARC result entry.
func DMARC(result, fromDomain string) Result {
	r := Result{Method: "dmarc", Value: result}
	if fromDomain != "" {
		r.Properties = map[string]string{"header.from": fromDomain}
	}
	return r
}
