package mtasim

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"math"
	mrand "math/rand"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/authres"
	"sendervalid/internal/dkim"
	"sendervalid/internal/dmarc"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/netsim"
	"sendervalid/internal/policy"
	"sendervalid/internal/resolver"
	"sendervalid/internal/smtp"
)

const (
	testSuffix   = "spf-test.dns-lab.example."
	notifySuffix = "dsav-mail.dns-lab.example."
)

var (
	senderV4 = netip.MustParseAddr("203.0.113.10")
	senderV6 = netip.MustParseAddr("2001:db8::10")
)

// world is a complete simulated environment: authoritative DNS with
// the full policy catalog plus the NotifyEmail zone, and a fabric.
type world struct {
	fabric  *netsim.Fabric
	dns     *dnsserver.Server
	log     *dnsserver.QueryLog
	dnsAddr string
	signer  *dkim.Signer
}

var (
	worldKeyOnce sync.Once
	worldRSAKey  *rsa.PrivateKey
	worldKeyTXT  string
)

func newWorld(t *testing.T) *world {
	t.Helper()
	worldKeyOnce.Do(func() {
		var err error
		worldRSAKey, err = rsa.GenerateKey(rand.Reader, 2048)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		worldKeyTXT, err = dkim.FormatKeyRecord(&worldRSAKey.PublicKey)
		if err != nil {
			t.Fatal(err)
		}
	})
	env := &policy.Env{Suffix: testSuffix, TimeScale: 0.01}
	neCfg := &policy.NotifyEmailConfig{
		Suffix:        notifySuffix,
		SenderV4:      senderV4,
		SenderV6:      senderV6,
		DKIMSelector:  "exp",
		DKIMKeyRecord: worldKeyTXT,
		Contact:       "contact@dns-lab.example",
		TimeScale:     0.01,
	}
	log := &dnsserver.QueryLog{}
	srv := &dnsserver.Server{
		Zones: []*dnsserver.Zone{
			{Suffix: testSuffix, Responders: policy.RespondersWithDMARC(env, "contact@dns-lab.example")},
			{Suffix: notifySuffix, LabelDepth: 1, Default: neCfg.Responder()},
		},
		Log: log,
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return &world{
		fabric:  netsim.NewFabric(),
		dns:     srv,
		log:     log,
		dnsAddr: addr.String(),
		signer:  &dkim.Signer{Domain: "", Selector: "exp", Key: worldRSAKey},
	}
}

func (w *world) startMTA(t *testing.T, id string, addr4 string, p Profile) *MTA {
	t.Helper()
	m := New(Config{
		ID:         id,
		Hostname:   id + ".mx.example",
		Addr4:      netip.MustParseAddr(addr4),
		Profile:    p,
		Fabric:     w.fabric,
		DNSAddr:    w.dnsAddr,
		SPFTimeout: 10 * time.Second,
		DNSTimeout: 3 * time.Second,
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// probe runs the study's probe sequence against an MTA for one test id
// and returns the error of the first failing step (nil if all passed).
func (w *world) probe(t *testing.T, mtaAddr, testID, mtaID string) error {
	t.Helper()
	c, err := smtp.Dial(context.Background(), w.fabric, mtaAddr+":25")
	if err != nil {
		return err
	}
	defer c.Abort()
	c.Timeout = 5 * time.Second
	if err := c.Hello("probe.dns-lab.example"); err != nil {
		return err
	}
	from := "spf-test@" + testID + "." + mtaID + "." + strings.TrimSuffix(testSuffix, ".")
	if err := c.Mail(from); err != nil {
		return err
	}
	var rcptErr error
	for _, user := range []string{"michael", "john.smith", "support", "postmaster"} {
		if rcptErr = c.Rcpt(user + "@target.example"); rcptErr == nil {
			break
		}
	}
	if rcptErr != nil {
		return rcptErr
	}
	_, _, err = c.DataCommand()
	return err
}

// queriesFor summarizes the queries logged for one MTA id.
func (w *world) queriesFor(mtaID string) []string {
	var out []string
	for _, e := range w.log.Entries() {
		if e.MTAID == mtaID {
			out = append(out, e.Type.String()+" "+e.Name)
		}
	}
	return out
}

func TestValidatingMTAProbeElicitsSPFQueries(t *testing.T) {
	w := newWorld(t)
	mta := w.startMTA(t, "m1", "10.0.0.1", Profile{
		ValidatesSPF: true, Phase: AtMail, AcceptAnyUser: true,
	})
	if err := w.probe(t, "10.0.0.1", "t12", "m1"); err != nil {
		t.Fatalf("probe: %v", err)
	}
	qs := w.queriesFor("m1")
	if len(qs) == 0 {
		t.Fatal("validating MTA issued no queries")
	}
	if !strings.HasPrefix(qs[0], "TXT t12.m1.") {
		t.Errorf("first query %q", qs[0])
	}
	if mta.Stats().SPFChecks != 1 {
		t.Errorf("SPF checks: %d", mta.Stats().SPFChecks)
	}
}

func TestNonValidatingMTASilent(t *testing.T) {
	w := newWorld(t)
	w.startMTA(t, "m2", "10.0.0.2", Profile{AcceptAnyUser: true})
	if err := w.probe(t, "10.0.0.2", "t12", "m2"); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if qs := w.queriesFor("m2"); len(qs) != 0 {
		t.Errorf("non-validating MTA issued queries: %v", qs)
	}
}

func TestPostDataValidatorInvisibleToProbes(t *testing.T) {
	w := newWorld(t)
	mta := w.startMTA(t, "m3", "10.0.0.3", Profile{
		ValidatesSPF: true, Phase: PostData, AcceptAnyUser: true,
	})
	if err := w.probe(t, "10.0.0.3", "t12", "m3"); err != nil {
		t.Fatalf("probe: %v", err)
	}
	mta.Wait()
	if qs := w.queriesFor("m3"); len(qs) != 0 {
		t.Errorf("post-data validator visible to probe: %v", qs)
	}
	if mta.Stats().SPFChecks != 0 {
		t.Error("post-data validator ran a check without a message")
	}
}

func TestPostDataValidatorRunsAfterDelivery(t *testing.T) {
	w := newWorld(t)
	mta := w.startMTA(t, "m4", "10.0.0.4", Profile{
		ValidatesSPF: true, Phase: PostData, AcceptAnyUser: true,
	})
	// Deliver a complete message (the NotifyEmail path).
	c, err := smtp.Dial(context.Background(), w.fabric, "10.0.0.4:25")
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 5 * time.Second
	domain := "d0100." + strings.TrimSuffix(notifySuffix, ".")
	if err := c.Hello("mta.dns-lab.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("spf-test@" + domain); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("operator@target.example"); err != nil {
		t.Fatal(err)
	}
	msg := "From: spf-test@" + domain + "\r\nTo: operator@target.example\r\nSubject: notice\r\n\r\nbody\r\n"
	if err := c.Data([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	_ = c.Quit()
	mta.Wait()
	found := false
	for _, q := range w.queriesFor("d0100") {
		if strings.HasPrefix(q, "TXT d0100.") {
			found = true
		}
	}
	if !found {
		t.Errorf("post-data validation did not fetch the policy: %v", w.queriesFor("d0100"))
	}
}

func TestSpamRejectingMTA(t *testing.T) {
	w := newWorld(t)
	w.startMTA(t, "m5", "10.0.0.5", Profile{
		ValidatesSPF: true, RejectProbe: true,
		RejectText: "5.7.1 Message rejected as spam", AcceptAnyUser: true,
	})
	err := w.probe(t, "10.0.0.5", "t12", "m5")
	if err == nil {
		t.Fatal("spam rejector accepted the probe")
	}
	if !strings.Contains(strings.ToLower(err.Error()), "spam") {
		t.Errorf("rejection text: %v", err)
	}
	if qs := w.queriesFor("m5"); len(qs) != 0 {
		t.Errorf("rejector still validated: %v", qs)
	}
}

func TestPostmasterWhitelisting(t *testing.T) {
	w := newWorld(t)
	// The MTA accepts only postmaster and whitelists it: the probe's
	// recipient ladder ends at postmaster and validation is skipped.
	w.startMTA(t, "m6", "10.0.0.6", Profile{
		ValidatesSPF: true, Phase: AtData, WhitelistPostmaster: true,
	})
	if err := w.probe(t, "10.0.0.6", "t12", "m6"); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if qs := w.queriesFor("m6"); len(qs) != 0 {
		t.Errorf("whitelisting MTA validated postmaster mail: %v", qs)
	}

	// The same MTA validates when a named user is accepted.
	w2 := newWorld(t)
	w2.startMTA(t, "m7", "10.0.0.7", Profile{
		ValidatesSPF: true, Phase: AtData, WhitelistPostmaster: true,
		ValidUsers: []string{"michael"},
	})
	if err := w2.probe(t, "10.0.0.7", "t12", "m7"); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if qs := w2.queriesFor("m7"); len(qs) == 0 {
		t.Error("named-recipient mail skipped validation")
	}
}

func TestRejectPostmaster(t *testing.T) {
	w := newWorld(t)
	w.startMTA(t, "m8", "10.0.0.8", Profile{ValidatesSPF: true, RejectPostmaster: true})
	err := w.probe(t, "10.0.0.8", "t12", "m8")
	smtpErr, ok := err.(*smtp.Error)
	if !ok || smtpErr.Code != 550 {
		t.Fatalf("probe should fail with 550: %v", err)
	}
}

func TestPartialSPFValidator(t *testing.T) {
	w := newWorld(t)
	w.startMTA(t, "m9", "10.0.0.9", Profile{
		ValidatesSPF: true, PartialSPF: true, Phase: AtMail, AcceptAnyUser: true,
	})
	// t01's policy needs follow-ups; a partial validator fetches only
	// the base TXT (§6.1's 690 domains).
	if err := w.probe(t, "10.0.0.9", "t01", "m9"); err != nil {
		t.Fatalf("probe: %v", err)
	}
	qs := w.queriesFor("m9")
	if len(qs) != 1 || !strings.HasPrefix(qs[0], "TXT t01.m9.") {
		t.Errorf("partial validator queries: %v", qs)
	}
}

func TestHELOCheckingMTA(t *testing.T) {
	w := newWorld(t)
	mta := w.startMTA(t, "m10", "10.0.0.10", Profile{
		ValidatesSPF: true, ChecksHELO: true, Phase: AtMail, AcceptAnyUser: true,
	})
	// Probe with a HELO name under the test zone so the HELO lookup is
	// observable.
	c, err := smtp.Dial(context.Background(), w.fabric, "10.0.0.10:25")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	c.Timeout = 5 * time.Second
	helo := "helo.t03.m10." + strings.TrimSuffix(testSuffix, ".")
	if err := c.Hello(helo); err != nil {
		t.Fatal(err)
	}
	from := "spf-test@t03.m10." + strings.TrimSuffix(testSuffix, ".")
	if err := c.Mail(from); err != nil {
		t.Fatal(err)
	}
	if mta.Stats().HELOChecks != 1 {
		t.Errorf("HELO checks: %d", mta.Stats().HELOChecks)
	}
	// Both the HELO policy and the MAIL policy must have been fetched —
	// the paper found every HELO-checking MTA continued to MAIL.
	heloSeen, mailSeen := false, false
	for _, q := range w.queriesFor("m10") {
		if strings.HasPrefix(q, "TXT helo.t03.") {
			heloSeen = true
		}
		if strings.HasPrefix(q, "TXT t03.m10.") {
			mailSeen = true
		}
	}
	if !heloSeen || !mailSeen {
		t.Errorf("helo=%v mail=%v: %v", heloSeen, mailSeen, w.queriesFor("m10"))
	}
}

func TestEnforcingMTARejectsSpoof(t *testing.T) {
	w := newWorld(t)
	w.startMTA(t, "m11", "10.0.0.11", Profile{
		ValidatesSPF: true, Phase: AtMail, EnforceSPF: true, AcceptAnyUser: true,
	})
	c, err := smtp.Dial(context.Background(), w.fabric, "10.0.0.11:25")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	c.Timeout = 5 * time.Second
	if err := c.Hello("attacker.example"); err != nil {
		t.Fatal(err)
	}
	// The NotifyEmail domain authorizes only the real sender; the
	// probe client's fabric address is not it.
	domain := "d0200." + strings.TrimSuffix(notifySuffix, ".")
	err = c.Mail("spoofed@" + domain)
	smtpErr, ok := err.(*smtp.Error)
	if !ok || smtpErr.Code != 550 || !strings.Contains(smtpErr.Message, "SPF") {
		t.Fatalf("spoofed MAIL: %v", err)
	}
}

func TestFullValidationOnDeliveredSignedMessage(t *testing.T) {
	w := newWorld(t)
	mta := w.startMTA(t, "m12", "10.0.0.12", Profile{
		ValidatesSPF: true, ValidatesDKIM: true, ValidatesDMARC: true,
		Phase: AtData, AcceptAnyUser: true,
	})
	domain := "d0300." + strings.TrimSuffix(notifySuffix, ".")
	raw := "From: notifier <spf-test@" + domain + ">\r\n" +
		"To: operator@target.example\r\n" +
		"Subject: vulnerability notification\r\n" +
		"Date: Mon, 05 Oct 2020 10:00:00 +0000\r\n" +
		"Message-ID: <n1@" + domain + ">\r\n" +
		"\r\nDetails within.\r\n"
	signer := &dkim.Signer{Domain: domain, Selector: "exp", Key: worldRSAKey}
	signed, err := signer.Sign([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}

	c, err := smtp.Dial(context.Background(), w.fabric, "10.0.0.12:25")
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 10 * time.Second
	if err := c.Hello("mta.dns-lab.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("spf-test@" + domain); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("operator@target.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Data(signed); err != nil {
		t.Fatalf("delivery: %v", err)
	}
	_ = c.Quit()
	mta.Close()

	st := mta.Stats()
	if st.SPFChecks != 1 || st.DKIMChecks != 1 || st.DMARCChecks != 1 {
		t.Errorf("checks: %+v", st)
	}
	if st.MessagesAccepted != 1 {
		t.Errorf("accepted: %d (DMARC should pass via DKIM+SPF)", st.MessagesAccepted)
	}
	// All three lookups must appear in the log: SPF TXT, DKIM key,
	// DMARC policy.
	var spfSeen, dkimSeen, dmarcSeen bool
	for _, q := range w.queriesFor("d0300") {
		switch {
		case strings.HasPrefix(q, "TXT d0300."):
			spfSeen = true
		case strings.HasPrefix(q, "TXT exp._domainkey.d0300."):
			dkimSeen = true
		case strings.HasPrefix(q, "TXT _dmarc.d0300."):
			dmarcSeen = true
		}
	}
	if !spfSeen || !dkimSeen || !dmarcSeen {
		t.Errorf("spf=%v dkim=%v dmarc=%v: %v", spfSeen, dkimSeen, dmarcSeen, w.queriesFor("d0300"))
	}
}

func TestDMARCOnlyMTA(t *testing.T) {
	// The paper's "bewildering" 169 domains: DMARC lookups without SPF
	// or DKIM (§6.1).
	w := newWorld(t)
	mta := w.startMTA(t, "m13", "10.0.0.13", Profile{
		ValidatesDMARC: true, AcceptAnyUser: true,
	})
	domain := "d0400." + strings.TrimSuffix(notifySuffix, ".")
	c, err := smtp.Dial(context.Background(), w.fabric, "10.0.0.13:25")
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 10 * time.Second
	_ = c.Hello("mta.dns-lab.example")
	_ = c.Mail("spf-test@" + domain)
	_ = c.Rcpt("x@target.example")
	msg := "From: spf-test@" + domain + "\r\nSubject: s\r\n\r\nb\r\n"
	if err := c.Data([]byte(msg)); err != nil {
		// EnforceDMARC (implied by ValidatesDMARC) rejects: SPF/DKIM
		// were never checked so DMARC fails against p=reject.
		if se, ok := err.(*smtp.Error); !ok || se.Code != 550 {
			t.Fatalf("delivery: %v", err)
		}
	}
	_ = c.Quit()
	mta.Close()
	var dmarcSeen, spfSeen bool
	for _, q := range w.queriesFor("d0400") {
		if strings.HasPrefix(q, "TXT _dmarc.") {
			dmarcSeen = true
		}
		if q == "TXT d0400."+notifySuffix {
			spfSeen = true
		}
	}
	if !dmarcSeen || spfSeen {
		t.Errorf("dmarc=%v spf=%v: %v", dmarcSeen, spfSeen, w.queriesFor("d0400"))
	}
}

func TestIPv4OnlyResolverFailsIPv6Policy(t *testing.T) {
	w := newWorld(t)
	w.startMTA(t, "m14", "10.0.0.14", Profile{
		ValidatesSPF: true, Phase: AtMail, AcceptAnyUser: true,
		ResolverTransport: resolver.IPv4Only,
	})
	_ = w.probe(t, "10.0.0.14", "t10", "m14")
	// The base policy is fetched; the l1 follow-up is v6-only and the
	// IPv4-only resolver cannot retrieve it.
	var l1OK bool
	for _, e := range w.log.Entries() {
		if e.MTAID == "m14" && len(e.Rest) == 1 && e.Rest[0] == "l1" && e.Transport != "" {
			// Query arrived but was refused (v4): retrieval failed.
			_ = e
		}
	}
	// Verify through the resolver directly: the v6-only name must fail.
	res := resolver.New(resolver.Config{Server: w.dnsAddr, Transport: resolver.IPv4Only})
	_, err := res.LookupTXT(context.Background(), "l1.t10.m14."+strings.TrimSuffix(testSuffix, "."))
	if err == nil {
		t.Error("IPv4-only resolver retrieved a v6-only policy")
	}
	_ = l1OK
}

func TestProfileSampling(t *testing.T) {
	rng := mrand.New(mrand.NewSource(42))
	rates := PaperRates()
	const n = 20000
	var spfCount, dkimCount, dmarcCount, postData, parallel, rejectors int
	for i := 0; i < n; i++ {
		p := rates.Sample(rng)
		if p.ValidatesSPF {
			spfCount++
			if p.Phase == PostData {
				postData++
			}
			if p.SPFOptions.Prefetch {
				parallel++
			}
		}
		if p.ValidatesDKIM {
			dkimCount++
		}
		if p.ValidatesDMARC {
			dmarcCount++
		}
		if p.RejectProbe {
			rejectors++
		}
	}
	within := func(got int, base int, want, tol float64) bool {
		return math.Abs(float64(got)/float64(base)-want) < tol
	}
	// Table 4 margins: SPF 14056+6322+2156+169 = 22703 of 28806 ≈ 79%.
	if !within(spfCount, n, 0.788, 0.02) {
		t.Errorf("SPF rate %.3f", float64(spfCount)/n)
	}
	if !within(dkimCount, n, 0.757, 0.02) {
		t.Errorf("DKIM rate %.3f", float64(dkimCount)/n)
	}
	if !within(dmarcCount, n, 0.501, 0.02) {
		t.Errorf("DMARC rate %.3f", float64(dmarcCount)/n)
	}
	if !within(postData, spfCount, 0.17, 0.02) {
		t.Errorf("post-data rate %.3f", float64(postData)/float64(spfCount))
	}
	if !within(parallel, spfCount, 0.03, 0.01) {
		t.Errorf("parallel rate %.3f", float64(parallel)/float64(spfCount))
	}
	if !within(rejectors, n, 0.28, 0.02) {
		t.Errorf("rejector rate %.3f", float64(rejectors)/n)
	}
}

func TestSampleDeterminism(t *testing.T) {
	a := PaperRates().Sample(mrand.New(mrand.NewSource(7)))
	b := PaperRates().Sample(mrand.New(mrand.NewSource(7)))
	if a.ValidatesSPF != b.ValidatesSPF || a.Phase != b.Phase ||
		a.RejectProbe != b.RejectProbe || a.SPFOptions != b.SPFOptions {
		t.Error("sampling is not deterministic for equal seeds")
	}
}

func TestWeightedIndex(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[weightedIndex(rng, []float64{1, 2, 7})]++
	}
	if math.Abs(float64(counts[0])/30000-0.1) > 0.02 ||
		math.Abs(float64(counts[2])/30000-0.7) > 0.02 {
		t.Errorf("weighted distribution %v", counts)
	}
	if weightedIndex(rng, []float64{0, 0}) != 0 {
		t.Error("zero weights")
	}
}

func TestMTALifecycle(t *testing.T) {
	w := newWorld(t)
	m := New(Config{
		ID: "m-none", Fabric: w.fabric, DNSAddr: w.dnsAddr,
	})
	if err := m.Start(); err == nil {
		t.Error("MTA with no addresses started")
	}
	m2 := w.startMTA(t, "m15", "10.0.0.15", Profile{})
	m2.Close()
	m2.Close() // idempotent
	if _, v6 := m2.Addrs(); v6.IsValid() {
		t.Error("unexpected v6 address")
	}
	if m2.ID() != "m15" || m2.Profile().ValidatesSPF {
		t.Error("accessors")
	}
}

func TestDMARCAggregateReports(t *testing.T) {
	w := newWorld(t)
	mta := w.startMTA(t, "m20", "10.0.0.20", Profile{
		ValidatesSPF: true, ValidatesDMARC: true,
		Phase: AtData, AcceptAnyUser: true,
	})
	domain := "d0500." + strings.TrimSuffix(notifySuffix, ".")
	// A spoofed delivery: SPF fails, no DKIM, DMARC p=reject applies.
	c, err := smtp.Dial(context.Background(), w.fabric, "10.0.0.20:25")
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 10 * time.Second
	_ = c.Hello("attacker.example")
	_ = c.Mail("spoof@" + domain)
	_ = c.Rcpt("x@target.example")
	msg := "From: spoof@" + domain + "\r\nSubject: s\r\n\r\nb\r\n"
	_ = c.Data([]byte(msg)) // rejected by DMARC; the evaluation still counts
	_ = c.Quit()
	mta.Close()

	reports := mta.AggregateReports()
	if len(reports) != 1 {
		t.Fatalf("%d reports", len(reports))
	}
	f := reports[0]
	if f.PolicyPublished.Domain != domain || f.PolicyPublished.Policy != "reject" {
		t.Errorf("policy published: %+v", f.PolicyPublished)
	}
	if len(f.Records) != 1 || f.Records[0].Row.Count != 1 {
		t.Fatalf("records: %+v", f.Records)
	}
	row := f.Records[0]
	if row.Row.PolicyEvaluated.Disposition != "reject" ||
		row.Row.PolicyEvaluated.SPF != "fail" {
		t.Errorf("evaluated: %+v", row.Row.PolicyEvaluated)
	}
	if row.Identifiers.HeaderFrom != domain {
		t.Errorf("header from %q", row.Identifiers.HeaderFrom)
	}
	// The report serializes to valid XML.
	data, err := dmarc.MarshalReport(f)
	if err != nil || !strings.Contains(string(data), "<feedback>") {
		t.Errorf("marshal: %v", err)
	}
	// Draining resets: a second call yields nothing.
	if again := mta.AggregateReports(); len(again) != 0 {
		t.Errorf("accumulators not drained: %d", len(again))
	}
}

func TestAuthenticationResultsStamping(t *testing.T) {
	w := newWorld(t)
	mta := w.startMTA(t, "m21", "10.0.0.21", Profile{
		ValidatesSPF: true, ValidatesDKIM: true, ValidatesDMARC: true,
		Phase: AtData, AcceptAnyUser: true,
	})
	domain := "d0600." + strings.TrimSuffix(notifySuffix, ".")
	raw := "From: spf-test@" + domain + "\r\nSubject: s\r\n" +
		"Date: Mon, 05 Oct 2020 10:00:00 +0000\r\n\r\nbody\r\n"
	signer := &dkim.Signer{Domain: domain, Selector: "exp", Key: worldRSAKey}
	signed, err := signer.Sign([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver from the authorized sender address so SPF passes.
	dialer := w.fabric.BoundDialer(senderV4, netip.Addr{})
	c, err := smtp.Dial(context.Background(), dialer, "10.0.0.21:25")
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 10 * time.Second
	if err := c.Hello("mta.dns-lab.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mail("spf-test@" + domain); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("x@target.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Data(signed); err != nil {
		t.Fatal(err)
	}
	_ = c.Quit()
	mta.Close()

	value := mta.AuthResults()
	if value == "" {
		t.Fatal("no Authentication-Results recorded")
	}
	parsed, err := authres.Parse(value)
	if err != nil {
		t.Fatalf("unparsable header %q: %v", value, err)
	}
	if r := parsed.Lookup("spf"); r == nil || r.Value != "pass" {
		t.Errorf("spf: %+v (%s)", r, value)
	}
	if r := parsed.Lookup("dkim"); r == nil || r.Value != "pass" || r.Properties["header.d"] != domain {
		t.Errorf("dkim: %+v (%s)", r, value)
	}
	if r := parsed.Lookup("dmarc"); r == nil || r.Value != "pass" {
		t.Errorf("dmarc: %+v (%s)", r, value)
	}
}
