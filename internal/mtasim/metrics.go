package mtasim

import (
	"sendervalid/internal/telemetry"
)

// Metrics aggregates activity across a fleet of simulated MTAs. A
// sweep runs thousands of MTA instances, so per-instance metric
// families would be unbounded cardinality; instead one shared Metrics
// is handed to every MTA via Config.Metrics and incremented alongside
// each instance's private Stats. Nil means no fleet accounting.
type Metrics struct {
	sessions           telemetry.Counter
	rejectedSessions   telemetry.Counter
	tempfailedSessions telemetry.Counter
	spfChecks          telemetry.Counter
	heloChecks         telemetry.Counter
	dkimChecks         telemetry.Counter
	dmarcChecks        telemetry.Counter
	messagesAccepted   telemetry.Counter
	messagesRejected   telemetry.Counter
}

// add applies the delta between two Stats snapshots to the fleet
// counters. Called outside the MTA's mutex with values captured under
// it, so fleet totals stay exact without widening any lock.
func (f *Metrics) add(before, after Stats) {
	bump := func(c *telemetry.Counter, b, a int) {
		if a > b {
			c.Add(uint64(a - b))
		}
	}
	bump(&f.sessions, before.Sessions, after.Sessions)
	bump(&f.rejectedSessions, before.RejectedSessions, after.RejectedSessions)
	bump(&f.tempfailedSessions, before.TempfailedSessions, after.TempfailedSessions)
	bump(&f.spfChecks, before.SPFChecks, after.SPFChecks)
	bump(&f.heloChecks, before.HELOChecks, after.HELOChecks)
	bump(&f.dkimChecks, before.DKIMChecks, after.DKIMChecks)
	bump(&f.dmarcChecks, before.DMARCChecks, after.DMARCChecks)
	bump(&f.messagesAccepted, before.MessagesAccepted, after.MessagesAccepted)
	bump(&f.messagesRejected, before.MessagesRejected, after.MessagesRejected)
}

// RegisterMetrics publishes the fleet totals under the mtasim_
// namespace.
func (f *Metrics) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.MustCounter("mtasim_sessions_total",
		"SMTP sessions opened against the simulated fleet.",
		&f.sessions, labels...)
	reg.MustCounter("mtasim_sessions_rejected_total",
		"Sessions 554'd at connect by a RejectProbe profile.",
		&f.rejectedSessions, labels...)
	reg.MustCounter("mtasim_sessions_tempfailed_total",
		"Sessions 421'd at connect by a greylisting profile.",
		&f.tempfailedSessions, labels...)
	reg.MustCounter("mtasim_spf_checks_total",
		"SPF evaluations run by the fleet.",
		&f.spfChecks, labels...)
	reg.MustCounter("mtasim_helo_checks_total",
		"HELO-identity SPF evaluations run by the fleet.",
		&f.heloChecks, labels...)
	reg.MustCounter("mtasim_dkim_checks_total",
		"DKIM verifications run by the fleet.",
		&f.dkimChecks, labels...)
	reg.MustCounter("mtasim_dmarc_checks_total",
		"DMARC evaluations run by the fleet.",
		&f.dmarcChecks, labels...)
	reg.MustCounter("mtasim_messages_accepted_total",
		"Messages accepted to completion by the fleet.",
		&f.messagesAccepted, labels...)
	reg.MustCounter("mtasim_messages_rejected_total",
		"Messages 550'd by an enforcing profile.",
		&f.messagesRejected, labels...)
}
