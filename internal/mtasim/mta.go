package mtasim

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"sendervalid/internal/authres"
	"sendervalid/internal/dkim"
	"sendervalid/internal/dmarc"
	"sendervalid/internal/netsim"
	"sendervalid/internal/resolver"
	"sendervalid/internal/smtp"
	"sendervalid/internal/spf"
)

// Config wires one simulated MTA into the world.
type Config struct {
	// ID is the MTA's identifier in the experiment ("m00042").
	ID string
	// Hostname is announced over SMTP.
	Hostname string
	// Addr4 and Addr6 are the MTA's synthetic public addresses; it
	// listens on port 25 of each valid one.
	Addr4 netip.Addr
	Addr6 netip.Addr
	// Profile governs behaviour.
	Profile Profile
	// Fabric carries the MTA's SMTP traffic.
	Fabric *netsim.Fabric
	// DNSAddr and DNSAddr6 are the upstream DNS endpoints for the
	// MTA's resolver.
	DNSAddr  string
	DNSAddr6 string
	// SPFTimeout bounds one SPF evaluation. Zero means the RFC's 20 s.
	SPFTimeout time.Duration
	// DNSTimeout bounds one DNS exchange. Zero means 5 s.
	DNSTimeout time.Duration
	// PostDataDelay is how long after accepting a message a PostData
	// validator waits before validating (Figure 2's positive tail).
	PostDataDelay time.Duration
	// BlacklistedSources restricts RejectProbe to sessions from these
	// client addresses (the study's probing client landed on real
	// blacklists, §6.2; mail from other sources is unaffected). Empty
	// means RejectProbe rejects every session.
	BlacklistedSources []netip.Addr
	// Metrics, when non-nil, receives fleet-level telemetry: every
	// Stats increment is mirrored into the shared counters.
	Metrics *Metrics
}

// Stats counts an MTA's activity.
type Stats struct {
	Sessions           int
	RejectedSessions   int
	TempfailedSessions int
	SPFChecks          int
	HELOChecks         int
	DKIMChecks         int
	DMARCChecks        int
	MessagesAccepted   int
	MessagesRejected   int
}

// MTA is one simulated receiving mail server.
type MTA struct {
	cfg      Config
	resolver *resolver.Resolver
	checker  *spf.Checker
	server   *smtp.Server

	mu           sync.Mutex
	stats        Stats
	async        sync.WaitGroup
	closed       bool
	accumulators map[string]*dmarc.Accumulator
	lastAuthRes  string
}

// New builds an MTA from cfg. Start must be called to serve.
func New(cfg Config) *MTA {
	res := resolver.New(resolver.Config{
		Server:     cfg.DNSAddr,
		Server6:    cfg.DNSAddr6,
		Transport:  cfg.Profile.ResolverTransport,
		DisableTCP: cfg.Profile.ResolverNoTCP,
		Timeout:    cfg.DNSTimeout,
	})
	opts := cfg.Profile.SPFOptions
	if cfg.SPFTimeout > 0 && opts.Timeout == 0 {
		opts.Timeout = cfg.SPFTimeout
	}
	opts.Receiver = cfg.Hostname
	m := &MTA{
		cfg:      cfg,
		resolver: res,
		checker:  &spf.Checker{Resolver: res, Options: opts},
	}
	m.server = &smtp.Server{
		Hostname:    cfg.Hostname,
		Extensions:  []string{"8BITMIME", "SIZE 10485760"},
		ReadTimeout: 120 * time.Second,
		Handler: smtp.Handler{
			OnConnect: m.onConnect,
			OnHelo:    m.onHelo,
			OnMail:    m.onMail,
			OnRcpt:    m.onRcpt,
			OnData:    m.onData,
			OnMessage: m.onMessage,
		},
	}
	return m
}

// ID returns the MTA's identifier.
func (m *MTA) ID() string { return m.cfg.ID }

// Profile returns the MTA's behaviour profile.
func (m *MTA) Profile() Profile { return m.cfg.Profile }

// Addrs returns the MTA's listening addresses.
func (m *MTA) Addrs() (netip.Addr, netip.Addr) { return m.cfg.Addr4, m.cfg.Addr6 }

// Start registers the MTA's listeners on the fabric and begins
// serving.
func (m *MTA) Start() error {
	started := 0
	for _, addr := range []netip.Addr{m.cfg.Addr4, m.cfg.Addr6} {
		if !addr.IsValid() {
			continue
		}
		ln, err := m.cfg.Fabric.Listen(netip.AddrPortFrom(addr, 25))
		if err != nil {
			return fmt.Errorf("mtasim: %s: %w", m.cfg.ID, err)
		}
		go m.server.Serve(ln)
		started++
	}
	if started == 0 {
		return fmt.Errorf("mtasim: %s has no valid addresses", m.cfg.ID)
	}
	return nil
}

// Close stops serving and waits for asynchronous validations.
func (m *MTA) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.server.Close()
	m.async.Wait()
}

// Wait blocks until asynchronous (post-data) validations finish.
func (m *MTA) Wait() { m.async.Wait() }

// Stats returns a snapshot of the MTA's counters.
func (m *MTA) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *MTA) bump(f func(*Stats)) {
	m.mu.Lock()
	before := m.stats
	f(&m.stats)
	after := m.stats
	m.mu.Unlock()
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.add(before, after)
	}
}

// --- SMTP hooks ---

func (m *MTA) onConnect(s *smtp.Session) *smtp.Reply {
	var n int
	m.bump(func(st *Stats) { st.Sessions++; n = st.Sessions })
	if tf := m.cfg.Profile.TempfailSessions; tf > 0 && n <= tf {
		m.bump(func(st *Stats) { st.TempfailedSessions++ })
		return &smtp.Reply{Code: 421, Text: m.cfg.Hostname + " greylisted, try again later"}
	}
	if m.cfg.Profile.RejectProbe && m.blacklisted(s.ClientIP) {
		m.bump(func(st *Stats) { st.RejectedSessions++ })
		return &smtp.Reply{Code: 554, Text: m.cfg.Profile.RejectText}
	}
	return nil
}

// blacklisted reports whether the client address triggers the
// profile's probe rejection.
func (m *MTA) blacklisted(ip netip.Addr) bool {
	if len(m.cfg.BlacklistedSources) == 0 {
		return true
	}
	for _, b := range m.cfg.BlacklistedSources {
		if b == ip {
			return true
		}
	}
	return false
}

func (m *MTA) onHelo(s *smtp.Session) *smtp.Reply {
	// The HELO identity check runs together with MAIL validation (see
	// runSPF): the paper observed every HELO-checking MTA proceeding
	// to the MAIL identity (§7.3), which matches implementations that
	// evaluate both identities in one validation pass.
	return nil
}

func (m *MTA) onMail(s *smtp.Session, from string) *smtp.Reply {
	p := m.cfg.Profile
	if p.ValidatesSPF && m.effectivePhase() == AtMail {
		outcome := m.runSPF(s, from)
		if outcome != nil && p.EnforceSPF && outcome.Result == spf.Fail {
			m.bump(func(st *Stats) { st.MessagesRejected++ })
			return &smtp.Reply{Code: 550, Text: "5.7.1 SPF validation failed for " + smtp.DomainOf(from)}
		}
	}
	return nil
}

// effectivePhase resolves the configured phase against the whitelist
// constraint: a postmaster-whitelisting MTA cannot decide at MAIL
// time, so it defers to DATA.
func (m *MTA) effectivePhase() ValidationPhase {
	p := m.cfg.Profile
	if p.Phase == AtMail && p.WhitelistPostmaster {
		return AtData
	}
	return p.Phase
}

func (m *MTA) onRcpt(s *smtp.Session, to string) *smtp.Reply {
	p := m.cfg.Profile
	local := strings.ToLower(smtp.LocalOf(to))
	if local == "postmaster" {
		if p.RejectPostmaster {
			return smtp.ReplyNoSuchUser
		}
		return nil
	}
	if p.AcceptAnyUser {
		return nil
	}
	for _, u := range p.ValidUsers {
		if strings.EqualFold(u, local) {
			return nil
		}
	}
	return smtp.ReplyNoSuchUser
}

func (m *MTA) onData(s *smtp.Session) *smtp.Reply {
	p := m.cfg.Profile
	if !p.ValidatesSPF || m.effectivePhase() != AtData {
		return nil
	}
	if m.whitelisted(s) {
		return nil
	}
	outcome := m.runSPF(s, s.MailFrom)
	if outcome != nil && p.EnforceSPF && outcome.Result == spf.Fail {
		m.bump(func(st *Stats) { st.MessagesRejected++ })
		return &smtp.Reply{Code: 550, Text: "5.7.1 SPF validation failed"}
	}
	return nil
}

// whitelisted reports whether sender validation is skipped because
// every accepted recipient is postmaster.
func (m *MTA) whitelisted(s *smtp.Session) bool {
	if !m.cfg.Profile.WhitelistPostmaster || len(s.RcptTo) == 0 {
		return false
	}
	for _, rcpt := range s.RcptTo {
		if !strings.EqualFold(smtp.LocalOf(rcpt), "postmaster") {
			return false
		}
	}
	return true
}

func (m *MTA) onMessage(s *smtp.Session, msg []byte) *smtp.Reply {
	p := m.cfg.Profile
	clientIP, mailFrom, helo := s.ClientIP, s.MailFrom, s.Helo
	whitelisted := m.whitelisted(s)

	if p.ValidatesSPF && m.effectivePhase() == PostData && !whitelisted {
		// Validation after delivery: runs in the background, after the
		// 250 reply — invisible to probes, visible (late) to the
		// NotifyEmail experiment (Figure 2's positive tail).
		m.async.Add(1)
		go func() {
			defer m.async.Done()
			if m.cfg.PostDataDelay > 0 {
				time.Sleep(m.cfg.PostDataDelay)
			}
			sess := &smtp.Session{ClientIP: clientIP, MailFrom: mailFrom, Helo: helo}
			m.runSPF(sess, mailFrom)
		}()
	}

	var spfResult spf.Result = spf.None
	spfDomain := smtp.DomainOf(mailFrom)
	if v, ok := s.Meta["spf"].(spf.Result); ok {
		spfResult = v
	}

	results := &authres.Header{AuthServID: m.cfg.Hostname}
	if p.ValidatesSPF {
		results.Results = append(results.Results,
			authres.SPF(string(spfResult), mailFrom))
	}

	var dkimResult dkim.Result = dkim.ResultNone
	dkimDomain := ""
	if p.ValidatesDKIM {
		m.bump(func(st *Stats) { st.DKIMChecks++ })
		verifier := &dkim.Verifier{Resolver: m.resolver}
		v := verifier.Verify(context.Background(), msg)
		dkimResult, dkimDomain = v.Result, v.Domain
		results.Results = append(results.Results,
			authres.DKIM(string(dkimResult), dkimDomain))
	}

	if p.ValidatesDMARC {
		m.bump(func(st *Stats) { st.DMARCChecks++ })
		parsed, err := dkim.ParseMessage(msg)
		fromDomain := spfDomain
		if err == nil {
			if d := dkim.AddressDomain(parsed.Get("From")); d != "" {
				fromDomain = d
			}
		}
		eval := (&dmarc.Evaluator{Resolver: m.resolver}).Evaluate(context.Background(), dmarc.Inputs{
			FromDomain: fromDomain,
			SPFResult:  spfResult, SPFDomain: spfDomain,
			DKIMResult: dkimResult, DKIMDomain: dkimDomain,
		})
		m.recordDMARC(fromDomain, dmarc.Observation{
			SourceIP:     s.ClientIP,
			HeaderFrom:   fromDomain,
			EnvelopeFrom: mailFrom,
			Evaluation:   eval,
			SPFResult:    string(spfResult), SPFDomain: spfDomain,
			DKIMResult: string(dkimResult), DKIMDomain: dkimDomain,
		})
		results.Results = append(results.Results,
			authres.DMARC(string(eval.Result), fromDomain))
		if p.EnforceDMARC && eval.Result == dmarc.ResultFail && eval.Disposition == dmarc.Reject {
			m.stampAuthResults(s, results)
			m.bump(func(st *Stats) { st.MessagesRejected++ })
			return &smtp.Reply{Code: 550, Text: "5.7.1 rejected by DMARC policy of " + fromDomain}
		}
	}

	m.stampAuthResults(s, results)
	m.bump(func(st *Stats) { st.MessagesAccepted++ })
	return nil
}

// stampAuthResults records the RFC 8601 Authentication-Results value
// the MTA would prepend to the delivered message.
func (m *MTA) stampAuthResults(s *smtp.Session, h *authres.Header) {
	value := authres.Format(h)
	if s.Meta != nil {
		s.Meta["authentication-results"] = value
	}
	m.mu.Lock()
	m.lastAuthRes = value
	m.mu.Unlock()
}

// AuthResults returns the Authentication-Results value of the most
// recently processed message, or "" before any delivery.
func (m *MTA) AuthResults() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastAuthRes
}

// runSPF performs the SPF check for the session — the HELO identity
// first when the profile checks it, then the MAIL identity (or the
// partial fetch-only variant) — and records the result.
func (m *MTA) runSPF(s *smtp.Session, from string) *spf.Outcome {
	domain := smtp.DomainOf(from)
	if domain == "" {
		domain = s.Helo
	}
	m.bump(func(st *Stats) { st.SPFChecks++ })
	ctx := context.Background()
	if m.cfg.Profile.PartialSPF {
		// Fetch the policy but never evaluate it — no follow-up
		// queries (§6.1's 690 partial validators).
		_, _ = m.resolver.LookupTXT(ctx, domain)
		return nil
	}
	if m.cfg.Profile.ChecksHELO && s.Helo != "" {
		m.bump(func(st *Stats) { st.HELOChecks++ })
		// Per the paper (§7.3), the HELO outcome is effectively
		// ignored: evaluation proceeds to the MAIL identity always.
		_ = m.checker.CheckHost(ctx, s.ClientIP, s.Helo, "postmaster@"+s.Helo, s.Helo)
	}
	out := m.checker.CheckHost(ctx, s.ClientIP, domain, from, s.Helo)
	if s.Meta != nil {
		s.Meta["spf"] = out.Result
	}
	return out
}

// recordDMARC feeds the evaluation into the per-policy-domain
// aggregate-report accumulator (RFC 7489 §7.2) — the feedback channel
// through which DMARC-validating receivers report back to domain
// owners, and one of the study's attribution channels (§5.3).
func (m *MTA) recordDMARC(policyDomain string, obs dmarc.Observation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.accumulators == nil {
		m.accumulators = make(map[string]*dmarc.Accumulator)
	}
	acc := m.accumulators[policyDomain]
	if acc == nil {
		acc = &dmarc.Accumulator{
			OrgName: m.cfg.Hostname,
			Email:   "dmarc-reports@" + m.cfg.Hostname,
			Domain:  policyDomain,
		}
		m.accumulators[policyDomain] = acc
	}
	acc.Add(time.Now(), obs)
}

// AggregateReports drains the MTA's DMARC accumulators into feedback
// reports, one per policy domain with observations.
func (m *MTA) AggregateReports() []*dmarc.Feedback {
	m.mu.Lock()
	accs := make([]*dmarc.Accumulator, 0, len(m.accumulators))
	for _, acc := range m.accumulators {
		accs = append(accs, acc)
	}
	m.mu.Unlock()
	var out []*dmarc.Feedback
	for i, acc := range accs {
		if f := acc.Report(fmt.Sprintf("%s-%d", m.cfg.ID, i+1)); f != nil {
			out = append(out, f)
		}
	}
	return out
}
