// Package mtasim simulates receiving mail transfer agents. Each
// simulated MTA is a real SMTP server (over the netsim fabric) wired
// to a real stub resolver and the full SPF/DKIM/DMARC validation
// stack; its behaviour — whether it validates, when, how compliantly,
// and how it treats probes — is governed by a Profile. Populations of
// MTAs with profile distributions calibrated to the paper's reported
// rates reproduce the measurement study's observations through the
// actual protocol path rather than by arithmetic.
package mtasim

import (
	"math/rand"

	"sendervalid/internal/resolver"
	"sendervalid/internal/spf"
)

// ValidationPhase says when an MTA performs sender validation relative
// to the SMTP dialogue (paper §6.2: 83% of domains validated SPF
// before delivery completed; 17% only after).
type ValidationPhase int

// Validation phases.
const (
	// AtMail validates as soon as MAIL FROM arrives.
	AtMail ValidationPhase = iota
	// AtData validates when the DATA command arrives, before content.
	AtData
	// PostData validates only after a complete message is accepted —
	// such MTAs show no validation activity to probes that disconnect
	// before sending content.
	PostData
)

// Profile is the behavioural genome of one simulated MTA.
type Profile struct {
	// ValidatesSPF, ValidatesDKIM, ValidatesDMARC select which
	// mechanisms the MTA checks at all (Table 4 combinations).
	ValidatesSPF   bool
	ValidatesDKIM  bool
	ValidatesDMARC bool

	// Phase is when SPF validation runs.
	Phase ValidationPhase

	// PartialSPF fetches the SPF policy TXT record but never evaluates
	// it — the 3.0% of domains the paper found starting but not
	// finishing validation (§6.1).
	PartialSPF bool

	// ChecksHELO additionally validates the HELO identity (5.0% of
	// validating MTAs, §7.3); per the paper every such MTA continued
	// to the MAIL identity regardless of the HELO outcome.
	ChecksHELO bool

	// SPFOptions carries the compliance knobs (lookup limits, syntax
	// tolerance, prefetch parallelism, …).
	SPFOptions spf.Options

	// TempfailSessions greets each client's first N sessions with a
	// 421 transient reply before behaving normally — greylisting, the
	// common real-world defence that forces legitimate senders to
	// retry. Campaigns exercise their retry discipline against it.
	TempfailSessions int

	// RejectProbe rejects sessions at connect time with a
	// spam/blacklist message, as 28% of NotifyMX MTAs did (§6.2).
	RejectProbe bool
	// RejectText is the rejection message ("spam" or "blacklist").
	RejectText string

	// WhitelistPostmaster skips sender validation when the recipient
	// is postmaster (§6.3: a major suppressor of observed validation).
	WhitelistPostmaster bool

	// AcceptAnyUser accepts every RCPT; otherwise only ValidUsers and
	// postmaster are accepted.
	AcceptAnyUser bool
	// ValidUsers lists accepted local parts besides postmaster.
	ValidUsers []string
	// RejectPostmaster additionally rejects postmaster (6.4% of
	// TwoWeekMX MTAs returned invalid-recipient errors, §6.3).
	RejectPostmaster bool

	// EnforceSPF rejects mail at SMTP time when SPF fails hard.
	EnforceSPF bool
	// EnforceDMARC applies the DMARC disposition to the message reply.
	EnforceDMARC bool

	// ResolverTransport restricts the MTA's resolver address families
	// (51% of MTAs could not retrieve IPv6-only policies, §7.3).
	ResolverTransport resolver.TransportPolicy
	// ResolverNoTCP disables the resolver's TCP retry (2 of 1336
	// resolvers, §7.3).
	ResolverNoTCP bool
}

// Rates holds the probability of each behavioural trait, used to
// sample profiles for a population. All values are probabilities in
// [0, 1]. The defaults (PaperRates) are calibrated to the paper.
type Rates struct {
	// Table-4 joint validation combinations (normalized internally).
	ComboAll       float64 // SPF+DKIM+DMARC
	ComboSPFDKIM   float64
	ComboNone      float64
	ComboSPFOnly   float64
	ComboDKIMOnly  float64
	ComboDMARCOnly float64
	ComboSPFDMARC  float64
	ComboDKIMDMARC float64

	PostDataValidation float64 // of SPF validators
	PartialSPF         float64 // of SPF validators
	ChecksHELO         float64 // of SPF validators
	Parallel           float64 // prefetching lookups (1 - serial rate)

	IgnoreLookupLimit   float64 // runs the full 46-lookup tree
	PartialLimit        float64 // stops somewhere between 10 and 46
	IgnoreVoidLimit     float64 // exceeds two void lookups
	AllVoids            float64 // of void-limit violators: does all five
	MXFallbackA         float64
	FollowOneOfMultiple float64
	SyntaxTolerantMain  float64
	SyntaxTolerantChild float64
	IgnoreMXLimit       float64 // all 20 MX targets
	PartialMXLimit      float64 // between 10 and 20

	RejectProbe         float64 // spam/blacklist rejection of probes
	RejectBlacklist     float64 // of rejectors: cite "blacklist" not "spam"
	WhitelistPostmaster float64
	AcceptAnyUser       float64
	RejectPostmaster    float64

	EnforceSPF    float64 // of validators with DMARC
	IPv4Only      float64 // resolver cannot reach IPv6-only servers
	ResolverNoTCP float64
}

// PaperRates returns trait probabilities calibrated to the paper's
// reported numbers (sections noted inline).
func PaperRates() Rates {
	return Rates{
		// Table 4 (counts normalized): 14056/6322/4456/2156/1436/211/169/0.
		ComboAll:       14056,
		ComboSPFDKIM:   6322,
		ComboNone:      4456,
		ComboSPFOnly:   2156,
		ComboDKIMOnly:  1436,
		ComboDMARCOnly: 211,
		ComboSPFDMARC:  169,
		ComboDKIMDMARC: 0,

		PostDataValidation: 0.17, // §6.2, Figure 2
		PartialSPF:         0.03, // §6.1
		ChecksHELO:         0.05, // §7.3
		Parallel:           0.03, // §7.1 (97% serial)

		IgnoreLookupLimit:   0.28,  // §7.2 (154/553 ran all 46)
		PartialLimit:        0.11,  // §7.2 remainder between 10 and 46
		IgnoreVoidLimit:     0.97,  // §7.3 (1193/1229)
		AllVoids:            0.66,  // §7.3: 64% of all = 66% of violators
		MXFallbackA:         0.14,  // §7.3
		FollowOneOfMultiple: 0.23,  // §7.3
		SyntaxTolerantMain:  0.055, // §7.3
		SyntaxTolerantChild: 0.123, // §7.3
		IgnoreMXLimit:       0.64,  // §7.3 (all 20)
		PartialMXLimit:      0.283, // §7.3 remainder over 10 but under 20

		RejectProbe:         0.28,  // §6.2
		RejectBlacklist:     0.10,  // 872 of 8675 rejections cite blacklist
		WhitelistPostmaster: 0.72,  // §6.3 calibration (see DESIGN.md)
		AcceptAnyUser:       0.31,  // §6.3: postmaster needed for 69%
		RejectPostmaster:    0.064, // §6.3

		EnforceSPF:    0.5,
		IPv4Only:      0.51,   // §7.3: only 49% retrieved IPv6-only policy
		ResolverNoTCP: 0.0015, // §7.3: 2 of 1336
	}
}

// Sample draws one Profile from the rates using rng.
func (r Rates) Sample(rng *rand.Rand) Profile {
	p := Profile{}

	// Validation combination (Table 4).
	weights := []float64{r.ComboAll, r.ComboSPFDKIM, r.ComboNone, r.ComboSPFOnly,
		r.ComboDKIMOnly, r.ComboDMARCOnly, r.ComboSPFDMARC, r.ComboDKIMDMARC}
	switch weightedIndex(rng, weights) {
	case 0:
		p.ValidatesSPF, p.ValidatesDKIM, p.ValidatesDMARC = true, true, true
	case 1:
		p.ValidatesSPF, p.ValidatesDKIM = true, true
	case 2: // none
	case 3:
		p.ValidatesSPF = true
	case 4:
		p.ValidatesDKIM = true
	case 5:
		p.ValidatesDMARC = true
	case 6:
		p.ValidatesSPF, p.ValidatesDMARC = true, true
	case 7:
		p.ValidatesDKIM, p.ValidatesDMARC = true, true
	}

	if p.ValidatesSPF {
		if rng.Float64() < r.PostDataValidation {
			p.Phase = PostData
		} else if rng.Float64() < 0.5 {
			p.Phase = AtMail
		} else {
			p.Phase = AtData
		}
		p.PartialSPF = rng.Float64() < r.PartialSPF
		// HELO checking runs alongside MAIL validation (the paper saw
		// every HELO checker proceed to the MAIL identity, §7.3), so
		// the trait is sampled independently of the validation phase.
		p.ChecksHELO = rng.Float64() < r.ChecksHELO && !p.PartialSPF
		p.SPFOptions.Prefetch = rng.Float64() < r.Parallel

		switch x := rng.Float64(); {
		case x < r.IgnoreLookupLimit:
			p.SPFOptions.LookupLimit = -1
		case x < r.IgnoreLookupLimit+r.PartialLimit:
			p.SPFOptions.LookupLimit = 11 + rng.Intn(34) // between 11 and 44
		}
		if rng.Float64() < r.IgnoreVoidLimit {
			if rng.Float64() < r.AllVoids {
				p.SPFOptions.VoidLookupLimit = -1
			} else {
				p.SPFOptions.VoidLookupLimit = 3 + rng.Intn(2) // 3 or 4
			}
		}
		p.SPFOptions.MXFallbackA = rng.Float64() < r.MXFallbackA
		p.SPFOptions.FollowMultipleRecords = rng.Float64() < r.FollowOneOfMultiple
		// A validator tolerant of main-policy errors is tolerant of
		// child errors too; some are tolerant only of child errors.
		if rng.Float64() < r.SyntaxTolerantMain {
			p.SPFOptions.IgnoreSyntaxErrors = true
		}
		switch x := rng.Float64(); {
		case x < r.IgnoreMXLimit:
			p.SPFOptions.MXAddressLimit = -1
		case x < r.IgnoreMXLimit+r.PartialMXLimit:
			p.SPFOptions.MXAddressLimit = 11 + rng.Intn(9) // 11–19
		}
		p.EnforceSPF = rng.Float64() < r.EnforceSPF
	}

	p.RejectProbe = rng.Float64() < r.RejectProbe
	if p.RejectProbe {
		p.RejectText = "5.7.1 Message rejected as spam"
		if rng.Float64() < r.RejectBlacklist {
			p.RejectText = "5.7.1 Client host blocked: IP found on blacklist"
		}
	}
	p.WhitelistPostmaster = rng.Float64() < r.WhitelistPostmaster
	p.AcceptAnyUser = rng.Float64() < r.AcceptAnyUser
	p.RejectPostmaster = rng.Float64() < r.RejectPostmaster
	p.EnforceDMARC = p.ValidatesDMARC

	if rng.Float64() < r.IPv4Only {
		p.ResolverTransport = resolver.IPv4Only
	}
	p.ResolverNoTCP = rng.Float64() < r.ResolverNoTCP
	return p
}

// weightedIndex picks an index proportionally to weights.
func weightedIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
