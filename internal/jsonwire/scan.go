package jsonwire

import (
	"bytes"
	"errors"
	"unicode/utf16"
	"unicode/utf8"
)

// Doc scans one JSON document held in a byte slice (one JSONL line).
// It validates with the same acceptance rules as encoding/json's
// scanner — same escape grammar, same number grammar, same literal
// termination, same 10000-level nesting limit — so a line is decodable
// here exactly when json.Unmarshal would decode it. Errors carry no
// position detail; callers wrap them with the record index.
//
// A Doc is reusable via Init and keeps no per-document allocations.
type Doc struct {
	in    []byte
	pos   int
	depth int
}

// maxNestingDepth matches encoding/json's nesting limit.
const maxNestingDepth = 10000

var (
	errSyntax        = errors.New("invalid JSON syntax")
	errUnexpectedEnd = errors.New("unexpected end of JSON input")
	errDepth         = errors.New("exceeded max depth")
	errTrailing      = errors.New("trailing data after JSON value")
)

// Init points the Doc at a new document.
func (d *Doc) Init(b []byte) { d.in, d.pos, d.depth = b, 0, 0 }

// WS skips JSON whitespace. Compact JSONL records almost never have
// any, so the common case is a single inlined byte test.
func (d *Doc) WS() {
	if d.pos < len(d.in) {
		if c := d.in[d.pos]; c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			d.wsSlow()
		}
	}
}

func (d *Doc) wsSlow() {
	for d.pos < len(d.in) {
		switch d.in[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

// Peek returns the byte at the cursor without consuming it.
func (d *Doc) Peek() (byte, bool) {
	if d.pos >= len(d.in) {
		return 0, false
	}
	return d.in[d.pos], true
}

// End verifies only whitespace remains — the Unmarshal trailing-data
// check.
func (d *Doc) End() error {
	d.WS()
	if d.pos != len(d.in) {
		return errTrailing
	}
	return nil
}

// atTerminator reports whether the cursor sits at a valid
// end-of-value boundary (whitespace, ',', '}', ']', or EOF) — the
// scanner's stateEndValue rule that makes "nullx" or "12x" invalid.
func (d *Doc) atTerminator() bool {
	if d.pos >= len(d.in) {
		return true
	}
	switch d.in[d.pos] {
	case ' ', '\t', '\r', '\n', ',', '}', ']':
		return true
	}
	return false
}

// literal consumes the exact literal s (cursor on its first byte)
// plus the terminator check.
func (d *Doc) literal(s string) error {
	if len(d.in)-d.pos < len(s) || string(d.in[d.pos:d.pos+len(s)]) != s {
		return errSyntax
	}
	d.pos += len(s)
	if !d.atTerminator() {
		return errSyntax
	}
	return nil
}

// TryNull consumes a null literal at the cursor if present. Callers
// should WS() first.
func (d *Doc) TryNull() (bool, error) {
	if c, ok := d.Peek(); !ok || c != 'n' {
		return false, nil
	}
	if err := d.literal("null"); err != nil {
		return false, err
	}
	return true, nil
}

// Bool parses a true/false literal at the cursor.
func (d *Doc) Bool() (bool, error) {
	c, ok := d.Peek()
	if !ok {
		return false, errUnexpectedEnd
	}
	switch c {
	case 't':
		return true, d.literal("true")
	case 'f':
		return false, d.literal("false")
	}
	return false, errSyntax
}

// RawString parses the JSON string at the cursor and returns the raw
// bytes between the quotes — escapes validated but not decoded (what
// time.Time.UnmarshalJSON receives). Use Unescape to decode.
func (d *Doc) RawString() ([]byte, error) {
	raw, _, err := d.rawString()
	return raw, err
}

// rawString is RawString plus a plain report: plain means the string
// held no escapes and only ASCII, so its decoded contents are the raw
// bytes themselves.
func (d *Doc) rawString() (raw []byte, plain bool, err error) {
	if c, ok := d.Peek(); !ok || c != '"' {
		if !ok {
			return nil, false, errUnexpectedEnd
		}
		return nil, false, errSyntax
	}
	in := d.in
	i := d.pos + 1
	plain = true
	for {
		// Race through plain bytes — everything but the closing quote,
		// an escape, raw control characters (invalid in JSON), and
		// non-ASCII (which demotes plain but is otherwise fine; the
		// scanner does not validate UTF-8, Unescape coerces).
		for i < len(in) {
			c := in[i]
			if c == '"' || c == '\\' || c < 0x20 || c >= 0x80 {
				break
			}
			i++
		}
		if i >= len(in) {
			return nil, false, errUnexpectedEnd
		}
		switch c := in[i]; {
		case c == '"':
			raw = in[d.pos+1 : i]
			d.pos = i + 1
			return raw, plain, nil
		case c >= 0x80:
			plain = false
			i++
		case c == '\\':
			plain = false
			i++
			if i >= len(in) {
				return nil, false, errUnexpectedEnd
			}
			switch in[i] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				i++
			case 'u':
				if i+4 >= len(in) || !isHex4(in[i+1:i+5]) {
					return nil, false, errSyntax
				}
				i += 5
			default:
				return nil, false, errSyntax
			}
		default: // a raw control character
			return nil, false, errSyntax
		}
	}
}

func isHex4(b []byte) bool {
	for _, c := range b[:4] {
		switch {
		case '0' <= c && c <= '9', 'a' <= c && c <= 'f', 'A' <= c && c <= 'F':
		default:
			return false
		}
	}
	return true
}

// ReadString parses the string at the cursor and appends its decoded
// contents to dst. Strings without escapes decode as a straight copy
// (well-formed UTF-8 passes through Unescape unchanged), which is
// nearly every string in a query log.
func (d *Doc) ReadString(dst []byte) ([]byte, error) {
	raw, plain, err := d.rawString()
	if err != nil {
		return dst, err
	}
	if plain || (bytes.IndexByte(raw, '\\') < 0 && utf8.Valid(raw)) {
		return append(dst, raw...), nil
	}
	return Unescape(dst, raw), nil
}

// Unescape appends the decoded contents of a validated raw JSON
// string (RawString output) to dst, replicating encoding/json's
// unquote: \uXXXX with UTF-16 surrogate pairing (unpaired surrogates
// become U+FFFD) and invalid UTF-8 coerced to U+FFFD.
func Unescape(dst, raw []byte) []byte {
	for r := 0; r < len(raw); {
		switch c := raw[r]; {
		case c == '\\':
			r++
			switch raw[r] {
			case '"', '\\', '/':
				dst = append(dst, raw[r])
				r++
			case 'b':
				dst = append(dst, '\b')
				r++
			case 'f':
				dst = append(dst, '\f')
				r++
			case 'n':
				dst = append(dst, '\n')
				r++
			case 'r':
				dst = append(dst, '\r')
				r++
			case 't':
				dst = append(dst, '\t')
				r++
			case 'u':
				r--
				rr := getu4(raw[r:])
				r += 6
				if utf16.IsSurrogate(rr) {
					rr1 := getu4(raw[r:])
					if dec := utf16.DecodeRune(rr, rr1); dec != utf8.RuneError {
						// A valid surrogate pair; consume both.
						r += 6
						dst = utf8.AppendRune(dst, dec)
						break
					}
					// Invalid surrogate: replacement char, second
					// escape (if any) processed independently.
					rr = utf8.RuneError
				}
				dst = utf8.AppendRune(dst, rr)
			}
		case c < utf8.RuneSelf:
			dst = append(dst, c)
			r++
		default:
			// Coerce to well-formed UTF-8.
			rr, size := utf8.DecodeRune(raw[r:])
			r += size
			dst = utf8.AppendRune(dst, rr)
		}
	}
	return dst
}

// getu4 decodes \uXXXX at the start of b, returning -1 on malformed
// input (identical to encoding/json's getu4).
func getu4(b []byte) rune {
	if len(b) < 6 || b[0] != '\\' || b[1] != 'u' {
		return -1
	}
	var r rune
	for _, c := range b[2:6] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// Int parses a JSON number at the cursor that must be an integer
// fitting int64 — the same acceptance as unmarshalling into an int64
// field (number syntax validated first, then integer-ness).
func (d *Doc) Int() (int64, error) {
	start := d.pos
	if err := d.skipNumber(); err != nil {
		return 0, err
	}
	tok := d.in[start:d.pos]
	neg := false
	i := 0
	if tok[0] == '-' {
		neg = true
		i = 1
	}
	var v uint64
	for ; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			// Fraction or exponent: valid JSON, not an integer.
			return 0, errSyntax
		}
		if v > (1<<63)/10 {
			// The next digit would overflow uint64's headroom; the check
			// below could never see the wrapped value.
			return 0, errSyntax
		}
		v = v*10 + uint64(c-'0')
		if v > 1<<63 {
			return 0, errSyntax
		}
	}
	if neg {
		return -int64(v), nil
	}
	if v == 1<<63 {
		return 0, errSyntax
	}
	return int64(v), nil
}

// skipNumber validates a JSON number at the cursor (cursor on '-' or
// a digit).
func (d *Doc) skipNumber() error {
	in, i := d.in, d.pos
	if i < len(in) && in[i] == '-' {
		i++
	}
	switch {
	case i < len(in) && in[i] == '0':
		i++
	case i < len(in) && '1' <= in[i] && in[i] <= '9':
		for i < len(in) && '0' <= in[i] && in[i] <= '9' {
			i++
		}
	default:
		return errSyntax
	}
	if i < len(in) && in[i] == '.' {
		i++
		if i >= len(in) || in[i] < '0' || in[i] > '9' {
			return errSyntax
		}
		for i < len(in) && '0' <= in[i] && in[i] <= '9' {
			i++
		}
	}
	if i < len(in) && (in[i] == 'e' || in[i] == 'E') {
		i++
		if i < len(in) && (in[i] == '+' || in[i] == '-') {
			i++
		}
		if i >= len(in) || in[i] < '0' || in[i] > '9' {
			return errSyntax
		}
		for i < len(in) && '0' <= in[i] && in[i] <= '9' {
			i++
		}
	}
	d.pos = i
	if !d.atTerminator() {
		return errSyntax
	}
	return nil
}

// ObjectStart consumes '{' at the cursor (after WS).
func (d *Doc) ObjectStart() error {
	d.WS()
	c, ok := d.Peek()
	if !ok {
		return errUnexpectedEnd
	}
	if c != '{' {
		return errSyntax
	}
	d.depth++
	if d.depth > maxNestingDepth {
		return errDepth
	}
	d.pos++
	return nil
}

// NextKey advances to the next key of the current object, returning
// its raw (possibly escaped) bytes, or ok=false at the object's end.
// first must be true before the first key has been read.
func (d *Doc) NextKey(first bool) (key []byte, ok bool, err error) {
	d.WS()
	c, have := d.Peek()
	if !have {
		return nil, false, errUnexpectedEnd
	}
	if c == '}' {
		d.pos++
		d.depth--
		return nil, false, nil
	}
	if !first {
		if c != ',' {
			return nil, false, errSyntax
		}
		d.pos++
		d.WS()
	}
	key, err = d.RawString()
	if err != nil {
		return nil, false, err
	}
	d.WS()
	if c, have := d.Peek(); !have || c != ':' {
		if !have {
			return nil, false, errUnexpectedEnd
		}
		return nil, false, errSyntax
	}
	d.pos++
	return key, true, nil
}

// ArrayStart consumes '[' at the cursor (after WS).
func (d *Doc) ArrayStart() error {
	d.WS()
	c, ok := d.Peek()
	if !ok {
		return errUnexpectedEnd
	}
	if c != '[' {
		return errSyntax
	}
	d.depth++
	if d.depth > maxNestingDepth {
		return errDepth
	}
	d.pos++
	return nil
}

// NextElem advances to the next array element, leaving the cursor on
// its first byte; ok=false at the array's end.
func (d *Doc) NextElem(first bool) (ok bool, err error) {
	d.WS()
	c, have := d.Peek()
	if !have {
		return false, errUnexpectedEnd
	}
	if c == ']' {
		d.pos++
		d.depth--
		return false, nil
	}
	if !first {
		if c != ',' {
			return false, errSyntax
		}
		d.pos++
		d.WS()
		if _, have := d.Peek(); !have {
			return false, errUnexpectedEnd
		}
	}
	return true, nil
}

// SkipValue validates and skips any JSON value at the cursor — how
// unknown object keys are consumed.
func (d *Doc) SkipValue() error {
	d.WS()
	c, ok := d.Peek()
	if !ok {
		return errUnexpectedEnd
	}
	switch {
	case c == '{':
		if err := d.ObjectStart(); err != nil {
			return err
		}
		for first := true; ; first = false {
			_, more, err := d.NextKey(first)
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
			if err := d.SkipValue(); err != nil {
				return err
			}
		}
	case c == '[':
		if err := d.ArrayStart(); err != nil {
			return err
		}
		for first := true; ; first = false {
			more, err := d.NextElem(first)
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
			if err := d.SkipValue(); err != nil {
				return err
			}
		}
	case c == '"':
		_, err := d.RawString()
		return err
	case c == 't':
		return d.literal("true")
	case c == 'f':
		return d.literal("false")
	case c == 'n':
		return d.literal("null")
	case c == '-' || ('0' <= c && c <= '9'):
		return d.skipNumber()
	}
	return errSyntax
}
