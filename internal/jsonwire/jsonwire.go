// Package jsonwire provides reflection-free JSON encoding and
// decoding primitives for the repo's JSONL hot paths: the DNS query
// log (internal/dnsserver) and the campaign journal
// (internal/campaign). Both formats were originally defined by
// encoding/json struct tags, and files written by older builds must
// stay readable (and vice versa), so the primitives here are
// bit-compatible clones of encoding/json's behaviour rather than a
// fresh JSON dialect:
//
//   - AppendString escapes exactly like json.Marshal with HTML
//     escaping on (the json.Encoder default): control characters,
//     quote, backslash, '<', '>', '&', U+2028/U+2029, and invalid
//     UTF-8 coerced to �.
//   - Unescape decodes string contents exactly like json.Unmarshal:
//     surrogate-pair handling with U+FFFD fallback, and invalid UTF-8
//     coerced to U+FFFD.
//   - AppendTime and ParseTime mirror time.Time's MarshalJSON /
//     UnmarshalJSON (RFC 3339 with nanoseconds).
//
// The equivalence is pinned by fuzz tests against encoding/json in
// this package and in the two consumers.
package jsonwire

import (
	"time"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// safeByte reports whether ASCII byte c can appear unescaped in a
// JSON string, matching encoding/json's htmlSafeSet (HTML escaping
// on, the json.Encoder/json.Marshal default).
func safeByte(c byte) bool {
	return c >= 0x20 && c < utf8.RuneSelf &&
		c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}

// AppendString appends s as a quoted JSON string, escaped exactly as
// json.Marshal would (HTML escaping included).
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if safeByte(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Other control characters, plus <, >, & under HTML
				// escaping.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		// U+2028 (LINE SEPARATOR) and U+2029 (PARAGRAPH SEPARATOR)
		// are escaped unconditionally, as encoding/json does for
		// JavaScript embedding safety.
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendTime appends t as a quoted RFC 3339 timestamp with
// nanoseconds, matching time.Time.MarshalJSON for any timestamp a
// log can legitimately contain (year in [0,9999], whole-minute zone
// offset — both always true for times produced by time.Now or by
// ParseTime).
func AppendTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"')
}

// ParseTime parses a quoted-string *content* (no surrounding quotes,
// escapes untouched) as time.Time's UnmarshalJSON would: a strict
// RFC 3339 fast path that allocates nothing for UTC timestamps, with
// time.Parse as the fallback for inputs the fast path rejects —
// exactly the lax forms encoding/json currently accepts
// (https://go.dev/issue/54580 strictness is disabled upstream).
func ParseTime(b []byte) (time.Time, error) {
	if t, ok := parseRFC3339(b); ok {
		return t, nil
	}
	return time.Parse(time.RFC3339, string(b))
}

// TryParseTime is the strict allocation-free RFC 3339 parse alone —
// for decoder fast paths that bail to a full parser (and its lax
// fallback) on anything unusual.
func TryParseTime(b []byte) (time.Time, bool) {
	return parseRFC3339(b)
}

// parseRFC3339 is the allocation-free strict parse, a clone of
// time's internal parseRFC3339 (minus the local-zone reuse, which
// affects only the Location identity, not the instant or offset).
func parseRFC3339(s []byte) (time.Time, bool) {
	ok := true
	parseUint := func(b []byte, min, max int) (x int) {
		for _, c := range b {
			if c < '0' || '9' < c {
				ok = false
				return min
			}
			x = x*10 + int(c) - '0'
		}
		if x < min || max < x {
			ok = false
			return min
		}
		return x
	}

	if len(s) < len("2006-01-02T15:04:05") {
		return time.Time{}, false
	}
	year := parseUint(s[0:4], 0, 9999)
	month := parseUint(s[5:7], 1, 12)
	day := parseUint(s[8:10], 1, daysIn(month, year))
	hour := parseUint(s[11:13], 0, 23)
	min := parseUint(s[14:16], 0, 59)
	sec := parseUint(s[17:19], 0, 59)
	if !ok || !(s[4] == '-' && s[7] == '-' && s[10] == 'T' && s[13] == ':' && s[16] == ':') {
		return time.Time{}, false
	}
	s = s[19:]

	// Fractional second: '.', at least one digit; digits beyond the
	// ninth only truncate, as in the stdlib.
	var nsec int
	if len(s) >= 2 && s[0] == '.' && '0' <= s[1] && s[1] <= '9' {
		n := 2
		for ; n < len(s) && '0' <= s[n] && s[n] <= '9'; n++ {
		}
		digits := n - 1
		if digits > 9 {
			digits = 9
		}
		for i := 1; i <= digits; i++ {
			nsec = nsec*10 + int(s[i]-'0')
		}
		for i := digits; i < 9; i++ {
			nsec *= 10
		}
		s = s[n:]
	}

	if len(s) == 1 && s[0] == 'Z' {
		return time.Date(year, time.Month(month), day, hour, min, sec, nsec, time.UTC), true
	}
	if len(s) != len("-07:00") {
		return time.Time{}, false
	}
	hr := parseUint(s[1:3], 0, 23)
	mm := parseUint(s[4:6], 0, 59)
	if !ok || !((s[0] == '-' || s[0] == '+') && s[3] == ':') {
		return time.Time{}, false
	}
	zoneOffset := (hr*60 + mm) * 60
	if s[0] == '-' {
		zoneOffset = -zoneOffset
	}
	return time.Date(year, time.Month(month), day, hour, min, sec, nsec,
		time.FixedZone("", zoneOffset)), true
}

// daysIn returns the number of days in the given month, accounting
// for leap years.
func daysIn(month, year int) int {
	switch month {
	case 4, 6, 9, 11:
		return 30
	case 2:
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	}
	return 31
}
