// Package traceflag wires the tracing flags shared by the serving and
// evaluation commands — -trace-file, -trace-sample, -trace-slow — into
// a configured trace.Tracer whose span stream is a checksummed WAL
// (the same framing as the query log, readable by cmd/analyze -trace).
package traceflag

import (
	"flag"
	"fmt"
	"io"
	"time"

	"sendervalid/internal/trace"
	"sendervalid/internal/wal"
)

// Flags holds the parsed tracing flag values.
type Flags struct {
	File   string
	Sample float64
	Slow   time.Duration
}

// Register binds the standard tracing flags on fs (use flag.CommandLine
// for commands parsing the global flag set).
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.File, "trace-file", "",
		"span output: append sampled spans as checksummed WAL records (JSONL payload, readable by cmd/analyze -trace)")
	fs.Float64Var(&f.Sample, "trace-sample", 0,
		"span head-sampling rate in [0,1]; error and over-threshold spans are kept regardless")
	fs.DurationVar(&f.Slow, "trace-slow", 0,
		"keep every span at least this slow, sampled or not (0 disables slow promotion)")
	return f
}

// Enabled reports whether the flags turn tracing on at all.
func (f *Flags) Enabled() bool { return f.File != "" || f.Sample > 0 || f.Slow > 0 }

// Tracing is a live tracer plus its backing span WAL. The zero value
// (and the result of opening disabled flags) carries a nil Tracer,
// which every instrumented call site treats as tracing-off.
type Tracing struct {
	Tracer *trace.Tracer
	wal    *wal.WAL
}

// Open builds the tracer described by the flags. Disabled flags yield
// a Tracing with a nil Tracer; warnf (optional) receives the one-line
// torn-tail notice when the span WAL needed crash recovery.
func (f *Flags) Open(warnf func(format string, args ...any)) (*Tracing, error) {
	if !f.Enabled() {
		return &Tracing{}, nil
	}
	if f.Sample < 0 || f.Sample > 1 {
		return nil, fmt.Errorf("-trace-sample %g outside [0,1]", f.Sample)
	}
	var out io.Writer
	var w *wal.WAL
	if f.File != "" {
		var err error
		w, err = wal.Open(f.File, wal.Options{})
		if err != nil {
			return nil, fmt.Errorf("opening trace file: %w", err)
		}
		if rec := w.Recovered(); rec.Truncated && warnf != nil {
			warnf("trace file %s had a torn tail; %d records salvaged, %d bytes truncated",
				f.File, rec.Records, rec.DroppedBytes)
		}
		out = w
	}
	return &Tracing{
		Tracer: trace.New(trace.Config{SampleRate: f.Sample, SlowThreshold: f.Slow, Output: out}),
		wal:    w,
	}, nil
}

// Close drains the exporter and closes the span WAL. Safe on the zero
// value and after a failed Open.
func (t *Tracing) Close() error {
	if t == nil {
		return nil
	}
	t.Tracer.Close()
	if t.wal != nil {
		return t.wal.Close()
	}
	return nil
}
