package telemetry

import (
	"sync"
	"sync/atomic"
)

// OverflowLabel is the label value that absorbs series beyond a
// family's cardinality bound. Queries are attacker-influenced (a probe
// can put anything left of the zone suffix), so a labeled family must
// never let wire input mint unbounded series: like the rate limiter's
// bounded source table, a family holds at most its configured number
// of children and routes everything else into one overflow child,
// keeping totals exact while memory stays O(bound).
const OverflowLabel = "_overflow"

// CounterVec is a bounded-cardinality family of counters keyed by one
// label value. The child map is copy-on-write behind an atomic
// pointer: With on an existing child is one atomic load plus a map
// lookup — no locks, no allocations — so hot paths may call it per
// event. Creation (rare, bounded by max) copies the map under a
// mutex.
type CounterVec struct {
	max int

	mu       sync.Mutex
	children atomic.Pointer[map[string]*Counter]

	overflow Counter
}

// NewCounterVec creates a family holding at most max children (<= 0
// means 64), plus the shared overflow child.
func NewCounterVec(max int) *CounterVec {
	if max <= 0 {
		max = 64
	}
	v := &CounterVec{max: max}
	empty := make(map[string]*Counter)
	v.children.Store(&empty)
	return v
}

// With returns the counter for the given label value, creating it if
// the family has room and returning the overflow child otherwise.
func (v *CounterVec) With(label string) *Counter {
	if c := (*v.children.Load())[label]; c != nil {
		return c
	}
	return v.create(label)
}

func (v *CounterVec) create(label string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	old := *v.children.Load()
	if c := old[label]; c != nil {
		return c
	}
	if len(old) >= v.max {
		return &v.overflow
	}
	next := make(map[string]*Counter, len(old)+1)
	for k, c := range old {
		next[k] = c
	}
	c := new(Counter)
	next[label] = c
	v.children.Store(&next)
	return c
}

// each visits every child (overflow last, only when used) in no
// particular order.
func (v *CounterVec) each(fn func(label string, c *Counter)) {
	for label, c := range *v.children.Load() {
		fn(label, c)
	}
	if v.overflow.Value() > 0 {
		fn(OverflowLabel, &v.overflow)
	}
}

// HistogramVec is a bounded-cardinality family of histograms sharing
// one bucket layout, keyed by one label value. Cardinality and
// concurrency discipline match CounterVec.
type HistogramVec struct {
	max    int
	bounds []float64

	mu       sync.Mutex
	children atomic.Pointer[map[string]*Histogram]

	overflow atomic.Pointer[Histogram]
}

// NewHistogramVec creates a family of histograms over bounds, holding
// at most max children (<= 0 means 64).
func NewHistogramVec(bounds []float64, max int) *HistogramVec {
	if max <= 0 {
		max = 64
	}
	v := &HistogramVec{
		max:    max,
		bounds: append([]float64(nil), bounds...),
	}
	empty := make(map[string]*Histogram)
	v.children.Store(&empty)
	return v
}

// With returns the histogram for the given label value, creating it if
// the family has room and returning the overflow child otherwise.
func (v *HistogramVec) With(label string) *Histogram {
	if h := (*v.children.Load())[label]; h != nil {
		return h
	}
	return v.create(label)
}

func (v *HistogramVec) create(label string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	old := *v.children.Load()
	if h := old[label]; h != nil {
		return h
	}
	if len(old) >= v.max {
		if h := v.overflow.Load(); h != nil {
			return h
		}
		h := NewHistogram(v.bounds)
		v.overflow.Store(h)
		return h
	}
	next := make(map[string]*Histogram, len(old)+1)
	for k, h := range old {
		next[k] = h
	}
	h := NewHistogram(v.bounds)
	next[label] = h
	v.children.Store(&next)
	return h
}

func (v *HistogramVec) each(fn func(label string, h *Histogram)) {
	for label, h := range *v.children.Load() {
		fn(label, h)
	}
	if h := v.overflow.Load(); h != nil && h.Count() > 0 {
		fn(OverflowLabel, h)
	}
}
