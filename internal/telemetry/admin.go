package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"
)

// AdminServer is the operational HTTP plane of a serving process:
//
//	/metrics       Prometheus text exposition of the Registry
//	/healthz       200 when every registered health check passes,
//	               503 with a per-check report otherwise
//	/statusz       JSON snapshot of every metric family
//	/debug/pprof/  the standard profiling endpoints
//
// It binds its own listener (never the serving sockets) so a saturated
// query path cannot starve operators of visibility, and vice versa.
type AdminServer struct {
	// Addr is the listen address, e.g. "127.0.0.1:9153". Use port 0
	// for an ephemeral port in tests.
	Addr string
	// Registry supplies /metrics and /statusz. Required.
	Registry *Registry
	// Health supplies /healthz. Nil means always healthy.
	Health *Health

	started time.Time
	ln      net.Listener
	srv     *http.Server
	extra   map[string]http.Handler
}

// Handle registers an extra route on the admin mux — how higher
// layers (the tracer's /debug/traces, say) join the admin plane
// without this package importing them. Call before Start/Handler.
func (a *AdminServer) Handle(pattern string, h http.Handler) {
	if a.extra == nil {
		a.extra = make(map[string]http.Handler)
	}
	a.extra[pattern] = h
}

// Handler builds the admin mux. Exposed for tests and for embedding
// the admin plane into an existing HTTP server.
func (a *AdminServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/statusz", a.handleStatusz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range a.extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// Start binds Addr and serves in a background goroutine. It returns
// the bound address (useful with port 0).
func (a *AdminServer) Start() (net.Addr, error) {
	if a.Registry == nil {
		return nil, fmt.Errorf("telemetry: AdminServer requires a Registry")
	}
	ln, err := net.Listen("tcp", a.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen: %w", err)
	}
	a.started = time.Now()
	a.ln = ln
	a.srv = &http.Server{
		Handler:           a.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = a.srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown stops the admin server, waiting for in-flight requests.
func (a *AdminServer) Shutdown(ctx context.Context) error {
	if a.srv == nil {
		return nil
	}
	return a.srv.Shutdown(ctx)
}

func (a *AdminServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.Registry.WritePrometheus(w)
}

func (a *AdminServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if a.Health == nil {
		fmt.Fprintln(w, "ok")
		return
	}
	results, healthy := a.Health.Check()
	if !healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	for _, r := range results {
		if r.OK {
			fmt.Fprintf(w, "ok  %s\n", r.Name)
		} else {
			fmt.Fprintf(w, "FAIL %s: %s\n", r.Name, r.Err)
		}
	}
	if len(results) == 0 {
		fmt.Fprintln(w, "ok")
	}
}

// statusz is the JSON document served at /statusz.
type statusz struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Goroutines    int              `json:"goroutines"`
	Health        []CheckResult    `json:"health,omitempty"`
	Healthy       bool             `json:"healthy"`
	Metrics       []FamilySnapshot `json:"metrics"`
}

func (a *AdminServer) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	doc := statusz{
		Goroutines: runtime.NumGoroutine(),
		Healthy:    true,
		Metrics:    a.Registry.Snapshot(),
	}
	if !a.started.IsZero() {
		doc.UptimeSeconds = time.Since(a.started).Seconds()
	}
	if a.Health != nil {
		doc.Health, doc.Healthy = a.Health.Check()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// RegisterRuntimeMetrics registers process-level families every
// long-running command wants: goroutine count, heap in use, GC cycles,
// and process start time.
func RegisterRuntimeMetrics(reg *Registry) {
	start := time.Now()
	reg.MustGaugeFunc("go_goroutines", "Number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.MustGaugeFunc("go_heap_inuse_bytes", "Heap bytes in use.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapInuse)
	})
	reg.MustCounterFunc("go_gc_cycles_total", "Completed GC cycles.", func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return uint64(ms.NumGC)
	})
	reg.MustGaugeFunc("process_uptime_seconds", "Seconds since process start.", func() float64 {
		return time.Since(start).Seconds()
	})
	reg.MustGaugeFunc("process_pid", "Process id.", func() float64 {
		return float64(os.Getpid())
	})
}
