package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Metric family types, as they appear in # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one registered stream of samples: exactly one of the
// sample sources is set.
type series struct {
	labels []Label
	key    string // canonical label signature: sort + dedup + render order

	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// vecEntry is one registered vec under a family name: the vec itself
// plus the constant labels distinguishing it from sibling vecs (the
// same way two static series share a name with disjoint labelsets).
type vecEntry struct {
	labelName string
	constants []Label
	key       string // canonical signature of the constant labels

	cvec *CounterVec
	hvec *HistogramVec
}

// family groups every series sharing a metric name. A family is either
// static (explicitly registered series) or dynamic (backed by vecs
// whose children appear and disappear at render time); never both.
type family struct {
	name string
	help string
	typ  string

	series []*series
	vecs   []*vecEntry
}

// Registry holds registered metrics and renders them. The zero value
// is not usable; call NewRegistry. All methods are safe for concurrent
// use; registration typically happens at startup and rendering at
// scrape time, neither on a serving hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// MustCounter registers c under name with optional constant labels.
// It panics on an invalid name or label, a name already registered
// with a different type or help, or a duplicate label set.
func (r *Registry) MustCounter(name, help string, c *Counter, labels ...Label) {
	r.add(name, help, typeCounter, &series{labels: labels, counter: c})
}

// MustCounterFunc registers a counter whose value is read from fn at
// render time — the bridge for pre-existing atomic counters owned by
// other packages (AsyncLog drops, rate-limiter refusals).
func (r *Registry) MustCounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.add(name, help, typeCounter, &series{labels: labels, counterFn: fn})
}

// MustGauge registers g under name with optional constant labels.
func (r *Registry) MustGauge(name, help string, g *Gauge, labels ...Label) {
	r.add(name, help, typeGauge, &series{labels: labels, gauge: g})
}

// MustGaugeFunc registers a gauge read from fn at render time.
func (r *Registry) MustGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, typeGauge, &series{labels: labels, gaugeFn: fn})
}

// MustHistogram registers h under name with optional constant labels.
func (r *Registry) MustHistogram(name, help string, h *Histogram, labels ...Label) {
	r.add(name, help, typeHistogram, &series{labels: labels, hist: h})
}

// MustCounterVec registers a bounded counter family keyed by
// labelName. Like MustCounter, it attaches a caller-owned instrument:
// the component creates its vec (NewCounterVec) and increments it on
// its hot path whether or not anything registers it. Constant labels
// are rendered before the family label.
func (r *Registry) MustCounterVec(name, help, labelName string, v *CounterVec, labels ...Label) {
	r.addVec(name, help, typeCounter, labelName, labels, &vecEntry{cvec: v})
}

// MustHistogramVec registers a bounded histogram family keyed by
// labelName.
func (r *Registry) MustHistogramVec(name, help, labelName string, v *HistogramVec, labels ...Label) {
	r.addVec(name, help, typeHistogram, labelName, labels, &vecEntry{hvec: v})
}

func (r *Registry) add(name, help, typ string, s *series) {
	validateName(name)
	for _, l := range s.labels {
		validateLabel(l.Name)
	}
	s.key = labelKey(s.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typ)
	if len(f.vecs) > 0 {
		panic(fmt.Sprintf("telemetry: metric %q is a labeled family; cannot add static series", name))
	}
	for _, have := range f.series {
		if have.key == s.key {
			panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, s.key))
		}
	}
	f.series = append(f.series, s)
}

func (r *Registry) addVec(name, help, typ, labelName string, labels []Label, e *vecEntry) {
	validateName(name)
	validateLabel(labelName)
	for _, l := range labels {
		validateLabel(l.Name)
	}
	e.labelName = labelName
	e.constants = labels
	e.key = labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typ)
	if len(f.series) > 0 {
		panic(fmt.Sprintf("telemetry: metric %q already registered", name))
	}
	for _, have := range f.vecs {
		if have.key == e.key {
			panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, e.key))
		}
		if have.labelName != e.labelName {
			panic(fmt.Sprintf("telemetry: metric %q registered with family labels %q and %q",
				name, have.labelName, e.labelName))
		}
	}
	f.vecs = append(f.vecs, e)
}

// familyLocked returns (creating if needed) the family for name,
// enforcing that re-registration agrees on type and help.
func (r *Registry) familyLocked(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	if f.help != help {
		panic(fmt.Sprintf("telemetry: metric %q registered with conflicting help", name))
	}
	return f
}

func validateName(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

func validateLabel(name string) {
	if !validLabelName(name) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", name))
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelKey renders labels in registration order as the series'
// identity and sort key: {a="x",b="y"}. Empty labels yield "".
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	appendLabels(&b, labels, "", "")
	return b.String()
}

// appendLabels writes {l1="v1",...} plus up to one extra pair to b.
// With no labels at all it writes nothing.
func appendLabels(b *strings.Builder, labels []Label, extraName, extraValue string) {
	if len(labels) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		escapeLabelValue(b, l.Value)
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		escapeLabelValue(b, extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabelValue applies the exposition-format escapes for label
// values: backslash, double quote, and newline.
func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// escapeHelp applies the exposition-format escapes for HELP text:
// backslash and newline.
func escapeHelp(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// formatFloat renders a sample value: decimal shortest-form for finite
// values, and the exposition spellings NaN / +Inf / -Inf otherwise.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Output is deterministic for a
// fixed registry state: families are sorted by name, series by label
// signature, and dynamic family children by label value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		escapeHelp(&b, f.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		renderFamily(&b, f)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func renderFamily(b *strings.Builder, f *family) {
	switch {
	case len(f.vecs) > 0:
		for _, e := range sortedVecs(f) {
			if e.cvec != nil {
				for _, child := range sortedCounterChildren(e.cvec) {
					writeSample(b, f.name, "", e.constants, e.labelName, child.label,
						strconv.FormatUint(child.c.Value(), 10))
				}
			} else {
				for _, child := range sortedHistogramChildren(e.hvec) {
					renderHistogram(b, f.name, e.constants, e.labelName, child.label, child.h.Snapshot())
				}
			}
		}
	default:
		ordered := append([]*series(nil), f.series...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })
		for _, s := range ordered {
			switch {
			case s.hist != nil:
				renderHistogram(b, f.name, s.labels, "", "", s.hist.Snapshot())
			case s.counter != nil:
				writeSample(b, f.name, "", s.labels, "", "", strconv.FormatUint(s.counter.Value(), 10))
			case s.counterFn != nil:
				writeSample(b, f.name, "", s.labels, "", "", strconv.FormatUint(s.counterFn(), 10))
			case s.gauge != nil:
				writeSample(b, f.name, "", s.labels, "", "", formatFloat(s.gauge.Value()))
			case s.gaugeFn != nil:
				writeSample(b, f.name, "", s.labels, "", "", formatFloat(s.gaugeFn()))
			}
		}
	}
}

// renderHistogram writes the exposition triplet for one histogram
// series: cumulative _bucket lines ending at le="+Inf", then _sum and
// _count.
func renderHistogram(b *strings.Builder, name string, labels []Label, vecLabel, vecValue string, snap HistogramSnapshot) {
	full := labels
	if vecLabel != "" {
		full = withLabel(labels, vecLabel, vecValue)
	}
	for i, bound := range snap.Bounds {
		writeSample(b, name, "_bucket", full, "le", formatFloat(bound),
			strconv.FormatUint(snap.Counts[i], 10))
	}
	writeSample(b, name, "_bucket", full, "le", "+Inf",
		strconv.FormatUint(snap.Count, 10))
	writeSample(b, name, "_sum", full, "", "", formatFloat(snap.Sum))
	writeSample(b, name, "_count", full, "", "", strconv.FormatUint(snap.Count, 10))
}

// writeSample writes one exposition line:
// name suffix {labels, extra} value.
func writeSample(b *strings.Builder, name, suffix string, labels []Label, extraName, extraValue, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	appendLabels(b, labels, extraName, extraValue)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// sortedVecs orders a family's vec entries by their constant-label
// signature, the same key static series sort on.
func sortedVecs(f *family) []*vecEntry {
	out := append([]*vecEntry(nil), f.vecs...)
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

type counterChild struct {
	label string
	c     *Counter
}

func sortedCounterChildren(v *CounterVec) []counterChild {
	var out []counterChild
	v.each(func(label string, c *Counter) { out = append(out, counterChild{label, c}) })
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

type histogramChild struct {
	label string
	h     *Histogram
}

func sortedHistogramChildren(v *HistogramVec) []histogramChild {
	var out []histogramChild
	v.each(func(label string, h *Histogram) { out = append(out, histogramChild{label, h}) })
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// SeriesSnapshot is one series' current value for /statusz.
type SeriesSnapshot struct {
	Labels    []Label            `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// FamilySnapshot is one metric family's state for /statusz.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every registered metric, in the same deterministic
// order WritePrometheus uses.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.typ, Help: f.help}
		switch {
		case len(f.vecs) > 0:
			for _, e := range sortedVecs(f) {
				if e.cvec != nil {
					for _, child := range sortedCounterChildren(e.cvec) {
						fs.Series = append(fs.Series, SeriesSnapshot{
							Labels: withLabel(e.constants, e.labelName, child.label),
							Value:  float64(child.c.Value()),
						})
					}
				} else {
					for _, child := range sortedHistogramChildren(e.hvec) {
						snap := child.h.Snapshot()
						fs.Series = append(fs.Series, SeriesSnapshot{
							Labels:    withLabel(e.constants, e.labelName, child.label),
							Histogram: &snap,
						})
					}
				}
			}
		default:
			ordered := append([]*series(nil), f.series...)
			sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })
			for _, s := range ordered {
				ss := SeriesSnapshot{Labels: s.labels}
				switch {
				case s.hist != nil:
					snap := s.hist.Snapshot()
					ss.Histogram = &snap
				case s.counter != nil:
					ss.Value = float64(s.counter.Value())
				case s.counterFn != nil:
					ss.Value = float64(s.counterFn())
				case s.gauge != nil:
					ss.Value = s.gauge.Value()
				case s.gaugeFn != nil:
					ss.Value = s.gaugeFn()
				}
				fs.Series = append(fs.Series, ss)
			}
		}
		out = append(out, fs)
	}
	return out
}

func withLabel(labels []Label, name, value string) []Label {
	return append(append([]Label(nil), labels...), Label{Name: name, Value: value})
}

// WriteSummary prints a compact human-readable digest of the registry:
// one line per series, zero-valued counters skipped, histograms
// reduced to count/mean/p99. This is the shutdown report a long-lived
// server prints in place of a hand-rolled counter dump.
func (r *Registry) WriteSummary(w io.Writer) error {
	var b strings.Builder
	for _, fam := range r.Snapshot() {
		for _, s := range fam.Series {
			if s.Histogram != nil {
				if s.Histogram.Count == 0 {
					continue
				}
				b.WriteString(fam.Name)
				writeSummaryLabels(&b, s.Labels)
				fmt.Fprintf(&b, " count=%d mean=%s p99=%s\n",
					s.Histogram.Count,
					formatFloat(s.Histogram.Mean()),
					formatFloat(s.Histogram.Quantile(0.99)))
				continue
			}
			if fam.Type == typeCounter && s.Value == 0 {
				continue
			}
			b.WriteString(fam.Name)
			writeSummaryLabels(&b, s.Labels)
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSummaryLabels(b *strings.Builder, labels []Label) {
	appendLabels(b, labels, "", "")
}
