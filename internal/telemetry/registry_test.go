package telemetry

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every exposition corner:
// all five instrument kinds, constant labels, a labeled family with an
// overflow child, label-value escaping, non-finite gauge values, and
// names chosen so sorted output differs from registration order.
func goldenRegistry() *Registry {
	reg := NewRegistry()

	var reqs Counter
	reqs.Add(42)
	reg.MustCounter("zz_requests_total", "Requests served.", &reqs,
		L("endpoint", "v4"), L("path", `quoted"quote`))

	var reqs6 Counter
	reqs6.Add(7)
	reg.MustCounter("zz_requests_total", "Requests served.", &reqs6,
		L("endpoint", "v6"), L("path", "back\\slash\nnewline"))

	var temp Gauge
	temp.Set(-3.25)
	reg.MustGauge("aa_temperature", "A negative gauge.", &temp)

	reg.MustGaugeFunc("mm_nan", "Not a number.", func() float64 { return math.NaN() })
	reg.MustGaugeFunc("mm_posinf", "Positive infinity.", func() float64 { return math.Inf(1) })
	reg.MustGaugeFunc("mm_neginf", "Negative infinity.", func() float64 { return math.Inf(-1) })
	reg.MustCounterFunc("mm_fn_total", "Counter read through a func.", func() uint64 { return 9 })

	h := NewHistogram([]float64{0.1, 0.5, 2.5})
	for _, v := range []float64{0.05, 0.2, 0.2, 1, 100} {
		h.Observe(v)
	}
	reg.MustHistogram("dd_latency_seconds", "A histogram.", h, L("op", "serve"))

	cv := NewCounterVec(2)
	cv.With("t01").Inc()
	cv.With("t02").Add(3)
	cv.With("minted-by-wire").Inc() // over the bound: overflow child
	reg.MustCounterVec("ff_by_policy_total", "Labeled family.", "policy", cv, L("zone", "test"))

	hv := NewHistogramVec([]float64{1, 10}, 4)
	hv.With("b").Observe(0.5)
	hv.With("a").Observe(20)
	reg.MustHistogramVec("gg_hist_by_kind_seconds", "Labeled histograms.", "kind", hv)

	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file (run with -update to regenerate)\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	reg := goldenRegistry()
	var first strings.Builder
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again strings.Builder
		if err := reg.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if first.String() != again.String() {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, first.String(), again.String())
		}
	}
}

func TestRegistryConflicts(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}

	var c Counter
	var g Gauge
	reg := NewRegistry()
	reg.MustCounter("x_total", "help", &c)

	mustPanic("type conflict", func() { reg.MustGauge("x_total", "help", &g) })
	mustPanic("help conflict", func() {
		var c2 Counter
		reg.MustCounter("x_total", "different help", &c2)
	})
	mustPanic("duplicate labelset", func() {
		var c2 Counter
		reg.MustCounter("x_total", "help", &c2)
	})
	mustPanic("invalid name", func() { reg.MustCounter("0bad", "help", &c) })
	mustPanic("invalid name char", func() { reg.MustCounter("bad-name", "help", &c) })
	mustPanic("reserved label", func() { reg.MustCounter("y_total", "help", &c, L("__name__", "x")) })
	mustPanic("vec over static", func() {
		reg.MustCounterVec("x_total", "help", "k", NewCounterVec(4))
	})
	mustPanic("static over vec", func() {
		reg.MustCounterVec("v_total", "help", "k", NewCounterVec(4))
		var c2 Counter
		reg.MustCounter("v_total", "help", &c2)
	})

	// Disjoint labelsets under one name are allowed — that is how two
	// endpoints share a family.
	var a, b Counter
	reg2 := NewRegistry()
	reg2.MustCounter("ok_total", "help", &a, L("endpoint", "v4"))
	reg2.MustCounter("ok_total", "help", &b, L("endpoint", "v6"))

	// The same holds for vecs: one component registered several times
	// under distinct constant labels (sequential experiment worlds).
	reg3 := NewRegistry()
	reg3.MustCounterVec("w_total", "help", "k", NewCounterVec(4), L("world", "one"))
	reg3.MustCounterVec("w_total", "help", "k", NewCounterVec(4), L("world", "two"))
	mustPanic("duplicate vec labelset", func() {
		reg3.MustCounterVec("w_total", "help", "k", NewCounterVec(4), L("world", "one"))
	})
	mustPanic("conflicting vec family label", func() {
		reg3.MustCounterVec("w_total", "help", "other", NewCounterVec(4), L("world", "three"))
	})
}

func TestSiblingVecsRender(t *testing.T) {
	reg := NewRegistry()
	one := NewCounterVec(4)
	one.With("t01").Add(2)
	two := NewCounterVec(4)
	two.With("t01").Inc()
	reg.MustCounterVec("q_total", "Queries.", "policy", one, L("world", "one"))
	reg.MustCounterVec("q_total", "Queries.", "policy", two, L("world", "two"))

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `q_total{world="one",policy="t01"} 2`) ||
		!strings.Contains(out, `q_total{world="two",policy="t01"} 1`) {
		t.Errorf("sibling vec samples missing:\n%s", out)
	}
	if strings.Count(out, "# TYPE q_total") != 1 {
		t.Errorf("family header duplicated:\n%s", out)
	}
}

func TestWriteSummary(t *testing.T) {
	reg := NewRegistry()
	var zero, nonzero Counter
	nonzero.Add(5)
	reg.MustCounter("quiet_total", "Never incremented.", &zero)
	reg.MustCounter("busy_total", "Incremented.", &nonzero)
	h := NewHistogram([]float64{1, 10})
	h.Observe(2)
	reg.MustHistogram("lat_seconds", "Latency.", h)
	empty := NewHistogram([]float64{1})
	reg.MustHistogram("unused_seconds", "Empty histogram.", empty)

	var b strings.Builder
	if err := reg.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "quiet_total") {
		t.Errorf("zero counter rendered in summary:\n%s", out)
	}
	if strings.Contains(out, "unused_seconds") {
		t.Errorf("empty histogram rendered in summary:\n%s", out)
	}
	if !strings.Contains(out, "busy_total 5") {
		t.Errorf("missing busy_total:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds count=1 mean=2") {
		t.Errorf("missing histogram digest:\n%s", out)
	}
}
