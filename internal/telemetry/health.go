package telemetry

import (
	"sort"
	"sync"
)

// Health aggregates component-registered liveness checks for /healthz.
// Each serving component registers a named check function; the admin
// plane runs them all per probe and reports unhealthy when any fails.
// The zero value is not usable; call NewHealth.
type Health struct {
	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth creates an empty check set. With no checks registered the
// process reports healthy — liveness of the admin plane itself.
func NewHealth() *Health {
	return &Health{checks: make(map[string]func() error)}
}

// Register adds (or replaces) the named check. A check returns nil
// when the component is healthy; the error message is surfaced in the
// /healthz body otherwise. Checks must be safe for concurrent use and
// should be cheap: they run on every probe.
func (h *Health) Register(name string, check func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks[name] = check
}

// Deregister removes the named check.
func (h *Health) Deregister(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.checks, name)
}

// CheckResult is one check's outcome.
type CheckResult struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
}

// Check runs every registered check and returns the results sorted by
// name, plus whether all passed.
func (h *Health) Check() ([]CheckResult, bool) {
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	for name := range h.checks {
		names = append(names, name)
	}
	sort.Strings(names)
	checks := make([]func() error, len(names))
	for i, name := range names {
		checks[i] = h.checks[name]
	}
	h.mu.Unlock()

	results := make([]CheckResult, len(names))
	healthy := true
	for i, name := range names {
		r := CheckResult{Name: name, OK: true}
		if err := checks[i](); err != nil {
			r.OK = false
			r.Err = err.Error()
			healthy = false
		}
		results[i] = r
	}
	return results, healthy
}
