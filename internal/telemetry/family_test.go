package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBounds(t *testing.T) {
	v := NewCounterVec(2)
	v.With("a").Inc()
	v.With("b").Add(2)
	// Third distinct label hits the cardinality bound: both junk labels
	// share the overflow child, keeping the total exact.
	v.With("junk1").Inc()
	v.With("junk2").Inc()
	if got := v.With("a").Value(); got != 1 {
		t.Errorf("a = %d, want 1", got)
	}
	if got := v.With("junk1").Value(); got != 2 {
		t.Errorf("overflow = %d, want 2 (shared child)", got)
	}
	seen := map[string]uint64{}
	v.each(func(label string, c *Counter) { seen[label] = c.Value() })
	want := map[string]uint64{"a": 1, "b": 2, OverflowLabel: 2}
	if len(seen) != len(want) {
		t.Fatalf("each visited %v, want %v", seen, want)
	}
	for k, w := range want {
		if seen[k] != w {
			t.Errorf("each[%q] = %d, want %d", k, seen[k], w)
		}
	}
}

func TestCounterVecOverflowHiddenWhenUnused(t *testing.T) {
	v := NewCounterVec(4)
	v.With("a").Inc()
	v.each(func(label string, _ *Counter) {
		if label == OverflowLabel {
			t.Error("unused overflow child rendered")
		}
	})
}

func TestHistogramVecBounds(t *testing.T) {
	v := NewHistogramVec([]float64{1, 10}, 1)
	v.With("a").Observe(0.5)
	v.With("b").Observe(5) // over the bound: overflow child
	v.With("c").Observe(5)
	if got := v.With("a").Count(); got != 1 {
		t.Errorf("a count = %d, want 1", got)
	}
	if got := v.With("b").Count(); got != 2 {
		t.Errorf("overflow count = %d, want 2", got)
	}
	labels := []string{}
	v.each(func(label string, _ *Histogram) { labels = append(labels, label) })
	if len(labels) != 2 {
		t.Fatalf("each visited %v", labels)
	}
}

// TestCounterVecHammer drives concurrent With/Inc across a label space
// wider than the bound while a scraper renders continuously. Under
// -race this is the lookup path's data-race regression test; in any
// mode it checks no increment is lost.
func TestCounterVecHammer(t *testing.T) {
	const (
		workers   = 8
		perWorker = 2000
		bound     = 16
		labels    = 64 // 4x the bound: plenty of overflow traffic
	)
	v := NewCounterVec(bound)
	reg := NewRegistry()
	reg.MustCounterVec("hammer_total", "hammer", "k", v)

	stopScrape := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
				var b strings.Builder
				_ = reg.WritePrometheus(&b)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v.With(fmt.Sprintf("l%02d", (w*perWorker+i)%labels)).Inc()
			}
		}(w)
	}
	wg.Wait()
	close(stopScrape)
	scrapes.Wait()

	var total uint64
	v.each(func(_ string, c *Counter) { total += c.Value() })
	if total != workers*perWorker {
		t.Fatalf("total = %d, want %d", total, workers*perWorker)
	}
}
