package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestAdmin(t *testing.T) (*AdminServer, *Health, *Counter) {
	t.Helper()
	reg := NewRegistry()
	var served Counter
	served.Add(3)
	reg.MustCounter("test_served_total", "Requests served.", &served)
	health := NewHealth()
	return &AdminServer{Registry: reg, Health: health}, health, &served
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp, string(body)
}

func TestAdminMetrics(t *testing.T) {
	admin, _, _ := newTestAdmin(t)
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want exposition 0.0.4", ct)
	}
	if !strings.Contains(body, "test_served_total 3") {
		t.Errorf("missing sample:\n%s", body)
	}
}

func TestAdminHealthzFlips(t *testing.T) {
	admin, health, _ := newTestAdmin(t)
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no checks: status = %d, body %q", resp.StatusCode, body)
	}

	health.Register("disk", func() error { return nil })
	health.Register("querylog", func() error { return errors.New("42 entries dropped") })
	resp, body = get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failing check: status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, "FAIL querylog: 42 entries dropped") {
		t.Errorf("missing failing check line:\n%s", body)
	}
	if !strings.Contains(body, "ok  disk") {
		t.Errorf("missing passing check line:\n%s", body)
	}

	health.Deregister("querylog")
	resp, _ = get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after deregister: status = %d, want 200", resp.StatusCode)
	}
}

func TestAdminStatusz(t *testing.T) {
	admin, health, _ := newTestAdmin(t)
	health.Register("always", func() error { return nil })
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var doc struct {
		Healthy bool `json:"healthy"`
		Health  []struct {
			Name string `json:"name"`
			OK   bool   `json:"ok"`
		} `json:"health"`
		Metrics []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Value float64 `json:"value"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, body)
	}
	if !doc.Healthy || len(doc.Health) != 1 || doc.Health[0].Name != "always" {
		t.Errorf("health block wrong: %+v", doc)
	}
	found := false
	for _, m := range doc.Metrics {
		if m.Name == "test_served_total" && m.Type == "counter" &&
			len(m.Series) == 1 && m.Series[0].Value == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("test_served_total missing from statusz:\n%s", body)
	}
}

func TestAdminStartShutdown(t *testing.T) {
	admin, _, _ := newTestAdmin(t)
	admin.Addr = "127.0.0.1:0"
	addr, err := admin.Start()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof status = %d", resp.StatusCode)
	}
	if err := admin.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
}
