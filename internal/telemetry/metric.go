// Package telemetry is the observability plane for every serving
// component: allocation-free metric instruments (atomic counters,
// gauges, fixed-bucket histograms, bounded-cardinality labeled
// families), a Registry that renders them deterministically in
// Prometheus text exposition format, and an admin HTTP server exposing
// /metrics, /healthz, /statusz, and /debug/pprof.
//
// The design splits instruments from registration: a Counter is a
// plain struct usable at its zero value, so a server embeds its
// counters directly and increments them unconditionally on the hot
// path (one atomic add, zero allocations, no nil checks), while
// RegisterMetrics-style methods attach those instruments to a Registry
// with names, help text, and constant labels only when a process wants
// them exposed. Everything is stdlib-only.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; Inc and Add are lock-free and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value. The zero value is ready to
// use and reads 0. Set is a single atomic store; Add is a CAS loop.
// Neither allocates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative d subtracts).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in increasing order; every histogram implicitly ends with a
// +Inf bucket. Observe is lock-free and allocation-free: one atomic
// add on the bucket counter, one on the total count, and a CAS loop on
// the float sum. Concurrent observations may be momentarily torn
// across those three (a scrape can see the count before the sum); like
// every mainstream client library this trades exactness under
// concurrent scrape for a hot path with no lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    Gauge
	// ex holds the latest exemplar per bucket: a lock-free pointer
	// swap on the sampled path, nothing at all on the unsampled one.
	ex []atomic.Pointer[exemplarData]
}

// exemplarData is one stored exemplar: the observed value and the
// trace that produced it.
type exemplarData struct {
	value float64
	trace string
}

// NewHistogram builds a histogram over the given bucket upper bounds,
// which must be finite and strictly increasing. The slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		ex:     make([]atomic.Pointer[exemplarData], len(bounds)+1),
	}
	return h
}

// bucket returns the index of the bucket containing v.
func (h *Histogram) bucket(v float64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds) // +Inf bucket
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// stores it as the containing bucket's exemplar. An empty traceID —
// what an unsampled or nil span's ExemplarID returns — makes this
// exactly Observe, so instrumented sites call it unconditionally.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID != "" {
		h.ex[h.bucket(v)].Store(&exemplarData{value: v, trace: traceID})
	}
}

// SetExemplar stores an exemplar for the bucket containing v without
// recording an observation — for sites whose Observe happens
// elsewhere (the DNS serve path observes latency outside the span's
// lifetime). Empty traceID is a no-op.
func (h *Histogram) SetExemplar(v float64, traceID string) {
	if traceID == "" {
		return
	}
	h.ex[h.bucket(v)].Store(&exemplarData{value: v, trace: traceID})
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are cumulative, Prometheus-style: Counts[i] is the number of
// observations <= Bounds[i], and Counts[len(Bounds)] (the +Inf bucket)
// equals Count.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	// Exemplars carries the latest stored exemplar per bucket that
	// has one. Bucket is the bucket index (len(Bounds) is the +Inf
	// bucket — an index, not a bound, so the snapshot stays
	// marshalable by encoding/json).
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Exemplar links one histogram bucket to the trace that most
// recently landed in it.
type Exemplar struct {
	Bucket  int     `json:"bucket"`
	Value   float64 `json:"value"`
	TraceID string  `json:"trace"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Value(),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	// Render a consistent snapshot even if observations raced the scan:
	// the +Inf bucket defines the count.
	s.Count = s.Counts[len(s.Counts)-1]
	for i := range h.ex {
		if e := h.ex[i].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, Exemplar{Bucket: i, Value: e.value, TraceID: e.trace})
		}
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the snapshot by
// linear interpolation inside the containing bucket. Estimates are as
// coarse as the buckets; values landing in the +Inf bucket report the
// highest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	lower := 0.0
	var below uint64
	for i, bound := range s.Bounds {
		cum := s.Counts[i]
		if float64(cum) >= rank {
			in := cum - below
			if in == 0 {
				return bound
			}
			frac := (rank - float64(below)) / float64(in)
			return lower + (bound-lower)*frac
		}
		below = cum
		lower = bound
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// LatencyBuckets is the preset for operation latencies in seconds:
// 100µs to 10s, roughly logarithmic. It covers both the loopback
// serving path (tens of µs land in the first bucket) and the paper's
// 800 ms-scale shaped responses.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the preset for byte sizes: 64 B to 1 MiB in powers of
// four, matching DNS messages (tens to hundreds of bytes), log lines,
// and SMTP payloads.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
}
