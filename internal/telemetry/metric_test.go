package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero value = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("Value = %d, want 42", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero value = %v, want 0", g.Value())
	}
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("Value = %v, want 3", g.Value())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8*1000 {
		t.Fatalf("Value = %v, want %d", g.Value(), 8*1000)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Cumulative: <=1 sees {0.5, 1}; <=2 adds 1.5; <=4 adds 3; +Inf adds 100.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 106 {
		t.Errorf("Sum = %v, want 106", s.Sum)
	}
	if got := s.Mean(); got != 106.0/5 {
		t.Errorf("Mean = %v", got)
	}
	// p100 lands in the +Inf bucket and reports the top finite bound.
	if got := s.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
	if got := s.Quantile(0); got < 0 || got > 1 {
		t.Errorf("Quantile(0) = %v, want within first bucket", got)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{
		{1, 1},
		{2, 1},
		{math.NaN()},
		{1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// The allocation pins below are the package's core contract: the
// serving hot paths increment these instruments unconditionally, so
// any allocation here is an allocation per DNS query.

func TestCounterIncAllocs(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(1000, c.Inc); n != 0 {
		t.Fatalf("Counter.Inc allocates %v times per op", n)
	}
}

func TestGaugeAllocs(t *testing.T) {
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v times per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v times per op", n)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v times per op", n)
	}
}

func TestCounterVecWithAllocs(t *testing.T) {
	v := NewCounterVec(8)
	v.With("warm").Inc()
	if n := testing.AllocsPerRun(1000, func() { v.With("warm").Inc() }); n != 0 {
		t.Fatalf("CounterVec.With on existing child allocates %v times per op", n)
	}
}
