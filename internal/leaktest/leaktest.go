// Package leaktest asserts that a test leaves no goroutines behind —
// the invariant every chaos run checks: a server that survives faults
// but leaks a goroutine per fault is still dying, just slowly.
package leaktest

import (
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Check snapshots the interesting goroutines now and returns a
// function that fails t if, after a grace period for orderly winddown,
// goroutines not present in the snapshot are still running. Use it at
// the top of a test:
//
//	defer leaktest.Check(t)()
func Check(t testing.TB) func() {
	t.Helper()
	before := interesting()
	return func() {
		t.Helper()
		// Winding-down goroutines (deferred closes, drain loops) get a
		// grace period before being declared leaked.
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("leaktest: %d goroutine(s) leaked:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	}
}

// leakedSince returns the interesting goroutine stacks not in before.
func leakedSince(before map[string]int) []string {
	var leaked []string
	counts := make(map[string]int)
	for _, g := range interestingStacks() {
		key := stackKey(g)
		counts[key]++
		if counts[key] > before[key] {
			leaked = append(leaked, g)
		}
	}
	sort.Strings(leaked)
	return leaked
}

// interesting returns a multiset of current goroutine identities.
func interesting() map[string]int {
	out := make(map[string]int)
	for _, g := range interestingStacks() {
		out[stackKey(g)]++
	}
	return out
}

// interestingStacks dumps all goroutines and filters out the runtime,
// testing machinery, and this checker itself.
func interestingStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || !isInteresting(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

func isInteresting(stack string) bool {
	// The checker's own goroutine is never a leak, and its stack shape
	// differs between the snapshot and the final check.
	if strings.Contains(stack, "internal/leaktest") {
		return false
	}
	for _, boring := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*T).Run(",
		"testing.runFuzzing(",
		"created by runtime",
		"signal.signal_recv",
	} {
		if strings.Contains(stack, boring) {
			return false
		}
	}
	return true
}

// stackKey reduces a goroutine dump to a comparable identity: its
// frames without goroutine IDs, argument values, or pointers.
func stackKey(stack string) string {
	lines := strings.Split(stack, "\n")
	var key []string
	for _, line := range lines {
		if strings.HasPrefix(line, "goroutine ") {
			continue
		}
		// File:line rows keep only the location; frame rows drop
		// argument values.
		line = strings.TrimSpace(line)
		if i := strings.IndexByte(line, '('); i > 0 && !strings.HasPrefix(line, "/") {
			line = line[:i]
		}
		if i := strings.Index(line, " +0x"); i > 0 {
			line = line[:i]
		}
		key = append(key, line)
	}
	return strings.Join(key, "|")
}
