package fingerprint

import (
	"strings"
	"testing"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
)

// entry builds a log entry for tests.
func entry(mta, test string, rest []string, typ dns.Type, at int, opts ...func(*dnsserver.LogEntry)) dnsserver.LogEntry {
	e := dnsserver.LogEntry{
		MTAID: mta, TestID: test, Rest: rest, Type: typ,
		Time: time.Unix(1_600_000_000, int64(at)*int64(time.Millisecond)),
	}
	for _, o := range opts {
		o(&e)
	}
	return e
}

func overTCP(e *dnsserver.LogEntry)  { e.Transport = "tcp" }
func overIPv6(e *dnsserver.LogEntry) { e.OverIPv6 = true }

// serialMTALog fabricates a compliant, serial validator's footprint.
func serialMTALog(mta string) []dnsserver.LogEntry {
	es := []dnsserver.LogEntry{
		// t01: serial — A for foo arrives after l3.
		entry(mta, "t01", nil, dns.TypeTXT, 0),
		entry(mta, "t01", []string{"l1"}, dns.TypeTXT, 1),
		entry(mta, "t01", []string{"l2"}, dns.TypeTXT, 2),
		entry(mta, "t01", []string{"l3"}, dns.TypeTXT, 3),
		entry(mta, "t01", []string{"foo"}, dns.TypeA, 4),
		// t02: stops at 10 follow-ups.
		entry(mta, "t02", nil, dns.TypeTXT, 10),
	}
	for i := 0; i < 10; i++ {
		es = append(es, entry(mta, "t02", []string{"n" + string(rune('1'+i%8))}, dns.TypeTXT, 11+i))
	}
	es = append(es,
		// t03: no helo lookup, only MAIL.
		entry(mta, "t03", nil, dns.TypeTXT, 30),
		// t04/t05: base fetched, no continuation.
		entry(mta, "t04", nil, dns.TypeTXT, 40),
		entry(mta, "t05", nil, dns.TypeTXT, 41),
		// t06: three void lookups (limit 2 + the violating third).
		entry(mta, "t06", nil, dns.TypeTXT, 50),
		entry(mta, "t06", []string{"v1"}, dns.TypeA, 51),
		entry(mta, "t06", []string{"v2"}, dns.TypeA, 52),
		entry(mta, "t06", []string{"v3"}, dns.TypeA, 53),
		// t07: no fallback.
		entry(mta, "t07", nil, dns.TypeTXT, 60),
		entry(mta, "t07", []string{"nomx"}, dns.TypeMX, 61),
		// t08: followed neither record.
		entry(mta, "t08", nil, dns.TypeTXT, 70),
		// t09: retried TCP.
		entry(mta, "t09", nil, dns.TypeTXT, 80),
		entry(mta, "t09", nil, dns.TypeTXT, 81, overTCP),
		// t10: retrieved over IPv6.
		entry(mta, "t10", nil, dns.TypeTXT, 90),
		entry(mta, "t10", []string{"l1"}, dns.TypeTXT, 91, overIPv6),
		// t11: ten MX-host lookups.
		entry(mta, "t11", nil, dns.TypeTXT, 100),
		entry(mta, "t11", []string{"mxfarm"}, dns.TypeMX, 101),
	)
	for i := 0; i < 10; i++ {
		es = append(es, entry(mta, "t11", []string{"mx0" + string(rune('0'+i))}, dns.TypeA, 102+i))
	}
	return es
}

// violatorMTALog fabricates a limit-ignoring validator's footprint.
func violatorMTALog(mta string) []dnsserver.LogEntry {
	es := []dnsserver.LogEntry{
		// t01: parallel — A before l3.
		entry(mta, "t01", nil, dns.TypeTXT, 0),
		entry(mta, "t01", []string{"foo"}, dns.TypeA, 1),
		entry(mta, "t01", []string{"l1"}, dns.TypeTXT, 2),
		entry(mta, "t01", []string{"l2"}, dns.TypeTXT, 3),
		entry(mta, "t01", []string{"l3"}, dns.TypeTXT, 4),
		entry(mta, "t02", nil, dns.TypeTXT, 10),
	}
	for i := 0; i < 46; i++ {
		es = append(es, entry(mta, "t02", []string{"x" + string(rune('a'+i%26))}, dns.TypeTXT, 11+i))
	}
	es = append(es,
		entry(mta, "t06", nil, dns.TypeTXT, 60),
		entry(mta, "t06", []string{"v1"}, dns.TypeA, 61),
		entry(mta, "t06", []string{"v2"}, dns.TypeA, 62),
		entry(mta, "t06", []string{"v3"}, dns.TypeA, 63),
		entry(mta, "t06", []string{"v4"}, dns.TypeA, 64),
		entry(mta, "t06", []string{"v5"}, dns.TypeA, 65),
		entry(mta, "t07", nil, dns.TypeTXT, 70),
		entry(mta, "t07", []string{"nomx"}, dns.TypeMX, 71),
		entry(mta, "t07", []string{"nomx"}, dns.TypeA, 72),
		entry(mta, "t08", nil, dns.TypeTXT, 80),
		entry(mta, "t08", []string{"one"}, dns.TypeA, 81),
	)
	return es
}

func TestExtractSerialCompliant(t *testing.T) {
	vectors := Extract(serialMTALog("m1"))
	v := vectors["m1"]
	if v == nil {
		t.Fatal("no vector")
	}
	checks := []struct {
		name string
		got  Trait
		want Trait
	}{
		{"SerialLookups", v.SerialLookups, True},
		{"RespectsLookupLimit", v.RespectsLookupLimit, True},
		{"RanFullTree", v.RanFullTree, False},
		{"ChecksHELO", v.ChecksHELO, False},
		{"TolerantMainSyntax", v.TolerantMainSyntax, False},
		{"TolerantChildSyntax", v.TolerantChildSyntax, False},
		{"RespectsVoidLimit", v.RespectsVoidLimit, True},
		{"MXFallbackA", v.MXFallbackA, False},
		{"FollowsOneOfMultiple", v.FollowsOneOfMultiple, False},
		{"TCPCapable", v.TCPCapable, True},
		{"IPv6Capable", v.IPv6Capable, True},
		{"RespectsMXLimit", v.RespectsMXLimit, True},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %s, want %s", c.name, c.got, c.want)
		}
	}
	if v.Known() != 12 {
		t.Errorf("known traits %d", v.Known())
	}
}

func TestExtractViolator(t *testing.T) {
	v := Extract(violatorMTALog("m2"))["m2"]
	if v.SerialLookups != False {
		t.Error("parallel validator classified serial")
	}
	if v.RespectsLookupLimit != False || v.RanFullTree != True {
		t.Errorf("limits: %s %s", v.RespectsLookupLimit, v.RanFullTree)
	}
	if v.RespectsVoidLimit != False {
		t.Error("void violator classified compliant")
	}
	if v.MXFallbackA != True {
		t.Error("fallback not detected")
	}
	if v.FollowsOneOfMultiple != True {
		t.Error("follow-one not detected")
	}
	// Policies never probed stay unknown.
	if v.TCPCapable != Unknown || v.IPv6Capable != Unknown || v.ChecksHELO != Unknown {
		t.Errorf("untested traits decided: %s", v.Signature())
	}
}

func TestSignatureAndDescribe(t *testing.T) {
	v := Extract(serialMTALog("m1"))["m1"]
	sig := v.Signature()
	if len(sig) != len(TraitNames) {
		t.Fatalf("signature %q length vs %d names", sig, len(TraitNames))
	}
	if sig != "yynnnnynnyyy" {
		t.Errorf("signature %q", sig)
	}
	d := Describe(v)
	if !strings.Contains(d, "m1") || !strings.Contains(d, "serial=y") {
		t.Errorf("describe %q", d)
	}
}

func TestClusters(t *testing.T) {
	var entries []dnsserver.LogEntry
	for _, id := range []string{"a", "b", "c"} {
		entries = append(entries, serialMTALog(id)...)
	}
	entries = append(entries, violatorMTALog("z")...)
	clusters := Clusters(Extract(entries))
	if len(clusters) != 2 {
		t.Fatalf("%d clusters", len(clusters))
	}
	if len(clusters[0].MTAs) != 3 || clusters[0].MTAs[0] != "a" {
		t.Errorf("largest cluster %+v", clusters[0])
	}
	if len(clusters[1].MTAs) != 1 || clusters[1].MTAs[0] != "z" {
		t.Errorf("second cluster %+v", clusters[1])
	}
}

func TestDistance(t *testing.T) {
	a := &Vector{SerialLookups: True, TCPCapable: True, IPv6Capable: False}
	b := &Vector{SerialLookups: True, TCPCapable: False, IPv6Capable: Unknown}
	d, c := Distance(a, b)
	if d != 1 || c != 2 {
		t.Errorf("distance %d/%d, want 1/2", d, c)
	}
}

func TestClassify(t *testing.T) {
	compliant := Extract(serialMTALog("m1"))["m1"]
	matches := Classify(compliant, References())
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	if matches[0].Name != "strict-rfc7208" {
		t.Errorf("best match %s (score %.2f)", matches[0].Name, matches[0].Score())
	}
	if matches[0].Score() != 1 {
		t.Errorf("compliant score %.2f", matches[0].Score())
	}

	violator := Extract(violatorMTALog("m2"))["m2"]
	matches = Classify(violator, References())
	best := matches[0].Name
	if best != "limit-ignoring-legacy" && best != "parallel-prefetcher" {
		t.Errorf("violator best match %s", best)
	}
	// Empty vector matches nothing.
	if got := Classify(&Vector{}, References()); len(got) != 0 {
		t.Errorf("empty vector matched %d references", len(got))
	}
}

func TestMatchScoreZeroComparable(t *testing.T) {
	if (Match{}).Score() != 0 {
		t.Error("zero-comparable score")
	}
}

func TestTraitString(t *testing.T) {
	if Unknown.String() != "?" || True.String() != "y" || False.String() != "n" {
		t.Error("trait strings")
	}
}

func TestExtractIgnoresUnattributed(t *testing.T) {
	entries := []dnsserver.LogEntry{
		{MTAID: "", TestID: "t01"},
		{MTAID: "m1", TestID: ""},
	}
	if got := Extract(entries); len(got) != 0 {
		t.Errorf("unattributed entries produced vectors: %v", got)
	}
}
