// Package fingerprint implements the study's proposed future work
// (paper §8): using the collective behaviour an MTA exhibits across
// the test-policy catalog to classify — and potentially identify — its
// SPF validator implementation. Each MTA's query-log footprint is
// distilled into a trait vector; identical vectors cluster into
// behavioural families, and vectors can be matched against reference
// profiles of known implementation styles.
package fingerprint

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/dnsserver"
	"sendervalid/internal/policy"
)

// Trait is a tri-state behavioural observation.
type Trait int8

// Trait values.
const (
	// Unknown means the MTA's interaction with the relevant test
	// policy was insufficient to decide.
	Unknown Trait = iota
	// False means the behaviour was observed absent.
	False
	// True means the behaviour was observed present.
	True
)

// String renders a trait as "?", "n", or "y".
func (t Trait) String() string {
	switch t {
	case True:
		return "y"
	case False:
		return "n"
	}
	return "?"
}

// traitOf converts a boolean observation.
func traitOf(b bool) Trait {
	if b {
		return True
	}
	return False
}

// Vector is one MTA's behaviour signature. Field order defines the
// signature string; keep names and traits() in sync.
type Vector struct {
	MTAID string

	// SerialLookups: resolves policy terms on demand rather than
	// prefetching (t01).
	SerialLookups Trait
	// RespectsLookupLimit: stops at ≤10 DNS-querying terms (t02).
	RespectsLookupLimit Trait
	// RanFullTree: issued all 46 lookups of the limits tree (t02).
	RanFullTree Trait
	// ChecksHELO: validates the HELO identity (t03).
	ChecksHELO Trait
	// TolerantMainSyntax / TolerantChildSyntax: continues past policy
	// syntax errors (t04/t05).
	TolerantMainSyntax  Trait
	TolerantChildSyntax Trait
	// RespectsVoidLimit: stops after two void lookups (t06).
	RespectsVoidLimit Trait
	// MXFallbackA: issues the forbidden implicit-MX fallback (t07).
	MXFallbackA Trait
	// FollowsOneOfMultiple: evaluates one of several SPF records (t08).
	FollowsOneOfMultiple Trait
	// TCPCapable: retries truncated responses over TCP (t09).
	TCPCapable Trait
	// IPv6Capable: retrieves policies served only over IPv6 (t10).
	IPv6Capable Trait
	// RespectsMXLimit: stops at ≤10 MX address lookups (t11).
	RespectsMXLimit Trait
}

// traits returns the vector's fields in signature order.
func (v *Vector) traits() []Trait {
	return []Trait{
		v.SerialLookups, v.RespectsLookupLimit, v.RanFullTree, v.ChecksHELO,
		v.TolerantMainSyntax, v.TolerantChildSyntax, v.RespectsVoidLimit,
		v.MXFallbackA, v.FollowsOneOfMultiple, v.TCPCapable, v.IPv6Capable,
		v.RespectsMXLimit,
	}
}

// TraitNames labels the signature positions.
var TraitNames = []string{
	"serial", "lookup-limit", "full-tree", "helo",
	"tolerant-main", "tolerant-child", "void-limit",
	"mx-fallback", "follows-one", "tcp", "ipv6", "mx-limit",
}

// Signature renders the vector as a compact string, e.g. "yyn?...".
func (v *Vector) Signature() string {
	var sb strings.Builder
	for _, t := range v.traits() {
		sb.WriteString(t.String())
	}
	return sb.String()
}

// Known returns how many traits are decided.
func (v *Vector) Known() int {
	n := 0
	for _, t := range v.traits() {
		if t != Unknown {
			n++
		}
	}
	return n
}

// Distance is the number of decided-in-both positions where two
// vectors disagree, and the number of comparable positions.
func Distance(a, b *Vector) (disagree, comparable int) {
	at, bt := a.traits(), b.traits()
	for i := range at {
		if at[i] == Unknown || bt[i] == Unknown {
			continue
		}
		comparable++
		if at[i] != bt[i] {
			disagree++
		}
	}
	return disagree, comparable
}

// Extract distills per-MTA vectors from an experiment's query log.
func Extract(entries []dnsserver.LogEntry) map[string]*Vector {
	byMTA := make(map[string]map[string][]dnsserver.LogEntry)
	for _, e := range entries {
		if e.MTAID == "" || e.TestID == "" {
			continue
		}
		m := byMTA[e.MTAID]
		if m == nil {
			m = make(map[string][]dnsserver.LogEntry)
			byMTA[e.MTAID] = m
		}
		m[e.TestID] = append(m[e.TestID], e)
	}

	out := make(map[string]*Vector, len(byMTA))
	for id, tests := range byMTA {
		v := &Vector{MTAID: id}
		extractT01(v, tests["t01"])
		extractT02(v, tests["t02"])
		extractT03(v, tests["t03"])
		v.TolerantMainSyntax = presenceTrait(tests["t04"], "after", dns.TypeA, dns.TypeAAAA)
		v.TolerantChildSyntax = presenceTrait(tests["t05"], "cont", dns.TypeA, dns.TypeAAAA)
		extractT06(v, tests["t06"])
		v.MXFallbackA = presenceTrait(tests["t07"], "nomx", dns.TypeA, dns.TypeAAAA)
		extractT08(v, tests["t08"])
		extractT09(v, tests["t09"])
		extractT10(v, tests["t10"])
		extractT11(v, tests["t11"])
		out[id] = v
	}
	return out
}

func baseSeen(entries []dnsserver.LogEntry) bool {
	for _, e := range entries {
		if len(e.Rest) == 0 && e.Type == dns.TypeTXT {
			return true
		}
	}
	return false
}

// presenceTrait decides a trait by whether a follow-up name was
// queried, given the base policy was fetched.
func presenceTrait(entries []dnsserver.LogEntry, label string, types ...dns.Type) Trait {
	if !baseSeen(entries) {
		return Unknown
	}
	for _, e := range entries {
		if len(e.Rest) == 0 || e.Rest[0] != label {
			continue
		}
		for _, t := range types {
			if e.Type == t {
				return True
			}
		}
	}
	return False
}

func extractT01(v *Vector, entries []dnsserver.LogEntry) {
	var aTime, l3Time time.Time
	for _, e := range entries {
		if len(e.Rest) != 1 {
			continue
		}
		switch {
		case e.Rest[0] == "foo" && (e.Type == dns.TypeA || e.Type == dns.TypeAAAA):
			if aTime.IsZero() || e.Time.Before(aTime) {
				aTime = e.Time
			}
		case e.Rest[0] == "l3" && e.Type == dns.TypeTXT:
			if l3Time.IsZero() || e.Time.Before(l3Time) {
				l3Time = e.Time
			}
		}
	}
	if aTime.IsZero() || l3Time.IsZero() {
		return
	}
	v.SerialLookups = traitOf(aTime.After(l3Time))
}

func extractT02(v *Vector, entries []dnsserver.LogEntry) {
	if !baseSeen(entries) {
		return
	}
	followUps := 0
	for _, e := range entries {
		if e.Type == dns.TypeTXT && len(e.Rest) > 0 {
			followUps++
		}
	}
	v.RespectsLookupLimit = traitOf(followUps <= 10)
	v.RanFullTree = traitOf(followUps >= policy.LimitsTreeSize())
}

func extractT03(v *Vector, entries []dnsserver.LogEntry) {
	if len(entries) == 0 {
		return
	}
	helo := false
	for _, e := range entries {
		if len(e.Rest) == 1 && e.Rest[0] == "helo" && e.Type == dns.TypeTXT {
			helo = true
		}
	}
	v.ChecksHELO = traitOf(helo)
}

func extractT06(v *Vector, entries []dnsserver.LogEntry) {
	if !baseSeen(entries) {
		return
	}
	voids := 0
	for _, e := range entries {
		if len(e.Rest) == 1 && strings.HasPrefix(e.Rest[0], "v") &&
			(e.Type == dns.TypeA || e.Type == dns.TypeAAAA) {
			voids++
		}
	}
	v.RespectsVoidLimit = traitOf(voids <= 3)
}

func extractT08(v *Vector, entries []dnsserver.LogEntry) {
	if !baseSeen(entries) {
		return
	}
	one, two := false, false
	for _, e := range entries {
		if len(e.Rest) != 1 || (e.Type != dns.TypeA && e.Type != dns.TypeAAAA) {
			continue
		}
		if e.Rest[0] == "one" {
			one = true
		}
		if e.Rest[0] == "two" {
			two = true
		}
	}
	v.FollowsOneOfMultiple = traitOf(one || two)
}

func extractT09(v *Vector, entries []dnsserver.LogEntry) {
	if len(entries) == 0 {
		return
	}
	tcp := false
	for _, e := range entries {
		if e.Transport == "tcp" {
			tcp = true
		}
	}
	v.TCPCapable = traitOf(tcp)
}

func extractT10(v *Vector, entries []dnsserver.LogEntry) {
	if !baseSeen(entries) {
		return
	}
	for _, e := range entries {
		if len(e.Rest) == 1 && e.Rest[0] == "l1" && e.OverIPv6 {
			v.IPv6Capable = True
			return
		}
	}
	v.IPv6Capable = False
}

func extractT11(v *Vector, entries []dnsserver.LogEntry) {
	if !baseSeen(entries) {
		return
	}
	lookups := 0
	for _, e := range entries {
		if len(e.Rest) == 1 && strings.HasPrefix(e.Rest[0], "mx") &&
			e.Rest[0] != "mxfarm" && (e.Type == dns.TypeA || e.Type == dns.TypeAAAA) {
			lookups++
		}
	}
	v.RespectsMXLimit = traitOf(lookups <= 10)
}

// Cluster groups vectors by identical signature, largest first.
type Cluster struct {
	Signature string
	MTAs      []string
}

// Clusters groups the vectors into behavioural families.
func Clusters(vectors map[string]*Vector) []Cluster {
	byName := make(map[string][]string)
	for id, v := range vectors {
		byName[v.Signature()] = append(byName[v.Signature()], id)
	}
	out := make([]Cluster, 0, len(byName))
	for sig, ids := range byName {
		sort.Strings(ids)
		out = append(out, Cluster{Signature: sig, MTAs: ids})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].MTAs) != len(out[j].MTAs) {
			return len(out[i].MTAs) > len(out[j].MTAs)
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// Reference is a labelled implementation profile to classify against.
type Reference struct {
	Name   string
	Vector Vector
}

// References returns reference profiles for recognizable validator
// styles. Trait positions an implementation does not determine are
// left Unknown and excluded from matching.
func References() []Reference {
	return []Reference{
		{
			Name: "strict-rfc7208",
			Vector: Vector{
				SerialLookups: True, RespectsLookupLimit: True, RanFullTree: False,
				TolerantMainSyntax: False, TolerantChildSyntax: False,
				RespectsVoidLimit: True, MXFallbackA: False,
				FollowsOneOfMultiple: False, TCPCapable: True,
				RespectsMXLimit: True,
			},
		},
		{
			Name: "limit-ignoring-legacy",
			Vector: Vector{
				SerialLookups: True, RespectsLookupLimit: False, RanFullTree: True,
				RespectsVoidLimit: False, MXFallbackA: True,
				TCPCapable: True, RespectsMXLimit: False,
			},
		},
		{
			Name: "parallel-prefetcher",
			Vector: Vector{
				SerialLookups: False, TCPCapable: True,
			},
		},
		{
			Name: "tolerant-forgiving",
			Vector: Vector{
				SerialLookups: True, TolerantMainSyntax: True,
				TolerantChildSyntax: True, FollowsOneOfMultiple: True,
				TCPCapable: True,
			},
		},
	}
}

// Match is a classification outcome.
type Match struct {
	Name string
	// Disagreements and Comparable are the Hamming distance inputs.
	Disagreements int
	Comparable    int
}

// Score is the agreement fraction (1 = perfect on comparable traits).
func (m Match) Score() float64 {
	if m.Comparable == 0 {
		return 0
	}
	return 1 - float64(m.Disagreements)/float64(m.Comparable)
}

// Classify ranks the references by agreement with v, best first.
// References sharing no comparable traits with v are omitted.
func Classify(v *Vector, refs []Reference) []Match {
	var out []Match
	for i := range refs {
		d, c := Distance(v, &refs[i].Vector)
		if c == 0 {
			continue
		}
		out = append(out, Match{Name: refs[i].Name, Disagreements: d, Comparable: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score() != out[j].Score() {
			return out[i].Score() > out[j].Score()
		}
		if out[i].Comparable != out[j].Comparable {
			return out[i].Comparable > out[j].Comparable
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Describe renders a vector with trait labels for human consumption.
func Describe(v *Vector) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]", v.MTAID, v.Signature())
	traits := v.traits()
	var decided []string
	for i, t := range traits {
		if t != Unknown {
			decided = append(decided, TraitNames[i]+"="+t.String())
		}
	}
	if len(decided) > 0 {
		sb.WriteString(" " + strings.Join(decided, " "))
	}
	return sb.String()
}
