package dns

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"sendervalid/internal/trace"
)

// Request carries a decoded query and its transport context to a
// Handler.
//
// The Msg of a Request served by this package's Server is pooled: a
// handler must not retain it (or slices taken from it) past ServeDNS.
// Strings extracted from it remain valid indefinitely.
type Request struct {
	// Msg is the decoded query.
	Msg *Message
	// RemoteAddr is the client's transport address.
	RemoteAddr net.Addr
	// Transport is "udp" or "tcp".
	Transport string
	// Received is the server's arrival timestamp for the query.
	Received time.Time
	// Span is the query's root trace span when the Server has a
	// Tracer, nil otherwise. Handlers may annotate it (attribution
	// labels, outcome) but must not End it or retain it past ServeDNS:
	// the Server ends the span after the handler returns.
	Span *trace.Span

	// remote caches RemoteAddr.String(); the Server fills it from its
	// per-source cache so log attribution does not re-render the same
	// resolver's address on every query.
	remote string
}

// RemoteString returns RemoteAddr.String(), computed at most once per
// request and pre-filled by the Server from its per-source cache.
func (r *Request) RemoteString() string {
	if r.remote == "" && r.RemoteAddr != nil {
		r.remote = r.RemoteAddr.String()
	}
	return r.remote
}

// ResponseWriter sends a response for one request.
type ResponseWriter interface {
	// WriteMsg packs and transmits the response. Over UDP the response
	// is truncated to the client's advertised payload size.
	WriteMsg(*Message) error
}

// Handler responds to DNS requests.
type Handler interface {
	ServeDNS(w ResponseWriter, r *Request)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(w ResponseWriter, r *Request)

// ServeDNS calls f(w, r).
func (f HandlerFunc) ServeDNS(w ResponseWriter, r *Request) { f(w, r) }

// Server serves DNS over both UDP and TCP on the same address.
//
// The serving path degrades instead of dying: handler panics are
// recovered into SERVFAIL responses, per-source rate limiting (when
// configured) answers floods with REFUSED, and the accept/read loops
// back off on transient errors (EMFILE-class descriptor exhaustion)
// instead of spinning or exiting.
type Server struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// Handler responds to queries. Required.
	Handler Handler
	// ReadTimeout bounds TCP connection idle time. Zero means 10s.
	ReadTimeout time.Duration
	// MaxQPSPerSource, when positive, rate-limits queries per client
	// IP with a token bucket; queries over budget receive REFUSED so
	// a well-behaved resolver backs off rather than timing out.
	MaxQPSPerSource float64
	// BurstPerSource is the per-source token-bucket depth. Zero means 8.
	BurstPerSource int
	// Logf, when set, receives diagnostics for recovered panics and
	// degraded-mode events. Nil discards them.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, opens one root span per served query
	// ("dns.serve"), exposed to the handler as Request.Span. Sampled
	// spans also become exemplars on the serve-latency histogram.
	Tracer *trace.Tracer

	mu       sync.Mutex
	pc       net.PacketConn
	ln       net.Listener
	started  bool
	shutdown chan struct{}
	wg       sync.WaitGroup

	limiter *RateLimiter
	sources sourceCache

	metrics serverMetrics
	panics  Counter
	refused Counter
}

// ErrServerStarted is returned when a server is started twice.
var ErrServerStarted = errors.New("dns: server already started")

// Start binds the UDP and TCP sockets and begins serving in background
// goroutines. It returns the bound address (useful with port 0).
func (s *Server) Start() (net.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return nil, ErrServerStarted
	}
	if s.Handler == nil {
		return nil, errors.New("dns: server has no handler")
	}
	addr := s.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	// Bind UDP and TCP on the same port. With an ephemeral port the
	// TCP side can race other processes, so retry with a fresh UDP
	// socket when the matching TCP port is taken.
	var pc net.PacketConn
	var ln net.Listener
	var err error
	for attempt := 0; ; attempt++ {
		pc, err = net.ListenPacket("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("dns: udp listen: %w", err)
		}
		ln, err = net.Listen("tcp", pc.LocalAddr().String())
		if err == nil {
			break
		}
		pc.Close()
		_, port, splitErr := net.SplitHostPort(addr)
		ephemeral := splitErr == nil && port == "0"
		if !ephemeral || attempt >= 16 {
			return nil, fmt.Errorf("dns: tcp listen: %w", err)
		}
	}
	s.pc, s.ln = pc, ln
	s.shutdown = make(chan struct{})
	s.started = true
	s.metrics.init()
	if s.MaxQPSPerSource > 0 {
		s.limiter = NewRateLimiter(s.MaxQPSPerSource, s.BurstPerSource)
	}
	s.wg.Add(2)
	go s.serveUDP(pc)
	go s.serveTCP(ln)
	return pc.LocalAddr(), nil
}

// LocalAddr returns the bound UDP address, or nil before Start.
func (s *Server) LocalAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pc == nil {
		return nil
	}
	return s.pc.LocalAddr()
}

// Shutdown closes the sockets and waits for in-flight handlers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil
	}
	close(s.shutdown)
	s.pc.Close()
	s.ln.Close()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) closing() bool {
	select {
	case <-s.shutdown:
		return true
	default:
		return false
	}
}

const maxUDPQuery = 4096

// pktPool recycles the 4096-byte buffers that carry one UDP query from
// the read loop into its serving goroutine.
var pktPool = sync.Pool{New: func() any {
	pktPoolMisses.Inc()
	b := make([]byte, maxUDPQuery)
	return &b
}}

// respBufPool recycles response encoding buffers; WriteMsg encodes via
// AppendPack into one of these, so steady-state responses allocate
// nothing for the wire image.
var respBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// sourceCache memoizes the rendered form of client addresses: the full
// addr:port string (query-log attribution) and the bare host (the rate
// limiter's per-source identity). A validating resolver sends bursts
// of queries from one socket, so the same address is rendered once,
// not once per query. The table is bounded like the rate limiter's:
// on overflow it is reset wholesale rather than grown.
type sourceCache struct {
	mu sync.Mutex
	m  map[netip.AddrPort]sourceID
}

type sourceID struct {
	str  string // RemoteAddr.String()
	host string // bare IP, the rate-limiting identity
}

const maxCachedSources = 8192

func (c *sourceCache) lookup(a net.Addr) sourceID {
	var ap netip.AddrPort
	switch v := a.(type) {
	case *net.UDPAddr:
		ap = v.AddrPort()
	case *net.TCPAddr:
		ap = v.AddrPort()
	default:
		return makeSourceID(a)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.m[ap]; ok {
		return id
	}
	if c.m == nil || len(c.m) >= maxCachedSources {
		c.m = make(map[netip.AddrPort]sourceID)
	}
	id := makeSourceID(a)
	c.m[ap] = id
	return id
}

func makeSourceID(a net.Addr) sourceID {
	s := a.String()
	host := s
	if h, _, err := net.SplitHostPort(s); err == nil {
		host = h
	}
	return sourceID{str: s, host: host}
}

// Panics returns the number of handler panics recovered into SERVFAIL
// responses since Start.
func (s *Server) Panics() uint64 { return s.panics.Value() }

// Refused returns the number of queries answered REFUSED by the
// per-source rate limiter since Start.
func (s *Server) Refused() uint64 { return s.refused.Value() }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// backoff sleeps for the current retry delay (interruptible by
// shutdown) and returns the next one: 5ms doubling to 1s, the
// accept-loop discipline net/http uses for EMFILE-class errors.
func (s *Server) backoff(delay time.Duration) time.Duration {
	if delay == 0 {
		delay = 5 * time.Millisecond
	} else if delay *= 2; delay > time.Second {
		delay = time.Second
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.shutdown:
	}
	return delay
}

// overLimit consults the per-source limiter, keyed by the cached bare
// host of the client address.
func (s *Server) overLimit(host string, now time.Time) bool {
	if s.limiter == nil {
		return false
	}
	if s.limiter.Allow(host, now) {
		return false
	}
	s.refused.Inc()
	return true
}

// serveRequest dispatches one request to the handler, converting a
// panic into a SERVFAIL response so one malformed or adversarial query
// cannot take the server down mid-sweep.
func (s *Server) serveRequest(w ResponseWriter, r *Request) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Inc()
			s.logf("dns: handler panic serving %s from %s: %v", describeQuery(r.Msg), r.RemoteAddr, v)
			resp := GetMsg().SetReply(r.Msg)
			resp.RCode = RCodeServerFailure
			_ = w.WriteMsg(resp)
			PutMsg(resp)
		}
	}()
	s.Handler.ServeDNS(w, r)
}

// describeQuery renders the question for panic diagnostics without
// risking a second panic on a degenerate message.
func describeQuery(m *Message) string {
	if m == nil || len(m.Questions) == 0 {
		return "<no question>"
	}
	q := m.Questions[0]
	return fmt.Sprintf("%s %s", q.Name, q.Type)
}

// refuse writes a REFUSED reply for a rate-limited query.
func refuse(w ResponseWriter, msg *Message) {
	resp := GetMsg().SetReply(msg)
	resp.RCode = RCodeRefused
	_ = w.WriteMsg(resp)
	PutMsg(resp)
}

func (s *Server) serveUDP(pc net.PacketConn) {
	defer s.wg.Done()
	buf := make([]byte, maxUDPQuery)
	var delay time.Duration
	for {
		n, raddr, err := pc.ReadFrom(buf)
		if err != nil {
			if s.closing() {
				return
			}
			// Transient socket errors (buffer pressure, ICMP-borne
			// errors): back off instead of spinning on the error.
			delay = s.backoff(delay)
			continue
		}
		delay = 0
		received := time.Now()
		pktPoolGets.Inc()
		pktp := pktPool.Get().(*[]byte)
		copy(*pktp, buf[:n])
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handlePacket(pc, raddr, pktp, n, received)
		}()
	}
}

func (s *Server) handlePacket(pc net.PacketConn, raddr net.Addr, pktp *[]byte, n int, received time.Time) {
	msg := GetMsg()
	defer PutMsg(msg)
	err := msg.Unpack((*pktp)[:n])
	pktPool.Put(pktp) // Unpack copied everything it keeps
	if err != nil || msg.Response {
		return
	}
	s.metrics.queriesUDP.Inc()
	w := &udpResponseWriter{pc: pc, raddr: raddr, maxSize: msg.EDNSUDPSize(), metrics: &s.metrics}
	src := s.sources.lookup(raddr)
	if s.overLimit(src.host, received) {
		refuse(w, msg)
		s.metrics.observeServe(time.Since(received).Seconds())
		return
	}
	sp := s.Tracer.StartSpan("dns.serve")
	if sp != nil {
		sp.SetAttr("transport", "udp")
		sp.SetAttr("client", src.str)
	}
	s.serveRequest(w, &Request{
		Msg:        msg,
		RemoteAddr: raddr,
		Transport:  "udp",
		Received:   received,
		Span:       sp,
		remote:     src.str,
	})
	secs := time.Since(received).Seconds()
	s.metrics.observeServe(secs)
	if sp != nil {
		s.metrics.setServeExemplar(secs, sp.ExemplarID())
		sp.End()
	}
}

func (s *Server) serveTCP(ln net.Listener) {
	defer s.wg.Done()
	var delay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing() {
				return
			}
			// EMFILE-class and other transient accept failures: back
			// off so the process sheds load instead of hot-looping.
			delay = s.backoff(delay)
			continue
		}
		delay = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleTCPConn(conn)
		}()
	}
}

func (s *Server) handleTCPConn(conn net.Conn) {
	defer conn.Close()
	timeout := s.ReadTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	raddr := conn.RemoteAddr()
	src := s.sources.lookup(raddr)
	w := &tcpResponseWriter{conn: conn, metrics: &s.metrics}
	var pkt []byte // per-connection read buffer, grown on demand
	msg := GetMsg()
	defer PutMsg(msg)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(timeout))
		var err error
		pkt, err = readTCPMessageInto(conn, pkt)
		if err != nil {
			return
		}
		received := time.Now()
		if err := msg.Unpack(pkt); err != nil || msg.Response {
			return
		}
		s.metrics.queriesTCP.Inc()
		if s.overLimit(src.host, received) {
			refuse(w, msg)
			s.metrics.observeServe(time.Since(received).Seconds())
			continue
		}
		sp := s.Tracer.StartSpan("dns.serve")
		if sp != nil {
			sp.SetAttr("transport", "tcp")
			sp.SetAttr("client", src.str)
		}
		s.serveRequest(w, &Request{
			Msg:        msg,
			RemoteAddr: raddr,
			Transport:  "tcp",
			Received:   received,
			Span:       sp,
			remote:     src.str,
		})
		secs := time.Since(received).Seconds()
		s.metrics.observeServe(secs)
		if sp != nil {
			s.metrics.setServeExemplar(secs, sp.ExemplarID())
			sp.End()
		}
		if s.closing() {
			return
		}
	}
}

type udpResponseWriter struct {
	pc      net.PacketConn
	raddr   net.Addr
	maxSize int
	metrics *serverMetrics
}

func (w *udpResponseWriter) WriteMsg(m *Message) error {
	if w.metrics != nil {
		w.metrics.rcodes[m.RCode&0x0F].Inc()
	}
	bp := respBufPool.Get().(*[]byte)
	defer respBufPool.Put(bp)
	packed, err := m.AppendPack((*bp)[:0])
	if err != nil {
		return err
	}
	if len(packed) > w.maxSize {
		// Truncate: strip records and set TC so the client retries
		// over TCP.
		trunc := *m
		trunc.Truncated = true
		trunc.Answers, trunc.Authority, trunc.Additional = nil, nil, nil
		if packed, err = trunc.AppendPack(packed[:0]); err != nil {
			return err
		}
	}
	*bp = packed[:0] // keep any growth for the next response
	_, err = w.pc.WriteTo(packed, w.raddr)
	return err
}

type tcpResponseWriter struct {
	conn    net.Conn
	metrics *serverMetrics
}

func (w *tcpResponseWriter) WriteMsg(m *Message) error {
	if w.metrics != nil {
		w.metrics.rcodes[m.RCode&0x0F].Inc()
	}
	bp := respBufPool.Get().(*[]byte)
	defer respBufPool.Put(bp)
	// Encode past a reserved two-octet length prefix (RFC 1035 §4.2.2)
	// so frame and message go out in one write with no extra copy.
	buf := append((*bp)[:0], 0, 0)
	buf, err := m.AppendPack(buf)
	if err != nil {
		return err
	}
	n := len(buf) - 2
	if n > 0xFFFF {
		return ErrRDataTooLong
	}
	buf[0], buf[1] = byte(n>>8), byte(n)
	*bp = buf[:0]
	_, err = w.conn.Write(buf)
	return err
}
