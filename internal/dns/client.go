package dns

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Client exchange errors.
var (
	ErrIDMismatch = errors.New("dns: response ID does not match query")
	ErrNotReply   = errors.New("dns: response flag not set")
)

// Dialer abstracts connection establishment so exchanges can run over
// real sockets or a simulated network fabric.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Client performs DNS exchanges over UDP and TCP.
//
// A zero Client is usable: UDP with a 5-second timeout and automatic
// TCP retry on truncation.
type Client struct {
	// Dialer establishes connections. nil means a net.Dialer.
	Dialer Dialer
	// Timeout bounds a single exchange. Zero means 5 seconds.
	Timeout time.Duration
	// UDPSize is the EDNS0 payload size advertised on UDP queries.
	// Zero means 1232. Negative disables EDNS0.
	UDPSize int
	// DisableTCPFallback suppresses the TCP retry that normally
	// follows a truncated UDP response.
	DisableTCPFallback bool

	mu  sync.Mutex
	rng *rand.Rand
}

const defaultTimeout = 5 * time.Second

func (c *Client) dialer() Dialer {
	if c.Dialer != nil {
		return c.Dialer
	}
	return &net.Dialer{}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return defaultTimeout
}

// nextID returns a fresh transaction ID.
func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return uint16(c.rng.Intn(1 << 16))
}

// Query sends a single-question query for (name, t) to addr and
// returns the response. UDP is tried first, with a TCP retry on
// truncation unless disabled.
func (c *Client) Query(ctx context.Context, addr, name string, t Type) (*Message, error) {
	q := new(Message).SetQuestion(name, t)
	return c.Exchange(ctx, q, addr)
}

// Exchange sends msg to addr and returns the response. The message ID
// is assigned if zero. UDP is tried first, with a TCP retry on
// truncation unless disabled.
func (c *Client) Exchange(ctx context.Context, msg *Message, addr string) (*Message, error) {
	if msg.ID == 0 {
		msg.ID = c.nextID()
	}
	resp, err := c.ExchangeOver(ctx, msg, "udp", addr)
	if err != nil {
		return nil, err
	}
	if resp.Truncated && !c.DisableTCPFallback {
		return c.ExchangeOver(ctx, msg, "tcp", addr)
	}
	return resp, nil
}

// ExchangeOver sends msg to addr over the given network ("udp" or
// "tcp") and returns the response.
func (c *Client) ExchangeOver(ctx context.Context, msg *Message, network, addr string) (*Message, error) {
	if msg.ID == 0 {
		msg.ID = c.nextID()
	}
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()

	wire := msg
	if network == "udp" && c.UDPSize >= 0 {
		// Advertise EDNS0 on a copy so the caller's message is
		// unchanged for a potential TCP retry.
		clone := *msg
		clone.Additional = append([]RR(nil), msg.Additional...)
		size := c.UDPSize
		if size == 0 {
			size = 1232
		}
		clone.SetEDNS(uint16(size))
		wire = &clone
	}
	packed, err := wire.Pack()
	if err != nil {
		return nil, fmt.Errorf("dns: packing query: %w", err)
	}

	conn, err := c.dialer().DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("dns: dialing %s %s: %w", network, addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}

	var respBuf []byte
	switch network {
	case "tcp", "tcp4", "tcp6":
		respBuf, err = exchangeTCP(conn, packed)
	default:
		respBuf, err = exchangeUDP(conn, packed, msg.EDNSUDPSize())
	}
	if err != nil {
		return nil, err
	}

	resp := new(Message)
	if err := resp.Unpack(respBuf); err != nil {
		return nil, fmt.Errorf("dns: unpacking response: %w", err)
	}
	if resp.ID != msg.ID {
		return nil, ErrIDMismatch
	}
	if !resp.Response {
		return nil, ErrNotReply
	}
	return resp, nil
}

func exchangeUDP(conn net.Conn, query []byte, bufSize int) ([]byte, error) {
	if _, err := conn.Write(query); err != nil {
		return nil, fmt.Errorf("dns: udp write: %w", err)
	}
	if bufSize < 512 {
		bufSize = 512
	}
	buf := make([]byte, bufSize+1024)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("dns: udp read: %w", err)
	}
	return buf[:n], nil
}

func exchangeTCP(conn net.Conn, query []byte) ([]byte, error) {
	if err := WriteTCPMessage(conn, query); err != nil {
		return nil, err
	}
	return ReadTCPMessage(conn)
}

// WriteTCPMessage writes a DNS message with the two-octet length
// prefix used over TCP (RFC 1035 §4.2.2).
func WriteTCPMessage(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return ErrRDataTooLong
	}
	framed := make([]byte, 2+len(msg))
	framed[0] = byte(len(msg) >> 8)
	framed[1] = byte(len(msg))
	copy(framed[2:], msg)
	if _, err := w.Write(framed); err != nil {
		return fmt.Errorf("dns: tcp write: %w", err)
	}
	return nil
}

// ReadTCPMessage reads one length-prefixed DNS message from r.
func ReadTCPMessage(r io.Reader) ([]byte, error) {
	return readTCPMessageInto(r, nil)
}

// readTCPMessageInto reads one length-prefixed DNS message, reusing
// buf's backing array when its capacity suffices — the server's
// per-connection read path passes the previous message's buffer back
// in so a query stream allocates once, not once per query.
func readTCPMessageInto(r io.Reader, buf []byte) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("dns: tcp length read: %w", err)
	}
	n := int(lenBuf[0])<<8 | int(lenBuf[1])
	if cap(buf) >= n {
		buf = buf[:n]
	} else {
		buf = make([]byte, n)
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("dns: tcp body read: %w", err)
	}
	return buf, nil
}
