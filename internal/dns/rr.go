package dns

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ErrBadRData is returned when record data does not match its type.
var ErrBadRData = errors.New("dns: malformed rdata")

// RR is a DNS resource record.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file presentation format.
func (rr RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s",
		CanonicalName(rr.Name), rr.TTL, rr.Class, rr.Type, rr.Data.String())
}

// RData is the type-specific data of a resource record.
type RData interface {
	// pack appends the wire form of the rdata (without the RDLENGTH
	// prefix) to the builder.
	pack(b *builder) error
	// String renders the rdata in presentation format.
	String() string
}

// A is an IPv4 address record (RFC 1035 §3.4.1).
type A struct {
	Addr netip.Addr
}

func (d *A) pack(b *builder) error {
	if !d.Addr.Is4() {
		return fmt.Errorf("%w: A record with non-IPv4 address %s", ErrBadRData, d.Addr)
	}
	a4 := d.Addr.As4()
	b.bytes(a4[:])
	return nil
}

func (d *A) String() string { return d.Addr.String() }

// AAAA is an IPv6 address record (RFC 3596).
type AAAA struct {
	Addr netip.Addr
}

func (d *AAAA) pack(b *builder) error {
	if !d.Addr.Is6() || d.Addr.Is4In6() {
		return fmt.Errorf("%w: AAAA record with non-IPv6 address %s", ErrBadRData, d.Addr)
	}
	a16 := d.Addr.As16()
	b.bytes(a16[:])
	return nil
}

func (d *AAAA) String() string { return d.Addr.String() }

// MX is a mail exchanger record (RFC 1035 §3.3.9).
type MX struct {
	Preference uint16
	Host       string
}

func (d *MX) pack(b *builder) error {
	b.uint16(d.Preference)
	return b.packName(d.Host)
}

func (d *MX) String() string {
	return strconv.Itoa(int(d.Preference)) + " " + CanonicalName(d.Host)
}

// TXT is a text record (RFC 1035 §3.3.14). A TXT record carries one or
// more <character-string>s; SPF, DKIM, and DMARC consumers concatenate
// them.
type TXT struct {
	Strings []string
}

func (d *TXT) pack(b *builder) error {
	if len(d.Strings) == 0 {
		return b.charString("")
	}
	for _, s := range d.Strings {
		if err := b.charString(s); err != nil {
			return err
		}
	}
	return nil
}

func (d *TXT) String() string {
	parts := make([]string, len(d.Strings))
	for i, s := range d.Strings {
		parts[i] = strconv.Quote(s)
	}
	return strings.Join(parts, " ")
}

// Joined returns the record's character-strings concatenated without
// separators, as required when interpreting TXT records as SPF
// (RFC 7208 §3.3), DKIM key, or DMARC policy payloads.
func (d *TXT) Joined() string { return strings.Join(d.Strings, "") }

// SplitTXT splits a long payload into 255-octet character-strings
// suitable for a TXT record.
func SplitTXT(payload string) []string {
	if payload == "" {
		return []string{""}
	}
	var out []string
	for len(payload) > 255 {
		out = append(out, payload[:255])
		payload = payload[255:]
	}
	return append(out, payload)
}

// NS is a name-server record.
type NS struct {
	Host string
}

func (d *NS) pack(b *builder) error { return b.packName(d.Host) }
func (d *NS) String() string        { return CanonicalName(d.Host) }

// CNAME is an alias record.
type CNAME struct {
	Target string
}

func (d *CNAME) pack(b *builder) error { return b.packName(d.Target) }
func (d *CNAME) String() string        { return CanonicalName(d.Target) }

// PTR is a pointer record, used for reverse lookups (and by the SPF
// "ptr" mechanism).
type PTR struct {
	Target string
}

func (d *PTR) pack(b *builder) error { return b.packName(d.Target) }
func (d *PTR) String() string        { return CanonicalName(d.Target) }

// SOA is a start-of-authority record (RFC 1035 §3.3.13). The RName
// field carries the zone contact address, which the measurement study
// uses for experiment attribution (§5.3 of the paper).
type SOA struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (d *SOA) pack(b *builder) error {
	if err := b.packName(d.MName); err != nil {
		return err
	}
	if err := b.packName(d.RName); err != nil {
		return err
	}
	b.uint32(d.Serial)
	b.uint32(d.Refresh)
	b.uint32(d.Retry)
	b.uint32(d.Expire)
	b.uint32(d.Minimum)
	return nil
}

func (d *SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		CanonicalName(d.MName), CanonicalName(d.RName),
		d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}

// OPT is an EDNS0 pseudo-record (RFC 6891). Only the advertised UDP
// payload size is modeled; it lives in the RR's Class field on the
// wire, which Message handles during pack/unpack.
type OPT struct {
	// UDPSize is the requestor's advertised maximum UDP payload size.
	UDPSize uint16
}

func (d *OPT) pack(b *builder) error { return nil }
func (d *OPT) String() string        { return fmt.Sprintf("OPT udpsize=%d", d.UDPSize) }

// RawRData carries the rdata of record types this package does not
// interpret (RFC 3597 opaque handling).
type RawRData struct {
	Type Type
	Data []byte
}

func (d *RawRData) pack(b *builder) error {
	b.bytes(d.Data)
	return nil
}

func (d *RawRData) String() string {
	return fmt.Sprintf("\\# %d %x", len(d.Data), d.Data)
}

// packRR appends the full wire form of rr, including the RDLENGTH and
// rdata.
func (b *builder) packRR(rr RR) error {
	if err := b.packName(rr.Name); err != nil {
		return err
	}
	b.uint16(uint16(rr.Type))
	if opt, ok := rr.Data.(*OPT); ok {
		// EDNS0 smuggles the UDP size in the class field.
		b.uint16(opt.UDPSize)
	} else {
		b.uint16(uint16(rr.Class))
	}
	b.uint32(rr.TTL)
	lenOff := len(b.buf)
	b.uint16(0) // RDLENGTH placeholder
	if err := rr.Data.pack(b); err != nil {
		return err
	}
	rdLen := len(b.buf) - lenOff - 2
	if rdLen > 0xFFFF {
		return ErrRDataTooLong
	}
	b.buf[lenOff] = byte(rdLen >> 8)
	b.buf[lenOff+1] = byte(rdLen)
	return nil
}

// unpackRR reads one resource record.
func (p *parser) unpackRR() (RR, error) {
	var rr RR
	name, err := p.name()
	if err != nil {
		return rr, err
	}
	rr.Name = name
	t, err := p.uint16()
	if err != nil {
		return rr, err
	}
	rr.Type = Type(t)
	c, err := p.uint16()
	if err != nil {
		return rr, err
	}
	rr.Class = Class(c)
	ttl, err := p.uint32()
	if err != nil {
		return rr, err
	}
	rr.TTL = ttl
	rdLen, err := p.uint16()
	if err != nil {
		return rr, err
	}
	rdEnd := p.off + int(rdLen)
	if rdEnd > len(p.msg) {
		return rr, ErrMessageTruncated
	}
	rr.Data, err = p.unpackRData(rr.Type, int(rdLen))
	if err != nil {
		return rr, err
	}
	if p.off != rdEnd {
		// Name decompression may read past rdata boundaries only via
		// pointers; a direct mismatch means a malformed record.
		if p.off > rdEnd {
			return rr, ErrBadRData
		}
		p.off = rdEnd
	}
	if rr.Type == TypeOPT {
		rr.Data = &OPT{UDPSize: uint16(rr.Class)}
		rr.Class = ClassINET
	}
	return rr, nil
}

func (p *parser) unpackRData(t Type, rdLen int) (RData, error) {
	switch t {
	case TypeA:
		b, err := p.bytes(4)
		if err != nil {
			return nil, err
		}
		return &A{Addr: netip.AddrFrom4([4]byte(b))}, nil
	case TypeAAAA:
		b, err := p.bytes(16)
		if err != nil {
			return nil, err
		}
		return &AAAA{Addr: netip.AddrFrom16([16]byte(b))}, nil
	case TypeMX:
		pref, err := p.uint16()
		if err != nil {
			return nil, err
		}
		host, err := p.name()
		if err != nil {
			return nil, err
		}
		return &MX{Preference: pref, Host: host}, nil
	case TypeTXT, TypeSPF:
		end := p.off + rdLen
		var strs []string
		for p.off < end {
			s, err := p.charString()
			if err != nil {
				return nil, err
			}
			strs = append(strs, s)
		}
		return &TXT{Strings: strs}, nil
	case TypeNS:
		host, err := p.name()
		if err != nil {
			return nil, err
		}
		return &NS{Host: host}, nil
	case TypeCNAME:
		target, err := p.name()
		if err != nil {
			return nil, err
		}
		return &CNAME{Target: target}, nil
	case TypePTR:
		target, err := p.name()
		if err != nil {
			return nil, err
		}
		return &PTR{Target: target}, nil
	case TypeSOA:
		var soa SOA
		var err error
		if soa.MName, err = p.name(); err != nil {
			return nil, err
		}
		if soa.RName, err = p.name(); err != nil {
			return nil, err
		}
		if soa.Serial, err = p.uint32(); err != nil {
			return nil, err
		}
		if soa.Refresh, err = p.uint32(); err != nil {
			return nil, err
		}
		if soa.Retry, err = p.uint32(); err != nil {
			return nil, err
		}
		if soa.Expire, err = p.uint32(); err != nil {
			return nil, err
		}
		if soa.Minimum, err = p.uint32(); err != nil {
			return nil, err
		}
		return &soa, nil
	default:
		b, err := p.bytes(rdLen)
		if err != nil {
			return nil, err
		}
		return &RawRData{Type: t, Data: append([]byte(nil), b...)}, nil
	}
}
