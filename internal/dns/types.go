// Package dns implements the subset of the DNS protocol needed to build
// authoritative servers, stub resolvers, and measurement instrumentation
// for email sender validation: wire-format packing and unpacking with name
// compression, the record types used by SPF, DKIM, and DMARC (A, AAAA, MX,
// TXT, NS, SOA, CNAME, PTR), EDNS0, and UDP/TCP clients and servers.
//
// The package is self-contained and uses only the standard library. It is
// not a general-purpose DNS library: record types outside the needs of
// RFC 7208 (SPF), RFC 6376 (DKIM), and RFC 7489 (DMARC) are carried as
// opaque RDATA.
package dns

import "fmt"

// Type is a DNS resource record type (RFC 1035 §3.2.2).
type Type uint16

// Record types used by the sender-validation protocols.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeSPF   Type = 99 // historic; RFC 7208 deprecates it in favor of TXT
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone:  "NONE",
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeSPF:   "SPF",
	TypeANY:   "ANY",
}

// String returns the standard mnemonic for the type, or TYPEn for
// unknown types per RFC 3597.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class. Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassINET Class = 1
	ClassANY  Class = 255
)

// String returns the standard mnemonic for the class.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// RCode is a DNS response code (RFC 1035 §4.1.1).
type RCode uint16

// Response codes.
const (
	RCodeSuccess        RCode = 0 // NOERROR
	RCodeFormatError    RCode = 1 // FORMERR
	RCodeServerFailure  RCode = 2 // SERVFAIL
	RCodeNameError      RCode = 3 // NXDOMAIN
	RCodeNotImplemented RCode = 4 // NOTIMP
	RCodeRefused        RCode = 5 // REFUSED
)

var rcodeNames = map[RCode]string{
	RCodeSuccess:        "NOERROR",
	RCodeFormatError:    "FORMERR",
	RCodeServerFailure:  "SERVFAIL",
	RCodeNameError:      "NXDOMAIN",
	RCodeNotImplemented: "NOTIMP",
	RCodeRefused:        "REFUSED",
}

// String returns the standard mnemonic for the response code.
func (r RCode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// Opcode is a DNS operation code.
type Opcode uint16

// Opcodes. Only standard queries are supported.
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
)

// String returns the standard mnemonic for the opcode.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeStatus:
		return "STATUS"
	}
	return fmt.Sprintf("OPCODE%d", uint16(o))
}
