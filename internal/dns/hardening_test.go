package dns

import (
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sendervalid/internal/leaktest"
)

// panicOnHandler panics for one query name and echoes TXT otherwise —
// the shape of a responder bug that only one test's zone tickles.
func panicOnHandler(panicName, payload string) Handler {
	return HandlerFunc(func(w ResponseWriter, r *Request) {
		if strings.HasPrefix(r.Msg.Question().Name, panicName) {
			panic("handler bug: " + panicName)
		}
		echoTXTHandler(payload).ServeDNS(w, r)
	})
}

// TestServerRecoversHandlerPanic verifies a panicking handler takes
// down neither the server nor the query: the client gets SERVFAIL, the
// panic counter ticks, and the next query is served normally.
func TestServerRecoversHandlerPanic(t *testing.T) {
	var logged atomic.Uint64
	srv := &Server{
		Addr:    "127.0.0.1:0",
		Handler: panicOnHandler("boom.", "survived"),
		Logf:    func(format string, args ...any) { logged.Add(1) },
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	c := &Client{Timeout: 2 * time.Second}
	resp, err := c.Query(context.Background(), addr.String(), "boom.example", TypeTXT)
	if err != nil {
		t.Fatalf("query whose handler panicked: %v", err)
	}
	if resp.RCode != RCodeServerFailure {
		t.Errorf("panicked query got rcode %d, want SERVFAIL", resp.RCode)
	}
	if got := srv.Panics(); got != 1 {
		t.Errorf("Panics() = %d, want 1", got)
	}
	if logged.Load() == 0 {
		t.Error("recovered panic was not logged")
	}

	// The server must keep serving after the panic.
	resp, err = c.Query(context.Background(), addr.String(), "ok.example", TypeTXT)
	if err != nil {
		t.Fatalf("query after panic: %v", err)
	}
	if txt := resp.Answers[0].Data.(*TXT); txt.Joined() != "survived" {
		t.Errorf("payload after panic %q", txt.Joined())
	}
}

// TestServerRecoversPanicOverTCP runs the same recovery path on the
// TCP serving goroutine, where an escaped panic would also leak the
// per-connection goroutine.
func TestServerRecoversPanicOverTCP(t *testing.T) {
	defer leaktest.Check(t)()
	srv := &Server{Addr: "127.0.0.1:0", Handler: panicOnHandler("boom.", "tcp ok")}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	c := &Client{Timeout: 2 * time.Second}
	resp, err := c.ExchangeOver(context.Background(),
		new(Message).SetQuestion("boom.example", TypeTXT), "tcp", addr.String())
	if err != nil {
		t.Fatalf("tcp query whose handler panicked: %v", err)
	}
	if resp.RCode != RCodeServerFailure {
		t.Errorf("rcode %d, want SERVFAIL", resp.RCode)
	}
	resp, err = c.ExchangeOver(context.Background(),
		new(Message).SetQuestion("ok.example", TypeTXT), "tcp", addr.String())
	if err != nil {
		t.Fatalf("tcp query after panic: %v", err)
	}
	if txt := resp.Answers[0].Data.(*TXT); txt.Joined() != "tcp ok" {
		t.Errorf("payload %q", txt.Joined())
	}
}

// TestServerRateLimitsPerSource floods the server from one source and
// verifies the overflow is REFUSED (not dropped, not served), counted,
// and that the bucket refills.
func TestServerRateLimitsPerSource(t *testing.T) {
	srv := &Server{
		Addr:            "127.0.0.1:0",
		Handler:         echoTXTHandler("limited"),
		MaxQPSPerSource: 5,
		BurstPerSource:  3,
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	c := &Client{Timeout: 2 * time.Second}
	var served, refused int
	for i := 0; i < 12; i++ {
		resp, err := c.Query(context.Background(), addr.String(), "flood.example", TypeTXT)
		if err != nil {
			t.Fatalf("flood query %d: %v", i, err)
		}
		switch resp.RCode {
		case RCodeSuccess:
			served++
		case RCodeRefused:
			refused++
		default:
			t.Fatalf("flood query %d: rcode %d", i, resp.RCode)
		}
	}
	if refused == 0 {
		t.Fatalf("12 immediate queries at burst 3: none refused (served %d)", served)
	}
	if served < 3 {
		t.Errorf("burst 3 should admit at least 3 queries, served %d", served)
	}
	if got := srv.Refused(); got != uint64(refused) {
		t.Errorf("Refused() = %d, client saw %d refusals", got, refused)
	}

	// After a refill interval the source is served again.
	time.Sleep(400 * time.Millisecond) // 5 qps → 2 tokens
	resp, err := c.Query(context.Background(), addr.String(), "after-refill.example", TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeSuccess {
		t.Errorf("query after refill: rcode %d", resp.RCode)
	}
}

// TestRateLimiterBoundsSourceTable verifies the limiter's memory stays
// bounded under a spoofed-source flood.
func TestRateLimiterBoundsSourceTable(t *testing.T) {
	rl := NewRateLimiter(1, 1)
	now := time.Now()
	for i := 0; i < 3*rl.maxSources; i++ {
		addr := net.UDPAddr{IP: net.IPv4(byte(10), byte(i>>16), byte(i>>8), byte(i)), Port: 53}
		rl.Allow(addr.String(), now)
	}
	if n := rl.Sources(); n > rl.maxSources {
		t.Errorf("source table grew to %d entries, cap is %d", n, rl.maxSources)
	}
}

// TestTCPServerSurvivesShortWrites drips a well-formed TCP query at the
// server one byte at a time — the maximally short write schedule — and
// expects a correct answer.
func TestTCPServerSurvivesShortWrites(t *testing.T) {
	addr := startTestServer(t, echoTXTHandler("drip ok"))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	q := new(Message).SetQuestion("drip.example", TypeTXT)
	q.ID = 77
	packed, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	framed := append([]byte{byte(len(packed) >> 8), byte(len(packed))}, packed...)
	for _, b := range framed {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatalf("dripping query: %v", err)
		}
		time.Sleep(time.Millisecond)
	}

	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	payload, err := ReadTCPMessage(conn)
	if err != nil {
		t.Fatalf("reading dripped answer: %v", err)
	}
	var resp Message
	if err := resp.Unpack(payload); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 77 {
		t.Errorf("answer ID %d", resp.ID)
	}
	if txt := resp.Answers[0].Data.(*TXT); txt.Joined() != "drip ok" {
		t.Errorf("payload %q", txt.Joined())
	}
}

// TestTCPServerCleansUpMidMessageResets abuses the TCP path with
// connections cut mid-message — after the length prefix, mid-body, and
// mid-answer-read — and verifies the server leaks no goroutines and
// keeps serving.
func TestTCPServerCleansUpMidMessageResets(t *testing.T) {
	// Server shutdown is deferred after the leak check is installed, so
	// it runs first and the check sees the post-shutdown state.
	defer leaktest.Check(t)()
	srv := &Server{Addr: "127.0.0.1:0", Handler: echoTXTHandler("still serving")}
	laddr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	addr := laddr.String()

	q := new(Message).SetQuestion("cut.example", TypeTXT)
	packed, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}

	abuse := []func(c net.Conn){
		// Length prefix only, then an abortive close.
		func(c net.Conn) {
			c.Write([]byte{byte(len(packed) >> 8), byte(len(packed))})
		},
		// Prefix plus half the message body.
		func(c net.Conn) {
			c.Write([]byte{byte(len(packed) >> 8), byte(len(packed))})
			c.Write(packed[:len(packed)/2])
		},
		// Full query, but the client vanishes before reading the answer.
		func(c net.Conn) {
			WriteTCPMessage(c, packed)
		},
		// A huge length prefix backed by nothing.
		func(c net.Conn) {
			c.Write([]byte{0xff, 0xff})
		},
	}
	for i, f := range abuse {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("abuse %d: %v", i, err)
		}
		f(conn)
		// Abortive close: RST rather than FIN, so the server-side read
		// fails with a reset, not EOF.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		conn.Close()
	}

	// The abused server still answers over both transports.
	c := &Client{Timeout: 2 * time.Second}
	for _, network := range []string{"udp", "tcp"} {
		resp, err := c.ExchangeOver(context.Background(),
			new(Message).SetQuestion("health.example", TypeTXT), network, addr)
		if err != nil {
			t.Fatalf("%s query after abuse: %v", network, err)
		}
		if txt := resp.Answers[0].Data.(*TXT); txt.Joined() != "still serving" {
			t.Errorf("%s payload %q", network, txt.Joined())
		}
	}
}
