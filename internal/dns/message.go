package dns

import (
	"fmt"
	"strings"
	"sync"
)

// Question is a DNS question section entry.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like presentation format.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

// Message is a DNS message (RFC 1035 §4).
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode

	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// header flag bit masks.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7

	opcodeShift = 11
	opcodeMask  = 0xF
	rcodeMask   = 0xF
)

// Pack encodes the message into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack encodes the message into wire format with name
// compression, appending to dst and returning the extended buffer.
// The message starts at len(dst), so a caller can reserve prefix bytes
// (e.g. the TCP length header) or reuse a pooled buffer with dst[:0];
// packing into a buffer with sufficient capacity performs zero
// allocations.
func (m *Message) AppendPack(dst []byte) ([]byte, error) {
	// Builders are pooled rather than stack-allocated: *builder crosses
	// the RData.pack interface boundary, so escape analysis would heap-
	// allocate one per call otherwise.
	b := builderPool.Get().(*builder)
	defer func() {
		b.buf = nil
		b.nNames = 0
		builderPool.Put(b)
	}()
	b.buf, b.base = dst, len(dst)
	b.uint16(m.ID)
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Opcode&opcodeMask) << opcodeShift
	if m.Authoritative {
		flags |= flagAA
	}
	if m.Truncated {
		flags |= flagTC
	}
	if m.RecursionDesired {
		flags |= flagRD
	}
	if m.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.RCode) & rcodeMask
	b.uint16(flags)
	b.uint16(uint16(len(m.Questions)))
	b.uint16(uint16(len(m.Answers)))
	b.uint16(uint16(len(m.Authority)))
	b.uint16(uint16(len(m.Additional)))
	for _, q := range m.Questions {
		if err := b.packName(q.Name); err != nil {
			return nil, err
		}
		b.uint16(uint16(q.Type))
		b.uint16(uint16(q.Class))
	}
	if err := b.packSection(m.Answers); err != nil {
		return nil, err
	}
	if err := b.packSection(m.Authority); err != nil {
		return nil, err
	}
	if err := b.packSection(m.Additional); err != nil {
		return nil, err
	}
	return b.buf, nil
}

func (b *builder) packSection(rrs []RR) error {
	for _, rr := range rrs {
		if err := b.packRR(rr); err != nil {
			return err
		}
	}
	return nil
}

// msgPool recycles Message values across queries on the serving path.
var msgPool = sync.Pool{New: func() any {
	msgPoolMisses.Inc()
	return new(Message)
}}

// GetMsg returns a pooled Message ready for Unpack, SetQuestion, or
// SetReply. Pooled messages retain their Questions backing array, so a
// steady-state server reuses it instead of allocating per query.
func GetMsg() *Message {
	msgPoolGets.Inc()
	return msgPool.Get().(*Message)
}

// PutMsg resets m and returns it to the pool. The caller must not
// retain m, or any slice taken from it, after PutMsg — in particular a
// handler must not hold a pooled request or response Message past
// ServeDNS. Strings extracted from the message (names, TXT payloads)
// are independent copies and remain valid.
func PutMsg(m *Message) {
	m.Reset()
	msgPool.Put(m)
}

// Reset clears the message for reuse. The Questions backing array is
// retained (it is only ever written through this package's appends);
// the record sections are dropped outright because callers assign
// caller-owned slices to them (e.g. a responder's Records).
func (m *Message) Reset() {
	qs := m.Questions[:0]
	*m = Message{Questions: qs}
}

// Unpack decodes a wire-format message into m, replacing its contents.
// Section backing arrays are reused when their capacity allows, so
// repeatedly unpacking into a pooled Message does not allocate slice
// headers; names and rdata are always independent copies of the input,
// which may therefore be a pooled buffer.
func (m *Message) Unpack(data []byte) error {
	p := &parser{msg: data}
	id, err := p.uint16()
	if err != nil {
		return err
	}
	flags, err := p.uint16()
	if err != nil {
		return err
	}
	oldQuestions := m.Questions
	*m = Message{
		ID:                 id,
		Response:           flags&flagQR != 0,
		Opcode:             Opcode(flags >> opcodeShift & opcodeMask),
		Authoritative:      flags&flagAA != 0,
		Truncated:          flags&flagTC != 0,
		RecursionDesired:   flags&flagRD != 0,
		RecursionAvailable: flags&flagRA != 0,
		RCode:              RCode(flags & rcodeMask),
		Questions:          oldQuestions[:0],
		Answers:            m.Answers[:0],
		Authority:          m.Authority[:0],
		Additional:         m.Additional[:0],
	}
	qdCount, err := p.uint16()
	if err != nil {
		return err
	}
	anCount, err := p.uint16()
	if err != nil {
		return err
	}
	nsCount, err := p.uint16()
	if err != nil {
		return err
	}
	arCount, err := p.uint16()
	if err != nil {
		return err
	}
	for i := range int(qdCount) {
		// The name most likely to arrive next is the one this slot held
		// last time (a pooled Message on a busy server, or a retry);
		// matching against it avoids rebuilding an identical string.
		var hint string
		if i < len(oldQuestions) {
			hint = oldQuestions[i].Name
		}
		name, err := p.nameHint(hint)
		if err != nil {
			return err
		}
		t, err := p.uint16()
		if err != nil {
			return err
		}
		c, err := p.uint16()
		if err != nil {
			return err
		}
		m.Questions = append(m.Questions, Question{Name: name, Type: Type(t), Class: Class(c)})
	}
	for _, section := range []struct {
		count int
		dst   *[]RR
	}{
		{int(anCount), &m.Answers},
		{int(nsCount), &m.Authority},
		{int(arCount), &m.Additional},
	} {
		for range section.count {
			rr, err := p.unpackRR()
			if err != nil {
				return err
			}
			*section.dst = append(*section.dst, rr)
		}
	}
	return nil
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// SetQuestion resets the message to a query for (name, t) with a fresh
// recursion-desired header, preserving the ID.
func (m *Message) SetQuestion(name string, t Type) *Message {
	id := m.ID
	*m = Message{
		ID:               id,
		RecursionDesired: true,
		Questions: []Question{{
			Name:  CanonicalName(name),
			Type:  t,
			Class: ClassINET,
		}},
	}
	return m
}

// SetReply resets the message to a response to req, copying the ID,
// question, opcode, and recursion-desired flag. The receiver's
// existing Questions backing array is reused when its capacity allows,
// so replying via a pooled Message does not allocate the copy.
func (m *Message) SetReply(req *Message) *Message {
	qs := append(m.Questions[:0], req.Questions...)
	*m = Message{
		ID:               req.ID,
		Response:         true,
		Opcode:           req.Opcode,
		RecursionDesired: req.RecursionDesired,
		Questions:        qs,
	}
	return m
}

// EDNSUDPSize returns the EDNS0-advertised UDP payload size from the
// additional section, or 512 if the message carries no OPT record.
func (m *Message) EDNSUDPSize() int {
	for _, rr := range m.Additional {
		if opt, ok := rr.Data.(*OPT); ok {
			if opt.UDPSize < 512 {
				return 512
			}
			return int(opt.UDPSize)
		}
	}
	return 512
}

// SetEDNS attaches an OPT record advertising the given UDP payload
// size, replacing any existing OPT record.
func (m *Message) SetEDNS(udpSize uint16) {
	filtered := m.Additional[:0]
	for _, rr := range m.Additional {
		if _, ok := rr.Data.(*OPT); !ok {
			filtered = append(filtered, rr)
		}
	}
	m.Additional = append(filtered, RR{
		Name: ".",
		Type: TypeOPT,
		Data: &OPT{UDPSize: udpSize},
	})
}

// String renders the message in a dig-like presentation format.
func (m *Message) String() string {
	var sb strings.Builder
	kind := "query"
	if m.Response {
		kind = "response"
	}
	fmt.Fprintf(&sb, ";; %s %s id=%d rcode=%s", m.Opcode, kind, m.ID, m.RCode)
	for _, f := range []struct {
		set  bool
		name string
	}{
		{m.Authoritative, "aa"},
		{m.Truncated, "tc"},
		{m.RecursionDesired, "rd"},
		{m.RecursionAvailable, "ra"},
	} {
		if f.set {
			sb.WriteString(" +" + f.name)
		}
	}
	sb.WriteByte('\n')
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for _, section := range []struct {
		label string
		rrs   []RR
	}{
		{"ANSWER", m.Answers},
		{"AUTHORITY", m.Authority},
		{"ADDITIONAL", m.Additional},
	} {
		if len(section.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";; %s\n", section.label)
		for _, rr := range section.rrs {
			sb.WriteString(rr.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
