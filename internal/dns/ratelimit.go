package dns

import (
	"sync"
	"time"
)

// RateLimiter is a per-source token-bucket limiter for query serving.
// Each source (client IP, ports ignored) gets its own bucket of burst
// tokens refilled at rate tokens/second; a query that finds the bucket
// empty is refused. The tracked-source table is bounded: when it
// fills, stale full buckets are swept, and if every bucket is active
// the table is reset wholesale — under that much source churn the
// limiter is being used as a DoS shield and fairness per source
// matters less than staying O(1) in memory.
type RateLimiter struct {
	rate  float64
	burst float64

	mu         sync.Mutex
	buckets    map[string]*srcBucket
	maxSources int
}

type srcBucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter creates a limiter granting each source rate queries
// per second with the given burst. burst <= 0 defaults to 8.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if burst <= 0 {
		burst = 8
	}
	return &RateLimiter{
		rate:       rate,
		burst:      float64(burst),
		buckets:    make(map[string]*srcBucket),
		maxSources: 8192,
	}
}

// Allow reports whether a query from source may be served at now,
// consuming one token when it may.
func (rl *RateLimiter) Allow(source string, now time.Time) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.buckets[source]
	if !ok {
		if len(rl.buckets) >= rl.maxSources {
			rl.sweepLocked(now)
		}
		b = &srcBucket{tokens: rl.burst, last: now}
		rl.buckets[source] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * rl.rate
			if b.tokens > rl.burst {
				b.tokens = rl.burst
			}
			b.last = now
		}
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweepLocked evicts sources whose buckets have fully refilled (idle
// long enough to be indistinguishable from new). Caller holds mu.
func (rl *RateLimiter) sweepLocked(now time.Time) {
	for src, b := range rl.buckets {
		idle := now.Sub(b.last).Seconds()
		if b.tokens+idle*rl.rate >= rl.burst {
			delete(rl.buckets, src)
		}
	}
	if len(rl.buckets) >= rl.maxSources {
		// Every tracked source is mid-burst: an address-diverse flood.
		// Reset rather than grow without bound.
		rl.buckets = make(map[string]*srcBucket)
	}
}

// Sources returns the number of tracked sources.
func (rl *RateLimiter) Sources() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.buckets)
}
