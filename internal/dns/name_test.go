package dns

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"example.com", "example.com."},
		{"example.com.", "example.com."},
		{"EXAMPLE.Com", "example.com."},
		{"a.B.c.", "a.b.c."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEqualNames(t *testing.T) {
	if !EqualNames("Example.COM", "example.com.") {
		t.Error("case/dot-insensitive comparison failed")
	}
	if EqualNames("example.com", "example.org") {
		t.Error("distinct names compared equal")
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"a.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "a.example.com", false},
		{"notexample.com", "example.com", false},
		{"anything.net", ".", true},
		{"deep.a.b.example.com.", "EXAMPLE.com", true},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	got := SplitLabels("a.b.Example.com.")
	want := []string{"a", "b", "example", "com"}
	if len(got) != len(want) {
		t.Fatalf("SplitLabels returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitLabels returned %v, want %v", got, want)
		}
	}
	if SplitLabels(".") != nil {
		t.Error("SplitLabels of root should be nil")
	}
	if CountLabels("a.b.c") != 3 {
		t.Error("CountLabels mismatch")
	}
}

func TestValidateName(t *testing.T) {
	if err := ValidateName("ok.example.com"); err != nil {
		t.Errorf("valid name rejected: %v", err)
	}
	if err := ValidateName("."); err != nil {
		t.Errorf("root rejected: %v", err)
	}
	if err := ValidateName(strings.Repeat("a", 64) + ".com"); err != ErrLabelTooLong {
		t.Errorf("long label: got %v, want ErrLabelTooLong", err)
	}
	if err := ValidateName("a..b.com"); err != ErrEmptyLabel {
		t.Errorf("empty label: got %v, want ErrEmptyLabel", err)
	}
	long := strings.Repeat(strings.Repeat("a", 63)+".", 5)
	if err := ValidateName(long); err != ErrNameTooLong {
		t.Errorf("long name: got %v, want ErrNameTooLong", err)
	}
}

func TestNameRoundTrip(t *testing.T) {
	names := []string{
		".",
		"com.",
		"example.com.",
		"a.very.deep.sub.domain.example.com.",
		"xn--idn.example.",
		"l1.t01.m0042.spf-test.dns-lab.org.",
	}
	for _, name := range names {
		b := newBuilder()
		if err := b.packName(name); err != nil {
			t.Fatalf("packName(%q): %v", name, err)
		}
		got, next, err := unpackName(b.buf, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", name, err)
		}
		if got != name {
			t.Errorf("round trip %q -> %q", name, got)
		}
		if next != len(b.buf) {
			t.Errorf("unpackName(%q) consumed %d of %d bytes", name, next, len(b.buf))
		}
	}
}

func TestNameCompression(t *testing.T) {
	b := newBuilder()
	if err := b.packName("mail.example.com."); err != nil {
		t.Fatal(err)
	}
	firstLen := len(b.buf)
	if err := b.packName("www.example.com."); err != nil {
		t.Fatal(err)
	}
	// The second name should reuse the "example.com." suffix through a
	// 2-octet pointer: 1+3 ("www") + 2 (pointer) = 6 octets.
	if got := len(b.buf) - firstLen; got != 6 {
		t.Errorf("compressed second name used %d octets, want 6", got)
	}
	name, _, err := unpackName(b.buf, firstLen)
	if err != nil {
		t.Fatal(err)
	}
	if name != "www.example.com." {
		t.Errorf("decompressed to %q", name)
	}
	// Exact repeat should collapse to a single pointer.
	secondLen := len(b.buf)
	if err := b.packName("mail.example.com."); err != nil {
		t.Fatal(err)
	}
	if got := len(b.buf) - secondLen; got != 2 {
		t.Errorf("fully-compressed name used %d octets, want 2", got)
	}
}

func TestUnpackNamePointerLoop(t *testing.T) {
	// A pointer that targets itself must be rejected, not looped.
	msg := []byte{0xC0, 0x00}
	if _, _, err := unpackName(msg, 0); err == nil {
		t.Error("self-referential pointer accepted")
	}
	// Forward pointers are illegal.
	msg = []byte{0xC0, 0x05, 0, 0, 0, 1, 'a', 0}
	if _, _, err := unpackName(msg, 0); err == nil {
		t.Error("forward pointer accepted")
	}
}

func TestUnpackNameTruncated(t *testing.T) {
	b := newBuilder()
	if err := b.packName("example.com."); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(b.buf); i++ {
		if _, _, err := unpackName(b.buf[:i], 0); err == nil {
			t.Errorf("truncation at %d octets accepted", i)
		}
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	// Property: any syntactically valid lowercase name survives a
	// pack/unpack round trip.
	f := func(rawLabels [][]byte) bool {
		var labels []string
		size := 1
		for _, raw := range rawLabels {
			if len(raw) == 0 {
				continue
			}
			if len(raw) > maxLabelLen {
				raw = raw[:maxLabelLen]
			}
			label := make([]byte, len(raw))
			for i, c := range raw {
				label[i] = "abcdefghijklmnopqrstuvwxyz0123456789-"[int(c)%37]
			}
			if size+len(label)+1 > maxNameLen {
				break
			}
			size += len(label) + 1
			labels = append(labels, string(label))
		}
		name := CanonicalName(strings.Join(labels, "."))
		b := newBuilder()
		if err := b.packName(name); err != nil {
			return false
		}
		got, _, err := unpackName(b.buf, 0)
		return err == nil && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLowerASCII(t *testing.T) {
	if got := string(lowerASCII([]byte("MiXeD-09"))); got != "mixed-09" {
		t.Errorf("lowerASCII = %q", got)
	}
	in := []byte("already")
	if got := lowerASCII(in); &got[0] != &in[0] {
		t.Error("lowerASCII copied an already-lowercase label")
	}
}
