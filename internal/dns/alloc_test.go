package dns

import (
	"bytes"
	"testing"
)

// The serving hot path promises allocation-free encode and (for repeat
// queries into a pooled message) allocation-free decode. These tests
// pin that contract so a regression shows up as a test failure, not
// just a drifting benchmark number.

func TestAppendPackZeroAlloc(t *testing.T) {
	msg := new(Message).SetQuestion("t01.m000001.spf-test.dns-lab.example.", TypeTXT)
	msg.Answers = append(msg.Answers, RR{
		Name: msg.Question().Name, Type: TypeTXT, Class: ClassINET, TTL: 60,
		Data: &TXT{Strings: []string{"v=spf1 ip4:192.0.2.0/24 ?all"}},
	})
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = msg.AppendPack(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendPack into reused buffer: %v allocs/op, want 0", allocs)
	}
}

func TestAppendPackMatchesPackAtOffset(t *testing.T) {
	msg := sampleMessage()
	want, err := msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Encoding after existing bytes (the TCP writer reserves a 2-octet
	// length prefix) must produce the same message bytes: compression
	// offsets are message-relative, not buffer-relative.
	prefix := []byte{0xAB, 0xCD}
	got, err := msg.AppendPack(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2], prefix) {
		t.Error("AppendPack clobbered existing buffer bytes")
	}
	if !bytes.Equal(got[2:], want) {
		t.Error("AppendPack at offset differs from Pack")
	}
}

func TestPooledUnpackZeroAlloc(t *testing.T) {
	packed, err := new(Message).SetQuestion("t01.m000001.spf-test.dns-lab.example.", TypeTXT).Pack()
	if err != nil {
		t.Fatal(err)
	}
	msg := GetMsg()
	defer PutMsg(msg)
	// Repeat unpacks of the same query reuse the pooled message's
	// question backing and previous name via the wire-match hint.
	allocs := testing.AllocsPerRun(100, func() {
		if err := msg.Unpack(packed); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("repeat Unpack into pooled message: %v allocs/op, want 0", allocs)
	}
	if msg.Question().Name != "t01.m000001.spf-test.dns-lab.example." {
		t.Errorf("hint-path unpack corrupted question: %q", msg.Question().Name)
	}
}

func TestSetReplyReusesQuestionBacking(t *testing.T) {
	req := new(Message).SetQuestion("example.com.", TypeTXT)
	resp := new(Message)
	resp.Questions = append(resp.Questions, Question{Name: "stale.", Type: TypeA, Class: ClassINET})
	before := &resp.Questions[0]
	resp.SetReply(req)
	if &resp.Questions[0] != before {
		t.Error("SetReply reallocated the question backing array")
	}
	if resp.Question().Name != "example.com." {
		t.Errorf("SetReply question: %q", resp.Question().Name)
	}
	allocs := testing.AllocsPerRun(100, func() { resp.SetReply(req) })
	if allocs != 0 {
		t.Errorf("SetReply with sufficient capacity: %v allocs/op, want 0", allocs)
	}
}

func TestCanonicalNameFastPath(t *testing.T) {
	name := "already.canonical.example."
	if got := CanonicalName(name); got != name {
		t.Fatalf("CanonicalName(%q) = %q", name, got)
	}
	allocs := testing.AllocsPerRun(100, func() { _ = CanonicalName(name) })
	if allocs != 0 {
		t.Errorf("CanonicalName on canonical input: %v allocs/op, want 0", allocs)
	}
	// The slow path still canonicalizes.
	if got := CanonicalName("MiXeD.Example"); got != "mixed.example." {
		t.Errorf("slow path: %q", got)
	}
}
