package dns

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		ID:                 0x1234,
		Response:           true,
		Authoritative:      true,
		RecursionDesired:   true,
		RecursionAvailable: true,
		RCode:              RCodeSuccess,
		Questions: []Question{
			{Name: "example.com.", Type: TypeTXT, Class: ClassINET},
		},
		Answers: []RR{
			{Name: "example.com.", Type: TypeTXT, Class: ClassINET, TTL: 300,
				Data: &TXT{Strings: []string{"v=spf1 ip4:192.0.2.1 -all"}}},
			{Name: "example.com.", Type: TypeMX, Class: ClassINET, TTL: 300,
				Data: &MX{Preference: 10, Host: "mail.example.com."}},
			{Name: "mail.example.com.", Type: TypeA, Class: ClassINET, TTL: 300,
				Data: &A{Addr: netip.MustParseAddr("192.0.2.1")}},
			{Name: "mail.example.com.", Type: TypeAAAA, Class: ClassINET, TTL: 300,
				Data: &AAAA{Addr: netip.MustParseAddr("2001:db8::1")}},
			{Name: "alias.example.com.", Type: TypeCNAME, Class: ClassINET, TTL: 300,
				Data: &CNAME{Target: "mail.example.com."}},
		},
		Authority: []RR{
			{Name: "example.com.", Type: TypeSOA, Class: ClassINET, TTL: 3600,
				Data: &SOA{MName: "ns1.example.com.", RName: "hostmaster.example.com.",
					Serial: 2021120701, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}},
			{Name: "example.com.", Type: TypeNS, Class: ClassINET, TTL: 3600,
				Data: &NS{Host: "ns1.example.com."}},
		},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	orig := sampleMessage()
	packed, err := orig.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	var got Message
	if err := got.Unpack(packed); err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(&got, orig) {
		t.Errorf("round trip mismatch:\n got: %+v\nwant: %+v", &got, orig)
	}
}

func TestMessageCompressionSavesSpace(t *testing.T) {
	msg := sampleMessage()
	packed, err := msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Rough check: the repeated "example.com." suffix should appear in
	// full only once.
	if n := strings.Count(string(packed), "\x07example\x03com"); n != 1 {
		t.Errorf("uncompressed suffix appears %d times, want 1", n)
	}
}

func TestMessageHeaderFlags(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Message)
		get  func(*Message) bool
	}{
		{"QR", func(m *Message) { m.Response = true }, func(m *Message) bool { return m.Response }},
		{"AA", func(m *Message) { m.Authoritative = true }, func(m *Message) bool { return m.Authoritative }},
		{"TC", func(m *Message) { m.Truncated = true }, func(m *Message) bool { return m.Truncated }},
		{"RD", func(m *Message) { m.RecursionDesired = true }, func(m *Message) bool { return m.RecursionDesired }},
		{"RA", func(m *Message) { m.RecursionAvailable = true }, func(m *Message) bool { return m.RecursionAvailable }},
	} {
		m := &Message{ID: 1}
		tc.mut(m)
		packed, err := m.Pack()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var got Message
		if err := got.Unpack(packed); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !tc.get(&got) {
			t.Errorf("flag %s lost in round trip", tc.name)
		}
	}
}

func TestMessageRCodeRoundTrip(t *testing.T) {
	for _, rc := range []RCode{RCodeSuccess, RCodeFormatError, RCodeServerFailure,
		RCodeNameError, RCodeNotImplemented, RCodeRefused} {
		m := &Message{ID: 7, Response: true, RCode: rc}
		packed, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		var got Message
		if err := got.Unpack(packed); err != nil {
			t.Fatal(err)
		}
		if got.RCode != rc {
			t.Errorf("RCode %s round-tripped to %s", rc, got.RCode)
		}
	}
}

func TestSetQuestionSetReply(t *testing.T) {
	q := new(Message).SetQuestion("Example.COM", TypeTXT)
	if q.Question().Name != "example.com." {
		t.Errorf("question name %q", q.Question().Name)
	}
	if !q.RecursionDesired {
		t.Error("SetQuestion should request recursion")
	}
	q.ID = 99
	r := new(Message).SetReply(q)
	if r.ID != 99 || !r.Response || len(r.Questions) != 1 {
		t.Errorf("SetReply produced %+v", r)
	}
	if (&Message{}).Question() != (Question{}) {
		t.Error("empty message Question() should be zero")
	}
}

func TestEDNS(t *testing.T) {
	m := new(Message).SetQuestion("example.com", TypeA)
	if got := m.EDNSUDPSize(); got != 512 {
		t.Errorf("default UDP size %d, want 512", got)
	}
	m.SetEDNS(1232)
	if got := m.EDNSUDPSize(); got != 1232 {
		t.Errorf("EDNS UDP size %d, want 1232", got)
	}
	// Replacing must not accumulate OPT records.
	m.SetEDNS(4096)
	if len(m.Additional) != 1 {
		t.Errorf("SetEDNS accumulated %d additional records", len(m.Additional))
	}
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(packed); err != nil {
		t.Fatal(err)
	}
	if got.EDNSUDPSize() != 4096 {
		t.Errorf("EDNS size after round trip: %d", got.EDNSUDPSize())
	}
}

func TestEDNSMinimum(t *testing.T) {
	m := new(Message).SetQuestion("example.com", TypeA)
	m.SetEDNS(100) // below the 512 floor
	if got := m.EDNSUDPSize(); got != 512 {
		t.Errorf("sub-512 advertisement yielded %d, want 512 floor", got)
	}
}

func TestTXTJoinedAndSplit(t *testing.T) {
	long := strings.Repeat("x", 600)
	parts := SplitTXT(long)
	if len(parts) != 3 || len(parts[0]) != 255 || len(parts[2]) != 90 {
		t.Fatalf("SplitTXT lengths: %v", func() []int {
			var ls []int
			for _, p := range parts {
				ls = append(ls, len(p))
			}
			return ls
		}())
	}
	txt := &TXT{Strings: parts}
	if txt.Joined() != long {
		t.Error("Joined did not reassemble the payload")
	}
	if got := SplitTXT(""); len(got) != 1 || got[0] != "" {
		t.Errorf("SplitTXT(\"\") = %v", got)
	}
}

func TestUnpackMalformed(t *testing.T) {
	good, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation of a valid message must fail cleanly, not panic.
	for i := 0; i < len(good); i++ {
		var m Message
		if err := m.Unpack(good[:i]); err == nil && i < 12 {
			t.Errorf("header truncation at %d accepted", i)
		}
	}
	var m Message
	if err := m.Unpack(nil); err == nil {
		t.Error("empty message accepted")
	}
}

func TestUnpackRawRData(t *testing.T) {
	// An unknown type must round-trip as opaque bytes.
	orig := &Message{
		ID:       5,
		Response: true,
		Answers: []RR{{
			Name: "example.com.", Type: Type(251), Class: ClassINET, TTL: 60,
			Data: &RawRData{Type: Type(251), Data: []byte{1, 2, 3, 4}},
		}},
	}
	packed, err := orig.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(packed); err != nil {
		t.Fatal(err)
	}
	raw, ok := got.Answers[0].Data.(*RawRData)
	if !ok || !reflect.DeepEqual(raw.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("raw rdata mismatch: %+v", got.Answers[0].Data)
	}
}

func TestBadRDataRejected(t *testing.T) {
	m := &Message{ID: 1, Answers: []RR{{
		Name: "x.example.", Type: TypeA, Class: ClassINET,
		Data: &A{Addr: netip.MustParseAddr("2001:db8::1")},
	}}}
	if _, err := m.Pack(); err == nil {
		t.Error("A record with IPv6 address packed successfully")
	}
	m.Answers[0] = RR{Name: "x.example.", Type: TypeAAAA, Class: ClassINET,
		Data: &AAAA{Addr: netip.MustParseAddr("192.0.2.1")}}
	if _, err := m.Pack(); err == nil {
		t.Error("AAAA record with IPv4 address packed successfully")
	}
}

func TestMessageStringRendering(t *testing.T) {
	s := sampleMessage().String()
	for _, want := range []string{"NOERROR", "example.com.", "ANSWER", "AUTHORITY", "+aa"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
	for _, rr := range sampleMessage().Answers {
		if rr.String() == "" {
			t.Error("empty RR string")
		}
	}
}

func TestUnpackFuzzResilience(t *testing.T) {
	// Property: Unpack never panics on arbitrary input.
	f := func(data []byte) bool {
		var m Message
		_ = m.Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuestionRoundTripProperty(t *testing.T) {
	f := func(id uint16, t8 uint8) bool {
		m := &Message{ID: id}
		m.SetQuestion("probe.example.com", Type(t8))
		m.ID = id
		packed, err := m.Pack()
		if err != nil {
			return false
		}
		var got Message
		if err := got.Unpack(packed); err != nil {
			return false
		}
		return got.ID == id && got.Question().Type == Type(t8) &&
			got.Question().Name == "probe.example.com."
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeClassStrings(t *testing.T) {
	if TypeTXT.String() != "TXT" || Type(999).String() != "TYPE999" {
		t.Error("Type.String mismatch")
	}
	if ClassINET.String() != "IN" || Class(7).String() != "CLASS7" {
		t.Error("Class.String mismatch")
	}
	if RCodeNameError.String() != "NXDOMAIN" || RCode(12).String() != "RCODE12" {
		t.Error("RCode.String mismatch")
	}
	if OpcodeQuery.String() != "QUERY" || Opcode(5).String() != "OPCODE5" {
		t.Error("Opcode.String mismatch")
	}
}
