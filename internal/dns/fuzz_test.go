package dns

import (
	"bytes"
	"testing"
)

// FuzzMessageUnpack throws arbitrary bytes at the wire-format parser —
// the first code every hostile packet reaches. The invariant is
// narrow and absolute: Unpack may reject, but must never panic, and
// anything it accepts must survive a Pack/Unpack round trip.
//
// The seed corpus covers the interesting shapes: a real query, a real
// answer, compression pointers, truncated headers, and pointer loops.
// `go test -run=^Fuzz` (part of make check) replays the seeds; `go
// test -fuzz=FuzzMessageUnpack` explores from them.
func FuzzMessageUnpack(f *testing.F) {
	// A real query and a real TXT answer.
	q := new(Message).SetQuestion("probe.spf-test.example.com", TypeTXT)
	q.ID = 0x1234
	if packed, err := q.Pack(); err == nil {
		f.Add(packed)
	}
	resp := new(Message).SetReply(q)
	resp.Authoritative = true
	resp.Answers = append(resp.Answers, RR{
		Name: "probe.spf-test.example.com.", Type: TypeTXT, Class: ClassINET, TTL: 60,
		Data: &TXT{Strings: []string{"v=spf1 include:other.example -all"}},
	})
	if packed, err := resp.Pack(); err == nil {
		f.Add(packed)
	}
	// Degenerate shapes.
	f.Add([]byte{})                                                               // empty
	f.Add([]byte{0x00, 0x01})                                                     // short header
	f.Add([]byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 0x0c, 0, 16, 0, 1}) // pointer into the header
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 0x0c, 0, 1, 0, 1})     // self-referencing compression pointer
	f.Add([]byte{0, 2, 1, 0, 0, 255, 0, 255, 0, 255, 0, 255})                     // absurd section counts

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unpack(data); err != nil {
			return // rejection is fine; panicking is not
		}
		repacked, err := m.Pack()
		if err != nil {
			// Some accepted messages are not re-packable (e.g. names
			// that decompressed past length limits); rejection at this
			// stage is also fine.
			return
		}
		var m2 Message
		if err := m2.Unpack(repacked); err != nil {
			t.Fatalf("repacked message does not unpack: %v", err)
		}
		// AppendPack parity: encoding after existing bytes (as the TCP
		// writer does past its length prefix) must produce exactly the
		// Pack output — compression offsets are message-relative.
		prefixed, err := m.AppendPack([]byte{0xFE, 0xFD})
		if err != nil {
			t.Fatalf("AppendPack fails where Pack succeeded: %v", err)
		}
		if !bytes.Equal(prefixed[2:], repacked) {
			t.Fatalf("AppendPack at offset diverges from Pack:\n got %x\nwant %x",
				prefixed[2:], repacked)
		}
	})
}

// FuzzNameUnpack targets the name decompressor on its own: names are
// where DNS parsers historically break (pointer loops, pointer chains
// that expand quadratically, labels running past the buffer).
func FuzzNameUnpack(f *testing.F) {
	f.Add([]byte{3, 'w', 'w', 'w', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0})
	f.Add([]byte{0xc0, 0x00})         // pointer to itself
	f.Add([]byte{1, 'a', 0xc0, 0x00}) // loop through a label
	f.Add([]byte{63, 0})              // label length past the end
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		_ = m.Unpack(data)
	})
}
