package dns

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

// TestServerIgnoresGarbagePackets sends raw junk at the UDP socket and
// verifies the server neither crashes nor answers, then still serves a
// well-formed query.
func TestServerIgnoresGarbagePackets(t *testing.T) {
	addr := startTestServer(t, echoTXTHandler("still alive"))
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, junk := range [][]byte{
		{},
		{0x01},
		[]byte(strings.Repeat("\xff", 600)),
		{0, 1, 0x80, 0}, // response bit set: must be dropped
	} {
		if len(junk) > 0 {
			if _, err := conn.Write(junk); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 512)
	if n, err := conn.Read(buf); err == nil {
		t.Errorf("server answered garbage with %d bytes", n)
	}

	c := &Client{Timeout: 2 * time.Second}
	resp, err := c.Query(context.Background(), addr, "after-garbage.example", TypeTXT)
	if err != nil {
		t.Fatalf("query after garbage: %v", err)
	}
	if txt := resp.Answers[0].Data.(*TXT); txt.Joined() != "still alive" {
		t.Errorf("payload %q", txt.Joined())
	}
}

// TestServerIgnoresResponses verifies a packet with QR=1 (a response,
// possibly reflected) is never answered — a reflection-loop guard.
func TestServerIgnoresResponses(t *testing.T) {
	addr := startTestServer(t, echoTXTHandler("x"))
	reply := new(Message).SetQuestion("loop.example", TypeTXT)
	reply.Response = true
	reply.ID = 99
	packed, err := reply.Pack()
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(packed); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 512)
	if n, err := conn.Read(buf); err == nil {
		t.Errorf("server answered a response packet with %d bytes", n)
	}
}

// TestTCPGarbageConnection opens TCP connections that violate framing
// and verifies the server closes them without harm.
func TestTCPGarbageConnection(t *testing.T) {
	addr := startTestServer(t, echoTXTHandler("tcp alive"))
	// Connection that sends a length prefix and nothing else.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte{0x40, 0x00}) // promises 16 KiB, delivers none
	conn.Close()

	// Connection that sends framed garbage.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTCPMessage(conn2, []byte("this is not dns")); err != nil {
		t.Fatal(err)
	}
	_ = conn2.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 64)
	if _, err := conn2.Read(buf); err == nil {
		t.Error("framed garbage got a response")
	}
	conn2.Close()

	// The server still answers real TCP queries.
	c := &Client{Timeout: 2 * time.Second}
	resp, err := c.ExchangeOver(context.Background(),
		new(Message).SetQuestion("x.example", TypeTXT), "tcp", addr)
	if err != nil {
		t.Fatalf("tcp query after abuse: %v", err)
	}
	if txt := resp.Answers[0].Data.(*TXT); txt.Joined() != "tcp alive" {
		t.Errorf("payload %q", txt.Joined())
	}
}

// TestClientRejectsMismatchedID fabricates a spoofed answer with the
// wrong transaction ID.
func TestClientRejectsMismatchedID(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 1024)
		n, raddr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		var q Message
		if err := q.Unpack(buf[:n]); err != nil {
			return
		}
		resp := new(Message).SetReply(&q)
		resp.ID ^= 0xFFFF // wrong ID: an off-path spoof
		packed, _ := resp.Pack()
		_, _ = pc.WriteTo(packed, raddr)
	}()
	c := &Client{Timeout: 500 * time.Millisecond}
	_, err = c.Query(context.Background(), pc.LocalAddr().String(), "spoofed.example", TypeA)
	if err == nil {
		t.Fatal("spoofed-ID response accepted")
	}
	if err != ErrIDMismatch && !strings.Contains(err.Error(), "ID") {
		// The read may also just time out after rejecting; either is fine
		// as long as the answer is not accepted.
		t.Logf("rejection surfaced as: %v", err)
	}
}

// TestClientRejectsNonResponse verifies a query packet echoed back
// (QR=0) is not treated as an answer.
func TestClientRejectsNonResponse(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 1024)
		n, raddr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		_, _ = pc.WriteTo(buf[:n], raddr) // pure echo: still a query
	}()
	c := &Client{Timeout: 500 * time.Millisecond}
	_, err = c.Query(context.Background(), pc.LocalAddr().String(), "echo.example", TypeA)
	if err != ErrNotReply {
		t.Fatalf("echoed query: %v, want ErrNotReply", err)
	}
}
