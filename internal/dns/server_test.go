package dns

import (
	"context"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTestServer runs a Server with the given handler on an ephemeral
// loopback port and registers cleanup.
func startTestServer(t *testing.T, h Handler) string {
	t.Helper()
	srv := &Server{Addr: "127.0.0.1:0", Handler: h}
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("server start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return addr.String()
}

func echoTXTHandler(payload string) Handler {
	return HandlerFunc(func(w ResponseWriter, r *Request) {
		resp := new(Message).SetReply(r.Msg)
		resp.Authoritative = true
		resp.Answers = append(resp.Answers, RR{
			Name: r.Msg.Question().Name, Type: TypeTXT, Class: ClassINET, TTL: 60,
			Data: &TXT{Strings: SplitTXT(payload)},
		})
		_ = w.WriteMsg(resp)
	})
}

func TestClientServerUDP(t *testing.T) {
	addr := startTestServer(t, echoTXTHandler("v=spf1 -all"))
	c := &Client{Timeout: 2 * time.Second}
	resp, err := c.Query(context.Background(), addr, "example.com", TypeTXT)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("got %d answers", len(resp.Answers))
	}
	txt := resp.Answers[0].Data.(*TXT)
	if txt.Joined() != "v=spf1 -all" {
		t.Errorf("payload %q", txt.Joined())
	}
	if !resp.Authoritative {
		t.Error("AA flag lost")
	}
}

func TestClientServerTCP(t *testing.T) {
	addr := startTestServer(t, echoTXTHandler("tcp-only payload"))
	c := &Client{Timeout: 2 * time.Second}
	resp, err := c.ExchangeOver(context.Background(),
		new(Message).SetQuestion("example.com", TypeTXT), "tcp", addr)
	if err != nil {
		t.Fatalf("tcp query: %v", err)
	}
	if txt := resp.Answers[0].Data.(*TXT); txt.Joined() != "tcp-only payload" {
		t.Errorf("payload %q", txt.Joined())
	}
}

func TestTruncationForcesTCPFallback(t *testing.T) {
	// A response bigger than the 512-octet non-EDNS limit must arrive
	// truncated over UDP and complete over TCP.
	big := strings.Repeat("a", 900)
	addr := startTestServer(t, echoTXTHandler(big))

	c := &Client{Timeout: 2 * time.Second, UDPSize: -1} // no EDNS
	q := new(Message).SetQuestion("example.com", TypeTXT)
	udpResp, err := c.ExchangeOver(context.Background(), q, "udp", addr)
	if err != nil {
		t.Fatalf("udp query: %v", err)
	}
	if !udpResp.Truncated {
		t.Fatal("oversized UDP response not truncated")
	}
	if len(udpResp.Answers) != 0 {
		t.Error("truncated response still carries answers")
	}

	full, err := c.Exchange(context.Background(),
		new(Message).SetQuestion("example.com", TypeTXT), addr)
	if err != nil {
		t.Fatalf("exchange with fallback: %v", err)
	}
	if full.Truncated {
		t.Error("TCP retry still truncated")
	}
	if txt := full.Answers[0].Data.(*TXT); txt.Joined() != big {
		t.Error("TCP retry payload mismatch")
	}
}

func TestEDNSAvoidsTruncation(t *testing.T) {
	big := strings.Repeat("a", 900)
	addr := startTestServer(t, echoTXTHandler(big))
	c := &Client{Timeout: 2 * time.Second, UDPSize: 1232, DisableTCPFallback: true}
	resp, err := c.Exchange(context.Background(),
		new(Message).SetQuestion("example.com", TypeTXT), addr)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Error("EDNS-advertised query still truncated under 1232 octets")
	}
}

func TestServerConcurrentQueries(t *testing.T) {
	addr := startTestServer(t, echoTXTHandler("concurrent"))
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &Client{Timeout: 3 * time.Second}
			_, err := c.Query(context.Background(), addr, "example.com", TypeTXT)
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query: %v", err)
	}
}

func TestServerDoubleStart(t *testing.T) {
	srv := &Server{Addr: "127.0.0.1:0", Handler: echoTXTHandler("x")}
	if _, err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if _, err := srv.Start(); err != ErrServerStarted {
		t.Errorf("second Start: got %v, want ErrServerStarted", err)
	}
}

func TestServerRequiresHandler(t *testing.T) {
	srv := &Server{Addr: "127.0.0.1:0"}
	if _, err := srv.Start(); err == nil {
		t.Error("Start without handler succeeded")
	}
}

func TestServerShutdownIdempotent(t *testing.T) {
	srv := &Server{Addr: "127.0.0.1:0", Handler: echoTXTHandler("x")}
	if _, err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Shutdown on an unstarted server must be a no-op.
	if err := (&Server{}).Shutdown(ctx); err != nil {
		t.Errorf("Shutdown of unstarted server: %v", err)
	}
}

func TestRequestMetadata(t *testing.T) {
	// Request messages are pooled, so the handler must extract what it
	// needs during ServeDNS rather than retaining r.Msg.
	type meta struct {
		transport string
		remote    net.Addr
		remoteStr string
		received  time.Time
		question  string
	}
	got := make(chan meta, 1)
	addr := startTestServer(t, HandlerFunc(func(w ResponseWriter, r *Request) {
		select {
		case got <- meta{
			transport: r.Transport,
			remote:    r.RemoteAddr,
			remoteStr: r.RemoteString(),
			received:  r.Received,
			question:  r.Msg.Question().Name,
		}:
		default:
		}
		resp := new(Message).SetReply(r.Msg)
		_ = w.WriteMsg(resp)
	}))
	c := &Client{Timeout: 2 * time.Second}
	before := time.Now()
	if _, err := c.Query(context.Background(), addr, "meta.example.com", TypeA); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.transport != "udp" {
		t.Errorf("transport %q", r.transport)
	}
	if r.remote == nil {
		t.Error("missing remote address")
	} else if r.remoteStr != r.remote.String() {
		t.Errorf("RemoteString %q, want %q", r.remoteStr, r.remote.String())
	}
	if r.received.Before(before.Add(-time.Second)) {
		t.Error("implausible received timestamp")
	}
	if r.question != "meta.example.com." {
		t.Errorf("question %q", r.question)
	}
}

func TestClientQueryA(t *testing.T) {
	addr := startTestServer(t, HandlerFunc(func(w ResponseWriter, r *Request) {
		resp := new(Message).SetReply(r.Msg)
		q := r.Msg.Question()
		switch q.Type {
		case TypeA:
			resp.Answers = append(resp.Answers, RR{Name: q.Name, Type: TypeA,
				Class: ClassINET, TTL: 60, Data: &A{Addr: netip.MustParseAddr("192.0.2.7")}})
		case TypeAAAA:
			resp.Answers = append(resp.Answers, RR{Name: q.Name, Type: TypeAAAA,
				Class: ClassINET, TTL: 60, Data: &AAAA{Addr: netip.MustParseAddr("2001:db8::7")}})
		default:
			resp.RCode = RCodeNameError
		}
		_ = w.WriteMsg(resp)
	}))
	c := &Client{Timeout: 2 * time.Second}
	ctx := context.Background()
	a, err := c.Query(ctx, addr, "host.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a.Answers[0].Data.(*A).Addr.String() != "192.0.2.7" {
		t.Error("A answer mismatch")
	}
	aaaa, err := c.Query(ctx, addr, "host.example.com", TypeAAAA)
	if err != nil {
		t.Fatal(err)
	}
	if aaaa.Answers[0].Data.(*AAAA).Addr.String() != "2001:db8::7" {
		t.Error("AAAA answer mismatch")
	}
	nx, err := c.Query(ctx, addr, "host.example.com", TypeMX)
	if err != nil {
		t.Fatal(err)
	}
	if nx.RCode != RCodeNameError {
		t.Errorf("rcode %s, want NXDOMAIN", nx.RCode)
	}
}

func TestClientTimeout(t *testing.T) {
	// A server that never responds must yield a timeout error.
	addr := startTestServer(t, HandlerFunc(func(w ResponseWriter, r *Request) {}))
	c := &Client{Timeout: 150 * time.Millisecond}
	start := time.Now()
	_, err := c.Query(context.Background(), addr, "silent.example.com", TypeA)
	if err == nil {
		t.Fatal("query against silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestTCPMessageFraming(t *testing.T) {
	var buf strings.Builder
	payload := []byte("hello-dns")
	if err := WriteTCPMessage(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCPMessage(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("framing round trip: %q", got)
	}
	if err := WriteTCPMessage(&strings.Builder{}, make([]byte, 70000)); err == nil {
		t.Error("oversized TCP message accepted")
	}
	if _, err := ReadTCPMessage(strings.NewReader("\x00")); err == nil {
		t.Error("truncated length prefix accepted")
	}
}
