package dns

import (
	"sendervalid/internal/telemetry"
)

// The transport endpoints are instrumented unconditionally: every
// instrument is an atomic counter (or a fixed-bucket histogram of
// atomic counters), so the serving hot path pays one or two
// uncontended atomic adds per query whether or not anything scrapes
// them. Registration against a telemetry.Registry is the opt-in step.

// serverMetrics are one endpoint's always-on instruments. The zero
// value is usable for all counters; the latency histogram is created
// by init (idempotent, called from Start).
type serverMetrics struct {
	queriesUDP Counter
	queriesTCP Counter
	// rcodes counts responses by RCODE. DNS header RCODEs are 4 bits,
	// so a fixed array replaces a labeled family on the write path.
	rcodes [16]Counter
	// serve is the query latency from packet arrival to response
	// written, in seconds.
	serve *telemetry.Histogram
}

// Counter aliases the telemetry counter so the dns package's exported
// accessors keep returning plain uint64s without importing telemetry
// at every call site.
type Counter = telemetry.Counter

func (m *serverMetrics) init() {
	if m.serve == nil {
		m.serve = telemetry.NewHistogram(telemetry.LatencyBuckets)
	}
}

// observeServe records one served query's latency. Safe before init
// (no histogram yet) so direct handler tests need no setup.
func (m *serverMetrics) observeServe(seconds float64) {
	if h := m.serve; h != nil {
		h.Observe(seconds)
	}
}

// setServeExemplar tags the serve-latency bucket containing seconds
// with a sampled trace id; the observation itself is observeServe's.
func (m *serverMetrics) setServeExemplar(seconds float64, traceID string) {
	if h := m.serve; h != nil {
		h.SetExemplar(seconds, traceID)
	}
}

// rcodeLabels are the label values for the 16 possible header RCODEs,
// precomputed so the render path never calls RCode.String.
var rcodeLabels = [16]string{
	"NOERROR", "FORMERR", "SERVFAIL", "NXDOMAIN", "NOTIMP", "REFUSED",
	"RCODE6", "RCODE7", "RCODE8", "RCODE9", "RCODE10", "RCODE11",
	"RCODE12", "RCODE13", "RCODE14", "RCODE15",
}

// RegisterMetrics publishes the endpoint's instruments under the
// dns_ namespace with the given constant labels (callers serving
// several endpoints distinguish them with e.g. endpoint="v6"). Call
// after Start so the latency histogram and rate limiter exist.
func (s *Server) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	s.metrics.init()
	reg.MustCounter("dns_queries_total",
		"Queries received, by transport.",
		&s.metrics.queriesUDP, append(labelsCopy(labels), telemetry.L("transport", "udp"))...)
	reg.MustCounter("dns_queries_total",
		"Queries received, by transport.",
		&s.metrics.queriesTCP, append(labelsCopy(labels), telemetry.L("transport", "tcp"))...)
	for i := range s.metrics.rcodes {
		reg.MustCounter("dns_responses_total",
			"Responses written, by RCODE.",
			&s.metrics.rcodes[i], append(labelsCopy(labels), telemetry.L("rcode", rcodeLabels[i]))...)
	}
	reg.MustHistogram("dns_serve_duration_seconds",
		"Query latency from arrival to response written.",
		s.metrics.serve, labels...)
	reg.MustCounter("dns_handler_panics_total",
		"Handler panics recovered into SERVFAIL responses.",
		&s.panics, labels...)
	reg.MustCounter("dns_ratelimit_refused_total",
		"Queries answered REFUSED by the per-source rate limiter.",
		&s.refused, labels...)
	reg.MustGaugeFunc("dns_ratelimit_sources",
		"Sources currently tracked by the rate limiter.",
		func() float64 {
			if s.limiter == nil {
				return 0
			}
			return float64(s.limiter.Sources())
		}, labels...)
}

// labelsCopy guards against append aliasing when one base label slice
// fans out into several series.
func labelsCopy(labels []telemetry.Label) []telemetry.Label {
	return append([]telemetry.Label(nil), labels...)
}

// Pool counters are package-level: the message and packet pools are
// shared by every endpoint in the process. A pool "miss" runs the
// pool's New function — the allocation the pool exists to avoid — so
// hits = gets - misses.
var (
	msgPoolGets   Counter
	msgPoolMisses Counter
	pktPoolGets   Counter
	pktPoolMisses Counter
)

// RegisterPoolMetrics publishes the process-wide message/packet pool
// counters. Call at most once per registry.
func RegisterPoolMetrics(reg *telemetry.Registry) {
	reg.MustCounter("dns_pool_gets_total",
		"Pool fetches, by pool.", &msgPoolGets, telemetry.L("pool", "msg"))
	reg.MustCounter("dns_pool_gets_total",
		"Pool fetches, by pool.", &pktPoolGets, telemetry.L("pool", "pkt"))
	reg.MustCounter("dns_pool_misses_total",
		"Pool fetches that allocated (pool empty), by pool.",
		&msgPoolMisses, telemetry.L("pool", "msg"))
	reg.MustCounter("dns_pool_misses_total",
		"Pool fetches that allocated (pool empty), by pool.",
		&pktPoolMisses, telemetry.L("pool", "pkt"))
}
