package dns

import (
	"errors"
	"sync"
)

// Errors returned by message packing and unpacking.
var (
	ErrMessageTruncated = errors.New("dns: message truncated")
	ErrRDataTooLong     = errors.New("dns: rdata exceeds 65535 octets")
	ErrStringTooLong    = errors.New("dns: character-string exceeds 255 octets")
)

// compressTableSize bounds how many emitted label sequences a builder
// remembers as compression targets. Typical responses (a question plus
// a handful of records sharing the zone suffix) need far fewer; when
// the table fills, later names are simply emitted uncompressed.
const compressTableSize = 24

// builder accumulates the wire form of a message and tracks name
// compression targets. It holds no heap state of its own: compression
// offsets live in a fixed-size table and candidate suffixes are
// compared against the already-emitted wire bytes, so message packing
// allocates only when the destination buffer must grow.
type builder struct {
	buf []byte
	// base is the offset of the message start within buf, so AppendPack
	// can encode into the tail of an existing buffer (e.g. after a TCP
	// length prefix) with compression pointers staying message-relative.
	base     int
	nameOffs [compressTableSize]uint16
	nNames   uint8
}

func newBuilder() *builder {
	return &builder{buf: make([]byte, 0, 512)}
}

// builderPool recycles builders for the pack path; see AppendPack.
var builderPool = sync.Pool{New: func() any { return new(builder) }}

func (b *builder) uint8(v uint8)   { b.buf = append(b.buf, v) }
func (b *builder) uint16(v uint16) { b.buf = append(b.buf, byte(v>>8), byte(v)) }
func (b *builder) uint32(v uint32) {
	b.buf = append(b.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (b *builder) bytes(v []byte) { b.buf = append(b.buf, v...) }

// charString appends an RFC 1035 <character-string>: a length octet
// followed by up to 255 octets.
func (b *builder) charString(s string) error {
	if len(s) > 255 {
		return ErrStringTooLong
	}
	b.uint8(uint8(len(s)))
	b.buf = append(b.buf, s...)
	return nil
}

// parser reads the wire form of a message. The full message is kept
// for compression-pointer resolution.
type parser struct {
	msg []byte
	off int
}

func (p *parser) uint8() (uint8, error) {
	if p.off+1 > len(p.msg) {
		return 0, ErrMessageTruncated
	}
	v := p.msg[p.off]
	p.off++
	return v, nil
}

func (p *parser) uint16() (uint16, error) {
	if p.off+2 > len(p.msg) {
		return 0, ErrMessageTruncated
	}
	v := uint16(p.msg[p.off])<<8 | uint16(p.msg[p.off+1])
	p.off += 2
	return v, nil
}

func (p *parser) uint32() (uint32, error) {
	if p.off+4 > len(p.msg) {
		return 0, ErrMessageTruncated
	}
	v := uint32(p.msg[p.off])<<24 | uint32(p.msg[p.off+1])<<16 |
		uint32(p.msg[p.off+2])<<8 | uint32(p.msg[p.off+3])
	p.off += 4
	return v, nil
}

func (p *parser) bytes(n int) ([]byte, error) {
	if n < 0 || p.off+n > len(p.msg) {
		return nil, ErrMessageTruncated
	}
	v := p.msg[p.off : p.off+n]
	p.off += n
	return v, nil
}

func (p *parser) name() (string, error) {
	name, next, err := unpackName(p.msg, p.off)
	if err != nil {
		return "", err
	}
	p.off = next
	return name, nil
}

// nameHint reads a name like name, but when the wire form equals hint
// (a canonical name, typically the one a pooled Message parsed into
// this slot last time) it returns hint without building a new string.
func (p *parser) nameHint(hint string) (string, error) {
	if hint != "" {
		if end, ok := matchWireName(p.msg, p.off, hint); ok {
			p.off = end
			return hint, nil
		}
	}
	return p.name()
}

func (p *parser) charString() (string, error) {
	n, err := p.uint8()
	if err != nil {
		return "", err
	}
	b, err := p.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
