package dns

import "errors"

// Errors returned by message packing and unpacking.
var (
	ErrMessageTruncated = errors.New("dns: message truncated")
	ErrRDataTooLong     = errors.New("dns: rdata exceeds 65535 octets")
	ErrStringTooLong    = errors.New("dns: character-string exceeds 255 octets")
)

// builder accumulates the wire form of a message and tracks name
// compression targets.
type builder struct {
	buf      []byte
	compress map[string]int
}

func newBuilder() *builder {
	return &builder{
		buf:      make([]byte, 0, 512),
		compress: make(map[string]int),
	}
}

func (b *builder) uint8(v uint8)   { b.buf = append(b.buf, v) }
func (b *builder) uint16(v uint16) { b.buf = append(b.buf, byte(v>>8), byte(v)) }
func (b *builder) uint32(v uint32) {
	b.buf = append(b.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (b *builder) bytes(v []byte) { b.buf = append(b.buf, v...) }

// charString appends an RFC 1035 <character-string>: a length octet
// followed by up to 255 octets.
func (b *builder) charString(s string) error {
	if len(s) > 255 {
		return ErrStringTooLong
	}
	b.uint8(uint8(len(s)))
	b.buf = append(b.buf, s...)
	return nil
}

// parser reads the wire form of a message. The full message is kept
// for compression-pointer resolution.
type parser struct {
	msg []byte
	off int
}

func (p *parser) uint8() (uint8, error) {
	if p.off+1 > len(p.msg) {
		return 0, ErrMessageTruncated
	}
	v := p.msg[p.off]
	p.off++
	return v, nil
}

func (p *parser) uint16() (uint16, error) {
	if p.off+2 > len(p.msg) {
		return 0, ErrMessageTruncated
	}
	v := uint16(p.msg[p.off])<<8 | uint16(p.msg[p.off+1])
	p.off += 2
	return v, nil
}

func (p *parser) uint32() (uint32, error) {
	if p.off+4 > len(p.msg) {
		return 0, ErrMessageTruncated
	}
	v := uint32(p.msg[p.off])<<24 | uint32(p.msg[p.off+1])<<16 |
		uint32(p.msg[p.off+2])<<8 | uint32(p.msg[p.off+3])
	p.off += 4
	return v, nil
}

func (p *parser) bytes(n int) ([]byte, error) {
	if n < 0 || p.off+n > len(p.msg) {
		return nil, ErrMessageTruncated
	}
	v := p.msg[p.off : p.off+n]
	p.off += n
	return v, nil
}

func (p *parser) name() (string, error) {
	name, next, err := unpackName(p.msg, p.off)
	if err != nil {
		return "", err
	}
	p.off = next
	return name, nil
}

func (p *parser) charString() (string, error) {
	n, err := p.uint8()
	if err != nil {
		return "", err
	}
	b, err := p.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
