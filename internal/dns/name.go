package dns

import (
	"errors"
	"strings"
)

// Errors returned by name handling.
var (
	ErrNameTooLong   = errors.New("dns: name exceeds 255 octets")
	ErrLabelTooLong  = errors.New("dns: label exceeds 63 octets")
	ErrEmptyLabel    = errors.New("dns: empty label in name")
	ErrBadPointer    = errors.New("dns: bad compression pointer")
	ErrNameTruncated = errors.New("dns: truncated name")
)

const (
	maxNameLen  = 255
	maxLabelLen = 63
)

// CanonicalName lowercases a domain name and ensures it is fully
// qualified (ends with a dot). The root name is returned as ".".
//
// Names that are already canonical — the overwhelmingly common case on
// the serving path, where every name comes out of unpackName in
// canonical form — are returned unchanged without allocating.
func CanonicalName(name string) string {
	if name == "" {
		return "."
	}
	if name[len(name)-1] != '.' {
		return canonicalSlow(name)
	}
	for i := 0; i < len(name); i++ {
		if c := name[i]; c >= 'A' && c <= 'Z' {
			return canonicalSlow(name)
		}
	}
	return name
}

func canonicalSlow(name string) string {
	name = strings.ToLower(name)
	if name == "" || name == "." {
		return "."
	}
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}

// EqualNames reports whether two domain names are equal under DNS
// case-insensitive comparison, ignoring a trailing dot.
func EqualNames(a, b string) bool {
	return CanonicalName(a) == CanonicalName(b)
}

// IsSubdomain reports whether child is equal to or a descendant of
// parent, under DNS name comparison rules.
func IsSubdomain(child, parent string) bool {
	c, p := CanonicalName(child), CanonicalName(parent)
	if p == "." {
		return true
	}
	if c == p {
		return true
	}
	return strings.HasSuffix(c, "."+p)
}

// SplitLabels splits a domain name into its labels, without the root.
// "a.b.example.com." yields ["a" "b" "example" "com"].
func SplitLabels(name string) []string {
	name = strings.TrimSuffix(CanonicalName(name), ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels in name, excluding the root.
func CountLabels(name string) int {
	return len(SplitLabels(name))
}

// ValidateName checks that name is a syntactically legal domain name:
// no empty interior labels, labels of at most 63 octets, and a total
// wire length of at most 255 octets.
func ValidateName(name string) error {
	return validateCanonical(CanonicalName(name))
}

// validateCanonical is ValidateName for a name already in canonical
// form. It performs a single allocation-free scan.
func validateCanonical(name string) error {
	if name == "." {
		return nil
	}
	wire := 1 // terminal root label
	for pos := 0; pos < len(name); {
		dot := strings.IndexByte(name[pos:], '.') // >= 0: canonical names end in '.'
		if dot == 0 {
			return ErrEmptyLabel
		}
		if dot > maxLabelLen {
			return ErrLabelTooLong
		}
		wire += 1 + dot
		pos += dot + 1
	}
	if wire > maxNameLen {
		return ErrNameTooLong
	}
	return nil
}

// packName appends the wire encoding of name to b, emitting a
// compression pointer when a suffix of the name was already packed.
// Instead of a per-message map keyed by freshly joined suffix strings,
// the builder records the offsets of emitted label sequences and
// compares candidate suffixes against the wire bytes directly, so
// packing a typical message performs zero allocations.
func (b *builder) packName(name string) error {
	name = CanonicalName(name)
	if err := validateCanonical(name); err != nil {
		return err
	}
	if name == "." {
		b.buf = append(b.buf, 0)
		return nil
	}
	for pos := 0; pos < len(name); {
		if off, ok := b.findSuffix(name[pos:]); ok {
			b.uint16(uint16(off) | 0xC000)
			return nil
		}
		dot := strings.IndexByte(name[pos:], '.')
		if rel := len(b.buf) - b.base; rel < 0x4000 && int(b.nNames) < len(b.nameOffs) {
			b.nameOffs[b.nNames] = uint16(rel)
			b.nNames++
		}
		b.buf = append(b.buf, byte(dot))
		b.buf = append(b.buf, name[pos:pos+dot]...)
		pos += dot + 1
	}
	b.buf = append(b.buf, 0)
	return nil
}

// findSuffix scans the recorded label-sequence offsets for one whose
// wire form equals the canonical suffix.
func (b *builder) findSuffix(suffix string) (int, bool) {
	for i := 0; i < int(b.nNames); i++ {
		off := int(b.nameOffs[i])
		if b.wireNameEquals(off, suffix) {
			return off, true
		}
	}
	return 0, false
}

// wireNameEquals reports whether the wire-form name at message-relative
// offset off equals suffix (a canonical name). Everything the builder
// emits is lowercase, so a byte comparison suffices.
func (b *builder) wireNameEquals(off int, suffix string) bool {
	msg := b.buf[b.base:]
	pos := 0
	budget := 64 // recorded offsets cannot loop, but stay defensive
	for {
		if off >= len(msg) {
			return false
		}
		c := int(msg[off])
		switch {
		case c == 0:
			return pos == len(suffix)
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return false
			}
			if budget--; budget < 0 {
				return false
			}
			off = (c&0x3F)<<8 | int(msg[off+1])
		default:
			if off+1+c > len(msg) || pos+c+1 > len(suffix) {
				return false
			}
			if string(msg[off+1:off+1+c]) != suffix[pos:pos+c] || suffix[pos+c] != '.' {
				return false
			}
			pos += c + 1
			off += 1 + c
		}
	}
}

// unpackName reads a possibly-compressed name starting at off and
// returns the canonical name and the offset just past the name's
// in-place encoding (i.e. not following pointers).
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrBudget := 64 // guard against pointer loops
	end := -1       // offset after the first pointer, if any
	total := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrNameTruncated
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			if sb.Len() == 0 {
				return ".", end, nil
			}
			return sb.String(), end, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrNameTruncated
			}
			if ptrBudget--; ptrBudget < 0 {
				return "", 0, ErrBadPointer
			}
			target := (c&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if target >= off {
				return "", 0, ErrBadPointer
			}
			off = target
		case c&0xC0 != 0:
			return "", 0, ErrBadPointer
		default:
			if off+1+c > len(msg) {
				return "", 0, ErrNameTruncated
			}
			total += c + 1
			if total > maxNameLen {
				return "", 0, ErrNameTooLong
			}
			sb.Write(lowerASCII(msg[off+1 : off+1+c]))
			sb.WriteByte('.')
			off += 1 + c
		}
	}
}

// matchWireName reports whether the possibly-compressed name starting
// at off equals hint (a canonical name), returning the offset just past
// the name's in-place encoding on a match. It never allocates; any
// malformed or non-matching encoding simply reports false and leaves
// the caller to take the unpackName path.
func matchWireName(msg []byte, off int, hint string) (int, bool) {
	pos := 0
	ptrBudget := 64
	end := -1
	for {
		if off >= len(msg) {
			return 0, false
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			if pos == len(hint) || (pos == 0 && hint == ".") {
				return end, true
			}
			return 0, false
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return 0, false
			}
			if ptrBudget--; ptrBudget < 0 {
				return 0, false
			}
			target := (c&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if target >= off {
				return 0, false
			}
			off = target
		case c&0xC0 != 0:
			return 0, false
		default:
			if off+1+c > len(msg) || pos+c+1 > len(hint) {
				return 0, false
			}
			for i := 0; i < c; i++ {
				wc := msg[off+1+i]
				if wc >= 'A' && wc <= 'Z' {
					wc += 'a' - 'A'
				}
				if wc != hint[pos+i] {
					return 0, false
				}
			}
			if hint[pos+c] != '.' {
				return 0, false
			}
			pos += c + 1
			off += 1 + c
		}
	}
}

// lowerASCII lowercases ASCII letters in a label without allocating
// when the label is already lowercase.
func lowerASCII(b []byte) []byte {
	lowered := b
	copied := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			if !copied {
				lowered = append([]byte(nil), b...)
				copied = true
			}
			lowered[i] = c + ('a' - 'A')
		}
	}
	return lowered
}
