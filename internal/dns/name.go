package dns

import (
	"errors"
	"strings"
)

// Errors returned by name handling.
var (
	ErrNameTooLong   = errors.New("dns: name exceeds 255 octets")
	ErrLabelTooLong  = errors.New("dns: label exceeds 63 octets")
	ErrEmptyLabel    = errors.New("dns: empty label in name")
	ErrBadPointer    = errors.New("dns: bad compression pointer")
	ErrNameTruncated = errors.New("dns: truncated name")
)

const (
	maxNameLen  = 255
	maxLabelLen = 63
)

// CanonicalName lowercases a domain name and ensures it is fully
// qualified (ends with a dot). The root name is returned as ".".
func CanonicalName(name string) string {
	name = strings.ToLower(name)
	if name == "" || name == "." {
		return "."
	}
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}

// EqualNames reports whether two domain names are equal under DNS
// case-insensitive comparison, ignoring a trailing dot.
func EqualNames(a, b string) bool {
	return CanonicalName(a) == CanonicalName(b)
}

// IsSubdomain reports whether child is equal to or a descendant of
// parent, under DNS name comparison rules.
func IsSubdomain(child, parent string) bool {
	c, p := CanonicalName(child), CanonicalName(parent)
	if p == "." {
		return true
	}
	if c == p {
		return true
	}
	return strings.HasSuffix(c, "."+p)
}

// SplitLabels splits a domain name into its labels, without the root.
// "a.b.example.com." yields ["a" "b" "example" "com"].
func SplitLabels(name string) []string {
	name = strings.TrimSuffix(CanonicalName(name), ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels in name, excluding the root.
func CountLabels(name string) int {
	return len(SplitLabels(name))
}

// ValidateName checks that name is a syntactically legal domain name:
// no empty interior labels, labels of at most 63 octets, and a total
// wire length of at most 255 octets.
func ValidateName(name string) error {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	wire := 1 // terminal root label
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if label == "" {
			return ErrEmptyLabel
		}
		if len(label) > maxLabelLen {
			return ErrLabelTooLong
		}
		wire += 1 + len(label)
	}
	if wire > maxNameLen {
		return ErrNameTooLong
	}
	return nil
}

// packName appends the wire encoding of name to b, using the builder's
// compression table when a suffix of the name was already emitted.
func (b *builder) packName(name string) error {
	name = CanonicalName(name)
	if err := ValidateName(name); err != nil {
		return err
	}
	labels := SplitLabels(name)
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if off, ok := b.compress[suffix]; ok && off < 0x4000 {
			b.uint16(uint16(off) | 0xC000)
			return nil
		}
		if len(b.buf) < 0x4000 {
			b.compress[suffix] = len(b.buf)
		}
		b.buf = append(b.buf, byte(len(labels[i])))
		b.buf = append(b.buf, labels[i]...)
	}
	b.buf = append(b.buf, 0)
	return nil
}

// unpackName reads a possibly-compressed name starting at off and
// returns the canonical name and the offset just past the name's
// in-place encoding (i.e. not following pointers).
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrBudget := 64 // guard against pointer loops
	end := -1       // offset after the first pointer, if any
	total := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrNameTruncated
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			if sb.Len() == 0 {
				return ".", end, nil
			}
			return sb.String(), end, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrNameTruncated
			}
			if ptrBudget--; ptrBudget < 0 {
				return "", 0, ErrBadPointer
			}
			target := (c&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if target >= off {
				return "", 0, ErrBadPointer
			}
			off = target
		case c&0xC0 != 0:
			return "", 0, ErrBadPointer
		default:
			if off+1+c > len(msg) {
				return "", 0, ErrNameTruncated
			}
			total += c + 1
			if total > maxNameLen {
				return "", 0, ErrNameTooLong
			}
			sb.Write(lowerASCII(msg[off+1 : off+1+c]))
			sb.WriteByte('.')
			off += 1 + c
		}
	}
}

// lowerASCII lowercases ASCII letters in a label without allocating
// when the label is already lowercase.
func lowerASCII(b []byte) []byte {
	lowered := b
	copied := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			if !copied {
				lowered = append([]byte(nil), b...)
				copied = true
			}
			lowered[i] = c + ('a' - 'A')
		}
	}
	return lowered
}
