package netsim

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	mtaAddr    = netip.MustParseAddrPort("203.0.113.25:25")
	clientAddr = netip.MustParseAddrPort("198.51.100.7:0")
)

func TestDialAndAccept(t *testing.T) {
	f := NewFabric()
	l, err := f.Listen(mtaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		// The server must see the client's synthetic address.
		if got := conn.RemoteAddr().String(); !strings.HasPrefix(got, "198.51.100.7:") {
			done <- fmt.Errorf("server sees remote %s", got)
			return
		}
		if got := conn.LocalAddr().String(); got != "203.0.113.25:25" {
			done <- fmt.Errorf("server sees local %s", got)
			return
		}
		buf := make([]byte, 16)
		n, err := conn.Read(buf)
		if err != nil {
			done <- err
			return
		}
		_, err = conn.Write(append([]byte("echo:"), buf[:n]...))
		done <- err
	}()

	conn, err := f.Dial(context.Background(), clientAddr, mtaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := conn.RemoteAddr().String(); got != "203.0.113.25:25" {
		t.Errorf("client sees remote %s", got)
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "echo:hello" {
		t.Errorf("echo = %q", buf[:n])
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialUnknownAddressRefused(t *testing.T) {
	f := NewFabric()
	_, err := f.Dial(context.Background(), clientAddr, mtaAddr)
	if !errors.Is(err, ErrConnRefused) {
		t.Errorf("err = %v", err)
	}
}

func TestUnreachable(t *testing.T) {
	f := NewFabric()
	l, err := f.Listen(mtaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f.SetUnreachable(mtaAddr.Addr(), true)
	if _, err := f.Dial(context.Background(), clientAddr, mtaAddr); !errors.Is(err, ErrConnRefused) {
		t.Errorf("unreachable dial: %v", err)
	}
	f.SetUnreachable(mtaAddr.Addr(), false)
	conn, err := f.Dial(context.Background(), clientAddr, mtaAddr)
	if err != nil {
		t.Fatalf("reachable again: %v", err)
	}
	conn.Close()
}

func TestAddressInUse(t *testing.T) {
	f := NewFabric()
	l, err := f.Listen(mtaAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen(mtaAddr); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("second listen: %v", err)
	}
	l.Close()
	// Address is free again after close.
	l2, err := f.Listen(mtaAddr)
	if err != nil {
		t.Errorf("listen after close: %v", err)
	}
	l2.Close()
}

func TestListenerClose(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen(mtaAddr)
	go l.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrListenerClosed) {
		t.Errorf("accept after close: %v", err)
	}
	// Close must be idempotent.
	if err := l.Close(); err != nil {
		t.Error(err)
	}
}

func TestEphemeralPorts(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen(mtaAddr)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		conn, err := f.Dial(context.Background(), clientAddr, mtaAddr)
		if err != nil {
			t.Fatal(err)
		}
		local := conn.LocalAddr().String()
		if seen[local] {
			t.Errorf("ephemeral port reused: %s", local)
		}
		seen[local] = true
		conn.Close()
	}
}

func TestReadAfterPeerClose(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen(mtaAddr)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_, _ = c.Write([]byte("parting words"))
		c.Close()
	}()
	conn, err := f.Dial(context.Background(), clientAddr, mtaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(data) != "parting words" {
		t.Errorf("data before EOF = %q", data)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen(mtaAddr)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	conn, err := f.Dial(context.Background(), clientAddr, mtaAddr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Error("write on closed conn succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen(mtaAddr)
	defer l.Close()
	accepted := make(chan struct{})
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			close(accepted)
			time.Sleep(time.Second)
		}
	}()
	conn, err := f.Dial(context.Background(), clientAddr, mtaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	<-accepted
	_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("read: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("deadline did not fire promptly")
	}
	// Expired deadline fails immediately.
	_ = conn.SetReadDeadline(time.Now().Add(-time.Second))
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("expired deadline read: %v", err)
	}
	// Clearing the deadline restores blocking reads.
	_ = conn.SetReadDeadline(time.Time{})
}

func TestLineProtocolOverFabric(t *testing.T) {
	// Exercise bufio-based line protocols (the SMTP usage pattern).
	f := NewFabric()
	l, _ := f.Listen(mtaAddr)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		bw := bufio.NewWriter(c)
		fmt.Fprintf(bw, "220 ready\r\n")
		bw.Flush()
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimSpace(line)
			if line == "QUIT" {
				fmt.Fprintf(bw, "221 bye\r\n")
				bw.Flush()
				return
			}
			fmt.Fprintf(bw, "250 %s ok\r\n", line)
			bw.Flush()
		}
	}()

	conn, err := f.Dial(context.Background(), clientAddr, mtaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	expect := func(prefix string) {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("got %q, want prefix %q", line, prefix)
		}
	}
	expect("220")
	fmt.Fprintf(conn, "EHLO client.example\r\n")
	expect("250 EHLO client.example ok")
	fmt.Fprintf(conn, "QUIT\r\n")
	expect("221")
}

func TestConcurrentConnections(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen(mtaAddr)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := f.Dial(context.Background(), clientAddr, mtaAddr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			msg := fmt.Sprintf("payload-%d", i)
			if _, err := conn.Write([]byte(msg)); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(conn, buf); err != nil {
				errs <- err
				return
			}
			if string(buf) != msg {
				errs <- fmt.Errorf("echo mismatch: %q", buf)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDialContextStringAddress(t *testing.T) {
	f := NewFabric()
	l, _ := f.Listen(mtaAddr)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	conn, err := f.DialContext(context.Background(), "tcp", "203.0.113.25:25")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := f.DialContext(context.Background(), "tcp", "not-an-address"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestLatency(t *testing.T) {
	f := NewFabric()
	f.SetLatency(60 * time.Millisecond)
	l, _ := f.Listen(mtaAddr)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	start := time.Now()
	conn, err := f.Dial(context.Background(), clientAddr, mtaAddr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("dial completed in %v, want ≥ 60ms", elapsed)
	}
}

func TestAddrPortOf(t *testing.T) {
	ap, ok := AddrPortOf(simAddr(mtaAddr))
	if !ok || ap != mtaAddr {
		t.Errorf("AddrPortOf(simAddr) = %v, %v", ap, ok)
	}
}

func TestIPv6Fabric(t *testing.T) {
	f := NewFabric()
	v6 := netip.MustParseAddrPort("[2001:db8::25]:25")
	l, err := f.Listen(v6)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	conn, err := f.DialContext(context.Background(), "tcp", v6.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	local, _ := AddrPortOf(conn.LocalAddr())
	if !local.Addr().Is6() {
		t.Errorf("v6 dial used local %s", local)
	}
}
