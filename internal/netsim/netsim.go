// Package netsim provides an in-process network fabric for large-scale
// protocol simulation. Simulated hosts listen on arbitrary synthetic
// IPv4/IPv6 addresses (the public addresses a measurement dataset
// assigns to MTAs), and dialers connect to them without consuming real
// sockets. Connections are buffered duplex pipes whose LocalAddr and
// RemoteAddr report the synthetic addresses, so address-sensitive
// protocol logic — SPF validation of the connecting client's IP, AS
// attribution — behaves exactly as it would over a real network.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Errors returned by the fabric.
var (
	ErrAddrInUse        = errors.New("netsim: address already in use")
	ErrConnRefused      = errors.New("netsim: connection refused")
	ErrListenerClosed   = errors.New("netsim: listener closed")
	ErrDeadlineExceeded = errors.New("netsim: i/o deadline exceeded")
)

// Fabric routes connections between simulated addresses.
type Fabric struct {
	mu        sync.Mutex
	listeners map[netip.AddrPort]*Listener
	nextEphem uint16
	// Unreachable marks addresses that refuse all connections,
	// simulating filtered or offline hosts.
	unreachable map[netip.Addr]bool
	// latency is the one-way delivery delay applied to connection
	// establishment (not per-byte).
	latency time.Duration
}

// NewFabric creates an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		listeners:   make(map[netip.AddrPort]*Listener),
		unreachable: make(map[netip.Addr]bool),
		nextEphem:   32768,
	}
}

// SetLatency sets a fixed connection-establishment delay.
func (f *Fabric) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// SetUnreachable marks or clears an address as refusing connections.
func (f *Fabric) SetUnreachable(addr netip.Addr, unreachable bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if unreachable {
		f.unreachable[addr] = true
	} else {
		delete(f.unreachable, addr)
	}
}

// Listen registers a listener on addr.
func (f *Fabric) Listen(addr netip.AddrPort) (*Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, taken := f.listeners[addr]; taken {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &Listener{
		fabric:  f,
		addr:    addr,
		backlog: make(chan net.Conn, 128),
		closed:  make(chan struct{}),
	}
	f.listeners[addr] = l
	return l, nil
}

// Dial connects from the given local address to remote. A zero local
// port is replaced with an ephemeral one.
func (f *Fabric) Dial(ctx context.Context, local, remote netip.AddrPort) (net.Conn, error) {
	f.mu.Lock()
	if local.Port() == 0 {
		f.nextEphem++
		if f.nextEphem == 0 {
			f.nextEphem = 32768
		}
		local = netip.AddrPortFrom(local.Addr(), f.nextEphem)
	}
	l, ok := f.listeners[remote]
	refused := f.unreachable[remote.Addr()]
	latency := f.latency
	f.mu.Unlock()

	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if refused || !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, remote)
	}

	clientEnd, serverEnd := newPipePair(local, remote)
	select {
	case l.backlog <- serverEnd:
		return clientEnd, nil
	case <-l.closed:
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, remote)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// DialContext implements the dns.Dialer / generic dialer shape:
// network is ignored (everything is a reliable duplex pipe), and the
// local address is a synthetic client endpoint.
func (f *Fabric) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	remote, err := netip.ParseAddrPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad address %q: %w", address, err)
	}
	local := netip.AddrPortFrom(netip.MustParseAddr("198.18.0.1"), 0)
	if remote.Addr().Is6() {
		local = netip.AddrPortFrom(netip.MustParseAddr("2001:db8:ffff::1"), 0)
	}
	return f.Dial(ctx, local, remote)
}

// BoundDialer returns a Dialer whose connections originate from the
// given source addresses (IPv4 and IPv6 selected by the remote's
// family). Protocols that authenticate the client address — SPF above
// all — see the bound address as the connecting IP.
func (f *Fabric) BoundDialer(local4, local6 netip.Addr) *BoundDialer {
	return &BoundDialer{fabric: f, local4: local4, local6: local6}
}

// BoundDialer dials through a Fabric from fixed source addresses.
type BoundDialer struct {
	fabric *Fabric
	local4 netip.Addr
	local6 netip.Addr
}

// DialContext implements the generic dialer shape over the fabric.
func (d *BoundDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	remote, err := netip.ParseAddrPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad address %q: %w", address, err)
	}
	local := d.local4
	if remote.Addr().Is6() {
		local = d.local6
	}
	if !local.IsValid() {
		return nil, fmt.Errorf("%w: no local %s address bound", ErrConnRefused, address)
	}
	return d.fabric.Dial(ctx, netip.AddrPortFrom(local, 0), remote)
}

// Listener accepts fabric connections for one address.
type Listener struct {
	fabric  *Fabric
	addr    netip.AddrPort
	backlog chan net.Conn
	closed  chan struct{}
	once    sync.Once
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrListenerClosed
	}
}

// Close deregisters the listener.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.fabric.mu.Lock()
		delete(l.fabric.listeners, l.addr)
		l.fabric.mu.Unlock()
	})
	return nil
}

// Addr returns the simulated listen address.
func (l *Listener) Addr() net.Addr {
	return simAddr(l.addr)
}

// simAddr renders a simulated address as a net.Addr.
type simAddr netip.AddrPort

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return netip.AddrPort(a).String() }

// AddrPortOf extracts the netip.AddrPort from a fabric net.Addr,
// falling back to parsing its string form.
func AddrPortOf(a net.Addr) (netip.AddrPort, bool) {
	if sa, ok := a.(simAddr); ok {
		return netip.AddrPort(sa), true
	}
	ap, err := netip.ParseAddrPort(a.String())
	return ap, err == nil
}

// newPipePair creates the two ends of a buffered duplex connection.
func newPipePair(client, server netip.AddrPort) (net.Conn, net.Conn) {
	c2s := newHalf()
	s2c := newHalf()
	clientEnd := &pipeConn{rd: s2c, wr: c2s, local: client, remote: server}
	serverEnd := &pipeConn{rd: c2s, wr: s2c, local: server, remote: client}
	return clientEnd, serverEnd
}

// half is one direction of a pipe: a bounded queue of byte chunks.
type half struct {
	ch     chan []byte
	closed chan struct{}
	once   sync.Once

	mu  sync.Mutex
	rem []byte // partially consumed chunk
}

func newHalf() *half {
	return &half{ch: make(chan []byte, 256), closed: make(chan struct{})}
}

func (h *half) close() {
	h.once.Do(func() { close(h.closed) })
}

// pipeConn is one endpoint of a fabric connection.
type pipeConn struct {
	rd, wr *half
	local  netip.AddrPort
	remote netip.AddrPort

	dlMu sync.Mutex
	rdDL time.Time
	wrDL time.Time
}

func (c *pipeConn) Read(p []byte) (int, error) {
	c.rd.mu.Lock()
	if len(c.rd.rem) > 0 {
		n := copy(p, c.rd.rem)
		c.rd.rem = c.rd.rem[n:]
		c.rd.mu.Unlock()
		return n, nil
	}
	c.rd.mu.Unlock()

	timeout, hasDL := c.timeoutChan(true)
	if hasDL && timeout == nil {
		return 0, ErrDeadlineExceeded
	}
	select {
	case chunk, ok := <-c.rd.ch:
		if !ok {
			return 0, io.EOF
		}
		n := copy(p, chunk)
		if n < len(chunk) {
			c.rd.mu.Lock()
			c.rd.rem = chunk[n:]
			c.rd.mu.Unlock()
		}
		return n, nil
	case <-c.rd.closed:
		// Drain anything enqueued before close.
		select {
		case chunk, ok := <-c.rd.ch:
			if ok && len(chunk) > 0 {
				n := copy(p, chunk)
				if n < len(chunk) {
					c.rd.mu.Lock()
					c.rd.rem = chunk[n:]
					c.rd.mu.Unlock()
				}
				return n, nil
			}
		default:
		}
		return 0, io.EOF
	case <-timeout:
		return 0, ErrDeadlineExceeded
	}
}

func (c *pipeConn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	timeout, hasDL := c.timeoutChan(false)
	if hasDL && timeout == nil {
		return 0, ErrDeadlineExceeded
	}
	chunk := append([]byte(nil), p...)
	select {
	case <-c.wr.closed:
		return 0, io.ErrClosedPipe
	default:
	}
	select {
	case c.wr.ch <- chunk:
		return len(p), nil
	case <-c.wr.closed:
		return 0, io.ErrClosedPipe
	case <-timeout:
		return 0, ErrDeadlineExceeded
	}
}

// timeoutChan returns a channel that fires at the configured deadline.
// A nil channel with hasDL=true means the deadline already passed; a
// nil channel with hasDL=false never fires (blocks forever in select).
func (c *pipeConn) timeoutChan(read bool) (<-chan time.Time, bool) {
	c.dlMu.Lock()
	dl := c.wrDL
	if read {
		dl = c.rdDL
	}
	c.dlMu.Unlock()
	if dl.IsZero() {
		return nil, false
	}
	d := time.Until(dl)
	if d <= 0 {
		return nil, true
	}
	return time.After(d), true
}

func (c *pipeConn) Close() error {
	c.wr.close()
	c.rd.close()
	return nil
}

func (c *pipeConn) LocalAddr() net.Addr  { return simAddr(c.local) }
func (c *pipeConn) RemoteAddr() net.Addr { return simAddr(c.remote) }

func (c *pipeConn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	c.rdDL, c.wrDL = t, t
	return nil
}

func (c *pipeConn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	c.rdDL = t
	return nil
}

func (c *pipeConn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	c.wrDL = t
	return nil
}
