// Package netsim provides an in-process network fabric for large-scale
// protocol simulation. Simulated hosts listen on arbitrary synthetic
// IPv4/IPv6 addresses (the public addresses a measurement dataset
// assigns to MTAs), and dialers connect to them without consuming real
// sockets. Connections are buffered duplex pipes whose LocalAddr and
// RemoteAddr report the synthetic addresses, so address-sensitive
// protocol logic — SPF validation of the connecting client's IP, AS
// attribution — behaves exactly as it would over a real network.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Errors returned by the fabric. ErrConnRefused, ErrConnReset, and
// ErrDeadlineExceeded wrap their syscall/os counterparts so transport
// code written against real sockets classifies fabric failures the
// same way (errors.Is against syscall.ECONNREFUSED, syscall.ECONNRESET,
// os.ErrDeadlineExceeded).
var (
	ErrAddrInUse        = errors.New("netsim: address already in use")
	ErrConnRefused      = fmt.Errorf("netsim: %w", syscall.ECONNREFUSED)
	ErrConnReset        = fmt.Errorf("netsim: %w", syscall.ECONNRESET)
	ErrListenerClosed   = errors.New("netsim: listener closed")
	ErrDeadlineExceeded = fmt.Errorf("netsim: %w", os.ErrDeadlineExceeded)
	// ErrLinkDown reports a dial attempted while the link is inside a
	// fault-profile flap window.
	ErrLinkDown = fmt.Errorf("netsim: link down: %w", syscall.ECONNREFUSED)
)

// Fabric routes connections between simulated addresses.
type Fabric struct {
	mu        sync.Mutex
	listeners map[netip.AddrPort]*Listener
	nextEphem uint16
	// Unreachable marks addresses that refuse all connections,
	// simulating filtered or offline hosts.
	unreachable map[netip.Addr]bool
	// latency is the one-way delivery delay applied to connection
	// establishment (not per-byte).
	latency time.Duration

	// Chaos state: per-link fault profiles (keyed by remote address),
	// the default profile for unlisted links, and the seed/epoch that
	// make fault schedules reproducible (see fault.go).
	faults        map[netip.Addr]*linkFaults
	defaultFaults *FaultProfile
	chaosSeed     int64
	chaosEpoch    time.Time
}

// NewFabric creates an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		listeners:   make(map[netip.AddrPort]*Listener),
		unreachable: make(map[netip.Addr]bool),
		faults:      make(map[netip.Addr]*linkFaults),
		nextEphem:   32768,
	}
}

// SetLatency sets a fixed connection-establishment delay.
func (f *Fabric) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// SetUnreachable marks or clears an address as refusing connections.
func (f *Fabric) SetUnreachable(addr netip.Addr, unreachable bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if unreachable {
		f.unreachable[addr] = true
	} else {
		delete(f.unreachable, addr)
	}
}

// Listen registers a listener on addr.
func (f *Fabric) Listen(addr netip.AddrPort) (*Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, taken := f.listeners[addr]; taken {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &Listener{
		fabric:  f,
		addr:    addr,
		backlog: make(chan net.Conn, 128),
		closed:  make(chan struct{}),
	}
	f.listeners[addr] = l
	return l, nil
}

// Dial connects from the given local address to remote. A zero local
// port is replaced with an ephemeral one.
func (f *Fabric) Dial(ctx context.Context, local, remote netip.AddrPort) (net.Conn, error) {
	return f.dial(ctx, local, remote, false)
}

// dial establishes a connection, applying the link's fault profile.
// datagram marks the connection as message-oriented ("udp"), which
// makes it subject to probabilistic loss but exempt from chunking.
func (f *Fabric) dial(ctx context.Context, local, remote netip.AddrPort, datagram bool) (net.Conn, error) {
	f.mu.Lock()
	if local.Port() == 0 {
		f.nextEphem++
		if f.nextEphem == 0 {
			f.nextEphem = 32768
		}
		local = netip.AddrPortFrom(local.Addr(), f.nextEphem)
	}
	l, ok := f.listeners[remote]
	refused := f.unreachable[remote.Addr()]
	latency := f.latency
	f.mu.Unlock()

	faults := f.faultsFor(remote.Addr())
	if faults != nil {
		if faults.down(time.Now()) {
			return nil, fmt.Errorf("%w: %s", ErrLinkDown, remote)
		}
		if faults.roll(faults.profile.DialFailure) {
			return nil, fmt.Errorf("%w: %s", ErrConnRefused, remote)
		}
		latency += faults.jitter()
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if refused || !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, remote)
	}

	clientEnd, serverEnd := newPipePair(local, remote)
	clientEnd.faults, serverEnd.faults = faults, faults
	clientEnd.datagram, serverEnd.datagram = datagram, datagram
	select {
	case l.backlog <- serverEnd:
		return clientEnd, nil
	case <-l.closed:
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, remote)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// DialContext implements the dns.Dialer / generic dialer shape. All
// connections are duplex pipes, but "udp" networks mark the connection
// as message-oriented: each write is one datagram, subject to the
// link's probabilistic loss but never split into partial reads. The
// local address is a synthetic client endpoint.
func (f *Fabric) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	remote, err := netip.ParseAddrPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad address %q: %w", address, err)
	}
	local := netip.AddrPortFrom(netip.MustParseAddr("198.18.0.1"), 0)
	if remote.Addr().Is6() {
		local = netip.AddrPortFrom(netip.MustParseAddr("2001:db8:ffff::1"), 0)
	}
	return f.dial(ctx, local, remote, isDatagram(network))
}

// isDatagram reports whether the dial network names a message-oriented
// transport.
func isDatagram(network string) bool {
	return strings.HasPrefix(network, "udp")
}

// BoundDialer returns a Dialer whose connections originate from the
// given source addresses (IPv4 and IPv6 selected by the remote's
// family). Protocols that authenticate the client address — SPF above
// all — see the bound address as the connecting IP.
func (f *Fabric) BoundDialer(local4, local6 netip.Addr) *BoundDialer {
	return &BoundDialer{fabric: f, local4: local4, local6: local6}
}

// BoundDialer dials through a Fabric from fixed source addresses.
type BoundDialer struct {
	fabric *Fabric
	local4 netip.Addr
	local6 netip.Addr
}

// DialContext implements the generic dialer shape over the fabric.
func (d *BoundDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	remote, err := netip.ParseAddrPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: bad address %q: %w", address, err)
	}
	local := d.local4
	if remote.Addr().Is6() {
		local = d.local6
	}
	if !local.IsValid() {
		return nil, fmt.Errorf("%w: no local %s address bound", ErrConnRefused, address)
	}
	return d.fabric.dial(ctx, netip.AddrPortFrom(local, 0), remote, isDatagram(network))
}

// Listener accepts fabric connections for one address.
type Listener struct {
	fabric  *Fabric
	addr    netip.AddrPort
	backlog chan net.Conn
	closed  chan struct{}
	once    sync.Once
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrListenerClosed
	}
}

// Close deregisters the listener.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.fabric.mu.Lock()
		delete(l.fabric.listeners, l.addr)
		l.fabric.mu.Unlock()
	})
	return nil
}

// Addr returns the simulated listen address.
func (l *Listener) Addr() net.Addr {
	return simAddr(l.addr)
}

// simAddr renders a simulated address as a net.Addr.
type simAddr netip.AddrPort

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return netip.AddrPort(a).String() }

// AddrPortOf extracts the netip.AddrPort from a fabric net.Addr,
// falling back to parsing its string form.
func AddrPortOf(a net.Addr) (netip.AddrPort, bool) {
	if sa, ok := a.(simAddr); ok {
		return netip.AddrPort(sa), true
	}
	ap, err := netip.ParseAddrPort(a.String())
	return ap, err == nil
}

// newPipePair creates the two ends of a buffered duplex connection.
func newPipePair(client, server netip.AddrPort) (*pipeConn, *pipeConn) {
	c2s := newHalf()
	s2c := newHalf()
	clientEnd := &pipeConn{rd: s2c, wr: c2s, local: client, remote: server}
	serverEnd := &pipeConn{rd: c2s, wr: s2c, local: server, remote: client}
	clientEnd.initDeadlines()
	serverEnd.initDeadlines()
	return clientEnd, serverEnd
}

// half is one direction of a pipe: a bounded queue of byte chunks.
type half struct {
	ch     chan []byte
	closed chan struct{}
	once   sync.Once

	mu   sync.Mutex
	rem  []byte // partially consumed chunk
	fail error  // close cause when abnormal (e.g. ErrConnReset)
}

func newHalf() *half {
	return &half{ch: make(chan []byte, 256), closed: make(chan struct{})}
}

func (h *half) close() {
	h.once.Do(func() { close(h.closed) })
}

// abort closes the half recording cause, so readers and writers see it
// instead of the clean EOF/closed-pipe errors.
func (h *half) abort(cause error) {
	h.mu.Lock()
	if h.fail == nil {
		h.fail = cause
	}
	h.mu.Unlock()
	h.close()
}

// closeCause returns the abnormal-close cause, or nil after a clean
// close.
func (h *half) closeCause() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fail
}

// connDeadline is one direction's cancellable deadline. Setting the
// deadline while an I/O operation is blocked takes effect immediately:
// the operation selects on the cancel channel the deadline closes when
// it fires. This mirrors net.Pipe's deadline machinery, which is the
// contract net.Conn implementations must honour under concurrent
// SetDeadline calls.
type connDeadline struct {
	mu     sync.Mutex
	timer  *time.Timer
	cancel chan struct{}
}

func (d *connDeadline) init() {
	d.cancel = make(chan struct{})
}

// set arms (or clears, for a zero time) the deadline.
func (d *connDeadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()

	if d.timer != nil && !d.timer.Stop() {
		<-d.cancel // the timer fired; wait until its close completes
	}
	d.timer = nil

	expired := isClosedChan(d.cancel)
	if t.IsZero() {
		// No deadline: replace an already-fired channel so future I/O
		// blocks again.
		if expired {
			d.cancel = make(chan struct{})
		}
		return
	}
	if dur := time.Until(t); dur > 0 {
		if expired {
			d.cancel = make(chan struct{})
		}
		cancel := d.cancel
		d.timer = time.AfterFunc(dur, func() { close(cancel) })
		return
	}
	// Deadline in the past: expire immediately.
	if !expired {
		close(d.cancel)
	}
}

// wait returns the channel closed when the deadline fires.
func (d *connDeadline) wait() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancel
}

func isClosedChan(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// pipeConn is one endpoint of a fabric connection.
type pipeConn struct {
	rd, wr *half
	local  netip.AddrPort
	remote netip.AddrPort

	// faults is the link's fault state (shared by both ends); nil on a
	// healthy link. datagram marks message-oriented connections.
	faults   *linkFaults
	datagram bool

	rdDL connDeadline
	wrDL connDeadline
}

func (c *pipeConn) initDeadlines() {
	c.rdDL.init()
	c.wrDL.init()
}

func (c *pipeConn) Read(p []byte) (int, error) {
	c.rd.mu.Lock()
	if len(c.rd.rem) > 0 {
		n := copy(p, c.rd.rem)
		c.rd.rem = c.rd.rem[n:]
		c.rd.mu.Unlock()
		return n, nil
	}
	c.rd.mu.Unlock()

	cancel := c.rdDL.wait()
	if isClosedChan(cancel) {
		return 0, ErrDeadlineExceeded
	}
	select {
	case chunk, ok := <-c.rd.ch:
		if !ok {
			return 0, c.readCloseErr()
		}
		n := copy(p, chunk)
		if n < len(chunk) {
			c.rd.mu.Lock()
			c.rd.rem = chunk[n:]
			c.rd.mu.Unlock()
		}
		return n, nil
	case <-c.rd.closed:
		// Drain anything enqueued before close.
		select {
		case chunk, ok := <-c.rd.ch:
			if ok && len(chunk) > 0 {
				n := copy(p, chunk)
				if n < len(chunk) {
					c.rd.mu.Lock()
					c.rd.rem = chunk[n:]
					c.rd.mu.Unlock()
				}
				return n, nil
			}
		default:
		}
		return 0, c.readCloseErr()
	case <-cancel:
		return 0, ErrDeadlineExceeded
	}
}

// readCloseErr maps a closed read half to its surfaced error: the
// abnormal cause (connection reset) when present, clean EOF otherwise.
func (c *pipeConn) readCloseErr() error {
	if cause := c.rd.closeCause(); cause != nil {
		return cause
	}
	return io.EOF
}

func (c *pipeConn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if c.faults != nil {
		if err := c.injectWriteFault(); err != nil {
			return 0, err
		}
		if c.datagram {
			if c.faults.roll(c.faults.profile.Loss) {
				// The datagram vanishes on the wire: a successful local
				// write the receiver never sees.
				return len(p), nil
			}
		} else if max := c.faults.maxChunk(); max > 0 && len(p) > max {
			return c.writeChunked(p, max)
		}
	}
	return c.writeChunk(p)
}

// injectWriteFault applies flap and reset faults to one write. On
// injection it tears down both directions so the peer observes the
// reset too, and returns the error the writer sees.
func (c *pipeConn) injectWriteFault() error {
	lf := c.faults
	if lf.down(time.Now()) || lf.roll(lf.profile.ResetRate) {
		c.wr.abort(ErrConnReset)
		c.rd.abort(ErrConnReset)
		return ErrConnReset
	}
	return nil
}

// writeChunked delivers p in max-sized chunks, so the peer observes
// partial reads and this side observes short writes on failure
// mid-stream.
func (c *pipeConn) writeChunked(p []byte, max int) (int, error) {
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > max {
			n = max
		}
		if _, err := c.writeChunk(p[:n]); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
		// Re-roll faults between chunks: a large write can reset partway
		// through, leaving the peer with a short read.
		if len(p) > 0 && c.faults != nil {
			if err := c.injectWriteFault(); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// writeChunk enqueues one chunk, honouring the write deadline.
func (c *pipeConn) writeChunk(p []byte) (int, error) {
	cancel := c.wrDL.wait()
	if isClosedChan(cancel) {
		return 0, ErrDeadlineExceeded
	}
	chunk := append([]byte(nil), p...)
	select {
	case <-c.wr.closed:
		return 0, c.writeCloseErr()
	default:
	}
	select {
	case c.wr.ch <- chunk:
		return len(p), nil
	case <-c.wr.closed:
		return 0, c.writeCloseErr()
	case <-cancel:
		return 0, ErrDeadlineExceeded
	}
}

// writeCloseErr maps a closed write half to its surfaced error.
func (c *pipeConn) writeCloseErr() error {
	if cause := c.wr.closeCause(); cause != nil {
		return cause
	}
	return io.ErrClosedPipe
}

func (c *pipeConn) Close() error {
	c.wr.close()
	c.rd.close()
	return nil
}

func (c *pipeConn) LocalAddr() net.Addr  { return simAddr(c.local) }
func (c *pipeConn) RemoteAddr() net.Addr { return simAddr(c.remote) }

func (c *pipeConn) SetDeadline(t time.Time) error {
	c.rdDL.set(t)
	c.wrDL.set(t)
	return nil
}

func (c *pipeConn) SetReadDeadline(t time.Time) error {
	c.rdDL.set(t)
	return nil
}

func (c *pipeConn) SetWriteDeadline(t time.Time) error {
	c.wrDL.set(t)
	return nil
}
