// Chaos suite: drives the fabric's fault injection end to end and
// asserts the serving-path invariants the hardening work promises —
// deterministic fault schedules per seed, intact data under chunking
// and loss, correct error identities under resets and flaps, and a
// campaign that survives (and resumes across) a hostile fabric with
// no goroutine leaks.
//
// Every probabilistic test logs its seed; re-run a failure with
//
//	CHAOS_SEED=<seed> go test -run TestChaos ./internal/netsim/
package netsim_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"sendervalid/internal/campaign"
	"sendervalid/internal/leaktest"
	"sendervalid/internal/netsim"
	"sendervalid/internal/smtp"
)

// chaosSeed returns the seed for this run: CHAOS_SEED when set, else a
// fixed default so plain `go test` is reproducible. The seed is always
// logged so a chaos failure can be replayed exactly.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(42)
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed: %d (re-run with CHAOS_SEED=%d)", seed, seed)
	return seed
}

// drainAccepts keeps a listener's accept queue empty so dial outcomes
// reflect fault injection, not backpressure. Returned stop func closes
// everything accepted.
func drainAccepts(l *netsim.Listener) (stop func()) {
	var mu sync.Mutex
	var conns []net.Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	return func() {
		l.Close()
		<-done
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}

// TestChaosSeedDeterminism is the acceptance check for reproducible
// chaos: the same seed must produce the same per-link fault schedule,
// and a different seed a different one.
func TestChaosSeedDeterminism(t *testing.T) {
	defer leaktest.Check(t)()
	seed := chaosSeed(t)
	server := netip.MustParseAddrPort("203.0.113.80:25")
	client := netip.MustParseAddrPort("198.51.100.7:0")

	schedule := func(seed int64) string {
		f := netsim.NewFabric()
		f.SetChaosSeed(seed)
		f.SetFaults(server.Addr(), &netsim.FaultProfile{DialFailure: 0.5})
		l, err := f.Listen(server)
		if err != nil {
			t.Fatal(err)
		}
		stop := drainAccepts(l)
		defer stop()
		var bits []byte
		for i := 0; i < 64; i++ {
			conn, err := f.Dial(context.Background(), client, server)
			if err == nil {
				conn.Close()
				bits = append(bits, '1')
				continue
			}
			if !errors.Is(err, netsim.ErrConnRefused) {
				t.Fatalf("dial %d: unexpected error %v", i, err)
			}
			bits = append(bits, '0')
		}
		return string(bits)
	}

	a, b := schedule(seed), schedule(seed)
	if a != b {
		t.Errorf("same seed, different fault schedules:\n%s\n%s", a, b)
	}
	if c := schedule(seed + 1); c == a {
		t.Errorf("different seed reproduced the same 64-dial schedule %s", a)
	}
}

// TestChaosDatagramLoss checks that loss drops whole datagrams —
// silently, and only some of them — and never corrupts the ones that
// arrive.
func TestChaosDatagramLoss(t *testing.T) {
	defer leaktest.Check(t)()
	seed := chaosSeed(t)
	server := netip.MustParseAddrPort("203.0.113.53:53")

	f := netsim.NewFabric()
	f.SetChaosSeed(seed)
	f.SetFaults(server.Addr(), &netsim.FaultProfile{Loss: 0.5})
	l, err := f.Listen(server)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	received := make(chan []string, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			received <- nil
			return
		}
		defer conn.Close()
		var got []string
		buf := make([]byte, 64)
		for {
			conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				break
			}
			got = append(got, string(buf[:n]))
		}
		received <- got
	}()

	dialer := f.BoundDialer(netip.MustParseAddr("198.51.100.7"), netip.Addr{})
	conn, err := dialer.DialContext(context.Background(), "udp", server.String())
	if err != nil {
		t.Fatal(err)
	}
	const sent = 200
	for i := 0; i < sent; i++ {
		if _, err := conn.Write([]byte(fmt.Sprintf("dgram-%03d", i))); err != nil {
			t.Fatalf("datagram %d: %v", i, err)
		}
	}
	conn.Close()

	got := <-received
	if len(got) == 0 || len(got) >= sent {
		t.Fatalf("received %d of %d datagrams; loss=0.5 should drop some and deliver some", len(got), sent)
	}
	// Delivered datagrams must be intact and in order.
	last := -1
	for _, d := range got {
		var n int
		if _, err := fmt.Sscanf(d, "dgram-%d", &n); err != nil || len(d) != 9 {
			t.Fatalf("corrupted datagram %q", d)
		}
		if n <= last {
			t.Fatalf("datagram %d delivered after %d", n, last)
		}
		last = n
	}
	t.Logf("delivered %d/%d datagrams", len(got), sent)
}

// TestChaosStreamChunking checks that MaxChunk forces partial reads on
// stream connections without corrupting or reordering bytes.
func TestChaosStreamChunking(t *testing.T) {
	defer leaktest.Check(t)()
	seed := chaosSeed(t)
	server := netip.MustParseAddrPort("203.0.113.25:25")

	f := netsim.NewFabric()
	f.SetChaosSeed(seed)
	f.SetFaults(server.Addr(), &netsim.FaultProfile{MaxChunk: 7})
	l, err := f.Listen(server)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type result struct {
		reads int
		data  []byte
		err   error
	}
	done := make(chan result, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- result{err: err}
			return
		}
		defer conn.Close()
		var r result
		buf := make([]byte, 256)
		for {
			n, err := conn.Read(buf)
			if n > 0 {
				r.reads++
				if n > 7 {
					r.err = fmt.Errorf("read %d bytes in one call, MaxChunk=7", n)
				}
				r.data = append(r.data, buf[:n]...)
			}
			if err != nil {
				if err != io.EOF && r.err == nil {
					r.err = err
				}
				break
			}
		}
		done <- r
	}()

	conn, err := f.Dial(context.Background(), netip.MustParseAddrPort("198.51.100.7:0"), server)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 100)
	for i := range msg {
		msg[i] = byte('a' + i%26)
	}
	if n, err := conn.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	conn.Close()

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if string(r.data) != string(msg) {
		t.Fatalf("data corrupted across chunks: got %q", r.data)
	}
	if r.reads < len(msg)/7 {
		t.Errorf("got %d reads for %d bytes at MaxChunk=7; expected at least %d", r.reads, len(msg), len(msg)/7)
	}
}

// TestChaosMidStreamReset checks that a reset surfaces as ECONNRESET on
// the writer, and on the peer's reads once the in-flight data drains.
func TestChaosMidStreamReset(t *testing.T) {
	defer leaktest.Check(t)()
	seed := chaosSeed(t)
	server := netip.MustParseAddrPort("203.0.113.25:25")

	f := netsim.NewFabric()
	f.SetChaosSeed(seed)
	f.SetFaults(server.Addr(), &netsim.FaultProfile{ResetRate: 1})
	l, err := f.Listen(server)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	peerErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			peerErr <- err
			return
		}
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err = conn.Read(make([]byte, 16))
		peerErr <- err
	}()

	conn, err := f.Dial(context.Background(), netip.MustParseAddrPort("198.51.100.7:0"), server)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = conn.Write([]byte("EHLO probe\r\n"))
	if !errors.Is(err, netsim.ErrConnReset) || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("write after reset = %v; want ErrConnReset wrapping ECONNRESET", err)
	}
	if err := <-peerErr; !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("peer read = %v; want ECONNRESET", err)
	}
}

// TestChaosLinkFlap checks the flap schedule: dials fail with
// ErrLinkDown during the down window at the start of each period and
// succeed in the up window. Windows are wide relative to scheduler
// noise so the phase arithmetic, not timing luck, is under test.
func TestChaosLinkFlap(t *testing.T) {
	defer leaktest.Check(t)()
	seed := chaosSeed(t)
	server := netip.MustParseAddrPort("203.0.113.25:25")
	client := netip.MustParseAddrPort("198.51.100.7:0")

	f := netsim.NewFabric()
	f.SetChaosSeed(seed) // anchors the chaos epoch: phase 0 is now
	f.SetFaults(server.Addr(), &netsim.FaultProfile{
		FlapPeriod: 1200 * time.Millisecond,
		FlapDown:   600 * time.Millisecond,
	})
	l, err := f.Listen(server)
	if err != nil {
		t.Fatal(err)
	}
	stop := drainAccepts(l)
	defer stop()

	// Phase ~0: inside the down window.
	if _, err := f.Dial(context.Background(), client, server); !errors.Is(err, netsim.ErrLinkDown) {
		t.Fatalf("dial during down window = %v; want ErrLinkDown", err)
	}
	// ErrLinkDown must read as a refusal to retry classifiers.
	if !errors.Is(netsim.ErrLinkDown, syscall.ECONNREFUSED) {
		t.Error("ErrLinkDown does not wrap ECONNREFUSED")
	}

	// Phase ~700ms: inside the up window (600..1200ms).
	time.Sleep(700 * time.Millisecond)
	conn, err := f.Dial(context.Background(), client, server)
	if err != nil {
		t.Fatalf("dial during up window = %v", err)
	}
	conn.Close()
}

// TestPipeConnDeadlineUnblocksRead pins the net.Conn deadline contract
// the fix restored: a Set*Deadline call made while another goroutine is
// blocked in I/O takes effect immediately.
func TestPipeConnDeadlineUnblocksRead(t *testing.T) {
	defer leaktest.Check(t)()
	server := netip.MustParseAddrPort("203.0.113.25:25")

	f := netsim.NewFabric()
	l, err := f.Listen(server)
	if err != nil {
		t.Fatal(err)
	}
	stop := drainAccepts(l)
	defer stop()

	conn, err := f.Dial(context.Background(), netip.MustParseAddrPort("198.51.100.7:0"), server)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	readErr := make(chan error, 1)
	go func() {
		_, err := conn.Read(make([]byte, 1)) // no data will ever arrive
		readErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the read block
	conn.SetReadDeadline(time.Now())
	select {
	case err := <-readErr:
		if !errors.Is(err, netsim.ErrDeadlineExceeded) || !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("read = %v; want ErrDeadlineExceeded wrapping os.ErrDeadlineExceeded", err)
		}
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("read error %v is not a net.Error timeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Read did not observe SetReadDeadline from another goroutine")
	}

	// Clearing the deadline must also take effect on a blocked read:
	// set a future deadline, block, extend it past the original, and
	// check the read honors the extension (no early timeout).
	conn.SetReadDeadline(time.Now().Add(80 * time.Millisecond))
	start := time.Now()
	go func() {
		_, err := conn.Read(make([]byte, 1))
		readErr <- err
	}()
	time.Sleep(30 * time.Millisecond)
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	err = <-readErr
	if !errors.Is(err, netsim.ErrDeadlineExceeded) {
		t.Fatalf("read = %v; want deadline exceeded", err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("read timed out after %v; the extended deadline was ignored", d)
	}
}

// TestPipeConnDeadlineChurn hammers one connection with concurrent
// reads, writes, and Set*Deadline calls. Run under -race (make check)
// this is the regression test for the deadline-semantics fix: the old
// implementation raced timer replacement against blocked I/O.
func TestPipeConnDeadlineChurn(t *testing.T) {
	defer leaktest.Check(t)()
	server := netip.MustParseAddrPort("203.0.113.25:25")

	f := netsim.NewFabric()
	l, err := f.Listen(server)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	conn, err := f.Dial(context.Background(), netip.MustParseAddrPort("198.51.100.7:0"), server)
	if err != nil {
		t.Fatal(err)
	}
	peer, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	spin := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	// Peer drains so writes keep making progress.
	spin(func() {
		peer.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
		peer.Read(make([]byte, 64))
	})
	spin(func() {
		conn.SetWriteDeadline(time.Now().Add(5 * time.Millisecond))
		conn.Write([]byte("churn"))
	})
	spin(func() {
		conn.SetReadDeadline(time.Now().Add(time.Millisecond))
		conn.Read(make([]byte, 8))
	})
	// Deadline churners: past, future, and cleared deadlines from
	// goroutines that never do I/O themselves.
	spin(func() { conn.SetDeadline(time.Now().Add(time.Microsecond)) })
	spin(func() { conn.SetReadDeadline(time.Now().Add(time.Hour)) })
	spin(func() {
		conn.SetWriteDeadline(time.Time{})
		time.Sleep(100 * time.Microsecond)
	})

	time.Sleep(200 * time.Millisecond)
	close(stop)
	// A spinner can be blocked in Read/Write under a far-future deadline
	// another churner installed; closing both ends unblocks all I/O so
	// the spinners observe stop.
	conn.Close()
	peer.Close()
	wg.Wait()
}

// TestChaosMiniCampaign is the acceptance run: a fleet of SMTP servers
// behind a fabric injecting dial failures, ≥5% datagram loss, resets,
// jitter, and link flaps; a campaign is started, cancelled mid-flight,
// resumed from its journal, and must converge — every task finished,
// no failures, no escaped panics (a panic fails the test process), no
// goroutine leaks.
func TestChaosMiniCampaign(t *testing.T) {
	defer leaktest.Check(t)()
	seed := chaosSeed(t)

	f := netsim.NewFabric()
	f.SetChaosSeed(seed)
	f.SetDefaultFaults(&netsim.FaultProfile{
		DialFailure: 0.15,
		Loss:        0.10, // exercised by the udp-probe task type
		ResetRate:   0.02,
		MaxChunk:    8,
		Jitter:      2 * time.Millisecond,
		FlapPeriod:  400 * time.Millisecond,
		FlapDown:    60 * time.Millisecond,
	})

	// Fleet: five MTAs, one listener each.
	const fleet = 5
	handler := smtp.Handler{
		OnRcpt: func(s *smtp.Session, to string) *smtp.Reply { return smtp.ReplyOK },
	}
	var servers []*smtp.Server
	mtaAddr := make(map[string]string)
	for i := 0; i < fleet; i++ {
		addr := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, byte(10 + i)}), 25)
		l, err := f.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		srv := &smtp.Server{Hostname: fmt.Sprintf("mta%d.example", i), Handler: handler}
		go srv.Serve(l)
		servers = append(servers, srv)
		mtaAddr[fmt.Sprintf("mta%d", i)] = addr.String()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	dialer := f.BoundDialer(netip.MustParseAddr("198.51.100.7"), netip.Addr{})
	run := func(ctx context.Context, task campaign.Task) error {
		addr := mtaAddr[task.MTA]
		if task.Test == "udp-probe" {
			// Fire-and-forget datagram: loss drops some silently;
			// the probe is complete once the datagram is handed to
			// the fabric.
			conn, err := dialer.DialContext(ctx, "udp", addr)
			if err != nil {
				return err
			}
			defer conn.Close()
			_, err = conn.Write([]byte("probe"))
			return err
		}
		c, err := smtp.Dial(ctx, dialer, addr)
		if err != nil {
			return err
		}
		c.Timeout = 2 * time.Second
		defer c.Abort()
		if err := c.Hello("probe.example"); err != nil {
			return err
		}
		if task.Test == "helo-only" {
			return c.Quit()
		}
		if err := c.Mail("sender@probe.example"); err != nil {
			return err
		}
		if err := c.Rcpt("postmaster@" + task.MTA + ".example"); err != nil {
			return err
		}
		return c.Quit()
	}

	classify := func(err error) campaign.Class {
		if err == nil {
			return campaign.Done
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return campaign.Aborted
		}
		// Under chaos every failure is the fabric's doing: retry.
		return campaign.Transient
	}

	var tasks []campaign.Task
	for mta := range mtaAddr {
		for _, test := range []string{"helo-only", "mail-rcpt", "udp-probe"} {
			tasks = append(tasks, campaign.Task{MTA: mta, Test: test})
		}
	}

	journal := t.TempDir() + "/chaos.journal"
	cfg := campaign.Config{
		Workers:   4,
		ShardRate: 20,
		// Deep attempt budget with backoff spanning more than one flap
		// period: retries must not phase-lock into down windows.
		MaxAttempts: 25,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  500 * time.Millisecond,
		Seed:        seed,
		Classify:    classify,
	}

	// Phase 1: run under chaos, cancel mid-flight.
	replay, jf, err := campaign.Resume(journal)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = jf
	c1 := campaign.New(cfg, run)
	c1.Add(replay.Unfinished(tasks)...)
	ctx1, cancel1 := context.WithTimeout(context.Background(), 250*time.Millisecond)
	err = c1.Run(ctx1)
	cancel1()
	jf.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("phase 1 run: %v", err)
	}
	snap1 := c1.Snapshot()
	t.Logf("phase 1: %s", snap1)

	// Phase 2: resume from the journal; the campaign must converge.
	replay, jf, err = campaign.Resume(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	unfinished := replay.Unfinished(tasks)
	if snap1.Completed()+len(unfinished) != len(tasks) {
		t.Errorf("journal accounting: %d finished in phase 1 + %d unfinished != %d tasks",
			snap1.Completed(), len(unfinished), len(tasks))
	}
	cfg.Journal = jf
	c2 := campaign.New(cfg, run)
	c2.Add(unfinished...)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	if err := c2.Run(ctx2); err != nil {
		t.Fatalf("resumed run did not converge: %v (%s)", err, c2.Snapshot())
	}
	snap2 := c2.Snapshot()
	t.Logf("phase 2: %s", snap2)
	if snap2.Failed > 0 {
		t.Errorf("%d tasks failed permanently under chaos; retries should absorb injected faults", snap2.Failed)
	}
	if snap2.Done != len(unfinished) {
		t.Errorf("resumed run finished %d of %d unfinished tasks", snap2.Done, len(unfinished))
	}

	// The journal must now record every task as finished.
	final, jf3, err := campaign.Resume(journal)
	if err != nil {
		t.Fatal(err)
	}
	jf3.Close()
	if left := final.Unfinished(tasks); len(left) != 0 {
		t.Errorf("journal still records %d unfinished tasks after convergence: %v", len(left), left)
	}
}
