package netsim

import (
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// FaultProfile describes the failure behaviour of one link (all
// traffic to one remote address). A zero profile injects nothing; each
// knob composes independently, so a chaos run can combine loss, jitter,
// resets, and flaps on the same link.
//
// All probabilistic decisions draw from a per-link RNG seeded from the
// fabric's chaos seed and the link address, so a single-goroutine
// sequence of operations over the same link reproduces the same fault
// schedule for the same seed. Under concurrency the per-operation
// interleaving is scheduler-dependent, but each link's decision stream
// is still drawn from the same deterministic sequence.
type FaultProfile struct {
	// DialFailure is the probability in [0, 1] that a dial attempt
	// fails with ErrConnRefused (a filtered port, a dead host, an
	// overloaded accept queue).
	DialFailure float64
	// Loss is the probability in [0, 1] that a datagram write is
	// silently dropped. It applies only to datagram ("udp")
	// connections; stream connections are never corrupted by loss
	// (TCP retransmits below the layer this fabric models).
	Loss float64
	// ResetRate is the probability in [0, 1] that any given write
	// resets the connection mid-stream: the write fails with
	// ErrConnReset and the peer's reads fail the same way once the
	// in-flight queue drains.
	ResetRate float64
	// MaxChunk caps the bytes delivered per internal chunk. Writes
	// larger than MaxChunk are split, so the peer observes partial
	// reads and io.ReadFull-style loops are actually exercised. Zero
	// means unlimited (one write, one chunk).
	MaxChunk int
	// Jitter adds a uniform random delay in [0, Jitter) to connection
	// establishment, on top of the fabric's fixed latency.
	Jitter time.Duration
	// FlapPeriod and FlapDown model link flaps: the link is down for
	// the first FlapDown of every FlapPeriod, measured from the
	// fabric's chaos epoch. While down, dials fail with ErrLinkDown
	// and writes on established connections reset. Zero FlapPeriod
	// disables flapping.
	FlapPeriod time.Duration
	FlapDown   time.Duration
}

// zero reports whether the profile injects no faults at all.
func (p *FaultProfile) zero() bool {
	return p == nil || *p == FaultProfile{}
}

// linkFaults is the runtime fault state of one link: its profile plus
// the seeded RNG that drives its probabilistic decisions.
type linkFaults struct {
	mu      sync.Mutex
	profile FaultProfile
	rng     *rand.Rand
	epoch   time.Time
}

func newLinkFaults(p FaultProfile, seed int64, addr netip.Addr, epoch time.Time) *linkFaults {
	return &linkFaults{
		profile: p,
		rng:     rand.New(rand.NewSource(linkSeed(seed, addr))),
		epoch:   epoch,
	}
}

// linkSeed derives a per-link seed so every link draws an independent
// deterministic stream regardless of the order links are first used.
func linkSeed(seed int64, addr netip.Addr) int64 {
	h := fnv.New64a()
	b, _ := addr.MarshalBinary()
	_, _ = h.Write(b)
	return seed ^ int64(h.Sum64())
}

// roll draws one probabilistic decision.
func (lf *linkFaults) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.rng.Float64() < p
}

// jitter draws the extra establishment delay.
func (lf *linkFaults) jitter() time.Duration {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	j := lf.profile.Jitter
	if j <= 0 {
		return 0
	}
	return time.Duration(lf.rng.Int63n(int64(j)))
}

// down reports whether the link is inside a flap window at now.
func (lf *linkFaults) down(now time.Time) bool {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	p := lf.profile
	if p.FlapPeriod <= 0 || p.FlapDown <= 0 {
		return false
	}
	phase := now.Sub(lf.epoch) % p.FlapPeriod
	if phase < 0 {
		phase += p.FlapPeriod
	}
	return phase < p.FlapDown
}

// maxChunk returns the configured chunk cap.
func (lf *linkFaults) maxChunk() int {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.profile.MaxChunk
}

// SetChaosSeed fixes the seed for all fault decisions and resets the
// chaos epoch (the zero phase of flap schedules). Call it before
// configuring fault profiles; links already created re-derive their
// RNG streams from the new seed.
func (f *Fabric) SetChaosSeed(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.chaosSeed = seed
	f.chaosEpoch = time.Now()
	for addr, lf := range f.faults {
		lf.mu.Lock()
		lf.rng = rand.New(rand.NewSource(linkSeed(seed, addr)))
		lf.epoch = f.chaosEpoch
		lf.mu.Unlock()
	}
}

// SetFaults installs (or, with a nil or zero profile, clears) the
// fault profile for all traffic to addr. It overrides any default
// profile for that link.
func (f *Fabric) SetFaults(addr netip.Addr, p *FaultProfile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p.zero() {
		delete(f.faults, addr)
		return
	}
	f.faults[addr] = newLinkFaults(*p, f.chaosSeed, addr, f.chaosEpochLocked())
}

// SetDefaultFaults installs a profile applied to every link without an
// explicit per-address profile. A nil or zero profile clears it; links
// that already materialized fault state from a previous default keep
// injecting until cleared with SetFaults(addr, nil).
func (f *Fabric) SetDefaultFaults(p *FaultProfile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p.zero() {
		f.defaultFaults = nil
		return
	}
	cp := *p
	f.defaultFaults = &cp
}

// chaosEpochLocked returns the flap epoch, anchoring it on first use.
// Caller holds f.mu.
func (f *Fabric) chaosEpochLocked() time.Time {
	if f.chaosEpoch.IsZero() {
		f.chaosEpoch = time.Now()
	}
	return f.chaosEpoch
}

// faultsFor returns the fault state for traffic to addr, materializing
// it from the default profile when needed. Returns nil when the link
// is fault-free.
func (f *Fabric) faultsFor(addr netip.Addr) *linkFaults {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lf, ok := f.faults[addr]; ok {
		return lf
	}
	if f.defaultFaults == nil {
		return nil
	}
	lf := newLinkFaults(*f.defaultFaults, f.chaosSeed, addr, f.chaosEpochLocked())
	f.faults[addr] = lf
	return lf
}
