package dkim

import (
	"strings"
)

// Canonicalization is a DKIM canonicalization algorithm name.
type Canonicalization string

// The two canonicalization algorithms (RFC 6376 §3.4).
const (
	Simple  Canonicalization = "simple"
	Relaxed Canonicalization = "relaxed"
)

// ParseCanonicalization parses the c= tag value
// ("header/body", "header", or "" meaning simple/simple).
func ParseCanonicalization(c string) (header, body Canonicalization, ok bool) {
	if c == "" {
		return Simple, Simple, true
	}
	h, b, hasBody := strings.Cut(c, "/")
	header = Canonicalization(h)
	body = Simple
	if hasBody {
		body = Canonicalization(b)
	}
	if header != Simple && header != Relaxed {
		return "", "", false
	}
	if body != Simple && body != Relaxed {
		return "", "", false
	}
	return header, body, true
}

// CanonicalizeHeader canonicalizes one header field for hashing.
// The result includes the trailing CRLF for simple mode; relaxed mode
// appends CRLF per RFC 6376 §3.4.2.
func CanonicalizeHeader(h Header, c Canonicalization) string {
	if c == Simple {
		return h.Raw
	}
	name := strings.ToLower(strings.TrimSpace(h.Name))
	value := unfold(h.Value)
	value = collapseWSP(value)
	value = strings.TrimSpace(value)
	return name + ":" + value + "\r\n"
}

// collapseWSP reduces every run of spaces/tabs to a single space.
func collapseWSP(s string) string {
	var sb strings.Builder
	inWSP := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' {
			inWSP = true
			continue
		}
		if inWSP && sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		inWSP = false
		sb.WriteByte(c)
	}
	return sb.String()
}

// CanonicalizeBody canonicalizes a message body for hashing
// (RFC 6376 §3.4.3–3.4.4).
func CanonicalizeBody(body []byte, c Canonicalization) []byte {
	// Normalize line endings to CRLF first; both canonicalizations are
	// defined over CRLF-delimited text.
	text := strings.ReplaceAll(string(body), "\r\n", "\n")
	lines := strings.Split(text, "\n")
	// A trailing newline produces one empty trailing element; treat the
	// content as the lines before it.
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}

	if c == Relaxed {
		for i, line := range lines {
			line = collapseWSP(line)
			lines[i] = strings.TrimRight(line, " ")
		}
	}

	// Both modes strip trailing empty lines.
	for len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}

	if len(lines) == 0 {
		if c == Simple {
			return []byte("\r\n") // simple: empty body hashes as CRLF
		}
		return nil // relaxed: empty body hashes as empty
	}
	return []byte(strings.Join(lines, "\r\n") + "\r\n")
}

// selectHeaders picks the headers named in the h= tag, honouring the
// RFC 6376 §5.4.2 rule: for repeated names, instances are consumed
// bottom-up, and names may be listed more times than they occur (the
// extras select nothing and guard against header addition in transit).
func selectHeaders(headers []Header, names []string) []Header {
	used := make([]bool, len(headers))
	var out []Header
	for _, want := range names {
		for i := len(headers) - 1; i >= 0; i-- {
			if used[i] || !strings.EqualFold(strings.TrimSpace(headers[i].Name), strings.TrimSpace(want)) {
				continue
			}
			used[i] = true
			out = append(out, headers[i])
			break
		}
	}
	return out
}
