package dkim

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"strings"
)

// Signer produces DKIM-Signature headers for outgoing messages.
type Signer struct {
	// Domain is the d= signing domain.
	Domain string
	// Selector is the s= key selector.
	Selector string
	// Key is the private key: *rsa.PrivateKey or ed25519.PrivateKey.
	Key crypto.Signer
	// Headers lists the header fields to sign. Empty means the default
	// set: From, To, Subject, Date, Message-ID (those present).
	Headers []string
	// HeaderCanon and BodyCanon select canonicalization. Empty means
	// relaxed/relaxed, the dominant deployment choice.
	HeaderCanon Canonicalization
	BodyCanon   Canonicalization
	// Timestamp, when nonzero, is published in the t= tag.
	Timestamp int64
}

var defaultSignedHeaders = []string{"From", "To", "Subject", "Date", "Message-ID"}

func (s *Signer) canon() (Canonicalization, Canonicalization) {
	h, b := s.HeaderCanon, s.BodyCanon
	if h == "" {
		h = Relaxed
	}
	if b == "" {
		b = Relaxed
	}
	return h, b
}

func (s *Signer) algorithm() (string, error) {
	switch s.Key.(type) {
	case *rsa.PrivateKey:
		return AlgRSASHA256, nil
	case ed25519.PrivateKey:
		return AlgEd25519SHA256, nil
	default:
		return "", fmt.Errorf("dkim: unsupported private key type %T", s.Key)
	}
}

// Sign parses raw, computes the signature, and returns the message
// with the DKIM-Signature header prepended.
func (s *Signer) Sign(raw []byte) ([]byte, error) {
	msg, err := ParseMessage(raw)
	if err != nil {
		return nil, err
	}
	header, err := s.SignatureHeader(msg)
	if err != nil {
		return nil, err
	}
	msg.Prepend("DKIM-Signature", header)
	return msg.Render(), nil
}

// SignatureHeader computes the DKIM-Signature header value for msg.
func (s *Signer) SignatureHeader(msg *Message) (string, error) {
	if s.Domain == "" || s.Selector == "" {
		return "", fmt.Errorf("dkim: signer requires Domain and Selector")
	}
	alg, err := s.algorithm()
	if err != nil {
		return "", err
	}
	hc, bc := s.canon()

	signedNames := s.Headers
	if len(signedNames) == 0 {
		for _, name := range defaultSignedHeaders {
			if msg.Get(name) != "" {
				signedNames = append(signedNames, name)
			}
		}
	}
	if len(signedNames) == 0 {
		return "", fmt.Errorf("dkim: no headers to sign")
	}

	bodyHash := sha256.Sum256(CanonicalizeBody(msg.Body, bc))
	bh := base64.StdEncoding.EncodeToString(bodyHash[:])

	var tags strings.Builder
	fmt.Fprintf(&tags, "v=1; a=%s; c=%s/%s; d=%s; s=%s;", alg, hc, bc, s.Domain, s.Selector)
	if s.Timestamp != 0 {
		fmt.Fprintf(&tags, " t=%d;", s.Timestamp)
	}
	fmt.Fprintf(&tags, " h=%s; bh=%s; b=", strings.Join(signedNames, ":"), bh)
	unsigned := tags.String()

	digest := headerDigest(msg, signedNames, unsigned, hc)
	sig, err := s.sign(digest)
	if err != nil {
		return "", err
	}
	return unsigned + base64.StdEncoding.EncodeToString(sig), nil
}

func (s *Signer) sign(digest []byte) ([]byte, error) {
	switch key := s.Key.(type) {
	case *rsa.PrivateKey:
		return rsa.SignPKCS1v15(rand.Reader, key, crypto.SHA256, digest)
	case ed25519.PrivateKey:
		// RFC 8463: Ed25519 signs the SHA-256 digest.
		return ed25519.Sign(key, digest), nil
	default:
		return nil, fmt.Errorf("dkim: unsupported private key type %T", s.Key)
	}
}

// headerDigest computes the SHA-256 over the canonicalized signed
// headers followed by the (b=-emptied) signature header without its
// trailing CRLF (RFC 6376 §3.7).
func headerDigest(msg *Message, signedNames []string, sigHeaderValue string, hc Canonicalization) []byte {
	h := sha256.New()
	for _, hdr := range selectHeaders(msg.Headers, signedNames) {
		h.Write([]byte(CanonicalizeHeader(hdr, hc)))
	}
	sigHeader := Header{
		Name:  "DKIM-Signature",
		Value: " " + sigHeaderValue,
		Raw:   "DKIM-Signature: " + sigHeaderValue + "\r\n",
	}
	canon := CanonicalizeHeader(sigHeader, hc)
	canon = strings.TrimSuffix(canon, "\r\n")
	h.Write([]byte(canon))
	return h.Sum(nil)
}
