package dkim

import (
	"context"
	"crypto"
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"strings"
)

// Result is a DKIM verification result, following the RFC 8601
// Authentication-Results vocabulary.
type Result string

// Verification results.
const (
	ResultPass      Result = "pass"
	ResultFail      Result = "fail"
	ResultNone      Result = "none"
	ResultPermError Result = "permerror"
	ResultTempError Result = "temperror"
)

// TXTResolver fetches TXT records; a lookup yielding no records
// returns (nil, nil), and transient failures return errors (the same
// contract as spf.Resolver, which satisfies this interface).
type TXTResolver interface {
	LookupTXT(ctx context.Context, name string) ([]string, error)
}

// Signature is a parsed DKIM-Signature header.
type Signature struct {
	Algorithm   string
	HeaderCanon Canonicalization
	BodyCanon   Canonicalization
	Domain      string
	Selector    string
	Headers     []string
	BodyHash    []byte
	Value       []byte
	// Identity is the optional i= agent/user identifier.
	Identity string
	// rawValue is the original header value with b= content intact,
	// needed to recompute the header digest.
	rawValue string
}

// ErrNoSignature reports a message without a DKIM-Signature header.
var ErrNoSignature = errors.New("dkim: no signature header")

// ParseSignature parses a DKIM-Signature header value.
func ParseSignature(value string) (*Signature, error) {
	tags, err := parseTagList(value)
	if err != nil {
		return nil, fmt.Errorf("dkim: signature header: %w", err)
	}
	if tags["v"] != "1" {
		return nil, fmt.Errorf("dkim: unsupported signature version %q", tags["v"])
	}
	sig := &Signature{
		Algorithm: tags["a"],
		Domain:    tags["d"],
		Selector:  tags["s"],
		Identity:  tags["i"],
		rawValue:  value,
	}
	if sig.Algorithm != AlgRSASHA256 && sig.Algorithm != AlgEd25519SHA256 {
		return nil, fmt.Errorf("dkim: unsupported algorithm %q", sig.Algorithm)
	}
	if sig.Domain == "" || sig.Selector == "" {
		return nil, errors.New("dkim: signature missing d= or s= tag")
	}
	var ok bool
	sig.HeaderCanon, sig.BodyCanon, ok = ParseCanonicalization(tags["c"])
	if !ok {
		return nil, fmt.Errorf("dkim: bad canonicalization %q", tags["c"])
	}
	h := tags["h"]
	if h == "" {
		return nil, errors.New("dkim: signature missing h= tag")
	}
	sig.Headers = strings.Split(h, ":")
	fromSigned := false
	for _, name := range sig.Headers {
		if strings.EqualFold(strings.TrimSpace(name), "from") {
			fromSigned = true
		}
	}
	if !fromSigned {
		return nil, errors.New("dkim: From header not signed")
	}
	if sig.BodyHash, err = base64.StdEncoding.DecodeString(strings.Map(dropWSP, tags["bh"])); err != nil {
		return nil, fmt.Errorf("dkim: bh= tag: %w", err)
	}
	if sig.Value, err = base64.StdEncoding.DecodeString(strings.Map(dropWSP, tags["b"])); err != nil {
		return nil, fmt.Errorf("dkim: b= tag: %w", err)
	}
	if len(sig.Value) == 0 {
		return nil, errors.New("dkim: empty b= tag")
	}
	return sig, nil
}

// Verification is the outcome of verifying one signature.
type Verification struct {
	Result Result
	// Domain is the d= domain the result speaks for.
	Domain string
	// Err carries detail for non-pass results.
	Err error
	// Testing reports the key's t=y flag.
	Testing bool
}

// Verifier checks DKIM signatures on incoming messages.
type Verifier struct {
	// Resolver fetches key records.
	Resolver TXTResolver
}

// Verify checks the first DKIM-Signature of a raw message.
func (v *Verifier) Verify(ctx context.Context, raw []byte) *Verification {
	msg, err := ParseMessage(raw)
	if err != nil {
		return &Verification{Result: ResultPermError, Err: err}
	}
	return v.VerifyMessage(ctx, msg)
}

// VerifyMessage checks the first DKIM-Signature of a parsed message.
func (v *Verifier) VerifyMessage(ctx context.Context, msg *Message) *Verification {
	results := v.VerifyAll(ctx, msg, 1)
	if len(results) == 0 {
		return &Verification{Result: ResultNone, Err: ErrNoSignature}
	}
	return results[0]
}

// VerifyAll checks up to max DKIM-Signature headers of a parsed
// message (0 means all), in header order. Messages relayed through
// mailing lists or forwarders commonly carry several signatures; a
// DMARC evaluator passes on any aligned passing one.
func (v *Verifier) VerifyAll(ctx context.Context, msg *Message, max int) []*Verification {
	var out []*Verification
	for i := range msg.Headers {
		if !strings.EqualFold(msg.Headers[i].Name, "DKIM-Signature") {
			continue
		}
		out = append(out, v.verifyOne(ctx, msg, &msg.Headers[i]))
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// BestVerification picks the most useful result from a set: the first
// pass, else the first non-error, else the first.
func BestVerification(results []*Verification) *Verification {
	if len(results) == 0 {
		return &Verification{Result: ResultNone, Err: ErrNoSignature}
	}
	for _, r := range results {
		if r.Result == ResultPass {
			return r
		}
	}
	for _, r := range results {
		if r.Result == ResultFail {
			return r
		}
	}
	return results[0]
}

func (v *Verifier) verifyOne(ctx context.Context, msg *Message, sigHeader *Header) *Verification {
	sig, err := ParseSignature(strings.TrimSpace(unfold(sigHeader.Value)))
	if err != nil {
		return &Verification{Result: ResultPermError, Err: err}
	}
	out := &Verification{Domain: sig.Domain}

	// Fetch the public key: the DNS query that makes DKIM validation
	// visible to the measurement apparatus.
	txts, err := v.Resolver.LookupTXT(ctx, KeyName(sig.Selector, sig.Domain))
	if err != nil {
		out.Result, out.Err = ResultTempError, err
		return out
	}
	var key *KeyRecord
	var keyErr error
	for _, txt := range txts {
		if key, keyErr = ParseKeyRecord(txt); keyErr == nil {
			break
		}
	}
	if key == nil {
		if keyErr == nil {
			keyErr = ErrNoKey
		}
		out.Result, out.Err = ResultPermError, keyErr
		return out
	}
	out.Testing = key.Testing()

	// Body hash.
	bodyHash := sha256.Sum256(CanonicalizeBody(msg.Body, sig.BodyCanon))
	if !equalBytes(bodyHash[:], sig.BodyHash) {
		out.Result, out.Err = ResultFail, errors.New("dkim: body hash mismatch")
		return out
	}

	// Header hash: the signature header participates with b= emptied.
	emptied := emptyBTag(sig.rawValue)
	digest := headerDigest(msg, sig.Headers, emptied, sig.HeaderCanon)

	switch pub := key.PublicKey.(type) {
	case *rsa.PublicKey:
		if sig.Algorithm != AlgRSASHA256 {
			out.Result, out.Err = ResultPermError, fmt.Errorf("dkim: algorithm %s with RSA key", sig.Algorithm)
			return out
		}
		if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest, sig.Value); err != nil {
			out.Result, out.Err = ResultFail, err
			return out
		}
	case ed25519.PublicKey:
		if sig.Algorithm != AlgEd25519SHA256 {
			out.Result, out.Err = ResultPermError, fmt.Errorf("dkim: algorithm %s with Ed25519 key", sig.Algorithm)
			return out
		}
		if !ed25519.Verify(pub, digest, sig.Value) {
			out.Result, out.Err = ResultFail, errors.New("dkim: ed25519 signature mismatch")
			return out
		}
	default:
		out.Result, out.Err = ResultPermError, fmt.Errorf("dkim: unsupported key type %T", key.PublicKey)
		return out
	}
	out.Result = ResultPass
	return out
}

// emptyBTag removes the content of the b= tag while preserving
// everything else byte-for-byte (RFC 6376 §3.7).
func emptyBTag(value string) string {
	// Find the b= tag at a tag boundary (start or after ';').
	for i := 0; i < len(value); i++ {
		if value[i] != 'b' {
			continue
		}
		// Must be preceded by start/;/WSP and followed by optional WSP
		// then '='. Exclude "bh".
		j := i + 1
		for j < len(value) && (value[j] == ' ' || value[j] == '\t') {
			j++
		}
		if j >= len(value) || value[j] != '=' {
			continue
		}
		if i > 0 {
			prev := value[i-1]
			if prev != ';' && prev != ' ' && prev != '\t' && prev != '\n' && prev != '\r' {
				continue
			}
		}
		end := strings.IndexByte(value[j:], ';')
		if end < 0 {
			return value[:j+1]
		}
		return value[:j+1] + value[j+end:]
	}
	return value
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
