// Package dkim implements DomainKeys Identified Mail signatures
// (RFC 6376): RSA-SHA256 and Ed25519 signing, simple and relaxed
// canonicalization, DNS key-record handling, and verification. The
// measurement study's NotifyEmail experiment signs every outgoing
// notification with DKIM and publishes the public key in the DNS under
// <selector>._domainkey.<domain> (paper §4.3.1); receiving MTAs that
// validate DKIM reveal themselves by querying that name.
package dkim

import (
	"errors"
	"fmt"
	"strings"
)

// Header is one message header field, with its original raw text
// preserved for simple canonicalization.
type Header struct {
	// Name is the field name as it appeared (original case).
	Name string
	// Value is the field body, possibly folded across lines.
	Value string
	// Raw is the complete original field including the name, colon,
	// folding, and final CRLF.
	Raw string
}

// Message is a parsed RFC 5322 message: an ordered header list and the
// raw body.
type Message struct {
	Headers []Header
	Body    []byte
}

// ErrMalformedMessage reports a message without a proper header block.
var ErrMalformedMessage = errors.New("dkim: malformed message")

// ParseMessage splits a raw message into headers and body. Both CRLF
// and bare-LF messages are accepted; the body is returned as-is.
func ParseMessage(raw []byte) (*Message, error) {
	text := string(raw)
	// Find the header/body separator.
	sep := strings.Index(text, "\r\n\r\n")
	sepLen := 4
	if sep < 0 {
		sep = strings.Index(text, "\n\n")
		sepLen = 2
	}
	headerText := text
	body := ""
	if sep >= 0 {
		headerText = text[:sep+sepLen/2] // keep the final header newline
		body = text[sep+sepLen:]
	}

	msg := &Message{Body: []byte(body)}
	lines := splitLines(headerText)
	var current *Header
	for _, line := range lines {
		if line == "" {
			continue
		}
		if line[0] == ' ' || line[0] == '\t' {
			if current == nil {
				return nil, fmt.Errorf("%w: continuation line before any header", ErrMalformedMessage)
			}
			current.Value += "\r\n" + line
			current.Raw += line + "\r\n"
			continue
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%w: header line %q lacks a colon", ErrMalformedMessage, line)
		}
		msg.Headers = append(msg.Headers, Header{
			Name:  name,
			Value: value,
			Raw:   line + "\r\n",
		})
		current = &msg.Headers[len(msg.Headers)-1]
	}
	return msg, nil
}

// splitLines splits on CRLF or LF without keeping terminators.
func splitLines(s string) []string {
	s = strings.ReplaceAll(s, "\r\n", "\n")
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// Get returns the value of the last header with the given name
// (case-insensitive), or "".
func (m *Message) Get(name string) string {
	for i := len(m.Headers) - 1; i >= 0; i-- {
		if strings.EqualFold(m.Headers[i].Name, name) {
			return strings.TrimSpace(unfold(m.Headers[i].Value))
		}
	}
	return ""
}

// unfold removes CRLF folding from a header value.
func unfold(v string) string {
	v = strings.ReplaceAll(v, "\r\n", "")
	return strings.ReplaceAll(v, "\n", "")
}

// Render reassembles the message into wire form with CRLF endings.
func (m *Message) Render() []byte {
	var sb strings.Builder
	for _, h := range m.Headers {
		sb.WriteString(h.Raw)
	}
	sb.WriteString("\r\n")
	sb.Write(m.Body)
	return []byte(sb.String())
}

// Prepend inserts a header at the top of the message (where a
// signature header belongs).
func (m *Message) Prepend(name, value string) {
	h := Header{Name: name, Value: " " + value, Raw: name + ": " + value + "\r\n"}
	m.Headers = append([]Header{h}, m.Headers...)
}

// AddressDomain extracts the domain of the first address-like token in
// a header value such as From. It handles "Display <user@dom>" and
// bare "user@dom" forms; the result is lowercased.
func AddressDomain(headerValue string) string {
	v := unfold(headerValue)
	if i := strings.IndexByte(v, '<'); i >= 0 {
		if j := strings.IndexByte(v[i:], '>'); j > 0 {
			v = v[i+1 : i+j]
		}
	}
	v = strings.TrimSpace(v)
	at := strings.LastIndexByte(v, '@')
	if at < 0 || at == len(v)-1 {
		return ""
	}
	return strings.ToLower(strings.TrimRight(v[at+1:], "> \t"))
}
