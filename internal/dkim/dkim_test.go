package dkim

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"strings"
	"sync"
	"testing"
)

// testKeys caches generated keys across tests (RSA keygen is slow).
var (
	keyOnce sync.Once
	rsaKey  *rsa.PrivateKey
	edPub   ed25519.PublicKey
	edPriv  ed25519.PrivateKey
)

func keys(t *testing.T) (*rsa.PrivateKey, ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		rsaKey, err = rsa.GenerateKey(rand.Reader, 2048)
		if err != nil {
			t.Fatalf("rsa keygen: %v", err)
		}
		edPub, edPriv, err = ed25519.GenerateKey(rand.Reader)
		if err != nil {
			t.Fatalf("ed25519 keygen: %v", err)
		}
	})
	return rsaKey, edPub, edPriv
}

// mapResolver serves TXT records from a map.
type mapResolver struct {
	txt     map[string][]string
	queries []string
}

func (r *mapResolver) LookupTXT(ctx context.Context, name string) ([]string, error) {
	r.queries = append(r.queries, strings.ToLower(strings.TrimSuffix(name, ".")))
	return r.txt[strings.ToLower(strings.TrimSuffix(name, "."))], nil
}

const sampleMail = "From: Alice <alice@sender.example>\r\n" +
	"To: bob@recipient.example\r\n" +
	"Subject: measurement study notification\r\n" +
	"Date: Mon, 05 Oct 2020 10:00:00 +0000\r\n" +
	"Message-ID: <m1@sender.example>\r\n" +
	"\r\n" +
	"Dear operator,\r\n" +
	"\r\n" +
	"your network has a vulnerability.\r\n"

func signAndPublish(t *testing.T, signer *Signer, pub any) (signed []byte, res *mapResolver) {
	t.Helper()
	signed, err := signer.Sign([]byte(sampleMail))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	record, err := FormatKeyRecord(pub)
	if err != nil {
		t.Fatalf("FormatKeyRecord: %v", err)
	}
	res = &mapResolver{txt: map[string][]string{
		KeyName(signer.Selector, signer.Domain): {record},
	}}
	return signed, res
}

func TestSignVerifyRSA(t *testing.T) {
	rsaKey, _, _ := keys(t)
	signer := &Signer{Domain: "sender.example", Selector: "s1", Key: rsaKey, Timestamp: 1601892000}
	signed, res := signAndPublish(t, signer, &rsaKey.PublicKey)

	v := &Verifier{Resolver: res}
	out := v.Verify(context.Background(), signed)
	if out.Result != ResultPass {
		t.Fatalf("verify: %s (%v)", out.Result, out.Err)
	}
	if out.Domain != "sender.example" {
		t.Errorf("domain %q", out.Domain)
	}
	// Verification must have queried the key name — the observable the
	// study counts as DKIM validation.
	if len(res.queries) != 1 || res.queries[0] != "s1._domainkey.sender.example" {
		t.Errorf("key queries %v", res.queries)
	}
}

func TestSignVerifyEd25519(t *testing.T) {
	_, edPub, edPriv := keys(t)
	signer := &Signer{Domain: "sender.example", Selector: "ed", Key: edPriv}
	signed, res := signAndPublish(t, signer, edPub)
	out := (&Verifier{Resolver: res}).Verify(context.Background(), signed)
	if out.Result != ResultPass {
		t.Fatalf("ed25519 verify: %s (%v)", out.Result, out.Err)
	}
}

func TestSignVerifySimpleCanon(t *testing.T) {
	rsaKey, _, _ := keys(t)
	signer := &Signer{
		Domain: "sender.example", Selector: "s1", Key: rsaKey,
		HeaderCanon: Simple, BodyCanon: Simple,
	}
	signed, res := signAndPublish(t, signer, &rsaKey.PublicKey)
	out := (&Verifier{Resolver: res}).Verify(context.Background(), signed)
	if out.Result != ResultPass {
		t.Fatalf("simple/simple verify: %s (%v)", out.Result, out.Err)
	}
}

func TestVerifyDetectsBodyTampering(t *testing.T) {
	rsaKey, _, _ := keys(t)
	signer := &Signer{Domain: "sender.example", Selector: "s1", Key: rsaKey}
	signed, res := signAndPublish(t, signer, &rsaKey.PublicKey)
	tampered := []byte(strings.Replace(string(signed), "vulnerability", "VULNERABILITY!", 1))
	out := (&Verifier{Resolver: res}).Verify(context.Background(), tampered)
	if out.Result != ResultFail {
		t.Errorf("tampered body: %s (%v)", out.Result, out.Err)
	}
}

func TestVerifyDetectsHeaderTampering(t *testing.T) {
	rsaKey, _, _ := keys(t)
	signer := &Signer{Domain: "sender.example", Selector: "s1", Key: rsaKey}
	signed, res := signAndPublish(t, signer, &rsaKey.PublicKey)
	tampered := []byte(strings.Replace(string(signed),
		"Subject: measurement study notification",
		"Subject: click here for a prize", 1))
	out := (&Verifier{Resolver: res}).Verify(context.Background(), tampered)
	if out.Result != ResultFail {
		t.Errorf("tampered header: %s (%v)", out.Result, out.Err)
	}
}

func TestRelaxedCanonSurvivesWhitespaceChanges(t *testing.T) {
	// Relaxed canonicalization tolerates WSP collapse in transit.
	rsaKey, _, _ := keys(t)
	signer := &Signer{Domain: "sender.example", Selector: "s1", Key: rsaKey}
	signed, res := signAndPublish(t, signer, &rsaKey.PublicKey)
	relayed := []byte(strings.Replace(string(signed),
		"Subject: measurement study notification",
		"Subject:  measurement   study \tnotification", 1))
	out := (&Verifier{Resolver: res}).Verify(context.Background(), relayed)
	if out.Result != ResultPass {
		t.Errorf("relaxed WSP tolerance: %s (%v)", out.Result, out.Err)
	}
}

func TestVerifyNoSignature(t *testing.T) {
	res := &mapResolver{txt: map[string][]string{}}
	out := (&Verifier{Resolver: res}).Verify(context.Background(), []byte(sampleMail))
	if out.Result != ResultNone {
		t.Errorf("unsigned message: %s", out.Result)
	}
	if len(res.queries) != 0 {
		t.Error("unsigned message triggered a key query")
	}
}

func TestVerifyMissingKey(t *testing.T) {
	rsaKey, _, _ := keys(t)
	signer := &Signer{Domain: "sender.example", Selector: "s1", Key: rsaKey}
	signed, err := signer.Sign([]byte(sampleMail))
	if err != nil {
		t.Fatal(err)
	}
	res := &mapResolver{txt: map[string][]string{}}
	out := (&Verifier{Resolver: res}).Verify(context.Background(), signed)
	if out.Result != ResultPermError {
		t.Errorf("missing key: %s", out.Result)
	}
}

func TestVerifyRevokedKey(t *testing.T) {
	rsaKey, _, _ := keys(t)
	signer := &Signer{Domain: "sender.example", Selector: "s1", Key: rsaKey}
	signed, err := signer.Sign([]byte(sampleMail))
	if err != nil {
		t.Fatal(err)
	}
	res := &mapResolver{txt: map[string][]string{
		"s1._domainkey.sender.example": {"v=DKIM1; k=rsa; p="},
	}}
	out := (&Verifier{Resolver: res}).Verify(context.Background(), signed)
	if out.Result != ResultPermError {
		t.Errorf("revoked key: %s (%v)", out.Result, out.Err)
	}
}

func TestKeyRecordRoundTrip(t *testing.T) {
	rsaKey, edPub, _ := keys(t)
	for _, pub := range []any{&rsaKey.PublicKey, edPub} {
		record, err := FormatKeyRecord(pub)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseKeyRecord(record)
		if err != nil {
			t.Fatalf("ParseKeyRecord(%q): %v", record[:40], err)
		}
		if parsed.Version != "DKIM1" {
			t.Errorf("version %q", parsed.Version)
		}
	}
}

func TestParseKeyRecordErrors(t *testing.T) {
	cases := []string{
		"v=DKIM2; p=AAAA",            // bad version
		"v=DKIM1; k=dsa; p=AAA",      // unsupported key type
		"v=DKIM1; k=rsa",             // missing p=
		"v=DKIM1; p=!!!notb64",       // bad base64
		"v=DKIM1; k=ed25519; p=QUJD", // wrong ed25519 length
	}
	for _, txt := range cases {
		if _, err := ParseKeyRecord(txt); err == nil {
			t.Errorf("ParseKeyRecord(%q) accepted", txt)
		}
	}
	if _, err := ParseKeyRecord("v=DKIM1; p="); err != ErrKeyRevoked {
		t.Errorf("revoked: %v", err)
	}
}

func TestKeyRecordFlags(t *testing.T) {
	rsaKey, _, _ := keys(t)
	base, _ := FormatKeyRecord(&rsaKey.PublicKey)
	record := strings.Replace(base, "k=rsa;", "k=rsa; t=y:s; s=email;", 1)
	parsed, err := ParseKeyRecord(record)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Testing() {
		t.Error("t=y flag not detected")
	}
	if len(parsed.Services) != 1 || parsed.Services[0] != "email" {
		t.Errorf("services %v", parsed.Services)
	}
}

func TestParseSignatureErrors(t *testing.T) {
	cases := []string{
		"v=2; a=rsa-sha256; d=x.com; s=s; h=from; bh=QQ==; b=QQ==",       // bad version
		"v=1; a=rsa-md5; d=x.com; s=s; h=from; bh=QQ==; b=QQ==",          // bad algorithm
		"v=1; a=rsa-sha256; s=s; h=from; bh=QQ==; b=QQ==",                // missing d=
		"v=1; a=rsa-sha256; d=x.com; s=s; h=subject; bh=QQ==; b=QQ==",    // From unsigned
		"v=1; a=rsa-sha256; d=x.com; s=s; h=from; bh=QQ==; b=",           // empty b=
		"v=1; a=rsa-sha256; c=odd/odd; d=x.com; s=s; h=from; bh=Q; b=QQ", // bad canon
	}
	for _, v := range cases {
		if _, err := ParseSignature(v); err == nil {
			t.Errorf("ParseSignature(%q) accepted", v)
		}
	}
}

func TestCanonicalizeHeaderRelaxed(t *testing.T) {
	h := Header{Name: "SUBJECT ", Value: "  multiple\t words  \r\n folded", Raw: "SUBJECT :  multiple\t words  \r\n folded\r\n"}
	got := CanonicalizeHeader(h, Relaxed)
	if got != "subject:multiple words folded\r\n" {
		t.Errorf("relaxed header = %q", got)
	}
	if CanonicalizeHeader(h, Simple) != h.Raw {
		t.Error("simple header must be the raw bytes")
	}
}

func TestCanonicalizeBody(t *testing.T) {
	cases := []struct {
		in, wantSimple, wantRelaxed string
	}{
		{"", "\r\n", ""},
		{"\r\n\r\n", "\r\n", ""},
		{"line\r\n", "line\r\n", "line\r\n"},
		{"line", "line\r\n", "line\r\n"},
		{"a  b \t c\r\n", "a  b \t c\r\n", "a b c\r\n"},
		{"text\r\n\r\n\r\n", "text\r\n", "text\r\n"},
		{"trailing ws  \r\nx\r\n", "trailing ws  \r\nx\r\n", "trailing ws\r\nx\r\n"},
	}
	for _, c := range cases {
		if got := string(CanonicalizeBody([]byte(c.in), Simple)); got != c.wantSimple {
			t.Errorf("simple(%q) = %q, want %q", c.in, got, c.wantSimple)
		}
		if got := string(CanonicalizeBody([]byte(c.in), Relaxed)); got != c.wantRelaxed {
			t.Errorf("relaxed(%q) = %q, want %q", c.in, got, c.wantRelaxed)
		}
	}
}

func TestSelectHeadersBottomUp(t *testing.T) {
	headers := []Header{
		{Name: "Received", Value: " first"},
		{Name: "Received", Value: " second"},
		{Name: "From", Value: " a@b.c"},
	}
	got := selectHeaders(headers, []string{"received", "received", "received", "from"})
	if len(got) != 3 {
		t.Fatalf("selected %d headers", len(got))
	}
	if got[0].Value != " second" || got[1].Value != " first" {
		t.Errorf("order: %v", got)
	}
}

func TestParseMessage(t *testing.T) {
	msg, err := ParseMessage([]byte(sampleMail))
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Headers) != 5 {
		t.Errorf("%d headers", len(msg.Headers))
	}
	if msg.Get("subject") != "measurement study notification" {
		t.Errorf("Get(subject) = %q", msg.Get("subject"))
	}
	if msg.Get("nonexistent") != "" {
		t.Error("missing header should be empty")
	}
	if !strings.HasPrefix(string(msg.Body), "Dear operator") {
		t.Errorf("body %q", msg.Body)
	}
	// Round trip.
	if string(msg.Render()) != sampleMail {
		t.Errorf("render mismatch:\n%q\n%q", msg.Render(), sampleMail)
	}
}

func TestParseMessageFolded(t *testing.T) {
	raw := "Subject: a folded\r\n\theader value\r\nFrom: x@y.z\r\n\r\nbody\r\n"
	msg, err := ParseMessage([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Headers) != 2 {
		t.Fatalf("%d headers", len(msg.Headers))
	}
	if got := msg.Get("subject"); got != "a folded\theader value" {
		t.Errorf("folded value %q", got)
	}
}

func TestParseMessageErrors(t *testing.T) {
	if _, err := ParseMessage([]byte(" continuation first\r\n\r\n")); err == nil {
		t.Error("leading continuation accepted")
	}
	if _, err := ParseMessage([]byte("no colon here\r\n\r\n")); err == nil {
		t.Error("colonless header accepted")
	}
}

func TestAddressDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{" Alice <alice@Sender.Example>", "sender.example"},
		{"bob@example.com", "example.com"},
		{"\"Quoted\" <q@d.example >", "d.example"},
		{"no-address-here", ""},
		{"trailing@", ""},
	}
	for _, c := range cases {
		if got := AddressDomain(c.in); got != c.want {
			t.Errorf("AddressDomain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEmptyBTag(t *testing.T) {
	in := "v=1; a=rsa-sha256; bh=abc; b=SIGDATA"
	if got := emptyBTag(in); got != "v=1; a=rsa-sha256; bh=abc; b=" {
		t.Errorf("emptyBTag = %q", got)
	}
	in = "v=1; b=SIG; d=x.com"
	if got := emptyBTag(in); got != "v=1; b=; d=x.com" {
		t.Errorf("emptyBTag mid = %q", got)
	}
	// bh= must not be mistaken for b=.
	in = "v=1; bh=HASH"
	if got := emptyBTag(in); got != in {
		t.Errorf("emptyBTag touched bh=: %q", got)
	}
}

func TestKeyName(t *testing.T) {
	if got := KeyName("s1", "example.com."); got != "s1._domainkey.example.com" {
		t.Errorf("KeyName = %q", got)
	}
}

func TestSignRequiresConfig(t *testing.T) {
	rsaKey, _, _ := keys(t)
	if _, err := (&Signer{Key: rsaKey}).Sign([]byte(sampleMail)); err == nil {
		t.Error("signer without domain/selector succeeded")
	}
}

func TestSignedMessageStructure(t *testing.T) {
	rsaKey, _, _ := keys(t)
	signer := &Signer{Domain: "sender.example", Selector: "s1", Key: rsaKey}
	signed, err := signer.Sign([]byte(sampleMail))
	if err != nil {
		t.Fatal(err)
	}
	text := string(signed)
	if !strings.HasPrefix(text, "DKIM-Signature: v=1; a=rsa-sha256; c=relaxed/relaxed; d=sender.example; s=s1;") {
		t.Errorf("signature header placement:\n%s", text[:120])
	}
	if !strings.Contains(text, "h=From:To:Subject:Date:Message-ID;") {
		t.Error("default signed header set missing")
	}
}

func TestVerifyAllMultipleSignatures(t *testing.T) {
	// A message signed by the origin and re-signed by a forwarder.
	rsaKey, _, edPriv := keys(t)
	origin := &Signer{Domain: "origin.example", Selector: "o1", Key: rsaKey}
	signed, err := origin.Sign([]byte(sampleMail))
	if err != nil {
		t.Fatal(err)
	}
	forwarder := &Signer{Domain: "list.example", Selector: "f1", Key: edPriv}
	resigned, err := forwarder.Sign(signed)
	if err != nil {
		t.Fatal(err)
	}

	originKey, _ := FormatKeyRecord(&rsaKey.PublicKey)
	fwdKey, _ := FormatKeyRecord(edPriv.Public().(ed25519.PublicKey))
	res := &mapResolver{txt: map[string][]string{
		"o1._domainkey.origin.example": {originKey},
		"f1._domainkey.list.example":   {fwdKey},
	}}
	msg, err := ParseMessage(resigned)
	if err != nil {
		t.Fatal(err)
	}
	v := &Verifier{Resolver: res}
	results := v.VerifyAll(context.Background(), msg, 0)
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	// Outermost (forwarder) signature first, both passing.
	if results[0].Domain != "list.example" || results[0].Result != ResultPass {
		t.Errorf("forwarder: %+v", results[0])
	}
	if results[1].Domain != "origin.example" || results[1].Result != ResultPass {
		t.Errorf("origin: %+v", results[1])
	}

	// Tamper with the body: both fail; BestVerification picks a fail.
	tampered := []byte(strings.Replace(string(resigned), "vulnerability", "prize", 1))
	msg2, _ := ParseMessage(tampered)
	results = v.VerifyAll(context.Background(), msg2, 0)
	best := BestVerification(results)
	if best.Result != ResultFail {
		t.Errorf("best after tamper: %+v", best)
	}
	if BestVerification(nil).Result != ResultNone {
		t.Error("empty BestVerification")
	}
	// max=1 stops at the outermost signature.
	if got := v.VerifyAll(context.Background(), msg, 1); len(got) != 1 {
		t.Errorf("max=1 returned %d", len(got))
	}
}
