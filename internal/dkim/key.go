package dkim

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/x509"
	"encoding/base64"
	"errors"
	"fmt"
	"strings"
)

// Key algorithm names (a= tag values).
const (
	AlgRSASHA256     = "rsa-sha256"
	AlgEd25519SHA256 = "ed25519-sha256"
)

// Errors from key handling.
var (
	ErrNoKey        = errors.New("dkim: no key record found")
	ErrKeyRevoked   = errors.New("dkim: key revoked (empty p= tag)")
	ErrBadKeyRecord = errors.New("dkim: malformed key record")
)

// KeyRecord is a parsed _domainkey TXT record (RFC 6376 §3.6.1).
type KeyRecord struct {
	// Version is the v= tag; "DKIM1" or empty.
	Version string
	// KeyType is the k= tag; "rsa" (default) or "ed25519".
	KeyType string
	// PublicKey is the decoded p= tag.
	PublicKey crypto.PublicKey
	// Flags holds t= flags ("y" testing, "s" strict).
	Flags []string
	// Services holds s= service types; empty means all.
	Services []string
}

// Testing reports whether the key carries the t=y testing flag.
func (k *KeyRecord) Testing() bool {
	for _, f := range k.Flags {
		if f == "y" {
			return true
		}
	}
	return false
}

// ParseKeyRecord parses the TXT payload of a _domainkey record.
func ParseKeyRecord(txt string) (*KeyRecord, error) {
	tags, err := parseTagList(txt)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadKeyRecord, err)
	}
	k := &KeyRecord{Version: tags["v"], KeyType: tags["k"]}
	if k.Version != "" && k.Version != "DKIM1" {
		return nil, fmt.Errorf("%w: version %q", ErrBadKeyRecord, k.Version)
	}
	if k.KeyType == "" {
		k.KeyType = "rsa"
	}
	if f := tags["t"]; f != "" {
		k.Flags = strings.Split(f, ":")
	}
	if s := tags["s"]; s != "" {
		k.Services = strings.Split(s, ":")
	}
	p, ok := tags["p"]
	if !ok {
		return nil, fmt.Errorf("%w: missing p= tag", ErrBadKeyRecord)
	}
	if p == "" {
		return nil, ErrKeyRevoked
	}
	der, err := base64.StdEncoding.DecodeString(strings.Map(dropWSP, p))
	if err != nil {
		return nil, fmt.Errorf("%w: p= tag: %v", ErrBadKeyRecord, err)
	}
	switch k.KeyType {
	case "rsa":
		pub, err := x509.ParsePKIXPublicKey(der)
		if err != nil {
			// Some deployments publish PKCS#1 keys.
			if pkcs1, err1 := x509.ParsePKCS1PublicKey(der); err1 == nil {
				k.PublicKey = pkcs1
				return k, nil
			}
			return nil, fmt.Errorf("%w: rsa key: %v", ErrBadKeyRecord, err)
		}
		rsaKey, ok := pub.(*rsa.PublicKey)
		if !ok {
			return nil, fmt.Errorf("%w: p= tag is not an RSA key", ErrBadKeyRecord)
		}
		k.PublicKey = rsaKey
	case "ed25519":
		if len(der) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("%w: ed25519 key length %d", ErrBadKeyRecord, len(der))
		}
		k.PublicKey = ed25519.PublicKey(der)
	default:
		return nil, fmt.Errorf("%w: key type %q", ErrBadKeyRecord, k.KeyType)
	}
	return k, nil
}

// FormatKeyRecord renders the TXT payload publishing pub.
func FormatKeyRecord(pub crypto.PublicKey) (string, error) {
	switch key := pub.(type) {
	case *rsa.PublicKey:
		der, err := x509.MarshalPKIXPublicKey(key)
		if err != nil {
			return "", err
		}
		return "v=DKIM1; k=rsa; p=" + base64.StdEncoding.EncodeToString(der), nil
	case ed25519.PublicKey:
		return "v=DKIM1; k=ed25519; p=" + base64.StdEncoding.EncodeToString(key), nil
	default:
		return "", fmt.Errorf("dkim: unsupported public key type %T", pub)
	}
}

// KeyName returns the DNS name where the key for (selector, domain)
// lives: <selector>._domainkey.<domain>.
func KeyName(selector, domain string) string {
	return selector + "._domainkey." + strings.TrimSuffix(domain, ".")
}

// parseTagList parses the tag=value; tag=value syntax shared by
// signature headers and key records (RFC 6376 §3.2).
func parseTagList(s string) (map[string]string, error) {
	tags := make(map[string]string)
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(unfold(part))
		if part == "" {
			continue
		}
		name, value, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("tag %q lacks '='", part)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("empty tag name in %q", part)
		}
		if _, dup := tags[name]; dup {
			return nil, fmt.Errorf("duplicate tag %q", name)
		}
		tags[name] = strings.TrimSpace(value)
	}
	return tags, nil
}

func dropWSP(r rune) rune {
	if r == ' ' || r == '\t' || r == '\r' || r == '\n' {
		return -1
	}
	return r
}
