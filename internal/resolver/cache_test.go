package resolver

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// TestCacheBoundUnderConcurrentHammer proves the configured
// MaxCacheEntries bound holds while many goroutines insert disjoint
// names concurrently (run under -race by `make test`): the sharded
// cache may hold stale entries between accesses, but it can never
// exceed the configured capacity.
func TestCacheBoundUnderConcurrentHammer(t *testing.T) {
	h := newStaticHandler()
	const names = 400
	for i := 0; i < names; i++ {
		h.add(fmt.Sprintf("h%03d.example.com", i), dns.TypeA,
			&dns.A{Addr: netip.MustParseAddr("192.0.2.9")})
	}
	const bound = 64
	r := New(Config{Server: startServer(t, h), MaxCacheEntries: bound})
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < names; i += 8 {
				if _, err := r.LookupA(ctx, fmt.Sprintf("h%03d.example.com", i)); err != nil {
					t.Error(err)
					return
				}
				if n := r.CacheLen(); n > bound {
					t.Errorf("cache grew to %d entries, bound %d", n, bound)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := r.CacheLen(); n > bound {
		t.Errorf("final cache size %d exceeds bound %d", n, bound)
	}
}

// TestEvictExpiredFirst pins the capacity-time eviction policy: when a
// shard is full, expired entries are reclaimed before any live entry
// is dropped.
func TestEvictExpiredFirst(t *testing.T) {
	c := newShardedCache(4) // stays single-shard: capacity 4
	if len(c.shards) != 1 {
		t.Fatalf("expected 1 shard for capacity 4, got %d", len(c.shards))
	}
	now := time.Now()
	mk := func(name string) cacheKey { return cacheKey{name: name, typ: dns.TypeA} }
	live1, live2 := mk("live1."), mk("live2.")
	dead1, dead2 := mk("dead1."), mk("dead2.")
	msg := &dns.Message{}
	c.put(live1, msg, now.Add(time.Hour))
	c.put(live2, msg, now.Add(time.Hour))
	c.put(dead1, msg, now.Add(-time.Second))
	c.put(dead2, msg, now.Add(-time.Second))

	// The shard is at capacity; the next insert must reclaim the two
	// expired entries and keep both live ones.
	fresh := mk("fresh.")
	c.put(fresh, msg, now.Add(time.Hour))
	for _, k := range []cacheKey{live1, live2, fresh} {
		if _, ok := c.get(k, now); !ok {
			t.Errorf("live entry %q evicted while expired entries existed", k.name)
		}
	}
	for _, k := range []cacheKey{dead1, dead2} {
		if _, ok := c.shard(k).entries[k]; ok {
			t.Errorf("expired entry %q survived eviction", k.name)
		}
	}
}

// TestEvictSoonestExpiryWhenNoneExpired pins the fallback: with no
// expired entries, the entry closest to expiry goes first.
func TestEvictSoonestExpiryWhenNoneExpired(t *testing.T) {
	c := newShardedCache(3)
	now := time.Now()
	msg := &dns.Message{}
	near := cacheKey{name: "near.", typ: dns.TypeA}
	c.put(cacheKey{name: "far1.", typ: dns.TypeA}, msg, now.Add(time.Hour))
	c.put(near, msg, now.Add(time.Minute))
	c.put(cacheKey{name: "far2.", typ: dns.TypeA}, msg, now.Add(time.Hour))

	c.put(cacheKey{name: "new.", typ: dns.TypeA}, msg, now.Add(time.Hour))
	if _, ok := c.get(near, now); ok {
		t.Error("soonest-expiring entry survived a full-shard insert")
	}
	if c.len() != 3 {
		t.Errorf("cache holds %d entries, capacity 3", c.len())
	}
}

// TestShardCountScalesWithCapacity pins the shard-sizing rule: small
// caches stay unsharded so their bound is exact; the default splits
// into 16 shards.
func TestShardCountScalesWithCapacity(t *testing.T) {
	cases := []struct{ max, shards int }{
		{1, 1}, {10, 1}, {63, 1}, {64, 2}, {128, 4}, {4096, 16}, {1 << 20, 16},
	}
	for _, c := range cases {
		if got := len(newShardedCache(c.max).shards); got != c.shards {
			t.Errorf("newShardedCache(%d): %d shards, want %d", c.max, got, c.shards)
		}
	}
}

// TestExchangeHitPathAllocFree pins the zero-allocation cache-hit
// path: a warm Exchange performs no heap allocations (metrics
// increments, shard selection, and the map probe are all alloc-free).
func TestExchangeHitPathAllocFree(t *testing.T) {
	h := newStaticHandler()
	h.add("hot.example.com", dns.TypeA, &dns.A{Addr: netip.MustParseAddr("192.0.2.9")})
	r := New(Config{Server: startServer(t, h)})
	ctx := context.Background()
	const name = "hot.example.com." // canonical: no normalization alloc
	if _, err := r.Exchange(ctx, name, dns.TypeA); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.Exchange(ctx, name, dns.TypeA); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache-hit Exchange: %v allocs/op, want 0", allocs)
	}
}

// TestNegativeCaching verifies empty results are cached under the
// negative TTL and that a negative NegativeTTL disables the behaviour.
func TestNegativeCaching(t *testing.T) {
	h := newStaticHandler()
	r := New(Config{Server: startServer(t, h), NegativeTTL: time.Minute})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if txts, err := r.LookupTXT(ctx, "missing.example.com"); err != nil || len(txts) != 0 {
			t.Fatalf("lookup %d: %v, %v", i, txts, err)
		}
	}
	if got := h.queries("TXT missing.example.com."); got != 1 {
		t.Errorf("server saw %d queries, want 1 (negative-cached)", got)
	}

	r2 := New(Config{Server: startServer(t, h), NegativeTTL: -1})
	for i := 0; i < 3; i++ {
		if _, err := r2.LookupTXT(ctx, "missing.example.com"); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.queries("TXT missing.example.com."); got != 4 {
		t.Errorf("server saw %d queries, want 4 (negative caching disabled)", got)
	}
}
