package resolver

import (
	"sync"
	"time"

	"sendervalid/internal/dns"
)

// cacheKey identifies one cached response.
type cacheKey struct {
	name string
	typ  dns.Type
}

// cacheEntry is one cached response with its expiry.
type cacheEntry struct {
	msg     *dns.Message
	expires time.Time
}

// Shard sizing. A cache splits into the largest power-of-two shard
// count (up to maxShards) that still leaves each shard minShardFill
// entries of capacity, so small caches stay unsharded (and their
// configured entry bound stays exact) while the default 4096-entry
// cache spreads across 16 independently locked shards.
const (
	maxShards    = 16
	minShardFill = 32
)

// shardedCache is the resolver's response cache: entries spread across
// power-of-two shards by an FNV-1a hash of (owner name, query type),
// each shard guarded by its own RWMutex so concurrent cache hits — the
// bulk-validation hot path — take only a read lock on 1/Nth of the
// keyspace. Expired entries are not reaped on read (that would need
// the write lock); they are reclaimed expired-first when their shard
// hits capacity.
type shardedCache struct {
	shards []cacheShard
	mask   uint64
	// capacity bounds each shard; the whole cache therefore holds at
	// most len(shards)*capacity <= MaxCacheEntries entries.
	capacity int
}

type cacheShard struct {
	mu      sync.RWMutex
	entries map[cacheKey]cacheEntry
}

func newShardedCache(maxEntries int) *shardedCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	n := 1
	for n < maxShards && maxEntries/(n*2) >= minShardFill {
		n *= 2
	}
	c := &shardedCache{
		shards:   make([]cacheShard, n),
		mask:     uint64(n - 1),
		capacity: maxEntries / n,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]cacheEntry)
	}
	return c
}

// shard picks the shard for key: FNV-1a over the owner name bytes and
// the two type octets, masked to the power-of-two shard count.
func (c *shardedCache) shard(key cacheKey) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.name); i++ {
		h ^= uint64(key.name[i])
		h *= prime64
	}
	h ^= uint64(key.typ) & 0xFF
	h *= prime64
	h ^= uint64(key.typ) >> 8
	h *= prime64
	return &c.shards[h&c.mask]
}

// get returns the cached message for key if present and not expired.
// The hit path is allocation-free (pinned by TestExchangeHitPathAllocFree):
// a read lock, one map probe, and an expiry comparison outside the
// lock. Expired entries are reported as misses but left in place for
// capacity-time eviction.
func (c *shardedCache) get(key cacheKey, now time.Time) (*dns.Message, bool) {
	s := c.shard(key)
	s.mu.RLock()
	e, ok := s.entries[key]
	s.mu.RUnlock()
	if !ok || now.After(e.expires) {
		return nil, false
	}
	return e.msg, true
}

// put stores msg under key, evicting within the shard if it is full.
func (c *shardedCache) put(key cacheKey, msg *dns.Message, expires time.Time) {
	s := c.shard(key)
	s.mu.Lock()
	if _, ok := s.entries[key]; !ok && len(s.entries) >= c.capacity {
		s.evictLocked(time.Now(), c.capacity)
	}
	s.entries[key] = cacheEntry{msg: msg, expires: expires}
	s.mu.Unlock()
}

// evictLocked frees room in shard s: expired entries go first, and
// only if none were expired do live entries get dropped, closest to
// expiry first — the entries whose loss costs the fewest future hits.
func (s *cacheShard) evictLocked(now time.Time, capacity int) {
	for k, e := range s.entries {
		if now.After(e.expires) {
			delete(s.entries, k)
		}
	}
	for len(s.entries) >= capacity {
		var victim cacheKey
		var soonest time.Time
		found := false
		for k, e := range s.entries {
			if !found || e.expires.Before(soonest) {
				victim, soonest, found = k, e.expires, true
			}
		}
		if !found {
			return
		}
		delete(s.entries, victim)
	}
}

// len returns the total entry count, stale entries included.
func (c *shardedCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// shardLen returns shard i's entry count, stale entries included.
func (c *shardedCache) shardLen(i int) int {
	c.shards[i].mu.RLock()
	defer c.shards[i].mu.RUnlock()
	return len(c.shards[i].entries)
}

// flush drops every entry.
func (c *shardedCache) flush() {
	for i := range c.shards {
		c.shards[i].mu.Lock()
		c.shards[i].entries = make(map[cacheKey]cacheEntry)
		c.shards[i].mu.Unlock()
	}
}
