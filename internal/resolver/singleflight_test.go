package resolver

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/leaktest"
)

// slowHandler answers like staticHandler after a fixed delay, so
// concurrent queries genuinely overlap in flight.
type slowHandler struct {
	*staticHandler
	delay time.Duration
}

func (h *slowHandler) ServeDNS(w dns.ResponseWriter, r *dns.Request) {
	time.Sleep(h.delay)
	h.staticHandler.ServeDNS(w, r)
}

// TestSingleflightDedup proves the dedup contract the bulk pipeline
// relies on: N concurrent identical lookups produce exactly one wire
// exchange.
func TestSingleflightDedup(t *testing.T) {
	// Registered before startServer so (LIFO cleanup order) the check
	// runs after the server's own shutdown cleanup.
	t.Cleanup(leaktest.Check(t))
	h := &slowHandler{staticHandler: newStaticHandler(), delay: 100 * time.Millisecond}
	h.add("dedup.example.com", dns.TypeTXT, &dns.TXT{Strings: []string{"v=spf1 -all"}})
	r := New(Config{Server: startServer(t, h)})
	ctx := context.Background()

	const callers = 20
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			txts, err := r.LookupTXT(ctx, "dedup.example.com")
			if err == nil && len(txts) != 1 {
				err = errors.New("wrong answer count")
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := h.queries("TXT dedup.example.com."); got != 1 {
		t.Errorf("%d concurrent lookups produced %d wire exchanges, want exactly 1", callers, got)
	}
	if shared := r.metrics.sfShared.Value(); shared != callers-1 {
		t.Errorf("shared counter = %d, want %d", shared, callers-1)
	}
	if leaders := r.metrics.sfLeader.Value(); leaders != 1 {
		t.Errorf("leader counter = %d, want 1", leaders)
	}
}

// TestSingleflightWaiterCancellation pins the cancellation semantics:
// a waiter whose context is cancelled returns promptly (well before
// the exchange completes), while the leader's exchange keeps running
// under the flight-owned context, completes, and populates the cache
// for later callers. Leak-checked: neither the abandoned waiter nor
// the finished leader may leave goroutines behind.
func TestSingleflightWaiterCancellation(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	h := &slowHandler{staticHandler: newStaticHandler(), delay: 400 * time.Millisecond}
	h.add("cancel.example.com", dns.TypeTXT, &dns.TXT{Strings: []string{"v=spf1 -all"}})
	r := New(Config{Server: startServer(t, h)})

	// Leader starts the exchange.
	leaderDone := make(chan error, 1)
	go func() {
		_, err := r.LookupTXT(context.Background(), "cancel.example.com")
		leaderDone <- err
	}()
	// Give the leader time to join first, then add a waiter with a
	// cancellable context.
	time.Sleep(50 * time.Millisecond)
	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := r.LookupTXT(wctx, "cancel.example.com")
		waiterDone <- err
	}()
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	wcancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
		}
		if waited := time.Since(start); waited > 200*time.Millisecond {
			t.Errorf("waiter took %v to observe cancellation", waited)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}

	// The leader is unaffected and completes the exchange.
	select {
	case err := <-leaderDone:
		if err != nil {
			t.Fatalf("leader failed after waiter cancellation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader never completed")
	}

	// The completed exchange populated the cache: a later caller is
	// served without another wire exchange.
	if _, err := r.LookupTXT(context.Background(), "cancel.example.com"); err != nil {
		t.Fatal(err)
	}
	if got := h.queries("TXT cancel.example.com."); got != 1 {
		t.Errorf("server saw %d queries, want 1 (cache populated by leader)", got)
	}
}

// TestSingleflightOrphanedFlightStops verifies the flight context: if
// every caller abandons an in-flight exchange, the flight context is
// cancelled so the retry loop stops rather than running to exhaustion.
func TestSingleflightOrphanedFlightStops(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	h := &slowHandler{staticHandler: newStaticHandler(), delay: 300 * time.Millisecond}
	h.add("orphan.example.com", dns.TypeTXT, &dns.TXT{Strings: []string{"v=spf1 -all"}})
	r := New(Config{Server: startServer(t, h)})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.LookupTXT(ctx, "orphan.example.com")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("abandoned caller returned %v, want context.Canceled", err)
	}
	// The orphaned flight must retire itself; a fresh call afterwards
	// starts a new flight and succeeds.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r.flight.mu.Lock()
		inflight := len(r.flight.calls)
		r.flight.mu.Unlock()
		if inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d flights still registered after abandonment", inflight)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := r.LookupTXT(context.Background(), "orphan.example.com"); err != nil {
		t.Fatalf("fresh lookup after orphaned flight: %v", err)
	}
}

// flakyHandler refuses every query while the flag is set, then serves
// the embedded static records once cleared. The flag is atomic so the
// test can flip it while the server is live.
type flakyHandler struct {
	*staticHandler
	refusing atomic.Bool
}

func (h *flakyHandler) ServeDNS(w dns.ResponseWriter, r *dns.Request) {
	if h.refusing.Load() {
		resp := new(dns.Message).SetReply(r.Msg)
		resp.RCode = dns.RCodeRefused
		_ = w.WriteMsg(resp)
		return
	}
	h.staticHandler.ServeDNS(w, r)
}

// TestLeaderErrorNotCached pins that a failed exchange is shared with
// the waiters already joined but never cached: the next caller retries
// the wire and can succeed.
func TestLeaderErrorNotCached(t *testing.T) {
	h := &flakyHandler{staticHandler: newStaticHandler()}
	h.add("flaky.example.com", dns.TypeTXT, &dns.TXT{Strings: []string{"v=spf1 -all"}})
	h.refusing.Store(true)
	r := New(Config{Server: startServer(t, h)})
	ctx := context.Background()
	if _, err := r.LookupTXT(ctx, "flaky.example.com"); err == nil {
		t.Fatal("expected REFUSED error")
	}
	// The server recovers; the error must not have been cached.
	h.refusing.Store(false)
	txts, err := r.LookupTXT(ctx, "flaky.example.com")
	if err != nil || len(txts) != 1 {
		t.Fatalf("recovered lookup = %v, %v (leader error was cached?)", txts, err)
	}
}

// TestDisableCacheBypassesSingleflight pins the ablation contract:
// with the cache disabled every lookup hits the wire, even perfectly
// concurrent identical ones.
func TestDisableCacheBypassesSingleflight(t *testing.T) {
	h := &slowHandler{staticHandler: newStaticHandler(), delay: 50 * time.Millisecond}
	h.add("raw.example.com", dns.TypeA, &dns.A{Addr: netip.MustParseAddr("192.0.2.9")})
	r := New(Config{Server: startServer(t, h), DisableCache: true})
	ctx := context.Background()
	var wg sync.WaitGroup
	var failed atomic.Int32
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.LookupA(ctx, "raw.example.com"); err != nil {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatal("lookups failed")
	}
	if got := h.queries("A raw.example.com."); got != 4 {
		t.Errorf("server saw %d queries, want 4 (no dedup with cache disabled)", got)
	}
}

// TestWireWaitAttributionSplit pins the latency-attribution regression
// the split histograms exist for: N concurrent identical lookups are
// one wire exchange, so resolver_wire_seconds must record exactly one
// observation (the leader's) and resolver_wait_seconds one per waiter.
// The pre-split behaviour — every deduplicated caller logging the full
// wire latency into one shared histogram — inflated the apparent wire
// time N-fold under load.
func TestWireWaitAttributionSplit(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	h := &slowHandler{staticHandler: newStaticHandler(), delay: 100 * time.Millisecond}
	h.add("split.example.com", dns.TypeTXT, &dns.TXT{Strings: []string{"v=spf1 -all"}})
	r := New(Config{Server: startServer(t, h)})
	ctx := context.Background()

	const callers = 12
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.LookupTXT(ctx, "split.example.com"); err != nil {
				t.Errorf("lookup: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := r.metrics.wireSeconds.Count(); got != 1 {
		t.Errorf("wire_seconds observations = %d, want 1 (leader only)", got)
	}
	if got := r.metrics.waitSeconds.Count(); got != callers-1 {
		t.Errorf("wait_seconds observations = %d, want %d (one per waiter)", got, callers-1)
	}
	// The exchange ran behind a 100ms-slow server; both the single wire
	// observation and the waiters' blocked time must reflect that.
	if sum := r.metrics.wireSeconds.Sum(); sum < 0.05 {
		t.Errorf("wire_seconds sum = %v, want >= 0.05 (one real exchange)", sum)
	}
	if sum := r.metrics.waitSeconds.Sum(); sum < 0.05 {
		t.Errorf("wait_seconds sum = %v, want blocked waiters to have waited", sum)
	}

	// A cache hit is neither a wire exchange nor a wait.
	if _, err := r.LookupTXT(ctx, "split.example.com"); err != nil {
		t.Fatal(err)
	}
	if got := r.metrics.wireSeconds.Count(); got != 1 {
		t.Errorf("cache hit bumped wire_seconds to %d", got)
	}
	if got := r.metrics.waitSeconds.Count(); got != callers-1 {
		t.Errorf("cache hit bumped wait_seconds to %d", got)
	}
}

// TestWireAttributionDisableCache pins the no-cache ablation: without
// singleflight every caller performs (and is attributed) its own wire
// exchange, and nobody waits.
func TestWireAttributionDisableCache(t *testing.T) {
	h := &slowHandler{staticHandler: newStaticHandler(), delay: 20 * time.Millisecond}
	h.add("rawsplit.example.com", dns.TypeTXT, &dns.TXT{Strings: []string{"v=spf1 -all"}})
	r := New(Config{Server: startServer(t, h), DisableCache: true})
	ctx := context.Background()
	const callers = 3
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.LookupTXT(ctx, "rawsplit.example.com"); err != nil {
				t.Errorf("lookup: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := r.metrics.wireSeconds.Count(); got != callers {
		t.Errorf("wire_seconds observations = %d, want %d (no dedup)", got, callers)
	}
	if got := r.metrics.waitSeconds.Count(); got != 0 {
		t.Errorf("wait_seconds observations = %d, want 0", got)
	}
}
