package resolver

import (
	"context"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// staticHandler answers from fixed record sets and counts queries.
type staticHandler struct {
	mu      sync.Mutex
	records map[string][]dns.RR // key: "TYPE name"
	refuse  map[string]bool
	count   map[string]int
}

func newStaticHandler() *staticHandler {
	return &staticHandler{
		records: make(map[string][]dns.RR),
		refuse:  make(map[string]bool),
		count:   make(map[string]int),
	}
}

func (h *staticHandler) queries(key string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count[key]
}

func (h *staticHandler) add(name string, t dns.Type, data dns.RData) {
	key := t.String() + " " + dns.CanonicalName(name)
	h.records[key] = append(h.records[key], dns.RR{
		Name: dns.CanonicalName(name), Type: t, Class: dns.ClassINET, TTL: 300, Data: data,
	})
}

func (h *staticHandler) ServeDNS(w dns.ResponseWriter, r *dns.Request) {
	q := r.Msg.Question()
	key := q.Type.String() + " " + dns.CanonicalName(q.Name)
	h.mu.Lock()
	h.count[key]++
	h.mu.Unlock()
	resp := new(dns.Message).SetReply(r.Msg)
	resp.Authoritative = true
	if h.refuse[dns.CanonicalName(q.Name)] {
		resp.RCode = dns.RCodeRefused
	} else if rrs, ok := h.records[key]; ok {
		resp.Answers = rrs
	} else {
		resp.RCode = dns.RCodeNameError
	}
	_ = w.WriteMsg(resp)
}

func startServer(t testing.TB, h dns.Handler) string {
	t.Helper()
	srv := &dns.Server{Addr: "127.0.0.1:0", Handler: h}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return addr.String()
}

func TestLookupTXT(t *testing.T) {
	h := newStaticHandler()
	h.add("example.com", dns.TypeTXT, &dns.TXT{Strings: []string{"v=spf1 ", "-all"}})
	h.add("example.com", dns.TypeTXT, &dns.TXT{Strings: []string{"other record"}})
	r := New(Config{Server: startServer(t, h)})
	txts, err := r.LookupTXT(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(txts) != 2 || txts[0] != "v=spf1 -all" || txts[1] != "other record" {
		t.Errorf("LookupTXT = %v", txts)
	}
}

func TestLookupAddressesAndMX(t *testing.T) {
	h := newStaticHandler()
	h.add("mail.example.com", dns.TypeA, &dns.A{Addr: netip.MustParseAddr("192.0.2.9")})
	h.add("mail.example.com", dns.TypeAAAA, &dns.AAAA{Addr: netip.MustParseAddr("2001:db8::9")})
	h.add("example.com", dns.TypeMX, &dns.MX{Preference: 5, Host: "mail.example.com."})
	r := New(Config{Server: startServer(t, h)})
	ctx := context.Background()

	a, err := r.LookupA(ctx, "mail.example.com")
	if err != nil || len(a) != 1 || a[0].String() != "192.0.2.9" {
		t.Errorf("LookupA = %v, %v", a, err)
	}
	aaaa, err := r.LookupAAAA(ctx, "mail.example.com")
	if err != nil || len(aaaa) != 1 || aaaa[0].String() != "2001:db8::9" {
		t.Errorf("LookupAAAA = %v, %v", aaaa, err)
	}
	mx, err := r.LookupMX(ctx, "example.com")
	if err != nil || len(mx) != 1 || mx[0].Host != "mail.example.com." || mx[0].Preference != 5 {
		t.Errorf("LookupMX = %v, %v", mx, err)
	}
}

func TestLookupEmptyIsVoidNotError(t *testing.T) {
	h := newStaticHandler()
	r := New(Config{Server: startServer(t, h)})
	txts, err := r.LookupTXT(context.Background(), "missing.example.com")
	if err != nil {
		t.Errorf("NXDOMAIN should not be an error: %v", err)
	}
	if len(txts) != 0 {
		t.Errorf("NXDOMAIN yielded records: %v", txts)
	}
}

func TestLookupPTR(t *testing.T) {
	h := newStaticHandler()
	h.add("1.2.0.192.in-addr.arpa", dns.TypePTR, &dns.PTR{Target: "mail.example.com."})
	r := New(Config{Server: startServer(t, h)})
	names, err := r.LookupPTR(context.Background(), netip.MustParseAddr("192.0.2.1"))
	if err != nil || len(names) != 1 || names[0] != "mail.example.com." {
		t.Errorf("LookupPTR = %v, %v", names, err)
	}
}

func TestReverseName(t *testing.T) {
	if got := ReverseName(netip.MustParseAddr("192.0.2.1")); got != "1.2.0.192.in-addr.arpa." {
		t.Errorf("v4 reverse: %q", got)
	}
	got := ReverseName(netip.MustParseAddr("2001:db8::1"))
	want := "1.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2.ip6.arpa."
	if got != want {
		t.Errorf("v6 reverse:\n got %q\nwant %q", got, want)
	}
	if got := ReverseName(netip.MustParseAddr("::ffff:192.0.2.1")); got != "1.2.0.192.in-addr.arpa." {
		t.Errorf("v4-mapped reverse: %q", got)
	}
}

func TestCNAMEChasing(t *testing.T) {
	h := newStaticHandler()
	// The TXT answer section contains a CNAME plus the target's record.
	key := "TXT alias.example.com."
	h.records[key] = []dns.RR{
		{Name: "alias.example.com.", Type: dns.TypeCNAME, Class: dns.ClassINET, TTL: 300,
			Data: &dns.CNAME{Target: "real.example.com."}},
		{Name: "real.example.com.", Type: dns.TypeTXT, Class: dns.ClassINET, TTL: 300,
			Data: &dns.TXT{Strings: []string{"v=spf1 -all"}}},
	}
	r := New(Config{Server: startServer(t, h)})
	txts, err := r.LookupTXT(context.Background(), "alias.example.com")
	if err != nil || len(txts) != 1 || txts[0] != "v=spf1 -all" {
		t.Errorf("CNAME chase = %v, %v", txts, err)
	}
}

func TestCaching(t *testing.T) {
	h := newStaticHandler()
	h.add("cached.example.com", dns.TypeA, &dns.A{Addr: netip.MustParseAddr("192.0.2.9")})
	r := New(Config{Server: startServer(t, h)})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := r.LookupA(ctx, "cached.example.com"); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.queries("A cached.example.com."); got != 1 {
		t.Errorf("server saw %d queries, want 1 (cached)", got)
	}
	if r.CacheLen() != 1 {
		t.Errorf("cache has %d entries", r.CacheLen())
	}
	r.FlushCache()
	if _, err := r.LookupA(ctx, "cached.example.com"); err != nil {
		t.Fatal(err)
	}
	if got := h.queries("A cached.example.com."); got != 2 {
		t.Errorf("flush did not clear cache: %d queries", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	h := newStaticHandler()
	h.add("x.example.com", dns.TypeA, &dns.A{Addr: netip.MustParseAddr("192.0.2.9")})
	r := New(Config{Server: startServer(t, h), DisableCache: true})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := r.LookupA(ctx, "x.example.com"); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.queries("A x.example.com."); got != 3 {
		t.Errorf("server saw %d queries, want 3 (uncached)", got)
	}
}

func TestServerErrorIsError(t *testing.T) {
	h := newStaticHandler()
	h.refuse["refused.example.com."] = true
	r := New(Config{Server: startServer(t, h)})
	_, err := r.LookupTXT(context.Background(), "refused.example.com")
	if err == nil {
		t.Fatal("REFUSED should be an error")
	}
	se, ok := err.(*ServerError)
	if !ok || se.RCode != dns.RCodeRefused {
		t.Errorf("error %v", err)
	}
	if !strings.Contains(se.Error(), "REFUSED") {
		t.Errorf("error text %q", se.Error())
	}
}

func TestTransportPolicySelection(t *testing.T) {
	addr4 := "127.0.0.1:53"
	addr6 := "[::1]:53"
	cases := []struct {
		cfg     Config
		want    string
		wantErr bool
	}{
		{Config{Server: addr4, Transport: DualStack}, addr4, false},
		{Config{Server: addr4, Server6: addr6, Transport: IPv6Only}, addr6, false},
		{Config{Server: addr4, Transport: IPv6Only}, "", true},
		{Config{Server6: addr6, Transport: IPv4Only}, "", true},
		{Config{Server: addr6, Transport: IPv4Only}, "", true}, // v6 literal in Server
		{Config{Server: addr6, Transport: DualStack}, addr6, false},
		{Config{Transport: DualStack}, "", true},
	}
	for i, c := range cases {
		r := New(c.cfg)
		got, err := r.server()
		if c.wantErr != (err != nil) {
			t.Errorf("case %d: err=%v, wantErr=%v", i, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("case %d: server %q, want %q", i, got, c.want)
		}
	}
}

func TestIPv6OnlyNameRetry(t *testing.T) {
	// The v4 endpoint refuses; a dual-stack resolver retries the v6
	// endpoint and succeeds. An IPv4-only resolver fails.
	h4 := newStaticHandler()
	h4.refuse["v6only.example.com."] = true
	h6 := newStaticHandler()
	h6.add("v6only.example.com", dns.TypeTXT, &dns.TXT{Strings: []string{"v=spf1 -all"}})

	addr4 := startServer(t, h4)
	srv6 := &dns.Server{Addr: "[::1]:0", Handler: h6}
	a6, err := srv6.Start()
	if err != nil {
		t.Skipf("IPv6 loopback unavailable: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv6.Shutdown(ctx)
	})

	dual := New(Config{Server: addr4, Server6: a6.String(), Transport: DualStack})
	txts, err := dual.LookupTXT(context.Background(), "v6only.example.com")
	if err != nil || len(txts) != 1 {
		t.Errorf("dual-stack retry: %v, %v", txts, err)
	}

	v4only := New(Config{Server: addr4, Server6: a6.String(), Transport: IPv4Only})
	if _, err := v4only.LookupTXT(context.Background(), "v6only.example.com"); err == nil {
		t.Error("IPv4-only resolver retrieved a v6-only name")
	}
}

func TestMinTTL(t *testing.T) {
	msg := &dns.Message{Answers: []dns.RR{
		{TTL: 300}, {TTL: 60}, {TTL: 3600},
	}}
	if got := minTTL(msg); got != 60*time.Second {
		t.Errorf("minTTL = %v", got)
	}
	if got := minTTL(&dns.Message{}); got != 30*time.Second {
		t.Errorf("negative TTL = %v", got)
	}
	if got := minTTL(&dns.Message{Answers: []dns.RR{{TTL: 0}}}); got != time.Second {
		t.Errorf("zero TTL clamp = %v", got)
	}
}

func TestCachePressureRelief(t *testing.T) {
	h := newStaticHandler()
	for i := 0; i < 20; i++ {
		h.add(name(i), dns.TypeA, &dns.A{Addr: netip.MustParseAddr("192.0.2.9")})
	}
	r := New(Config{Server: startServer(t, h), MaxCacheEntries: 10})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := r.LookupA(ctx, name(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.CacheLen() > 10 {
		t.Errorf("cache grew to %d entries, cap 10", r.CacheLen())
	}
}

func name(i int) string {
	return string(rune('a'+i%26)) + "x.example.com"
}
