package resolver

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// flakyUpstream is a real-socket DNS server that misbehaves on demand:
// it ignores the first ignoreN UDP queries, and its TCP endpoint cuts
// the first cutN connections mid-message (a short read for the
// client). After the misbehaviour budget is spent it answers properly.
type flakyUpstream struct {
	t        *testing.T
	pc       net.PacketConn
	ln       net.Listener
	ignoreN  int32 // UDP queries to ignore
	truncUDP bool  // answer UDP with TC=1 to force the TCP path
	cutN     int32 // TCP connections to cut after the length prefix
	udpSeen  atomic.Int32
	tcpSeen  atomic.Int32
}

func startFlakyUpstream(t *testing.T, ignoreN int32, truncUDP bool, cutN int32) *flakyUpstream {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", pc.LocalAddr().String())
	if err != nil {
		pc.Close()
		t.Fatal(err)
	}
	u := &flakyUpstream{t: t, pc: pc, ln: ln, ignoreN: ignoreN, truncUDP: truncUDP, cutN: cutN}
	go u.serveUDP()
	go u.serveTCP()
	t.Cleanup(func() {
		pc.Close()
		ln.Close()
	})
	return u
}

func (u *flakyUpstream) addr() string { return u.pc.LocalAddr().String() }

// answer builds a one-TXT reply to the packed query in buf.
func (u *flakyUpstream) answer(buf []byte, truncated bool) []byte {
	var q dns.Message
	if err := q.Unpack(buf); err != nil {
		return nil
	}
	resp := new(dns.Message).SetReply(&q)
	resp.Authoritative = true
	if truncated {
		resp.Truncated = true
	} else {
		resp.Answers = append(resp.Answers, dns.RR{
			Name: q.Question().Name, Type: dns.TypeTXT, Class: dns.ClassINET, TTL: 60,
			Data: &dns.TXT{Strings: []string{"v=spf1 -all"}},
		})
	}
	packed, err := resp.Pack()
	if err != nil {
		return nil
	}
	return packed
}

func (u *flakyUpstream) serveUDP() {
	buf := make([]byte, 4096)
	for {
		n, raddr, err := u.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		if u.udpSeen.Add(1) <= u.ignoreN {
			continue // swallowed: the client sees a timeout
		}
		if resp := u.answer(buf[:n], u.truncUDP); resp != nil {
			_, _ = u.pc.WriteTo(resp, raddr)
		}
	}
}

func (u *flakyUpstream) serveTCP() {
	for {
		conn, err := u.ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			payload, err := dns.ReadTCPMessage(c)
			if err != nil {
				return
			}
			if u.tcpSeen.Add(1) <= u.cutN {
				// Promise a full answer, deliver two bytes, vanish:
				// the client's framed read dies mid-message.
				_, _ = c.Write([]byte{0x00, 0x40, 0xde, 0xad})
				return
			}
			if resp := u.answer(payload, false); resp != nil {
				_ = dns.WriteTCPMessage(c, resp)
			}
		}(conn)
	}
}

// TestRetryConvergesAfterTimeouts verifies a query that times out
// against a live-but-mute upstream is re-sent and eventually answered,
// with every retry counted.
func TestRetryConvergesAfterTimeouts(t *testing.T) {
	u := startFlakyUpstream(t, 2, false, 0)
	r := New(Config{
		Server:       u.addr(),
		Timeout:      300 * time.Millisecond,
		MaxRetries:   3,
		DisableCache: true,
	})
	txts, err := r.LookupTXT(context.Background(), "retry.example")
	if err != nil {
		t.Fatalf("lookup against upstream that ignores 2 queries: %v", err)
	}
	if len(txts) != 1 || txts[0] != "v=spf1 -all" {
		t.Errorf("payload %v", txts)
	}
	if got := r.RetryCount(); got != 2 {
		t.Errorf("RetryCount() = %d, want 2", got)
	}
}

// TestRetryCapExhausted verifies the retry budget is honored: against
// a permanently mute upstream the lookup fails after exactly
// 1 + MaxRetries attempts.
func TestRetryCapExhausted(t *testing.T) {
	u := startFlakyUpstream(t, 1<<30, false, 0)
	r := New(Config{
		Server:       u.addr(),
		Timeout:      150 * time.Millisecond,
		MaxRetries:   2,
		DisableCache: true,
	})
	_, err := r.LookupTXT(context.Background(), "dead.example")
	if err == nil {
		t.Fatal("lookup against mute upstream succeeded")
	}
	if got := r.RetryCount(); got != 2 {
		t.Errorf("RetryCount() = %d, want 2", got)
	}
	if got := u.udpSeen.Load(); got != 3 {
		t.Errorf("upstream saw %d queries, want 3 (1 + 2 retries)", got)
	}
}

// TestRetriesDisabled verifies MaxRetries < 0 surfaces the first
// transport fault immediately.
func TestRetriesDisabled(t *testing.T) {
	u := startFlakyUpstream(t, 1<<30, false, 0)
	r := New(Config{
		Server:       u.addr(),
		Timeout:      150 * time.Millisecond,
		MaxRetries:   -1,
		DisableCache: true,
	})
	if _, err := r.LookupTXT(context.Background(), "once.example"); err == nil {
		t.Fatal("lookup succeeded against mute upstream")
	}
	if got := u.udpSeen.Load(); got != 1 {
		t.Errorf("upstream saw %d queries with retries disabled, want 1", got)
	}
	if got := r.RetryCount(); got != 0 {
		t.Errorf("RetryCount() = %d, want 0", got)
	}
}

// TestRetryOnShortTCPRead drives the truncation→TCP path against an
// upstream whose TCP endpoint dies mid-message on the first
// connection: the short read must be retried, not surfaced.
func TestRetryOnShortTCPRead(t *testing.T) {
	u := startFlakyUpstream(t, 0, true, 1)
	r := New(Config{
		Server:       u.addr(),
		Timeout:      time.Second,
		MaxRetries:   2,
		DisableCache: true,
	})
	txts, err := r.LookupTXT(context.Background(), "tcp-cut.example")
	if err != nil {
		t.Fatalf("lookup across mid-message TCP cut: %v", err)
	}
	if len(txts) != 1 || txts[0] != "v=spf1 -all" {
		t.Errorf("payload %v", txts)
	}
	if got := r.RetryCount(); got != 1 {
		t.Errorf("RetryCount() = %d, want 1", got)
	}
	if got := u.tcpSeen.Load(); got != 2 {
		t.Errorf("upstream saw %d TCP connections, want 2", got)
	}
}

// TestRetryNotTriggeredByServerFailure verifies RCODE failures are
// terminal for the exchange: SERVFAIL is the server's answer, not a
// transport fault, and re-asking will not change it.
func TestRetryNotTriggeredByServerFailure(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	var queries atomic.Int32
	go func() {
		buf := make([]byte, 4096)
		for {
			n, raddr, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			queries.Add(1)
			var q dns.Message
			if err := q.Unpack(buf[:n]); err != nil {
				continue
			}
			resp := new(dns.Message).SetReply(&q)
			resp.RCode = dns.RCodeServerFailure
			packed, _ := resp.Pack()
			_, _ = pc.WriteTo(packed, raddr)
		}
	}()

	r := New(Config{
		Server:       pc.LocalAddr().String(),
		Timeout:      time.Second,
		MaxRetries:   3,
		DisableCache: true,
	})
	_, err = r.LookupTXT(context.Background(), "servfail.example")
	if err == nil {
		t.Fatal("SERVFAIL lookup succeeded")
	}
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ServerError", err)
	}
	if got := queries.Load(); got != 1 {
		t.Errorf("upstream saw %d queries for SERVFAIL, want 1 (no retries)", got)
	}
	if got := r.RetryCount(); got != 0 {
		t.Errorf("RetryCount() = %d, want 0", got)
	}
}
