package resolver

import (
	"context"
	"sync"

	"sendervalid/internal/dns"
)

// flightGroup deduplicates concurrent identical queries: the first
// caller for a key becomes the leader and performs the wire exchange;
// callers arriving while it is in flight join as waiters and share the
// outcome, so N concurrent evaluations of the same include-heavy
// record cost one exchange instead of N.
//
// The exchange runs under a flight-owned context (derived from
// context.Background, not from any caller): a waiter whose own context
// is cancelled leaves the flight without disturbing the leader's
// exchange, which completes and populates the cache for later callers.
// The flight context is cancelled only when every joined caller —
// leader included — has abandoned the call, so a fully orphaned
// exchange still cleans up promptly instead of running to its timeout.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

// flightCall is one in-flight wire exchange.
type flightCall struct {
	// done is closed by finish after msg and err are set.
	done chan struct{}
	msg  *dns.Message
	err  error

	// refs counts callers still waiting on the call. ctx is the
	// flight-owned exchange context, cancelled when refs drops to zero
	// before the exchange finishes.
	refs   int
	ctx    context.Context
	cancel context.CancelFunc
}

// join returns the call for key, creating it if none is in flight. The
// second return value reports whether the caller is the leader and
// must run the exchange.
func (g *flightGroup) join(key cacheKey) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[cacheKey]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.refs++
		return c, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &flightCall{done: make(chan struct{}), refs: 1, ctx: ctx, cancel: cancel}
	g.calls[key] = c
	return c, true
}

// leave abandons a call whose result the caller no longer wants (its
// own context was cancelled). The last departure cancels the flight
// context so an exchange nobody is waiting for stops retrying.
func (g *flightGroup) leave(c *flightCall) {
	g.mu.Lock()
	c.refs--
	orphaned := c.refs == 0
	g.mu.Unlock()
	if orphaned {
		c.cancel()
	}
}

// finish publishes the exchange outcome and retires the call. New
// callers for the same key start a fresh flight from here on — in
// particular a leader error is never replayed to them (errors are not
// cached; only the waiters already joined share the failure).
func (g *flightGroup) finish(key cacheKey, c *flightCall, msg *dns.Message, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.msg, c.err = msg, err
	close(c.done)
	c.cancel()
}
