package resolver

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// withProcs raises GOMAXPROCS to g for the duration of a sub-benchmark
// so goroutine counts above the host's core count still contend for
// the locks under test (a 1-core CI box would otherwise serialize the
// goroutines and never contest a mutex).
func withProcs(b *testing.B, g int) {
	b.Helper()
	if prev := runtime.GOMAXPROCS(0); g > prev {
		runtime.GOMAXPROCS(g)
		b.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

// benchNames returns n pre-warmable hostnames backed by a static
// handler serving an A record for each.
func benchNames(b *testing.B, n int) (*Resolver, []string) {
	b.Helper()
	h := newStaticHandler()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("w%03d.example.com.", i)
		h.add(names[i], dns.TypeA, &dns.A{Addr: netip.MustParseAddr("192.0.2.9")})
	}
	r := New(Config{Server: startServer(b, h)})
	ctx := context.Background()
	for _, name := range names {
		if _, err := r.Exchange(ctx, name, dns.TypeA); err != nil {
			b.Fatal(err)
		}
	}
	return r, names
}

// BenchmarkResolverParallel measures the warm-cache Exchange path under
// goroutine contention — the shape bulk SPF evaluation produces, where
// every worker's mechanism lookups funnel through one shared resolver.
// The sharded read-locked cache keeps the hit path contention-free;
// compare against BenchmarkResolverParallelGlobalMutex, the pre-shard
// design, at the same goroutine counts.
//
// The separation only shows on multicore hosts: with one hardware
// thread goroutines interleave at preemption granularity (~10ms), so
// a 60ns critical section is effectively never contested and both
// designs measure the uncontended lock cost.
func BenchmarkResolverParallel(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			withProcs(b, g)
			r, names := benchNames(b, 64)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					name := names[w%len(names)]
					for i := 0; i < b.N/g; i++ {
						if _, err := r.Exchange(ctx, name, dns.TypeA); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// globalMutexResolver replicates the pre-shard cache hot path: one
// mutex guarding a flat map, expiry checked (and expired entries
// reaped) inside the critical section. Kept as a benchmark-only
// baseline so the win from sharding stays measurable in-repo.
type globalMutexResolver struct {
	metrics resolverMetrics
	mu      sync.Mutex
	entries map[cacheKey]cacheEntry
}

func (r *globalMutexResolver) cacheGet(key cacheKey) (*dns.Message, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok {
		return nil, false
	}
	if time.Now().After(e.expires) {
		delete(r.entries, key)
		return nil, false
	}
	return e.msg, true
}

func (r *globalMutexResolver) exchange(name string, t dns.Type) (*dns.Message, bool) {
	name = dns.CanonicalName(name)
	r.metrics.queries.Inc()
	msg, ok := r.cacheGet(cacheKey{name: name, typ: t})
	if ok {
		r.metrics.cacheHits.Inc()
	}
	return msg, ok
}

// BenchmarkResolverParallelGlobalMutex is the pre-shard baseline for
// BenchmarkResolverParallel: identical warm-hit work funneled through
// a single mutex.
func BenchmarkResolverParallelGlobalMutex(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			withProcs(b, g)
			r := &globalMutexResolver{entries: make(map[cacheKey]cacheEntry)}
			names := make([]string, 64)
			expires := time.Now().Add(time.Hour)
			for i := range names {
				names[i] = fmt.Sprintf("w%03d.example.com.", i)
				r.entries[cacheKey{name: names[i], typ: dns.TypeA}] =
					cacheEntry{msg: &dns.Message{}, expires: expires}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					name := names[w%len(names)]
					for i := 0; i < b.N/g; i++ {
						if _, ok := r.exchange(name, dns.TypeA); !ok {
							b.Error("cache miss in warm benchmark")
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkSingleflightDedup measures a cold-cache stampede: per
// iteration the cache is flushed and 16 goroutines request the same
// name at once. The wire-queries/op metric shows how many exchanges
// actually reached the server (1.0 = perfect dedup).
func BenchmarkSingleflightDedup(b *testing.B) {
	h := newStaticHandler()
	h.add("stampede.example.com", dns.TypeA, &dns.A{Addr: netip.MustParseAddr("192.0.2.9")})
	r := New(Config{Server: startServer(b, h)})
	ctx := context.Background()
	const g = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.FlushCache()
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := r.Exchange(ctx, "stampede.example.com.", dns.TypeA); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(h.queries("A stampede.example.com."))/float64(b.N), "wire-queries/op")
}
