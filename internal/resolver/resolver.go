// Package resolver implements the stub DNS resolver used by simulated
// mail transfer agents. It speaks to a single upstream (recursive or
// authoritative) server over UDP with automatic TCP retry on
// truncation, supports IPv4-only, IPv6-only, and dual-stack transport
// policies, and keeps a positive/negative cache.
//
// The resolver satisfies the spf.Resolver contract: lookups that
// complete with no records (NXDOMAIN or an empty answer) return
// (nil, nil); transport and server failures return errors.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"strings"
	"syscall"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/spf"
	"sendervalid/internal/telemetry"
	"sendervalid/internal/trace"
)

// TransportPolicy selects the address families the resolver may use to
// reach its upstream server.
type TransportPolicy int

// Transport policies.
const (
	// DualStack tries the upstream over whichever family its address
	// uses; both IPv4 and IPv6 upstreams are usable.
	DualStack TransportPolicy = iota
	// IPv4Only refuses IPv6 upstream addresses. Resolvers behind such
	// a policy cannot retrieve policies served only on IPv6 — the
	// behaviour the paper's IPv6 test policy detects (§7.3).
	IPv4Only
	// IPv6Only refuses IPv4 upstream addresses.
	IPv6Only
)

// ServerError reports a non-success RCODE from the upstream server.
// NXDOMAIN is not a ServerError; it is an empty result.
type ServerError struct {
	Name  string
	RCode dns.RCode
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("resolver: %s for %s", e.RCode, e.Name)
}

// Config configures a Resolver.
type Config struct {
	// Server is the upstream address ("ip:port"). For a dual-homed
	// upstream, Server6 optionally carries the IPv6 endpoint.
	Server string
	// Server6 is the upstream's IPv6 endpoint, used under IPv6Only or
	// DualStack when set.
	Server6 string
	// Transport restricts address families.
	Transport TransportPolicy
	// Timeout bounds one exchange. Zero means 5 seconds.
	Timeout time.Duration
	// DisableTCP prevents the TCP retry after a truncated UDP
	// response. The paper found only 2 of 1336 resolvers with this
	// defect (§7.3).
	DisableTCP bool
	// DisableCache turns off response caching and, with it, in-flight
	// query deduplication: configurations that disable the cache (the
	// wire-behaviour ablations) want every lookup observable on the
	// wire.
	DisableCache bool
	// MaxCacheEntries bounds the cache. Zero means 4096.
	MaxCacheEntries int
	// NegativeTTL is the cache lifetime for results with no records
	// (NXDOMAIN or an empty answer). Zero means DefaultNegativeTTL;
	// negative disables negative caching.
	NegativeTTL time.Duration
	// MaxRetries is how many times a query is re-sent after a
	// transport failure — a timeout, a connection reset mid-message, a
	// truncated/short TCP read — before the error is surfaced. Server
	// failures (non-success RCODEs) are never retried. Zero means 2;
	// negative disables retries.
	MaxRetries int
	// Dialer, when set, overrides socket creation (used to route
	// queries through a simulated network fabric).
	Dialer dns.Dialer
}

// Resolver is a caching stub resolver bound to one upstream server.
// It is safe for concurrent use: the response cache is sharded with
// per-shard read/write locks, and concurrent identical queries are
// collapsed into one wire exchange by a singleflight group (see
// flightGroup), so bulk SPF evaluation scales with cores instead of
// serializing on one cache mutex.
type Resolver struct {
	cfg    Config
	client *dns.Client

	metrics resolverMetrics

	cache  *shardedCache
	flight flightGroup
}

// DefaultNegativeTTL is how long empty results (NXDOMAIN or no
// records) stay cached when Config.NegativeTTL is zero.
const DefaultNegativeTTL = 30 * time.Second

// New creates a Resolver from cfg.
func New(cfg Config) *Resolver {
	if cfg.MaxCacheEntries == 0 {
		cfg.MaxCacheEntries = 4096
	}
	r := &Resolver{
		cfg: cfg,
		client: &dns.Client{
			Timeout:            cfg.Timeout,
			Dialer:             cfg.Dialer,
			DisableTCPFallback: cfg.DisableTCP,
		},
		cache: newShardedCache(cfg.MaxCacheEntries),
	}
	r.metrics.wireSeconds = telemetry.NewHistogram(telemetry.LatencyBuckets)
	r.metrics.waitSeconds = telemetry.NewHistogram(telemetry.LatencyBuckets)
	return r
}

// server picks the upstream endpoint honouring the transport policy.
func (r *Resolver) server() (string, error) {
	v4, v6 := r.cfg.Server, r.cfg.Server6
	if v4 != "" && isV6HostPort(v4) {
		v4, v6 = "", v4
	}
	switch r.cfg.Transport {
	case IPv4Only:
		if v4 == "" {
			return "", fmt.Errorf("resolver: upstream reachable only over IPv6 under IPv4-only policy")
		}
		return v4, nil
	case IPv6Only:
		if v6 == "" {
			return "", fmt.Errorf("resolver: upstream reachable only over IPv4 under IPv6-only policy")
		}
		return v6, nil
	default:
		if v4 != "" {
			return v4, nil
		}
		if v6 != "" {
			return v6, nil
		}
		return "", fmt.Errorf("resolver: no upstream server configured")
	}
}

// isV6HostPort reports whether hostport has a bracketed IPv6 host.
func isV6HostPort(hostport string) bool {
	return strings.HasPrefix(hostport, "[")
}

// Exchange resolves (name, t) against the upstream, consulting the
// cache first. Concurrent identical queries share one wire exchange
// (singleflight): the first caller leads, later callers wait for its
// result. A waiter whose context is cancelled returns promptly while
// the exchange itself keeps running under a flight-owned context and
// still populates the cache. Transport failures — timeouts, resets,
// short TCP reads from a dying connection — are retried up to
// MaxRetries times, so the faults a hostile network injects between
// the stub and its upstream do not surface as measurement noise;
// non-success RCODEs are surfaced immediately and never cached.
func (r *Resolver) Exchange(ctx context.Context, name string, t dns.Type) (*dns.Message, error) {
	name = dns.CanonicalName(name)
	key := cacheKey{name: name, typ: t}
	r.metrics.queries.Inc()
	ctx, sp := trace.Start(ctx, "resolver.exchange")
	if sp != nil {
		sp.SetAttr("dns.name", name)
		sp.SetAttr("dns.type", t.String())
	}
	if r.cfg.DisableCache {
		// No cache means no flight either: a deduplicated answer is a
		// momentary cache, and cache-disabled configurations exist to
		// make every lookup observable at the server.
		began := time.Now()
		msg, err := r.exchangeWithRetry(ctx, name, t)
		r.metrics.observeWire(time.Since(began).Seconds(), sp.ExemplarID())
		sp.SetError(err)
		sp.End()
		return msg, err
	}
	if msg, ok := r.cache.get(key, time.Now()); ok {
		r.metrics.cacheHits.Inc()
		sp.SetAttr("outcome", "cache")
		sp.End()
		return msg, nil
	}
	if err := ctx.Err(); err != nil {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	c, leader := r.flight.join(key)
	if leader {
		r.metrics.sfLeader.Inc()
		sp.SetAttr("singleflight", "leader")
		go r.lead(key, c, name, t, sp.Link())
	} else {
		r.metrics.sfShared.Inc()
		sp.SetAttr("singleflight", "waiter")
	}
	// Wire time is attributed once, by the leader goroutine, to
	// resolver_wire_seconds; a waiter records only how long it waited
	// on someone else's exchange, in resolver_wait_seconds. Summing
	// the two families therefore never double-counts an exchange.
	waitStart := time.Now()
	select {
	case <-c.done:
		if !leader {
			r.metrics.observeWait(time.Since(waitStart).Seconds(), sp.ExemplarID())
		}
		sp.SetError(c.err)
		sp.End()
		return c.msg, c.err
	case <-ctx.Done():
		r.flight.leave(c)
		if !leader {
			r.metrics.observeWait(time.Since(waitStart).Seconds(), sp.ExemplarID())
		}
		sp.SetError(ctx.Err())
		sp.End()
		return nil, ctx.Err()
	}
}

// lead performs a flight's wire exchange under the flight-owned
// context, caches a successful response, and publishes the outcome to
// every waiter. Leader errors are not cached: the next caller after
// finish starts a fresh flight. link carries the leading Exchange
// span's identity (a value snapshot — the span itself may already be
// recycled by the time this goroutine runs).
func (r *Resolver) lead(key cacheKey, c *flightCall, name string, t dns.Type, link trace.Link) {
	wsp := link.Start("resolver.wire")
	if wsp != nil {
		wsp.SetAttr("dns.name", name)
		wsp.SetAttr("dns.type", t.String())
	}
	began := time.Now()
	msg, err := r.exchangeWithRetry(c.ctx, name, t)
	r.metrics.observeWire(time.Since(began).Seconds(), wsp.ExemplarID())
	wsp.SetError(err)
	wsp.End()
	if err == nil {
		if ttl, ok := r.ttlFor(msg); ok {
			r.cache.put(key, msg, time.Now().Add(ttl))
		}
	}
	r.flight.finish(key, c, msg, err)
}

// exchangeWithRetry is the wire path: one exchange plus the
// transport-fault retry loop.
func (r *Resolver) exchangeWithRetry(ctx context.Context, name string, t dns.Type) (*dns.Message, error) {
	retries := r.cfg.MaxRetries
	switch {
	case retries == 0:
		retries = 2
	case retries < 0:
		retries = 0
	}
	var resp *dns.Message
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = r.exchangeOnce(ctx, name, t)
		if err == nil {
			break
		}
		if isTimeout(err) {
			r.metrics.timeouts.Inc()
		}
		if ctx.Err() != nil || attempt >= retries || !retryable(err) {
			return nil, err
		}
		r.metrics.retries.Inc()
	}
	switch resp.RCode {
	case dns.RCodeSuccess, dns.RCodeNameError:
	default:
		return nil, &ServerError{Name: name, RCode: resp.RCode}
	}
	return resp, nil
}

// ttlFor returns how long msg may be cached. Empty results use the
// negative-caching TTL; the false return means "do not cache".
func (r *Resolver) ttlFor(msg *dns.Message) (time.Duration, bool) {
	if len(msg.Answers) == 0 {
		switch ttl := r.cfg.NegativeTTL; {
		case ttl < 0:
			return 0, false
		case ttl > 0:
			return ttl, true
		}
		return DefaultNegativeTTL, true
	}
	return minTTL(msg), true
}

// exchangeOnce performs one full query round, including the IPv6
// endpoint fallback.
func (r *Resolver) exchangeOnce(ctx context.Context, name string, t dns.Type) (*dns.Message, error) {
	server, err := r.server()
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Query(ctx, server, name, t)
	if err != nil {
		return nil, err
	}
	if resp.RCode == dns.RCodeRefused && r.cfg.Server6 != "" &&
		server != r.cfg.Server6 && r.cfg.Transport != IPv4Only {
		// The name may be served only on the upstream's IPv6 endpoint
		// (the paper's IPv6 test policy publishes AAAA-only name
		// servers). A v6-capable resolver retries there; an IPv4-only
		// resolver cannot and fails.
		resp, err = r.client.Query(ctx, r.cfg.Server6, name, t)
		if err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// RetryCount returns the number of transport-level query retries the
// resolver has performed.
func (r *Resolver) RetryCount() uint64 { return r.metrics.retries.Value() }

// retryable classifies an exchange error as a transient transport
// fault worth re-sending the query for: deadline expiry, refused or
// reset connections, and short reads from a connection that died
// mid-message (io.EOF / io.ErrUnexpectedEOF out of the TCP framing
// layer). Everything else — packing errors, configuration errors —
// is surfaced immediately.
func retryable(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr) && netErr.Timeout()
}

// CacheLen returns the number of cached responses, including expired
// entries not yet reclaimed by capacity-time eviction.
func (r *Resolver) CacheLen() int { return r.cache.len() }

// CacheShards returns the number of cache shards.
func (r *Resolver) CacheShards() int { return len(r.cache.shards) }

// FlushCache drops all cached responses.
func (r *Resolver) FlushCache() { r.cache.flush() }

// minTTL returns the smallest answer TTL, clamped to [1s, 1h]; empty
// (negative) answers are cached briefly.
func minTTL(msg *dns.Message) time.Duration {
	if len(msg.Answers) == 0 {
		return 30 * time.Second
	}
	min := uint32(3600)
	for _, rr := range msg.Answers {
		if rr.TTL < min {
			min = rr.TTL
		}
	}
	if min == 0 {
		min = 1
	}
	return time.Duration(min) * time.Second
}

// answers returns the answer records of the given type whose owner
// matches name, following CNAME chains within the response.
func answers(msg *dns.Message, name string, t dns.Type) []dns.RR {
	name = dns.CanonicalName(name)
	// Follow in-response CNAMEs (bounded by the answer count).
	for range msg.Answers {
		redirected := false
		for _, rr := range msg.Answers {
			if rr.Type == dns.TypeCNAME && dns.EqualNames(rr.Name, name) {
				name = dns.CanonicalName(rr.Data.(*dns.CNAME).Target)
				redirected = true
				break
			}
		}
		if !redirected {
			break
		}
	}
	var out []dns.RR
	for _, rr := range msg.Answers {
		if rr.Type == t && dns.EqualNames(rr.Name, name) {
			out = append(out, rr)
		}
	}
	return out
}

// LookupTXT implements spf.Resolver.
func (r *Resolver) LookupTXT(ctx context.Context, name string) ([]string, error) {
	msg, err := r.Exchange(ctx, name, dns.TypeTXT)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range answers(msg, name, dns.TypeTXT) {
		out = append(out, rr.Data.(*dns.TXT).Joined())
	}
	return out, nil
}

// LookupA implements spf.Resolver.
func (r *Resolver) LookupA(ctx context.Context, name string) ([]netip.Addr, error) {
	msg, err := r.Exchange(ctx, name, dns.TypeA)
	if err != nil {
		return nil, err
	}
	var out []netip.Addr
	for _, rr := range answers(msg, name, dns.TypeA) {
		out = append(out, rr.Data.(*dns.A).Addr)
	}
	return out, nil
}

// LookupAAAA implements spf.Resolver.
func (r *Resolver) LookupAAAA(ctx context.Context, name string) ([]netip.Addr, error) {
	msg, err := r.Exchange(ctx, name, dns.TypeAAAA)
	if err != nil {
		return nil, err
	}
	var out []netip.Addr
	for _, rr := range answers(msg, name, dns.TypeAAAA) {
		out = append(out, rr.Data.(*dns.AAAA).Addr)
	}
	return out, nil
}

// LookupMX implements spf.Resolver.
func (r *Resolver) LookupMX(ctx context.Context, name string) ([]spf.MXRecord, error) {
	msg, err := r.Exchange(ctx, name, dns.TypeMX)
	if err != nil {
		return nil, err
	}
	var out []spf.MXRecord
	for _, rr := range answers(msg, name, dns.TypeMX) {
		mx := rr.Data.(*dns.MX)
		out = append(out, spf.MXRecord{Preference: mx.Preference, Host: mx.Host})
	}
	return out, nil
}

// LookupPTR implements spf.Resolver.
func (r *Resolver) LookupPTR(ctx context.Context, ip netip.Addr) ([]string, error) {
	msg, err := r.Exchange(ctx, ReverseName(ip), dns.TypePTR)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, rr := range answers(msg, ReverseName(ip), dns.TypePTR) {
		out = append(out, rr.Data.(*dns.PTR).Target)
	}
	return out, nil
}

// ReverseName returns the in-addr.arpa or ip6.arpa name for ip.
func ReverseName(ip netip.Addr) string {
	if ip.Is4() || ip.Is4In6() {
		a4 := ip.Unmap().As4()
		return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa.", a4[3], a4[2], a4[1], a4[0])
	}
	raw := ip.As16()
	var sb strings.Builder
	for i := 15; i >= 0; i-- {
		fmt.Fprintf(&sb, "%x.%x.", raw[i]&0xF, raw[i]>>4)
	}
	sb.WriteString("ip6.arpa.")
	return sb.String()
}
