package resolver

import (
	"context"
	"errors"
	"net"
	"os"
	"strconv"

	"sendervalid/internal/telemetry"
)

// resolverMetrics are the stub resolver's always-on instruments,
// incremented unconditionally on the query path and published only
// when RegisterMetrics attaches them to a registry.
type resolverMetrics struct {
	queries   telemetry.Counter // Exchange calls (cache hits included)
	cacheHits telemetry.Counter
	retries   telemetry.Counter // transport-level retry attempts
	timeouts  telemetry.Counter // attempts that failed with a deadline/timeout
	sfLeader  telemetry.Counter // flights led (wire exchanges performed)
	sfShared  telemetry.Counter // Exchange calls that joined an in-flight query

	// wireSeconds times actual wire exchanges, observed exactly once
	// per exchange by whoever performs it (the flight leader, or the
	// caller itself with the cache disabled). waitSeconds times how
	// long singleflight waiters spent blocked on another caller's
	// exchange. Keeping the two apart stops N deduplicated callers
	// from being attributed N wire latencies (the pre-split behaviour
	// a shared histogram would produce).
	wireSeconds *telemetry.Histogram
	waitSeconds *telemetry.Histogram
}

// observeWire records one wire exchange's latency, tagging the
// containing bucket with the exchanging span's trace when sampled.
func (m *resolverMetrics) observeWire(secs float64, traceID string) {
	if m.wireSeconds != nil {
		m.wireSeconds.ObserveExemplar(secs, traceID)
	}
}

// observeWait records one waiter's time blocked on a flight.
func (m *resolverMetrics) observeWait(secs float64, traceID string) {
	if m.waitSeconds != nil {
		m.waitSeconds.ObserveExemplar(secs, traceID)
	}
}

// isTimeout reports whether an exchange attempt failed on a deadline:
// a net.Error timeout or a context deadline. These are the errors the
// retry loop exists for, so they get their own counter.
func isTimeout(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded)
}

// RegisterMetrics publishes the resolver's families under the
// resolver_ namespace with the given constant labels (an experiment
// running several resolvers would label per upstream).
func (r *Resolver) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.MustCounter("resolver_queries_total",
		"Exchange calls, including ones answered from cache.",
		&r.metrics.queries, labels...)
	reg.MustCounter("resolver_cache_hits_total",
		"Exchange calls answered from the in-process cache.",
		&r.metrics.cacheHits, labels...)
	reg.MustCounter("resolver_retries_total",
		"Transport-level query retries after a retryable failure.",
		&r.metrics.retries, labels...)
	reg.MustCounter("resolver_timeouts_total",
		"Exchange attempts that failed on a timeout or deadline.",
		&r.metrics.timeouts, labels...)
	reg.MustCounter("resolver_singleflight_leader_total",
		"Singleflight flights led: deduplicated wire exchanges performed.",
		&r.metrics.sfLeader, labels...)
	reg.MustCounter("resolver_singleflight_shared_total",
		"Exchange calls that joined another caller's in-flight query instead of hitting the wire.",
		&r.metrics.sfShared, labels...)
	reg.MustHistogram("resolver_wire_seconds",
		"Wire exchange latency, one observation per exchange (leaders only — waiters never re-attribute it).",
		r.metrics.wireSeconds, labels...)
	reg.MustHistogram("resolver_wait_seconds",
		"Time singleflight waiters spent blocked on another caller's exchange.",
		r.metrics.waitSeconds, labels...)
	reg.MustGaugeFunc("resolver_cache_entries",
		"Entries currently held in the resolver cache.",
		func() float64 { return float64(r.CacheLen()) }, labels...)
	for i := range r.cache.shards {
		shard := i
		reg.MustGaugeFunc("resolver_cache_shard_entries",
			"Entries currently held per cache shard (expired-but-unreaped included).",
			func() float64 { return float64(r.cache.shardLen(shard)) },
			append(append([]telemetry.Label(nil), labels...),
				telemetry.L("shard", strconv.Itoa(shard)))...)
	}
}
