package dmarc

import "strings"

// multiLabelSuffixes is an embedded subset of the public suffix list
// covering the multi-label registries that dominate real mail traffic
// (the full PSL is a build-time data dependency this offline module
// avoids; single-label TLDs need no table). Wildcard registries are
// approximated by their common second-level labels.
var multiLabelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true, "me.uk": true,
	"net.uk": true, "sch.uk": true, "ltd.uk": true, "plc.uk": true,
	"com.au": true, "net.au": true, "org.au": true, "edu.au": true, "gov.au": true,
	"com.br": true, "net.br": true, "org.br": true, "gov.br": true, "edu.br": true,
	"co.jp": true, "ne.jp": true, "or.jp": true, "ac.jp": true, "go.jp": true,
	"co.in": true, "net.in": true, "org.in": true, "ac.in": true, "gov.in": true,
	"co.nz": true, "net.nz": true, "org.nz": true, "govt.nz": true,
	"co.za": true, "org.za": true, "web.za": true, "gov.za": true,
	"com.cn": true, "net.cn": true, "org.cn": true, "gov.cn": true, "edu.cn": true,
	"com.tw": true, "org.tw": true, "edu.tw": true,
	"com.hk": true, "org.hk": true, "edu.hk": true,
	"com.sg": true, "org.sg": true, "edu.sg": true,
	"com.mx": true, "org.mx": true, "edu.mx": true, "gob.mx": true,
	"com.ar": true, "org.ar": true, "edu.ar": true, "gob.ar": true,
	"com.co": true, "org.co": true, "edu.co": true, "gov.co": true,
	"com.tr": true, "org.tr": true, "edu.tr": true, "gov.tr": true,
	"com.pl": true, "org.pl": true, "net.pl": true, "edu.pl": true, "gov.pl": true,
	"com.ru": true, "org.ru": true, "net.ru": true,
	"com.ua": true, "org.ua": true, "net.ua": true, "edu.ua": true, "gov.ua": true,
	"co.kr": true, "or.kr": true, "ac.kr": true, "go.kr": true,
	"com.my": true, "org.my": true, "edu.my": true, "gov.my": true,
	"co.id": true, "or.id": true, "ac.id": true, "go.id": true,
	"com.ph": true, "org.ph": true, "edu.ph": true, "gov.ph": true,
	"com.vn": true, "org.vn": true, "edu.vn": true, "gov.vn": true,
	"co.il": true, "org.il": true, "ac.il": true, "gov.il": true,
	"com.eg": true, "org.eg": true, "edu.eg": true, "gov.eg": true,
	"com.sa": true, "org.sa": true, "edu.sa": true, "gov.sa": true,
	"co.th": true, "or.th": true, "ac.th": true, "go.th": true,
	"com.es": true, "org.es": true, "edu.es": true, "gob.es": true,
	"edu.it": true, "gov.it": true,
	"asso.fr": true, "gouv.fr": true,
	"com.de": true,
	"co.at":  true, "or.at": true, "ac.at": true, "gv.at": true,
	"com.pt": true, "org.pt": true, "edu.pt": true, "gov.pt": true,
	"com.gr": true, "org.gr": true, "edu.gr": true, "gov.gr": true,
	"com.ro": true, "org.ro": true,
	"com.cz":  true,
	"priv.no": true,
	"gc.ca":   true, "on.ca": true, "qc.ca": true, "bc.ca": true, "ab.ca": true,
	"k12.ca.us": true, "cc.ca.us": true, "state.ca.us": true,
}

// OrganizationalDomain returns the organizational domain of name: the
// public suffix plus one label (RFC 7489 §3.2). A name that is itself
// a public suffix (or shorter) is returned unchanged.
func OrganizationalDomain(name string) string {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	labels := strings.Split(name, ".")
	if len(labels) <= 2 {
		return name
	}
	// Longest matching multi-label suffix wins; check three-label
	// suffixes before two-label ones.
	for take := 3; take >= 2; take-- {
		if len(labels) <= take {
			continue
		}
		suffix := strings.Join(labels[len(labels)-take:], ".")
		if multiLabelSuffixes[suffix] {
			return strings.Join(labels[len(labels)-take-1:], ".")
		}
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// Aligned reports whether the authenticated domain aligns with the
// RFC5322.From domain under the given mode: exact match for strict,
// same organizational domain for relaxed (RFC 7489 §3.1).
func Aligned(authDomain, fromDomain string, mode AlignmentMode) bool {
	a := strings.ToLower(strings.TrimSuffix(authDomain, "."))
	f := strings.ToLower(strings.TrimSuffix(fromDomain, "."))
	if a == "" || f == "" {
		return false
	}
	if mode == Strict {
		return a == f
	}
	return OrganizationalDomain(a) == OrganizationalDomain(f)
}
