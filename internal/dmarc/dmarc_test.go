package dmarc

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sendervalid/internal/dkim"
	"sendervalid/internal/spf"
)

type mapResolver struct {
	txt     map[string][]string
	failing map[string]bool
	queries []string
}

func (r *mapResolver) LookupTXT(ctx context.Context, name string) ([]string, error) {
	key := strings.ToLower(strings.TrimSuffix(name, "."))
	r.queries = append(r.queries, key)
	if r.failing[key] {
		return nil, errors.New("SERVFAIL")
	}
	return r.txt[key], nil
}

func TestParseRecord(t *testing.T) {
	rec, err := Parse("v=DMARC1; p=reject; sp=quarantine; adkim=s; aspf=r; pct=50; " +
		"rua=mailto:agg@example.com,mailto:agg2@example.com; ruf=mailto:fail@example.com")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Policy != Reject || rec.SubdomainPolicy != Quarantine {
		t.Errorf("dispositions: %+v", rec)
	}
	if rec.DKIMAlignment != Strict || rec.SPFAlignment != Relaxed {
		t.Errorf("alignment: %+v", rec)
	}
	if rec.Percent != 50 {
		t.Errorf("pct: %d", rec.Percent)
	}
	if len(rec.AggregateURIs) != 2 || len(rec.FailureURIs) != 1 {
		t.Errorf("uris: %+v", rec)
	}
}

func TestParseDefaults(t *testing.T) {
	rec, err := Parse("v=DMARC1; p=none")
	if err != nil {
		t.Fatal(err)
	}
	if rec.DKIMAlignment != Relaxed || rec.SPFAlignment != Relaxed || rec.Percent != 100 {
		t.Errorf("defaults: %+v", rec)
	}
	if rec.PolicyFor(true) != None || rec.PolicyFor(false) != None {
		t.Error("PolicyFor without sp=")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"v=spf1 -all",
		"v=DMARC1",                    // missing p=
		"v=DMARC1; p=destroy",         // bad disposition
		"v=DMARC1; p=none; adkim=x",   // bad alignment
		"v=DMARC1; p=none; pct=150",   // bad pct
		"v=DMARC1; p=none; brokentag", // tag without =
		"p=none; v=DMARC1",            // version not first
	}
	for _, txt := range cases {
		if _, err := Parse(txt); err == nil {
			t.Errorf("Parse(%q) accepted", txt)
		}
	}
}

func TestIsDMARC(t *testing.T) {
	if !IsDMARC("v=DMARC1; p=none") || !IsDMARC("v=DMARC1") {
		t.Error("valid prefixes rejected")
	}
	if IsDMARC("v=DMARC12; p=none") || IsDMARC("v=spf1 -all") {
		t.Error("invalid prefixes accepted")
	}
}

func TestRecordStringRoundTrip(t *testing.T) {
	for _, txt := range []string{
		"v=DMARC1; p=reject",
		"v=DMARC1; p=none; sp=reject; adkim=s; pct=25; rua=mailto:a@b.c",
	} {
		rec, err := Parse(txt)
		if err != nil {
			t.Fatal(err)
		}
		rec2, err := Parse(rec.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", rec.String(), err)
		}
		if rec.String() != rec2.String() {
			t.Errorf("unstable: %q vs %q", rec.String(), rec2.String())
		}
	}
}

func TestOrganizationalDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"example.com", "example.com"},
		{"mail.example.com", "example.com"},
		{"a.b.c.example.com", "example.com"},
		{"example.co.uk", "example.co.uk"},
		{"mail.example.co.uk", "example.co.uk"},
		{"deep.sub.example.com.au", "example.com.au"},
		{"com", "com"},
		{"co.uk", "co.uk"},
		{"EXAMPLE.COM.", "example.com"},
		{"school.k12.ca.us", "school.k12.ca.us"},
		{"www.school.k12.ca.us", "school.k12.ca.us"},
	}
	for _, c := range cases {
		if got := OrganizationalDomain(c.in); got != c.want {
			t.Errorf("OrganizationalDomain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAligned(t *testing.T) {
	cases := []struct {
		auth, from string
		mode       AlignmentMode
		want       bool
	}{
		{"example.com", "example.com", Strict, true},
		{"mail.example.com", "example.com", Strict, false},
		{"mail.example.com", "example.com", Relaxed, true},
		{"example.com", "news.example.com", Relaxed, true},
		{"example.org", "example.com", Relaxed, false},
		{"example.co.uk", "other.co.uk", Relaxed, false},
		{"", "example.com", Relaxed, false},
		{"Example.COM.", "example.com", Strict, true},
	}
	for _, c := range cases {
		if got := Aligned(c.auth, c.from, c.mode); got != c.want {
			t.Errorf("Aligned(%q, %q, %s) = %v, want %v", c.auth, c.from, c.mode, got, c.want)
		}
	}
}

func TestDiscoverExactDomain(t *testing.T) {
	r := &mapResolver{txt: map[string][]string{
		"_dmarc.sender.example": {"v=DMARC1; p=reject"},
	}}
	e := &Evaluator{Resolver: r}
	rec, fallback, err := e.Discover(context.Background(), "sender.example")
	if err != nil || rec == nil || fallback {
		t.Fatalf("Discover: %+v, %v, %v", rec, fallback, err)
	}
	if rec.Policy != Reject {
		t.Errorf("policy %s", rec.Policy)
	}
}

func TestDiscoverOrgFallback(t *testing.T) {
	r := &mapResolver{txt: map[string][]string{
		"_dmarc.example.com": {"v=DMARC1; p=quarantine; sp=none"},
	}}
	e := &Evaluator{Resolver: r}
	rec, fallback, err := e.Discover(context.Background(), "deep.mail.example.com")
	if err != nil || rec == nil || !fallback {
		t.Fatalf("Discover: %+v, %v, %v", rec, fallback, err)
	}
	// Both names must have been queried, exact first.
	if len(r.queries) != 2 || r.queries[0] != "_dmarc.deep.mail.example.com" ||
		r.queries[1] != "_dmarc.example.com" {
		t.Errorf("queries %v", r.queries)
	}
}

func TestDiscoverNone(t *testing.T) {
	r := &mapResolver{txt: map[string][]string{}}
	e := &Evaluator{Resolver: r}
	rec, _, err := e.Discover(context.Background(), "nopolicy.example.com")
	if err != nil || rec != nil {
		t.Fatalf("Discover: %+v, %v", rec, err)
	}
}

func TestDiscoverIgnoresGarbageAndMultiples(t *testing.T) {
	// Multiple DMARC records mean no policy; non-DMARC TXT is ignored.
	r := &mapResolver{txt: map[string][]string{
		"_dmarc.multi.example": {"v=DMARC1; p=none", "v=DMARC1; p=reject"},
		"_dmarc.noise.example": {"random txt", "v=DMARC1; p=reject"},
	}}
	e := &Evaluator{Resolver: r}
	rec, _, err := e.Discover(context.Background(), "multi.example")
	if err != nil || rec != nil {
		t.Errorf("multiple records: %+v, %v", rec, err)
	}
	rec, _, err = e.Discover(context.Background(), "noise.example")
	if err != nil || rec == nil || rec.Policy != Reject {
		t.Errorf("noise filtering: %+v, %v", rec, err)
	}
}

func TestEvaluatePassViaSPF(t *testing.T) {
	r := &mapResolver{txt: map[string][]string{
		"_dmarc.sender.example": {"v=DMARC1; p=reject"},
	}}
	e := &Evaluator{Resolver: r}
	out := e.Evaluate(context.Background(), Inputs{
		FromDomain: "sender.example",
		SPFResult:  spf.Pass, SPFDomain: "sender.example",
		DKIMResult: dkim.ResultNone,
	})
	if out.Result != ResultPass || !out.SPFAligned || out.DKIMAligned {
		t.Errorf("evaluate: %+v", out)
	}
	if out.Disposition != None {
		t.Errorf("disposition on pass: %s", out.Disposition)
	}
}

func TestEvaluatePassViaDKIM(t *testing.T) {
	r := &mapResolver{txt: map[string][]string{
		"_dmarc.sender.example": {"v=DMARC1; p=reject"},
	}}
	e := &Evaluator{Resolver: r}
	out := e.Evaluate(context.Background(), Inputs{
		FromDomain: "sender.example",
		SPFResult:  spf.Fail, SPFDomain: "sender.example",
		DKIMResult: dkim.ResultPass, DKIMDomain: "mail.sender.example",
	})
	if out.Result != ResultPass || !out.DKIMAligned {
		t.Errorf("evaluate: %+v", out)
	}
}

func TestEvaluateUnalignedPassFails(t *testing.T) {
	// SPF passed but for an unrelated domain: DMARC must fail.
	r := &mapResolver{txt: map[string][]string{
		"_dmarc.victim.example": {"v=DMARC1; p=reject"},
	}}
	e := &Evaluator{Resolver: r}
	out := e.Evaluate(context.Background(), Inputs{
		FromDomain: "victim.example",
		SPFResult:  spf.Pass, SPFDomain: "attacker.example",
		DKIMResult: dkim.ResultNone,
	})
	if out.Result != ResultFail {
		t.Errorf("unaligned: %+v", out)
	}
	if out.Disposition != Reject {
		t.Errorf("disposition: %s", out.Disposition)
	}
}

func TestEvaluateStrictAlignment(t *testing.T) {
	r := &mapResolver{txt: map[string][]string{
		"_dmarc.sender.example": {"v=DMARC1; p=reject; aspf=s"},
	}}
	e := &Evaluator{Resolver: r}
	out := e.Evaluate(context.Background(), Inputs{
		FromDomain: "sender.example",
		SPFResult:  spf.Pass, SPFDomain: "bounce.sender.example",
	})
	if out.Result != ResultFail {
		t.Errorf("strict aspf: %+v", out)
	}
}

func TestEvaluateSubdomainPolicy(t *testing.T) {
	r := &mapResolver{txt: map[string][]string{
		"_dmarc.example.com": {"v=DMARC1; p=reject; sp=quarantine"},
	}}
	e := &Evaluator{Resolver: r}
	out := e.Evaluate(context.Background(), Inputs{
		FromDomain: "sub.example.com",
		SPFResult:  spf.Fail, SPFDomain: "sub.example.com",
		DKIMResult: dkim.ResultFail,
	})
	if out.Result != ResultFail || out.Disposition != Quarantine {
		t.Errorf("subdomain policy: %+v", out)
	}
	if !out.FromOrgFallback {
		t.Error("fallback flag unset")
	}
}

func TestEvaluateNoPolicy(t *testing.T) {
	e := &Evaluator{Resolver: &mapResolver{txt: map[string][]string{}}}
	out := e.Evaluate(context.Background(), Inputs{
		FromDomain: "nopolicy.example",
		SPFResult:  spf.Fail,
	})
	if out.Result != ResultNone || out.Disposition != None {
		t.Errorf("no policy: %+v", out)
	}
}

func TestEvaluateTempError(t *testing.T) {
	r := &mapResolver{
		txt:     map[string][]string{},
		failing: map[string]bool{"_dmarc.broken.example": true},
	}
	e := &Evaluator{Resolver: r}
	out := e.Evaluate(context.Background(), Inputs{FromDomain: "broken.example", SPFResult: spf.Fail})
	if out.Result != ResultTempError {
		t.Errorf("temp error: %+v", out)
	}
}

func TestEvaluateEmptyFrom(t *testing.T) {
	e := &Evaluator{Resolver: &mapResolver{txt: map[string][]string{}}}
	if out := e.Evaluate(context.Background(), Inputs{}); out.Result != ResultPermError {
		t.Errorf("empty From: %+v", out)
	}
}

func TestEvaluatePctSampling(t *testing.T) {
	r := &mapResolver{txt: map[string][]string{
		"_dmarc.victim.example": {"v=DMARC1; p=reject; pct=30"},
	}}
	e := &Evaluator{Resolver: r}
	failing := func(point float64) *Evaluation {
		return e.Evaluate(context.Background(), Inputs{
			FromDomain: "victim.example", SamplePoint: point,
			SPFResult: spf.Fail, SPFDomain: "victim.example",
		})
	}
	// Inside the 30% sample: full reject.
	if out := failing(0.1); out.Disposition != Reject || out.SampledOut {
		t.Errorf("in-sample: %+v", out)
	}
	// Outside the sample: downgraded to quarantine.
	if out := failing(0.9); out.Disposition != Quarantine || !out.SampledOut {
		t.Errorf("sampled out: %+v", out)
	}
	// Quarantine downgrades to none when sampled out.
	r.txt["_dmarc.victim.example"] = []string{"v=DMARC1; p=quarantine; pct=30"}
	if out := failing(0.9); out.Disposition != None || !out.SampledOut {
		t.Errorf("quarantine sampled out: %+v", out)
	}
	// pct=100 (default) never samples out.
	r.txt["_dmarc.victim.example"] = []string{"v=DMARC1; p=reject"}
	if out := failing(0.99); out.Disposition != Reject || out.SampledOut {
		t.Errorf("pct=100: %+v", out)
	}
}
