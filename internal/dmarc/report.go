package dmarc

import (
	"encoding/xml"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file implements DMARC aggregate feedback reports (RFC 7489
// §7.2 and Appendix C): the XML documents receivers mail to the
// addresses in a domain's rua= tag. The measurement study published a
// rua= address on every experimental From domain (paper §5.3), making
// aggregate reports one of its attribution channels; a receiver-side
// deployment built on this package can both consume and emit them.

// Feedback is the root element of an aggregate report.
type Feedback struct {
	XMLName         xml.Name        `xml:"feedback"`
	ReportMetadata  ReportMetadata  `xml:"report_metadata"`
	PolicyPublished PolicyPublished `xml:"policy_published"`
	Records         []ReportRecord  `xml:"record"`
}

// ReportMetadata identifies the reporting organization and window.
type ReportMetadata struct {
	OrgName   string    `xml:"org_name"`
	Email     string    `xml:"email"`
	ReportID  string    `xml:"report_id"`
	DateRange DateRange `xml:"date_range"`
}

// DateRange is the reporting window in Unix seconds.
type DateRange struct {
	Begin int64 `xml:"begin"`
	End   int64 `xml:"end"`
}

// PolicyPublished echoes the policy the report was evaluated against.
type PolicyPublished struct {
	Domain          string `xml:"domain"`
	ADKIM           string `xml:"adkim,omitempty"`
	ASPF            string `xml:"aspf,omitempty"`
	Policy          string `xml:"p"`
	SubdomainPolicy string `xml:"sp,omitempty"`
	Percent         int    `xml:"pct"`
}

// ReportRecord aggregates the messages observed from one source.
type ReportRecord struct {
	Row         Row         `xml:"row"`
	Identifiers Identifiers `xml:"identifiers"`
	AuthResults AuthResults `xml:"auth_results"`
}

// Row carries the source address, count, and applied policy.
type Row struct {
	SourceIP        string          `xml:"source_ip"`
	Count           int             `xml:"count"`
	PolicyEvaluated PolicyEvaluated `xml:"policy_evaluated"`
}

// PolicyEvaluated is the disposition and per-mechanism DMARC results.
type PolicyEvaluated struct {
	Disposition string `xml:"disposition"`
	DKIM        string `xml:"dkim"`
	SPF         string `xml:"spf"`
}

// Identifiers carries the identities evaluated.
type Identifiers struct {
	HeaderFrom   string `xml:"header_from"`
	EnvelopeFrom string `xml:"envelope_from,omitempty"`
}

// AuthResults carries raw SPF/DKIM outcomes.
type AuthResults struct {
	DKIM []DKIMAuthResult `xml:"dkim,omitempty"`
	SPF  []SPFAuthResult  `xml:"spf"`
}

// DKIMAuthResult is one DKIM verification outcome.
type DKIMAuthResult struct {
	Domain   string `xml:"domain"`
	Selector string `xml:"selector,omitempty"`
	Result   string `xml:"result"`
}

// SPFAuthResult is one SPF evaluation outcome.
type SPFAuthResult struct {
	Domain string `xml:"domain"`
	Scope  string `xml:"scope,omitempty"`
	Result string `xml:"result"`
}

// MarshalReport renders the report as an XML document.
func MarshalReport(f *Feedback) ([]byte, error) {
	body, err := xml.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dmarc: marshaling report: %w", err)
	}
	return append([]byte(xml.Header), append(body, '\n')...), nil
}

// ParseReport parses an aggregate report document.
func ParseReport(data []byte) (*Feedback, error) {
	var f Feedback
	if err := xml.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("dmarc: parsing report: %w", err)
	}
	if f.PolicyPublished.Domain == "" {
		return nil, fmt.Errorf("dmarc: report lacks policy_published domain")
	}
	return &f, nil
}

// Observation is one evaluated message fed to an Accumulator.
type Observation struct {
	SourceIP     netip.Addr
	HeaderFrom   string
	EnvelopeFrom string
	Evaluation   *Evaluation
	// SPFResult/SPFDomain and DKIMResult/DKIMDomain echo the raw
	// authentication outcomes for the auth_results section.
	SPFResult  string
	SPFDomain  string
	DKIMResult string
	DKIMDomain string
}

// Accumulator aggregates observations for one policy domain into the
// per-source rows of an aggregate report. It is safe for concurrent
// use by a receiving MTA's delivery paths.
type Accumulator struct {
	// OrgName and Email identify the reporting organization.
	OrgName string
	Email   string
	// Domain is the policy domain reported on.
	Domain string

	mu     sync.Mutex
	policy *Record
	rows   map[rowKey]*rowAgg
	begin  time.Time
	end    time.Time
}

type rowKey struct {
	source      string
	disposition Disposition
	spf         Result
	dkim        Result
	headerFrom  string
}

type rowAgg struct {
	count int
	obs   Observation
}

// Add records one observation. Observations without a discovered
// policy are ignored (no policy, nothing to report on).
func (a *Accumulator) Add(now time.Time, obs Observation) {
	if obs.Evaluation == nil || obs.Evaluation.Record == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.rows == nil {
		a.rows = make(map[rowKey]*rowAgg)
	}
	if a.policy == nil {
		a.policy = obs.Evaluation.Record
	}
	if a.begin.IsZero() || now.Before(a.begin) {
		a.begin = now
	}
	if now.After(a.end) {
		a.end = now
	}

	spfResult, dkimResult := Result(ResultFail), Result(ResultFail)
	if obs.Evaluation.SPFAligned {
		spfResult = ResultPass
	}
	if obs.Evaluation.DKIMAligned {
		dkimResult = ResultPass
	}
	key := rowKey{
		source:      obs.SourceIP.String(),
		disposition: obs.Evaluation.Disposition,
		spf:         spfResult,
		dkim:        dkimResult,
		headerFrom:  strings.ToLower(obs.HeaderFrom),
	}
	agg := a.rows[key]
	if agg == nil {
		agg = &rowAgg{obs: obs}
		a.rows[key] = agg
	}
	agg.count++
}

// Len returns the number of distinct rows accumulated.
func (a *Accumulator) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.rows)
}

// Report builds the aggregate report and resets the accumulator.
// It returns nil when nothing was observed.
func (a *Accumulator) Report(reportID string) *Feedback {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.rows) == 0 {
		return nil
	}
	f := &Feedback{
		ReportMetadata: ReportMetadata{
			OrgName:  a.OrgName,
			Email:    a.Email,
			ReportID: reportID,
			DateRange: DateRange{
				Begin: a.begin.Unix(),
				End:   a.end.Unix(),
			},
		},
		PolicyPublished: publishedFrom(a.Domain, a.policy),
	}
	keys := make([]rowKey, 0, len(a.rows))
	for k := range a.rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].source != keys[j].source {
			return keys[i].source < keys[j].source
		}
		return keys[i].headerFrom < keys[j].headerFrom
	})
	for _, k := range keys {
		agg := a.rows[k]
		rec := ReportRecord{
			Row: Row{
				SourceIP: k.source,
				Count:    agg.count,
				PolicyEvaluated: PolicyEvaluated{
					Disposition: string(k.disposition),
					DKIM:        string(k.dkim),
					SPF:         string(k.spf),
				},
			},
			Identifiers: Identifiers{
				HeaderFrom:   k.headerFrom,
				EnvelopeFrom: agg.obs.EnvelopeFrom,
			},
			AuthResults: AuthResults{
				SPF: []SPFAuthResult{{
					Domain: agg.obs.SPFDomain,
					Scope:  "mfrom",
					Result: agg.obs.SPFResult,
				}},
			},
		}
		if agg.obs.DKIMResult != "" && agg.obs.DKIMResult != "none" {
			rec.AuthResults.DKIM = append(rec.AuthResults.DKIM, DKIMAuthResult{
				Domain: agg.obs.DKIMDomain,
				Result: agg.obs.DKIMResult,
			})
		}
		f.Records = append(f.Records, rec)
	}
	a.rows = nil
	a.begin, a.end = time.Time{}, time.Time{}
	return f
}

func publishedFrom(domain string, rec *Record) PolicyPublished {
	p := PolicyPublished{Domain: domain, Percent: 100, Policy: string(None)}
	if rec != nil {
		p.Policy = string(rec.Policy)
		p.SubdomainPolicy = string(rec.SubdomainPolicy)
		p.ADKIM = string(rec.DKIMAlignment)
		p.ASPF = string(rec.SPFAlignment)
		p.Percent = rec.Percent
	}
	return p
}

// ReportFilename returns the RFC 7489 §7.2.1.1 filename for a report:
// receiver "!" policy-domain "!" begin "!" end ".xml".
func ReportFilename(receiver, policyDomain string, r DateRange) string {
	return fmt.Sprintf("%s!%s!%d!%d.xml",
		strings.TrimSuffix(receiver, "."), strings.TrimSuffix(policyDomain, "."),
		r.Begin, r.End)
}
