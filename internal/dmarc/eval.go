package dmarc

import (
	"context"
	"strings"

	"sendervalid/internal/dkim"
	"sendervalid/internal/spf"
)

// Result is a DMARC evaluation result.
type Result string

// Evaluation results.
const (
	ResultPass      Result = "pass"
	ResultFail      Result = "fail"
	ResultNone      Result = "none" // no policy published
	ResultTempError Result = "temperror"
	ResultPermError Result = "permerror"
)

// Evaluation is the outcome of applying DMARC to one message.
type Evaluation struct {
	Result Result
	// Disposition is the action the policy requests on failure
	// (None when Result is pass or none).
	Disposition Disposition
	// Record is the discovered policy, nil when none.
	Record *Record
	// FromOrgFallback reports that the policy came from the
	// organizational domain rather than the exact From domain.
	FromOrgFallback bool
	// SPFAligned and DKIMAligned report which mechanism(s) produced
	// the pass.
	SPFAligned  bool
	DKIMAligned bool
	// SampledOut reports that pct= sampling weakened the disposition.
	SampledOut bool
	// Err carries detail for error results.
	Err error
}

// Evaluator applies DMARC policy.
type Evaluator struct {
	// Resolver fetches _dmarc TXT records.
	Resolver dkim.TXTResolver
}

// Discover fetches the DMARC record for fromDomain, falling back to
// the organizational domain (RFC 7489 §6.6.3). It returns the record,
// whether the fallback was used, and any transient error.
func (e *Evaluator) Discover(ctx context.Context, fromDomain string) (*Record, bool, error) {
	rec, err := e.query(ctx, fromDomain)
	if err != nil {
		return nil, false, err
	}
	if rec != nil {
		return rec, false, nil
	}
	org := OrganizationalDomain(fromDomain)
	if strings.EqualFold(org, strings.TrimSuffix(fromDomain, ".")) {
		return nil, false, nil
	}
	rec, err = e.query(ctx, org)
	if err != nil {
		return nil, false, err
	}
	return rec, rec != nil, nil
}

func (e *Evaluator) query(ctx context.Context, domain string) (*Record, error) {
	txts, err := e.Resolver.LookupTXT(ctx, "_dmarc."+strings.TrimSuffix(domain, "."))
	if err != nil {
		return nil, err
	}
	var records []*Record
	for _, txt := range txts {
		if !IsDMARC(txt) {
			continue
		}
		rec, err := Parse(txt)
		if err != nil {
			continue // unparsable candidates are ignored per §6.6.3
		}
		records = append(records, rec)
	}
	if len(records) != 1 {
		// Zero or multiple records both mean "no policy".
		return nil, nil
	}
	return records[0], nil
}

// Inputs carries the authentication outcomes DMARC consumes.
type Inputs struct {
	// FromDomain is the RFC5322.From header domain.
	FromDomain string
	// SamplePoint in [0, 1) positions this message within the pct=
	// sampling space (RFC 7489 §6.6.4): a failing message whose point
	// falls at or above pct/100 receives the next-weaker disposition
	// (reject→quarantine, quarantine→none). The zero value falls
	// inside every sample, so callers that ignore sampling get the
	// full policy; out-of-range values also apply the policy fully.
	SamplePoint float64
	// SPFResult and SPFDomain are the SPF outcome and the domain it
	// authenticated (the MAIL FROM domain, or HELO for a null path).
	SPFResult spf.Result
	SPFDomain string
	// DKIMResult and DKIMDomain are the DKIM outcome and its d= domain.
	DKIMResult dkim.Result
	DKIMDomain string
}

// Evaluate discovers the policy for in.FromDomain and applies the
// DMARC pass rule: at least one of SPF/DKIM passed and aligns.
func (e *Evaluator) Evaluate(ctx context.Context, in Inputs) *Evaluation {
	out := &Evaluation{Disposition: None}
	if in.FromDomain == "" {
		out.Result = ResultPermError
		return out
	}
	rec, fallback, err := e.Discover(ctx, in.FromDomain)
	if err != nil {
		out.Result, out.Err = ResultTempError, err
		return out
	}
	if rec == nil {
		out.Result = ResultNone
		return out
	}
	out.Record = rec
	out.FromOrgFallback = fallback

	out.SPFAligned = in.SPFResult == spf.Pass &&
		Aligned(in.SPFDomain, in.FromDomain, rec.SPFAlignment)
	out.DKIMAligned = in.DKIMResult == dkim.ResultPass &&
		Aligned(in.DKIMDomain, in.FromDomain, rec.DKIMAlignment)

	if out.SPFAligned || out.DKIMAligned {
		out.Result = ResultPass
		return out
	}
	out.Result = ResultFail
	out.Disposition = rec.PolicyFor(fallback)
	if rec.Percent < 100 && in.SamplePoint >= 0 && in.SamplePoint < 1 &&
		in.SamplePoint*100 >= float64(rec.Percent) {
		// Sampled out: apply the next-weaker disposition (§6.6.4).
		switch out.Disposition {
		case Reject:
			out.Disposition = Quarantine
		case Quarantine:
			out.Disposition = None
		}
		out.SampledOut = true
	}
	return out
}
