// Package dmarc implements Domain-based Message Authentication,
// Reporting, and Conformance (RFC 7489): policy records, discovery
// with organizational-domain fallback, SPF/DKIM identifier alignment,
// and disposition. DMARC requires that either SPF or DKIM pass *and*
// align with the RFC5322.From domain; the measurement study publishes
// a strict reject policy for every experimental From domain
// (paper §4.3) and counts MTAs that query _dmarc.<domain> as
// DMARC-validating.
package dmarc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Disposition is a requested receiver action (p=/sp= tag).
type Disposition string

// The three dispositions.
const (
	None       Disposition = "none"
	Quarantine Disposition = "quarantine"
	Reject     Disposition = "reject"
)

// AlignmentMode is an identifier-alignment mode (adkim=/aspf= tag).
type AlignmentMode string

// Alignment modes.
const (
	Relaxed AlignmentMode = "r"
	Strict  AlignmentMode = "s"
)

// Record is a parsed DMARC policy record (RFC 7489 §6.3).
type Record struct {
	// Policy is the p= disposition for the exact domain.
	Policy Disposition
	// SubdomainPolicy is the sp= disposition; empty means Policy.
	SubdomainPolicy Disposition
	// DKIMAlignment and SPFAlignment are adkim=/aspf=; default relaxed.
	DKIMAlignment AlignmentMode
	SPFAlignment  AlignmentMode
	// Percent is the pct= sampling rate, 0–100; default 100.
	Percent int
	// AggregateURIs and FailureURIs are rua=/ruf= report addresses —
	// the channel through which the study publishes its contact
	// address (paper §5.3).
	AggregateURIs []string
	FailureURIs   []string
}

// ErrNotDMARC reports a TXT record that is not a DMARC policy.
var ErrNotDMARC = errors.New("dmarc: not a DMARC record")

// IsDMARC reports whether a TXT payload begins with the DMARC version
// tag.
func IsDMARC(txt string) bool {
	return txt == "v=DMARC1" || strings.HasPrefix(txt, "v=DMARC1;") ||
		strings.HasPrefix(txt, "v=DMARC1 ")
}

// Parse parses a DMARC policy record.
func Parse(txt string) (*Record, error) {
	if !IsDMARC(txt) {
		return nil, ErrNotDMARC
	}
	rec := &Record{
		DKIMAlignment: Relaxed,
		SPFAlignment:  Relaxed,
		Percent:       100,
	}
	sawPolicy := false
	for i, tag := range strings.Split(txt, ";") {
		tag = strings.TrimSpace(tag)
		if tag == "" {
			continue
		}
		name, value, ok := strings.Cut(tag, "=")
		if !ok {
			return nil, fmt.Errorf("dmarc: tag %q lacks '='", tag)
		}
		name = strings.TrimSpace(strings.ToLower(name))
		value = strings.TrimSpace(value)
		switch name {
		case "v":
			if i != 0 || value != "DMARC1" {
				return nil, fmt.Errorf("dmarc: bad version tag %q", value)
			}
		case "p":
			d, err := parseDisposition(value)
			if err != nil {
				return nil, err
			}
			rec.Policy = d
			sawPolicy = true
		case "sp":
			d, err := parseDisposition(value)
			if err != nil {
				return nil, err
			}
			rec.SubdomainPolicy = d
		case "adkim":
			m, err := parseAlignment(value)
			if err != nil {
				return nil, err
			}
			rec.DKIMAlignment = m
		case "aspf":
			m, err := parseAlignment(value)
			if err != nil {
				return nil, err
			}
			rec.SPFAlignment = m
		case "pct":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 || n > 100 {
				return nil, fmt.Errorf("dmarc: bad pct %q", value)
			}
			rec.Percent = n
		case "rua":
			rec.AggregateURIs = splitURIs(value)
		case "ruf":
			rec.FailureURIs = splitURIs(value)
		default:
			// Unknown tags are ignored per specification.
		}
	}
	if !sawPolicy {
		return nil, errors.New("dmarc: record lacks required p= tag")
	}
	return rec, nil
}

func parseDisposition(v string) (Disposition, error) {
	switch Disposition(strings.ToLower(v)) {
	case None, Quarantine, Reject:
		return Disposition(strings.ToLower(v)), nil
	}
	return "", fmt.Errorf("dmarc: bad disposition %q", v)
}

func parseAlignment(v string) (AlignmentMode, error) {
	switch AlignmentMode(strings.ToLower(v)) {
	case Relaxed, Strict:
		return AlignmentMode(strings.ToLower(v)), nil
	}
	return "", fmt.Errorf("dmarc: bad alignment mode %q", v)
}

func splitURIs(v string) []string {
	var out []string
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// PolicyFor returns the disposition applicable to the evaluated domain
// given whether the record was found at the exact domain or inherited
// from the organizational domain.
func (r *Record) PolicyFor(subdomain bool) Disposition {
	if subdomain && r.SubdomainPolicy != "" {
		return r.SubdomainPolicy
	}
	return r.Policy
}

// String renders the record in canonical tag form.
func (r *Record) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v=DMARC1; p=%s", r.Policy)
	if r.SubdomainPolicy != "" {
		fmt.Fprintf(&sb, "; sp=%s", r.SubdomainPolicy)
	}
	if r.DKIMAlignment != Relaxed {
		fmt.Fprintf(&sb, "; adkim=%s", r.DKIMAlignment)
	}
	if r.SPFAlignment != Relaxed {
		fmt.Fprintf(&sb, "; aspf=%s", r.SPFAlignment)
	}
	if r.Percent != 100 {
		fmt.Fprintf(&sb, "; pct=%d", r.Percent)
	}
	if len(r.AggregateURIs) > 0 {
		fmt.Fprintf(&sb, "; rua=%s", strings.Join(r.AggregateURIs, ","))
	}
	if len(r.FailureURIs) > 0 {
		fmt.Fprintf(&sb, "; ruf=%s", strings.Join(r.FailureURIs, ","))
	}
	return sb.String()
}
