package dmarc

import (
	"net/netip"
	"strings"
	"testing"
	"time"
)

func sampleEvaluation(t *testing.T, spfAligned bool) *Evaluation {
	t.Helper()
	rec, err := Parse("v=DMARC1; p=reject; adkim=r; aspf=r")
	if err != nil {
		t.Fatal(err)
	}
	ev := &Evaluation{Record: rec, SPFAligned: spfAligned}
	if spfAligned {
		ev.Result = ResultPass
		ev.Disposition = None
	} else {
		ev.Result = ResultFail
		ev.Disposition = Reject
	}
	return ev
}

func TestAccumulatorAggregation(t *testing.T) {
	acc := &Accumulator{OrgName: "receiver.example", Email: "dmarc@receiver.example",
		Domain: "victim.example"}
	now := time.Unix(1_600_000_000, 0)

	// Three messages from the same spoofing source, one legit.
	spoof := Observation{
		SourceIP:     netip.MustParseAddr("192.0.2.66"),
		HeaderFrom:   "victim.example",
		EnvelopeFrom: "spoof@victim.example",
		Evaluation:   sampleEvaluation(t, false),
		SPFResult:    "fail", SPFDomain: "victim.example",
		DKIMResult: "none",
	}
	for i := 0; i < 3; i++ {
		acc.Add(now.Add(time.Duration(i)*time.Hour), spoof)
	}
	legit := Observation{
		SourceIP:     netip.MustParseAddr("203.0.113.10"),
		HeaderFrom:   "victim.example",
		EnvelopeFrom: "news@victim.example",
		Evaluation:   sampleEvaluation(t, true),
		SPFResult:    "pass", SPFDomain: "victim.example",
		DKIMResult: "pass", DKIMDomain: "victim.example",
	}
	acc.Add(now.Add(30*time.Minute), legit)

	if acc.Len() != 2 {
		t.Fatalf("rows: %d", acc.Len())
	}
	f := acc.Report("r-001")
	if f == nil {
		t.Fatal("nil report")
	}
	if len(f.Records) != 2 {
		t.Fatalf("records: %d", len(f.Records))
	}
	// Rows sort by source IP: 192.0.2.66 first.
	spoofRow := f.Records[0]
	if spoofRow.Row.SourceIP != "192.0.2.66" || spoofRow.Row.Count != 3 {
		t.Errorf("spoof row: %+v", spoofRow.Row)
	}
	if spoofRow.Row.PolicyEvaluated.Disposition != "reject" ||
		spoofRow.Row.PolicyEvaluated.SPF != "fail" {
		t.Errorf("spoof policy: %+v", spoofRow.Row.PolicyEvaluated)
	}
	if len(spoofRow.AuthResults.DKIM) != 0 {
		t.Errorf("spoof row has DKIM auth results: %+v", spoofRow.AuthResults)
	}
	legitRow := f.Records[1]
	if legitRow.Row.Count != 1 || legitRow.Row.PolicyEvaluated.Disposition != "none" {
		t.Errorf("legit row: %+v", legitRow.Row)
	}
	if len(legitRow.AuthResults.DKIM) != 1 || legitRow.AuthResults.DKIM[0].Result != "pass" {
		t.Errorf("legit DKIM: %+v", legitRow.AuthResults)
	}
	// Window covers earliest to latest observation.
	if f.ReportMetadata.DateRange.Begin != now.Unix() ||
		f.ReportMetadata.DateRange.End != now.Add(2*time.Hour).Unix() {
		t.Errorf("window: %+v", f.ReportMetadata.DateRange)
	}
	// The accumulator resets after reporting.
	if acc.Len() != 0 || acc.Report("r-002") != nil {
		t.Error("accumulator not reset")
	}
}

func TestAccumulatorIgnoresPolicyless(t *testing.T) {
	acc := &Accumulator{Domain: "x.example"}
	acc.Add(time.Now(), Observation{Evaluation: &Evaluation{Result: ResultNone}})
	acc.Add(time.Now(), Observation{})
	if acc.Len() != 0 {
		t.Errorf("rows: %d", acc.Len())
	}
}

func TestReportXMLRoundTrip(t *testing.T) {
	acc := &Accumulator{OrgName: "receiver.example", Email: "dmarc@receiver.example",
		Domain: "victim.example"}
	acc.Add(time.Unix(1_600_000_000, 0), Observation{
		SourceIP:   netip.MustParseAddr("192.0.2.66"),
		HeaderFrom: "victim.example",
		Evaluation: sampleEvaluation(t, false),
		SPFResult:  "fail", SPFDomain: "victim.example",
	})
	f := acc.Report("roundtrip-1")
	data, err := MarshalReport(f)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"<?xml", "<feedback>", "<org_name>receiver.example</org_name>",
		"<report_id>roundtrip-1</report_id>", "<domain>victim.example</domain>",
		"<p>reject</p>", "<source_ip>192.0.2.66</source_ip>",
		"<disposition>reject</disposition>", "<header_from>victim.example</header_from>",
		`<scope>mfrom</scope>`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report XML missing %q:\n%s", want, text)
		}
	}
	parsed, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.PolicyPublished.Domain != "victim.example" ||
		len(parsed.Records) != 1 ||
		parsed.Records[0].Row.Count != 1 {
		t.Errorf("round trip: %+v", parsed)
	}
}

func TestParseReportErrors(t *testing.T) {
	if _, err := ParseReport([]byte("not xml at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseReport([]byte("<feedback></feedback>")); err == nil {
		t.Error("domainless report accepted")
	}
}

func TestReportFilename(t *testing.T) {
	name := ReportFilename("receiver.example.", "victim.example",
		DateRange{Begin: 100, End: 200})
	if name != "receiver.example!victim.example!100!200.xml" {
		t.Errorf("filename %q", name)
	}
}

func TestPublishedFromDefaults(t *testing.T) {
	p := publishedFrom("x.example", nil)
	if p.Policy != "none" || p.Percent != 100 {
		t.Errorf("nil-record published: %+v", p)
	}
}
