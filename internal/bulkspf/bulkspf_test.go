package bulkspf

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sendervalid/internal/leaktest"
	"sendervalid/internal/spf"
)

// mapResolver is an in-memory spf.Resolver: TXT and A records keyed by
// canonicalized (lowercased, no trailing dot) names.
type mapResolver struct {
	txt map[string][]string
	a   map[string][]netip.Addr
}

func key(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

func (m *mapResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	return m.txt[key(name)], nil
}
func (m *mapResolver) LookupA(_ context.Context, name string) ([]netip.Addr, error) {
	return m.a[key(name)], nil
}
func (m *mapResolver) LookupAAAA(context.Context, string) ([]netip.Addr, error) { return nil, nil }
func (m *mapResolver) LookupMX(context.Context, string) ([]spf.MXRecord, error) {
	return nil, nil
}
func (m *mapResolver) LookupPTR(context.Context, netip.Addr) ([]string, error) { return nil, nil }

func testResolver() *mapResolver {
	return &mapResolver{
		txt: map[string][]string{
			"pass.example":  {"v=spf1 ip4:203.0.113.0/24 -all"},
			"fail.example":  {"v=spf1 -all"},
			"none.example":  {"plain txt, no policy"},
			"broke.example": {"v=spf1 ip4:not-a-network -all"},
		},
		a: map[string][]netip.Addr{},
	}
}

func runLines(t *testing.T, cfg Config, lines []string) ([]Result, Stats) {
	t.Helper()
	var out bytes.Buffer
	stats, err := New(cfg).Run(context.Background(),
		strings.NewReader(strings.Join(lines, "\n")), &out)
	if err != nil {
		t.Fatal(err)
	}
	var results []Result
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var r Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad output line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	return results, stats
}

func TestRunOrdered(t *testing.T) {
	lines := []string{
		`{"ip":"203.0.113.9","mail_from":"alice@pass.example"}`,
		``, // blank lines are skipped, not numbered
		`{"ip":"198.51.100.9","mail_from":"bob@fail.example"}`,
		`{"ip":"203.0.113.9","domain":"none.example"}`,
		`{"ip":"203.0.113.9","domain":"broke.example"}`,
		`{"ip":"not-an-ip","domain":"pass.example"}`,
		`this is not json`,
		`{"ip":"203.0.113.9"}`, // no domain anywhere
	}
	results, stats := runLines(t, Config{Resolver: testResolver(), Workers: 4}, lines)
	if len(results) != 7 {
		t.Fatalf("got %d results, want 7", len(results))
	}
	want := []spf.Result{
		spf.Pass, spf.Fail, spf.None, spf.PermError, // evaluated
		spf.PermError, spf.PermError, spf.PermError, // input errors
	}
	for i, r := range results {
		if r.Seq != i {
			t.Errorf("result %d has seq %d; ordered output must match input order", i, r.Seq)
		}
		if r.Result != want[i] {
			t.Errorf("seq %d: result %q, want %q (detail %q err %q)",
				i, r.Result, want[i], r.Detail, r.Err)
		}
	}
	for i := 4; i < 7; i++ {
		if results[i].Err == "" {
			t.Errorf("seq %d: input error should set the error field", i)
		}
	}
	// The defaulting rules: helo falls back to the domain, the sender
	// to postmaster@helo.
	if r := results[2]; r.Helo != "none.example" || r.MailFrom != "postmaster@none.example" {
		t.Errorf("defaults not applied: helo=%q mail_from=%q", r.Helo, r.MailFrom)
	}
	if stats.Evaluated != 4 || stats.Errored != 3 {
		t.Errorf("stats = %+v, want 4 evaluated / 3 errored", stats)
	}
	if stats.Results[spf.PermError] != 4 || stats.Results[spf.Pass] != 1 {
		t.Errorf("result histogram = %v", stats.Results)
	}
}

func TestRunUnordered(t *testing.T) {
	const n = 50
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf(`{"ip":"203.0.113.9","mail_from":"u%d@pass.example"}`, i)
	}
	results, stats := runLines(t,
		Config{Resolver: testResolver(), Workers: 8, Unordered: true}, lines)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	seen := make(map[int]bool)
	for _, r := range results {
		if r.Result != spf.Pass {
			t.Errorf("seq %d: %q, want pass", r.Seq, r.Result)
		}
		if seen[r.Seq] {
			t.Errorf("seq %d emitted twice", r.Seq)
		}
		seen[r.Seq] = true
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			t.Errorf("seq %d missing from unordered output", i)
		}
	}
	if stats.Evaluated != n {
		t.Errorf("stats.Evaluated = %d, want %d", stats.Evaluated, n)
	}
}

// gateResolver blocks every TXT lookup until released, tracking how
// many are blocked at once — the observable for concurrency tests.
type gateResolver struct {
	mapResolver
	release chan struct{}
	active  atomic.Int32
	peak    atomic.Int32
}

func (g *gateResolver) LookupTXT(ctx context.Context, name string) ([]string, error) {
	n := g.active.Add(1)
	defer g.active.Add(-1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			break
		}
	}
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.mapResolver.LookupTXT(ctx, name)
}

// TestWorkerPoolBounds proves evaluation concurrency equals the worker
// count: with every lookup gated, exactly Workers evaluations are in
// flight, no matter how much input is queued behind them.
func TestWorkerPoolBounds(t *testing.T) {
	g := &gateResolver{mapResolver: *testResolver(), release: make(chan struct{})}
	const workers = 3
	lines := make([]string, 24)
	for i := range lines {
		lines[i] = fmt.Sprintf(`{"ip":"203.0.113.9","mail_from":"u%d@pass.example"}`, i)
	}
	done := make(chan struct{})
	var results []Result
	go func() {
		defer close(done)
		results, _ = runLines(t, Config{Resolver: g, Workers: workers, QueueDepth: 4}, lines)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for g.active.Load() != workers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d evaluations in flight, want %d", g.active.Load(), workers)
		}
		time.Sleep(time.Millisecond)
	}
	// Give the pool a chance to overshoot, then release everything.
	time.Sleep(50 * time.Millisecond)
	close(g.release)
	<-done
	if p := g.peak.Load(); p != workers {
		t.Errorf("peak concurrent evaluations = %d, want exactly %d", p, workers)
	}
	if len(results) != len(lines) {
		t.Errorf("got %d results, want %d", len(results), len(lines))
	}
}

// TestRunCancellation proves a cancelled Run returns promptly with
// ctx's error and leaves no goroutines behind, even with every worker
// mid-evaluation and input still queued.
func TestRunCancellation(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	g := &gateResolver{mapResolver: *testResolver(), release: make(chan struct{})}
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = fmt.Sprintf(`{"ip":"203.0.113.9","mail_from":"u%d@pass.example"}`, i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		var out bytes.Buffer
		_, err := New(Config{Resolver: g, Workers: 4}).Run(ctx,
			strings.NewReader(strings.Join(lines, "\n")), &out)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for g.active.Load() != 4 {
		if time.Now().After(deadline) {
			t.Fatal("workers never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestErroredLinesDoNotAbort pins that a torn input tail (a run cut
// off mid-line) still produces a result for every complete line.
func TestErroredLinesDoNotAbort(t *testing.T) {
	lines := []string{
		`{"ip":"203.0.113.9","mail_from":"a@pass.example"}`,
		`{"ip":"203.0.113.9","mail_from":"b@pa`, // torn mid-record
	}
	results, stats := runLines(t, Config{Resolver: testResolver(), Workers: 2}, lines)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[1].Result != spf.PermError || results[1].Err == "" {
		t.Errorf("torn line: %+v, want permerror with error detail", results[1])
	}
	if stats.Errored != 1 {
		t.Errorf("stats.Errored = %d, want 1", stats.Errored)
	}
}
