// Package bulkspf evaluates SPF for a stream of (ip, helo, mail-from)
// tuples with a bounded worker pool sharing one resolver — the batch
// shape the measurement study's log replays produce, where millions of
// observed SMTP connections are re-validated offline.
//
// Input is JSONL, one Tuple per line; output is JSONL, one Result per
// line, in input order by default. All workers share the caller's
// resolver: the resolver's sharded cache and singleflight dedup are
// what make N workers cost less than N times the DNS traffic, since
// real mail streams repeat sending domains heavily.
package bulkspf

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"sendervalid/internal/smtp"
	"sendervalid/internal/spf"
	"sendervalid/internal/telemetry"
	"sendervalid/internal/trace"
)

// maxLineBytes bounds one input line (a tuple is tiny; the headroom is
// for pathological inputs, which error rather than split).
const maxLineBytes = 1 << 20

// Tuple is one connection to validate. Domain is optional: when empty
// the mail-from domain is used, matching check_host()'s definition.
type Tuple struct {
	IP       string `json:"ip"`
	Helo     string `json:"helo,omitempty"`
	MailFrom string `json:"mail_from,omitempty"`
	Domain   string `json:"domain,omitempty"`
}

// Result is one evaluated tuple. Seq is the zero-based input line
// index (blank lines excluded), present so unordered output remains
// joinable against the input.
type Result struct {
	Seq         int        `json:"seq"`
	IP          string     `json:"ip"`
	Domain      string     `json:"domain,omitempty"`
	MailFrom    string     `json:"mail_from,omitempty"`
	Helo        string     `json:"helo,omitempty"`
	Result      spf.Result `json:"result"`
	Explanation string     `json:"explanation,omitempty"`
	Lookups     int        `json:"lookups,omitempty"`
	VoidLookups int        `json:"void_lookups,omitempty"`
	// Detail carries the error behind temperror/permerror results.
	Detail string `json:"detail,omitempty"`
	// Err is set on lines that never reached evaluation (bad JSON,
	// unparseable IP, no domain); Result is permerror for those.
	Err string `json:"error,omitempty"`
	// Micros is the evaluation wall time in microseconds.
	Micros int64 `json:"micros"`
}

// Config configures an Evaluator.
type Config struct {
	// Resolver is shared by all workers; it must be safe for
	// concurrent use (internal/resolver is).
	Resolver spf.Resolver
	// SPF carries the evaluation knobs, applied identically by every
	// worker.
	SPF spf.Options
	// Workers is the evaluation concurrency. Zero means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the jobs buffered ahead of the workers — the
	// backpressure window between the input reader and evaluation.
	// Zero means 4×Workers.
	QueueDepth int
	// Unordered emits results as they complete instead of in input
	// order; Seq still identifies the input line.
	Unordered bool
	// Tracer, when non-nil, opens one root span per evaluated tuple
	// ("bulkspf.tuple"); the SPF checker and resolver hang their
	// spans off it through the context.
	Tracer *trace.Tracer
}

// Stats summarizes one Run.
type Stats struct {
	// Evaluated counts tuples that reached check_host().
	Evaluated uint64
	// Errored counts input lines that never reached evaluation.
	Errored uint64
	// Results counts output lines by SPF result.
	Results map[spf.Result]uint64
	// Elapsed is the wall time of the Run.
	Elapsed time.Duration
}

// Evaluator runs bulk SPF validation. Create with New; one Evaluator
// may serve multiple sequential Runs (metrics accumulate across them).
type Evaluator struct {
	cfg     Config
	metrics struct {
		evaluated telemetry.Counter
		errored   telemetry.Counter
		latency   *telemetry.Histogram
	}
}

// New creates an Evaluator from cfg.
func New(cfg Config) *Evaluator {
	e := &Evaluator{cfg: cfg}
	e.metrics.latency = telemetry.NewHistogram(telemetry.LatencyBuckets)
	return e
}

// RegisterMetrics publishes the evaluator's instruments under the
// bulkspf_ namespace.
func (e *Evaluator) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.MustCounter("bulkspf_evaluated_total",
		"Tuples that reached check_host() evaluation.",
		&e.metrics.evaluated, labels...)
	reg.MustCounter("bulkspf_errored_total",
		"Input lines rejected before evaluation (bad JSON, bad IP, no domain).",
		&e.metrics.errored, labels...)
	reg.MustHistogram("bulkspf_eval_seconds",
		"check_host() evaluation latency.",
		e.metrics.latency, labels...)
}

// job is one input line moving through the pipeline. res has capacity
// one so a worker's delivery never blocks, even for jobs whose result
// nobody collects after a cancellation.
type job struct {
	seq  int
	line []byte
	res  chan Result
}

// Run streams tuples from in, evaluates them on the worker pool, and
// writes JSONL results to out. It returns when the input is exhausted
// and all results are written, or when ctx is cancelled. Input lines
// that cannot be parsed become permerror results with Err set; they do
// not abort the run.
func (e *Evaluator) Run(ctx context.Context, in io.Reader, out io.Writer) (Stats, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := e.cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}

	jobs := make(chan *job, depth)
	var order chan *job     // ordered mode: jobs in input order for the writer
	var results chan Result // unordered mode: completions as they happen
	if e.cfg.Unordered {
		results = make(chan Result, depth)
	} else {
		order = make(chan *job, depth)
	}

	// Reader. Every job is sent to jobs BEFORE order, so the writer
	// never waits on a job no worker will see: order is always a
	// subset (a prefix-closed one) of jobs.
	readErr := make(chan error, 1)
	go func() {
		defer close(jobs)
		if order != nil {
			defer close(order)
		}
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 64*1024), maxLineBytes)
		seq := 0
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			j := &job{seq: seq, line: append([]byte(nil), line...), res: make(chan Result, 1)}
			seq++
			select {
			case jobs <- j:
			case <-ctx.Done():
				readErr <- ctx.Err()
				return
			}
			if order != nil {
				select {
				case order <- j:
				case <-ctx.Done():
					readErr <- ctx.Err()
					return
				}
			}
		}
		readErr <- sc.Err()
	}()

	// Workers. Each carries its own Checker (Checker is cheap; the
	// shared state that matters — cache, singleflight — lives in the
	// resolver). In ordered mode workers drain jobs unconditionally:
	// res has capacity one, so delivery never blocks and every job the
	// writer holds is guaranteed a result even mid-cancellation.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			checker := &spf.Checker{Resolver: e.cfg.Resolver, Options: e.cfg.SPF}
			for j := range jobs {
				r := e.eval(ctx, checker, j)
				if order != nil {
					j.res <- r
					continue
				}
				select {
				case results <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	if results != nil {
		go func() {
			wg.Wait()
			close(results)
		}()
	}

	// Writer (this goroutine). A downstream write error cancels the
	// pipeline but keeps draining so the reader and workers can exit.
	start := time.Now()
	stats := Stats{Results: make(map[spf.Result]uint64)}
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	var werr error
	emit := func(r Result) {
		stats.Results[r.Result]++
		if r.Err != "" {
			stats.Errored++
		} else {
			stats.Evaluated++
		}
		if werr == nil {
			if werr = enc.Encode(r); werr != nil {
				cancel()
			}
		}
	}
	if order != nil {
		for j := range order {
			emit(<-j.res)
		}
	} else {
		for r := range results {
			emit(r)
		}
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	if err := bw.Flush(); werr == nil {
		werr = err
	}
	if err := <-readErr; err != nil {
		return stats, err
	}
	if werr != nil {
		return stats, fmt.Errorf("bulkspf: writing results: %w", werr)
	}
	return stats, nil
}

// eval turns one input line into a Result.
func (e *Evaluator) eval(ctx context.Context, c *spf.Checker, j *job) Result {
	r := Result{Seq: j.seq}
	fail := func(msg string) Result {
		r.Result = spf.PermError
		r.Err = msg
		e.metrics.errored.Inc()
		return r
	}
	var tup Tuple
	if err := json.Unmarshal(j.line, &tup); err != nil {
		return fail("bad tuple: " + err.Error())
	}
	r.IP = tup.IP
	ip, err := netip.ParseAddr(tup.IP)
	if err != nil {
		return fail("bad ip: " + err.Error())
	}
	domain := tup.Domain
	if domain == "" {
		domain = smtp.DomainOf(tup.MailFrom)
	}
	if domain == "" {
		return fail("no domain: need domain, or mail_from with one")
	}
	helo := tup.Helo
	if helo == "" {
		helo = domain
	}
	sender := tup.MailFrom
	if sender == "" {
		// check_host() with an empty MAIL FROM uses postmaster@helo
		// (RFC 7208 §2.4); make the synthesized sender explicit in the
		// output so joins against the input stay unambiguous.
		sender = "postmaster@" + helo
	}
	tctx, sp := e.cfg.Tracer.Start(ctx, "bulkspf.tuple")
	if sp != nil {
		sp.SetInt("seq", int64(j.seq))
		sp.SetAttr("domain", domain)
		sp.SetAttr("ip", tup.IP)
	}
	began := time.Now()
	out := c.CheckHost(tctx, ip, domain, sender, helo)
	elapsed := time.Since(began)
	if sp != nil {
		sp.SetAttr("result", string(out.Result))
		sp.SetError(out.Err)
	}
	e.metrics.latency.ObserveExemplar(elapsed.Seconds(), sp.ExemplarID())
	sp.End()
	e.metrics.evaluated.Inc()
	r.Domain, r.MailFrom, r.Helo = domain, sender, helo
	r.Result = out.Result
	r.Explanation = out.Explanation
	r.Lookups = out.Lookups
	r.VoidLookups = out.VoidLookups
	if out.Err != nil {
		r.Detail = out.Err.Error()
	}
	r.Micros = elapsed.Microseconds()
	return r
}
