package bulkspf

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/netip"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/leaktest"
	"sendervalid/internal/netsim"
	"sendervalid/internal/resolver"
	"sendervalid/internal/spf"
	"sendervalid/internal/trace"
)

// chaosSeed returns the fault seed: CHAOS_SEED when set (the same knob
// as `make chaos`), else the default, always logged for reproduction.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(42)
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("CHAOS_SEED=%d (override with the env var to reproduce)", seed)
	return seed
}

// fabricDNS serves a static TXT zone over fabric datagram connections:
// one read is one query (the fabric preserves datagram framing), so a
// reply per read and close. Lost datagrams surface to the resolver as
// read timeouts, which its retry loop absorbs.
func fabricDNS(t *testing.T, ln *netsim.Listener, txt map[string]string) {
	t.Helper()
	serveConn := func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, 4096)
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			var req dns.Message
			if err := req.Unpack(buf[:n]); err != nil {
				continue
			}
			q := req.Question()
			resp := new(dns.Message).SetReply(&req)
			resp.Authoritative = true
			name := dns.CanonicalName(q.Name)
			rec, ok := txt[name]
			switch {
			case !ok:
				resp.RCode = dns.RCodeNameError
			case q.Type == dns.TypeTXT:
				resp.Answers = []dns.RR{{
					Name: name, Type: dns.TypeTXT, Class: dns.ClassINET, TTL: 300,
					Data: &dns.TXT{Strings: []string{rec}},
				}}
			}
			pkt, err := resp.Pack()
			if err != nil {
				continue
			}
			if _, err := conn.Write(pkt); err != nil {
				return
			}
		}
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serveConn(conn)
		}
	}()
}

// TestBulkPipelineChaos runs the full bulk pipeline against a DNS
// server reached through a lossy, refusal-prone netsim fabric: every
// input line must still produce exactly one output line, worst case a
// temperror, and the run must not leak goroutines. This is the -race
// leg `make check` runs via the bulk-race target.
func TestBulkPipelineChaos(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	seed := chaosSeed(t)

	fabric := netsim.NewFabric()
	fabric.SetChaosSeed(seed)
	dnsAddr := netip.MustParseAddrPort("192.0.2.53:53")
	ln, err := fabric.Listen(dnsAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })

	const domains = 12
	zone := make(map[string]string, domains)
	for i := 0; i < domains; i++ {
		policy := "v=spf1 ip4:203.0.113.0/24 -all"
		if i%3 == 0 {
			policy = "v=spf1 -all"
		}
		zone[fmt.Sprintf("d%02d.chaos.example.", i)] = policy
	}
	fabricDNS(t, ln, zone)

	// Faults on every path between the stub resolver and the server:
	// dropped datagrams (queries and replies), refused dials, jitter.
	fabric.SetDefaultFaults(&netsim.FaultProfile{
		DialFailure: 0.05,
		Loss:        0.12,
		Jitter:      2 * time.Millisecond,
	})

	r := resolver.New(resolver.Config{
		Server:     dnsAddr.String(),
		Dialer:     fabric,
		DisableTCP: true,
		Timeout:    150 * time.Millisecond,
		MaxRetries: 5,
	})

	const tuples = 150
	var in bytes.Buffer
	for i := 0; i < tuples; i++ {
		ip := "203.0.113.9" // in the pass range
		if i%2 == 1 {
			ip = "198.51.100.9"
		}
		fmt.Fprintf(&in, `{"ip":%q,"mail_from":"u%d@d%02d.chaos.example"}`+"\n",
			ip, i, i%domains)
	}

	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stats, err := New(Config{Resolver: r, Workers: 6}).Run(ctx, &in, &out)
	if err != nil {
		t.Fatalf("Run under chaos: %v", err)
	}

	var results []Result
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var res Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad output line %q: %v", sc.Text(), err)
		}
		results = append(results, res)
	}
	if len(results) != tuples {
		t.Fatalf("chaos run emitted %d results for %d tuples", len(results), tuples)
	}
	var temperrors int
	for i, res := range results {
		if res.Seq != i {
			t.Fatalf("result %d has seq %d; ordered output required", i, res.Seq)
		}
		switch res.Result {
		case spf.Pass, spf.Fail:
		case spf.TempError:
			temperrors++
		default:
			t.Errorf("seq %d: unexpected result %q (detail %q err %q)",
				res.Seq, res.Result, res.Detail, res.Err)
		}
	}
	if stats.Evaluated != tuples {
		t.Errorf("stats.Evaluated = %d, want %d", stats.Evaluated, tuples)
	}
	t.Logf("chaos run: %d tuples, %d temperror, results %v, elapsed %v",
		tuples, temperrors, stats.Results, stats.Elapsed)
	if temperrors == tuples {
		t.Error("every tuple temperrored; the retry path absorbed nothing")
	}
}

// lockedBuffer is a mutex-guarded bytes.Buffer usable as a tracer
// Output while the test reads it back after Close.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestBulkPipelineChaosTraced re-runs the chaos pipeline with tracing
// at sample=1.0: every tuple must still produce its result line, every
// tuple must export a bulkspf.tuple root span, resolver spans must
// share their parents' trace IDs, and closing the tracer must leave no
// goroutines behind (leak-checked). This is the fault-injection leg of
// the tracing subsystem's -race coverage (`make trace-race`).
func TestBulkPipelineChaosTraced(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	seed := chaosSeed(t)

	fabric := netsim.NewFabric()
	fabric.SetChaosSeed(seed)
	dnsAddr := netip.MustParseAddrPort("192.0.2.53:53")
	ln, err := fabric.Listen(dnsAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })

	const domains = 8
	zone := make(map[string]string, domains)
	for i := 0; i < domains; i++ {
		zone[fmt.Sprintf("d%02d.traced.example.", i)] = "v=spf1 ip4:203.0.113.0/24 -all"
	}
	fabricDNS(t, ln, zone)
	fabric.SetDefaultFaults(&netsim.FaultProfile{
		DialFailure: 0.05,
		Loss:        0.12,
		Jitter:      2 * time.Millisecond,
	})

	r := resolver.New(resolver.Config{
		Server:     dnsAddr.String(),
		Dialer:     fabric,
		DisableTCP: true,
		Timeout:    150 * time.Millisecond,
		MaxRetries: 5,
	})

	spans := &lockedBuffer{}
	tracer := trace.New(trace.Config{
		SampleRate:    1,
		SlowThreshold: 50 * time.Millisecond,
		Output:        spans,
	})

	const tuples = 60
	var in bytes.Buffer
	for i := 0; i < tuples; i++ {
		fmt.Fprintf(&in, `{"ip":"203.0.113.9","mail_from":"u%d@d%02d.traced.example"}`+"\n",
			i, i%domains)
	}

	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stats, err := New(Config{Resolver: r, Workers: 6, Tracer: tracer}).Run(ctx, &in, &out)
	if err != nil {
		t.Fatalf("traced run under chaos: %v", err)
	}
	if stats.Evaluated != tuples {
		t.Errorf("stats.Evaluated = %d, want %d", stats.Evaluated, tuples)
	}
	if err := tracer.Close(); err != nil {
		t.Fatalf("tracer Close: %v", err)
	}

	lines := 0
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		lines++
	}
	if lines != tuples {
		t.Fatalf("traced chaos run emitted %d results for %d tuples", lines, tuples)
	}

	// Decode the span stream: one root per tuple, resolver spans nested
	// inside known traces.
	roots := map[string]int{} // trace ID -> bulkspf.tuple roots
	total, resolverSpans, orphaned := 0, 0, 0
	ssc := bufio.NewScanner(bytes.NewReader(spans.Bytes()))
	ssc.Buffer(make([]byte, 64*1024), 1<<20)
	for ssc.Scan() {
		rec, err := trace.ParseRecord(ssc.Bytes())
		if err != nil {
			t.Fatalf("undecodable span line %q: %v", ssc.Text(), err)
		}
		total++
		switch {
		case rec.Name == "bulkspf.tuple":
			if rec.Parent != "" {
				t.Errorf("bulkspf.tuple span %s has parent %s, want root", rec.Span, rec.Parent)
			}
			roots[rec.Trace]++
		case rec.Family() == "resolver":
			resolverSpans++
			if rec.Parent == "" {
				orphaned++
			}
		}
	}
	if err := ssc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(roots) != tuples {
		t.Errorf("span stream holds %d distinct tuple traces, want %d (total %d spans)",
			len(roots), tuples, total)
	}
	for id, n := range roots {
		if n != 1 {
			t.Errorf("trace %s has %d bulkspf.tuple roots, want 1", id, n)
		}
	}
	if resolverSpans == 0 {
		t.Error("no resolver spans exported under sample=1.0 chaos")
	}
	if orphaned > 0 {
		t.Errorf("%d resolver spans have no parent", orphaned)
	}
	t.Logf("traced chaos run: %d spans across %d traces, %d resolver spans",
		total, len(roots), resolverSpans)
}
