package trace

import (
	"time"
)

// Attribute and event capacity per span. Fixed arrays keep the
// unsampled path allocation-free; sites that exceed the capacity
// lose the overflow silently (spans are diagnostics, not records of
// truth — the query log is the record of truth).
const (
	maxAttrs  = 12
	maxEvents = 6
)

// attr is one key/value annotation. Integer values are kept as int64
// until serialization so SetInt never formats on the hot path.
type attr struct {
	k     string
	v     string
	i     int64
	isInt bool
}

// event is one timestamped point annotation.
type event struct {
	at  time.Time
	msg string
}

// Span is one timed operation. Spans are pooled: every span obtained
// from Start/StartSpan/Link.Start must be ended exactly once, and
// neither the span nor any context derived from it may be used after
// End. All methods are safe on a nil span and no-op.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	dur    time.Duration
	head   bool // head-sampling decision, inherited trace-wide
	why    string

	hasErr bool
	errMsg string

	nattrs  int
	attrs   [maxAttrs]attr
	nevents int
	events  [maxEvents]event

	exID  string // cached hex trace ID for exemplars
	ended bool

	ctx spanCtx
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// Sampled reports whether the span's trace was head-sampled. Slow and
// error spans export even when this is false.
func (s *Span) Sampled() bool { return s != nil && s.head }

// SetAttr records a string attribute. Attributes beyond the span's
// fixed capacity are dropped.
func (s *Span) SetAttr(k, v string) {
	if s == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = attr{k: k, v: v}
	s.nattrs++
}

// SetInt records an integer attribute without formatting it.
func (s *Span) SetInt(k string, v int64) {
	if s == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = attr{k: k, i: v, isInt: true}
	s.nattrs++
}

// Event records a timestamped point annotation. Events beyond the
// span's fixed capacity are dropped.
func (s *Span) Event(msg string) {
	if s == nil || s.nevents >= maxEvents {
		return
	}
	s.events[s.nevents] = event{at: time.Now(), msg: msg}
	s.nevents++
}

// SetError marks the span failed, promoting it to export regardless
// of sampling. A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.hasErr = true
	s.errMsg = err.Error()
}

// SetErrorMsg is SetError for call sites that carry the failure as a
// string. An empty message is ignored.
func (s *Span) SetErrorMsg(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.hasErr = true
	s.errMsg = msg
}

// ExemplarID returns the hex trace ID for use as a histogram
// exemplar, or "" when the span is nil or its trace unsampled — so
// wiring it into ObserveExemplar costs nothing when tracing is off.
// The rendering is cached on the span (one allocation per sampled
// span, amortized across its exemplar sites).
func (s *Span) ExemplarID() string {
	if s == nil || !s.head {
		return ""
	}
	if s.exID == "" {
		s.exID = s.trace.String()
	}
	return s.exID
}

// End finishes the span: it computes the duration, decides export
// (head-sampled, errored, or slower than the tracer's threshold),
// and either hands the span to the exporter or recycles it. The
// handoff is a non-blocking channel send — a saturated exporter
// drops the span (counted) rather than stalling the serving path.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.tracer
	s.dur = time.Since(s.start)
	slow := t.slow > 0 && s.dur >= t.slow
	if !s.head && !s.hasErr && !slow {
		t.recycle(s)
		return
	}
	switch {
	case s.head:
		s.why = ""
	case s.hasErr:
		s.why = "error"
		t.metrics.promotedErr.Inc()
	default:
		s.why = "slow"
		t.metrics.promotedSlow.Inc()
	}
	select {
	case t.ch <- s:
	default:
		t.metrics.dropped.Inc()
		t.recycle(s)
	}
}

// recycle clears every reference the span holds (so pooled spans pin
// neither contexts nor attribute strings) and returns it to the pool.
func (t *Tracer) recycle(s *Span) {
	s.ctx = spanCtx{}
	for i := range s.attrs[:s.nattrs] {
		s.attrs[i] = attr{}
	}
	for i := range s.events[:s.nevents] {
		s.events[i] = event{}
	}
	s.nattrs, s.nevents = 0, 0
	s.name, s.errMsg, s.exID, s.why = "", "", "", ""
	s.tracer = nil
	t.pool.Put(s)
}
