package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// refEncodeRecord is the reference encoder: exactly what a
// json.Encoder would emit for the Record struct, newline included.
func refEncodeRecord(r Record) ([]byte, error) {
	b, err := json.Marshal(&r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// refDecodeRecord is the reference decoder: plain encoding/json.
func refDecodeRecord(line []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		return Record{}, err
	}
	return r, nil
}

// sameTime compares wall-clock instant and zone identity, the
// equality encoding/json round-trips preserve.
func sameTime(t *testing.T, what string, got, want time.Time) {
	t.Helper()
	if !got.Equal(want) {
		t.Errorf("%s: got %v, want %v", what, got, want)
	}
	gName, gOff := got.Zone()
	wName, wOff := want.Zone()
	if gName != wName || gOff != wOff {
		t.Errorf("%s zone: got %q/%d, want %q/%d", what, gName, gOff, wName, wOff)
	}
}

// sameRecord compares decoded records the way the fuzz equivalence
// needs: timestamps by instant and zone, everything else (including
// nil-vs-empty slice identity) structurally.
func sameRecord(t *testing.T, got, want Record) {
	t.Helper()
	sameTime(t, "Start", got.Start, want.Start)
	got.Start, want.Start = time.Time{}, time.Time{}
	if len(got.Events) == len(want.Events) {
		for i := range got.Events {
			sameTime(t, "Event.T", got.Events[i].T, want.Events[i].T)
			got.Events[i].T, want.Events[i].T = time.Time{}, time.Time{}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("record mismatch:\n got %#v\nwant %#v", got, want)
	}
}

// FuzzTraceCodecEquivalence pins ParseRecord to the encoding/json
// reference: both must agree on success/failure, successful decodes
// must be identical, and re-encoding a decoded record through
// AppendRecordJSON must reproduce the reference encoder's bytes.
func FuzzTraceCodecEquivalence(f *testing.F) {
	f.Add([]byte(`{"trace":"0123456789abcdef0123456789abcdef","span":"0123456789abcdef","name":"resolver.exchange","start":"2026-08-08T12:00:00.123456789Z","dur_us":1500}`))
	f.Add([]byte(`{"trace":"00000000000000000000000000000001","span":"0000000000000001","parent":"00000000000000aa","name":"spf.mech","start":"2026-08-08T12:00:00+05:30","dur_us":0,"why":"slow","err":"deadline","attrs":[{"k":"dns.name","v":"a.example."},{"k":"n","v":"7"}],"events":[{"t":"2026-08-08T12:00:00Z","msg":"retry"}]}`))
	f.Add([]byte(`{"trace":"x","span":"y","name":"esc\"ape\\\/\u0041\u2028\ud83d\ude00","start":"2026-08-08T12:00:00Z","dur_us":-12}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"TRACE":"t","SpAn":"s","NAME":"fold","START":"2026-08-08T12:00:00Z","DUR_US":3}`))
	f.Add([]byte(`{"trace":"dup","trace":"wins","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":1}`))
	f.Add([]byte(`{"trace":null,"span":null,"name":null,"start":null,"dur_us":null,"attrs":null,"events":null}`))
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":1,"attrs":[]}`))
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":1,"attrs":[null,{"k":"a","v":"b","extra":1},{}]}`))
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":1,"attrs":[{"k":"a","v":"b"}],"attrs":null}`))
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":1,"events":[null,{"t":"2026-08-08T12:00:00Z","msg":"m"},{"MSG":"fold"}]}`))
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":1,"extra":{"a":[1,-2.5e3,{"b":null,"c":false}]}}`))
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:0`)) // truncated mid-timestamp
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":007}`))
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":1.5}`))
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":9223372036854775808}`))
	f.Add([]byte("{\"trace\":\"t\",\"span\":\"s\",\"name\":\"bad\xff\xfe\",\"start\":\"2026-08-08T12:00:00Z\",\"dur_us\":1}"))
	f.Add([]byte(`  {"trace":"t" , "span" : "s", "name":"ws", "start":"2026-08-08T12:00:00Z", "dur_us": 2 }  `))
	f.Add([]byte(`{"trace":"t","span":"s","name":"x","start":"2026-08-08T12:00:00Z","dur_us":1}{"trailing":1}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		if bytes.IndexByte(line, '\n') >= 0 {
			// The codec is handed single lines by construction; embedded
			// newlines never reach it. (The fast tier's optional-trailing-
			// newline acceptance is pinned separately below.)
			t.Skip()
		}
		got, gotErr := ParseRecord(line)
		want, wantErr := refDecodeRecord(line)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("decode disagreement on %q:\n codec: %+v, %v\n   ref: %+v, %v",
				line, got, gotErr, want, wantErr)
		}
		if gotErr != nil {
			return
		}
		sameRecord(t, got, want)

		refBytes, err := refEncodeRecord(got)
		if err != nil {
			t.Fatalf("reference re-encode failed: %v", err)
		}
		if gotBytes := AppendRecordJSON(nil, got); !bytes.Equal(gotBytes, refBytes) {
			t.Errorf("encode mismatch:\n codec %q\n   ref %q", gotBytes, refBytes)
		}
	})
}

// FuzzAppendRecordJSON pins the encoder against json.Marshal over
// arbitrary field contents — including invalid UTF-8 and the HTML
// characters encoding/json escapes — then round-trips the canonical
// bytes through both decoders. Canonical ASCII inputs drive the fast
// tier; everything else must bail cleanly to the generic parser with
// the same outcome.
func FuzzAppendRecordJSON(f *testing.F) {
	f.Add(int64(1754654400), int64(123456789), true,
		"0123456789abcdef0123456789abcdef", "0123456789abcdef", "00000000000000aa",
		"resolver.wire", int64(1500), "slow", "deadline exceeded", "dns.name", "a.example.", "retry")
	f.Add(int64(0), int64(0), false, "", "", "", "", int64(0), "", "", "", "", "")
	f.Add(int64(-62135596800), int64(1), true, "a\"b\\c\u2028d", "<f>&g", "\xff\xfe",
		"né.é", int64(-1), "\x00\x1f", "\xed\xa0\x80", "é", "\b\f\r\t", "m\u2029")
	f.Fuzz(func(t *testing.T, sec, nsec int64, utc bool,
		trace, span, parent, name string, durUS int64, why, errMsg, attrK, attrV, eventMsg string) {
		sec &= 0x3FFFFFFFF // keep the year within RFC 3339's range
		nsec = (nsec%1e9 + 1e9) % 1e9
		loc := time.FixedZone("", 19800)
		if utc {
			loc = time.UTC
		}
		r := Record{
			Trace: trace, Span: span, Parent: parent, Name: name,
			Start: time.Unix(sec, nsec).In(loc), DurUS: durUS,
			Why: why, Err: errMsg,
		}
		if attrK != "" {
			r.Attrs = []Attr{{K: attrK, V: attrV}, {}}
		}
		if eventMsg != "" {
			r.Events = []Event{{T: r.Start, Msg: eventMsg}}
		}
		refBytes, err := refEncodeRecord(r)
		if err != nil {
			t.Skip() // unreachable for in-range years; guard anyway
		}
		gotBytes := AppendRecordJSON(nil, r)
		if !bytes.Equal(gotBytes, refBytes) {
			t.Errorf("encode mismatch:\n codec %q\n   ref %q", gotBytes, refBytes)
		}
		ref, refErr := refDecodeRecord(gotBytes)
		got, gotErr := ParseRecord(gotBytes)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("roundtrip error mismatch: codec %v, ref %v (line %q)", gotErr, refErr, gotBytes)
		}
		if refErr == nil {
			sameRecord(t, got, ref)
		}
	})
}

// TestParseRecordFastNewlineOptional pins that the fast tier accepts
// the encoder's lines with or without the trailing newline — scanner
// callers strip it, stream tails may not have one.
func TestParseRecordFastNewlineOptional(t *testing.T) {
	r := Record{
		Trace: "0123456789abcdef0123456789abcdef", Span: "0123456789abcdef",
		Name: "resolver.wire", Start: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		DurUS: 42, Attrs: []Attr{{K: "dns.name", V: "a.example."}},
	}
	line := AppendRecordJSON(nil, r)
	for _, in := range [][]byte{line, line[:len(line)-1]} {
		got, ok := parseRecordFast(in)
		if !ok {
			t.Fatalf("fast tier rejected canonical line %q", in)
		}
		sameRecord(t, got, r)
	}
}

// TestRecordFamilyAndAttr covers the accessors cmd/analyze and the
// debug handler filter on.
func TestRecordFamilyAndAttr(t *testing.T) {
	r := Record{Name: "resolver.wire", Attrs: []Attr{{K: "a", V: "1"}, {K: "b", V: "2"}}}
	if got := r.Family(); got != "resolver" {
		t.Errorf("Family() = %q, want resolver", got)
	}
	if got := (&Record{Name: "spfcheck"}).Family(); got != "spfcheck" {
		t.Errorf("dotless Family() = %q, want spfcheck", got)
	}
	if got := r.Attr("b"); got != "2" {
		t.Errorf("Attr(b) = %q", got)
	}
	if got := r.Attr("missing"); got != "" {
		t.Errorf("Attr(missing) = %q, want empty", got)
	}
}
