package trace

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// debugTracer builds a tracer with deterministic ring contents and
// counters: five recent spans (one errored, one slow-promoted, mixed
// families) and one slow-ring span, injected directly so no clock or
// sampler runs.
func debugTracer(t *testing.T) *Tracer {
	t.Helper()
	tr := New(Config{SampleRate: 0.25, SlowThreshold: 50 * time.Millisecond})
	t.Cleanup(func() { _ = tr.Close() })
	tr.metrics.started.Add(120)
	tr.metrics.sampled.Add(30)
	tr.metrics.exported.Add(33)
	tr.metrics.dropped.Add(1)
	tr.metrics.promotedSlow.Add(2)
	tr.metrics.promotedErr.Add(1)

	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	recs := []Record{
		{Trace: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa1", Span: "a000000000000001",
			Name: "spfcheck", Start: base, DurUS: 2100},
		{Trace: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa1", Span: "a000000000000002",
			Parent: "a000000000000001", Name: "spf.check_host", Start: base, DurUS: 2000,
			Attrs: []Attr{{K: "domain", V: "a.example"}, {K: "lookups", V: "3"}}},
		{Trace: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa1", Span: "a000000000000003",
			Parent: "a000000000000002", Name: "resolver.exchange", Start: base, DurUS: 1800,
			Attrs:  []Attr{{K: "dns.name", V: "a.example."}, {K: "dns.type", V: "TXT"}},
			Events: []Event{{T: base, Msg: "retry"}}},
		{Trace: "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb2", Span: "b000000000000001",
			Name: "probe.smtp", Start: base.Add(time.Second), DurUS: 900,
			Why: "error", Err: "connection refused"},
		{Trace: "ccccccccccccccccccccccccccccccc3", Span: "c000000000000001",
			Name: "resolver.wire", Start: base.Add(2 * time.Second), DurUS: 75000,
			Why: "slow"},
	}
	for _, r := range recs {
		tr.recent.add(r)
	}
	tr.slowRing.add(recs[4])
	return tr
}

// debugRegistry holds one histogram with an exemplar, for the
// exemplars section.
func debugRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	h := telemetry.NewHistogram([]float64{0.01, 0.1, 1})
	h.ObserveExemplar(0.075, "ccccccccccccccccccccccccccccccc3")
	reg.MustHistogram("resolver_wire_seconds", "Wire latency.", h)
	return reg
}

// TestDebugTracesGolden pins the /debug/traces document: the header
// counters, newest-first ring ordering, the min-duration and family
// filters, the per-section cap, and the exemplars section.
func TestDebugTracesGolden(t *testing.T) {
	tr := debugTracer(t)
	reg := debugRegistry()

	var b strings.Builder
	section := func(title string, min time.Duration, family string, n int, reg *telemetry.Registry) {
		fmt.Fprintf(&b, "==== %s ====\n", title)
		tr.writeDebug(&b, min, family, n, reg)
		fmt.Fprintln(&b)
	}
	section("default", 0, "", 50, reg)
	section("min=50ms", 50*time.Millisecond, "", 50, nil)
	section("family=resolver", 0, "resolver", 50, nil)
	section("n=2", 0, "", 2, nil)
	section("family=nomatch", 0, "smtp", 50, nil)
	got := b.String()

	path := filepath.Join("testdata", "debug.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("/debug/traces drifted from golden file (run with -update to regenerate)\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestDebugHandlerQueryParams drives the HTTP layer: parameter
// parsing, rejection of bad values, and that filters reach writeDebug.
func TestDebugHandlerQueryParams(t *testing.T) {
	tr := debugTracer(t)
	h := tr.DebugHandler(nil)

	for _, tc := range []struct {
		url      string
		status   int
		contains string
		excludes string
	}{
		{"/debug/traces", 200, "resolver.wire", ""},
		{"/debug/traces?min=50ms", 200, "resolver.wire", "probe.smtp"},
		{"/debug/traces?family=probe", 200, "probe.smtp", "spf.check_host"},
		{"/debug/traces?n=1", 200, "resolver.wire", "probe.smtp"},
		{"/debug/traces?min=banana", 400, "", ""},
		{"/debug/traces?n=0", 400, "", ""},
		{"/debug/traces?n=x", 400, "", ""},
	} {
		req := httptest.NewRequest("GET", tc.url, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != tc.status {
			t.Errorf("%s: status %d, want %d", tc.url, rw.Code, tc.status)
			continue
		}
		body := rw.Body.String()
		if tc.contains != "" && !strings.Contains(body, tc.contains) {
			t.Errorf("%s: body missing %q:\n%s", tc.url, tc.contains, body)
		}
		if tc.excludes != "" && strings.Contains(body, tc.excludes) {
			t.Errorf("%s: body unexpectedly contains %q:\n%s", tc.url, tc.excludes, body)
		}
	}
}
