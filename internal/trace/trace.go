// Package trace is a stdlib-only span tracer for the serving and
// evaluation hot paths: 128-bit trace IDs, parent/child spans with
// bounded attributes and events, head-based probabilistic sampling
// with tail promotion for errors and slow spans, and a non-blocking
// bounded exporter that writes JSONL span records (through any
// io.Writer — in practice an internal/wal WAL, one record per Write).
//
// The design constraint is the same one internal/telemetry lives
// under: instrumentation is compiled into every hot path and must
// cost nothing when idle. A nil *Tracer is fully functional (every
// method no-ops and Start returns a nil *Span, whose methods also
// no-op), so call sites never guard; an enabled tracer's unsampled
// path recycles spans through a sync.Pool and stores the context
// linkage inside the pooled span itself, so starting and ending an
// unsampled span performs zero heap allocations. Sampled spans pay
// for serialization only in the exporter goroutine, never inline.
//
// A span handed to End (and any context derived from it via Start)
// must not be used afterwards: spans are pooled and End recycles
// them. Cross-goroutine fan-out uses Span.Link, a value snapshot of
// the span's identity that survives the parent's recycling.
package trace

import (
	"context"
	"encoding/hex"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"sendervalid/internal/telemetry"
)

// TraceID identifies one trace: 128 random bits, hex-rendered.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// SpanID identifies one span within a trace: 64 random bits.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	var b [16]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// Config configures a Tracer.
type Config struct {
	// SampleRate is the head-sampling probability for new traces, in
	// [0, 1]. Zero samples nothing (error/slow tail promotion still
	// applies); 1 samples everything.
	SampleRate float64
	// SlowThreshold promotes any span at least this slow to export
	// even when its trace was not head-sampled, and admits it to the
	// slow-span ring. Zero disables slow promotion.
	SlowThreshold time.Duration
	// Output receives one serialized JSONL record per exported span.
	// Writes happen on the exporter goroutine only, one record per
	// Write call — exactly the contract (*wal.WAL).Write offers. Nil
	// keeps spans in the in-memory rings only.
	Output io.Writer
	// BufferDepth bounds spans queued for the exporter. When the
	// queue is full finished spans are dropped (counted), never
	// blocked on. Zero means 1024.
	BufferDepth int
	// RecentSpans sizes the in-memory ring of recently exported
	// spans served by /debug/traces. Zero means 256.
	RecentSpans int
	// SlowSpans sizes the slow-span ring. Zero means 64.
	SlowSpans int
}

// Tracer creates and exports spans. Create with New; a nil *Tracer
// is a valid disabled tracer.
type Tracer struct {
	sampleRate float64
	slow       time.Duration
	out        io.Writer

	pool sync.Pool
	ch   chan *Span
	stop chan struct{}
	done chan struct{}

	closed atomic.Bool

	recent   *recordRing
	slowRing *recordRing

	metrics tracerMetrics
}

// tracerMetrics are the tracer's always-on instruments, published by
// RegisterMetrics.
type tracerMetrics struct {
	started      telemetry.Counter // spans started
	sampled      telemetry.Counter // root spans head-sampled
	exported     telemetry.Counter // spans serialized (or ringed)
	dropped      telemetry.Counter // finished spans dropped on a full queue
	promotedSlow telemetry.Counter // unsampled spans exported for slowness
	promotedErr  telemetry.Counter // unsampled spans exported for an error
	writeErrs    telemetry.Counter // exporter Output write failures
}

// New creates a Tracer from cfg and starts its exporter goroutine.
// Call Close to flush and stop it.
func New(cfg Config) *Tracer {
	depth := cfg.BufferDepth
	if depth <= 0 {
		depth = 1024
	}
	recent := cfg.RecentSpans
	if recent <= 0 {
		recent = 256
	}
	slowN := cfg.SlowSpans
	if slowN <= 0 {
		slowN = 64
	}
	t := &Tracer{
		sampleRate: cfg.SampleRate,
		slow:       cfg.SlowThreshold,
		out:        cfg.Output,
		ch:         make(chan *Span, depth),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		recent:     newRecordRing(recent),
		slowRing:   newRecordRing(slowN),
	}
	t.pool.New = func() any { return new(Span) }
	go t.exporter()
	return t
}

// Close drains queued spans, stops the exporter, and returns. Spans
// ended after Close are dropped (the exporter queue is never closed,
// so late End calls stay safe). Close is idempotent and safe on a
// nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if !t.closed.CompareAndSwap(false, true) {
		<-t.done
		return nil
	}
	close(t.stop)
	<-t.done
	return nil
}

// sampleHead makes the head-sampling decision for a new trace.
func (t *Tracer) sampleHead() bool {
	if t.sampleRate >= 1 {
		return true
	}
	if t.sampleRate <= 0 {
		return false
	}
	return rand.Float64() < t.sampleRate
}

// newTraceID returns 128 random bits.
func newTraceID() TraceID {
	var id TraceID
	a, b := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(a >> (8 * i))
		id[8+i] = byte(b >> (8 * i))
	}
	return id
}

// newSpanID returns 64 random bits.
func newSpanID() SpanID {
	var id SpanID
	v := rand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (8 * i))
	}
	return id
}

// newSpan takes a span from the pool and initializes the fields every
// span needs; identity fields are the caller's.
func (t *Tracer) newSpan(name string) *Span {
	s := t.pool.Get().(*Span)
	s.tracer = t
	s.name = name
	s.start = time.Now()
	s.id = newSpanID()
	s.parent = SpanID{}
	s.head = false
	s.hasErr = false
	s.errMsg = ""
	s.nattrs = 0
	s.nevents = 0
	s.exID = ""
	s.ended = false
	t.metrics.started.Inc()
	return s
}

// Start begins a new root span (a fresh trace) and returns a context
// carrying it for child spans. On a nil tracer it returns (ctx, nil).
// The returned context is only valid until the span's End.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.newSpan(name)
	s.trace = newTraceID()
	if s.head = t.sampleHead(); s.head {
		t.metrics.sampled.Inc()
	}
	s.ctx = spanCtx{Context: ctx, sp: s}
	return &s.ctx, s
}

// StartSpan begins a detached root span with no context linkage — for
// call sites that have no context to thread (the DNS packet loop).
// Child spans hang off it via Span.Link. Nil tracer returns nil.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := t.newSpan(name)
	s.trace = newTraceID()
	if s.head = t.sampleHead(); s.head {
		t.metrics.sampled.Inc()
	}
	return s
}

// ctxKey keys the current span in a context.
type ctxKey struct{}

// spanCtx carries a span without a context.WithValue allocation: it
// lives inside the pooled Span, so deriving a child context costs
// nothing. It is invalidated when its span ends.
type spanCtx struct {
	context.Context
	sp *Span
}

// Value returns the embedded span for the trace key and defers to the
// parent context otherwise.
func (c *spanCtx) Value(key any) any {
	if _, ok := key.(ctxKey); ok {
		return c.sp
	}
	return c.Context.Value(key)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start begins a child of the span carried by ctx. When ctx carries
// no span (or tracing is disabled) it returns (ctx, nil) — the
// nil-span methods then no-op, so call sites never branch.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tracer.newSpan(name)
	s.trace = parent.trace
	s.parent = parent.id
	s.head = parent.head
	s.ctx = spanCtx{Context: ctx, sp: s}
	return &s.ctx, s
}

// Link is a value snapshot of a span's identity, safe to hand to
// another goroutine after the span itself has ended and been
// recycled. The zero Link starts nil spans.
type Link struct {
	tracer *Tracer
	trace  TraceID
	parent SpanID
	head   bool
}

// Link snapshots the span's identity for cross-goroutine children.
func (s *Span) Link() Link {
	if s == nil {
		return Link{}
	}
	return Link{tracer: s.tracer, trace: s.trace, parent: s.id, head: s.head}
}

// Start begins a child span under the linked parent. A zero Link
// returns nil.
func (l Link) Start(name string) *Span {
	if l.tracer == nil {
		return nil
	}
	s := l.tracer.newSpan(name)
	s.trace = l.trace
	s.parent = l.parent
	s.head = l.head
	return s
}
