package trace

import (
	"bytes"
	"strconv"
	"strings"
	"time"

	"sendervalid/internal/jsonwire"
)

// The span stream's JSONL wire format, defined (like the query log
// and the campaign journal) to be exactly what encoding/json would
// produce for the Record struct — fuzz tests pin the equivalence
// byte for byte:
//
//	{"trace":<32hex>,"span":<16hex>,"parent":<16hex,omitempty>,
//	 "name":<string>,"start":<RFC3339Nano>,"dur_us":<int>,
//	 "why":<string,omitempty>,"err":<string,omitempty>,
//	 "attrs":<[]Attr,omitempty>,"events":<[]Event,omitempty>}
//
// one record per line. Encoding goes through a hand-rolled append
// path (no reflection) on the exporter goroutine; decoding is
// two-tier like the query-log codec — a fast scanner for the
// canonical bytes this encoder emits, with a generic jsonwire.Doc
// parser as the authority for foreign or hand-edited files.

// Record is one exported span as serialized to the span stream.
type Record struct {
	Trace  string    `json:"trace"`
	Span   string    `json:"span"`
	Parent string    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	DurUS  int64     `json:"dur_us"`
	// Why says how an unsampled span earned export: "slow" or
	// "error". Head-sampled spans leave it empty.
	Why    string  `json:"why,omitempty"`
	Err    string  `json:"err,omitempty"`
	Attrs  []Attr  `json:"attrs,omitempty"`
	Events []Event `json:"events,omitempty"`
}

// Attr is one serialized span attribute.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Event is one serialized span event.
type Event struct {
	T   time.Time `json:"t"`
	Msg string    `json:"msg"`
}

// Family returns the span-name prefix before the first dot — the
// instrumented subsystem ("resolver", "spf", "dns", ...).
func (r *Record) Family() string {
	if i := strings.IndexByte(r.Name, '.'); i >= 0 {
		return r.Name[:i]
	}
	return r.Name
}

// Attr returns the value of the named attribute, or "".
func (r *Record) Attr(k string) string {
	for _, a := range r.Attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// AppendRecordJSON encodes r as one span-stream JSON line — trailing
// newline included — and appends it to dst. The bytes before the
// newline are identical to json.Marshal(r). Timestamps are assumed
// to be in the RFC 3339 year range [0,9999], always true for
// clock-derived or stream-parsed times.
func AppendRecordJSON(dst []byte, r Record) []byte {
	dst = append(dst, `{"trace":`...)
	dst = jsonwire.AppendString(dst, r.Trace)
	dst = append(dst, `,"span":`...)
	dst = jsonwire.AppendString(dst, r.Span)
	if r.Parent != "" {
		dst = append(dst, `,"parent":`...)
		dst = jsonwire.AppendString(dst, r.Parent)
	}
	dst = append(dst, `,"name":`...)
	dst = jsonwire.AppendString(dst, r.Name)
	dst = append(dst, `,"start":`...)
	dst = jsonwire.AppendTime(dst, r.Start)
	dst = append(dst, `,"dur_us":`...)
	dst = strconv.AppendInt(dst, r.DurUS, 10)
	if r.Why != "" {
		dst = append(dst, `,"why":`...)
		dst = jsonwire.AppendString(dst, r.Why)
	}
	if r.Err != "" {
		dst = append(dst, `,"err":`...)
		dst = jsonwire.AppendString(dst, r.Err)
	}
	if len(r.Attrs) > 0 {
		dst = append(dst, `,"attrs":[`...)
		for i, a := range r.Attrs {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"k":`...)
			dst = jsonwire.AppendString(dst, a.K)
			dst = append(dst, `,"v":`...)
			dst = jsonwire.AppendString(dst, a.V)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(r.Events) > 0 {
		dst = append(dst, `,"events":[`...)
		for i, e := range r.Events {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"t":`...)
			dst = jsonwire.AppendTime(dst, e.T)
			dst = append(dst, `,"msg":`...)
			dst = jsonwire.AppendString(dst, e.Msg)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}', '\n')
}

// recordFieldNames lists the wire keys for fold matching
// (encoding/json matches keys case-insensitively when no exact field
// matches).
var recordFieldNames = [][]byte{
	[]byte("trace"), []byte("span"), []byte("parent"), []byte("name"),
	[]byte("start"), []byte("dur_us"), []byte("why"), []byte("err"),
	[]byte("attrs"), []byte("events"),
}

// matchRecordKey resolves a decoded object key to a field index in
// recordFieldNames, or -1.
func matchRecordKey(key []byte) int {
	switch string(key) {
	case "trace":
		return 0
	case "span":
		return 1
	case "parent":
		return 2
	case "name":
		return 3
	case "start":
		return 4
	case "dur_us":
		return 5
	case "why":
		return 6
	case "err":
		return 7
	case "attrs":
		return 8
	case "events":
		return 9
	}
	for i, name := range recordFieldNames {
		if bytes.EqualFold(key, name) {
			return i
		}
	}
	return -1
}

// decodeString parses a string value (or null) into dst; null leaves
// the previous value untouched, as encoding/json does.
func decodeString(d *jsonwire.Doc, dst *string) error {
	d.WS()
	if isNull, err := d.TryNull(); isNull || err != nil {
		return err
	}
	b, err := d.ReadString(nil)
	if err != nil {
		return err
	}
	*dst = string(b)
	return nil
}

// decodeTime parses a timestamp value (or null) into dst.
// time.Time.UnmarshalJSON parses the raw quoted content without
// unescaping; so does this.
func decodeTime(d *jsonwire.Doc, dst *time.Time) error {
	d.WS()
	if isNull, err := d.TryNull(); isNull || err != nil {
		return err
	}
	raw, err := d.RawString()
	if err != nil {
		return err
	}
	t, err := jsonwire.ParseTime(raw)
	if err != nil {
		return err
	}
	*dst = t
	return nil
}

// ParseRecord decodes one span-stream line, accepting exactly what
// json.Unmarshal into a Record would accept.
func ParseRecord(line []byte) (Record, error) {
	if r, ok := parseRecordFast(line); ok {
		return r, nil
	}
	var r Record
	var d jsonwire.Doc
	var keyBuf []byte
	d.Init(line)
	d.WS()
	if isNull, err := d.TryNull(); err != nil {
		return Record{}, err
	} else if isNull {
		// json.Unmarshal accepts a null document as a zero record.
		if err := d.End(); err != nil {
			return Record{}, err
		}
		return Record{}, nil
	}
	if err := d.ObjectStart(); err != nil {
		return Record{}, err
	}
	for first := true; ; first = false {
		rawKey, more, err := d.NextKey(first)
		if err != nil {
			return Record{}, err
		}
		if !more {
			break
		}
		key := rawKey
		if bytes.IndexByte(rawKey, '\\') >= 0 {
			keyBuf = jsonwire.Unescape(keyBuf[:0], rawKey)
			key = keyBuf
		}
		switch matchRecordKey(key) {
		case 0:
			err = decodeString(&d, &r.Trace)
		case 1:
			err = decodeString(&d, &r.Span)
		case 2:
			err = decodeString(&d, &r.Parent)
		case 3:
			err = decodeString(&d, &r.Name)
		case 4:
			err = decodeTime(&d, &r.Start)
		case 5:
			d.WS()
			var isNull bool
			if isNull, err = d.TryNull(); err == nil && !isNull {
				r.DurUS, err = d.Int()
			}
		case 6:
			err = decodeString(&d, &r.Why)
		case 7:
			err = decodeString(&d, &r.Err)
		case 8:
			r.Attrs, err = parseAttrs(&d, r.Attrs)
		case 9:
			r.Events, err = parseEvents(&d, r.Events)
		default:
			err = d.SkipValue()
		}
		if err != nil {
			return Record{}, err
		}
	}
	if err := d.End(); err != nil {
		return Record{}, err
	}
	return r, nil
}

// parseAttrs decodes the attrs array (or null, which resets the
// slice to nil as encoding/json does).
func parseAttrs(d *jsonwire.Doc, prev []Attr) ([]Attr, error) {
	d.WS()
	if isNull, err := d.TryNull(); err != nil {
		return prev, err
	} else if isNull {
		return nil, nil
	}
	if err := d.ArrayStart(); err != nil {
		return prev, err
	}
	out := make([]Attr, 0, 4)
	for first := true; ; first = false {
		more, err := d.NextElem(first)
		if err != nil {
			return prev, err
		}
		if !more {
			return out, nil
		}
		var a Attr
		if err := parseAttr(d, &a); err != nil {
			return prev, err
		}
		out = append(out, a)
	}
}

// parseAttr decodes one attrs element: an object with k/v keys, or
// null (a zero Attr).
func parseAttr(d *jsonwire.Doc, a *Attr) error {
	d.WS()
	if isNull, err := d.TryNull(); isNull || err != nil {
		return err
	}
	if err := d.ObjectStart(); err != nil {
		return err
	}
	var keyBuf []byte
	for first := true; ; first = false {
		rawKey, more, err := d.NextKey(first)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		key := rawKey
		if bytes.IndexByte(rawKey, '\\') >= 0 {
			keyBuf = jsonwire.Unescape(keyBuf[:0], rawKey)
			key = keyBuf
		}
		switch {
		case string(key) == "k" || bytes.EqualFold(key, []byte("k")):
			err = decodeString(d, &a.K)
		case string(key) == "v" || bytes.EqualFold(key, []byte("v")):
			err = decodeString(d, &a.V)
		default:
			err = d.SkipValue()
		}
		if err != nil {
			return err
		}
	}
}

// parseEvents decodes the events array (or null).
func parseEvents(d *jsonwire.Doc, prev []Event) ([]Event, error) {
	d.WS()
	if isNull, err := d.TryNull(); err != nil {
		return prev, err
	} else if isNull {
		return nil, nil
	}
	if err := d.ArrayStart(); err != nil {
		return prev, err
	}
	out := make([]Event, 0, 4)
	for first := true; ; first = false {
		more, err := d.NextElem(first)
		if err != nil {
			return prev, err
		}
		if !more {
			return out, nil
		}
		var e Event
		if err := parseEvent(d, &e); err != nil {
			return prev, err
		}
		out = append(out, e)
	}
}

// parseEvent decodes one events element: an object with t/msg keys,
// or null (a zero Event).
func parseEvent(d *jsonwire.Doc, e *Event) error {
	d.WS()
	if isNull, err := d.TryNull(); isNull || err != nil {
		return err
	}
	if err := d.ObjectStart(); err != nil {
		return err
	}
	var keyBuf []byte
	for first := true; ; first = false {
		rawKey, more, err := d.NextKey(first)
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		key := rawKey
		if bytes.IndexByte(rawKey, '\\') >= 0 {
			keyBuf = jsonwire.Unescape(keyBuf[:0], rawKey)
			key = keyBuf
		}
		switch {
		case string(key) == "t" || bytes.EqualFold(key, []byte("t")):
			err = decodeTime(d, &e.T)
		case string(key) == "msg" || bytes.EqualFold(key, []byte("msg")):
			err = decodeString(d, &e.Msg)
		default:
			err = d.SkipValue()
		}
		if err != nil {
			return err
		}
	}
}

// fastScan tracks a cursor over a canonical-form line for the fast
// decode tier.
type fastScan struct {
	in []byte
	i  int
}

// lit consumes the exact literal s at the cursor.
func (f *fastScan) lit(s string) bool {
	if len(f.in)-f.i < len(s) || string(f.in[f.i:f.i+len(s)]) != s {
		return false
	}
	f.i += len(s)
	return true
}

// str consumes a plain quoted string (opening quote already part of
// the preceding literal) and returns its contents.
func (f *fastScan) str() (string, bool) {
	start := f.i
	for f.i < len(f.in) {
		c := f.in[f.i]
		if c == '"' {
			s := string(f.in[start:f.i])
			f.i++
			return s, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return "", false
		}
		f.i++
	}
	return "", false
}

// rawStr is str without materializing the contents.
func (f *fastScan) rawStr() ([]byte, bool) {
	start := f.i
	for f.i < len(f.in) {
		c := f.in[f.i]
		if c == '"' {
			b := f.in[start:f.i]
			f.i++
			return b, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, false
		}
		f.i++
	}
	return nil, false
}

// parseRecordFast decodes the canonical encoding AppendRecordJSON
// emits: fields in wire order, no interior whitespace, plain ASCII
// strings. ok=false means "not canonical", not "invalid" — the
// generic parser is the authority.
func parseRecordFast(line []byte) (Record, bool) {
	f := fastScan{in: line}
	if n := len(f.in); n > 0 && f.in[n-1] == '\n' {
		f.in = f.in[:n-1]
	}
	var r Record
	var ok bool
	if !f.lit(`{"trace":"`) {
		return r, false
	}
	if r.Trace, ok = f.str(); !ok {
		return r, false
	}
	if !f.lit(`,"span":"`) {
		return r, false
	}
	if r.Span, ok = f.str(); !ok {
		return r, false
	}
	if f.lit(`,"parent":"`) {
		if r.Parent, ok = f.str(); !ok {
			return r, false
		}
	}
	if !f.lit(`,"name":"`) {
		return r, false
	}
	if r.Name, ok = f.str(); !ok {
		return r, false
	}
	if !f.lit(`,"start":"`) {
		return r, false
	}
	raw, ok := f.rawStr()
	if !ok {
		return r, false
	}
	if r.Start, ok = jsonwire.TryParseTime(raw); !ok {
		return r, false
	}
	if !f.lit(`,"dur_us":`) {
		return r, false
	}
	if r.DurUS, ok = f.int(); !ok {
		return r, false
	}
	if f.lit(`,"why":"`) {
		if r.Why, ok = f.str(); !ok {
			return r, false
		}
	}
	if f.lit(`,"err":"`) {
		if r.Err, ok = f.str(); !ok {
			return r, false
		}
	}
	if f.lit(`,"attrs":[`) {
		for {
			var a Attr
			if !f.lit(`{"k":"`) {
				return r, false
			}
			if a.K, ok = f.str(); !ok {
				return r, false
			}
			if !f.lit(`,"v":"`) {
				return r, false
			}
			if a.V, ok = f.str(); !ok {
				return r, false
			}
			if !f.lit(`}`) {
				return r, false
			}
			r.Attrs = append(r.Attrs, a)
			if f.lit(`,`) {
				continue
			}
			if f.lit(`]`) {
				break
			}
			return r, false
		}
	}
	if f.lit(`,"events":[`) {
		for {
			var e Event
			if !f.lit(`{"t":"`) {
				return r, false
			}
			if raw, ok = f.rawStr(); !ok {
				return r, false
			}
			if e.T, ok = jsonwire.TryParseTime(raw); !ok {
				return r, false
			}
			if !f.lit(`,"msg":"`) {
				return r, false
			}
			if e.Msg, ok = f.str(); !ok {
				return r, false
			}
			if !f.lit(`}`) {
				return r, false
			}
			r.Events = append(r.Events, e)
			if f.lit(`,`) {
				continue
			}
			if f.lit(`]`) {
				break
			}
			return r, false
		}
	}
	if f.i != len(f.in)-1 || f.in[f.i] != '}' {
		return r, false
	}
	return r, true
}

// int consumes a canonical integer (optional '-', then either a lone
// 0 or a nonzero leading digit — the JSON number grammar, which
// rejects leading zeros) fitting int64.
func (f *fastScan) int() (int64, bool) {
	start := f.i
	if f.i < len(f.in) && f.in[f.i] == '-' {
		f.i++
	}
	digits := f.i
	for f.i < len(f.in) && f.in[f.i] >= '0' && f.in[f.i] <= '9' {
		f.i++
	}
	tok := f.in[digits:f.i]
	if len(tok) == 0 || (tok[0] == '0' && len(tok) > 1) {
		return 0, false
	}
	v, err := strconv.ParseInt(string(f.in[start:f.i]), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
