package trace

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"regexp"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/leaktest"
)

// syncBuffer is a locked bytes.Buffer usable as a tracer Output while
// the test also reads it before Close.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// collect closes the tracer (flushing the exporter) and decodes every
// exported record.
func collect(t *testing.T, tr *Tracer, out *syncBuffer) []Record {
	t.Helper()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var recs []Record
	sc := bufio.NewScanner(bytes.NewReader(out.Bytes()))
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		rec, err := ParseRecord(sc.Bytes())
		if err != nil {
			t.Fatalf("undecodable span line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	return recs
}

var hexTrace = regexp.MustCompile(`^[0-9a-f]{32}$`)
var hexSpan = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestNilTracerNoops pins the disabled-tracer contract every call site
// relies on: a nil *Tracer (and the nil spans it hands out) accepts
// the full API without branching or panicking.
func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	cctx, sp := tr.Start(ctx, "root")
	if cctx != ctx {
		t.Error("nil tracer Start must return the caller's context unchanged")
	}
	if sp != nil {
		t.Error("nil tracer Start must return a nil span")
	}
	if tr.StartSpan("detached") != nil {
		t.Error("nil tracer StartSpan must return nil")
	}
	if FromContext(ctx) != nil {
		t.Error("FromContext on a bare context must return nil")
	}
	if _, sp := Start(ctx, "child"); sp != nil {
		t.Error("package Start without a parent span must return nil")
	}
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.Event("e")
	sp.SetError(errors.New("x"))
	sp.SetErrorMsg("y")
	if sp.Sampled() {
		t.Error("nil span reports Sampled")
	}
	if id := sp.ExemplarID(); id != "" {
		t.Errorf("nil span ExemplarID = %q, want empty", id)
	}
	if !sp.TraceID().IsZero() {
		t.Error("nil span TraceID not zero")
	}
	if l := sp.Link(); l.Start("child") != nil {
		t.Error("zero Link must start nil spans")
	}
	sp.End()
	sp.End() // double End stays safe
	if err := tr.Close(); err != nil {
		t.Errorf("nil tracer Close: %v", err)
	}
}

// TestExporterRoundTrip drives sampled spans end to end: root and
// child via context, attrs (string and int), events, and an error —
// every record must come back parseable with the identity and
// annotation fields intact.
func TestExporterRoundTrip(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	out := &syncBuffer{}
	tr := New(Config{SampleRate: 1, Output: out})

	ctx, root := tr.Start(context.Background(), "spf.check")
	if root == nil || !root.Sampled() {
		t.Fatal("sample=1 root span not sampled")
	}
	if FromContext(ctx) != root {
		t.Fatal("context does not carry the root span")
	}
	rootTrace := root.TraceID().String()
	rootID := root.id.String()
	root.SetAttr("domain", "example.com")
	root.SetInt("lookups", 7)

	_, child := Start(ctx, "resolver.exchange")
	if child == nil {
		t.Fatal("child span nil under a sampled parent")
	}
	child.Event("retry")
	child.SetError(errors.New("boom"))
	child.End()
	root.End()

	recs := collect(t, tr, out)
	if len(recs) != 2 {
		t.Fatalf("exported %d records, want 2", len(recs))
	}
	// Export order is End order: child first.
	c, r := recs[0], recs[1]
	if c.Name != "resolver.exchange" || r.Name != "spf.check" {
		t.Fatalf("names = %q, %q", c.Name, r.Name)
	}
	if r.Trace != rootTrace || c.Trace != rootTrace {
		t.Errorf("trace IDs %q/%q, want both %q", r.Trace, c.Trace, rootTrace)
	}
	if !hexTrace.MatchString(r.Trace) || !hexSpan.MatchString(r.Span) {
		t.Errorf("malformed IDs trace=%q span=%q", r.Trace, r.Span)
	}
	if c.Parent != rootID {
		t.Errorf("child parent = %q, want %q", c.Parent, rootID)
	}
	if r.Parent != "" {
		t.Errorf("root has parent %q", r.Parent)
	}
	if got := r.Attr("domain"); got != "example.com" {
		t.Errorf("domain attr = %q", got)
	}
	if got := r.Attr("lookups"); got != "7" {
		t.Errorf("int attr serialized as %q, want \"7\"", got)
	}
	if c.Err != "boom" {
		t.Errorf("child err = %q", c.Err)
	}
	if len(c.Events) != 1 || c.Events[0].Msg != "retry" {
		t.Errorf("child events = %+v", c.Events)
	}
	if r.Why != "" || c.Why != "" {
		t.Errorf("head-sampled spans carry why=%q/%q, want empty", r.Why, c.Why)
	}
	if tr.metrics.exported.Value() != 2 {
		t.Errorf("exported counter = %d, want 2", tr.metrics.exported.Value())
	}
}

// TestUnsampledSpansNotExported pins that at sample rate 0 a clean,
// fast span is recycled without reaching the output.
func TestUnsampledSpansNotExported(t *testing.T) {
	out := &syncBuffer{}
	tr := New(Config{SampleRate: 0, Output: out})
	ctx, sp := tr.Start(context.Background(), "quiet")
	if sp.Sampled() {
		t.Fatal("sample=0 span head-sampled")
	}
	if id := sp.ExemplarID(); id != "" {
		t.Errorf("unsampled ExemplarID = %q, want empty", id)
	}
	_, child := Start(ctx, "quiet.child")
	child.End()
	sp.End()
	if recs := collect(t, tr, out); len(recs) != 0 {
		t.Fatalf("unsampled run exported %d records", len(recs))
	}
	if tr.metrics.started.Value() != 2 {
		t.Errorf("started counter = %d, want 2", tr.metrics.started.Value())
	}
}

// TestTailPromotionError: an unsampled span that fails is exported
// anyway, tagged why=error.
func TestTailPromotionError(t *testing.T) {
	out := &syncBuffer{}
	tr := New(Config{SampleRate: 0, Output: out})
	sp := tr.StartSpan("probe.smtp")
	sp.SetError(errors.New("connection refused"))
	sp.End()
	recs := collect(t, tr, out)
	if len(recs) != 1 {
		t.Fatalf("exported %d records, want 1", len(recs))
	}
	if recs[0].Why != "error" {
		t.Errorf("why = %q, want error", recs[0].Why)
	}
	if recs[0].Err != "connection refused" {
		t.Errorf("err = %q", recs[0].Err)
	}
	if tr.metrics.promotedErr.Value() != 1 {
		t.Errorf("promoted_err = %d, want 1", tr.metrics.promotedErr.Value())
	}
}

// TestTailPromotionSlow: an unsampled span over the slow threshold is
// exported tagged why=slow and admitted to the slow-span ring.
func TestTailPromotionSlow(t *testing.T) {
	out := &syncBuffer{}
	tr := New(Config{SampleRate: 0, SlowThreshold: time.Nanosecond, Output: out})
	sp := tr.StartSpan("dns.serve")
	time.Sleep(time.Microsecond)
	sp.End()
	recs := collect(t, tr, out)
	if len(recs) != 1 {
		t.Fatalf("exported %d records, want 1", len(recs))
	}
	if recs[0].Why != "slow" {
		t.Errorf("why = %q, want slow", recs[0].Why)
	}
	if tr.metrics.promotedSlow.Value() != 1 {
		t.Errorf("promoted_slow = %d, want 1", tr.metrics.promotedSlow.Value())
	}
	if slow := tr.slowRing.snapshot(); len(slow) != 1 || slow[0].Name != "dns.serve" {
		t.Errorf("slow ring = %+v, want the one slow span", slow)
	}
}

// TestLinkCrossGoroutine pins the resolver's fan-out shape: the parent
// span ends (and is recycled) before a goroutine starts a child from
// its Link, and the child still lands in the right trace under the
// right parent.
func TestLinkCrossGoroutine(t *testing.T) {
	out := &syncBuffer{}
	tr := New(Config{SampleRate: 1, Output: out})
	_, sp := tr.Start(context.Background(), "resolver.exchange")
	wantTrace := sp.TraceID().String()
	wantParent := sp.id.String()
	link := sp.Link()
	sp.End() // parent recycled before the child starts

	done := make(chan struct{})
	go func() {
		defer close(done)
		w := link.Start("resolver.wire")
		if w == nil {
			t.Error("Link.Start returned nil on a live tracer")
			return
		}
		if !w.Sampled() {
			t.Error("linked child did not inherit the sampling decision")
		}
		w.End()
	}()
	<-done

	recs := collect(t, tr, out)
	if len(recs) != 2 {
		t.Fatalf("exported %d records, want 2", len(recs))
	}
	var wire *Record
	for i := range recs {
		if recs[i].Name == "resolver.wire" {
			wire = &recs[i]
		}
	}
	if wire == nil {
		t.Fatal("no resolver.wire record exported")
	}
	if wire.Trace != wantTrace {
		t.Errorf("linked child trace = %q, want %q", wire.Trace, wantTrace)
	}
	if wire.Parent != wantParent {
		t.Errorf("linked child parent = %q, want %q", wire.Parent, wantParent)
	}
}

// TestExemplarIDStable: a sampled span renders its trace ID once and
// returns the same string thereafter.
func TestExemplarIDStable(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	defer tr.Close()
	sp := tr.StartSpan("x")
	id1 := sp.ExemplarID()
	if id1 != sp.TraceID().String() {
		t.Errorf("ExemplarID %q != TraceID %q", id1, sp.TraceID().String())
	}
	if id2 := sp.ExemplarID(); id2 != id1 {
		t.Errorf("ExemplarID changed between calls: %q then %q", id1, id2)
	}
	sp.End()
}

// TestAttrOverflowDropped: annotations beyond the fixed capacity are
// dropped silently, never reallocated.
func TestAttrOverflowDropped(t *testing.T) {
	out := &syncBuffer{}
	tr := New(Config{SampleRate: 1, Output: out})
	sp := tr.StartSpan("x")
	for i := 0; i < maxAttrs+5; i++ {
		sp.SetAttr(fmt.Sprintf("k%d", i), "v")
	}
	for i := 0; i < maxEvents+5; i++ {
		sp.Event("e")
	}
	sp.End()
	recs := collect(t, tr, out)
	if len(recs) != 1 {
		t.Fatalf("exported %d records", len(recs))
	}
	if len(recs[0].Attrs) != maxAttrs {
		t.Errorf("kept %d attrs, want %d", len(recs[0].Attrs), maxAttrs)
	}
	if len(recs[0].Events) != maxEvents {
		t.Errorf("kept %d events, want %d", len(recs[0].Events), maxEvents)
	}
}

// gateWriter blocks each Write until released, so a test can hold the
// exporter mid-record and fill its queue deterministically.
type gateWriter struct {
	entered chan struct{}
	release chan struct{}
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.entered <- struct{}{}
	<-g.release
	return len(p), nil
}

// TestFullQueueDropsNotBlocks pins End's non-blocking contract: with
// the exporter wedged in a Write and the queue full, further spans are
// dropped (counted) without stalling the caller.
func TestFullQueueDropsNotBlocks(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	g := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	tr := New(Config{SampleRate: 1, Output: g, BufferDepth: 1})

	tr.StartSpan("a").End() // exporter picks this up and blocks in Write
	<-g.entered
	tr.StartSpan("b").End() // sits in the queue
	tr.StartSpan("c").End() // queue full: dropped

	if got := tr.metrics.dropped.Value(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	close(g.release)
	go func() {
		for range g.entered { // let the drain's remaining Writes pass
		}
	}()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	close(g.entered)
	if got := tr.metrics.exported.Value(); got != 2 {
		t.Errorf("exported = %d, want 2", got)
	}
}

// TestCloseIdempotent: concurrent and repeated Close calls all return
// after the exporter stops, without panic or deadlock.
func TestCloseIdempotent(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	tr := New(Config{SampleRate: 1})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tr.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	// Spans ended after Close are dropped or queued, never panic.
	tr.StartSpan("late").End()
}

// TestRecordRingNewestFirst pins the snapshot order /debug/traces
// depends on, across the wrap boundary.
func TestRecordRingNewestFirst(t *testing.T) {
	r := newRecordRing(4)
	for i := 0; i < 6; i++ {
		r.add(Record{Name: fmt.Sprintf("s%d", i)})
	}
	got := r.snapshot()
	want := []string{"s5", "s4", "s3", "s2"}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Name != w {
			t.Errorf("snapshot[%d] = %q, want %q", i, got[i].Name, w)
		}
	}
}

// TestAllocDisabledTracer pins the zero-cost contract for a disabled
// (nil) tracer: the full span API — root, child via context, attrs,
// events, errors, exemplars — performs zero heap allocations. This is
// the guarantee that lets every hot path compile tracing in
// unconditionally. Run by `make telemetry-alloc`.
func TestAllocDisabledTracer(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	errBoom := errors.New("boom")
	allocs := testing.AllocsPerRun(1000, func() {
		cctx, sp := tr.Start(ctx, "root")
		sp.SetAttr("k", "v")
		sp.SetInt("n", 42)
		sp.Event("e")
		sp.SetError(errBoom)
		_ = sp.ExemplarID()
		_, child := Start(cctx, "child")
		child.End()
		_ = tr.StartSpan("detached")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled-tracer span lifecycle allocates %.1f times per op, want 0", allocs)
	}
}

// TestAllocUnsampledSpan pins the enabled-but-unsampled path: pooled
// spans and in-span context linkage mean a full root+child lifecycle
// that samples nothing allocates nothing. Run by `make telemetry-alloc`.
func TestAllocUnsampledSpan(t *testing.T) {
	tr := New(Config{SampleRate: 0})
	defer tr.Close()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		cctx, sp := tr.Start(ctx, "root")
		sp.SetAttr("k", "v")
		sp.SetInt("n", 42)
		_ = sp.ExemplarID()
		_, child := Start(cctx, "child")
		child.SetAttr("k2", "v2")
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("unsampled span lifecycle allocates %.1f times per op, want 0", allocs)
	}
}

// TestAllocLinkStartUnsampled extends the pin to the cross-goroutine
// path the resolver leader uses.
func TestAllocLinkStartUnsampled(t *testing.T) {
	tr := New(Config{SampleRate: 0})
	defer tr.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("root")
		link := sp.Link()
		sp.End()
		child := link.Start("wire")
		child.End()
	})
	if allocs != 0 {
		t.Errorf("unsampled Link lifecycle allocates %.1f times per op, want 0", allocs)
	}
}
