package trace

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sendervalid/internal/telemetry"
)

// DebugHandler serves /debug/traces: the recent-span and slow-span
// rings (newest first) plus, when reg is non-nil, every histogram
// exemplar the registry currently holds — the link from an aggregate
// latency bucket back to a concrete trace ID. Query parameters:
//
//	?min=<duration>   only spans at least this slow (e.g. min=50ms)
//	?family=<name>    only spans of one family (resolver, spf, ...)
//	?n=<count>        at most n spans per section (default 50)
func (t *Tracer) DebugHandler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var min time.Duration
		if v := q.Get("min"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad min: "+err.Error(), http.StatusBadRequest)
				return
			}
			min = d
		}
		n := 50
		if v := q.Get("n"); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil || i < 1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = i
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		t.writeDebug(w, min, q.Get("family"), n, reg)
	})
}

// writeDebug renders the /debug/traces document. Split from the
// handler so tests can drive it with fixed inputs.
func (t *Tracer) writeDebug(w io.Writer, min time.Duration, family string, n int, reg *telemetry.Registry) {
	fmt.Fprintf(w, "tracing: sample=%g slow=%s started=%d sampled=%d exported=%d dropped=%d promoted_slow=%d promoted_err=%d\n",
		t.sampleRate, t.slow,
		t.metrics.started.Value(), t.metrics.sampled.Value(),
		t.metrics.exported.Value(), t.metrics.dropped.Value(),
		t.metrics.promotedSlow.Value(), t.metrics.promotedErr.Value())

	writeSpanSection(w, "recent spans", t.recent.snapshot(), min, family, n)
	writeSpanSection(w, "slow spans", t.slowRing.snapshot(), min, family, n)

	if reg == nil {
		return
	}
	fmt.Fprintf(w, "\nexemplars:\n")
	found := false
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Series {
			if s.Histogram == nil {
				continue
			}
			for _, e := range s.Histogram.Exemplars {
				bound := "+Inf"
				if e.Bucket < len(s.Histogram.Bounds) {
					bound = strconv.FormatFloat(s.Histogram.Bounds[e.Bucket], 'g', -1, 64)
				}
				fmt.Fprintf(w, "  %s le=%s value=%g trace=%s\n", fam.Name, bound, e.Value, e.TraceID)
				found = true
			}
		}
	}
	if !found {
		fmt.Fprintf(w, "  (none)\n")
	}
}

// writeSpanSection renders one ring, newest first, filtered.
func writeSpanSection(w io.Writer, title string, recs []Record, min time.Duration, family string, n int) {
	fmt.Fprintf(w, "\n%s:\n", title)
	shown := 0
	for _, r := range recs {
		if shown >= n {
			break
		}
		if time.Duration(r.DurUS)*time.Microsecond < min {
			continue
		}
		if family != "" && r.Family() != family {
			continue
		}
		writeSpanLine(w, r)
		shown++
	}
	if shown == 0 {
		fmt.Fprintf(w, "  (none)\n")
	}
}

// writeSpanLine renders one record: fixed columns, then attributes,
// events, and the failure, when present.
func writeSpanLine(w io.Writer, r Record) {
	why := r.Why
	if why == "" {
		why = "head"
	}
	fmt.Fprintf(w, "  %12.3fms %-24s trace=%s span=%s", float64(r.DurUS)/1000, r.Name, r.Trace, r.Span)
	if r.Parent != "" {
		fmt.Fprintf(w, " parent=%s", r.Parent)
	}
	fmt.Fprintf(w, " why=%s", why)
	for _, a := range r.Attrs {
		fmt.Fprintf(w, " %s=%s", a.K, a.V)
	}
	for _, e := range r.Events {
		fmt.Fprintf(w, " @%s", e.Msg)
	}
	if r.Err != "" {
		fmt.Fprintf(w, " err=%q", r.Err)
	}
	fmt.Fprintln(w)
}
