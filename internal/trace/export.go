package trace

import (
	"strconv"
	"sync"
)

// exporter is the tracer's single background goroutine: it converts
// finished spans to records, feeds the in-memory rings, serializes to
// the configured output, and returns the spans to the pool. All
// Output writes happen here, one record per Write call, so a WAL
// output frames each span as one checksummed record.
func (t *Tracer) exporter() {
	defer close(t.done)
	buf := make([]byte, 0, 1024)
	for {
		select {
		case s := <-t.ch:
			buf = t.export(s, buf)
		case <-t.stop:
			// Drain what made it into the queue before the stop; spans
			// ended after this drain are dropped by End's non-blocking
			// send semantics once the queue fills.
			for {
				select {
				case s := <-t.ch:
					buf = t.export(s, buf)
				default:
					return
				}
			}
		}
	}
}

// export serializes one finished span and recycles it. The scratch
// buffer is threaded through so the steady state reuses one backing
// array.
func (t *Tracer) export(s *Span, buf []byte) []byte {
	rec := s.record()
	t.recent.add(rec)
	if t.slow > 0 && s.dur >= t.slow {
		t.slowRing.add(rec)
	}
	if t.out != nil {
		buf = AppendRecordJSON(buf[:0], rec)
		if _, err := t.out.Write(buf); err != nil {
			t.metrics.writeErrs.Inc()
		}
	}
	t.metrics.exported.Inc()
	t.recycle(s)
	return buf
}

// record materializes the span into an owned Record; the span can be
// recycled afterwards.
func (s *Span) record() Record {
	r := Record{
		Trace: s.trace.String(),
		Span:  s.id.String(),
		Name:  s.name,
		Start: s.start,
		DurUS: s.dur.Microseconds(),
		Why:   s.why,
		Err:   s.errMsg,
	}
	if !s.parent.IsZero() {
		r.Parent = s.parent.String()
	}
	if s.nattrs > 0 {
		r.Attrs = make([]Attr, s.nattrs)
		for i, a := range s.attrs[:s.nattrs] {
			if a.isInt {
				r.Attrs[i] = Attr{K: a.k, V: strconv.FormatInt(a.i, 10)}
			} else {
				r.Attrs[i] = Attr{K: a.k, V: a.v}
			}
		}
	}
	if s.nevents > 0 {
		r.Events = make([]Event, s.nevents)
		for i, e := range s.events[:s.nevents] {
			r.Events[i] = Event{T: e.at, Msg: e.msg}
		}
	}
	return r
}

// recordRing is a fixed-capacity ring of exported records, written by
// the exporter goroutine and snapshotted by /debug/traces.
type recordRing struct {
	mu    sync.Mutex
	buf   []Record
	next  int
	total uint64
}

func newRecordRing(n int) *recordRing {
	return &recordRing{buf: make([]Record, 0, n)}
}

func (r *recordRing) add(rec Record) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// snapshot returns the ring's records newest-first.
func (r *recordRing) snapshot() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}
