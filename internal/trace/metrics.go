package trace

import "sendervalid/internal/telemetry"

// RegisterMetrics publishes the tracer's instruments under the
// trace_ namespace. Safe on a nil tracer (no-op), so commands
// register unconditionally.
func (t *Tracer) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	if t == nil {
		return
	}
	reg.MustCounter("trace_spans_started_total",
		"Spans started, sampled or not.",
		&t.metrics.started, labels...)
	reg.MustCounter("trace_spans_sampled_total",
		"Root spans whose trace was head-sampled.",
		&t.metrics.sampled, labels...)
	reg.MustCounter("trace_spans_exported_total",
		"Spans serialized to the span stream or retained in the rings.",
		&t.metrics.exported, labels...)
	reg.MustCounter("trace_spans_dropped_total",
		"Finished spans dropped because the exporter queue was full.",
		&t.metrics.dropped, labels...)
	reg.MustCounter("trace_spans_promoted_slow_total",
		"Unsampled spans promoted to export for exceeding the slow threshold.",
		&t.metrics.promotedSlow, labels...)
	reg.MustCounter("trace_spans_promoted_error_total",
		"Unsampled spans promoted to export for carrying an error.",
		&t.metrics.promotedErr, labels...)
	reg.MustCounter("trace_export_write_errors_total",
		"Span stream write failures.",
		&t.metrics.writeErrs, labels...)
}
