package dnsserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// refLogRecord mirrors the logRecord struct the encoding/json-based
// codec historically marshaled; the fuzz tests below pin the
// hand-rolled codec against it.
type refLogRecord struct {
	Time      time.Time `json:"t"`
	Name      string    `json:"name"`
	Type      string    `json:"type"`
	TestID    string    `json:"test,omitempty"`
	MTAID     string    `json:"mta,omitempty"`
	Rest      []string  `json:"rest,omitempty"`
	Transport string    `json:"via,omitempty"`
	OverIPv6  bool      `json:"v6,omitempty"`
	Remote    string    `json:"remote,omitempty"`
}

var refTypeByName = map[string]dns.Type{
	"A": dns.TypeA, "NS": dns.TypeNS, "CNAME": dns.TypeCNAME,
	"SOA": dns.TypeSOA, "PTR": dns.TypePTR, "MX": dns.TypeMX,
	"TXT": dns.TypeTXT, "AAAA": dns.TypeAAAA, "OPT": dns.TypeOPT,
	"SPF": dns.TypeSPF, "ANY": dns.TypeANY, "NONE": dns.TypeNone,
}

// refParseType mirrors parseType's semantics with independent code
// (map lookup plus strconv) so the fuzzer cross-checks the jump-table
// implementation.
func refParseType(s string) (dns.Type, bool) {
	if t, ok := refTypeByName[s]; ok {
		return t, ok
	}
	if !strings.HasPrefix(s, "TYPE") || len(s) == 4 {
		return 0, false
	}
	for _, c := range s[4:] {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	v, err := strconv.ParseUint(s[4:], 10, 64)
	if err != nil || v > 0xFFFF {
		return 0, false
	}
	return dns.Type(v), true
}

// refDecodeLogLine is the reference decoder: encoding/json for the
// JSON layer, refParseType for type resolution.
func refDecodeLogLine(line []byte) (LogEntry, error) {
	var rec refLogRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return LogEntry{}, err
	}
	t, ok := refParseType(rec.Type)
	if !ok {
		return LogEntry{}, fmt.Errorf("unknown type %q", rec.Type)
	}
	return LogEntry{
		Time: rec.Time, Name: rec.Name, Type: t,
		TestID: rec.TestID, MTAID: rec.MTAID, Rest: rec.Rest,
		Transport: rec.Transport, OverIPv6: rec.OverIPv6, Remote: rec.Remote,
	}, nil
}

// refEncodeLogLine is the reference encoder: exactly what WriteJSON
// historically emitted per entry (json.Encoder appends the newline).
func refEncodeLogLine(e LogEntry) ([]byte, error) {
	rec := refLogRecord{
		Time: e.Time, Name: e.Name, Type: e.Type.String(),
		TestID: e.TestID, MTAID: e.MTAID, Rest: e.Rest,
		Transport: e.Transport, OverIPv6: e.OverIPv6, Remote: e.Remote,
	}
	b, err := json.Marshal(&rec)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func sameDecodedEntry(t *testing.T, got, want LogEntry) {
	t.Helper()
	if !got.Time.Equal(want.Time) {
		t.Errorf("Time: got %v, want %v", got.Time, want.Time)
	}
	gName, gOff := got.Time.Zone()
	wName, wOff := want.Time.Zone()
	if gName != wName || gOff != wOff {
		t.Errorf("Time zone: got %q/%d, want %q/%d", gName, gOff, wName, wOff)
	}
	got.Time, want.Time = time.Time{}, time.Time{}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("entry mismatch:\n got %#v\nwant %#v", got, want)
	}
}

// FuzzLogCodecEquivalence pins the hand-rolled line codec to the
// encoding/json reference: both decoders must agree on
// success/failure, successful decodes must produce identical entries
// (including nil-vs-empty Rest and time zone identity), and
// re-encoding a decoded entry must reproduce the reference encoder's
// bytes exactly.
func FuzzLogCodecEquivalence(f *testing.F) {
	f.Add([]byte(`{"t":"2026-08-08T12:00:00.123456789Z","name":"x.t7.m42.spf.example.test.","type":"TXT","test":"t7","mta":"m42","rest":["l1"],"via":"udp","v6":true,"remote":"198.51.100.7:53"}` + "\n"))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00+05:30","name":"a.","type":"A"}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"esc\"ape\\\/\u0041\u2028\ud83d\ude00.","type":"MX","remote":"[::1]:53"}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"héllo.例え.xn--r8jz45g.","type":"AAAA"}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:0`)) // truncated mid-timestamp
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"x.","type":"TYPE251"}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"x.","type":"TYPE12abc"}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"x.","type":"NONE"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"T":"2026-08-08T12:00:00Z","NAME":"fold.","TyPe":"A","V6":true}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"dup.","name":"wins.","type":"A","type":"NS"}`))
	f.Add([]byte(`{"t":null,"name":null,"type":"A","rest":null,"v6":null}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"x.","type":"A","rest":[]}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"x.","type":"A","rest":["a",null,"b"]}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"x.","type":"A","rest":["a"],"rest":null}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"x.","type":"A","extra":{"a":[1,-2.5e3,{"b":null,"c":false}]}}`))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"x.","type":"A","v6":false}`))
	f.Add([]byte("{\"t\":\"2026-08-08T12:00:00Z\",\"name\":\"bad\xff\xfe.\",\"type\":\"A\"}"))
	f.Add([]byte(`  {"t":"2026-08-08T12:00:00Z" , "name" : "ws." , "type" : "A" }  `))
	f.Add([]byte(`{"t":"2026-08-08T12:00:00Z","name":"x.","type":"A"}{"trailing":1}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		if bytes.IndexByte(line, '\n') >= 0 {
			// The codec is handed single lines by construction; embedded
			// newlines never reach it.
			t.Skip()
		}
		var p logLineParser
		got, gotErr := p.parse(line)
		want, wantErr := refDecodeLogLine(line)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("decode disagreement on %q:\n codec: %v, %v\n   ref: %v, %v",
				line, got, gotErr, want, wantErr)
		}
		if gotErr != nil {
			return
		}
		sameDecodedEntry(t, got, want)

		// Round trip: the hand-rolled encoder must reproduce the
		// encoding/json bytes for everything the decoder can produce.
		refBytes, err := refEncodeLogLine(got)
		if err != nil {
			t.Fatalf("reference re-encode failed: %v", err)
		}
		if gotBytes := AppendLogJSON(nil, got); !bytes.Equal(gotBytes, refBytes) {
			t.Errorf("encode mismatch:\n codec %q\n   ref %q", gotBytes, refBytes)
		}
	})
}

// FuzzAppendLogJSON pins the encoder against json.Marshal over
// arbitrary field contents — including invalid UTF-8, which both
// encoders must coerce to U+FFFD the same way.
func FuzzAppendLogJSON(f *testing.F) {
	f.Add(int64(1754654400), int64(123456789), true, "x.t7.m42.example.test.", "TXT", "t7", "m42", "l1", "udp", true, "198.51.100.7:53")
	f.Add(int64(0), int64(0), false, "", "", "", "", "", "", false, "")
	f.Add(int64(-62135596800), int64(1), true, "a\"b\\c\u2028d\u2029e<f>g&h", "TYPE65535", "\x00\x1f", "\xff\xfe", "é", "\b\f\n\r\t", true, "\xed\xa0\x80")
	f.Fuzz(func(t *testing.T, sec, nsec int64, utc bool, name, typ, test, mta, rest0, via string, v6 bool, remote string) {
		sec &= 0x3FFFFFFFF // keep the year within RFC 3339's range
		nsec = (nsec%1e9 + 1e9) % 1e9
		loc := time.FixedZone("", 19800)
		if utc {
			loc = time.UTC
		}
		e := LogEntry{
			Time: time.Unix(sec, nsec).In(loc), Name: name,
			TestID: test, MTAID: mta, Transport: via,
			OverIPv6: v6, Remote: remote,
		}
		if tt, ok := refParseType(typ); ok {
			e.Type = tt
		}
		if rest0 != "" {
			e.Rest = []string{rest0, ""}
		}
		refBytes, err := refEncodeLogLine(e)
		if err != nil {
			t.Skip() // unreachable for in-range years; guard anyway
		}
		gotBytes := AppendLogJSON(nil, e)
		if !bytes.Equal(gotBytes, refBytes) {
			t.Errorf("encode mismatch:\n codec %q\n   ref %q", gotBytes, refBytes)
		}
		// Round-trip the canonical bytes through parse — for plain
		// ASCII fields this drives parseFast, and for everything else
		// it must bail cleanly to the generic path with the same
		// result as encoding/json.
		ref, refErr := refDecodeLogLine(gotBytes)
		var p logLineParser
		got, gotErr := p.parse(gotBytes)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("roundtrip error mismatch: codec %v, ref %v (line %q)", gotErr, refErr, gotBytes)
		}
		if refErr == nil {
			sameDecodedEntry(t, got, ref)
		}
	})
}

// TestLogCodecTypeRoundTrip drives every possible Type value through
// encode and decode: known mnemonics and all TYPEn forms.
func TestLogCodecTypeRoundTrip(t *testing.T) {
	var p logLineParser
	buf := make([]byte, 0, 128)
	when := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i <= 0xFFFF; i++ {
		e := LogEntry{Time: when, Name: "x.", Type: dns.Type(i)}
		buf = AppendLogJSON(buf[:0], e)
		got, err := p.parse(buf)
		if err != nil {
			t.Fatalf("Type(%d): parse of %q failed: %v", i, buf, err)
		}
		if got.Type != e.Type {
			t.Fatalf("Type(%d): round-tripped to %d via %q", i, got.Type, buf)
		}
	}
}

// TestParseTypeStrict pins the intentional divergence from the old
// fmt.Sscanf("TYPE%d") decoder, which accepted trailing garbage.
func TestParseTypeStrict(t *testing.T) {
	cases := []struct {
		in string
		t  dns.Type
		ok bool
	}{
		{"A", dns.TypeA, true},
		{"NONE", dns.TypeNone, true},
		{"TYPE0", 0, true},
		{"TYPE251", 251, true},
		{"TYPE65535", 65535, true},
		{"TYPE00016", 16, true}, // leading zeros, like Sscanf
		{"TYPE65536", 0, false},
		{"TYPE999999999999999999999999", 0, false},
		{"TYPE12abc", 0, false}, // Sscanf accepted this
		{"TYPE", 0, false},
		{"TYPE-1", 0, false},
		{"TYPE+1", 0, false},
		{"TYPE 1", 0, false},
		{"type1", 0, false},
		{"", 0, false},
		{"MD", 0, false},
	}
	for _, c := range cases {
		got, ok := parseType([]byte(c.in))
		if ok != c.ok || got != c.t {
			t.Errorf("parseType(%q) = %d, %v; want %d, %v", c.in, got, ok, c.t, c.ok)
		}
	}
}
