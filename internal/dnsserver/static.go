package dnsserver

import (
	"net/netip"
	"strings"
	"sync"

	"sendervalid/internal/dns"
)

// Static is a conventional record-set responder: the alternative to
// on-the-fly synthesis for small zones (a sender domain's SPF + DKIM +
// DMARC records, test fixtures, the spfvalidator example). It also
// serves as the baseline for the synthesis-vs-static ablation: every
// record must be materialized up front.
type Static struct {
	mu      sync.RWMutex
	records map[staticKey][]dns.RR
	names   map[string]bool
}

type staticKey struct {
	name string
	typ  dns.Type
}

// NewStatic creates an empty record set.
func NewStatic() *Static {
	return &Static{
		records: make(map[staticKey][]dns.RR),
		names:   make(map[string]bool),
	}
}

// Add appends a record.
func (s *Static) Add(rr dns.RR) *Static {
	rr.Name = dns.CanonicalName(rr.Name)
	if rr.Class == 0 {
		rr.Class = dns.ClassINET
	}
	if rr.TTL == 0 {
		rr.TTL = 300
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := staticKey{name: rr.Name, typ: rr.Type}
	s.records[key] = append(s.records[key], rr)
	s.names[rr.Name] = true
	return s
}

// TXT adds a TXT record, splitting long payloads.
func (s *Static) TXT(name, payload string) *Static {
	return s.Add(TXTRecord(name, payload, 300))
}

// A adds an IPv4 address record.
func (s *Static) A(name string, addr netip.Addr) *Static {
	return s.Add(dns.RR{Name: name, Type: dns.TypeA, Data: &dns.A{Addr: addr}})
}

// AAAA adds an IPv6 address record.
func (s *Static) AAAA(name string, addr netip.Addr) *Static {
	return s.Add(dns.RR{Name: name, Type: dns.TypeAAAA, Data: &dns.AAAA{Addr: addr}})
}

// MX adds a mail-exchanger record.
func (s *Static) MX(name string, pref uint16, host string) *Static {
	return s.Add(dns.RR{Name: name, Type: dns.TypeMX, Data: &dns.MX{Preference: pref, Host: host}})
}

// CNAME adds an alias record.
func (s *Static) CNAME(name, target string) *Static {
	return s.Add(dns.RR{Name: name, Type: dns.TypeCNAME, Data: &dns.CNAME{Target: target}})
}

// SPF publishes an SPF policy (a TXT record) for name.
func (s *Static) SPF(name, policy string) *Static { return s.TXT(name, policy) }

// DKIMKey publishes a DKIM key record at <selector>._domainkey.<domain>.
func (s *Static) DKIMKey(selector, domain, record string) *Static {
	return s.TXT(selector+"._domainkey."+strings.TrimSuffix(domain, "."), record)
}

// DMARC publishes a DMARC policy at _dmarc.<domain>.
func (s *Static) DMARC(domain, policy string) *Static {
	return s.TXT("_dmarc."+strings.TrimSuffix(domain, "."), policy)
}

// Len returns the number of records held.
func (s *Static) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, rrs := range s.records {
		n += len(rrs)
	}
	return n
}

// Respond implements Responder: exact-match on (name, type), CNAMEs
// included on type mismatch, NXDOMAIN for unknown names, NOERROR/empty
// for known names without the type.
func (s *Static) Respond(q *Query) Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rrs, ok := s.records[staticKey{name: q.Name, typ: q.Type}]; ok {
		return Response{Records: append([]dns.RR(nil), rrs...)}
	}
	// A CNAME at the name answers any type, with the target's records
	// appended when held locally.
	if cnames, ok := s.records[staticKey{name: q.Name, typ: dns.TypeCNAME}]; ok {
		out := append([]dns.RR(nil), cnames...)
		for _, rr := range cnames {
			target := dns.CanonicalName(rr.Data.(*dns.CNAME).Target)
			out = append(out, s.records[staticKey{name: target, typ: q.Type}]...)
		}
		return Response{Records: out}
	}
	if s.names[q.Name] {
		return Response{} // name exists, type does not: NOERROR empty
	}
	return Response{RCode: dns.RCodeNameError}
}
