package dnsserver

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

const testSuffix = "spf-test.dns-lab.example."

// synthResponder mimics the paper's include-chain synthesis: the base
// TXT query gets a policy including l1.<base>; l1 includes l2; l2
// terminates.
func synthResponder(t *testing.T) Responder {
	return ResponderFunc(func(q *Query) Response {
		if q.Type != dns.TypeTXT {
			return Response{}
		}
		switch {
		case len(q.Rest) == 0:
			return Response{Records: []dns.RR{
				TXTRecord(q.Name, "v=spf1 include:"+Rejoin(q, testSuffix, "l1")+" ?all", 60),
			}}
		case q.Rest[0] == "l1":
			return Response{Records: []dns.RR{
				TXTRecord(q.Name, "v=spf1 include:"+Rejoin(q, testSuffix, "l2")+" ?all", 60),
			}}
		case q.Rest[0] == "l2":
			return Response{Records: []dns.RR{TXTRecord(q.Name, "v=spf1 ?all", 60)}}
		}
		return Response{RCode: dns.RCodeNameError}
	})
}

func startSynthServer(t *testing.T, zone *Zone) (*Server, string) {
	t.Helper()
	srv := &Server{Zones: []*Zone{zone}, Log: &QueryLog{}}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, addr.String()
}

func queryTXT(t *testing.T, addr, name string) *dns.Message {
	t.Helper()
	c := &dns.Client{Timeout: 3 * time.Second}
	resp, err := c.Query(context.Background(), addr, name, dns.TypeTXT)
	if err != nil {
		t.Fatalf("query %s: %v", name, err)
	}
	return resp
}

func txtPayload(t *testing.T, m *dns.Message) string {
	t.Helper()
	if len(m.Answers) == 0 {
		t.Fatalf("no answers in %s", m)
	}
	return m.Answers[0].Data.(*dns.TXT).Joined()
}

func TestSynthesizedIncludeChain(t *testing.T) {
	zone := &Zone{
		Suffix:     testSuffix,
		Responders: map[string]Responder{"t01": synthResponder(t)},
	}
	srv, addr := startSynthServer(t, zone)

	base := "t01.m0042." + testSuffix
	payload := txtPayload(t, queryTXT(t, addr, base))
	if payload != "v=spf1 include:l1.t01.m0042."+testSuffix+" ?all" {
		t.Errorf("base policy: %q", payload)
	}
	payload = txtPayload(t, queryTXT(t, addr, "l1."+base))
	if !strings.Contains(payload, "include:l2.t01.m0042.") {
		t.Errorf("l1 policy: %q", payload)
	}
	payload = txtPayload(t, queryTXT(t, addr, "l2."+base))
	if payload != "v=spf1 ?all" {
		t.Errorf("l2 policy: %q", payload)
	}

	// Identity isolation: a different MTA id gets its own names.
	payload = txtPayload(t, queryTXT(t, addr, "t01.m9999."+testSuffix))
	if !strings.Contains(payload, "l1.t01.m9999.") {
		t.Errorf("per-MTA synthesis: %q", payload)
	}

	// The log attributes every query.
	entries := srv.Log.(*QueryLog).Entries()
	if len(entries) != 4 {
		t.Fatalf("logged %d queries, want 4", len(entries))
	}
	if entries[0].TestID != "t01" || entries[0].MTAID != "m0042" || len(entries[0].Rest) != 0 {
		t.Errorf("base attribution: %+v", entries[0])
	}
	if entries[1].Rest[0] != "l1" || entries[2].Rest[0] != "l2" {
		t.Errorf("follow-up attribution: %+v %+v", entries[1], entries[2])
	}
	if entries[3].MTAID != "m9999" {
		t.Errorf("MTA attribution: %+v", entries[3])
	}
}

func TestResponseDelayShaping(t *testing.T) {
	delay := 80 * time.Millisecond
	zone := &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"t02": ResponderFunc(func(q *Query) Response {
				return Response{
					Records: []dns.RR{TXTRecord(q.Name, "v=spf1 ?all", 60)},
					Delay:   delay,
				}
			}),
		},
	}
	_, addr := startSynthServer(t, zone)
	start := time.Now()
	queryTXT(t, addr, "t02.m0001."+testSuffix)
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("response arrived after %v, want ≥ %v", elapsed, delay)
	}
}

func TestTruncateUDPForcesTCP(t *testing.T) {
	zone := &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"t03": ResponderFunc(func(q *Query) Response {
				return Response{
					Records:     []dns.RR{TXTRecord(q.Name, "v=spf1 -all", 60)},
					TruncateUDP: true,
				}
			}),
		},
	}
	srv, addr := startSynthServer(t, zone)
	resp := queryTXT(t, addr, "t03.m0001."+testSuffix) // client auto-retries TCP
	if resp.Truncated || len(resp.Answers) != 1 {
		t.Errorf("TCP retry failed: %s", resp)
	}
	transports := []string{}
	for _, e := range srv.Log.(*QueryLog).Entries() {
		transports = append(transports, e.Transport)
	}
	if len(transports) != 2 || transports[0] != "udp" || transports[1] != "tcp" {
		t.Errorf("observed transports %v, want [udp tcp]", transports)
	}
}

func TestRequireIPv6(t *testing.T) {
	zone := &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"t04": ResponderFunc(func(q *Query) Response {
				return Response{
					Records:     []dns.RR{TXTRecord(q.Name, "v=spf1 ?all", 60)},
					RequireIPv6: true,
				}
			}),
		},
	}
	srv := &Server{Zones: []*Zone{zone}, Addr6: "[::1]:0", Log: &QueryLog{}}
	addr4, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	if srv.Addr6Bound() == nil {
		t.Skip("IPv6 loopback unavailable")
	}

	c := &dns.Client{Timeout: 3 * time.Second}
	name := "t04.m0001." + testSuffix
	over4, err := c.Query(context.Background(), addr4.String(), name, dns.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if over4.RCode != dns.RCodeRefused {
		t.Errorf("IPv4 query to v6-only policy: %s", over4.RCode)
	}
	over6, err := c.Query(context.Background(), srv.Addr6Bound().String(), name, dns.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if over6.RCode != dns.RCodeSuccess || len(over6.Answers) != 1 {
		t.Errorf("IPv6 query failed: %s", over6)
	}
}

func TestApexSOAAndContact(t *testing.T) {
	zone := &Zone{Suffix: testSuffix, Contact: FormatContact("research-contact@dns-lab.example")}
	_, addr := startSynthServer(t, zone)
	c := &dns.Client{Timeout: 3 * time.Second}
	resp, err := c.Query(context.Background(), addr, testSuffix, dns.TypeSOA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("no SOA answer: %s", resp)
	}
	soa := resp.Answers[0].Data.(*dns.SOA)
	if soa.RName != "research-contact.dns-lab.example." {
		t.Errorf("SOA contact: %q", soa.RName)
	}
}

func TestUnknownZoneRefused(t *testing.T) {
	zone := &Zone{Suffix: testSuffix}
	_, addr := startSynthServer(t, zone)
	c := &dns.Client{Timeout: 3 * time.Second}
	resp, err := c.Query(context.Background(), addr, "unrelated.example.org", dns.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dns.RCodeRefused {
		t.Errorf("off-zone query: %s", resp.RCode)
	}
}

func TestNoResponderNXDOMAIN(t *testing.T) {
	zone := &Zone{Suffix: testSuffix, Responders: map[string]Responder{}}
	_, addr := startSynthServer(t, zone)
	resp := queryTXT(t, addr, "t99.m0001."+testSuffix)
	if resp.RCode != dns.RCodeNameError {
		t.Errorf("unknown test id: %s", resp.RCode)
	}
	if len(resp.Authority) == 0 {
		t.Error("negative answer lacks SOA")
	}
}

func TestSingleLabelZone(t *testing.T) {
	// NotifyEmail-style zone: <domainid>.<suffix>, depth 1.
	zone := &Zone{
		Suffix:     "dsav-mail.dns-lab.example.",
		LabelDepth: 1,
		Default: ResponderFunc(func(q *Query) Response {
			if q.Type != dns.TypeTXT {
				return Response{}
			}
			return Response{Records: []dns.RR{TXTRecord(q.Name, "v=spf1 a:mta."+q.MTAID+".dsav-mail.dns-lab.example. -all", 60)}}
		}),
	}
	srv, addr := startSynthServer(t, zone)
	payload := txtPayload(t, queryTXT(t, addr, "d0007.dsav-mail.dns-lab.example."))
	if !strings.Contains(payload, "a:mta.d0007.") {
		t.Errorf("single-label synthesis: %q", payload)
	}
	e := srv.Log.(*QueryLog).Entries()[0]
	if e.MTAID != "d0007" || e.TestID != "" {
		t.Errorf("single-label attribution: %+v", e)
	}
}

func TestSingleLabelZoneResponderKeying(t *testing.T) {
	// Regression: single-identifier zones key responders on the first
	// rest label when present, otherwise the domain id itself — queries
	// like mta.<domainid>.<suffix> must reach Responders["mta"], and
	// <domainid>.<suffix> must reach Responders["<domainid>"]. (They
	// previously always fell through to Default because the lookup was
	// keyed on the TestID field, which depth-1 parsing leaves empty.)
	suffix := "dsav-mail.dns-lab.example."
	tag := func(label string) Responder {
		return ResponderFunc(func(q *Query) Response {
			return Response{Records: []dns.RR{TXTRecord(q.Name, "resp="+label, 60)}}
		})
	}
	zone := &Zone{
		Suffix:     suffix,
		LabelDepth: 1,
		Responders: map[string]Responder{
			"mta":   tag("mta"),
			"d9999": tag("d9999"),
		},
		Default: tag("default"),
	}
	_, addr := startSynthServer(t, zone)

	for _, tc := range []struct{ name, want string }{
		{"mta.d0007." + suffix, "resp=mta"},       // first rest label
		{"d9999." + suffix, "resp=d9999"},         // domain id itself
		{"d0007." + suffix, "resp=default"},       // no dedicated responder
		{"other.d0007." + suffix, "resp=default"}, // unknown rest label
		// Leftmost rest label is the key, so an extra label shadows a
		// keyed one further right.
		{"deep.mta.d0007." + suffix, "resp=default"},
	} {
		got := txtPayload(t, queryTXT(t, addr, tc.name))
		if got != tc.want {
			t.Errorf("%s routed to %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestVoidResponder(t *testing.T) {
	zone := &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"t05": ResponderFunc(func(q *Query) Response {
				if q.Type == dns.TypeA {
					return Response{} // NOERROR, no records: a void lookup
				}
				return Response{Records: []dns.RR{TXTRecord(q.Name, "v=spf1 a:void."+q.TestID+"."+q.MTAID+"."+testSuffix+" ?all", 60)}}
			}),
		},
	}
	_, addr := startSynthServer(t, zone)
	c := &dns.Client{Timeout: 3 * time.Second}
	resp, err := c.Query(context.Background(), addr, "void.t05.m0001."+testSuffix, dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dns.RCodeSuccess || len(resp.Answers) != 0 {
		t.Errorf("void answer: %s", resp)
	}
}

func TestDropResponder(t *testing.T) {
	zone := &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"t06": ResponderFunc(func(q *Query) Response { return Response{Drop: true} }),
		},
	}
	_, addr := startSynthServer(t, zone)
	c := &dns.Client{Timeout: 200 * time.Millisecond}
	if _, err := c.Query(context.Background(), addr, "t06.m0001."+testSuffix, dns.TypeTXT); err == nil {
		t.Error("dropped query got a response")
	}
}

func TestQueryLogHelpers(t *testing.T) {
	log := &QueryLog{}
	log.Append(LogEntry{TestID: "t01", MTAID: "m1", Name: "a."})
	log.Append(LogEntry{TestID: "t01", MTAID: "m2", Name: "b."})
	log.Append(LogEntry{TestID: "t02", MTAID: "m1", Name: "c."})
	if log.Len() != 3 {
		t.Errorf("Len = %d", log.Len())
	}
	if got := log.ByMTA(); len(got["m1"]) != 2 || len(got["m2"]) != 1 {
		t.Errorf("ByMTA = %v", got)
	}
	if got := log.ByTest(); len(got["t01"]) != 2 || len(got["t02"]) != 1 {
		t.Errorf("ByTest = %v", got)
	}
	if got := log.Filter(func(e LogEntry) bool { return e.Name == "b." }); len(got) != 1 {
		t.Errorf("Filter = %v", got)
	}
	log.Reset()
	if log.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestRejoin(t *testing.T) {
	q := &Query{TestID: "t01", MTAID: "m0042"}
	if got := Rejoin(q, testSuffix, "l1"); got != "l1.t01.m0042."+testSuffix {
		t.Errorf("Rejoin = %q", got)
	}
	if got := Rejoin(q, testSuffix); got != "t01.m0042."+testSuffix {
		t.Errorf("Rejoin no-extra = %q", got)
	}
	if got := Rejoin(&Query{}, testSuffix); got != testSuffix {
		t.Errorf("Rejoin empty = %q", got)
	}
}

func TestFormatContact(t *testing.T) {
	if got := FormatContact("hostmaster@example.com"); got != "hostmaster.example.com." {
		t.Errorf("FormatContact = %q", got)
	}
	if got := FormatContact("first.last@example.com"); got != "first\\.last.example.com." {
		t.Errorf("FormatContact dotted local = %q", got)
	}
	if got := FormatContact("already.a.name."); got != "already.a.name." {
		t.Errorf("FormatContact passthrough = %q", got)
	}
}

func TestMultipleTXTRecords(t *testing.T) {
	// The paper's multiple-SPF-record test policy publishes two valid
	// policies at one name.
	zone := &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"t07": ResponderFunc(func(q *Query) Response {
				return Response{Records: []dns.RR{
					TXTRecord(q.Name, "v=spf1 a:one."+testSuffix+" ?all", 60),
					TXTRecord(q.Name, "v=spf1 a:two."+testSuffix+" ?all", 60),
				}}
			}),
		},
	}
	_, addr := startSynthServer(t, zone)
	resp := queryTXT(t, addr, "t07.m0001."+testSuffix)
	if len(resp.Answers) != 2 {
		t.Errorf("got %d TXT records, want 2", len(resp.Answers))
	}
}

func TestARecordSynthesis(t *testing.T) {
	zone := &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"t08": ResponderFunc(func(q *Query) Response {
				if q.Type == dns.TypeA {
					return Response{Records: []dns.RR{{
						Name: q.Name, Type: dns.TypeA, Class: dns.ClassINET, TTL: 60,
						Data: &dns.A{Addr: netip.MustParseAddr("192.0.2.1")},
					}}}
				}
				return Response{}
			}),
		},
	}
	_, addr := startSynthServer(t, zone)
	c := &dns.Client{Timeout: 3 * time.Second}
	resp, err := c.Query(context.Background(), addr, "foo.t08.m0001."+testSuffix, dns.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Data.(*dns.A).Addr.String() != "192.0.2.1" {
		t.Errorf("A synthesis: %s", resp)
	}
}
