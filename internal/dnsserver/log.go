// Package dnsserver implements the measurement study's custom
// authoritative DNS server (§4.5 of the paper): instead of hosting the
// ~27.8 million static records the 39 test policies would require for
// the full MTA population, it synthesizes SPF, DKIM, and DMARC
// responses on the fly from the structure of the query name, applies
// per-policy response shaping (fixed delays, UDP truncation,
// IPv6-only service), and records a timestamped, attributed query log
// that constitutes the study's raw data.
package dnsserver

import (
	"sync"
	"time"

	"sendervalid/internal/dns"
)

// LogEntry is one observed query, attributed to the test policy and
// MTA that induced it via the identifying labels embedded in the query
// name (paper §4.4–4.5).
type LogEntry struct {
	// Time is the query's arrival timestamp at the server.
	Time time.Time
	// Name is the canonical query name.
	Name string
	// Type is the query type.
	Type dns.Type
	// TestID is the test-policy label extracted from the name, or "".
	TestID string
	// MTAID is the MTA/domain identifier extracted from the name, or "".
	MTAID string
	// Rest holds the labels left of the test-policy label,
	// leftmost first (e.g. ["l1"] for an included policy lookup).
	Rest []string
	// Transport is "udp" or "tcp".
	Transport string
	// OverIPv6 reports whether the query arrived at the server's IPv6
	// endpoint (the observable for the IPv6 test policy, §7.3).
	OverIPv6 bool
	// Remote is the querying resolver's address.
	Remote string
}

// Sink consumes query-log entries. QueryLog is the in-memory
// implementation; AsyncLog decouples a slow sink (a disk writer) from
// the serving path.
type Sink interface {
	Append(LogEntry)
}

// QueryLog is a concurrency-safe, append-only query record.
type QueryLog struct {
	mu      sync.Mutex
	entries []LogEntry
}

// Append records one entry.
func (l *QueryLog) Append(e LogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
}

// Entries returns a snapshot of all entries in arrival order.
func (l *QueryLog) Entries() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LogEntry(nil), l.entries...)
}

// Since returns a snapshot of the entries appended after the first n
// — the tail-polling pattern (authdns's once-a-second printer) without
// re-copying the whole log every poll.
func (l *QueryLog) Since(n int) []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n >= len(l.entries) {
		return nil
	}
	return append([]LogEntry(nil), l.entries[n:]...)
}

// forEach visits every entry in arrival order under the log's lock,
// stopping early when fn returns false. It exists so WriteJSON and
// the grouping helpers can stream a large log without the full-slice
// copy Entries makes; fn must not call back into the log.
func (l *QueryLog) forEach(fn func(*LogEntry) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.entries {
		if !fn(&l.entries[i]) {
			return
		}
	}
}

// Len returns the number of logged queries.
func (l *QueryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Reset discards all entries.
func (l *QueryLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = nil
}

// ByMTA groups a snapshot of the log by MTAID.
func (l *QueryLog) ByMTA() map[string][]LogEntry {
	out := make(map[string][]LogEntry)
	l.forEach(func(e *LogEntry) bool {
		if e.MTAID != "" {
			out[e.MTAID] = append(out[e.MTAID], *e)
		}
		return true
	})
	return out
}

// ByTest groups a snapshot of the log by TestID.
func (l *QueryLog) ByTest() map[string][]LogEntry {
	out := make(map[string][]LogEntry)
	l.forEach(func(e *LogEntry) bool {
		if e.TestID != "" {
			out[e.TestID] = append(out[e.TestID], *e)
		}
		return true
	})
	return out
}

// Filter returns the entries for which keep returns true.
func (l *QueryLog) Filter(keep func(LogEntry) bool) []LogEntry {
	var out []LogEntry
	l.forEach(func(e *LogEntry) bool {
		if keep(*e) {
			out = append(out, *e)
		}
		return true
	})
	return out
}
