package dnsserver

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Parallel analysis ingest: the query log is a line-oriented format,
// so a stream can be split into newline-aligned chunks and decoded on
// a worker pool — the reader goroutine only finds newlines, all JSON
// scanning happens concurrently. Two delivery disciplines are
// offered: ParForEachLogJSON calls fn concurrently from the workers
// (maximum throughput, no ordering), ParForEachLogJSONOrdered calls
// fn from a single goroutine in exact file order (drop-in for serial
// analyses, still decoding in parallel).

// parChunkSize is the newline-aligned chunk handed to each decode
// worker. Large enough to amortize channel traffic, small enough that
// workers*chunks in flight stay modest.
const parChunkSize = 256 * 1024

// logChunk is one newline-aligned slice of the stream.
type logChunk struct {
	idx       int
	firstLine int // 0-based line number of the chunk's first line
	buf       []byte
}

// decodedChunk is a worker's output for one chunk.
type decodedChunk struct {
	idx     int
	entries []LogEntry
	err     error
}

var (
	parBufPool   = sync.Pool{New: func() any { b := make([]byte, 0, parChunkSize); return &b }}
	parEntryPool = sync.Pool{New: func() any { s := make([]LogEntry, 0, 1024); return &s }}
)

// ParForEachLogJSON streams a JSON-lines query log like
// ForEachLogJSON but decodes on workers goroutines (<=0 means
// GOMAXPROCS). fn is called concurrently and MUST be safe for
// concurrent use; entries within one chunk arrive in order, but
// chunks interleave arbitrarily. Decode errors carry the absolute
// line number. A non-nil error from fn stops the scan and is returned
// unwrapped (first error wins).
func ParForEachLogJSON(r io.Reader, workers int, fn func(LogEntry) error) error {
	return parForEachLog(r, workers, false, fn)
}

// ParForEachLogJSONOrdered is ParForEachLogJSON with an
// order-preserving merge: fn is called from a single goroutine in
// exact file order, so it needs no locking and analyses that depend
// on arrival order (session reconstruction, fingerprint vectors) get
// identical results to the serial path.
func ParForEachLogJSONOrdered(r io.Reader, workers int, fn func(LogEntry) error) error {
	return parForEachLog(r, workers, true, fn)
}

func parForEachLog(r io.Reader, workers int, ordered bool, fn func(LogEntry) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ForEachLogJSON(r, fn)
	}

	var (
		chunks  = make(chan logChunk, workers)
		results chan decodedChunk
		stop    = make(chan struct{})
		once    sync.Once
		failErr error
	)
	fail := func(err error) {
		once.Do(func() {
			failErr = err
			close(stop)
		})
	}
	if ordered {
		results = make(chan decodedChunk, workers)
	}

	// Reader: split the stream into newline-aligned chunks.
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		defer close(chunks)
		var carry []byte
		idx, line := 0, 0
		for {
			bp := parBufPool.Get().(*[]byte)
			buf := append((*bp)[:0], carry...)
			carry = carry[:0]
			buf, eof, err := fillChunk(r, buf, parChunkSize)
			if err != nil {
				fail(fmt.Errorf("dnsserver: reading log: %w", err))
				*bp = buf
				parBufPool.Put(bp)
				return
			}
			if !eof {
				cut := bytes.LastIndexByte(buf, '\n')
				for cut < 0 && !eof {
					// A line longer than a chunk: keep extending.
					buf, eof, err = fillChunk(r, buf, len(buf)+parChunkSize)
					if err != nil {
						fail(fmt.Errorf("dnsserver: reading log: %w", err))
						*bp = buf
						parBufPool.Put(bp)
						return
					}
					cut = bytes.LastIndexByte(buf, '\n')
				}
				if cut >= 0 && cut+1 < len(buf) {
					carry = append(carry, buf[cut+1:]...)
					buf = buf[:cut+1]
				}
			}
			*bp = buf
			if len(buf) == 0 {
				parBufPool.Put(bp)
			} else {
				select {
				case chunks <- logChunk{idx: idx, firstLine: line, buf: buf}:
				case <-stop:
					parBufPool.Put(bp)
					return
				}
				idx++
				line += bytes.Count(buf, []byte{'\n'})
			}
			if eof {
				return
			}
		}
	}()

	// Workers: decode chunks; deliver inline (unordered) or to the
	// merge (ordered).
	var workWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			var p logLineParser
			for c := range chunks {
				ep := parEntryPool.Get().(*[]LogEntry)
				entries, err := decodeChunk(&p, c, *ep)
				*ep = entries
				if err != nil {
					fail(err)
				}
				switch {
				case err != nil && !ordered:
					putChunkEntries(ep)
				case !ordered:
					for _, e := range entries {
						if ferr := fn(e); ferr != nil {
							fail(ferr)
							break
						}
					}
					putChunkEntries(ep)
				default:
					select {
					case results <- decodedChunk{idx: c.idx, entries: entries, err: err}:
					case <-stop:
						putChunkEntries(ep)
					}
				}
				parBufPool.Put(&c.buf)
				select {
				case <-stop:
					// Drain remaining chunks cheaply after a failure.
					for c := range chunks {
						parBufPool.Put(&c.buf)
					}
					return
				default:
				}
			}
		}()
	}

	if !ordered {
		workWG.Wait()
		readWG.Wait()
		return failErr
	}

	// Ordered merge: deliver chunks in index order from this
	// goroutine.
	go func() {
		workWG.Wait()
		close(results)
	}()
	pending := make(map[int][]LogEntry)
	next := 0
	deliver := func(entries []LogEntry) {
		// Reading failErr directly would race the workers; observing
		// stop closed happens-after the failing write, so gate on it.
		select {
		case <-stop:
		default:
			for _, e := range entries {
				if err := fn(e); err != nil {
					fail(err)
					break
				}
			}
		}
		putChunkEntries(&entries)
	}
	for dc := range results {
		if dc.err != nil {
			putChunkEntries(&dc.entries)
			continue
		}
		pending[dc.idx] = dc.entries
		for {
			entries, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			deliver(entries)
		}
	}
	for idx, entries := range pending {
		delete(pending, idx)
		putChunkEntries(&entries)
	}
	readWG.Wait()
	return failErr
}

// fillChunk reads until len(buf) reaches target or the stream ends.
func fillChunk(r io.Reader, buf []byte, target int) (out []byte, eof bool, err error) {
	for len(buf) < target {
		if cap(buf) < target {
			grown := make([]byte, len(buf), target)
			copy(grown, buf)
			buf = grown
		}
		n, rerr := r.Read(buf[len(buf):target])
		buf = buf[:len(buf)+n]
		if rerr == io.EOF {
			return buf, true, nil
		}
		if rerr != nil {
			return buf, false, rerr
		}
	}
	return buf, false, nil
}

// decodeChunk parses every non-blank line of the chunk.
func decodeChunk(p *logLineParser, c logChunk, entries []LogEntry) ([]LogEntry, error) {
	entries = entries[:0]
	buf := c.buf
	lineNo := c.firstLine
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		var line []byte
		if nl < 0 {
			line, buf = buf, nil
		} else {
			line, buf = buf[:nl+1], buf[nl+1:]
		}
		if !blankLine(line) {
			e, err := p.parse(line)
			if err != nil {
				return entries, fmt.Errorf("dnsserver: reading log line %d: %w", lineNo, err)
			}
			entries = append(entries, e)
		}
		lineNo++
	}
	return entries, nil
}

// putChunkEntries recycles a worker's entry slice. Entries are value
// types whose strings the caller may retain; only the slice header's
// backing array is reused, never the strings, so recycling is safe.
func putChunkEntries(entries *[]LogEntry) {
	clear(*entries)
	*entries = (*entries)[:0]
	parEntryPool.Put(entries)
}
