package dnsserver

import (
	"bytes"
	"fmt"
	"strconv"

	"sendervalid/internal/dns"
	"sendervalid/internal/jsonwire"
)

// The query log's JSONL wire format, fixed since the format was
// introduced and identical to what encoding/json produced for the old
// logRecord struct (fuzz tests pin the equivalence byte for byte):
//
//	{"t":<RFC3339Nano>,"name":<string>,"type":<mnemonic-or-TYPEn>,
//	 "test":<string,omitempty>,"mta":<string,omitempty>,
//	 "rest":<[]string,omitempty>,"via":<string,omitempty>,
//	 "v6":<bool,omitempty>,"remote":<string,omitempty>}
//
// one record per line. Encoding and decoding go through hand-rolled
// append/scan paths (no encoding/json, no reflection, no fmt) so the
// collect-and-analyze loop keeps up with the allocation-free serving
// path: encode is zero-alloc into a reused buffer, decode costs at
// most two allocations per record (one backing string shared by all
// string fields, plus the Rest slice when present).

// AppendLogJSON encodes e as one query-log JSON line — including the
// trailing newline — and appends it to dst, returning the extended
// buffer. The bytes are identical to what the encoding/json-based
// writer historically produced. Timestamps are assumed to be in the
// RFC 3339 year range [0,9999], which holds for every clock-derived
// or log-parsed time.
func AppendLogJSON(dst []byte, e LogEntry) []byte {
	dst = append(dst, `{"t":`...)
	dst = jsonwire.AppendTime(dst, e.Time)
	dst = append(dst, `,"name":`...)
	dst = jsonwire.AppendString(dst, e.Name)
	dst = append(dst, `,"type":`...)
	dst = appendTypeJSON(dst, e.Type)
	if e.TestID != "" {
		dst = append(dst, `,"test":`...)
		dst = jsonwire.AppendString(dst, e.TestID)
	}
	if e.MTAID != "" {
		dst = append(dst, `,"mta":`...)
		dst = jsonwire.AppendString(dst, e.MTAID)
	}
	if len(e.Rest) > 0 {
		dst = append(dst, `,"rest":[`...)
		for i, s := range e.Rest {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = jsonwire.AppendString(dst, s)
		}
		dst = append(dst, ']')
	}
	if e.Transport != "" {
		dst = append(dst, `,"via":`...)
		dst = jsonwire.AppendString(dst, e.Transport)
	}
	if e.OverIPv6 {
		dst = append(dst, `,"v6":true`...)
	}
	if e.Remote != "" {
		dst = append(dst, `,"remote":`...)
		dst = jsonwire.AppendString(dst, e.Remote)
	}
	return append(dst, '}', '\n')
}

// appendTypeJSON appends the quoted Type mnemonic without going
// through fmt (dns.Type.String allocates via Sprintf for unknown
// types).
func appendTypeJSON(dst []byte, t dns.Type) []byte {
	if s := typeMnemonic(t); s != "" {
		dst = append(dst, '"')
		dst = append(dst, s...)
		return append(dst, '"')
	}
	dst = append(dst, `"TYPE`...)
	dst = strconv.AppendUint(dst, uint64(t), 10)
	return append(dst, '"')
}

// typeMnemonic is the map-free inverse of the log's type mnemonics;
// "" means the TYPEn form (RFC 3597) is needed.
func typeMnemonic(t dns.Type) string {
	switch t {
	case dns.TypeA:
		return "A"
	case dns.TypeNS:
		return "NS"
	case dns.TypeCNAME:
		return "CNAME"
	case dns.TypeSOA:
		return "SOA"
	case dns.TypePTR:
		return "PTR"
	case dns.TypeMX:
		return "MX"
	case dns.TypeTXT:
		return "TXT"
	case dns.TypeAAAA:
		return "AAAA"
	case dns.TypeOPT:
		return "OPT"
	case dns.TypeSPF:
		return "SPF"
	case dns.TypeANY:
		return "ANY"
	case dns.TypeNone:
		return "NONE"
	}
	return ""
}

// parseType resolves a decoded type mnemonic. The TYPEn form is
// parsed directly — digits only, value up to 65535 — instead of the
// old fmt.Sscanf("TYPE%d") round trip, which silently accepted
// trailing garbage ("TYPE12abc").
func parseType(b []byte) (dns.Type, bool) {
	switch string(b) { // compiled to a jump table; no allocation
	case "A":
		return dns.TypeA, true
	case "NS":
		return dns.TypeNS, true
	case "CNAME":
		return dns.TypeCNAME, true
	case "SOA":
		return dns.TypeSOA, true
	case "PTR":
		return dns.TypePTR, true
	case "MX":
		return dns.TypeMX, true
	case "TXT":
		return dns.TypeTXT, true
	case "AAAA":
		return dns.TypeAAAA, true
	case "OPT":
		return dns.TypeOPT, true
	case "SPF":
		return dns.TypeSPF, true
	case "ANY":
		return dns.TypeANY, true
	case "NONE":
		return dns.TypeNone, true
	}
	if len(b) < 5 || string(b[:4]) != "TYPE" {
		return 0, false
	}
	v := 0
	for _, c := range b[4:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
		if v > 0xFFFF {
			return 0, false
		}
	}
	return dns.Type(v), true
}

// span locates one decoded string field inside the parser's scratch
// buffer.
type span struct{ off, end int }

// logLineParser decodes one query-log line without encoding/json. It
// is reusable: the scratch buffer that accumulates unescaped string
// contents and the rest-offset slice are retained across lines, so a
// long scan settles into the two-allocations-per-record regime.
type logLineParser struct {
	doc     jsonwire.Doc
	scratch []byte
	keyBuf  []byte
	rest    []span
}

// logFieldNames lists the wire keys for fold matching (encoding/json
// matches keys case-insensitively when no exact field matches).
var logFieldNames = [][]byte{
	[]byte("t"), []byte("name"), []byte("type"), []byte("test"),
	[]byte("mta"), []byte("rest"), []byte("via"), []byte("v6"),
	[]byte("remote"),
}

// matchLogKey resolves a decoded object key to a field index in
// logFieldNames, or -1. The exact-match switch compiles to
// length-bucketed comparisons (no allocation); bytes.EqualFold
// reproduces encoding/json's fold matching (the two are defined to
// agree).
func matchLogKey(key []byte) int {
	switch string(key) {
	case "t":
		return 0
	case "name":
		return 1
	case "type":
		return 2
	case "test":
		return 3
	case "mta":
		return 4
	case "rest":
		return 5
	case "via":
		return 6
	case "v6":
		return 7
	case "remote":
		return 8
	}
	for i, name := range logFieldNames {
		if bytes.EqualFold(key, name) {
			return i
		}
	}
	return -1
}

// stringSpan parses a string value (or null) for a string field,
// appending the unescaped contents to scratch and updating the span.
// null leaves the previous value untouched, as encoding/json does;
// set reports whether a string was actually stored.
func (p *logLineParser) stringSpan(s *span) (set bool, err error) {
	d := &p.doc
	d.WS()
	if isNull, err := d.TryNull(); isNull || err != nil {
		return false, err
	}
	start := len(p.scratch)
	p.scratch, err = d.ReadString(p.scratch)
	if err != nil {
		return false, err
	}
	*s = span{off: start, end: len(p.scratch)}
	return true, nil
}

// hasLit reports whether in[i:] starts with lit (compiles to a
// length check plus memeq, no allocation).
func hasLit(in []byte, i int, lit string) bool {
	return len(in)-i >= len(lit) && string(in[i:i+len(lit)]) == lit
}

// scanPlain advances from i to the closing quote of a plain string —
// ASCII, no escapes, no control characters — returning the quote's
// index, or ok=false if the string is anything fancier.
func scanPlain(in []byte, i int) (end int, ok bool) {
	for i < len(in) {
		c := in[i]
		if c == '"' {
			return i, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return 0, false
		}
		i++
	}
	return 0, false
}

// parseFast decodes the canonical encoding AppendLogJSON emits:
// fields in wire order, no interior whitespace, plain ASCII strings.
// That is every line the server itself wrote, so the generic parser
// below — which this must agree with byte for byte on anything it
// accepts — only runs for hand-edited or foreign logs. ok=false means
// "not canonical", not "invalid".
func (p *logLineParser) parseFast(line []byte) (LogEntry, bool) {
	in := line
	if n := len(in); n > 0 && in[n-1] == '\n' {
		in = in[:n-1]
	}
	var (
		e                            LogEntry
		name, test, mta, via, remote span // input coordinates
		ok                           bool
		end                          int
	)
	p.rest = p.rest[:0]
	restSet := false

	i := len(`{"t":"`)
	if !hasLit(in, 0, `{"t":"`) {
		return e, false
	}
	if end, ok = scanPlain(in, i); !ok {
		return e, false
	}
	if e.Time, ok = jsonwire.TryParseTime(in[i:end]); !ok {
		return e, false
	}
	i = end + 1

	if !hasLit(in, i, `,"name":"`) {
		return e, false
	}
	i += len(`,"name":"`)
	if end, ok = scanPlain(in, i); !ok {
		return e, false
	}
	name = span{i, end}
	i = end + 1

	if !hasLit(in, i, `,"type":"`) {
		return e, false
	}
	i += len(`,"type":"`)
	if end, ok = scanPlain(in, i); !ok {
		return e, false
	}
	if e.Type, ok = parseType(in[i:end]); !ok {
		return e, false
	}
	i = end + 1

	if hasLit(in, i, `,"test":"`) {
		i += len(`,"test":"`)
		if end, ok = scanPlain(in, i); !ok {
			return e, false
		}
		test = span{i, end}
		i = end + 1
	}
	if hasLit(in, i, `,"mta":"`) {
		i += len(`,"mta":"`)
		if end, ok = scanPlain(in, i); !ok {
			return e, false
		}
		mta = span{i, end}
		i = end + 1
	}
	if hasLit(in, i, `,"rest":[`) {
		i += len(`,"rest":[`)
		restSet = true
		for {
			if !hasLit(in, i, `"`) {
				return e, false
			}
			i++
			if end, ok = scanPlain(in, i); !ok {
				return e, false
			}
			p.rest = append(p.rest, span{i, end})
			i = end + 1
			if hasLit(in, i, ",") {
				i++
				continue
			}
			if hasLit(in, i, "]") {
				i++
				break
			}
			return e, false
		}
	}
	if hasLit(in, i, `,"via":"`) {
		i += len(`,"via":"`)
		if end, ok = scanPlain(in, i); !ok {
			return e, false
		}
		via = span{i, end}
		i = end + 1
	}
	if hasLit(in, i, `,"v6":true`) {
		i += len(`,"v6":true`)
		e.OverIPv6 = true
	}
	if hasLit(in, i, `,"remote":"`) {
		i += len(`,"remote":"`)
		if end, ok = scanPlain(in, i); !ok {
			return e, false
		}
		remote = span{i, end}
		i = end + 1
	}
	if i != len(in)-1 || in[i] != '}' {
		return e, false
	}

	// Same materialization as the generic path: every string field
	// shares one compact backing allocation (never the reused line
	// buffer), plus the Rest slice when present.
	p.scratch = p.scratch[:0]
	copied := make([]span, 0, 8)
	for _, s := range []span{name, test, mta, via, remote} {
		off := len(p.scratch)
		p.scratch = append(p.scratch, in[s.off:s.end]...)
		copied = append(copied, span{off, len(p.scratch)})
	}
	restStart := len(copied)
	for _, s := range p.rest {
		off := len(p.scratch)
		p.scratch = append(p.scratch, in[s.off:s.end]...)
		copied = append(copied, span{off, len(p.scratch)})
	}
	backing := string(p.scratch)
	get := func(s span) string {
		if s.off == s.end {
			return ""
		}
		return backing[s.off:s.end]
	}
	e.Name = get(copied[0])
	e.TestID = get(copied[1])
	e.MTAID = get(copied[2])
	e.Transport = get(copied[3])
	e.Remote = get(copied[4])
	if restSet {
		out := make([]string, len(p.rest))
		for j := range p.rest {
			out[j] = get(copied[restStart+j])
		}
		e.Rest = out
	}
	return e, true
}

// parse decodes one log line. The returned entry's string fields all
// share one backing allocation; rest costs a second when present.
func (p *logLineParser) parse(line []byte) (LogEntry, error) {
	if e, ok := p.parseFast(line); ok {
		return e, nil
	}
	p.scratch = p.scratch[:0]
	p.rest = p.rest[:0]

	var (
		e           LogEntry
		name, test  span
		mta, via    span
		remote, typ span
		typeSet     bool
		restSet     bool
	)

	d := &p.doc
	d.Init(line)
	d.WS()
	if isNull, err := d.TryNull(); err != nil {
		return LogEntry{}, err
	} else if isNull {
		// json.Unmarshal accepts a null document as a zero record; it
		// then fails type resolution below, like the old decoder.
		if err := d.End(); err != nil {
			return LogEntry{}, err
		}
		return LogEntry{}, fmt.Errorf("unknown type %q", "")
	}
	if err := d.ObjectStart(); err != nil {
		return LogEntry{}, err
	}
	for first := true; ; first = false {
		rawKey, more, err := d.NextKey(first)
		if err != nil {
			return LogEntry{}, err
		}
		if !more {
			break
		}
		key := rawKey
		if bytes.IndexByte(rawKey, '\\') >= 0 {
			p.keyBuf = jsonwire.Unescape(p.keyBuf[:0], rawKey)
			key = p.keyBuf
		}
		switch matchLogKey(key) {
		case 0: // t
			d.WS()
			if isNull, err := d.TryNull(); err != nil {
				return LogEntry{}, err
			} else if !isNull {
				raw, err := d.RawString()
				if err != nil {
					return LogEntry{}, err
				}
				// time.Time.UnmarshalJSON parses the raw quoted
				// content without unescaping; so do we.
				e.Time, err = jsonwire.ParseTime(raw)
				if err != nil {
					return LogEntry{}, err
				}
			}
		case 1: // name
			if _, err := p.stringSpan(&name); err != nil {
				return LogEntry{}, err
			}
		case 2: // type
			set, err := p.stringSpan(&typ)
			if err != nil {
				return LogEntry{}, err
			}
			typeSet = typeSet || set
		case 3: // test
			if _, err := p.stringSpan(&test); err != nil {
				return LogEntry{}, err
			}
		case 4: // mta
			if _, err := p.stringSpan(&mta); err != nil {
				return LogEntry{}, err
			}
		case 5: // rest
			d.WS()
			if isNull, err := d.TryNull(); err != nil {
				return LogEntry{}, err
			} else if isNull {
				// null resets a slice field to nil.
				restSet = false
				p.rest = p.rest[:0]
				break
			}
			if err := d.ArrayStart(); err != nil {
				return LogEntry{}, err
			}
			restSet = true
			p.rest = p.rest[:0]
			for efirst := true; ; efirst = false {
				more, err := d.NextElem(efirst)
				if err != nil {
					return LogEntry{}, err
				}
				if !more {
					break
				}
				var el span
				if _, err := p.stringSpan(&el); err != nil {
					return LogEntry{}, err
				}
				p.rest = append(p.rest, el)
			}
		case 6: // via
			if _, err := p.stringSpan(&via); err != nil {
				return LogEntry{}, err
			}
		case 7: // v6
			d.WS()
			if isNull, err := d.TryNull(); err != nil {
				return LogEntry{}, err
			} else if !isNull {
				v, err := d.Bool()
				if err != nil {
					return LogEntry{}, err
				}
				e.OverIPv6 = v
			}
		case 8: // remote
			if _, err := p.stringSpan(&remote); err != nil {
				return LogEntry{}, err
			}
		default:
			if err := d.SkipValue(); err != nil {
				return LogEntry{}, err
			}
		}
	}
	if err := d.End(); err != nil {
		return LogEntry{}, err
	}

	// One backing string for every decoded string field.
	backing := string(p.scratch)
	get := func(s span) string {
		if s.off == s.end {
			return ""
		}
		return backing[s.off:s.end]
	}
	if !typeSet {
		return LogEntry{}, fmt.Errorf("unknown type %q", "")
	}
	t, ok := parseType(p.scratch[typ.off:typ.end])
	if !ok {
		return LogEntry{}, fmt.Errorf("unknown type %q", get(typ))
	}
	e.Type = t
	e.Name = get(name)
	e.TestID = get(test)
	e.MTAID = get(mta)
	e.Transport = get(via)
	e.Remote = get(remote)
	if restSet {
		out := make([]string, len(p.rest))
		for i, s := range p.rest {
			out[i] = get(s)
		}
		e.Rest = out
	}
	return e, nil
}
