package dnsserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"sendervalid/internal/dns"
	"sendervalid/internal/resolver"
	"sendervalid/internal/spf"
)

func TestStaticRespond(t *testing.T) {
	s := NewStatic().
		SPF("sender.example", "v=spf1 ip4:192.0.2.1 -all").
		A("mail.sender.example", netip.MustParseAddr("192.0.2.1")).
		AAAA("mail.sender.example", netip.MustParseAddr("2001:db8::1")).
		MX("sender.example", 10, "mail.sender.example.").
		DKIMKey("s1", "sender.example", "v=DKIM1; k=rsa; p=KEY").
		DMARC("sender.example", "v=DMARC1; p=reject").
		CNAME("alias.sender.example", "mail.sender.example.")

	if s.Len() != 7 {
		t.Errorf("Len = %d", s.Len())
	}

	cases := []struct {
		name  string
		typ   dns.Type
		rcode dns.RCode
		count int
	}{
		{"sender.example.", dns.TypeTXT, dns.RCodeSuccess, 1},
		{"sender.example.", dns.TypeMX, dns.RCodeSuccess, 1},
		{"mail.sender.example.", dns.TypeA, dns.RCodeSuccess, 1},
		{"mail.sender.example.", dns.TypeAAAA, dns.RCodeSuccess, 1},
		{"s1._domainkey.sender.example.", dns.TypeTXT, dns.RCodeSuccess, 1},
		{"_dmarc.sender.example.", dns.TypeTXT, dns.RCodeSuccess, 1},
		{"alias.sender.example.", dns.TypeA, dns.RCodeSuccess, 2}, // CNAME + target A
		{"sender.example.", dns.TypeAAAA, dns.RCodeSuccess, 0},    // name exists, type absent
		{"missing.sender.example.", dns.TypeA, dns.RCodeNameError, 0},
	}
	for _, c := range cases {
		resp := s.Respond(&Query{Name: c.name, Type: c.typ})
		if resp.RCode != c.rcode || len(resp.Records) != c.count {
			t.Errorf("%s %s: rcode=%s records=%d, want %s/%d",
				c.name, c.typ, resp.RCode, len(resp.Records), c.rcode, c.count)
		}
	}
}

func TestStaticServesFullSPFEvaluation(t *testing.T) {
	// A static zone must support a complete SPF evaluation through the
	// real resolver stack.
	static := NewStatic().
		SPF("corp.example", "v=spf1 mx include:_spf.corp.example -all").
		MX("corp.example", 10, "mx1.corp.example.").
		A("mx1.corp.example", netip.MustParseAddr("203.0.113.5")).
		SPF("_spf.corp.example", "v=spf1 ip4:198.51.100.0/24 ?all")

	srv := &Server{
		Zones: []*Zone{{Suffix: "corp.example.", LabelDepth: 1, Default: static}},
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	res := resolver.New(resolver.Config{Server: addr.String(), Timeout: 3 * time.Second})
	checker := &spf.Checker{Resolver: res, Options: spf.Options{Timeout: 10 * time.Second}}
	ctx := context.Background()

	// The MX host's address passes.
	out := checker.CheckHost(ctx, netip.MustParseAddr("203.0.113.5"),
		"corp.example", "a@corp.example", "mx1.corp.example")
	if out.Result != spf.Pass {
		t.Errorf("mx match: %s (%v)", out.Result, out.Err)
	}
	// An address inside the included range passes.
	out = checker.CheckHost(ctx, netip.MustParseAddr("198.51.100.77"),
		"corp.example", "a@corp.example", "x")
	if out.Result != spf.Pass {
		t.Errorf("include match: %s (%v)", out.Result, out.Err)
	}
	// Everything else fails.
	out = checker.CheckHost(ctx, netip.MustParseAddr("192.0.2.200"),
		"corp.example", "a@corp.example", "x")
	if out.Result != spf.Fail {
		t.Errorf("non-match: %s (%v)", out.Result, out.Err)
	}
}

func TestStaticDefaults(t *testing.T) {
	s := NewStatic().Add(dns.RR{Name: "X.Example", Type: dns.TypeTXT, Data: &dns.TXT{Strings: []string{"v"}}})
	resp := s.Respond(&Query{Name: "x.example.", Type: dns.TypeTXT})
	if len(resp.Records) != 1 {
		t.Fatal("case-insensitive name lookup failed")
	}
	rr := resp.Records[0]
	if rr.Class != dns.ClassINET || rr.TTL != 300 {
		t.Errorf("defaults not applied: %+v", rr)
	}
}

func TestQueryLogJSONRoundTrip(t *testing.T) {
	log := &QueryLog{}
	log.Append(LogEntry{
		Time: time.Date(2021, 4, 1, 12, 0, 0, 0, time.UTC),
		Name: "t01.m0001.spf-test.example.", Type: dns.TypeTXT,
		TestID: "t01", MTAID: "m0001", Transport: "udp", Remote: "127.0.0.1:4242",
	})
	log.Append(LogEntry{
		Time: time.Date(2021, 4, 1, 12, 0, 1, 0, time.UTC),
		Name: "l1.t01.m0001.spf-test.example.", Type: dns.TypeAAAA,
		TestID: "t01", MTAID: "m0001", Rest: []string{"l1"},
		Transport: "tcp", OverIPv6: true,
	})
	log.Append(LogEntry{Name: "x.", Type: dns.Type(251)})

	var buf bytes.Buffer
	if err := log.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadLogJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries", len(entries))
	}
	orig := log.Entries()
	for i := range orig {
		a, b := orig[i], entries[i]
		if !a.Time.Equal(b.Time) || a.Name != b.Name || a.Type != b.Type ||
			a.TestID != b.TestID || a.MTAID != b.MTAID ||
			a.Transport != b.Transport || a.OverIPv6 != b.OverIPv6 ||
			a.Remote != b.Remote || len(a.Rest) != len(b.Rest) {
			t.Errorf("entry %d mismatch:\n %+v\n %+v", i, a, b)
		}
	}
	// Unknown types round-trip through the TYPEn form.
	if entries[2].Type != dns.Type(251) {
		t.Errorf("raw type: %v", entries[2].Type)
	}
	// Garbage input errors cleanly.
	if _, err := ReadLogJSON(strings.NewReader("{broken")); err == nil {
		t.Error("garbage log accepted")
	}
	if _, err := ReadLogJSON(strings.NewReader(`{"type":"NOTATYPE","name":"x."}`)); err == nil {
		t.Error("unknown type name accepted")
	}
}

func TestForEachLogJSONStreams(t *testing.T) {
	log := &QueryLog{}
	for i := 0; i < 5; i++ {
		log.Append(LogEntry{
			Name: "t01.m0001.spf-test.example.", Type: dns.TypeTXT,
			TestID: "t01", MTAID: fmt.Sprintf("m%04d", i),
		})
	}
	var buf bytes.Buffer
	if err := log.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()

	// Entries arrive one at a time, in file order.
	var ids []string
	err := ForEachLogJSON(strings.NewReader(raw), func(e LogEntry) error {
		ids = append(ids, e.MTAID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 || ids[0] != "m0000" || ids[4] != "m0004" {
		t.Errorf("streamed ids: %v", ids)
	}

	// A callback error stops the scan and surfaces unwrapped.
	sentinel := errors.New("stop here")
	n := 0
	err = ForEachLogJSON(strings.NewReader(raw), func(LogEntry) error {
		n++
		if n == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("callback error not returned: %v", err)
	}
	if n != 2 {
		t.Errorf("scan continued past callback error: %d calls", n)
	}

	// Malformed input errors with the entry index.
	err = ForEachLogJSON(strings.NewReader(raw+"{broken"), func(LogEntry) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "entry 5") {
		t.Errorf("malformed tail: %v", err)
	}
}

func TestRootZoneNegativeAnswer(t *testing.T) {
	// A catch-all root zone must produce well-formed negative answers
	// (its synthesized SOA once built the invalid name "ns1..").
	static := NewStatic().A("host.any-tld.example", netip.MustParseAddr("192.0.2.5"))
	srv := &Server{Zones: []*Zone{{Suffix: ".", LabelDepth: 1, Default: static}}}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	res := resolver.New(resolver.Config{Server: addr.String(), Timeout: 2 * time.Second})
	ctx := context.Background()
	start := time.Now()
	// Name exists, type absent: NOERROR/empty must arrive promptly.
	aaaa, err := res.LookupAAAA(ctx, "host.any-tld.example")
	if err != nil || len(aaaa) != 0 {
		t.Errorf("AAAA: %v, %v", aaaa, err)
	}
	// Unknown name: NXDOMAIN must also arrive promptly.
	if _, err := res.LookupA(ctx, "missing.example"); err != nil {
		t.Errorf("NXDOMAIN: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("negative answers took %v (timeout path?)", elapsed)
	}
}

func TestZoneAttributionRoundTrip(t *testing.T) {
	// Property: for any (testid, mtaid, extra-labels) triple, the name
	// Rejoin builds parses back to the same attribution.
	zone := &Zone{Suffix: "spf-test.dns-lab.example."}
	labels := []string{"l1", "foo", "mx07", "v3", "_dmarc"}
	for _, test := range []string{"t01", "t39", "x"} {
		for _, mta := range []string{"m000001", "d42"} {
			for n := 0; n <= 2; n++ {
				q := &Query{TestID: test, MTAID: mta}
				name := Rejoin(q, zone.Suffix, labels[:n]...)
				parsed, ok := zone.parse(name, dns.TypeTXT, "udp", false)
				if !ok {
					t.Fatalf("name %q not in zone", name)
				}
				if parsed.TestID != test || parsed.MTAID != mta || len(parsed.Rest) != n {
					t.Fatalf("attribution round trip: %q -> %+v", name, parsed)
				}
				for i := 0; i < n; i++ {
					if parsed.Rest[i] != labels[i] {
						t.Fatalf("rest mismatch: %q -> %v", name, parsed.Rest)
					}
				}
			}
		}
	}
}
