package dnsserver

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// discardSink measures log-entry construction (the attribution strings,
// the cached remote address) without the slice-growth noise of an
// in-memory QueryLog.
type discardSink struct{}

func (discardSink) Append(LogEntry) {}

// benchWriter packs responses the way the transport endpoints do —
// AppendPack into a buffer reused across requests — without a socket.
type benchWriter struct {
	buf []byte
}

func (w *benchWriter) WriteMsg(m *dns.Message) error {
	b, err := m.AppendPack(w.buf[:0])
	if err != nil {
		return err
	}
	w.buf = b
	return nil
}

func benchZone() *Zone {
	return &Zone{
		Suffix: testSuffix,
		Responders: map[string]Responder{
			"t01": ResponderFunc(func(q *Query) Response {
				return Response{Records: []dns.RR{
					TXTRecord(q.Name, "v=spf1 ip4:192.0.2.0/24 ?all", 60),
				}}
			}),
		},
	}
}

// benchPackets pre-packs n query variants rotating over distinct MTA
// ids, so the hot path sees realistic name diversity rather than one
// memoizable query.
func benchPackets(b *testing.B, n int) [][]byte {
	b.Helper()
	pkts := make([][]byte, n)
	for i := range pkts {
		q := new(dns.Message).SetQuestion(fmt.Sprintf("t01.m%06d.%s", i, testSuffix), dns.TypeTXT)
		q.ID = uint16(i + 1)
		raw, err := q.Pack()
		if err != nil {
			b.Fatal(err)
		}
		pkts[i] = raw
	}
	return pkts
}

// BenchmarkServeHotPath measures the query serving path. The "direct"
// variant drives the handler in-process — unpack into a pooled message,
// attribute, synthesize, pack into a reused buffer — isolating the
// allocations this package controls. The "udp" variant exchanges real
// packets over loopback, so it includes the endpoint's read/dispatch
// path (but also scheduler and syscall noise).
func BenchmarkServeHotPath(b *testing.B) {
	b.Run("direct", func(b *testing.B) {
		srv := &Server{Zones: []*Zone{benchZone()}, Log: discardSink{}}
		srv.init()
		handler := srv.handler(false)
		pkts := benchPackets(b, 64)
		w := &benchWriter{}
		remote := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 53535}
		req := &dns.Request{RemoteAddr: remote, Transport: "udp", Received: time.Now()}
		req.RemoteString() // warm the per-source cache, as the endpoint does

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msg := dns.GetMsg()
			if err := msg.Unpack(pkts[i%len(pkts)]); err != nil {
				b.Fatal(err)
			}
			req.Msg = msg
			handler.ServeDNS(w, req)
			dns.PutMsg(msg)
		}
	})

	b.Run("udp", func(b *testing.B) {
		srv := &Server{Zones: []*Zone{benchZone()}, Log: discardSink{}}
		addr, err := srv.Start()
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		conn, err := net.Dial("udp", addr.String())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(time.Minute))
		pkts := benchPackets(b, 64)
		resp := make([]byte, 4096)

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conn.Write(pkts[i%len(pkts)]); err != nil {
				b.Fatal(err)
			}
			if _, err := conn.Read(resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLogCodec measures the per-record codec in isolation:
// encode into a reused buffer, decode with a reused parser. These are
// the units the analysis ingest pipeline multiplies by millions of
// records.
func BenchmarkLogCodec(b *testing.B) {
	e := LogEntry{
		Time:      time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC),
		Name:      "x.t07.m000042.spf-test.dns-lab.example.",
		Type:      dns.TypeTXT,
		TestID:    "t07",
		MTAID:     "m000042",
		Rest:      []string{"l1"},
		Transport: "udp",
		OverIPv6:  true,
		Remote:    "198.51.100.7:53",
	}
	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, 512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = AppendLogJSON(buf[:0], e)
		}
		b.SetBytes(int64(len(buf)))
	})
	b.Run("decode", func(b *testing.B) {
		line := AppendLogJSON(nil, e)
		var p logLineParser
		b.SetBytes(int64(len(line)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.parse(line); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParForEachLogJSON measures analysis ingest throughput over
// an in-memory log at fixed worker counts (fixed, rather than
// GOMAXPROCS-derived, so benchmark names are stable across machines).
func BenchmarkParForEachLogJSON(b *testing.B) {
	var (
		buf  []byte
		base = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	)
	for i := 0; i < 50000; i++ {
		buf = AppendLogJSON(buf, LogEntry{
			Time:      base.Add(time.Duration(i) * time.Millisecond),
			Name:      fmt.Sprintf("x.t%02d.m%06d.spf-test.dns-lab.example.", i%39, i),
			Type:      dns.TypeTXT,
			TestID:    fmt.Sprintf("t%02d", i%39),
			MTAID:     fmt.Sprintf("m%06d", i),
			Transport: "udp",
			Remote:    "198.51.100.7:53",
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var n atomic.Int64
				err := ParForEachLogJSON(bytes.NewReader(buf), workers, func(LogEntry) error {
					n.Add(1)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n.Load() != 50000 {
					b.Fatalf("decoded %d entries, want 50000", n.Load())
				}
			}
		})
	}
}
