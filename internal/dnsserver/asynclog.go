package dnsserver

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"
)

// AsyncLog decouples query logging from query serving. Append never
// blocks: entries go into a bounded buffer drained by a background
// goroutine into the wrapped sink, and when the buffer is full —
// logging backpressure, a stalled disk — the entry is counted as
// dropped instead of stalling the serving path. A week-long sweep
// would rather lose log lines than stop answering; the Dropped counter
// makes every lost line accountable in the analysis.
type AsyncLog struct {
	sink Sink
	ch   chan LogEntry

	appended atomic.Uint64
	dropped  atomic.Uint64

	once sync.Once
	done chan struct{}
}

// NewAsyncLog wraps sink with a non-blocking bounded buffer of the
// given depth (<= 0 means 4096) and starts the drain goroutine. Close
// must be called to flush and stop it.
func NewAsyncLog(sink Sink, buffer int) *AsyncLog {
	if buffer <= 0 {
		buffer = 4096
	}
	a := &AsyncLog{
		sink: sink,
		ch:   make(chan LogEntry, buffer),
		done: make(chan struct{}),
	}
	go a.drain()
	return a
}

func (a *AsyncLog) drain() {
	defer close(a.done)
	for e := range a.ch {
		a.sink.Append(e)
	}
}

// Append implements Sink without ever blocking. Entries that do not
// fit in the buffer are dropped and counted.
func (a *AsyncLog) Append(e LogEntry) {
	a.appended.Add(1)
	select {
	case a.ch <- e:
	default:
		a.dropped.Add(1)
	}
}

// Appended returns the number of entries offered to the log (delivered
// plus dropped).
func (a *AsyncLog) Appended() uint64 { return a.appended.Load() }

// Dropped returns the number of entries lost to a full buffer.
func (a *AsyncLog) Dropped() uint64 { return a.dropped.Load() }

// Close stops accepting entries, flushes the buffer into the sink, and
// waits for the drain goroutine. Appends racing Close may panic on the
// closed channel, so stop the server before closing its log.
func (a *AsyncLog) Close() {
	a.once.Do(func() { close(a.ch) })
	<-a.done
}

// WriterSink streams entries to w as JSON lines — the blocking disk
// sink AsyncLog is designed to wrap. It is safe for concurrent use.
// Encoding goes through the reflection-free AppendLogJSON into a
// buffer reused across entries, so steady-state appends allocate
// nothing.
type WriterSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
	err error
}

// NewWriterSink buffers writes to w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{bw: bufio.NewWriter(w), buf: make([]byte, 0, 512)}
}

// Append implements Sink. Write errors are sticky and surfaced by
// Flush.
func (s *WriterSink) Append(e LogEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = AppendLogJSON(s.buf[:0], e)
	_, s.err = s.bw.Write(s.buf)
}

// Flush drains the buffer and returns the first error encountered.
func (s *WriterSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}
