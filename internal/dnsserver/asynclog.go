package dnsserver

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"

	"sendervalid/internal/telemetry"
)

// AsyncLog decouples query logging from query serving. Append never
// blocks: entries go into a bounded buffer drained by a background
// goroutine into the wrapped sink, and when the buffer is full —
// logging backpressure, a stalled disk — the entry is counted as
// dropped instead of stalling the serving path. A week-long sweep
// would rather lose log lines than stop answering; the Dropped counter
// makes every lost line accountable in the analysis.
type AsyncLog struct {
	sink Sink
	ch   chan LogEntry

	appended telemetry.Counter
	dropped  telemetry.Counter

	closed atomic.Bool
	once   sync.Once
	stop   chan struct{}
	done   chan struct{}
}

// NewAsyncLog wraps sink with a non-blocking bounded buffer of the
// given depth (<= 0 means 4096) and starts the drain goroutine. Close
// must be called to flush and stop it.
func NewAsyncLog(sink Sink, buffer int) *AsyncLog {
	if buffer <= 0 {
		buffer = 4096
	}
	a := &AsyncLog{
		sink: sink,
		ch:   make(chan LogEntry, buffer),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go a.drain()
	return a
}

// drain delivers buffered entries to the sink. On Close it flushes
// whatever the buffer still holds, then exits. The entry channel is
// never closed, so an Append racing Close can never panic — it just
// finds the log closed (or its entry is flushed, if it won the race).
func (a *AsyncLog) drain() {
	defer close(a.done)
	for {
		select {
		case e := <-a.ch:
			a.sink.Append(e)
		case <-a.stop:
			for {
				select {
				case e := <-a.ch:
					a.sink.Append(e)
				default:
					return
				}
			}
		}
	}
}

// Append implements Sink without ever blocking. Entries that do not
// fit in the buffer — and entries arriving after Close — are dropped
// and counted.
func (a *AsyncLog) Append(e LogEntry) {
	a.appended.Inc()
	if a.closed.Load() {
		a.dropped.Inc()
		return
	}
	select {
	case a.ch <- e:
	default:
		a.dropped.Inc()
	}
}

// Appended returns the number of entries offered to the log (delivered
// plus dropped).
func (a *AsyncLog) Appended() uint64 { return a.appended.Value() }

// Dropped returns the number of entries lost to a full buffer or to
// arriving after Close.
func (a *AsyncLog) Dropped() uint64 { return a.dropped.Value() }

// Buffered returns how many entries sit in the buffer right now.
func (a *AsyncLog) Buffered() int { return len(a.ch) }

// Close stops accepting entries, flushes the buffer into the sink, and
// waits for the drain goroutine. It is idempotent and safe to call
// while appenders are still running: late entries are dropped and
// counted rather than panicking, so the server and its log no longer
// have to shut down in lockstep.
func (a *AsyncLog) Close() {
	a.once.Do(func() {
		a.closed.Store(true)
		close(a.stop)
	})
	<-a.done
	// An appender that passed the closed check just before Close wins
	// the race into the channel after the final flush; account for
	// those entries as dropped rather than losing them silently.
	for {
		select {
		case <-a.ch:
			a.dropped.Inc()
		default:
			return
		}
	}
}

// RegisterMetrics publishes the log's delivery counters and buffer
// occupancy under the dnsserver_log_ namespace.
func (a *AsyncLog) RegisterMetrics(reg *telemetry.Registry) {
	reg.MustCounter("dnsserver_log_appended_total",
		"Query-log entries offered to the async log (delivered plus dropped).",
		&a.appended)
	reg.MustCounter("dnsserver_log_dropped_total",
		"Query-log entries lost to a full buffer or a closed log.",
		&a.dropped)
	reg.MustGaugeFunc("dnsserver_log_buffered",
		"Query-log entries waiting in the async buffer.",
		func() float64 { return float64(len(a.ch)) })
	reg.MustGaugeFunc("dnsserver_log_buffer_capacity",
		"Async query-log buffer depth.",
		func() float64 { return float64(cap(a.ch)) })
}

// WriterSink streams entries to w as JSON lines — the blocking disk
// sink AsyncLog is designed to wrap. It is safe for concurrent use.
// Encoding goes through the reflection-free AppendLogJSON into a
// buffer reused across entries, so steady-state appends allocate
// nothing.
type WriterSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
	err error
}

// NewWriterSink buffers writes to w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{bw: bufio.NewWriter(w), buf: make([]byte, 0, 512)}
}

// Append implements Sink. Write errors are sticky and surfaced by
// Flush.
func (s *WriterSink) Append(e LogEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = AppendLogJSON(s.buf[:0], e)
	_, s.err = s.bw.Write(s.buf)
}

// Flush drains the buffer and returns the first error encountered.
func (s *WriterSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}
