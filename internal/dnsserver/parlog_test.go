package dnsserver

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// parTestLog builds a log large enough to span several chunks so the
// splitter, the pool, and the merge all see real work.
func parTestLog(t testing.TB, n int) (jsonl []byte, entries []LogEntry) {
	t.Helper()
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var buf []byte
	for i := 0; i < n; i++ {
		e := LogEntry{
			Time:      base.Add(time.Duration(i) * time.Millisecond),
			Name:      fmt.Sprintf("x.t%d.m%d.spf.example.test.", i%39, i),
			Type:      dns.TypeTXT,
			TestID:    fmt.Sprintf("t%d", i%39),
			MTAID:     fmt.Sprintf("m%d", i),
			Transport: "udp",
			Remote:    "198.51.100.7:53",
		}
		if i%7 == 0 {
			e.Rest = []string{"l1", fmt.Sprintf("l%d", i)}
		}
		if i%5 == 0 {
			e.OverIPv6 = true
		}
		entries = append(entries, e)
		buf = AppendLogJSON(buf, e)
	}
	return buf, entries
}

func TestParForEachLogJSONMatchesSerial(t *testing.T) {
	jsonl, want := parTestLog(t, 20000) // ~2.5 MB, ~10 chunks
	for _, workers := range []int{0, 1, 2, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var mu sync.Mutex
			var got []LogEntry
			err := ParForEachLogJSON(bytes.NewReader(jsonl), workers, func(e LogEntry) error {
				mu.Lock()
				got = append(got, e)
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatalf("ParForEachLogJSON: %v", err)
			}
			// Unordered delivery: compare as multisets via a stable sort.
			sortEntries(got)
			wantSorted := append([]LogEntry(nil), want...)
			sortEntries(wantSorted)
			if len(got) != len(wantSorted) {
				t.Fatalf("got %d entries, want %d", len(got), len(wantSorted))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], wantSorted[i]) {
					t.Fatalf("entry %d: got %#v, want %#v", i, got[i], wantSorted[i])
				}
			}
		})
	}
}

func sortEntries(es []LogEntry) {
	sort.Slice(es, func(i, j int) bool { return es[i].MTAID < es[j].MTAID })
}

func TestParForEachLogJSONOrderedPreservesFileOrder(t *testing.T) {
	jsonl, want := parTestLog(t, 20000)
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var got []LogEntry
			err := ParForEachLogJSONOrdered(bytes.NewReader(jsonl), workers, func(e LogEntry) error {
				got = append(got, e) // single-goroutine delivery: no lock
				return nil
			})
			if err != nil {
				t.Fatalf("ParForEachLogJSONOrdered: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("got %d entries, want %d", len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("entry %d out of order or corrupted: got %#v, want %#v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestParForEachLogJSONCallbackError(t *testing.T) {
	jsonl, _ := parTestLog(t, 5000)
	sentinel := errors.New("stop here")
	for _, ordered := range []bool{false, true} {
		run := ParForEachLogJSON
		if ordered {
			run = ParForEachLogJSONOrdered
		}
		n := 0
		var mu sync.Mutex
		err := run(bytes.NewReader(jsonl), 4, func(LogEntry) error {
			mu.Lock()
			defer mu.Unlock()
			n++
			if n == 100 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("ordered=%v: got %v, want the callback's error unwrapped", ordered, err)
		}
	}
}

func TestParForEachLogJSONParseError(t *testing.T) {
	jsonl, _ := parTestLog(t, 5000)
	jsonl = append(jsonl, "{broken\n"...)
	tail, _ := parTestLog(t, 100)
	jsonl = append(jsonl, tail...)
	for _, ordered := range []bool{false, true} {
		run := ParForEachLogJSON
		if ordered {
			run = ParForEachLogJSONOrdered
		}
		err := run(bytes.NewReader(jsonl), 4, func(LogEntry) error { return nil })
		if err == nil {
			t.Fatalf("ordered=%v: malformed line not reported", ordered)
		}
		if !strings.Contains(err.Error(), "line 5000") {
			t.Errorf("ordered=%v: error %q does not carry the absolute line number 5000", ordered, err)
		}
	}
}

func TestParForEachLogJSONLongLinesAndBlanks(t *testing.T) {
	// One entry whose encoding dwarfs the chunk size, surrounded by
	// blank lines and normal entries.
	big := LogEntry{
		Time: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Name: strings.Repeat("a", 3*parChunkSize) + ".",
		Type: dns.TypeA,
	}
	small := LogEntry{Time: big.Time, Name: "s.", Type: dns.TypeMX}
	var jsonl []byte
	jsonl = append(jsonl, "\n  \t\n"...)
	jsonl = AppendLogJSON(jsonl, small)
	jsonl = AppendLogJSON(jsonl, big)
	jsonl = append(jsonl, '\n')
	jsonl = AppendLogJSON(jsonl, small)
	var got []LogEntry
	err := ParForEachLogJSONOrdered(bytes.NewReader(jsonl), 4, func(e LogEntry) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatalf("ParForEachLogJSONOrdered: %v", err)
	}
	want := []LogEntry{small, big, small}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %d entries (names %v), want small, big, small",
			len(got), shortNames(got))
	}
}

func shortNames(es []LogEntry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		if len(e.Name) > 10 {
			out[i] = e.Name[:10] + "…"
		} else {
			out[i] = e.Name
		}
	}
	return out
}

func TestParForEachLogJSONEmptyAndNoTrailingNewline(t *testing.T) {
	if err := ParForEachLogJSON(bytes.NewReader(nil), 4, func(LogEntry) error {
		return errors.New("no entries expected")
	}); err != nil {
		t.Fatalf("empty stream: %v", err)
	}
	// A final record without the trailing newline must still decode.
	jsonl, want := parTestLog(t, 3)
	jsonl = bytes.TrimSuffix(jsonl, []byte("\n"))
	var got []LogEntry
	if err := ParForEachLogJSONOrdered(bytes.NewReader(jsonl), 2, func(e LogEntry) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatalf("no trailing newline: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}
