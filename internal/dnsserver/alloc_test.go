package dnsserver

import (
	"testing"
	"time"

	"sendervalid/internal/dns"
)

// The log codec promises zero-allocation encode into a reused buffer
// and at-most-two-allocations decode with a reused parser (one
// backing string shared by every string field, plus the Rest slice).
// These tests pin that contract so a regression shows up as a test
// failure, not just a drifting benchmark number.

func allocTestEntry() LogEntry {
	return LogEntry{
		Time:      time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC),
		Name:      "x.t07.m000042.spf-test.dns-lab.example.",
		Type:      dns.TypeTXT,
		TestID:    "t07",
		MTAID:     "m000042",
		Rest:      []string{"l1"},
		Transport: "udp",
		OverIPv6:  true,
		Remote:    "198.51.100.7:53",
	}
}

func TestAppendLogJSONZeroAlloc(t *testing.T) {
	e := allocTestEntry()
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendLogJSON(buf[:0], e)
	})
	if allocs != 0 {
		t.Errorf("AppendLogJSON into reused buffer: %v allocs/op, want 0", allocs)
	}
}

func TestLogLineParseAllocBudget(t *testing.T) {
	line := AppendLogJSON(nil, allocTestEntry())
	var p logLineParser
	if _, err := p.parse(line); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.parse(line); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("parse with reused parser: %v allocs/op, want <= 2 (backing string + Rest)", allocs)
	}

	// Without a rest array the slice allocation disappears too.
	noRest := allocTestEntry()
	noRest.Rest = nil
	line = AppendLogJSON(line[:0], noRest)
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := p.parse(line); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("parse without rest: %v allocs/op, want <= 1 (backing string)", allocs)
	}
}
